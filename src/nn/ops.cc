#include "nn/ops.h"

#include <cassert>
#include <cmath>

#include "nn/kernels.h"

namespace rapid::nn {

namespace {

using internal::Node;

// True if the i-th parent of `n` participates in differentiation.
bool NeedsGrad(const Node& n, int i) { return n.parents[i]->requires_grad; }

}  // namespace

Variable MatMul(const Variable& a, const Variable& b) {
  assert(a.cols() == b.rows());
  Matrix out;
  Gemm(a.value(), b.value(), &out);
  return Variable::FromOp(std::move(out), {a, b}, [](Node& n) {
    // dL/da += dL/dout * b^T ; dL/db += a^T * dL/dout.
    if (NeedsGrad(n, 0)) {
      Gemm(n.grad, n.parents[1]->value, &n.parents[0]->grad,
           {.trans_b = true, .accumulate = true});
    }
    if (NeedsGrad(n, 1)) {
      Gemm(n.parents[0]->value, n.grad, &n.parents[1]->grad,
           {.trans_a = true, .accumulate = true});
    }
  });
}

Variable Add(const Variable& a, const Variable& b) {
  return Variable::FromOp(nn::Add(a.value(), b.value()), {a, b}, [](Node& n) {
    if (NeedsGrad(n, 0)) AddInPlace(&n.parents[0]->grad, n.grad);
    if (NeedsGrad(n, 1)) AddInPlace(&n.parents[1]->grad, n.grad);
  });
}

Variable AddRowBroadcast(const Variable& x, const Variable& bias) {
  assert(bias.rows() == 1 && bias.cols() == x.cols());
  Matrix out = x.value();
  AddRowBroadcastInPlace(&out, bias.value());
  return Variable::FromOp(std::move(out), {x, bias}, [](Node& n) {
    if (NeedsGrad(n, 0)) AddInPlace(&n.parents[0]->grad, n.grad);
    if (NeedsGrad(n, 1)) {
      Matrix& bg = n.parents[1]->grad;
      for (int r = 0; r < n.grad.rows(); ++r) {
        const float* grow = n.grad.row(r);
        for (int c = 0; c < n.grad.cols(); ++c) bg.at(0, c) += grow[c];
      }
    }
  });
}

Variable Sub(const Variable& a, const Variable& b) {
  return Variable::FromOp(nn::Sub(a.value(), b.value()), {a, b}, [](Node& n) {
    if (NeedsGrad(n, 0)) AddInPlace(&n.parents[0]->grad, n.grad);
    if (NeedsGrad(n, 1)) AxpyInPlace(&n.parents[1]->grad, -1.0f, n.grad);
  });
}

Variable Mul(const Variable& a, const Variable& b) {
  return Variable::FromOp(nn::Mul(a.value(), b.value()), {a, b}, [](Node& n) {
    if (NeedsGrad(n, 0)) {
      AddInPlace(&n.parents[0]->grad, nn::Mul(n.grad, n.parents[1]->value));
    }
    if (NeedsGrad(n, 1)) {
      AddInPlace(&n.parents[1]->grad, nn::Mul(n.grad, n.parents[0]->value));
    }
  });
}

Variable MulColBroadcast(const Variable& x, const Variable& s) {
  assert(s.rows() == x.rows() && s.cols() == 1);
  Matrix out = x.value();
  for (int r = 0; r < out.rows(); ++r) {
    const float sv = s.value().at(r, 0);
    float* row = out.row(r);
    for (int c = 0; c < out.cols(); ++c) row[c] *= sv;
  }
  return Variable::FromOp(std::move(out), {x, s}, [](Node& n) {
    const Matrix& xin = n.parents[0]->value;
    const Matrix& sin = n.parents[1]->value;
    if (NeedsGrad(n, 0)) {
      Matrix& pg = n.parents[0]->grad;
      for (int r = 0; r < pg.rows(); ++r) {
        const float sv = sin.at(r, 0);
        const float* g = n.grad.row(r);
        float* dst = pg.row(r);
        for (int c = 0; c < pg.cols(); ++c) dst[c] += g[c] * sv;
      }
    }
    if (NeedsGrad(n, 1)) {
      Matrix& sg = n.parents[1]->grad;
      for (int r = 0; r < xin.rows(); ++r) {
        const float* g = n.grad.row(r);
        const float* xr = xin.row(r);
        double acc = 0.0;
        for (int c = 0; c < xin.cols(); ++c) acc += g[c] * xr[c];
        sg.at(r, 0) += static_cast<float>(acc);
      }
    }
  });
}

Variable MulRowBroadcast(const Variable& x, const Variable& v) {
  assert(v.rows() == 1 && v.cols() == x.cols());
  Matrix out = x.value();
  for (int r = 0; r < out.rows(); ++r) {
    float* row = out.row(r);
    for (int c = 0; c < out.cols(); ++c) row[c] *= v.value().at(0, c);
  }
  return Variable::FromOp(std::move(out), {x, v}, [](Node& n) {
    const Matrix& xin = n.parents[0]->value;
    const Matrix& vin = n.parents[1]->value;
    if (NeedsGrad(n, 0)) {
      Matrix& pg = n.parents[0]->grad;
      for (int r = 0; r < pg.rows(); ++r) {
        const float* g = n.grad.row(r);
        float* dst = pg.row(r);
        for (int c = 0; c < pg.cols(); ++c) dst[c] += g[c] * vin.at(0, c);
      }
    }
    if (NeedsGrad(n, 1)) {
      Matrix& vg = n.parents[1]->grad;
      for (int r = 0; r < xin.rows(); ++r) {
        const float* g = n.grad.row(r);
        const float* xr = xin.row(r);
        for (int c = 0; c < xin.cols(); ++c) vg.at(0, c) += g[c] * xr[c];
      }
    }
  });
}

Variable Scale(const Variable& a, float s) {
  Matrix out = a.value();
  ScaleInPlace(&out, s);
  return Variable::FromOp(std::move(out), {a}, [s](Node& n) {
    if (NeedsGrad(n, 0)) AxpyInPlace(&n.parents[0]->grad, s, n.grad);
  });
}

Variable AddScalar(const Variable& a, float s) {
  Matrix out = a.value();
  for (int i = 0; i < out.size(); ++i) out.data()[i] += s;
  return Variable::FromOp(std::move(out), {a}, [](Node& n) {
    if (NeedsGrad(n, 0)) AddInPlace(&n.parents[0]->grad, n.grad);
  });
}

Variable Sigmoid(const Variable& x) {
  Matrix out(x.rows(), x.cols());
  kernel::Active().sigmoid(x.value().data(), out.data(), out.size());
  return Variable::FromOp(std::move(out), {x}, [](Node& n) {
    if (!NeedsGrad(n, 0)) return;
    Matrix& pg = n.parents[0]->grad;
    for (int i = 0; i < n.value.size(); ++i) {
      const float y = n.value.data()[i];
      pg.data()[i] += n.grad.data()[i] * y * (1.0f - y);
    }
  });
}

Variable Tanh(const Variable& x) {
  Matrix out(x.rows(), x.cols());
  kernel::Active().tanh_act(x.value().data(), out.data(), out.size());
  return Variable::FromOp(std::move(out), {x}, [](Node& n) {
    if (!NeedsGrad(n, 0)) return;
    Matrix& pg = n.parents[0]->grad;
    for (int i = 0; i < n.value.size(); ++i) {
      const float y = n.value.data()[i];
      pg.data()[i] += n.grad.data()[i] * (1.0f - y * y);
    }
  });
}

Variable Relu(const Variable& x) {
  Matrix out(x.rows(), x.cols());
  kernel::Active().relu(x.value().data(), out.data(), out.size());
  return Variable::FromOp(std::move(out), {x}, [](Node& n) {
    if (!NeedsGrad(n, 0)) return;
    Matrix& pg = n.parents[0]->grad;
    const Matrix& xin = n.parents[0]->value;
    for (int i = 0; i < n.value.size(); ++i) {
      if (xin.data()[i] > 0.0f) pg.data()[i] += n.grad.data()[i];
    }
  });
}

Variable Softplus(const Variable& x) {
  Matrix out = x.value();
  for (int i = 0; i < out.size(); ++i) {
    const float v = out.data()[i];
    // Stable: softplus(v) = max(v, 0) + log1p(exp(-|v|)).
    out.data()[i] = std::max(v, 0.0f) + std::log1p(std::exp(-std::fabs(v)));
  }
  return Variable::FromOp(std::move(out), {x}, [](Node& n) {
    if (!NeedsGrad(n, 0)) return;
    Matrix& pg = n.parents[0]->grad;
    const Matrix& xin = n.parents[0]->value;
    for (int i = 0; i < n.value.size(); ++i) {
      const float v = xin.data()[i];
      const float sig = v >= 0.0f ? 1.0f / (1.0f + std::exp(-v))
                                  : std::exp(v) / (1.0f + std::exp(v));
      pg.data()[i] += n.grad.data()[i] * sig;
    }
  });
}

Variable Square(const Variable& x) {
  Matrix out = x.value();
  for (int i = 0; i < out.size(); ++i) out.data()[i] *= out.data()[i];
  return Variable::FromOp(std::move(out), {x}, [](Node& n) {
    if (!NeedsGrad(n, 0)) return;
    Matrix& pg = n.parents[0]->grad;
    const Matrix& xin = n.parents[0]->value;
    for (int i = 0; i < n.value.size(); ++i) {
      pg.data()[i] += n.grad.data()[i] * 2.0f * xin.data()[i];
    }
  });
}

Variable Exp(const Variable& x) {
  Matrix out = x.value();
  for (int i = 0; i < out.size(); ++i) out.data()[i] = std::exp(out.data()[i]);
  return Variable::FromOp(std::move(out), {x}, [](Node& n) {
    if (!NeedsGrad(n, 0)) return;
    Matrix& pg = n.parents[0]->grad;
    for (int i = 0; i < n.value.size(); ++i) {
      pg.data()[i] += n.grad.data()[i] * n.value.data()[i];
    }
  });
}

Variable Log(const Variable& x) {
  Matrix out = x.value();
  for (int i = 0; i < out.size(); ++i) {
    assert(out.data()[i] > 0.0f);
    out.data()[i] = std::log(out.data()[i]);
  }
  return Variable::FromOp(std::move(out), {x}, [](Node& n) {
    if (!NeedsGrad(n, 0)) return;
    Matrix& pg = n.parents[0]->grad;
    const Matrix& xin = n.parents[0]->value;
    for (int i = 0; i < n.value.size(); ++i) {
      pg.data()[i] += n.grad.data()[i] / xin.data()[i];
    }
  });
}

Variable SoftmaxRows(const Variable& x) {
  Matrix out = x.value();
  kernel::Active().softmax_rows(out.data(), out.rows(), out.cols());
  return Variable::FromOp(std::move(out), {x}, [](Node& n) {
    if (!NeedsGrad(n, 0)) return;
    Matrix& pg = n.parents[0]->grad;
    // d x_j = y_j * (g_j - sum_k g_k y_k), per row.
    for (int r = 0; r < n.value.rows(); ++r) {
      const float* y = n.value.row(r);
      const float* g = n.grad.row(r);
      double dot = 0.0;
      for (int c = 0; c < n.value.cols(); ++c) dot += g[c] * y[c];
      float* prow = pg.row(r);
      for (int c = 0; c < n.value.cols(); ++c) {
        prow[c] += y[c] * (g[c] - static_cast<float>(dot));
      }
    }
  });
}

Variable ConcatCols(const std::vector<Variable>& parts) {
  assert(!parts.empty());
  const int rows = parts[0].rows();
  int cols = 0;
  for (const Variable& p : parts) {
    assert(p.rows() == rows);
    cols += p.cols();
  }
  Matrix out(rows, cols);
  int off = 0;
  for (const Variable& p : parts) {
    for (int r = 0; r < rows; ++r) {
      const float* src = p.value().row(r);
      float* dst = out.row(r) + off;
      for (int c = 0; c < p.cols(); ++c) dst[c] = src[c];
    }
    off += p.cols();
  }
  return Variable::FromOp(std::move(out), parts, [](Node& n) {
    int off = 0;
    for (size_t i = 0; i < n.parents.size(); ++i) {
      const int pc = n.parents[i]->value.cols();
      if (n.parents[i]->requires_grad) {
        Matrix& pg = n.parents[i]->grad;
        for (int r = 0; r < n.grad.rows(); ++r) {
          const float* src = n.grad.row(r) + off;
          float* dst = pg.row(r);
          for (int c = 0; c < pc; ++c) dst[c] += src[c];
        }
      }
      off += pc;
    }
  });
}

Variable ConcatRows(const std::vector<Variable>& parts) {
  assert(!parts.empty());
  const int cols = parts[0].cols();
  int rows = 0;
  for (const Variable& p : parts) {
    assert(p.cols() == cols);
    rows += p.rows();
  }
  Matrix out(rows, cols);
  int off = 0;
  for (const Variable& p : parts) {
    for (int r = 0; r < p.rows(); ++r) {
      const float* src = p.value().row(r);
      float* dst = out.row(off + r);
      for (int c = 0; c < cols; ++c) dst[c] = src[c];
    }
    off += p.rows();
  }
  return Variable::FromOp(std::move(out), parts, [](Node& n) {
    int off = 0;
    for (size_t i = 0; i < n.parents.size(); ++i) {
      const int pr = n.parents[i]->value.rows();
      if (n.parents[i]->requires_grad) {
        Matrix& pg = n.parents[i]->grad;
        for (int r = 0; r < pr; ++r) {
          const float* src = n.grad.row(off + r);
          float* dst = pg.row(r);
          for (int c = 0; c < n.grad.cols(); ++c) dst[c] += src[c];
        }
      }
      off += pr;
    }
  });
}

Variable SliceCols(const Variable& x, int start, int len) {
  assert(start >= 0 && len >= 0 && start + len <= x.cols());
  Matrix out(x.rows(), len);
  for (int r = 0; r < x.rows(); ++r) {
    const float* src = x.value().row(r) + start;
    float* dst = out.row(r);
    for (int c = 0; c < len; ++c) dst[c] = src[c];
  }
  return Variable::FromOp(std::move(out), {x}, [start, len](Node& n) {
    if (!NeedsGrad(n, 0)) return;
    Matrix& pg = n.parents[0]->grad;
    for (int r = 0; r < n.grad.rows(); ++r) {
      const float* src = n.grad.row(r);
      float* dst = pg.row(r) + start;
      for (int c = 0; c < len; ++c) dst[c] += src[c];
    }
  });
}

Variable SliceRows(const Variable& x, int start, int len) {
  assert(start >= 0 && len >= 0 && start + len <= x.rows());
  Matrix out(len, x.cols());
  for (int r = 0; r < len; ++r) {
    const float* src = x.value().row(start + r);
    float* dst = out.row(r);
    for (int c = 0; c < x.cols(); ++c) dst[c] = src[c];
  }
  return Variable::FromOp(std::move(out), {x}, [start, len](Node& n) {
    if (!NeedsGrad(n, 0)) return;
    Matrix& pg = n.parents[0]->grad;
    for (int r = 0; r < len; ++r) {
      const float* src = n.grad.row(r);
      float* dst = pg.row(start + r);
      for (int c = 0; c < n.grad.cols(); ++c) dst[c] += src[c];
    }
  });
}

Variable GatherRows(const Variable& x, std::vector<int> rows) {
  Matrix out(static_cast<int>(rows.size()), x.cols());
  for (size_t r = 0; r < rows.size(); ++r) {
    assert(rows[r] >= 0 && rows[r] < x.rows());
    const float* src = x.value().row(rows[r]);
    float* dst = out.row(static_cast<int>(r));
    for (int c = 0; c < x.cols(); ++c) dst[c] = src[c];
  }
  return Variable::FromOp(std::move(out), {x},
                          [rows = std::move(rows)](Node& n) {
                            if (!NeedsGrad(n, 0)) return;
                            Matrix& pg = n.parents[0]->grad;
                            for (size_t r = 0; r < rows.size(); ++r) {
                              const float* src =
                                  n.grad.row(static_cast<int>(r));
                              float* dst = pg.row(rows[r]);
                              for (int c = 0; c < n.grad.cols(); ++c) {
                                dst[c] += src[c];
                              }
                            }
                          });
}

Variable Transpose(const Variable& x) {
  return Variable::FromOp(x.value().Transposed(), {x}, [](Node& n) {
    if (!NeedsGrad(n, 0)) return;
    AddInPlace(&n.parents[0]->grad, n.grad.Transposed());
  });
}

Variable FlattenToRow(const Variable& x) {
  Matrix out(1, x.rows() * x.cols());
  for (int i = 0; i < out.size(); ++i) out.data()[i] = x.value().data()[i];
  return Variable::FromOp(std::move(out), {x}, [](Node& n) {
    if (!NeedsGrad(n, 0)) return;
    Matrix& pg = n.parents[0]->grad;
    for (int i = 0; i < pg.size(); ++i) pg.data()[i] += n.grad.data()[i];
  });
}

Variable SumAll(const Variable& x) {
  Matrix out(1, 1);
  out.at(0, 0) = x.value().Sum();
  return Variable::FromOp(std::move(out), {x}, [](Node& n) {
    if (!NeedsGrad(n, 0)) return;
    const float g = n.grad.at(0, 0);
    Matrix& pg = n.parents[0]->grad;
    for (int i = 0; i < pg.size(); ++i) pg.data()[i] += g;
  });
}

Variable MeanAll(const Variable& x) {
  const float inv = x.value().empty() ? 0.0f : 1.0f / x.value().size();
  Matrix out(1, 1);
  out.at(0, 0) = x.value().Sum() * inv;
  return Variable::FromOp(std::move(out), {x}, [inv](Node& n) {
    if (!NeedsGrad(n, 0)) return;
    const float g = n.grad.at(0, 0) * inv;
    Matrix& pg = n.parents[0]->grad;
    for (int i = 0; i < pg.size(); ++i) pg.data()[i] += g;
  });
}

Variable MeanRows(const Variable& x) {
  assert(x.rows() > 0);
  const float inv = 1.0f / x.rows();
  Matrix out(1, x.cols());
  for (int r = 0; r < x.rows(); ++r) {
    const float* src = x.value().row(r);
    for (int c = 0; c < x.cols(); ++c) out.at(0, c) += src[c] * inv;
  }
  return Variable::FromOp(std::move(out), {x}, [inv](Node& n) {
    if (!NeedsGrad(n, 0)) return;
    Matrix& pg = n.parents[0]->grad;
    const float* g = n.grad.row(0);
    for (int r = 0; r < pg.rows(); ++r) {
      float* dst = pg.row(r);
      for (int c = 0; c < pg.cols(); ++c) dst[c] += g[c] * inv;
    }
  });
}

Variable SumCols(const Variable& x) {
  Matrix out(x.rows(), 1);
  for (int r = 0; r < x.rows(); ++r) {
    const float* src = x.value().row(r);
    double s = 0.0;
    for (int c = 0; c < x.cols(); ++c) s += src[c];
    out.at(r, 0) = static_cast<float>(s);
  }
  return Variable::FromOp(std::move(out), {x}, [](Node& n) {
    if (!NeedsGrad(n, 0)) return;
    Matrix& pg = n.parents[0]->grad;
    for (int r = 0; r < pg.rows(); ++r) {
      const float g = n.grad.at(r, 0);
      float* dst = pg.row(r);
      for (int c = 0; c < pg.cols(); ++c) dst[c] += g;
    }
  });
}

Variable Dropout(const Variable& x, float p, bool training,
                 std::mt19937_64& rng) {
  if (!training || p <= 0.0f) return Scale(x, 1.0f);
  assert(p < 1.0f);
  const float keep = 1.0f - p;
  const float inv_keep = 1.0f / keep;
  auto mask = std::make_shared<Matrix>(x.rows(), x.cols());
  std::bernoulli_distribution coin(keep);
  Matrix out = x.value();
  for (int i = 0; i < out.size(); ++i) {
    const float m = coin(rng) ? inv_keep : 0.0f;
    mask->data()[i] = m;
    out.data()[i] *= m;
  }
  return Variable::FromOp(std::move(out), {x}, [mask](Node& n) {
    if (!NeedsGrad(n, 0)) return;
    Matrix& pg = n.parents[0]->grad;
    for (int i = 0; i < pg.size(); ++i) {
      pg.data()[i] += n.grad.data()[i] * mask->data()[i];
    }
  });
}

Variable LayerNorm(const Variable& x, const Variable& gamma,
                   const Variable& beta, float eps) {
  assert(gamma.rows() == 1 && gamma.cols() == x.cols());
  assert(beta.rows() == 1 && beta.cols() == x.cols());
  const int rows = x.rows(), cols = x.cols();
  Matrix out(rows, cols);
  auto xhat = std::make_shared<Matrix>(rows, cols);
  auto inv_std = std::make_shared<std::vector<float>>(rows);
  for (int r = 0; r < rows; ++r) {
    const float* src = x.value().row(r);
    double mean = 0.0;
    for (int c = 0; c < cols; ++c) mean += src[c];
    mean /= cols;
    double var = 0.0;
    for (int c = 0; c < cols; ++c) {
      const double d = src[c] - mean;
      var += d * d;
    }
    var /= cols;
    const float istd = static_cast<float>(1.0 / std::sqrt(var + eps));
    (*inv_std)[r] = istd;
    float* hrow = xhat->row(r);
    float* orow = out.row(r);
    for (int c = 0; c < cols; ++c) {
      hrow[c] = (src[c] - static_cast<float>(mean)) * istd;
      orow[c] = hrow[c] * gamma.value().at(0, c) + beta.value().at(0, c);
    }
  }
  return Variable::FromOp(
      std::move(out), {x, gamma, beta}, [xhat, inv_std](Node& n) {
        const int rows = n.value.rows(), cols = n.value.cols();
        const Matrix& gmat = n.parents[1]->value;
        // gamma and beta gradients.
        if (n.parents[1]->requires_grad) {
          Matrix& gg = n.parents[1]->grad;
          for (int r = 0; r < rows; ++r) {
            const float* g = n.grad.row(r);
            const float* h = xhat->row(r);
            for (int c = 0; c < cols; ++c) gg.at(0, c) += g[c] * h[c];
          }
        }
        if (n.parents[2]->requires_grad) {
          Matrix& bg = n.parents[2]->grad;
          for (int r = 0; r < rows; ++r) {
            const float* g = n.grad.row(r);
            for (int c = 0; c < cols; ++c) bg.at(0, c) += g[c];
          }
        }
        if (!n.parents[0]->requires_grad) return;
        // dx = (istd / cols) * (cols*dxhat - sum(dxhat) - xhat*sum(dxhat*xhat))
        Matrix& xg = n.parents[0]->grad;
        for (int r = 0; r < rows; ++r) {
          const float* g = n.grad.row(r);
          const float* h = xhat->row(r);
          double s1 = 0.0, s2 = 0.0;
          for (int c = 0; c < cols; ++c) {
            const double dxh = g[c] * gmat.at(0, c);
            s1 += dxh;
            s2 += dxh * h[c];
          }
          const float istd = (*inv_std)[r];
          float* dst = xg.row(r);
          for (int c = 0; c < cols; ++c) {
            const double dxh = g[c] * gmat.at(0, c);
            dst[c] += static_cast<float>(
                istd * (dxh - s1 / cols - h[c] * s2 / cols));
          }
        }
      });
}

Variable BceWithLogits(const Variable& logits, const Matrix& targets,
                       const Matrix& weights) {
  assert(logits.rows() == targets.rows() && logits.cols() == targets.cols());
  assert(logits.rows() == weights.rows() && logits.cols() == weights.cols());
  double wsum = 0.0;
  for (int i = 0; i < weights.size(); ++i) wsum += weights.data()[i];
  const float inv_w = wsum > 0.0 ? static_cast<float>(1.0 / wsum) : 0.0f;
  double loss = 0.0;
  const Matrix& z = logits.value();
  for (int i = 0; i < z.size(); ++i) {
    const float zi = z.data()[i];
    const float yi = targets.data()[i];
    // loss_i = max(z,0) - z*y + log(1+exp(-|z|)).
    loss += weights.data()[i] *
            (std::max(zi, 0.0f) - zi * yi +
             std::log1p(std::exp(-std::fabs(zi))));
  }
  Matrix out(1, 1);
  out.at(0, 0) = static_cast<float>(loss) * inv_w;
  auto t = std::make_shared<Matrix>(targets);
  auto w = std::make_shared<Matrix>(weights);
  return Variable::FromOp(std::move(out), {logits}, [t, w, inv_w](Node& n) {
    if (!NeedsGrad(n, 0)) return;
    const float g = n.grad.at(0, 0) * inv_w;
    const Matrix& z = n.parents[0]->value;
    Matrix& pg = n.parents[0]->grad;
    for (int i = 0; i < z.size(); ++i) {
      const float zi = z.data()[i];
      const float sig = zi >= 0.0f ? 1.0f / (1.0f + std::exp(-zi))
                                   : std::exp(zi) / (1.0f + std::exp(zi));
      pg.data()[i] += g * w->data()[i] * (sig - t->data()[i]);
    }
  });
}

Variable MseLoss(const Variable& x, const Matrix& target) {
  assert(x.rows() == target.rows() && x.cols() == target.cols());
  return MeanAll(Square(Sub(x, Variable::Constant(target))));
}

}  // namespace rapid::nn
