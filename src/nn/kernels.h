#ifndef RAPID_NN_KERNELS_H_
#define RAPID_NN_KERNELS_H_

/// Runtime-dispatched SIMD math kernels.
///
/// Every dense-math hot loop in `rapid::nn` — GEMM and the elementwise /
/// activation passes — funnels through one function-pointer table selected
/// exactly once at startup:
///
///   * `kScalar` — the original portable loops, kept bit-for-bit identical
///     to the pre-kernel-layer code so the `ScoreBatch`-exactness and
///     snapshot gates hold unchanged on machines without AVX2 (and under
///     the forced-scalar CI fixture).
///   * `kAvx2` — blocked, AVX2/FMA-vectorized implementations compiled
///     into a separate translation unit with `-mavx2 -mfma` (gated by the
///     `RAPID_ENABLE_AVX2` CMake option and a compile probe).
///
/// Selection: `RAPID_KERNEL_BACKEND=scalar|avx2|auto` overrides; otherwise
/// CPUID decides (`auto`). Requesting `avx2` on a machine without it falls
/// back to scalar with a one-line stderr notice.
///
/// ## Exactness contract
///
/// Within one backend, every kernel is *shape-tiling independent*: the
/// value computed for an output element depends only on its own input
/// operands (its row of A and all of B for GEMM; its own input value for
/// elementwise maps; its own row for row passes), never on how many other
/// rows share the call. The AVX2 kernels guarantee this by using masked
/// vector tails — tail elements run the exact same instruction sequence as
/// full lanes — and by keeping one accumulation chain per output element
/// regardless of register blocking. This is what keeps the batched
/// `[B*L, d]` forward bitwise-equal to per-list forwards on *both*
/// backends. Across backends results differ by rounding only (FMA and
/// vectorized exp vs. two-step multiply-add and libm); the scalar-vs-AVX2
/// property suite bounds the drift, and snapshot canaries absorb it with
/// their existing tolerance.
namespace rapid::nn::kernel {

enum class Backend { kScalar, kAvx2 };

/// The dispatch table. All pointers are non-null for the active table.
/// GEMM entries compute `c (+)= op(a) * op(b)` over row-major buffers;
/// callers zero `c` first for the non-accumulating case so that both
/// forms share one accumulation chain per element.
struct KernelTable {
  /// c += a * b. a is (m x k), b is (k x n), c is (m x n).
  void (*gemm_nn)(const float* a, const float* b, float* c, int m, int n,
                  int k);
  /// c += a^T * b. a is (k x m), b is (k x n), c is (m x n).
  void (*gemm_tn)(const float* a, const float* b, float* c, int m, int n,
                  int k);
  /// c += a * b^T. a is (m x k), b is (n x k), c is (m x n).
  void (*gemm_nt)(const float* a, const float* b, float* c, int m, int n,
                  int k);

  /// y[i] = sigmoid(x[i]) (numerically stable for both signs).
  void (*sigmoid)(const float* x, float* y, int n);
  /// y[i] = tanh(x[i]).
  void (*tanh_act)(const float* x, float* y, int n);
  /// y[i] = max(x[i], 0).
  void (*relu)(const float* x, float* y, int n);
  /// In-place row softmax over a (rows x cols) row-major buffer:
  /// max-subtracted exp, then normalize. Matches `SoftmaxRows`.
  void (*softmax_rows)(float* data, int rows, int cols);

  /// y[i] = a[i] + b[i]. `y` may alias `a` (in-place add).
  void (*add)(const float* a, const float* b, float* y, int n);
  /// y[i] = a[i] * b[i]. `y` may alias `a`.
  void (*mul)(const float* a, const float* b, float* y, int n);
  /// y[i] += s * x[i].
  void (*axpy)(float* y, float s, const float* x, int n);
  /// y[i] *= s.
  void (*scale)(float* y, float s, int n);
  /// Adds the length-`cols` row `bias` to every row of (rows x cols) `a`.
  void (*bias_row)(float* a, const float* bias, int rows, int cols);
};

/// The active table (selected on first use, stable afterwards unless a
/// `ScopedBackendOverride` is live).
const KernelTable& Active();

/// The backend behind `Active()`.
Backend ActiveBackend();

/// "scalar" or "avx2".
const char* BackendName(Backend backend);

/// True when this build carries the AVX2 kernels *and* the CPU supports
/// AVX2+FMA.
bool Avx2Available();

/// The scalar table, always available (property tests compare against it).
const KernelTable& ScalarTable();

/// Testing/bench hook: forces `Active()` to the given backend for this
/// object's lifetime, restoring the previous selection on destruction.
/// Process-global and NOT safe against concurrent forwards — use only in
/// single-threaded test/bench phases. Forcing `kAvx2` when
/// `Avx2Available()` is false keeps scalar and reports it via `forced()`.
class ScopedBackendOverride {
 public:
  explicit ScopedBackendOverride(Backend backend);
  ~ScopedBackendOverride();
  ScopedBackendOverride(const ScopedBackendOverride&) = delete;
  ScopedBackendOverride& operator=(const ScopedBackendOverride&) = delete;

  /// The backend actually in force (differs from the request when AVX2 is
  /// unavailable).
  Backend forced() const { return forced_; }

 private:
  Backend previous_;
  Backend forced_;
};

}  // namespace rapid::nn::kernel

#endif  // RAPID_NN_KERNELS_H_
