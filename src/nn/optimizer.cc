#include "nn/optimizer.h"

#include <cmath>

namespace rapid::nn {

void Optimizer::ZeroGrad() {
  for (Variable& p : params_) p.ZeroGrad();
}

Sgd::Sgd(std::vector<Variable> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  if (momentum_ != 0.0f) {
    velocity_.reserve(params_.size());
    for (const Variable& p : params_) {
      velocity_.emplace_back(p.rows(), p.cols());
    }
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Matrix& w = params_[i].mutable_value();
    const Matrix& g = params_[i].grad();
    if (momentum_ != 0.0f) {
      Matrix& vel = velocity_[i];
      for (int j = 0; j < w.size(); ++j) {
        vel.data()[j] = momentum_ * vel.data()[j] + g.data()[j];
        w.data()[j] -= lr_ * vel.data()[j];
      }
    } else {
      for (int j = 0; j < w.size(); ++j) w.data()[j] -= lr_ * g.data()[j];
    }
  }
}

Adam::Adam(std::vector<Variable> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Variable& p : params_) {
    m_.emplace_back(p.rows(), p.cols());
    v_.emplace_back(p.rows(), p.cols());
  }
}

void Adam::Step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Matrix& w = params_[i].mutable_value();
    const Matrix& g = params_[i].grad();
    Matrix& m = m_[i];
    Matrix& v = v_[i];
    for (int j = 0; j < w.size(); ++j) {
      const float gj = g.data()[j];
      m.data()[j] = beta1_ * m.data()[j] + (1.0f - beta1_) * gj;
      v.data()[j] = beta2_ * v.data()[j] + (1.0f - beta2_) * gj * gj;
      const float mhat = m.data()[j] / bc1;
      const float vhat = v.data()[j] / bc2;
      w.data()[j] -= lr_ * (mhat / (std::sqrt(vhat) + eps_) +
                            weight_decay_ * w.data()[j]);
    }
  }
}

float ClipGradNorm(const std::vector<Variable>& params, float max_norm) {
  double total = 0.0;
  for (const Variable& p : params) {
    const Matrix& g = p.grad();
    for (int j = 0; j < g.size(); ++j) {
      total += static_cast<double>(g.data()[j]) * g.data()[j];
    }
  }
  const float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (Variable p : params) {  // Cheap handle copy; shares the node.
      Matrix& g = p.mutable_grad();
      for (int j = 0; j < g.size(); ++j) g.data()[j] *= scale;
    }
  }
  return norm;
}

}  // namespace rapid::nn
