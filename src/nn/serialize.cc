#include "nn/serialize.h"

#include <cstdint>
#include <fstream>
#include <ostream>

namespace rapid::nn {

namespace {
constexpr uint32_t kMagic = 0x52415044;  // "RAPD"
}  // namespace

bool SaveParams(std::ostream& out, const std::vector<Variable>& params) {
  if (!out) return false;
  const uint32_t magic = kMagic;
  const uint32_t count = static_cast<uint32_t>(params.size());
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const Variable& p : params) {
    const int32_t rows = p.rows();
    const int32_t cols = p.cols();
    out.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
    out.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
    out.write(reinterpret_cast<const char*>(p.value().data()),
              static_cast<std::streamsize>(sizeof(float)) * p.value().size());
  }
  return static_cast<bool>(out);
}

bool LoadParams(std::istream& in, std::vector<Variable>* params) {
  if (!in) return false;
  uint32_t magic = 0, count = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in || magic != kMagic || count != params->size()) return false;
  for (Variable& p : *params) {
    int32_t rows = 0, cols = 0;
    in.read(reinterpret_cast<char*>(&rows), sizeof(rows));
    in.read(reinterpret_cast<char*>(&cols), sizeof(cols));
    if (!in || rows != p.rows() || cols != p.cols()) return false;
    in.read(reinterpret_cast<char*>(p.mutable_value().data()),
            static_cast<std::streamsize>(sizeof(float)) * p.value().size());
    if (!in) return false;
  }
  return true;
}

bool SaveParams(const std::string& path, const std::vector<Variable>& params) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  return SaveParams(out, params);
}

bool LoadParams(const std::string& path, std::vector<Variable>* params) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  return LoadParams(in, params);
}

}  // namespace rapid::nn
