#ifndef RAPID_NN_SERIALIZE_H_
#define RAPID_NN_SERIALIZE_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "nn/variable.h"

namespace rapid::nn {

/// Writes the values of `params` to `path` in a small binary format
/// (magic, count, then per-parameter rows/cols/data). Returns false on I/O
/// failure.
bool SaveParams(const std::string& path, const std::vector<Variable>& params);

/// Loads parameter values saved by `SaveParams` back into `params`.
/// The parameter list must have the same length and per-entry shapes as at
/// save time. Returns false on I/O failure or shape mismatch.
bool LoadParams(const std::string& path, std::vector<Variable>* params);

/// Stream variants of the same format, so parameter blobs can be embedded
/// inside larger container files (e.g. serving snapshots that prepend a
/// model-configuration header). The stream is left positioned just past the
/// parameter blob on success.
bool SaveParams(std::ostream& out, const std::vector<Variable>& params);
bool LoadParams(std::istream& in, std::vector<Variable>* params);

}  // namespace rapid::nn

#endif  // RAPID_NN_SERIALIZE_H_
