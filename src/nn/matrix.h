#ifndef RAPID_NN_MATRIX_H_
#define RAPID_NN_MATRIX_H_

#include <cstddef>
#include <random>
#include <string>
#include <vector>

namespace rapid::nn {

/// A dense row-major 2-D matrix of single-precision floats.
///
/// `Matrix` is the storage type underneath the autograd layer. All neural
/// computations in this library are expressed over 2-D matrices; batched
/// sequence models iterate over timesteps with `(batch x feature)` slices so
/// that the hot loops stay inside the matmul kernels below.
class Matrix {
 public:
  /// Creates an empty 0x0 matrix.
  Matrix() = default;

  /// Creates a `rows x cols` matrix initialized to zero.
  Matrix(int rows, int cols);

  /// Creates a `rows x cols` matrix from a flat row-major buffer.
  /// `values.size()` must equal `rows * cols`.
  Matrix(int rows, int cols, std::vector<float> values);

  Matrix(const Matrix&) = default;
  Matrix& operator=(const Matrix&) = default;
  Matrix(Matrix&&) = default;
  Matrix& operator=(Matrix&&) = default;

  /// Number of rows.
  int rows() const { return rows_; }
  /// Number of columns.
  int cols() const { return cols_; }
  /// Total number of elements.
  int size() const { return rows_ * cols_; }
  /// True if the matrix holds no elements.
  bool empty() const { return size() == 0; }

  /// Mutable element access (no bounds checks in release builds).
  float& at(int r, int c) { return data_[static_cast<size_t>(r) * cols_ + c]; }
  /// Const element access.
  float at(int r, int c) const {
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  /// Raw row-major buffer.
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Pointer to the start of row `r`.
  float* row(int r) { return data_.data() + static_cast<size_t>(r) * cols_; }
  const float* row(int r) const {
    return data_.data() + static_cast<size_t>(r) * cols_;
  }

  /// Sets every element to `v`.
  void Fill(float v);
  /// Sets every element to zero.
  void SetZero() { Fill(0.0f); }

  /// Returns a `rows x cols` matrix of zeros.
  static Matrix Zeros(int rows, int cols) { return Matrix(rows, cols); }
  /// Returns a `rows x cols` matrix with every element `v`.
  static Matrix Constant(int rows, int cols, float v);
  /// Returns the `n x n` identity.
  static Matrix Identity(int n);
  /// Returns a matrix with i.i.d. N(0, stddev^2) entries.
  static Matrix Randn(int rows, int cols, float stddev, std::mt19937_64& rng);
  /// Returns a matrix with i.i.d. Uniform(lo, hi) entries.
  static Matrix Uniform(int rows, int cols, float lo, float hi,
                        std::mt19937_64& rng);
  /// Builds a `1 x values.size()` row vector.
  static Matrix RowVector(const std::vector<float>& values);
  /// Builds a `values.size() x 1` column vector.
  static Matrix ColVector(const std::vector<float>& values);

  /// Returns the transpose.
  Matrix Transposed() const;

  /// Sum of all elements.
  float Sum() const;
  /// Mean of all elements.
  float Mean() const;
  /// Maximum absolute element; 0 for an empty matrix.
  float MaxAbs() const;
  /// Frobenius norm.
  float Norm() const;

  /// True if shapes and all elements match exactly.
  bool Equals(const Matrix& other) const;
  /// True if shapes match and elements differ by at most `tol`.
  bool AllClose(const Matrix& other, float tol) const;

  /// Human-readable rendering for logs and test failures.
  std::string ToString() const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<float> data_;
};

/// Options for `Gemm`. Designated initializers keep call sites readable:
/// `Gemm(a, b, &out, {.trans_b = true, .accumulate = true})`.
struct GemmOpts {
  bool trans_a = false;
  bool trans_b = false;
  bool accumulate = false;
};

/// General matrix multiply: `out (+)= op(a) * op(b)` where `op` optionally
/// transposes. Shapes after transposition must contract: op(a) is (m x k),
/// op(b) is (k x n), out is (m x n).
///
/// With `accumulate == false` (default), `out` is shaped/zeroed and then
/// written; its existing buffer is reused when the shape already matches,
/// so a warm caller allocates nothing. With `accumulate == true`, `out`
/// must already have the exact result shape and is added into. `out` must
/// not alias `a` or `b`.
///
/// Dispatches to the runtime-selected kernel backend (see nn/kernels.h).
void Gemm(const Matrix& a, const Matrix& b, Matrix* out, GemmOpts opts = {});

/// out = a + b, elementwise; shapes must match.
Matrix Add(const Matrix& a, const Matrix& b);
/// out = a - b, elementwise; shapes must match.
Matrix Sub(const Matrix& a, const Matrix& b);
/// out = a ⊙ b, elementwise; shapes must match.
Matrix Mul(const Matrix& a, const Matrix& b);
/// a += b, elementwise; shapes must match.
void AddInPlace(Matrix* a, const Matrix& b);
/// a += s * b, elementwise (axpy); shapes must match.
void AxpyInPlace(Matrix* a, float s, const Matrix& b);
/// a *= s.
void ScaleInPlace(Matrix* a, float s);
/// Adds the `1 x cols` row vector `bias` to every row of `a`.
void AddRowBroadcastInPlace(Matrix* a, const Matrix& bias);

}  // namespace rapid::nn

#endif  // RAPID_NN_MATRIX_H_
