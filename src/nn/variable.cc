#include "nn/variable.h"

#include <cassert>
#include <unordered_set>

namespace rapid::nn {

Variable Variable::Constant(Matrix value) {
  auto node = std::make_shared<internal::Node>();
  node->value = std::move(value);
  node->requires_grad = false;
  node->is_leaf = true;
  return Variable(std::move(node));
}

Variable Variable::Parameter(Matrix value) {
  auto node = std::make_shared<internal::Node>();
  node->value = std::move(value);
  node->requires_grad = true;
  node->is_leaf = true;
  node->grad = Matrix(node->value.rows(), node->value.cols());
  return Variable(std::move(node));
}

namespace {
thread_local bool tl_grad_enabled = true;
}  // namespace

bool GradEnabled() { return tl_grad_enabled; }

NoGradScope::NoGradScope() : prev_(tl_grad_enabled) {
  tl_grad_enabled = false;
}

NoGradScope::~NoGradScope() { tl_grad_enabled = prev_; }

void Variable::ZeroGrad() {
  if (node_->grad.rows() != node_->value.rows() ||
      node_->grad.cols() != node_->value.cols()) {
    node_->grad = Matrix(node_->value.rows(), node_->value.cols());
  } else {
    node_->grad.SetZero();
  }
}

namespace {

// Iterative post-order DFS building a topological order of the graph
// reachable from `root`, restricted to nodes that require grad.
void TopoSort(const std::shared_ptr<internal::Node>& root,
              std::vector<internal::Node*>* order) {
  std::unordered_set<internal::Node*> visited;
  struct Frame {
    internal::Node* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  if (!root->requires_grad) return;
  stack.push_back({root.get(), 0});
  visited.insert(root.get());
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_parent < f.node->parents.size()) {
      internal::Node* p = f.node->parents[f.next_parent++].get();
      if (p->requires_grad && !visited.count(p)) {
        visited.insert(p);
        stack.push_back({p, 0});
      }
    } else {
      order->push_back(f.node);
      stack.pop_back();
    }
  }
}

}  // namespace

void Variable::Backward() {
  assert(node_->value.rows() == 1 && node_->value.cols() == 1 &&
         "Backward() must start from a scalar");
  if (!node_->requires_grad) return;

  std::vector<internal::Node*> order;
  TopoSort(node_, &order);

  // Ensure grad buffers exist and are zeroed for non-leaf nodes. Leaf
  // parameter grads accumulate across Backward calls (optimizer zeroes them).
  for (internal::Node* n : order) {
    if (n->grad.rows() != n->value.rows() ||
        n->grad.cols() != n->value.cols()) {
      n->grad = Matrix(n->value.rows(), n->value.cols());
    } else if (!n->is_leaf) {
      n->grad.SetZero();
    }
  }
  node_->grad.at(0, 0) = 1.0f;

  // `order` is post-order (parents before children), so iterate in reverse.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    internal::Node* n = *it;
    if (n->backward_fn) n->backward_fn(*n);
  }
}

}  // namespace rapid::nn
