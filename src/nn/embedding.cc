#include "nn/embedding.h"

#include <cassert>
#include <cmath>
#include <memory>

namespace rapid::nn {

Embedding::Embedding(int vocab, int dim, std::mt19937_64& rng)
    : table_(Variable::Parameter(
          Matrix::Randn(vocab, dim, 1.0f / std::sqrt(static_cast<float>(dim)),
                        rng))) {}

Variable Embedding::Lookup(const std::vector<int>& ids) const {
  const int dim = table_.cols();
  Matrix out(static_cast<int>(ids.size()), dim);
  for (size_t r = 0; r < ids.size(); ++r) {
    assert(ids[r] >= 0 && ids[r] < table_.rows());
    const float* src = table_.value().row(ids[r]);
    float* dst = out.row(static_cast<int>(r));
    for (int c = 0; c < dim; ++c) dst[c] = src[c];
  }
  auto ids_copy = std::make_shared<std::vector<int>>(ids);
  return Variable::FromOp(
      std::move(out), {table_}, [ids_copy](internal::Node& n) {
        if (!n.parents[0]->requires_grad) return;
        Matrix& tg = n.parents[0]->grad;
        for (size_t r = 0; r < ids_copy->size(); ++r) {
          const float* g = n.grad.row(static_cast<int>(r));
          float* dst = tg.row((*ids_copy)[r]);
          for (int c = 0; c < n.grad.cols(); ++c) dst[c] += g[c];
        }
      });
}

Variable Embedding::LookupOne(int id) const { return Lookup({id}); }

}  // namespace rapid::nn
