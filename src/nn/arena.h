#ifndef RAPID_NN_ARENA_H_
#define RAPID_NN_ARENA_H_

#include <cstddef>
#include <cstdint>

/// Thread-local scratch arenas for the inference hot path.
///
/// While an `ArenaScope` is live on a thread, every `operator new` on that
/// thread — `Matrix` buffers, autograd `Node`s, closure captures, container
/// rehashes — bump-allocates out of thread-local chunks instead of the
/// heap, and the matching `operator delete` is a no-op; the scope
/// destructor reclaims everything at once by rewinding the bump pointer.
/// Chunks are retained across scopes, so a *warm* scope (one whose peak
/// footprint fits chunks already reserved by an earlier scope on the same
/// thread) performs **zero heap allocations**: no `malloc`, no chunk
/// growth. `tests/arena_test.cc` pins that property for a steady-state
/// `RerankBatchInto` micro-batch using the per-thread counters below.
///
/// ## Lifetime rules (the contract)
///
///   1. Nothing allocated inside a scope may outlive it. Outputs must be
///      sized *before* the scope opens (see `ScoreBatch`) and only written
///      to inside; graph temporaries must be destroyed before the scope
///      closes (declare them after the `ArenaScope` so they unwind first).
///   2. Scopes nest: an inner scope rewinds to its own entry watermark and
///      leaves the outer scope's allocations intact.
///   3. A scope is thread-local state: do not hand arena-backed objects to
///      another thread, and do not hold one open across a blocking wait.
///   4. Deleting an arena pointer after its scope rewound is
///      use-after-reclaim, exactly like a heap use-after-free. Each block
///      carries a magic tag; `operator delete` aborts loudly on a tag it
///      does not recognize rather than corrupting the heap.
///
/// The switch `RAPID_ARENA=0|off` disables arenas process-wide (every
/// scope becomes a no-op and all allocation falls through to the heap);
/// under AddressSanitizer they default off so ASan keeps byte-accurate
/// redzones, and `RAPID_ARENA=1` forces them back on.
namespace rapid::nn::arena {

/// True when arenas are enabled for this process (env + sanitizer gate).
/// Decided once on first use.
bool Enabled();

/// RAII scope: from construction to destruction, this thread's `new`
/// routes into the thread-local arena. Destruction rewinds to the
/// construction-time watermark. No-op when `Enabled()` is false.
class ArenaScope {
 public:
  ArenaScope();
  ~ArenaScope();
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

  /// True when this scope actually activated the arena (false when the
  /// process gate is off).
  bool active() const { return active_; }

 private:
  void* chunk_ = nullptr;   // Chunk* watermark (opaque to callers).
  size_t used_ = 0;         // bytes used in `chunk_` at entry
  size_t total_used_ = 0;   // arena-wide bytes in use at entry
  bool active_ = false;
};

/// Monotonic per-thread allocation counters. Deltas across a region give
/// an exact allocation profile of that region on this thread.
struct ThreadCounters {
  uint64_t heap_allocs = 0;   // operator-new calls served by malloc
  uint64_t heap_frees = 0;    // operator-delete calls that hit free
  uint64_t arena_allocs = 0;  // operator-new calls served by the arena
  uint64_t chunk_mallocs = 0; // arena chunk growth events (cold scopes)
};

/// This thread's counters (cheap: reads thread-local integers).
ThreadCounters CountersThisThread();

/// This thread's arena footprint.
size_t ThreadBytesInUse();
size_t ThreadHighWaterBytes();
size_t ThreadReservedBytes();

/// Process-wide aggregates for `ServingMetrics` export.
struct GlobalStats {
  uint64_t heap_allocs = 0;
  uint64_t heap_frees = 0;
  uint64_t arena_allocs = 0;
  uint64_t chunk_mallocs = 0;
  uint64_t reserved_bytes = 0;    // live chunk capacity across all threads
  uint64_t high_water_bytes = 0;  // max bytes-in-use seen by any one thread
};

GlobalStats GlobalArenaStats();

}  // namespace rapid::nn::arena

#endif  // RAPID_NN_ARENA_H_
