// AVX2/FMA kernel backend. This translation unit is the only one compiled
// with -mavx2 -mfma (see src/nn/CMakeLists.txt); nothing here may be
// called unless `Avx2Available()` returned true.
//
// Exactness discipline (see kernels.h): every output element carries ONE
// accumulation chain whose operation sequence depends only on that
// element's operands — register blocking never reassociates a chain, and
// vector tails are handled with masked loads/stores so tail elements
// execute the exact same instruction sequence as full lanes. That makes
// each kernel shape-tiling independent, which is what the bitwise
// batched-vs-single gates rely on. Results are NOT bitwise-equal to the
// scalar backend (FMA contraction, vectorized exp); the scalar-vs-AVX2
// property suite bounds that drift.
//
// Finite-input contract: unlike the scalar GEMM (which skips zero
// multipliers), the FMA chain evaluates 0 * b; for non-finite operands the
// two backends therefore diverge beyond rounding. All in-tree callers feed
// finite features and weights.

#ifdef RAPID_HAVE_AVX2

#include <immintrin.h>

#include <cstdint>

#include "nn/kernels.h"

namespace rapid::nn::kernel {

namespace {

// Lane mask covering the first `r` (1..7) floats of a vector.
inline __m256i TailMask(int r) {
  alignas(32) static const int32_t kMaskSrc[16] = {-1, -1, -1, -1, -1, -1,
                                                   -1, -1, 0,  0,  0,  0,
                                                   0,  0,  0,  0};
  return _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kMaskSrc + 8 - r));
}

// exp(x) for finite x, Cephes-style: clamp, range-reduce by ln2 with a
// two-step Cody-Waite subtraction, degree-6 polynomial, scale by 2^n via
// the exponent field. ~1-2 ulp over the clamped range.
inline __m256 Exp256(__m256 x) {
  const __m256 kHi = _mm256_set1_ps(88.3762626647949f);
  const __m256 kLo = _mm256_set1_ps(-87.3365478515625f);
  x = _mm256_min_ps(_mm256_max_ps(x, kLo), kHi);

  const __m256 kLog2e = _mm256_set1_ps(1.44269504088896341f);
  __m256 n = _mm256_round_ps(_mm256_mul_ps(x, kLog2e),
                             _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  const __m256 kC1 = _mm256_set1_ps(0.693359375f);
  const __m256 kC2 = _mm256_set1_ps(-2.12194440e-4f);
  __m256 r = _mm256_fnmadd_ps(n, kC1, x);
  r = _mm256_fnmadd_ps(n, kC2, r);

  __m256 p = _mm256_set1_ps(1.9875691500e-4f);
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(1.3981999507e-3f));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(8.3334519073e-3f));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(4.1665795894e-2f));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(1.6666665459e-1f));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(5.0000001201e-1f));
  const __m256 r2 = _mm256_mul_ps(r, r);
  __m256 y = _mm256_fmadd_ps(p, r2, _mm256_add_ps(r, _mm256_set1_ps(1.0f)));

  const __m256i ni = _mm256_cvtps_epi32(n);
  const __m256i pow2 =
      _mm256_slli_epi32(_mm256_add_epi32(ni, _mm256_set1_epi32(127)), 23);
  return _mm256_mul_ps(y, _mm256_castsi256_ps(pow2));
}

// Fixed-order horizontal sum: (lo + hi) pairwise reduced. The reduction
// order is a pure function of the lane values, keeping dot products
// shape-tiling independent.
inline float HSum256(__m256 v) {
  __m128 s = _mm_add_ps(_mm256_castps256_ps128(v),
                        _mm256_extractf128_ps(v, 1));
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_movehdup_ps(s));
  return _mm_cvtss_f32(s);
}

inline float HMax256(__m256 v) {
  __m128 s = _mm_max_ps(_mm256_castps256_ps128(v),
                        _mm256_extractf128_ps(v, 1));
  s = _mm_max_ps(s, _mm_movehl_ps(s, s));
  s = _mm_max_ss(s, _mm_movehdup_ps(s));
  return _mm_cvtss_f32(s);
}

// ---------------------------------------------------------------------------
// GEMM: c += a * b. Register-blocked 4 rows x 16 columns; every row's
// j-lane keeps a single FMA chain over k, so the 4-row and 1-row paths
// produce bitwise-identical rows (row blocking must not change values).
// ---------------------------------------------------------------------------

// One row: crow[j..] += sum_k arow[kk] * b[kk][j] for a 16/8/masked tile.
inline void GemmRowTile16(const float* arow, const float* b, float* crow,
                          int j, int n, int k) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  for (int kk = 0; kk < k; ++kk) {
    const __m256 av = _mm256_broadcast_ss(arow + kk);
    const float* brow = b + static_cast<size_t>(kk) * n + j;
    acc0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow), acc0);
    acc1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + 8), acc1);
  }
  _mm256_storeu_ps(crow + j,
                   _mm256_add_ps(_mm256_loadu_ps(crow + j), acc0));
  _mm256_storeu_ps(crow + j + 8,
                   _mm256_add_ps(_mm256_loadu_ps(crow + j + 8), acc1));
}

inline void GemmRowTile8(const float* arow, const float* b, float* crow,
                         int j, int n, int k) {
  __m256 acc = _mm256_setzero_ps();
  for (int kk = 0; kk < k; ++kk) {
    const __m256 av = _mm256_broadcast_ss(arow + kk);
    acc = _mm256_fmadd_ps(
        av, _mm256_loadu_ps(b + static_cast<size_t>(kk) * n + j), acc);
  }
  _mm256_storeu_ps(crow + j,
                   _mm256_add_ps(_mm256_loadu_ps(crow + j), acc));
}

inline void GemmRowTileTail(const float* arow, const float* b, float* crow,
                            int j, int n, int k, int rem) {
  const __m256i mask = TailMask(rem);
  __m256 acc = _mm256_setzero_ps();
  for (int kk = 0; kk < k; ++kk) {
    const __m256 av = _mm256_broadcast_ss(arow + kk);
    acc = _mm256_fmadd_ps(
        av,
        _mm256_maskload_ps(b + static_cast<size_t>(kk) * n + j, mask),
        acc);
  }
  _mm256_maskstore_ps(
      crow + j, mask,
      _mm256_add_ps(_mm256_maskload_ps(crow + j, mask), acc));
}

// Four rows sharing each loaded b-tile (the b reuse is where the win over
// the one-row path comes from).
inline void GemmRows4Tile16(const float* a, int lda, const float* b,
                            float* c, int ldc, int j, int n, int k) {
  __m256 acc[4][2];
  for (int r = 0; r < 4; ++r) {
    acc[r][0] = _mm256_setzero_ps();
    acc[r][1] = _mm256_setzero_ps();
  }
  for (int kk = 0; kk < k; ++kk) {
    const float* brow = b + static_cast<size_t>(kk) * n + j;
    const __m256 b0 = _mm256_loadu_ps(brow);
    const __m256 b1 = _mm256_loadu_ps(brow + 8);
    for (int r = 0; r < 4; ++r) {
      const __m256 av =
          _mm256_broadcast_ss(a + static_cast<size_t>(r) * lda + kk);
      acc[r][0] = _mm256_fmadd_ps(av, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_ps(av, b1, acc[r][1]);
    }
  }
  for (int r = 0; r < 4; ++r) {
    float* crow = c + static_cast<size_t>(r) * ldc + j;
    _mm256_storeu_ps(crow, _mm256_add_ps(_mm256_loadu_ps(crow), acc[r][0]));
    _mm256_storeu_ps(crow + 8,
                     _mm256_add_ps(_mm256_loadu_ps(crow + 8), acc[r][1]));
  }
}

void Avx2GemmNN(const float* a, const float* b, float* c, int m, int n,
                int k) {
  const int n16 = n - n % 16;
  const int n8 = n - n % 8;
  int i = 0;
  for (; i + 4 <= m; i += 4) {
    const float* ablk = a + static_cast<size_t>(i) * k;
    float* cblk = c + static_cast<size_t>(i) * n;
    int j = 0;
    for (; j < n16; j += 16) GemmRows4Tile16(ablk, k, b, cblk, n, j, n, k);
    for (int r = 0; r < 4; ++r) {
      const float* arow = ablk + static_cast<size_t>(r) * k;
      float* crow = cblk + static_cast<size_t>(r) * n;
      int jj = j;
      for (; jj < n8; jj += 8) GemmRowTile8(arow, b, crow, jj, n, k);
      if (jj < n) GemmRowTileTail(arow, b, crow, jj, n, k, n - jj);
    }
  }
  for (; i < m; ++i) {
    const float* arow = a + static_cast<size_t>(i) * k;
    float* crow = c + static_cast<size_t>(i) * n;
    int j = 0;
    for (; j < n16; j += 16) GemmRowTile16(arow, b, crow, j, n, k);
    for (; j < n8; j += 8) GemmRowTile8(arow, b, crow, j, n, k);
    if (j < n) GemmRowTileTail(arow, b, crow, j, n, k, n - j);
  }
}

// c += a^T * b; a is (k x m). Identical chain structure to NN — only the
// address of the broadcast scalar changes (column walk of a).
void Avx2GemmTN(const float* a, const float* b, float* c, int m, int n,
                int k) {
  const int n8 = n - n % 8;
  for (int i = 0; i < m; ++i) {
    const float* acol = a + i;  // a[kk][i] = acol[kk * m]
    float* crow = c + static_cast<size_t>(i) * n;
    int j = 0;
    for (; j < n8; j += 8) {
      __m256 acc = _mm256_setzero_ps();
      for (int kk = 0; kk < k; ++kk) {
        const __m256 av =
            _mm256_broadcast_ss(acol + static_cast<size_t>(kk) * m);
        acc = _mm256_fmadd_ps(
            av, _mm256_loadu_ps(b + static_cast<size_t>(kk) * n + j), acc);
      }
      _mm256_storeu_ps(crow + j,
                       _mm256_add_ps(_mm256_loadu_ps(crow + j), acc));
    }
    if (j < n) {
      const __m256i mask = TailMask(n - j);
      __m256 acc = _mm256_setzero_ps();
      for (int kk = 0; kk < k; ++kk) {
        const __m256 av =
            _mm256_broadcast_ss(acol + static_cast<size_t>(kk) * m);
        acc = _mm256_fmadd_ps(
            av,
            _mm256_maskload_ps(b + static_cast<size_t>(kk) * n + j, mask),
            acc);
      }
      _mm256_maskstore_ps(
          crow + j, mask,
          _mm256_add_ps(_mm256_maskload_ps(crow + j, mask), acc));
    }
  }
}

// c += a * b^T: independent dot products, vectorized over k with one FMA
// chain per (i, j) and a fixed-order horizontal reduction.
void Avx2GemmNT(const float* a, const float* b, float* c, int m, int n,
                int k) {
  const int k8 = k - k % 8;
  const int krem = k - k8;
  const __m256i kmask = krem > 0 ? TailMask(krem) : _mm256_setzero_si256();
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<size_t>(i) * k;
    float* crow = c + static_cast<size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const float* brow = b + static_cast<size_t>(j) * k;
      __m256 acc = _mm256_setzero_ps();
      for (int kk = 0; kk < k8; kk += 8) {
        acc = _mm256_fmadd_ps(_mm256_loadu_ps(arow + kk),
                              _mm256_loadu_ps(brow + kk), acc);
      }
      if (krem > 0) {
        acc = _mm256_fmadd_ps(_mm256_maskload_ps(arow + k8, kmask),
                              _mm256_maskload_ps(brow + k8, kmask), acc);
      }
      crow[j] += HSum256(acc);
    }
  }
}

// ---------------------------------------------------------------------------
// Elementwise / activation kernels. Tail elements run through the same
// masked vector path as full lanes (value depends only on the input value).
// ---------------------------------------------------------------------------

// sigmoid(v) = num / (1 + e) with e = exp(-|v|) and num = v >= 0 ? 1 : e —
// the vector form of the scalar code's two stable branches.
inline __m256 Sigmoid256(__m256 v) {
  const __m256 zero = _mm256_setzero_ps();
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 absv =
      _mm256_andnot_ps(_mm256_set1_ps(-0.0f), v);
  const __m256 e = Exp256(_mm256_sub_ps(zero, absv));
  const __m256 neg = _mm256_cmp_ps(v, zero, _CMP_LT_OQ);
  const __m256 num = _mm256_blendv_ps(one, e, neg);
  return _mm256_div_ps(num, _mm256_add_ps(one, e));
}

void Avx2Sigmoid(const float* x, float* y, int n) {
  const int n8 = n - n % 8;
  int i = 0;
  for (; i < n8; i += 8) {
    _mm256_storeu_ps(y + i, Sigmoid256(_mm256_loadu_ps(x + i)));
  }
  if (i < n) {
    const __m256i mask = TailMask(n - i);
    _mm256_maskstore_ps(y + i, mask,
                        Sigmoid256(_mm256_maskload_ps(x + i, mask)));
  }
}

// tanh(v) = sign(v) * (e - 1) / (e + 1) with e = exp(2|v|). Absolute error
// stays ~1e-7 across the range (relative error degrades near 0, where the
// absolute tolerance of the property suite covers it).
inline __m256 Tanh256(__m256 v) {
  const __m256 signbit = _mm256_set1_ps(-0.0f);
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 sign = _mm256_and_ps(v, signbit);
  const __m256 absv = _mm256_andnot_ps(signbit, v);
  const __m256 e = Exp256(_mm256_mul_ps(absv, _mm256_set1_ps(2.0f)));
  const __m256 t =
      _mm256_div_ps(_mm256_sub_ps(e, one), _mm256_add_ps(e, one));
  return _mm256_or_ps(t, sign);
}

void Avx2Tanh(const float* x, float* y, int n) {
  const int n8 = n - n % 8;
  int i = 0;
  for (; i < n8; i += 8) {
    _mm256_storeu_ps(y + i, Tanh256(_mm256_loadu_ps(x + i)));
  }
  if (i < n) {
    const __m256i mask = TailMask(n - i);
    _mm256_maskstore_ps(y + i, mask,
                        Tanh256(_mm256_maskload_ps(x + i, mask)));
  }
}

void Avx2Relu(const float* x, float* y, int n) {
  const __m256 zero = _mm256_setzero_ps();
  const int n8 = n - n % 8;
  int i = 0;
  for (; i < n8; i += 8) {
    _mm256_storeu_ps(y + i, _mm256_max_ps(_mm256_loadu_ps(x + i), zero));
  }
  if (i < n) {
    const __m256i mask = TailMask(n - i);
    _mm256_maskstore_ps(
        y + i, mask,
        _mm256_max_ps(_mm256_maskload_ps(x + i, mask), zero));
  }
}

void Avx2SoftmaxRows(float* data, int rows, int cols) {
  const int c8 = cols - cols % 8;
  const int rem = cols - c8;
  const __m256i mask = rem > 0 ? TailMask(rem) : _mm256_setzero_si256();
  const __m256 ninf = _mm256_set1_ps(-3.4028235e38f);
  for (int r = 0; r < rows; ++r) {
    float* row = data + static_cast<size_t>(r) * cols;
    // Row max (masked-out lanes pinned to -FLT_MAX).
    __m256 vmax = ninf;
    for (int c = 0; c < c8; c += 8) {
      vmax = _mm256_max_ps(vmax, _mm256_loadu_ps(row + c));
    }
    if (rem > 0) {
      const __m256 tail = _mm256_blendv_ps(
          ninf, _mm256_maskload_ps(row + c8, mask),
          _mm256_castsi256_ps(mask));
      vmax = _mm256_max_ps(vmax, tail);
    }
    const __m256 mx = _mm256_set1_ps(HMax256(vmax));
    // exp(x - max), accumulating the row sum.
    __m256 vsum = _mm256_setzero_ps();
    for (int c = 0; c < c8; c += 8) {
      const __m256 e = Exp256(_mm256_sub_ps(_mm256_loadu_ps(row + c), mx));
      _mm256_storeu_ps(row + c, e);
      vsum = _mm256_add_ps(vsum, e);
    }
    if (rem > 0) {
      const __m256 e =
          Exp256(_mm256_sub_ps(_mm256_maskload_ps(row + c8, mask), mx));
      _mm256_maskstore_ps(row + c8, mask, e);
      vsum = _mm256_add_ps(
          vsum, _mm256_and_ps(e, _mm256_castsi256_ps(mask)));
    }
    const __m256 inv = _mm256_set1_ps(1.0f / HSum256(vsum));
    for (int c = 0; c < c8; c += 8) {
      _mm256_storeu_ps(row + c,
                       _mm256_mul_ps(_mm256_loadu_ps(row + c), inv));
    }
    if (rem > 0) {
      _mm256_maskstore_ps(
          row + c8, mask,
          _mm256_mul_ps(_mm256_maskload_ps(row + c8, mask), inv));
    }
  }
}

void Avx2Add(const float* a, const float* b, float* y, int n) {
  const int n8 = n - n % 8;
  int i = 0;
  for (; i < n8; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_add_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  if (i < n) {
    const __m256i mask = TailMask(n - i);
    _mm256_maskstore_ps(y + i, mask,
                        _mm256_add_ps(_mm256_maskload_ps(a + i, mask),
                                      _mm256_maskload_ps(b + i, mask)));
  }
}

void Avx2Mul(const float* a, const float* b, float* y, int n) {
  const int n8 = n - n % 8;
  int i = 0;
  for (; i < n8; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_mul_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  if (i < n) {
    const __m256i mask = TailMask(n - i);
    _mm256_maskstore_ps(y + i, mask,
                        _mm256_mul_ps(_mm256_maskload_ps(a + i, mask),
                                      _mm256_maskload_ps(b + i, mask)));
  }
}

void Avx2Axpy(float* y, float s, const float* x, int n) {
  const __m256 vs = _mm256_set1_ps(s);
  const int n8 = n - n % 8;
  int i = 0;
  for (; i < n8; i += 8) {
    _mm256_storeu_ps(y + i, _mm256_fmadd_ps(vs, _mm256_loadu_ps(x + i),
                                            _mm256_loadu_ps(y + i)));
  }
  if (i < n) {
    const __m256i mask = TailMask(n - i);
    _mm256_maskstore_ps(y + i, mask,
                        _mm256_fmadd_ps(vs, _mm256_maskload_ps(x + i, mask),
                                        _mm256_maskload_ps(y + i, mask)));
  }
}

void Avx2Scale(float* y, float s, int n) {
  const __m256 vs = _mm256_set1_ps(s);
  const int n8 = n - n % 8;
  int i = 0;
  for (; i < n8; i += 8) {
    _mm256_storeu_ps(y + i, _mm256_mul_ps(_mm256_loadu_ps(y + i), vs));
  }
  if (i < n) {
    const __m256i mask = TailMask(n - i);
    _mm256_maskstore_ps(
        y + i, mask,
        _mm256_mul_ps(_mm256_maskload_ps(y + i, mask), vs));
  }
}

void Avx2BiasRow(float* a, const float* bias, int rows, int cols) {
  const int c8 = cols - cols % 8;
  const int rem = cols - c8;
  const __m256i mask = rem > 0 ? TailMask(rem) : _mm256_setzero_si256();
  for (int r = 0; r < rows; ++r) {
    float* arow = a + static_cast<size_t>(r) * cols;
    for (int c = 0; c < c8; c += 8) {
      _mm256_storeu_ps(arow + c, _mm256_add_ps(_mm256_loadu_ps(arow + c),
                                               _mm256_loadu_ps(bias + c)));
    }
    if (rem > 0) {
      _mm256_maskstore_ps(
          arow + c8, mask,
          _mm256_add_ps(_mm256_maskload_ps(arow + c8, mask),
                        _mm256_maskload_ps(bias + c8, mask)));
    }
  }
}

constexpr KernelTable kAvx2Table = {
    &Avx2GemmNN, &Avx2GemmTN, &Avx2GemmNT,
    &Avx2Sigmoid, &Avx2Tanh, &Avx2Relu, &Avx2SoftmaxRows,
    &Avx2Add, &Avx2Mul, &Avx2Axpy, &Avx2Scale, &Avx2BiasRow,
};

}  // namespace

const KernelTable& Avx2Table() { return kAvx2Table; }

}  // namespace rapid::nn::kernel

#endif  // RAPID_HAVE_AVX2
