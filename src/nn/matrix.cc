#include "nn/matrix.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "nn/kernels.h"

namespace rapid::nn {

Matrix::Matrix(int rows, int cols)
    : rows_(rows), cols_(cols), data_(static_cast<size_t>(rows) * cols, 0.0f) {
  assert(rows >= 0 && cols >= 0);
}

Matrix::Matrix(int rows, int cols, std::vector<float> values)
    : rows_(rows), cols_(cols), data_(std::move(values)) {
  assert(static_cast<size_t>(rows) * cols == data_.size());
}

void Matrix::Fill(float v) {
  for (float& x : data_) x = v;
}

Matrix Matrix::Constant(int rows, int cols, float v) {
  Matrix m(rows, cols);
  m.Fill(v);
  return m;
}

Matrix Matrix::Identity(int n) {
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) m.at(i, i) = 1.0f;
  return m;
}

Matrix Matrix::Randn(int rows, int cols, float stddev, std::mt19937_64& rng) {
  Matrix m(rows, cols);
  std::normal_distribution<float> dist(0.0f, stddev);
  for (int i = 0; i < m.size(); ++i) m.data()[i] = dist(rng);
  return m;
}

Matrix Matrix::Uniform(int rows, int cols, float lo, float hi,
                       std::mt19937_64& rng) {
  Matrix m(rows, cols);
  std::uniform_real_distribution<float> dist(lo, hi);
  for (int i = 0; i < m.size(); ++i) m.data()[i] = dist(rng);
  return m;
}

Matrix Matrix::RowVector(const std::vector<float>& values) {
  return Matrix(1, static_cast<int>(values.size()), values);
}

Matrix Matrix::ColVector(const std::vector<float>& values) {
  return Matrix(static_cast<int>(values.size()), 1, values);
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) out.at(c, r) = at(r, c);
  }
  return out;
}

float Matrix::Sum() const {
  double s = 0.0;
  for (float x : data_) s += x;
  return static_cast<float>(s);
}

float Matrix::Mean() const { return empty() ? 0.0f : Sum() / size(); }

float Matrix::MaxAbs() const {
  float m = 0.0f;
  for (float x : data_) m = std::max(m, std::fabs(x));
  return m;
}

float Matrix::Norm() const {
  double s = 0.0;
  for (float x : data_) s += static_cast<double>(x) * x;
  return static_cast<float>(std::sqrt(s));
}

bool Matrix::Equals(const Matrix& other) const {
  return rows_ == other.rows_ && cols_ == other.cols_ &&
         data_ == other.data_;
}

bool Matrix::AllClose(const Matrix& other, float tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (int i = 0; i < size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

std::string Matrix::ToString() const {
  std::ostringstream os;
  os << "Matrix(" << rows_ << "x" << cols_ << ")[";
  const int max_show = 8;
  for (int i = 0; i < std::min(size(), max_show); ++i) {
    if (i) os << ", ";
    os << data_[i];
  }
  if (size() > max_show) os << ", ...";
  os << "]";
  return os.str();
}

void Gemm(const Matrix& a, const Matrix& b, Matrix* out, GemmOpts opts) {
  const int m = opts.trans_a ? a.cols() : a.rows();
  const int k = opts.trans_a ? a.rows() : a.cols();
  const int n = opts.trans_b ? b.rows() : b.cols();
  assert(k == (opts.trans_b ? b.cols() : b.rows()));
  if (opts.accumulate) {
    assert(out->rows() == m && out->cols() == n);
  } else if (out->rows() != m || out->cols() != n) {
    *out = Matrix(m, n);
  } else {
    // Warm path: reuse the existing buffer. Zeroing first lets both forms
    // share one accumulation chain per element in the kernels.
    out->SetZero();
  }
  if (m == 0 || n == 0 || k == 0) return;
  const kernel::KernelTable& kt = kernel::Active();
  if (!opts.trans_a && !opts.trans_b) {
    kt.gemm_nn(a.data(), b.data(), out->data(), m, n, k);
  } else if (opts.trans_a && !opts.trans_b) {
    kt.gemm_tn(a.data(), b.data(), out->data(), m, n, k);
  } else if (!opts.trans_a && opts.trans_b) {
    kt.gemm_nt(a.data(), b.data(), out->data(), m, n, k);
  } else {
    // Doubly-transposed form: no hot caller, one backend-independent
    // reference loop. out += a^T * b^T; a is (k x m), b is (n x k).
    for (int i = 0; i < m; ++i) {
      float* orow = out->row(i);
      for (int j = 0; j < n; ++j) {
        const float* brow = b.row(j);
        double s = 0.0;
        for (int kk = 0; kk < k; ++kk) s += a.at(kk, i) * brow[kk];
        orow[j] += static_cast<float>(s);
      }
    }
  }
}

Matrix Add(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  Matrix out = a;
  kernel::Active().add(out.data(), b.data(), out.data(), out.size());
  return out;
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  Matrix out = a;
  // a - b == a + (-1)*b exactly in IEEE, so axpy keeps this bit-exact.
  kernel::Active().axpy(out.data(), -1.0f, b.data(), out.size());
  return out;
}

Matrix Mul(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  Matrix out = a;
  kernel::Active().mul(out.data(), b.data(), out.data(), out.size());
  return out;
}

void AddInPlace(Matrix* a, const Matrix& b) {
  assert(a->rows() == b.rows() && a->cols() == b.cols());
  kernel::Active().add(a->data(), b.data(), a->data(), a->size());
}

void AxpyInPlace(Matrix* a, float s, const Matrix& b) {
  assert(a->rows() == b.rows() && a->cols() == b.cols());
  kernel::Active().axpy(a->data(), s, b.data(), a->size());
}

void ScaleInPlace(Matrix* a, float s) {
  kernel::Active().scale(a->data(), s, a->size());
}

void AddRowBroadcastInPlace(Matrix* a, const Matrix& bias) {
  assert(bias.rows() == 1 && bias.cols() == a->cols());
  kernel::Active().bias_row(a->data(), bias.data(), a->rows(), a->cols());
}

}  // namespace rapid::nn
