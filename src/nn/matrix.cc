#include "nn/matrix.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace rapid::nn {

Matrix::Matrix(int rows, int cols)
    : rows_(rows), cols_(cols), data_(static_cast<size_t>(rows) * cols, 0.0f) {
  assert(rows >= 0 && cols >= 0);
}

Matrix::Matrix(int rows, int cols, std::vector<float> values)
    : rows_(rows), cols_(cols), data_(std::move(values)) {
  assert(static_cast<size_t>(rows) * cols == data_.size());
}

void Matrix::Fill(float v) {
  for (float& x : data_) x = v;
}

Matrix Matrix::Constant(int rows, int cols, float v) {
  Matrix m(rows, cols);
  m.Fill(v);
  return m;
}

Matrix Matrix::Identity(int n) {
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) m.at(i, i) = 1.0f;
  return m;
}

Matrix Matrix::Randn(int rows, int cols, float stddev, std::mt19937_64& rng) {
  Matrix m(rows, cols);
  std::normal_distribution<float> dist(0.0f, stddev);
  for (int i = 0; i < m.size(); ++i) m.data()[i] = dist(rng);
  return m;
}

Matrix Matrix::Uniform(int rows, int cols, float lo, float hi,
                       std::mt19937_64& rng) {
  Matrix m(rows, cols);
  std::uniform_real_distribution<float> dist(lo, hi);
  for (int i = 0; i < m.size(); ++i) m.data()[i] = dist(rng);
  return m;
}

Matrix Matrix::RowVector(const std::vector<float>& values) {
  return Matrix(1, static_cast<int>(values.size()), values);
}

Matrix Matrix::ColVector(const std::vector<float>& values) {
  return Matrix(static_cast<int>(values.size()), 1, values);
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) out.at(c, r) = at(r, c);
  }
  return out;
}

float Matrix::Sum() const {
  double s = 0.0;
  for (float x : data_) s += x;
  return static_cast<float>(s);
}

float Matrix::Mean() const { return empty() ? 0.0f : Sum() / size(); }

float Matrix::MaxAbs() const {
  float m = 0.0f;
  for (float x : data_) m = std::max(m, std::fabs(x));
  return m;
}

float Matrix::Norm() const {
  double s = 0.0;
  for (float x : data_) s += static_cast<double>(x) * x;
  return static_cast<float>(std::sqrt(s));
}

bool Matrix::Equals(const Matrix& other) const {
  return rows_ == other.rows_ && cols_ == other.cols_ &&
         data_ == other.data_;
}

bool Matrix::AllClose(const Matrix& other, float tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (int i = 0; i < size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

std::string Matrix::ToString() const {
  std::ostringstream os;
  os << "Matrix(" << rows_ << "x" << cols_ << ")[";
  const int max_show = 8;
  for (int i = 0; i < std::min(size(), max_show); ++i) {
    if (i) os << ", ";
    os << data_[i];
  }
  if (size() > max_show) os << ", ...";
  os << "]";
  return os.str();
}

namespace {

// Core matmul kernel: out(+)= a * b with the i-k-j loop order so the inner
// loop streams over contiguous rows of `b` and `out`.
void MatMulKernel(const Matrix& a, const Matrix& b, Matrix* out,
                  bool accumulate) {
  assert(a.cols() == b.rows());
  const int m = a.rows(), k = a.cols(), n = b.cols();
  if (!accumulate || out->rows() != m || out->cols() != n) {
    assert(!accumulate || out->empty());
    *out = Matrix(m, n);
  }
  for (int i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    float* orow = out->row(i);
    for (int kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      const float* brow = b.row(kk);
      for (int j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

}  // namespace

void MatMul(const Matrix& a, const Matrix& b, Matrix* out) {
  MatMulKernel(a, b, out, /*accumulate=*/false);
}

void MatMulAcc(const Matrix& a, const Matrix& b, Matrix* out) {
  assert(out->rows() == a.rows() && out->cols() == b.cols());
  MatMulKernel(a, b, out, /*accumulate=*/true);
}

void MatMulTransAAcc(const Matrix& a, const Matrix& b, Matrix* out) {
  // out(+)= a^T * b ; a is (k x m), b is (k x n), out is (m x n).
  assert(a.rows() == b.rows());
  assert(out->rows() == a.cols() && out->cols() == b.cols());
  const int k = a.rows(), m = a.cols(), n = b.cols();
  for (int kk = 0; kk < k; ++kk) {
    const float* arow = a.row(kk);
    const float* brow = b.row(kk);
    for (int i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* orow = out->row(i);
      for (int j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

void MatMulTransBAcc(const Matrix& a, const Matrix& b, Matrix* out) {
  // out(+)= a * b^T ; a is (m x k), b is (n x k), out is (m x n).
  assert(a.cols() == b.cols());
  assert(out->rows() == a.rows() && out->cols() == b.rows());
  const int m = a.rows(), k = a.cols(), n = b.rows();
  for (int i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    float* orow = out->row(i);
    for (int j = 0; j < n; ++j) {
      const float* brow = b.row(j);
      double s = 0.0;
      for (int kk = 0; kk < k; ++kk) s += arow[kk] * brow[kk];
      orow[j] += static_cast<float>(s);
    }
  }
}

Matrix Add(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  Matrix out = a;
  AddInPlace(&out, b);
  return out;
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  Matrix out = a;
  for (int i = 0; i < out.size(); ++i) out.data()[i] -= b.data()[i];
  return out;
}

Matrix Mul(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  Matrix out = a;
  for (int i = 0; i < out.size(); ++i) out.data()[i] *= b.data()[i];
  return out;
}

void AddInPlace(Matrix* a, const Matrix& b) {
  assert(a->rows() == b.rows() && a->cols() == b.cols());
  for (int i = 0; i < a->size(); ++i) a->data()[i] += b.data()[i];
}

void AxpyInPlace(Matrix* a, float s, const Matrix& b) {
  assert(a->rows() == b.rows() && a->cols() == b.cols());
  for (int i = 0; i < a->size(); ++i) a->data()[i] += s * b.data()[i];
}

void ScaleInPlace(Matrix* a, float s) {
  for (int i = 0; i < a->size(); ++i) a->data()[i] *= s;
}

void AddRowBroadcastInPlace(Matrix* a, const Matrix& bias) {
  assert(bias.rows() == 1 && bias.cols() == a->cols());
  for (int r = 0; r < a->rows(); ++r) {
    float* arow = a->row(r);
    for (int c = 0; c < a->cols(); ++c) arow[c] += bias.at(0, c);
  }
}

}  // namespace rapid::nn
