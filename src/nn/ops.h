#ifndef RAPID_NN_OPS_H_
#define RAPID_NN_OPS_H_

#include <random>
#include <vector>

#include "nn/variable.h"

namespace rapid::nn {

/// Differentiable ops over `Variable`. Each function runs the forward
/// computation eagerly and records a backward closure on the output node.
///
/// Shape conventions follow the library-wide `(batch x feature)` layout.

/// Matrix product: `(m x k) * (k x n) -> (m x n)`.
Variable MatMul(const Variable& a, const Variable& b);

/// Elementwise sum; shapes must match.
Variable Add(const Variable& a, const Variable& b);

/// Adds a `1 x cols` bias row to every row of `x`.
Variable AddRowBroadcast(const Variable& x, const Variable& bias);

/// Elementwise difference; shapes must match.
Variable Sub(const Variable& a, const Variable& b);

/// Elementwise (Hadamard) product; shapes must match.
Variable Mul(const Variable& a, const Variable& b);

/// Multiplies every element of row `r` of `x` by `s(r, 0)`.
/// `s` must be `(x.rows() x 1)`. Used for per-row sequence masks.
Variable MulColBroadcast(const Variable& x, const Variable& s);

/// Multiplies every row of `x` elementwise by the `1 x cols` row vector `v`
/// (e.g. weighting per-topic columns by a preference distribution).
Variable MulRowBroadcast(const Variable& x, const Variable& v);

/// Multiplies every element by the constant `s`.
Variable Scale(const Variable& a, float s);

/// Adds the constant `s` to every element.
Variable AddScalar(const Variable& a, float s);

/// Elementwise logistic sigmoid.
Variable Sigmoid(const Variable& x);

/// Elementwise hyperbolic tangent.
Variable Tanh(const Variable& x);

/// Elementwise rectified linear unit.
Variable Relu(const Variable& x);

/// Elementwise softplus `log(1 + e^x)` (numerically stable).
Variable Softplus(const Variable& x);

/// Elementwise square.
Variable Square(const Variable& x);

/// Elementwise natural exponential.
Variable Exp(const Variable& x);

/// Elementwise natural logarithm; inputs must be positive.
Variable Log(const Variable& x);

/// Row-wise softmax: each row of the output sums to 1.
Variable SoftmaxRows(const Variable& x);

/// Horizontal concatenation `[a_1, ..., a_n]`; all inputs share `rows`.
Variable ConcatCols(const std::vector<Variable>& parts);

/// Vertical concatenation (stacking); all inputs share `cols`.
Variable ConcatRows(const std::vector<Variable>& parts);

/// Column slice `[start, start+len)` of every row.
Variable SliceCols(const Variable& x, int start, int len);

/// Row slice `[start, start+len)`.
Variable SliceRows(const Variable& x, int start, int len);

/// Row gather: output row `i` is row `rows[i]` of `x`. Indices may repeat
/// (tiling a row) and need not cover `x`; the backward scatter-adds each
/// output-row gradient into its source row. Used to reorder time-major RNN
/// step outputs into list-major batches (see rerank::NeuralReranker).
Variable GatherRows(const Variable& x, std::vector<int> rows);

/// Matrix transpose.
Variable Transpose(const Variable& x);

/// Reshapes `(r x c)` into a single `(1 x r*c)` row (row-major order).
Variable FlattenToRow(const Variable& x);

/// Sum of all elements, as a `1x1` variable.
Variable SumAll(const Variable& x);

/// Mean of all elements, as a `1x1` variable.
Variable MeanAll(const Variable& x);

/// Column-wise mean over rows: `(r x c) -> (1 x c)`.
Variable MeanRows(const Variable& x);

/// Row-wise sum over columns: `(r x c) -> (r x 1)`.
Variable SumCols(const Variable& x);

/// Inverted-dropout regularization. With probability `p` an element is
/// zeroed, survivors are scaled by `1/(1-p)`. Identity when `!training`.
Variable Dropout(const Variable& x, float p, bool training,
                 std::mt19937_64& rng);

/// Layer normalization over each row, followed by an affine map with the
/// learned `1 x cols` `gamma` (scale) and `beta` (shift).
Variable LayerNorm(const Variable& x, const Variable& gamma,
                   const Variable& beta, float eps = 1e-5f);

/// Numerically stable binary cross-entropy on logits.
///
/// `targets` (0/1) and `weights` (importance per element; use 1 to include,
/// 0 to mask padding) are plain matrices, not differentiated through.
/// Returns the weighted mean loss as a `1x1` variable; the mean divides by
/// `sum(weights)` (or 1 if that is 0).
Variable BceWithLogits(const Variable& logits, const Matrix& targets,
                       const Matrix& weights);

/// Mean squared error `mean((x - target)^2)` against a constant target.
Variable MseLoss(const Variable& x, const Matrix& target);

}  // namespace rapid::nn

#endif  // RAPID_NN_OPS_H_
