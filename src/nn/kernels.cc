#include "nn/kernels.h"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace rapid::nn::kernel {

namespace {

// ---------------------------------------------------------------------------
// Scalar backend. These loops are the pre-kernel-layer implementations moved
// verbatim from nn/matrix.cc and nn/ops.cc: the scalar backend must stay
// bit-exact with the code the committed snapshot canaries and exactness
// gates were recorded against. Do not "improve" the arithmetic here.
// ---------------------------------------------------------------------------

// c += a * b with the i-k-j loop order so the inner loop streams over
// contiguous rows of `b` and `c`.
void ScalarGemmNN(const float* a, const float* b, float* c, int m, int n,
                  int k) {
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<size_t>(i) * k;
    float* crow = c + static_cast<size_t>(i) * n;
    for (int kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      const float* brow = b + static_cast<size_t>(kk) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

// c += a^T * b ; a is (k x m), b is (k x n), c is (m x n).
void ScalarGemmTN(const float* a, const float* b, float* c, int m, int n,
                  int k) {
  for (int kk = 0; kk < k; ++kk) {
    const float* arow = a + static_cast<size_t>(kk) * m;
    const float* brow = b + static_cast<size_t>(kk) * n;
    for (int i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c + static_cast<size_t>(i) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

// c += a * b^T ; a is (m x k), b is (n x k), c is (m x n).
void ScalarGemmNT(const float* a, const float* b, float* c, int m, int n,
                  int k) {
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<size_t>(i) * k;
    float* crow = c + static_cast<size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const float* brow = b + static_cast<size_t>(j) * k;
      double s = 0.0;
      for (int kk = 0; kk < k; ++kk) s += arow[kk] * brow[kk];
      crow[j] += static_cast<float>(s);
    }
  }
}

void ScalarSigmoid(const float* x, float* y, int n) {
  for (int i = 0; i < n; ++i) {
    const float v = x[i];
    y[i] = v >= 0.0f ? 1.0f / (1.0f + std::exp(-v))
                     : std::exp(v) / (1.0f + std::exp(v));
  }
}

void ScalarTanh(const float* x, float* y, int n) {
  for (int i = 0; i < n; ++i) y[i] = std::tanh(x[i]);
}

void ScalarRelu(const float* x, float* y, int n) {
  for (int i = 0; i < n; ++i) y[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

void ScalarSoftmaxRows(float* data, int rows, int cols) {
  for (int r = 0; r < rows; ++r) {
    float* row = data + static_cast<size_t>(r) * cols;
    float mx = row[0];
    for (int c = 1; c < cols; ++c) mx = std::max(mx, row[c]);
    double sum = 0.0;
    for (int c = 0; c < cols; ++c) {
      row[c] = std::exp(row[c] - mx);
      sum += row[c];
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (int c = 0; c < cols; ++c) row[c] *= inv;
  }
}

void ScalarAdd(const float* a, const float* b, float* y, int n) {
  for (int i = 0; i < n; ++i) y[i] = a[i] + b[i];
}

void ScalarMul(const float* a, const float* b, float* y, int n) {
  for (int i = 0; i < n; ++i) y[i] = a[i] * b[i];
}

void ScalarAxpy(float* y, float s, const float* x, int n) {
  for (int i = 0; i < n; ++i) y[i] += s * x[i];
}

void ScalarScale(float* y, float s, int n) {
  for (int i = 0; i < n; ++i) y[i] *= s;
}

void ScalarBiasRow(float* a, const float* bias, int rows, int cols) {
  for (int r = 0; r < rows; ++r) {
    float* arow = a + static_cast<size_t>(r) * cols;
    for (int c = 0; c < cols; ++c) arow[c] += bias[c];
  }
}

constexpr KernelTable kScalarTable = {
    &ScalarGemmNN, &ScalarGemmTN, &ScalarGemmNT,
    &ScalarSigmoid, &ScalarTanh, &ScalarRelu, &ScalarSoftmaxRows,
    &ScalarAdd, &ScalarMul, &ScalarAxpy, &ScalarScale, &ScalarBiasRow,
};

// ---------------------------------------------------------------------------
// Dispatch. The AVX2 table lives in kernels_avx2.cc (compiled with
// -mavx2 -mfma) and is referenced only when the build carries it.
// ---------------------------------------------------------------------------

bool CpuHasAvx2Fma() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_cpu_init();
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

Backend SelectStartupBackend() {
  const char* env = std::getenv("RAPID_KERNEL_BACKEND");
  const bool available = Avx2Available();
  if (env != nullptr && *env != '\0') {
    if (std::strcmp(env, "scalar") == 0) return Backend::kScalar;
    if (std::strcmp(env, "avx2") == 0) {
      if (available) return Backend::kAvx2;
      std::fprintf(stderr,
                   "[rapid.nn.kernel] RAPID_KERNEL_BACKEND=avx2 requested "
                   "but unavailable (%s); using scalar\n",
#ifdef RAPID_HAVE_AVX2
                   "CPU lacks AVX2/FMA"
#else
                   "built without RAPID_ENABLE_AVX2"
#endif
      );
      return Backend::kScalar;
    }
    if (std::strcmp(env, "auto") != 0) {
      std::fprintf(stderr,
                   "[rapid.nn.kernel] unknown RAPID_KERNEL_BACKEND='%s' "
                   "(want scalar|avx2|auto); using auto\n",
                   env);
    }
  }
  return available ? Backend::kAvx2 : Backend::kScalar;
}

// The override hook is a plain atomic (not thread_local): benches/tests
// flip it in single-threaded phases; steady-state serving never touches it
// after startup, so the relaxed load in Active() costs nothing.
std::atomic<Backend> g_backend{SelectStartupBackend()};

}  // namespace

#ifdef RAPID_HAVE_AVX2
// Defined in kernels_avx2.cc.
const KernelTable& Avx2Table();
#endif

bool Avx2Available() {
#ifdef RAPID_HAVE_AVX2
  static const bool available = CpuHasAvx2Fma();
  return available;
#else
  return false;
#endif
}

const KernelTable& ScalarTable() { return kScalarTable; }

Backend ActiveBackend() {
  return g_backend.load(std::memory_order_relaxed);
}

const KernelTable& Active() {
#ifdef RAPID_HAVE_AVX2
  if (ActiveBackend() == Backend::kAvx2) return Avx2Table();
#endif
  return kScalarTable;
}

const char* BackendName(Backend backend) {
  return backend == Backend::kAvx2 ? "avx2" : "scalar";
}

ScopedBackendOverride::ScopedBackendOverride(Backend backend)
    : previous_(g_backend.load(std::memory_order_relaxed)),
      forced_(backend == Backend::kAvx2 && !Avx2Available()
                  ? Backend::kScalar
                  : backend) {
  g_backend.store(forced_, std::memory_order_relaxed);
}

ScopedBackendOverride::~ScopedBackendOverride() {
  g_backend.store(previous_, std::memory_order_relaxed);
}

}  // namespace rapid::nn::kernel
