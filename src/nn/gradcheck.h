#ifndef RAPID_NN_GRADCHECK_H_
#define RAPID_NN_GRADCHECK_H_

#include <functional>
#include <vector>

#include "nn/variable.h"

namespace rapid::nn {

/// Result of a finite-difference gradient check.
struct GradCheckResult {
  /// Maximum relative error across all checked parameter entries.
  float max_rel_error = 0.0f;
  /// Number of scalar entries checked.
  int checked = 0;
  /// The default tolerance reflects float32 central-difference roundoff on
  /// deep composite functions (LSTM stacks, attention blocks): genuine
  /// gradient bugs show up as O(1) relative error, numeric noise as <=5e-2.
  bool ok(float tol = 6e-2f) const { return max_rel_error <= tol; }
};

/// Verifies the analytic gradients of `loss_fn` against central finite
/// differences with step `eps`, over all entries of `params` (capped at
/// `max_entries_per_param` entries per parameter to keep checks fast).
///
/// `loss_fn` must rebuild the graph and return the scalar loss each call
/// (define-by-run), reading the current values of `params`.
GradCheckResult CheckGradients(const std::function<Variable()>& loss_fn,
                               const std::vector<Variable>& params,
                               float eps = 2e-3f,
                               int max_entries_per_param = 24);

}  // namespace rapid::nn

#endif  // RAPID_NN_GRADCHECK_H_
