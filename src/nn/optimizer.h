#ifndef RAPID_NN_OPTIMIZER_H_
#define RAPID_NN_OPTIMIZER_H_

#include <vector>

#include "nn/variable.h"

namespace rapid::nn {

/// Base class for first-order optimizers over a fixed parameter set.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Variable> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Applies one update using the gradients currently stored in the params.
  virtual void Step() = 0;

  /// Zeroes all parameter gradients. Call before each forward/backward pass.
  void ZeroGrad();

  const std::vector<Variable>& params() const { return params_; }

 protected:
  std::vector<Variable> params_;
};

/// Plain stochastic gradient descent with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Variable> params, float lr, float momentum = 0.0f);
  void Step() override;

 private:
  float lr_;
  float momentum_;
  std::vector<Matrix> velocity_;
};

/// Adam (Kingma & Ba, 2014) with bias correction and optional decoupled
/// weight decay.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Variable> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);
  void Step() override;

 private:
  float lr_, beta1_, beta2_, eps_, weight_decay_;
  int t_ = 0;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
};

/// Scales all gradients so their global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm.
float ClipGradNorm(const std::vector<Variable>& params, float max_norm);

}  // namespace rapid::nn

#endif  // RAPID_NN_OPTIMIZER_H_
