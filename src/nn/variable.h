#ifndef RAPID_NN_VARIABLE_H_
#define RAPID_NN_VARIABLE_H_

#include <functional>
#include <memory>
#include <vector>

#include "nn/matrix.h"

namespace rapid::nn {

class Variable;

namespace internal {

/// A node in the define-by-run autograd graph. Holds the forward value, the
/// accumulated gradient, the parent nodes, and a closure that propagates
/// `grad` back into the parents' gradients.
struct Node {
  Matrix value;
  Matrix grad;  // Allocated lazily in Backward(); same shape as `value`.
  bool requires_grad = false;
  bool is_leaf = false;
  std::vector<std::shared_ptr<Node>> parents;
  // Propagates this node's `grad` into `parents[*]->grad`. Null for leaves.
  std::function<void(Node&)> backward_fn;
};

}  // namespace internal

/// A differentiable matrix value.
///
/// `Variable` is a cheap shared handle to an autograd `Node`. Applying the
/// ops in `nn/ops.h` builds a graph; calling `Backward()` on a scalar output
/// fills `grad()` of every reachable node that `requires_grad`.
///
/// Typical usage:
/// ```
/// Variable w = Variable::Parameter(Matrix::Randn(4, 2, 0.1f, rng));
/// Variable y = MatMul(x, w);
/// Variable loss = MeanAll(Square(Sub(y, target)));
/// loss.Backward();
/// // w.grad() now holds dloss/dw.
/// ```
class Variable {
 public:
  /// Creates a detached empty variable.
  Variable() : node_(std::make_shared<internal::Node>()) {}

  /// Wraps a constant (non-trainable) value.
  static Variable Constant(Matrix value);

  /// Wraps a trainable leaf parameter. Gradients accumulate into `grad()`.
  static Variable Parameter(Matrix value);

  /// Internal: creates an op-output node.
  static Variable FromOp(Matrix value, std::vector<Variable> parents,
                         std::function<void(internal::Node&)> backward_fn);

  /// The forward value.
  const Matrix& value() const { return node_->value; }
  Matrix& mutable_value() { return node_->value; }

  /// The accumulated gradient (empty until Backward has run through here).
  const Matrix& grad() const { return node_->grad; }
  Matrix& mutable_grad() { return node_->grad; }

  /// Whether gradients flow into/through this variable.
  bool requires_grad() const { return node_->requires_grad; }

  /// True if this is a leaf (parameter or constant), not an op output.
  bool is_leaf() const { return node_->is_leaf; }

  int rows() const { return node_->value.rows(); }
  int cols() const { return node_->value.cols(); }

  /// Runs reverse-mode differentiation from this variable, which must hold a
  /// single scalar (1x1). Seeds d(self)/d(self)=1 and accumulates gradients
  /// into every reachable `requires_grad` node.
  void Backward();

  /// Zeroes this variable's gradient buffer.
  void ZeroGrad();

  /// Identity comparison (same underlying node).
  bool SameNodeAs(const Variable& other) const {
    return node_ == other.node_;
  }

  std::shared_ptr<internal::Node> node() const { return node_; }

 private:
  explicit Variable(std::shared_ptr<internal::Node> node)
      : node_(std::move(node)) {}

  std::shared_ptr<internal::Node> node_;
};

}  // namespace rapid::nn

#endif  // RAPID_NN_VARIABLE_H_
