#ifndef RAPID_NN_VARIABLE_H_
#define RAPID_NN_VARIABLE_H_

#include <functional>
#include <memory>
#include <vector>

#include "nn/matrix.h"

namespace rapid::nn {

class Variable;

/// True when ops record the autograd graph on this thread (the default).
/// Inside a `NoGradScope`, op outputs are detached: no parent edges, no
/// backward closures — which is what lets an inference forward allocate
/// nothing that outlives its arena scope (see nn/arena.h).
bool GradEnabled();

/// RAII: disables gradient recording on this thread for its lifetime.
/// Nests; restores the previous mode on destruction.
class NoGradScope {
 public:
  NoGradScope();
  ~NoGradScope();
  NoGradScope(const NoGradScope&) = delete;
  NoGradScope& operator=(const NoGradScope&) = delete;

 private:
  bool prev_;
};

namespace internal {

/// A node in the define-by-run autograd graph. Holds the forward value, the
/// accumulated gradient, the parent nodes, and a closure that propagates
/// `grad` back into the parents' gradients.
struct Node {
  Matrix value;
  Matrix grad;  // Allocated lazily in Backward(); same shape as `value`.
  bool requires_grad = false;
  bool is_leaf = false;
  std::vector<std::shared_ptr<Node>> parents;
  // Propagates this node's `grad` into `parents[*]->grad`. Null for leaves.
  std::function<void(Node&)> backward_fn;
};

}  // namespace internal

/// A differentiable matrix value.
///
/// `Variable` is a cheap shared handle to an autograd `Node`. Applying the
/// ops in `nn/ops.h` builds a graph; calling `Backward()` on a scalar output
/// fills `grad()` of every reachable node that `requires_grad`.
///
/// Typical usage:
/// ```
/// Variable w = Variable::Parameter(Matrix::Randn(4, 2, 0.1f, rng));
/// Variable y = MatMul(x, w);
/// Variable loss = MeanAll(Square(Sub(y, target)));
/// loss.Backward();
/// // w.grad() now holds dloss/dw.
/// ```
class Variable {
 public:
  /// Creates a detached empty variable.
  Variable() : node_(std::make_shared<internal::Node>()) {}

  /// Wraps a constant (non-trainable) value.
  static Variable Constant(Matrix value);

  /// Wraps a trainable leaf parameter. Gradients accumulate into `grad()`.
  static Variable Parameter(Matrix value);

  /// Internal: creates an op-output node. `backward_fn` is any callable
  /// `void(internal::Node&)`; it is only materialized into a
  /// `std::function` (one heap allocation) when grad mode is on AND some
  /// parent requires grad — a `NoGradScope` forward builds detached nodes
  /// with no parent edges and no closures.
  template <class BackwardFn>
  static Variable FromOp(Matrix value, std::vector<Variable> parents,
                         BackwardFn&& backward_fn) {
    auto node = std::make_shared<internal::Node>();
    node->value = std::move(value);
    node->is_leaf = false;
    if (GradEnabled()) {
      node->parents.reserve(parents.size());
      for (const Variable& p : parents) {
        node->parents.push_back(p.node());
        if (p.requires_grad()) node->requires_grad = true;
      }
      if (node->requires_grad) {
        node->backward_fn = std::function<void(internal::Node&)>(
            std::forward<BackwardFn>(backward_fn));
      } else {
        node->parents.clear();
      }
    }
    return Variable(std::move(node));
  }

  /// The forward value.
  const Matrix& value() const { return node_->value; }
  Matrix& mutable_value() { return node_->value; }

  /// The accumulated gradient (empty until Backward has run through here).
  const Matrix& grad() const { return node_->grad; }
  Matrix& mutable_grad() { return node_->grad; }

  /// Whether gradients flow into/through this variable.
  bool requires_grad() const { return node_->requires_grad; }

  /// True if this is a leaf (parameter or constant), not an op output.
  bool is_leaf() const { return node_->is_leaf; }

  int rows() const { return node_->value.rows(); }
  int cols() const { return node_->value.cols(); }

  /// Runs reverse-mode differentiation from this variable, which must hold a
  /// single scalar (1x1). Seeds d(self)/d(self)=1 and accumulates gradients
  /// into every reachable `requires_grad` node.
  void Backward();

  /// Zeroes this variable's gradient buffer.
  void ZeroGrad();

  /// Identity comparison (same underlying node).
  bool SameNodeAs(const Variable& other) const {
    return node_ == other.node_;
  }

  std::shared_ptr<internal::Node> node() const { return node_; }

 private:
  explicit Variable(std::shared_ptr<internal::Node> node)
      : node_(std::move(node)) {}

  std::shared_ptr<internal::Node> node_;
};

}  // namespace rapid::nn

#endif  // RAPID_NN_VARIABLE_H_
