// Thread-local bump arenas plus the program-wide operator new/delete
// replacement that routes into them.
//
// The replacement operators live in THIS translation unit on purpose:
// matrix.cc (and through it every binary in the repo) references arena
// symbols, so the archive member is always pulled in and the whole program
// — tests, benches, servers — gets one consistent allocator. A partial
// link (some TUs seeing the replacement, some not) would be an ODR
// disaster; anchoring the operators next to the arena state makes that
// impossible.
//
// Layout: every block we hand out is preceded by a 16-byte header
// `{magic, offset}` where `offset` is the distance back to the malloc base
// (heap blocks) or 0 (arena blocks). Delete reads the tag to decide
// between `free(ptr - offset)` and doing nothing. Sixteen bytes matches
// __STDCPP_DEFAULT_NEW_ALIGNMENT__, so the default-aligned fast path pays
// no extra padding.

#include "nn/arena.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>

namespace rapid::nn::arena {
namespace {

constexpr size_t kHeaderSize = 16;
constexpr uint64_t kHeapMagic = 0x4841'5250'4944'2101ull;
constexpr uint64_t kArenaMagic = 0x4152'4150'4944'2102ull;
constexpr size_t kChunkPayload = 1u << 20;  // 1 MiB default chunk

struct BlockHeader {
  uint64_t magic;
  uint64_t offset;  // returned-pointer minus malloc base; 0 for arena
};
static_assert(sizeof(BlockHeader) == kHeaderSize);

// Chunk header lives at the front of its own malloc'd block; payload
// follows immediately.
struct Chunk {
  Chunk* next;
  Chunk* prev;
  size_t cap;   // payload capacity
  size_t used;  // payload bytes consumed
};

// Constant-initialized (all initializers are constants) so operator new
// can consult it at any point of static initialization without ordering
// hazards. The destructor releases this thread's chunks at thread exit.
struct ThreadArena {
  Chunk* head = nullptr;
  Chunk* cur = nullptr;
  int depth = 0;  // live ArenaScope nesting; 0 = route to heap
  size_t total_used = 0;
  size_t high_water = 0;
  size_t reserved = 0;
  uint64_t heap_allocs = 0;
  uint64_t heap_frees = 0;
  uint64_t arena_allocs = 0;
  uint64_t chunk_mallocs = 0;

  ~ThreadArena() {
    depth = 0;
    Chunk* c = head;
    head = cur = nullptr;
    while (c != nullptr) {
      Chunk* next = c->next;
      std::free(c);
      c = next;
    }
  }
};

thread_local ThreadArena tl_arena;

std::atomic<uint64_t> g_heap_allocs{0};
std::atomic<uint64_t> g_heap_frees{0};
std::atomic<uint64_t> g_arena_allocs{0};
std::atomic<uint64_t> g_chunk_mallocs{0};
std::atomic<uint64_t> g_reserved_bytes{0};
std::atomic<uint64_t> g_high_water{0};

inline uintptr_t AlignUp(uintptr_t p, size_t align) {
  return (p + align - 1) & ~static_cast<uintptr_t>(align - 1);
}

void RaiseGlobalHighWater(uint64_t candidate) {
  uint64_t cur = g_high_water.load(std::memory_order_relaxed);
  while (candidate > cur &&
         !g_high_water.compare_exchange_weak(cur, candidate,
                                             std::memory_order_relaxed)) {
  }
}

// Appends a chunk able to hold `need` payload bytes after `after`
// (nullptr = empty arena).
Chunk* NewChunk(ThreadArena& ta, Chunk* after, size_t need) {
  size_t cap = need > kChunkPayload ? need : kChunkPayload;
  void* raw = std::malloc(sizeof(Chunk) + cap);
  if (raw == nullptr) return nullptr;
  Chunk* c = static_cast<Chunk*>(raw);
  c->cap = cap;
  c->used = 0;
  c->prev = after;
  c->next = after != nullptr ? after->next : nullptr;
  if (c->next != nullptr) c->next->prev = c;
  if (after != nullptr) {
    after->next = c;
  } else {
    ta.head = c;
  }
  ta.reserved += cap;
  ta.chunk_mallocs += 1;
  g_chunk_mallocs.fetch_add(1, std::memory_order_relaxed);
  g_reserved_bytes.fetch_add(cap, std::memory_order_relaxed);
  return c;
}

// Bump-allocates `size` bytes at `align` out of the thread arena, growing
// it if necessary. Returns the user pointer (header already written), or
// nullptr if chunk growth failed.
void* ArenaAlloc(ThreadArena& ta, size_t size, size_t align) {
  if (align < kHeaderSize) align = kHeaderSize;
  Chunk* c = ta.cur != nullptr ? ta.cur : ta.head;
  for (;;) {
    if (c != nullptr) {
      const uintptr_t base = reinterpret_cast<uintptr_t>(c + 1);
      const uintptr_t ptr = AlignUp(base + c->used + kHeaderSize, align);
      if (ptr + size <= base + c->cap) {
        const size_t new_used = (ptr + size) - base;
        ta.total_used += new_used - c->used;
        c->used = new_used;
        ta.cur = c;
        if (ta.total_used > ta.high_water) {
          ta.high_water = ta.total_used;
          RaiseGlobalHighWater(ta.high_water);
        }
        ta.arena_allocs += 1;
        g_arena_allocs.fetch_add(1, std::memory_order_relaxed);
        BlockHeader* h = reinterpret_cast<BlockHeader*>(ptr - kHeaderSize);
        h->magic = kArenaMagic;
        h->offset = 0;
        return reinterpret_cast<void*>(ptr);
      }
      if (c->next != nullptr) {
        // Retained chunks past `cur` are always rewound (used == 0) —
        // advance into them before growing.
        c = c->next;
        ta.cur = c;
        continue;
      }
    }
    Chunk* grown = NewChunk(ta, c, size + align + kHeaderSize);
    if (grown == nullptr) return nullptr;
    c = grown;
    ta.cur = c;
  }
}

bool EnabledFromEnv() {
  bool def = true;
#if defined(__SANITIZE_ADDRESS__)
  def = false;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
  def = false;
#endif
#endif
  const char* env = std::getenv("RAPID_ARENA");
  if (env == nullptr || *env == '\0') return def;
  return !(std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0);
}

}  // namespace

// TU-internal seam between the arena state above and the global operator
// new/delete definitions at the bottom of this file.
namespace detail {

void* AllocImpl(size_t size, size_t align) {
  if (size == 0) size = 1;
  ThreadArena& ta = tl_arena;
  if (ta.depth > 0) {
    void* p = ArenaAlloc(ta, size, align);
    if (p != nullptr) return p;
    // Chunk growth failed (OOM): fall through to the heap path, which
    // reports failure through the usual new-handler protocol.
  }
  if (align < kHeaderSize) align = kHeaderSize;
  const size_t total = size + kHeaderSize + align;
  void* raw = std::malloc(total);
  if (raw == nullptr) return nullptr;
  const uintptr_t ptr =
      AlignUp(reinterpret_cast<uintptr_t>(raw) + kHeaderSize, align);
  BlockHeader* h = reinterpret_cast<BlockHeader*>(ptr - kHeaderSize);
  h->magic = kHeapMagic;
  h->offset = ptr - reinterpret_cast<uintptr_t>(raw);
  ta.heap_allocs += 1;
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  return reinterpret_cast<void*>(ptr);
}

void FreeImpl(void* p) {
  if (p == nullptr) return;
  BlockHeader* h = reinterpret_cast<BlockHeader*>(
      reinterpret_cast<uintptr_t>(p) - kHeaderSize);
  if (h->magic == kArenaMagic) {
    // Bulk-reclaimed by the owning ArenaScope's rewind.
    return;
  }
  if (h->magic == kHeapMagic) {
    ThreadArena& ta = tl_arena;
    ta.heap_frees += 1;
    g_heap_frees.fetch_add(1, std::memory_order_relaxed);
    std::free(reinterpret_cast<char*>(p) - h->offset);
    return;
  }
  // Unknown tag: either a delete of an arena pointer after its scope
  // rewound (lifetime-rule violation) or heap corruption. Freeing a guess
  // would corrupt the allocator — fail fast instead.
  std::fprintf(stderr,
               "[rapid.nn.arena] operator delete on untagged pointer %p "
               "(arena lifetime violation or heap corruption)\n",
               p);
  std::abort();
}

void* ThrowingAlloc(size_t size, size_t align) {
  for (;;) {
    void* p = AllocImpl(size, align);
    if (p != nullptr) return p;
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
}

}  // namespace detail

bool Enabled() {
  static const bool enabled = EnabledFromEnv();
  return enabled;
}

ArenaScope::ArenaScope() {
  if (!Enabled()) return;
  ThreadArena& ta = tl_arena;
  chunk_ = ta.cur;
  used_ = ta.cur != nullptr ? ta.cur->used : 0;
  total_used_ = ta.total_used;
  ta.depth += 1;
  active_ = true;
}

ArenaScope::~ArenaScope() {
  if (!active_) return;
  ThreadArena& ta = tl_arena;
  Chunk* mark = static_cast<Chunk*>(chunk_);
  Chunk* c = ta.cur;
  while (c != nullptr && c != mark) {
    c->used = 0;
    c = c->prev;
  }
  if (c != nullptr) {
    c->used = used_;
    ta.cur = c;
  } else {
    // Scope opened on an empty arena: keep the chunks, rewind to start.
    ta.cur = ta.head;
  }
  ta.total_used = total_used_;
  ta.depth -= 1;
}

ThreadCounters CountersThisThread() {
  const ThreadArena& ta = tl_arena;
  return ThreadCounters{ta.heap_allocs, ta.heap_frees, ta.arena_allocs,
                        ta.chunk_mallocs};
}

size_t ThreadBytesInUse() { return tl_arena.total_used; }
size_t ThreadHighWaterBytes() { return tl_arena.high_water; }
size_t ThreadReservedBytes() { return tl_arena.reserved; }

GlobalStats GlobalArenaStats() {
  GlobalStats s;
  s.heap_allocs = g_heap_allocs.load(std::memory_order_relaxed);
  s.heap_frees = g_heap_frees.load(std::memory_order_relaxed);
  s.arena_allocs = g_arena_allocs.load(std::memory_order_relaxed);
  s.chunk_mallocs = g_chunk_mallocs.load(std::memory_order_relaxed);
  s.reserved_bytes = g_reserved_bytes.load(std::memory_order_relaxed);
  s.high_water_bytes = g_high_water.load(std::memory_order_relaxed);
  return s;
}

}  // namespace rapid::nn::arena

// ---------------------------------------------------------------------------
// Program-wide operator new/delete replacement. Throwing, nothrow, array,
// sized, and aligned forms all funnel into the seam above.
// ---------------------------------------------------------------------------

namespace arena_detail = rapid::nn::arena::detail;

void* operator new(std::size_t size) {
  return arena_detail::ThrowingAlloc(size, __STDCPP_DEFAULT_NEW_ALIGNMENT__);
}

void* operator new[](std::size_t size) {
  return arena_detail::ThrowingAlloc(size, __STDCPP_DEFAULT_NEW_ALIGNMENT__);
}

void* operator new(std::size_t size, std::align_val_t align) {
  return arena_detail::ThrowingAlloc(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return arena_detail::ThrowingAlloc(size, static_cast<std::size_t>(align));
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return arena_detail::AllocImpl(size, __STDCPP_DEFAULT_NEW_ALIGNMENT__);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return arena_detail::AllocImpl(size, __STDCPP_DEFAULT_NEW_ALIGNMENT__);
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return arena_detail::AllocImpl(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return arena_detail::AllocImpl(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { arena_detail::FreeImpl(p); }
void operator delete[](void* p) noexcept { arena_detail::FreeImpl(p); }
void operator delete(void* p, std::size_t) noexcept {
  arena_detail::FreeImpl(p);
}
void operator delete[](void* p, std::size_t) noexcept {
  arena_detail::FreeImpl(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  arena_detail::FreeImpl(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  arena_detail::FreeImpl(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  arena_detail::FreeImpl(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  arena_detail::FreeImpl(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  arena_detail::FreeImpl(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  arena_detail::FreeImpl(p);
}
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  arena_detail::FreeImpl(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  arena_detail::FreeImpl(p);
}
