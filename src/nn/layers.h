#ifndef RAPID_NN_LAYERS_H_
#define RAPID_NN_LAYERS_H_

#include <memory>
#include <random>
#include <utility>
#include <vector>

#include "nn/ops.h"
#include "nn/variable.h"

namespace rapid::nn {

/// Elementwise nonlinearity selector for `Linear` / `Mlp`.
enum class Activation { kIdentity, kRelu, kTanh, kSigmoid };

/// Applies the selected activation to `x`.
Variable Activate(const Variable& x, Activation act);

/// Base class for trainable components: anything that owns parameters.
class Module {
 public:
  virtual ~Module() = default;
  /// All trainable parameters of this module (recursively).
  virtual std::vector<Variable> Params() const = 0;
  /// Total scalar parameter count.
  int NumParams() const;
};

/// Fully connected layer `y = act(x W + b)` with `x: (batch x in)`.
class Linear : public Module {
 public:
  /// Xavier-uniform initialization of `W: (in x out)`, zero bias.
  Linear(int in_dim, int out_dim, std::mt19937_64& rng,
         Activation act = Activation::kIdentity);

  Variable Forward(const Variable& x) const;
  std::vector<Variable> Params() const override { return {w_, b_}; }

  int in_dim() const { return w_.rows(); }
  int out_dim() const { return w_.cols(); }
  const Variable& weight() const { return w_; }
  const Variable& bias() const { return b_; }

 private:
  Variable w_;
  Variable b_;
  Activation act_;
};

/// Multi-layer perceptron. `dims = {in, h1, ..., out}`; hidden layers use
/// `hidden_act`, the final layer uses `output_act`.
class Mlp : public Module {
 public:
  Mlp(const std::vector<int>& dims, std::mt19937_64& rng,
      Activation hidden_act = Activation::kRelu,
      Activation output_act = Activation::kIdentity);

  Variable Forward(const Variable& x) const;
  std::vector<Variable> Params() const override;

 private:
  std::vector<Linear> layers_;
};

/// A single LSTM cell (Hochreiter & Schmidhuber, 1997) with fused gate
/// weights in i, f, g, o order.
class LstmCell : public Module {
 public:
  LstmCell(int in_dim, int hidden_dim, std::mt19937_64& rng);

  /// One step. `x: (batch x in)`, `h`/`c`: `(batch x hidden)`.
  /// Returns the new `(h, c)`.
  std::pair<Variable, Variable> Forward(const Variable& x, const Variable& h,
                                        const Variable& c) const;

  std::vector<Variable> Params() const override { return {wx_, wh_, b_}; }
  int hidden_dim() const { return hidden_dim_; }
  int in_dim() const { return wx_.rows(); }

 private:
  int hidden_dim_;
  Variable wx_;  // (in x 4h)
  Variable wh_;  // (h x 4h)
  Variable b_;   // (1 x 4h)
};

/// A single GRU cell (used by the DLCM baseline) with fused z, r gates and a
/// separate candidate path.
class GruCell : public Module {
 public:
  GruCell(int in_dim, int hidden_dim, std::mt19937_64& rng);

  /// One step. Returns the new hidden state.
  Variable Forward(const Variable& x, const Variable& h) const;

  std::vector<Variable> Params() const override {
    return {wx_zr_, wh_zr_, b_zr_, wx_n_, wh_n_, b_n_};
  }
  int hidden_dim() const { return hidden_dim_; }

 private:
  int hidden_dim_;
  Variable wx_zr_, wh_zr_, b_zr_;  // fused z,r gates
  Variable wx_n_, wh_n_, b_n_;     // candidate
};

/// Unidirectional LSTM over a timestep-major sequence of `(batch x in)`
/// inputs. Supports optional per-step `(batch x 1)` masks: masked-out rows
/// carry their previous state through the step (left/right padding safe).
class Lstm : public Module {
 public:
  Lstm(int in_dim, int hidden_dim, std::mt19937_64& rng);

  /// Runs the sequence; returns one `(batch x hidden)` state per step.
  /// `masks` is empty (no masking) or one `(batch x 1)` 0/1 matrix per step.
  std::vector<Variable> Forward(const std::vector<Variable>& inputs,
                                const std::vector<Variable>& masks = {}) const;

  /// Runs the sequence and returns only the final state.
  Variable ForwardLast(const std::vector<Variable>& inputs,
                       const std::vector<Variable>& masks = {}) const;

  std::vector<Variable> Params() const override { return cell_.Params(); }
  int hidden_dim() const { return cell_.hidden_dim(); }

 private:
  LstmCell cell_;
};

/// Bidirectional LSTM: concatenates forward and backward per-step states
/// into `(batch x 2*hidden)` outputs.
class BiLstm : public Module {
 public:
  BiLstm(int in_dim, int hidden_dim, std::mt19937_64& rng);

  std::vector<Variable> Forward(const std::vector<Variable>& inputs) const;

  std::vector<Variable> Params() const override;
  int hidden_dim() const { return fwd_.hidden_dim(); }

 private:
  Lstm fwd_;
  Lstm bwd_;
};

/// Parameter-free scaled dot-product self-attention over the rows of `v`:
/// `softmax(v v^T / sqrt(d)) v`. This is Eq.(2) of the RAPID paper.
///
/// `segment > 0` treats the rows as independent contiguous blocks of
/// `segment` rows (a batch of same-length lists stacked list-major):
/// attention never crosses a block boundary, and each block's output is
/// bit-identical to calling the function on that block alone. `segment ==
/// 0` (default) attends over all rows — the single-list case.
Variable UnprojectedSelfAttention(const Variable& v, int segment = 0);

/// Multi-head self-attention with learned Q/K/V/O projections over the rows
/// of an `(L x d)` input — or, with `segment > 0`, a `(B*L x d)` stack of
/// `B` independent length-`segment` blocks (see `UnprojectedSelfAttention`
/// for the blocking contract). Projections run on the full matrix; the
/// attention itself is computed per block.
class MultiHeadAttention : public Module {
 public:
  /// `dim` must be divisible by `num_heads`.
  MultiHeadAttention(int dim, int num_heads, std::mt19937_64& rng);

  Variable Forward(const Variable& x, int segment = 0) const;
  std::vector<Variable> Params() const override;

 private:
  int dim_;
  int num_heads_;
  int head_dim_;
  Linear wq_, wk_, wv_, wo_;
};

/// Pre-LN transformer encoder block: MHA + position-wise FFN with residual
/// connections and layer normalization (used by PRM / SetRank / RAPID-trans).
/// `segment` batches independent blocks through one forward, exactly as in
/// `MultiHeadAttention::Forward` (LayerNorm and the FFN are row-wise and
/// need no blocking).
class TransformerEncoderLayer : public Module {
 public:
  TransformerEncoderLayer(int dim, int num_heads, int ffn_dim,
                          std::mt19937_64& rng);

  Variable Forward(const Variable& x, int segment = 0) const;
  std::vector<Variable> Params() const override;

 private:
  MultiHeadAttention mha_;
  Linear ffn1_, ffn2_;
  Variable ln1_gamma_, ln1_beta_, ln2_gamma_, ln2_beta_;
};

/// Returns the sinusoidal positional-encoding matrix `(length x dim)`
/// (Vaswani et al., 2017).
Matrix SinusoidalPositionalEncoding(int length, int dim);

}  // namespace rapid::nn

#endif  // RAPID_NN_LAYERS_H_
