#ifndef RAPID_NN_EMBEDDING_H_
#define RAPID_NN_EMBEDDING_H_

#include <random>
#include <vector>

#include "nn/layers.h"
#include "nn/ops.h"

namespace rapid::nn {

/// A learned embedding table: maps integer ids in `[0, vocab)` to
/// `dim`-dimensional trainable rows.
///
/// `Lookup` returns a `(ids.size() x dim)` variable whose backward pass
/// scatters gradients into only the referenced rows, so training with
/// small batches touches a sparse subset of the table.
class Embedding : public Module {
 public:
  Embedding(int vocab, int dim, std::mt19937_64& rng);

  /// Gathers the rows for `ids`; every id must be in `[0, vocab)`.
  Variable Lookup(const std::vector<int>& ids) const;

  /// Single-id convenience: a `(1 x dim)` row.
  Variable LookupOne(int id) const;

  std::vector<Variable> Params() const override { return {table_}; }
  int vocab() const { return table_.rows(); }
  int dim() const { return table_.cols(); }

 private:
  Variable table_;  // (vocab x dim) parameter
};

}  // namespace rapid::nn

#endif  // RAPID_NN_EMBEDDING_H_
