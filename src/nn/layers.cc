#include "nn/layers.h"

#include <cassert>
#include <cmath>

namespace rapid::nn {

namespace {

// Xavier/Glorot uniform initialization.
Matrix XavierUniform(int in_dim, int out_dim, std::mt19937_64& rng) {
  const float limit = std::sqrt(6.0f / (in_dim + out_dim));
  return Matrix::Uniform(in_dim, out_dim, -limit, limit, rng);
}

}  // namespace

Variable Activate(const Variable& x, Activation act) {
  switch (act) {
    case Activation::kIdentity:
      return x;
    case Activation::kRelu:
      return Relu(x);
    case Activation::kTanh:
      return Tanh(x);
    case Activation::kSigmoid:
      return Sigmoid(x);
  }
  return x;
}

int Module::NumParams() const {
  int n = 0;
  for (const Variable& p : Params()) n += p.value().size();
  return n;
}

Linear::Linear(int in_dim, int out_dim, std::mt19937_64& rng, Activation act)
    : w_(Variable::Parameter(XavierUniform(in_dim, out_dim, rng))),
      b_(Variable::Parameter(Matrix(1, out_dim))),
      act_(act) {}

Variable Linear::Forward(const Variable& x) const {
  return Activate(AddRowBroadcast(MatMul(x, w_), b_), act_);
}

Mlp::Mlp(const std::vector<int>& dims, std::mt19937_64& rng,
         Activation hidden_act, Activation output_act) {
  assert(dims.size() >= 2);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    const bool last = (i + 2 == dims.size());
    layers_.emplace_back(dims[i], dims[i + 1], rng,
                         last ? output_act : hidden_act);
  }
}

Variable Mlp::Forward(const Variable& x) const {
  Variable h = x;
  for (const Linear& l : layers_) h = l.Forward(h);
  return h;
}

std::vector<Variable> Mlp::Params() const {
  std::vector<Variable> out;
  for (const Linear& l : layers_) {
    for (const Variable& p : l.Params()) out.push_back(p);
  }
  return out;
}

LstmCell::LstmCell(int in_dim, int hidden_dim, std::mt19937_64& rng)
    : hidden_dim_(hidden_dim),
      wx_(Variable::Parameter(XavierUniform(in_dim, 4 * hidden_dim, rng))),
      wh_(Variable::Parameter(XavierUniform(hidden_dim, 4 * hidden_dim, rng))),
      b_(Variable::Parameter(Matrix(1, 4 * hidden_dim))) {
  // Initialize the forget-gate bias to 1 (standard trick for gradient flow).
  for (int c = hidden_dim; c < 2 * hidden_dim; ++c) {
    b_.mutable_value().at(0, c) = 1.0f;
  }
}

std::pair<Variable, Variable> LstmCell::Forward(const Variable& x,
                                                const Variable& h,
                                                const Variable& c) const {
  const int hd = hidden_dim_;
  Variable gates =
      AddRowBroadcast(Add(MatMul(x, wx_), MatMul(h, wh_)), b_);
  Variable i = Sigmoid(SliceCols(gates, 0, hd));
  Variable f = Sigmoid(SliceCols(gates, hd, hd));
  Variable g = Tanh(SliceCols(gates, 2 * hd, hd));
  Variable o = Sigmoid(SliceCols(gates, 3 * hd, hd));
  Variable c_new = Add(Mul(f, c), Mul(i, g));
  Variable h_new = Mul(o, Tanh(c_new));
  return {h_new, c_new};
}

GruCell::GruCell(int in_dim, int hidden_dim, std::mt19937_64& rng)
    : hidden_dim_(hidden_dim),
      wx_zr_(Variable::Parameter(XavierUniform(in_dim, 2 * hidden_dim, rng))),
      wh_zr_(
          Variable::Parameter(XavierUniform(hidden_dim, 2 * hidden_dim, rng))),
      b_zr_(Variable::Parameter(Matrix(1, 2 * hidden_dim))),
      wx_n_(Variable::Parameter(XavierUniform(in_dim, hidden_dim, rng))),
      wh_n_(Variable::Parameter(XavierUniform(hidden_dim, hidden_dim, rng))),
      b_n_(Variable::Parameter(Matrix(1, hidden_dim))) {}

Variable GruCell::Forward(const Variable& x, const Variable& h) const {
  const int hd = hidden_dim_;
  Variable zr =
      Sigmoid(AddRowBroadcast(Add(MatMul(x, wx_zr_), MatMul(h, wh_zr_)), b_zr_));
  Variable z = SliceCols(zr, 0, hd);
  Variable r = SliceCols(zr, hd, hd);
  Variable n = Tanh(AddRowBroadcast(
      Add(MatMul(x, wx_n_), Mul(r, MatMul(h, wh_n_))), b_n_));
  // h' = (1 - z) ⊙ n + z ⊙ h.
  Variable one_minus_z = AddScalar(Scale(z, -1.0f), 1.0f);
  return Add(Mul(one_minus_z, n), Mul(z, h));
}

Lstm::Lstm(int in_dim, int hidden_dim, std::mt19937_64& rng)
    : cell_(in_dim, hidden_dim, rng) {}

std::vector<Variable> Lstm::Forward(const std::vector<Variable>& inputs,
                                    const std::vector<Variable>& masks) const {
  assert(!inputs.empty());
  assert(masks.empty() || masks.size() == inputs.size());
  const int batch = inputs[0].rows();
  Variable h = Variable::Constant(Matrix(batch, cell_.hidden_dim()));
  Variable c = Variable::Constant(Matrix(batch, cell_.hidden_dim()));
  std::vector<Variable> states;
  states.reserve(inputs.size());
  for (size_t t = 0; t < inputs.size(); ++t) {
    auto [h_new, c_new] = cell_.Forward(inputs[t], h, c);
    if (!masks.empty()) {
      // Masked rows keep the previous state: s = m*s_new + (1-m)*s_old.
      const Variable& m = masks[t];
      Variable inv_m = AddScalar(Scale(m, -1.0f), 1.0f);
      h_new = Add(MulColBroadcast(h_new, m), MulColBroadcast(h, inv_m));
      c_new = Add(MulColBroadcast(c_new, m), MulColBroadcast(c, inv_m));
    }
    h = h_new;
    c = c_new;
    states.push_back(h);
  }
  return states;
}

Variable Lstm::ForwardLast(const std::vector<Variable>& inputs,
                           const std::vector<Variable>& masks) const {
  return Forward(inputs, masks).back();
}

BiLstm::BiLstm(int in_dim, int hidden_dim, std::mt19937_64& rng)
    : fwd_(in_dim, hidden_dim, rng), bwd_(in_dim, hidden_dim, rng) {}

std::vector<Variable> BiLstm::Forward(
    const std::vector<Variable>& inputs) const {
  std::vector<Variable> fwd_states = fwd_.Forward(inputs);
  std::vector<Variable> reversed(inputs.rbegin(), inputs.rend());
  std::vector<Variable> bwd_states = bwd_.Forward(reversed);
  std::vector<Variable> out;
  out.reserve(inputs.size());
  for (size_t t = 0; t < inputs.size(); ++t) {
    out.push_back(ConcatCols(
        {fwd_states[t], bwd_states[inputs.size() - 1 - t]}));
  }
  return out;
}

std::vector<Variable> BiLstm::Params() const {
  std::vector<Variable> out = fwd_.Params();
  for (const Variable& p : bwd_.Params()) out.push_back(p);
  return out;
}

Variable UnprojectedSelfAttention(const Variable& v, int segment) {
  const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(v.cols()));
  const int seg = segment > 0 ? segment : v.rows();
  assert(seg > 0 && v.rows() % seg == 0);
  if (seg == v.rows()) {
    Variable scores = Scale(MatMul(v, Transpose(v)), inv_sqrt_d);
    return MatMul(SoftmaxRows(scores), v);
  }
  std::vector<Variable> blocks;
  blocks.reserve(v.rows() / seg);
  for (int start = 0; start < v.rows(); start += seg) {
    Variable vb = SliceRows(v, start, seg);
    Variable scores = Scale(MatMul(vb, Transpose(vb)), inv_sqrt_d);
    blocks.push_back(MatMul(SoftmaxRows(scores), vb));
  }
  return ConcatRows(blocks);
}

MultiHeadAttention::MultiHeadAttention(int dim, int num_heads,
                                       std::mt19937_64& rng)
    : dim_(dim),
      num_heads_(num_heads),
      head_dim_(dim / num_heads),
      wq_(dim, dim, rng),
      wk_(dim, dim, rng),
      wv_(dim, dim, rng),
      wo_(dim, dim, rng) {
  assert(dim % num_heads == 0);
}

Variable MultiHeadAttention::Forward(const Variable& x, int segment) const {
  assert(x.cols() == dim_);
  const int seg = segment > 0 ? segment : x.rows();
  assert(seg > 0 && x.rows() % seg == 0);
  Variable q = wq_.Forward(x);
  Variable k = wk_.Forward(x);
  Variable v = wv_.Forward(x);
  const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  std::vector<Variable> heads;
  heads.reserve(num_heads_);
  for (int hidx = 0; hidx < num_heads_; ++hidx) {
    Variable qh = SliceCols(q, hidx * head_dim_, head_dim_);
    Variable kh = SliceCols(k, hidx * head_dim_, head_dim_);
    Variable vh = SliceCols(v, hidx * head_dim_, head_dim_);
    if (seg == x.rows()) {
      Variable attn =
          SoftmaxRows(Scale(MatMul(qh, Transpose(kh)), inv_sqrt_d));
      heads.push_back(MatMul(attn, vh));
      continue;
    }
    std::vector<Variable> blocks;
    blocks.reserve(x.rows() / seg);
    for (int start = 0; start < x.rows(); start += seg) {
      Variable qb = SliceRows(qh, start, seg);
      Variable kb = SliceRows(kh, start, seg);
      Variable vb = SliceRows(vh, start, seg);
      Variable attn =
          SoftmaxRows(Scale(MatMul(qb, Transpose(kb)), inv_sqrt_d));
      blocks.push_back(MatMul(attn, vb));
    }
    heads.push_back(ConcatRows(blocks));
  }
  return wo_.Forward(ConcatCols(heads));
}

std::vector<Variable> MultiHeadAttention::Params() const {
  std::vector<Variable> out;
  for (const Linear* l : {&wq_, &wk_, &wv_, &wo_}) {
    for (const Variable& p : l->Params()) out.push_back(p);
  }
  return out;
}

TransformerEncoderLayer::TransformerEncoderLayer(int dim, int num_heads,
                                                 int ffn_dim,
                                                 std::mt19937_64& rng)
    : mha_(dim, num_heads, rng),
      ffn1_(dim, ffn_dim, rng, Activation::kRelu),
      ffn2_(ffn_dim, dim, rng),
      ln1_gamma_(Variable::Parameter(Matrix::Constant(1, dim, 1.0f))),
      ln1_beta_(Variable::Parameter(Matrix(1, dim))),
      ln2_gamma_(Variable::Parameter(Matrix::Constant(1, dim, 1.0f))),
      ln2_beta_(Variable::Parameter(Matrix(1, dim))) {}

Variable TransformerEncoderLayer::Forward(const Variable& x,
                                          int segment) const {
  Variable h =
      Add(x, mha_.Forward(LayerNorm(x, ln1_gamma_, ln1_beta_), segment));
  Variable h2 =
      Add(h, ffn2_.Forward(ffn1_.Forward(LayerNorm(h, ln2_gamma_, ln2_beta_))));
  return h2;
}

std::vector<Variable> TransformerEncoderLayer::Params() const {
  std::vector<Variable> out = mha_.Params();
  for (const Variable& p : ffn1_.Params()) out.push_back(p);
  for (const Variable& p : ffn2_.Params()) out.push_back(p);
  out.push_back(ln1_gamma_);
  out.push_back(ln1_beta_);
  out.push_back(ln2_gamma_);
  out.push_back(ln2_beta_);
  return out;
}

Matrix SinusoidalPositionalEncoding(int length, int dim) {
  Matrix pe(length, dim);
  for (int pos = 0; pos < length; ++pos) {
    for (int i = 0; i < dim; ++i) {
      const double angle =
          pos / std::pow(10000.0, 2.0 * (i / 2) / static_cast<double>(dim));
      pe.at(pos, i) = static_cast<float>(i % 2 == 0 ? std::sin(angle)
                                                    : std::cos(angle));
    }
  }
  return pe;
}

}  // namespace rapid::nn
