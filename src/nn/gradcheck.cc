#include "nn/gradcheck.h"

#include <algorithm>
#include <cmath>

namespace rapid::nn {

GradCheckResult CheckGradients(const std::function<Variable()>& loss_fn,
                               const std::vector<Variable>& params,
                               float eps, int max_entries_per_param) {
  GradCheckResult result;

  // One analytic pass.
  for (Variable p : params) p.ZeroGrad();
  Variable loss = loss_fn();
  loss.Backward();
  std::vector<Matrix> analytic;
  analytic.reserve(params.size());
  float gmax = 0.0f;
  for (const Variable& p : params) {
    analytic.push_back(p.grad());
    gmax = std::max(gmax, p.grad().MaxAbs());
  }
  // Entries whose gradient is tiny relative to the largest gradient are
  // roundoff-dominated in float32; floor the denominator accordingly.
  const float floor = std::max(1e-4f, 0.05f * gmax);

  for (size_t pi = 0; pi < params.size(); ++pi) {
    Variable p = params[pi];
    Matrix& w = p.mutable_value();
    const int n = std::min(w.size(), max_entries_per_param);
    // Spread the checked entries across the whole parameter.
    const int stride = std::max(1, w.size() / std::max(n, 1));
    int checked_here = 0;
    for (int j = 0; j < w.size() && checked_here < n; j += stride) {
      const float orig = w.data()[j];
      w.data()[j] = orig + eps;
      const float lp = loss_fn().value().at(0, 0);
      w.data()[j] = orig - eps;
      const float lm = loss_fn().value().at(0, 0);
      w.data()[j] = orig;
      const float numeric = (lp - lm) / (2.0f * eps);
      const float a = analytic[pi].data()[j];
      const float denom = std::max({std::fabs(a), std::fabs(numeric), floor});
      result.max_rel_error =
          std::max(result.max_rel_error, std::fabs(a - numeric) / denom);
      ++result.checked;
      ++checked_here;
    }
  }
  return result;
}

}  // namespace rapid::nn
