#include "click/dcm.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "datagen/simulator.h"

namespace rapid::click {

float GroundTruthClickModel::Termination(int k) const {
  assert(k >= 1);
  return config_.termination_base *
         std::pow(config_.termination_decay, static_cast<float>(k - 1));
}

std::vector<float> GroundTruthClickModel::Rho(int user_id) const {
  const data::User& user = data_->user(user_id);
  std::vector<float> rho(data_->num_topics);
  for (int j = 0; j < data_->num_topics; ++j) {
    rho[j] = config_.rho_scale * user.diversity_appetite * user.topic_pref[j];
  }
  return rho;
}

float GroundTruthClickModel::Attraction(int user_id,
                                        const std::vector<int>& items,
                                        int pos) const {
  const data::User& user = data_->user(user_id);
  const data::Item& item = data_->item(items[pos]);
  const float rel = data::TrueRelevance(user, item);

  // zeta: marginal coverage gain of this item over the shown prefix,
  // c(S_{1..pos+1}) - c(S_{1..pos}) per topic.
  float div = 0.0f;
  const std::vector<float> rho = Rho(user_id);
  for (int j = 0; j < data_->num_topics; ++j) {
    double prefix_miss = 1.0;
    for (int i = 0; i < pos; ++i) {
      prefix_miss *= 1.0 - data_->item(items[i]).topic_coverage[j];
    }
    const float zeta_j =
        static_cast<float>(prefix_miss * item.topic_coverage[j]);
    div += rho[j] * zeta_j;
  }
  const float phi = config_.lambda * rel + (1.0f - config_.lambda) * div;
  return std::clamp(phi, 0.0f, 1.0f);
}

std::vector<int> GroundTruthClickModel::SimulateClicks(
    int user_id, const std::vector<int>& items, std::mt19937_64& rng,
    int k) const {
  const int n = k < 0 ? static_cast<int>(items.size())
                      : std::min<int>(k, static_cast<int>(items.size()));
  std::vector<int> clicks(n, 0);
  std::uniform_real_distribution<float> uni(0.0f, 1.0f);
  for (int pos = 0; pos < n; ++pos) {
    const float phi = Attraction(user_id, items, pos);
    if (uni(rng) < phi) {
      clicks[pos] = 1;
      if (uni(rng) < Termination(pos + 1)) break;  // Satisfied; leaves.
    }
  }
  return clicks;
}

float GroundTruthClickModel::ExpectedClicks(int user_id,
                                            const std::vector<int>& items,
                                            int k) const {
  const int n = std::min<int>(k, static_cast<int>(items.size()));
  double examined = 1.0;
  double expected = 0.0;
  for (int pos = 0; pos < n; ++pos) {
    const double phi = Attraction(user_id, items, pos);
    expected += examined * phi;
    // Continue examining unless (click and terminate).
    examined *= 1.0 - phi * Termination(pos + 1);
  }
  return static_cast<float>(expected);
}

float GroundTruthClickModel::TrueSatisfaction(int user_id,
                                              const std::vector<int>& items,
                                              int k) const {
  const int n = std::min<int>(k, static_cast<int>(items.size()));
  double miss = 1.0;
  for (int pos = 0; pos < n; ++pos) {
    miss *= 1.0 - Termination(pos + 1) * Attraction(user_id, items, pos);
  }
  return static_cast<float>(1.0 - miss);
}

void EstimatedDcm::Fit(const data::Dataset& data,
                       const std::vector<data::ImpressionList>& logs) {
  const int num_items = static_cast<int>(data.items.size());
  std::vector<double> clicks(num_items, 0.0), exams(num_items, 0.0);
  size_t max_len = 0;
  for (const auto& log : logs) max_len = std::max(max_len, log.items.size());
  std::vector<double> last_clicks(max_len, 0.0), any_clicks(max_len, 0.0);

  for (const auto& log : logs) {
    if (log.clicks.empty()) continue;
    // Positions up to and including the last click are examined; if no
    // click, the whole list was examined (user left unsatisfied).
    int last_click = -1;
    for (size_t i = 0; i < log.clicks.size(); ++i) {
      if (log.clicks[i]) last_click = static_cast<int>(i);
    }
    const int examined_upto = last_click >= 0
                                  ? last_click
                                  : static_cast<int>(log.clicks.size()) - 1;
    for (int i = 0; i <= examined_upto; ++i) {
      exams[log.items[i]] += 1.0;
      clicks[log.items[i]] += log.clicks[i];
      if (log.clicks[i]) {
        any_clicks[i] += 1.0;
        if (i == last_click) last_clicks[i] += 1.0;
      }
    }
  }

  double total_clicks = 0.0, total_exams = 0.0;
  for (int v = 0; v < num_items; ++v) {
    total_clicks += clicks[v];
    total_exams += exams[v];
  }
  global_attraction_ =
      total_exams > 0.0 ? static_cast<float>(total_clicks / total_exams)
                        : 0.1f;

  attraction_.resize(num_items);
  for (int v = 0; v < num_items; ++v) {
    // Laplace smoothing toward the global rate.
    attraction_[v] = static_cast<float>(
        (clicks[v] + 2.0 * global_attraction_) / (exams[v] + 2.0));
  }

  termination_.resize(max_len);
  for (size_t i = 0; i < max_len; ++i) {
    termination_[i] = static_cast<float>((last_clicks[i] + 1.0) /
                                         (any_clicks[i] + 2.0));
  }
}

float EstimatedDcm::Attraction(int item_id) const {
  if (item_id < 0 || item_id >= static_cast<int>(attraction_.size())) {
    return global_attraction_;
  }
  return attraction_[item_id];
}

float EstimatedDcm::Termination(int k) const {
  assert(k >= 1);
  if (termination_.empty()) return 0.5f;
  const size_t idx = std::min<size_t>(k - 1, termination_.size() - 1);
  return termination_[idx];
}

float EstimatedDcm::Satisfaction(const std::vector<int>& items, int k) const {
  const int n = std::min<int>(k, static_cast<int>(items.size()));
  double miss = 1.0;
  for (int pos = 0; pos < n; ++pos) {
    miss *= 1.0 - Termination(pos + 1) * Attraction(items[pos]);
  }
  return static_cast<float>(1.0 - miss);
}

}  // namespace rapid::click
