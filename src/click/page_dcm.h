#ifndef RAPID_CLICK_PAGE_DCM_H_
#define RAPID_CLICK_PAGE_DCM_H_

#include <random>
#include <vector>

#include "click/dcm.h"
#include "datagen/types.h"

namespace rapid::click {

/// Parameters of the page-level DCM environment: the per-list DCM plus how
/// the user moves between sibling lists.
struct PageDcmConfig {
  DcmConfig dcm;
  /// Probability the user continues to the next list after reaching the
  /// end of a list without a satisfaction-termination.
  float list_continue = 0.8f;
};

/// The page-level ground-truth user model: a DCM scan over the page's
/// lists *with cross-list coverage memory*. Within each list the
/// examination process is the per-list DCM (click ~ Bernoulli(phi), then
/// terminate with eps(k) on a click), but the attraction's coverage-gain
/// term `zeta` is marginal with respect to *everything shown earlier on
/// the page*, not just the current list's prefix — a banner repeating the
/// feed's topics attracts fewer clicks, which is exactly the signal a
/// joint page reranker can win on. After finishing a list unsatisfied the
/// user moves to the next with probability `list_continue`.
class PageDcm {
 public:
  PageDcm(const data::Dataset* data, const PageDcmConfig& config)
      : data_(data), config_(config), base_(data, config.dcm) {}

  /// Attraction of `item_id` for this user given the page-wide residual
  /// uncovered-mass vector (`residual[j] = prod_shown (1 - tau_v^j)`):
  /// `phi = lambda * alpha + (1 - lambda) * sum_j rho_j tau_v^j residual_j`,
  /// clamped to [0, 1].
  float Attraction(int user_id, int item_id,
                   const std::vector<float>& residual) const;

  /// Expected total clicks across the page's list prefixes (top-`k` per
  /// list; `k < 0` = whole lists), analytic. The coverage memory absorbs
  /// every shown item deterministically (the same expected-coverage
  /// treatment the per-list `GroundTruthClickModel` applies to prefixes).
  float ExpectedPageUtility(int user_id,
                            const std::vector<std::vector<int>>& lists,
                            int k = -1) const;

  /// Samples one scan of the page. Returns one 0/1 click vector per list
  /// (prefix length per list; all-zero for lists the user never reached).
  std::vector<std::vector<int>> SimulateClicks(
      int user_id, const std::vector<std::vector<int>>& lists,
      std::mt19937_64& rng, int k = -1) const;

  const PageDcmConfig& config() const { return config_; }

 private:
  const data::Dataset* data_;
  PageDcmConfig config_;
  GroundTruthClickModel base_;
};

}  // namespace rapid::click

#endif  // RAPID_CLICK_PAGE_DCM_H_
