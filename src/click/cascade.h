#ifndef RAPID_CLICK_CASCADE_H_
#define RAPID_CLICK_CASCADE_H_

#include <random>
#include <vector>

#include "click/dcm.h"
#include "datagen/types.h"

namespace rapid::click {

/// The classic cascade click model (Craswell et al. 2008): the user scans
/// top-down, clicks the first attractive item, and leaves. A single click
/// per list at most — the model the regret analyses of [37], [38]
/// generalize from, and a robustness environment for the re-ranking
/// conclusions (the DCM reduces to it when the termination probability
/// is 1 everywhere).
///
/// The attraction probability reuses the ground-truth DCM composition
/// `lambda * relevance + (1-lambda) * rho_u . zeta` so the two
/// environments differ only in the examination process.
class CascadeClickModel {
 public:
  CascadeClickModel(const data::Dataset* data, const DcmConfig& config)
      : dcm_(data, [&config] {
          DcmConfig c = config;
          c.termination_base = 1.0f;
          c.termination_decay = 1.0f;
          return c;
        }()) {}

  /// Attraction of the item at `pos`, identical to the DCM's.
  float Attraction(int user_id, const std::vector<int>& items,
                   int pos) const {
    return dcm_.Attraction(user_id, items, pos);
  }

  /// Samples the cascade: at most one click (the first attractive item).
  std::vector<int> SimulateClicks(int user_id, const std::vector<int>& items,
                                  std::mt19937_64& rng, int k = -1) const {
    return dcm_.SimulateClicks(user_id, items, rng, k);
  }

  /// P(click within top-k) = 1 - prod (1 - phi(v_i)); the cascade's
  /// utility, equal to the DCM satisfaction at unit termination.
  float ClickProbability(int user_id, const std::vector<int>& items,
                         int k) const {
    return dcm_.TrueSatisfaction(user_id, items, k);
  }

 private:
  GroundTruthClickModel dcm_;
};

}  // namespace rapid::click

#endif  // RAPID_CLICK_CASCADE_H_
