#include "click/page_dcm.h"

#include <algorithm>

#include "datagen/simulator.h"

namespace rapid::click {

namespace {

void Absorb(const data::Item& item, std::vector<float>* residual) {
  for (size_t j = 0; j < residual->size(); ++j) {
    (*residual)[j] *= 1.0f - item.topic_coverage[j];
  }
}

}  // namespace

float PageDcm::Attraction(int user_id, int item_id,
                          const std::vector<float>& residual) const {
  const data::User& user = data_->user(user_id);
  const data::Item& item = data_->item(item_id);
  const float rel = data::TrueRelevance(user, item);
  const std::vector<float> rho = base_.Rho(user_id);
  float div = 0.0f;
  for (int j = 0; j < data_->num_topics; ++j) {
    div += rho[j] * item.topic_coverage[j] * residual[j];
  }
  const float phi =
      config_.dcm.lambda * rel + (1.0f - config_.dcm.lambda) * div;
  return std::clamp(phi, 0.0f, 1.0f);
}

float PageDcm::ExpectedPageUtility(int user_id,
                                   const std::vector<std::vector<int>>& lists,
                                   int k) const {
  std::vector<float> residual(data_->num_topics, 1.0f);
  double examined = 1.0;  // P(the user examines the next position).
  double expected = 0.0;
  for (const std::vector<int>& list : lists) {
    const int n = k < 0 ? static_cast<int>(list.size())
                        : std::min<int>(k, static_cast<int>(list.size()));
    for (int pos = 0; pos < n; ++pos) {
      const double phi = Attraction(user_id, list[pos], residual);
      expected += examined * phi;
      examined *= 1.0 - base_.Termination(pos + 1) * phi;
      Absorb(data_->item(list[pos]), &residual);
    }
    examined *= config_.list_continue;
  }
  return static_cast<float>(expected);
}

std::vector<std::vector<int>> PageDcm::SimulateClicks(
    int user_id, const std::vector<std::vector<int>>& lists,
    std::mt19937_64& rng, int k) const {
  std::vector<float> residual(data_->num_topics, 1.0f);
  std::uniform_real_distribution<float> uni(0.0f, 1.0f);
  std::vector<std::vector<int>> clicks;
  clicks.reserve(lists.size());
  bool scanning = true;
  for (const std::vector<int>& list : lists) {
    const int n = k < 0 ? static_cast<int>(list.size())
                        : std::min<int>(k, static_cast<int>(list.size()));
    std::vector<int> list_clicks(n, 0);
    for (int pos = 0; scanning && pos < n; ++pos) {
      const float phi = Attraction(user_id, list[pos], residual);
      // Only examined items enter the user's coverage memory on a sampled
      // path (the analytic utility absorbs all shown items instead).
      Absorb(data_->item(list[pos]), &residual);
      if (uni(rng) < phi) {
        list_clicks[pos] = 1;
        if (uni(rng) < base_.Termination(pos + 1)) scanning = false;
      }
    }
    clicks.push_back(std::move(list_clicks));
    if (scanning && uni(rng) >= config_.list_continue) scanning = false;
  }
  return clicks;
}

}  // namespace rapid::click
