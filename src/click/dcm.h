#ifndef RAPID_CLICK_DCM_H_
#define RAPID_CLICK_DCM_H_

#include <random>
#include <vector>

#include "datagen/types.h"

namespace rapid::click {

/// Parameters of the dependent click model (DCM) environment used for
/// semi-synthetic evaluation (paper Section IV-B1).
struct DcmConfig {
  /// Relevance-diversity tradeoff of the attraction probability:
  /// `phi(v_k) = lambda * alpha(v_k) + (1-lambda) * rho_u^T zeta(v_k)`.
  /// 1.0 = clicks purely relevance-driven; 0.5 = equal weight.
  float lambda = 0.9f;
  /// Scales the per-user diversity weight `rho_u`.
  float rho_scale = 2.5f;
  /// Base termination probability at position 1. Kept moderate so multiple
  /// clicks per list are common, as in the paper's DCM setup.
  float termination_base = 0.35f;
  /// Geometric decay of termination with position (keeps
  /// eps(1) >= eps(2) >= ... as assumed by the regret analysis).
  float termination_decay = 0.9f;
};

/// The ground-truth user model: a DCM whose attraction combines the hidden
/// true relevance with the *personalized* marginal topic coverage gain.
///
/// Examination process for a displayed list S (top-K):
///   for position k = 1..K:
///     click ~ Bernoulli(phi(v_k));
///     if click: terminate with probability eps(k) (user satisfied).
/// Clicks at different positions are therefore dependent (hence "DCM").
class GroundTruthClickModel {
 public:
  GroundTruthClickModel(const data::Dataset* data, const DcmConfig& config)
      : data_(data), config_(config) {}

  /// Termination probability at 1-based position `k`.
  float Termination(int k) const;

  /// Per-user diversity weight vector `rho_u` (m-dim): the user's
  /// diversity appetite spread over their preferred topics.
  std::vector<float> Rho(int user_id) const;

  /// Attraction probability of the item at position `pos` (0-based) of
  /// `items`, given the items placed before it (the coverage-gain term
  /// `zeta` is the marginal coverage of this item over the prefix).
  float Attraction(int user_id, const std::vector<int>& items, int pos) const;

  /// Samples clicks for the top-`k` prefix of `items` (whole list if k<0).
  /// Returns one 0/1 entry per examined-or-not position (size = prefix len).
  std::vector<int> SimulateClicks(int user_id, const std::vector<int>& items,
                                  std::mt19937_64& rng, int k = -1) const;

  /// Expected number of clicks in the top-k prefix under the DCM
  /// (analytic, no sampling): sum over positions of
  /// P(examined) * attraction.
  float ExpectedClicks(int user_id, const std::vector<int>& items,
                       int k) const;

  /// True satisfaction `f(S, eps, phi) = 1 - prod_k (1 - eps(k) phi(v_k))`
  /// of the top-k prefix; the utility the regret analysis optimizes.
  float TrueSatisfaction(int user_id, const std::vector<int>& items,
                         int k) const;

  const DcmConfig& config() const { return config_; }

 private:
  const data::Dataset* data_;
  DcmConfig config_;
};

/// DCM parameters estimated from click logs by the classic counting MLE
/// (Guo et al. 2009): per-item attraction is clicks over examinations
/// (positions up to and including the last click are examined), per-position
/// termination is P(last click | click at position). Used to compute the
/// `satis@k` metric without peeking at ground truth.
class EstimatedDcm {
 public:
  /// Fits from logged impressions with clicks filled in.
  void Fit(const data::Dataset& data,
           const std::vector<data::ImpressionList>& logs);

  /// Estimated attraction of an item (Laplace-smoothed; falls back to the
  /// global mean for never-examined items).
  float Attraction(int item_id) const;

  /// Estimated termination probability at 1-based position `k`.
  float Termination(int k) const;

  /// `satis@k` of a displayed list: `1 - prod (1 - eps~(i) phi~(v_i))`.
  float Satisfaction(const std::vector<int>& items, int k) const;

 private:
  std::vector<float> attraction_;
  std::vector<float> termination_;
  float global_attraction_ = 0.1f;
};

}  // namespace rapid::click

#endif  // RAPID_CLICK_DCM_H_
