#include "online/feedback.h"

#include <algorithm>
#include <utility>

namespace rapid::online {

FeedbackLog::FeedbackLog(FeedbackLogConfig config)
    : capacity_(std::max<size_t>(config.capacity, 1)) {}

bool FeedbackLog::Append(FeedbackEvent event) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || events_.size() >= capacity_) {
      ++dropped_;
      return false;
    }
    events_.push_back(std::move(event));
    ++appended_;
  }
  cv_.notify_one();
  return true;
}

size_t FeedbackLog::Drain(size_t max, std::vector<FeedbackEvent>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t n = std::min(max, events_.size());
  for (size_t i = 0; i < n; ++i) {
    out->push_back(std::move(events_.front()));
    events_.pop_front();
  }
  drained_ += n;
  return n;
}

size_t FeedbackLog::WaitDrain(size_t max, std::chrono::milliseconds timeout,
                              std::vector<FeedbackEvent>* out) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, timeout,
               [this] { return closed_ || !events_.empty(); });
  const size_t n = std::min(max, events_.size());
  for (size_t i = 0; i < n; ++i) {
    out->push_back(std::move(events_.front()));
    events_.pop_front();
  }
  drained_ += n;
  return n;
}

void FeedbackLog::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool FeedbackLog::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

size_t FeedbackLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void FeedbackLog::FillStats(serve::OnlineStats* stats) const {
  std::lock_guard<std::mutex> lock(mu_);
  stats->feedback_appended = appended_;
  stats->feedback_dropped = dropped_;
  stats->feedback_drained = drained_;
}

}  // namespace rapid::online
