#ifndef RAPID_ONLINE_FEEDBACK_H_
#define RAPID_ONLINE_FEEDBACK_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "datagen/types.h"
#include "serve/metrics.h"

namespace rapid::online {

/// One unit of the feedback stream: an impression list *as served* (the
/// post-rerank order, which the positional DCM click model depends on)
/// with its observed click labels in `list.clicks`, attributed to the
/// slot and published model version that earned it.
struct FeedbackEvent {
  std::string slot;
  uint64_t model_version = 0;
  data::ImpressionList list;
};

struct FeedbackLogConfig {
  /// Events held at once; an append against a full log is *dropped* (and
  /// counted), never blocked — the serving path must stay O(1) bounded.
  size_t capacity = 4096;
};

/// The bounded, lock-guarded buffer between the serving tier and the
/// background trainer. The net server (or an in-process caller) appends
/// one event per served list; the trainer drains batches. Appends never
/// block: a full log sheds the oldest-news-first way a metrics pipe
/// should — the new event is dropped and counted, and training continues
/// on what fit. `Close` wakes blocked drainers for shutdown; events still
/// buffered remain drainable after close, but further appends drop.
///
/// Thread safety: every method is safe to call concurrently.
class FeedbackLog {
 public:
  explicit FeedbackLog(FeedbackLogConfig config = {});

  /// Appends one event. Returns false — counting a drop — when the log is
  /// full or closed.
  bool Append(FeedbackEvent event);

  /// Moves up to `max` events (FIFO) into `out` (appended; not cleared).
  /// Non-blocking; returns the number drained.
  size_t Drain(size_t max, std::vector<FeedbackEvent>* out);

  /// Like `Drain`, but blocks until at least one event is available, the
  /// log closes, or `timeout` elapses. Returns the number drained (0 on
  /// timeout or on a drained-dry closed log).
  size_t WaitDrain(size_t max, std::chrono::milliseconds timeout,
                   std::vector<FeedbackEvent>* out);

  /// Marks the log closed and wakes blocked drainers. Idempotent.
  void Close();

  bool closed() const;
  size_t size() const;

  /// Fills the `feedback_*` fields of `stats` (leaves the trainer fields
  /// untouched, so the trainer can layer its own counters on top).
  void FillStats(serve::OnlineStats* stats) const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<FeedbackEvent> events_;
  bool closed_ = false;
  uint64_t appended_ = 0;
  uint64_t dropped_ = 0;
  uint64_t drained_ = 0;
};

}  // namespace rapid::online

#endif  // RAPID_ONLINE_FEEDBACK_H_
