#include "online/policy.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

namespace rapid::online {

uint64_t PullCounts::Count(int user, int item) const {
  const Shard& shard = ShardFor(user);
  std::lock_guard<std::mutex> lock(shard.mu);
  const uint64_t key =
      (static_cast<uint64_t>(static_cast<uint32_t>(user)) << 32) |
      static_cast<uint32_t>(item);
  const auto it = shard.counts.find(key);
  return it == shard.counts.end() ? 0 : it->second;
}

uint64_t PullCounts::UserTotal(int user) const {
  const Shard& shard = ShardFor(user);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.user_totals.find(user);
  return it == shard.user_totals.end() ? 0 : it->second;
}

void PullCounts::Record(int user, const std::vector<int>& items, int top_k) {
  const size_t n = top_k <= 0
                       ? items.size()
                       : std::min(items.size(), static_cast<size_t>(top_k));
  if (n == 0) return;
  Shard& shard = ShardFor(user);
  std::lock_guard<std::mutex> lock(shard.mu);
  for (size_t i = 0; i < n; ++i) {
    const uint64_t key =
        (static_cast<uint64_t>(static_cast<uint32_t>(user)) << 32) |
        static_cast<uint32_t>(items[i]);
    ++shard.counts[key];
  }
  shard.user_totals[user] += n;
}

OnlinePolicy::OnlinePolicy(std::shared_ptr<const rerank::Reranker> base,
                           std::shared_ptr<PullCounts> pulls,
                           OnlinePolicyConfig config)
    : base_(std::move(base)),
      neural_base_(dynamic_cast<const rerank::NeuralReranker*>(base_.get())),
      pulls_(std::move(pulls)),
      config_(config) {}

std::string OnlinePolicy::name() const {
  return "UCB(" + base_->name() + ")";
}

std::vector<double> OnlinePolicy::BaseScores(
    const data::Dataset& data, const data::ImpressionList& list) const {
  const size_t n = list.items.size();
  std::vector<double> scores(n, 0.0);
  if (neural_base_ != nullptr) {
    const std::vector<float> raw = neural_base_->ScoreList(data, list);
    double lo = raw.empty() ? 0.0 : raw[0], hi = lo;
    for (const float s : raw) {
      lo = std::min<double>(lo, s);
      hi = std::max<double>(hi, s);
    }
    const double span = hi - lo;
    for (size_t i = 0; i < n; ++i) {
      scores[i] = span > 0.0 ? (raw[i] - lo) / span : 0.5;
    }
    return scores;
  }
  // Heuristic base: no scores to read, so derive relevance from the
  // base's ranking — position p of n maps to (n - p) / n.
  const std::vector<int> ranked = base_->Rerank(data, list);
  for (size_t p = 0; p < ranked.size(); ++p) {
    const auto it = std::find(list.items.begin(), list.items.end(), ranked[p]);
    if (it == list.items.end()) continue;
    const size_t i = static_cast<size_t>(it - list.items.begin());
    scores[i] = static_cast<double>(n - p) / static_cast<double>(n);
  }
  return scores;
}

std::vector<int> OnlinePolicy::Rerank(const data::Dataset& data,
                                      const data::ImpressionList& list) const {
  const size_t n = list.items.size();
  if (n == 0) return {};
  std::vector<double> scores = BaseScores(data, list);
  const double total_pulls =
      static_cast<double>(pulls_->UserTotal(list.user_id));
  if (config_.exploration > 0.0) {
    for (size_t i = 0; i < n; ++i) {
      const double pulled =
          static_cast<double>(pulls_->Count(list.user_id, list.items[i]));
      scores[i] += config_.exploration *
                   std::sqrt(std::log(1.0 + total_pulls) / (1.0 + pulled));
    }
  }
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&scores](size_t a, size_t b) {
    return scores[a] > scores[b];
  });
  std::vector<int> out;
  out.reserve(n);
  for (const size_t i : order) out.push_back(list.items[i]);
  pulls_->Record(list.user_id, out, config_.record_top_k);
  return out;
}

}  // namespace rapid::online
