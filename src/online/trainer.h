#ifndef RAPID_ONLINE_TRAINER_H_
#define RAPID_ONLINE_TRAINER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "online/feedback.h"
#include "rerank/neural_base.h"
#include "serve/router.h"
#include "serve/snapshot.h"

namespace rapid::online {

struct OnlineTrainerConfig {
  /// The router slot the trainer republishes into.
  std::string slot = "online";
  /// Feedback lists required before a fine-tune round runs. Smaller means
  /// fresher models, larger means smoother gradients.
  size_t min_batch = 8;
  /// Most lists consumed per round (bounds one round's latency).
  size_t max_batch = 64;
  /// `NeuralReranker::FineTune` epochs per round.
  int epochs_per_round = 1;
  /// Publish a snapshot every N completed train rounds.
  int publish_every_rounds = 1;
  /// How long one `WaitDrain` blocks; also bounds how quickly the loop
  /// notices `Stop`.
  std::chrono::milliseconds poll_interval{50};
  /// Where published snapshots are written (required; the same file is
  /// rewritten each publish — `LoadSlot` copies it into memory).
  std::string snapshot_path;
  /// Family tag for `Snapshot::Save` — must match the model's class.
  serve::SnapshotFamily family = serve::SnapshotFamily::kRapid;
  /// Base RNG seed; each round trains with `seed + round`.
  uint64_t seed = 1;
};

/// The background fine-tuning loop that closes serve -> feedback -> train
/// -> publish:
///
///   - **Ownership/threading model.** The trainer owns a *private* copy
///     of the model; no serving thread ever scores it, so `FineTune`'s
///     exclusive-access requirement holds without locks. Publishing never
///     shares that object either: each publish writes a v3 snapshot (with
///     its auto-recorded canary probe) and hands the *path* to
///     `ServingRouter::LoadSlot`, which rebuilds a fresh model, scores
///     the canary, and RCU-publishes it. The trainer thread calls
///     `LoadSlot` itself, so snapshot write and load are sequential on
///     one thread, and the swap inherits the router's zero-drop
///     guarantee: in-flight requests finish on the old version.
///   - **Rejection is survivable.** A canary rejection or snapshot I/O
///     failure counts `publish_rejected` and leaves the slot serving its
///     previous version; training continues and the next cadence retries.
///   - **Feedback without initial scores** (the wire frame carries none)
///     trains with position-derived scores: the served order is the best
///     available stand-in for the initial ranking.
///
/// The model passed in must already be fitted (or snapshot-loaded) — the
/// trainer only ever fine-tunes.
class OnlineTrainer {
 public:
  OnlineTrainer(const data::Dataset& data, serve::ServingRouter* router,
                FeedbackLog* log,
                std::unique_ptr<rerank::NeuralReranker> model,
                OnlineTrainerConfig config);
  ~OnlineTrainer();

  OnlineTrainer(const OnlineTrainer&) = delete;
  OnlineTrainer& operator=(const OnlineTrainer&) = delete;

  /// Spawns the trainer thread. Call at most once.
  void Start();

  /// Stops the loop and joins the thread. A final publish attempt flushes
  /// any rounds trained since the last one (skipped-counted when there
  /// are none). Idempotent; called by the destructor.
  void Stop();

  /// Trainer + feedback-log counters, merged into one `OnlineStats`.
  serve::OnlineStats Stats() const;

  /// Convenience: stamps `Stats()` onto `stats` and sets `has_online` —
  /// the shape `RouterStats` renders and the wire carries.
  void FillStats(serve::RouterStats* stats) const;

 private:
  void Loop();
  /// Runs one fine-tune round over `events`; returns lists consumed.
  size_t TrainRound(std::vector<FeedbackEvent>* events);
  /// Snapshot + canary-guarded LoadSlot. Returns true on an accepted
  /// publish.
  bool Publish();

  const data::Dataset& data_;
  serve::ServingRouter* router_;
  FeedbackLog* log_;
  std::unique_ptr<rerank::NeuralReranker> model_;
  const OnlineTrainerConfig config_;

  std::thread thread_;
  std::atomic<bool> stop_{false};
  bool started_ = false;

  std::atomic<uint64_t> train_rounds_{0};
  std::atomic<uint64_t> trained_lists_{0};
  std::atomic<uint64_t> publishes_{0};
  std::atomic<uint64_t> publish_rejected_{0};
  std::atomic<uint64_t> publish_skipped_{0};
  std::atomic<uint64_t> last_published_version_{0};
  /// Rounds trained since the last accepted publish (trainer thread only).
  int rounds_since_publish_ = 0;
};

}  // namespace rapid::online

#endif  // RAPID_ONLINE_TRAINER_H_
