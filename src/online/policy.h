#ifndef RAPID_ONLINE_POLICY_H_
#define RAPID_ONLINE_POLICY_H_

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "rerank/neural_base.h"
#include "rerank/reranker.h"

namespace rapid::online {

/// Concurrent per-(user, item) pull counter behind the UCB bonus.
/// Sharded by user so concurrent serving threads rarely contend; every
/// method locks internally, which keeps `OnlinePolicy::Rerank` honest
/// about the `Reranker` const-inference thread-safety contract.
class PullCounts {
 public:
  /// Times `item` was served to `user` (in a recorded top-k prefix).
  uint64_t Count(int user, int item) const;

  /// Total recorded pulls for `user` across all items.
  uint64_t UserTotal(int user) const;

  /// Records one serve of the first `top_k` entries of `items` to `user`.
  void Record(int user, const std::vector<int>& items, int top_k);

 private:
  static constexpr int kShards = 16;
  struct Shard {
    mutable std::mutex mu;
    /// (user << 32 | item) -> pulls.
    std::unordered_map<uint64_t, uint64_t> counts;
    /// user -> total pulls.
    std::unordered_map<int, uint64_t> user_totals;
  };
  Shard& ShardFor(int user) const {
    return shards_[static_cast<uint32_t>(user) % kShards];
  }

  mutable std::array<Shard, kShards> shards_;
};

struct OnlinePolicyConfig {
  /// Scale of the UCB exploration bonus added to the min-max-normalized
  /// base scores. 0 reproduces the base ranking exactly.
  double exploration = 0.3;
  /// How many of the served list's leading items count as "pulled" — the
  /// prefix a user actually examines under the DCM. <= 0 records the
  /// whole list.
  int record_top_k = 5;
};

/// UCB-explored serving: a `Reranker` decorator that re-scores each list
/// as `normalized_base_score + exploration * sqrt(log(1 + N_u) /
/// (1 + n_{u,i}))` — the optimism bonus of the paper's RAPID-pro bandit,
/// built from per-(user, item) pull counts — and records the served
/// prefix as pulls. Items the user has rarely seen get boosted until the
/// feedback loop has evidence about them; as counts grow the policy
/// converges back to the base model's ranking.
///
/// Installed per slot via `serve::ServingRouter::SetSlotWrapper`, so
/// deterministic serving stays the default for every other slot. The
/// shared `PullCounts` survives republishes: each trainer publish wraps
/// the fresh model around the same accumulated counts.
///
/// Thread safety: `Rerank`/`RerankBatch` are const and internally
/// synchronized (see `PullCounts`), satisfying the serving contract.
/// Exploration slots should be on the result cache's bypass list — a
/// cached permutation would freeze exploration and skip pull recording.
class OnlinePolicy : public rerank::Reranker {
 public:
  OnlinePolicy(std::shared_ptr<const rerank::Reranker> base,
               std::shared_ptr<PullCounts> pulls,
               OnlinePolicyConfig config = {});

  std::string name() const override;

  std::vector<int> Rerank(const data::Dataset& data,
                          const data::ImpressionList& list) const override;

  const rerank::Reranker& base() const { return *base_; }

 private:
  /// Base relevance in [0, 1] per item, in list order: the neural model's
  /// min-max-normalized scores when the base is a `NeuralReranker`, else
  /// scores derived from the base's ranking positions.
  std::vector<double> BaseScores(const data::Dataset& data,
                                 const data::ImpressionList& list) const;

  std::shared_ptr<const rerank::Reranker> base_;
  /// Cached `dynamic_cast` of `base_` (null for heuristic bases).
  const rerank::NeuralReranker* neural_base_;
  std::shared_ptr<PullCounts> pulls_;
  OnlinePolicyConfig config_;
};

}  // namespace rapid::online

#endif  // RAPID_ONLINE_POLICY_H_
