#include "online/trainer.h"

#include <algorithm>
#include <utility>

namespace rapid::online {

OnlineTrainer::OnlineTrainer(const data::Dataset& data,
                             serve::ServingRouter* router, FeedbackLog* log,
                             std::unique_ptr<rerank::NeuralReranker> model,
                             OnlineTrainerConfig config)
    : data_(data),
      router_(router),
      log_(log),
      model_(std::move(model)),
      config_(std::move(config)) {}

OnlineTrainer::~OnlineTrainer() { Stop(); }

void OnlineTrainer::Start() {
  if (started_) return;
  started_ = true;
  thread_ = std::thread([this] { Loop(); });
}

void OnlineTrainer::Stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  started_ = false;
}

void OnlineTrainer::Loop() {
  std::vector<FeedbackEvent> pending;
  while (!stop_.load(std::memory_order_acquire)) {
    log_->WaitDrain(config_.max_batch - std::min(config_.max_batch,
                                                 pending.size()),
                    config_.poll_interval, &pending);
    if (pending.size() < std::max<size_t>(config_.min_batch, 1)) continue;
    TrainRound(&pending);
    if (rounds_since_publish_ >= std::max(config_.publish_every_rounds, 1)) {
      Publish();
    }
  }
  // Shutdown flush: train whatever is still buffered (below min_batch
  // included — it is the last chance) and publish outstanding rounds.
  log_->Drain(config_.max_batch, &pending);
  if (!pending.empty()) TrainRound(&pending);
  Publish();
}

size_t OnlineTrainer::TrainRound(std::vector<FeedbackEvent>* events) {
  std::vector<data::ImpressionList> lists;
  lists.reserve(events->size());
  for (FeedbackEvent& event : *events) {
    data::ImpressionList list = std::move(event.list);
    if (list.items.empty() || list.clicks.size() != list.items.size()) {
      continue;  // Defensive: the codec already rejects these.
    }
    if (list.scores.size() != list.items.size()) {
      // The wire frame carries no initial scores; the served order is the
      // best available stand-in for the initial ranking.
      const size_t n = list.items.size();
      list.scores.resize(n);
      for (size_t i = 0; i < n; ++i) {
        list.scores[i] =
            static_cast<float>(n - i) / static_cast<float>(n);
      }
    }
    lists.push_back(std::move(list));
  }
  events->clear();
  if (lists.empty()) return 0;
  const uint64_t round = train_rounds_.load(std::memory_order_relaxed);
  model_->FineTune(data_, lists, config_.seed + round,
                   config_.epochs_per_round);
  train_rounds_.fetch_add(1, std::memory_order_relaxed);
  trained_lists_.fetch_add(lists.size(), std::memory_order_relaxed);
  ++rounds_since_publish_;
  return lists.size();
}

bool OnlineTrainer::Publish() {
  if (rounds_since_publish_ == 0) {
    publish_skipped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (!serve::Snapshot::Save(config_.snapshot_path, *model_, config_.family,
                             data_)) {
    publish_rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // The canary-guarded swap: LoadSlot rebuilds the model from the
  // snapshot, validates it against the auto-recorded probe, and publishes
  // under the router's zero-drop RCU semantics. Version 0 = rejected, and
  // the slot keeps serving the previous version.
  const uint64_t version = router_->LoadSlot(config_.slot,
                                             config_.snapshot_path);
  if (version == 0) {
    publish_rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  publishes_.fetch_add(1, std::memory_order_relaxed);
  last_published_version_.store(version, std::memory_order_relaxed);
  rounds_since_publish_ = 0;
  return true;
}

serve::OnlineStats OnlineTrainer::Stats() const {
  serve::OnlineStats stats;
  log_->FillStats(&stats);
  stats.train_rounds = train_rounds_.load(std::memory_order_relaxed);
  stats.trained_lists = trained_lists_.load(std::memory_order_relaxed);
  stats.publishes = publishes_.load(std::memory_order_relaxed);
  stats.publish_rejected = publish_rejected_.load(std::memory_order_relaxed);
  stats.publish_skipped = publish_skipped_.load(std::memory_order_relaxed);
  stats.last_published_version =
      last_published_version_.load(std::memory_order_relaxed);
  return stats;
}

void OnlineTrainer::FillStats(serve::RouterStats* stats) const {
  stats->online = Stats();
  stats->has_online = true;
}

}  // namespace rapid::online
