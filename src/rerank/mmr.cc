#include "rerank/mmr.h"

#include <algorithm>
#include <cmath>

#include "datagen/history.h"

namespace rapid::rerank {

std::vector<int> MmrReranker::GreedyMmr(const data::Dataset& data,
                                        const data::ImpressionList& list,
                                        float trade) {
  const int n = static_cast<int>(list.items.size());
  const std::vector<float> rel = NormalizedScores(list);
  std::vector<bool> used(n, false);
  std::vector<int> out;
  out.reserve(n);
  std::vector<float> max_sim(n, 0.0f);  // max similarity to selected set
  for (int step = 0; step < n; ++step) {
    int best = -1;
    float best_score = -1e30f;
    for (int i = 0; i < n; ++i) {
      if (used[i]) continue;
      const float score = trade * rel[i] - (1.0f - trade) * max_sim[i];
      if (score > best_score) {
        best_score = score;
        best = i;
      }
    }
    used[best] = true;
    out.push_back(list.items[best]);
    const data::Item& chosen = data.item(list.items[best]);
    for (int i = 0; i < n; ++i) {
      if (used[i]) continue;
      max_sim[i] = std::max(max_sim[i],
                            CoverageCosine(data.item(list.items[i]), chosen));
    }
  }
  return out;
}

std::vector<int> MmrReranker::Rerank(const data::Dataset& data,
                                     const data::ImpressionList& list) const {
  return GreedyMmr(data, list, trade_);
}

std::vector<int> AdpMmrReranker::Rerank(
    const data::Dataset& data, const data::ImpressionList& list) const {
  const std::vector<float> dist =
      data::HistoryTopicDistribution(data, list.user_id);
  double entropy = 0.0;
  for (float p : dist) {
    if (p > 0.0f) entropy -= p * std::log(p);
  }
  const double max_entropy = std::log(static_cast<double>(data.num_topics));
  const float propensity =
      max_entropy > 0.0 ? static_cast<float>(entropy / max_entropy) : 0.0f;
  // Focused users (low propensity) keep relevance weight near 1; diverse
  // users drop toward 0.5 (equal weighting).
  const float trade = 1.0f - 0.5f * propensity;
  return GreedyMmr(data, list, trade);
}

}  // namespace rapid::rerank
