#include "rerank/dpp.h"

#include <algorithm>
#include <cmath>

namespace rapid::rerank {

std::vector<int> DppReranker::GreedyMapInference(
    const std::vector<std::vector<float>>& kernel, int max_items) {
  const int n = static_cast<int>(kernel.size());
  const int k = std::min(max_items, n);
  // Chen et al. 2018: maintain for every candidate i the squared marginal
  // gain d2[i] and its Cholesky row c[i] against the selected set.
  std::vector<double> d2(n);
  for (int i = 0; i < n; ++i) d2[i] = kernel[i][i];
  std::vector<std::vector<double>> c(n);
  std::vector<bool> used(n, false);
  std::vector<int> selected;
  selected.reserve(k);

  for (int step = 0; step < k; ++step) {
    int best = -1;
    double best_gain = 1e-12;  // PSD feasibility floor
    for (int i = 0; i < n; ++i) {
      if (!used[i] && d2[i] > best_gain) {
        best_gain = d2[i];
        best = i;
      }
    }
    if (best < 0) break;  // No item adds positive volume.
    used[best] = true;
    selected.push_back(best);
    const double dj = std::sqrt(d2[best]);
    for (int i = 0; i < n; ++i) {
      if (used[i]) continue;
      double dot = 0.0;
      for (size_t t = 0; t < c[best].size(); ++t) dot += c[best][t] * c[i][t];
      const double e = (kernel[best][i] - dot) / dj;
      c[i].push_back(e);
      d2[i] -= e * e;
    }
    c[best].clear();
  }

  // Degenerate kernels can exhaust positive-volume items early; keep the
  // output a full permutation by appending the rest in original order.
  for (int i = 0; i < n; ++i) {
    if (!used[i]) selected.push_back(i);
  }
  return selected;
}

std::vector<int> DppReranker::Rerank(const data::Dataset& data,
                                     const data::ImpressionList& list) const {
  const int n = static_cast<int>(list.items.size());
  const std::vector<float> rel = NormalizedScores(list);
  std::vector<std::vector<float>> kernel(n, std::vector<float>(n));
  for (int i = 0; i < n; ++i) {
    const float qi = std::exp(alpha_ * rel[i]);
    for (int j = 0; j < n; ++j) {
      const float qj = std::exp(alpha_ * rel[j]);
      float s = CoverageCosine(data.item(list.items[i]),
                               data.item(list.items[j]));
      if (i == j) s = 1.0f + 1e-3f;  // Diagonal jitter for stability.
      kernel[i][j] = qi * s * qj;
    }
  }
  const std::vector<int> order = GreedyMapInference(kernel, n);
  std::vector<int> out;
  out.reserve(n);
  for (int idx : order) out.push_back(list.items[idx]);
  return out;
}

}  // namespace rapid::rerank
