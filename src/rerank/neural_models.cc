#include "rerank/neural_models.h"

#include <cmath>

namespace rapid::rerank {

namespace {

using nn::Variable;

// (L x L) additive attention mask: 0 where attention is allowed,
// -1e9 where blocked. `causal` blocks j > i; `band >= 0` additionally
// blocks |i - j| > band.
nn::Matrix AttentionMask(int L, bool causal, int band) {
  nn::Matrix mask(L, L);
  for (int i = 0; i < L; ++i) {
    for (int j = 0; j < L; ++j) {
      const bool blocked =
          (causal && j > i) || (band >= 0 && std::abs(i - j) > band);
      mask.at(i, j) = blocked ? -1e9f : 0.0f;
    }
  }
  return mask;
}

// Single-head projected attention with an additive (segment x segment)
// mask. The projections run on the full (B*segment x d) matrix; the
// attention itself is computed per length-`segment` block so lists in a
// batch never mix (same blocking contract as nn::MultiHeadAttention).
Variable MaskedAttention(const Variable& x, const nn::Linear& wq,
                         const nn::Linear& wk, const nn::Linear& wv,
                         const nn::Matrix& mask, int segment) {
  Variable q = wq.Forward(x);
  Variable k = wk.Forward(x);
  Variable v = wv.Forward(x);
  const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(q.cols()));
  if (segment == x.rows()) {
    Variable scores = nn::Scale(nn::MatMul(q, nn::Transpose(k)), inv_sqrt_d);
    scores = nn::Add(scores, Variable::Constant(mask));
    return nn::MatMul(nn::SoftmaxRows(scores), v);
  }
  std::vector<Variable> blocks;
  blocks.reserve(x.rows() / segment);
  for (int start = 0; start < x.rows(); start += segment) {
    Variable qb = nn::SliceRows(q, start, segment);
    Variable kb = nn::SliceRows(k, start, segment);
    Variable vb = nn::SliceRows(v, start, segment);
    Variable scores =
        nn::Scale(nn::MatMul(qb, nn::Transpose(kb)), inv_sqrt_d);
    scores = nn::Add(scores, Variable::Constant(mask));
    blocks.push_back(nn::MatMul(nn::SoftmaxRows(scores), vb));
  }
  return nn::ConcatRows(blocks);
}

// Index map taking a time-major (L*B x d) step stack (row t*B + b) to the
// list-major (B*L x d) layout (row b*L + i) used by the scoring heads.
std::vector<int> ListMajorIndex(int B, int L) {
  std::vector<int> idx(static_cast<size_t>(B) * L);
  for (int b = 0; b < B; ++b) {
    for (int i = 0; i < L; ++i) idx[b * L + i] = i * B + b;
  }
  return idx;
}

// Tiles a per-list (L x d) constant (e.g. the sinusoidal positional
// encoding) B times: row b*L + i of the result is row i of `pe`.
nn::Matrix TileRows(const nn::Matrix& pe, int B) {
  nn::Matrix out(B * pe.rows(), pe.cols());
  for (int b = 0; b < B; ++b) {
    for (int i = 0; i < pe.rows(); ++i) {
      const float* src = pe.row(i);
      float* dst = out.row(b * pe.rows() + i);
      for (int c = 0; c < pe.cols(); ++c) dst[c] = src[c];
    }
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------- DLCM --

struct DlcmReranker::Net {
  Net(int in_dim, int hidden, std::mt19937_64& rng)
      : gru(in_dim, hidden, rng),
        scorer({2 * hidden, hidden, 1}, rng, nn::Activation::kRelu) {}
  nn::GruCell gru;
  nn::Mlp scorer;
};

DlcmReranker::DlcmReranker(NeuralRerankConfig config)
    : NeuralReranker(config) {}
DlcmReranker::~DlcmReranker() = default;

void DlcmReranker::InitNet(const data::Dataset& data, std::mt19937_64& rng) {
  net_ = std::make_unique<Net>(ListFeatureDim(data), config_.hidden_dim, rng);
}

Variable DlcmReranker::BuildBatchLogits(
    const data::Dataset& data,
    const std::vector<const data::ImpressionList*>& lists, bool /*training*/,
    std::mt19937_64& /*rng*/) const {
  const int B = static_cast<int>(lists.size());
  const int L = static_cast<int>(lists[0]->items.size());
  // One GRU recurrence over (B x F) time-major steps runs every list at
  // once; each row evolves independently, so the states match B
  // single-list runs bitwise.
  const std::vector<Variable> steps =
      TimeMajorSteps(BatchFeatureMatrix(data, lists), B, L);
  Variable h = Variable::Constant(nn::Matrix(B, net_->gru.hidden_dim()));
  std::vector<Variable> states;
  states.reserve(steps.size());
  for (const Variable& x : steps) {
    h = net_->gru.Forward(x, h);
    states.push_back(h);
  }
  Variable tm = nn::ConcatRows(states);  // time-major (L*B x h)
  // Score each item against its own list's final (whole-list) context
  // state: gather the states back to list-major, and tile each list's
  // final state (time step L-1) across its L rows.
  std::vector<int> ctx_idx(static_cast<size_t>(B) * L);
  for (int b = 0; b < B; ++b) {
    for (int i = 0; i < L; ++i) ctx_idx[b * L + i] = (L - 1) * B + b;
  }
  Variable state_mat = nn::GatherRows(tm, ListMajorIndex(B, L));  // (B*L x h)
  Variable context = nn::GatherRows(tm, std::move(ctx_idx));      // (B*L x h)
  return net_->scorer.Forward(nn::ConcatCols({state_mat, context}));
}

std::vector<Variable> DlcmReranker::Params() const {
  std::vector<Variable> out = net_->gru.Params();
  for (const Variable& p : net_->scorer.Params()) out.push_back(p);
  return out;
}

// ----------------------------------------------------------------- PRM --

struct PrmReranker::Net {
  Net(int in_dim, int hidden, std::mt19937_64& rng)
      : input_proj(in_dim, hidden, rng),
        encoder(hidden, 2, 2 * hidden, rng),
        scorer({hidden, hidden, 1}, rng, nn::Activation::kRelu) {}
  nn::Linear input_proj;
  nn::TransformerEncoderLayer encoder;
  nn::Mlp scorer;
};

PrmReranker::PrmReranker(NeuralRerankConfig config) : NeuralReranker(config) {}
PrmReranker::~PrmReranker() = default;

void PrmReranker::InitNet(const data::Dataset& data, std::mt19937_64& rng) {
  net_ = std::make_unique<Net>(ListFeatureDim(data), config_.hidden_dim, rng);
}

Variable PrmReranker::BuildBatchLogits(
    const data::Dataset& data,
    const std::vector<const data::ImpressionList*>& lists, bool /*training*/,
    std::mt19937_64& /*rng*/) const {
  const int B = static_cast<int>(lists.size());
  const int L = static_cast<int>(lists[0]->items.size());
  Variable x = Variable::Constant(BatchFeatureMatrix(data, lists));
  Variable h = net_->input_proj.Forward(x);
  h = nn::Add(h, Variable::Constant(TileRows(
                     nn::SinusoidalPositionalEncoding(L, h.cols()), B)));
  h = net_->encoder.Forward(h, /*segment=*/L);
  return net_->scorer.Forward(h);
}

std::vector<Variable> PrmReranker::Params() const {
  std::vector<Variable> out = net_->input_proj.Params();
  for (const Variable& p : net_->encoder.Params()) out.push_back(p);
  for (const Variable& p : net_->scorer.Params()) out.push_back(p);
  return out;
}

// ------------------------------------------------------------- SetRank --

struct SetRankReranker::Net {
  Net(int in_dim, int hidden, std::mt19937_64& rng)
      : input_proj(in_dim, hidden, rng),
        block1(hidden, 2, 2 * hidden, rng),
        block2(hidden, 2, 2 * hidden, rng),
        scorer({hidden, hidden, 1}, rng, nn::Activation::kRelu) {}
  nn::Linear input_proj;
  nn::TransformerEncoderLayer block1;
  nn::TransformerEncoderLayer block2;
  nn::Mlp scorer;
};

SetRankReranker::SetRankReranker(NeuralRerankConfig config)
    : NeuralReranker(config) {}
SetRankReranker::~SetRankReranker() = default;

void SetRankReranker::InitNet(const data::Dataset& data,
                              std::mt19937_64& rng) {
  net_ = std::make_unique<Net>(ListFeatureDim(data), config_.hidden_dim, rng);
}

Variable SetRankReranker::BuildBatchLogits(
    const data::Dataset& data,
    const std::vector<const data::ImpressionList*>& lists, bool /*training*/,
    std::mt19937_64& /*rng*/) const {
  const int L = static_cast<int>(lists[0]->items.size());
  // No positional encoding: permutation-invariant by construction.
  Variable h = net_->input_proj.Forward(
      Variable::Constant(BatchFeatureMatrix(data, lists)));
  h = net_->block1.Forward(h, /*segment=*/L);
  h = net_->block2.Forward(h, /*segment=*/L);
  return net_->scorer.Forward(h);
}

std::vector<Variable> SetRankReranker::Params() const {
  std::vector<Variable> out = net_->input_proj.Params();
  for (const Variable& p : net_->block1.Params()) out.push_back(p);
  for (const Variable& p : net_->block2.Params()) out.push_back(p);
  for (const Variable& p : net_->scorer.Params()) out.push_back(p);
  return out;
}

// ---------------------------------------------------------------- SRGA --

struct SrgaReranker::Net {
  Net(int in_dim, int hidden, std::mt19937_64& rng)
      : input_proj(in_dim, hidden, rng),
        wq_glob(hidden, hidden, rng),
        wk_glob(hidden, hidden, rng),
        wv_glob(hidden, hidden, rng),
        wq_loc(hidden, hidden, rng),
        wk_loc(hidden, hidden, rng),
        wv_loc(hidden, hidden, rng),
        gate(Variable::Parameter(nn::Matrix(1, hidden))),
        scorer({2 * hidden, hidden, 1}, rng, nn::Activation::kRelu) {}
  nn::Linear input_proj;
  nn::Linear wq_glob, wk_glob, wv_glob;  // unidirectional (causal) head
  nn::Linear wq_loc, wk_loc, wv_loc;     // local-window head
  Variable gate;                          // learned fusion gate (1 x h)
  nn::Mlp scorer;
};

SrgaReranker::SrgaReranker(NeuralRerankConfig config, int local_window)
    : NeuralReranker(config), local_window_(local_window) {}
SrgaReranker::~SrgaReranker() = default;

void SrgaReranker::InitNet(const data::Dataset& data, std::mt19937_64& rng) {
  net_ = std::make_unique<Net>(ListFeatureDim(data), config_.hidden_dim, rng);
}

Variable SrgaReranker::BuildBatchLogits(
    const data::Dataset& data,
    const std::vector<const data::ImpressionList*>& lists, bool /*training*/,
    std::mt19937_64& /*rng*/) const {
  const int L = static_cast<int>(lists[0]->items.size());
  Variable h = net_->input_proj.Forward(
      Variable::Constant(BatchFeatureMatrix(data, lists)));
  Variable glob =
      MaskedAttention(h, net_->wq_glob, net_->wk_glob, net_->wv_glob,
                      AttentionMask(L, /*causal=*/true, /*band=*/-1), L);
  Variable loc =
      MaskedAttention(h, net_->wq_loc, net_->wk_loc, net_->wv_loc,
                      AttentionMask(L, /*causal=*/false, local_window_), L);
  // Gated fusion g*glob + (1-g)*loc with a learned per-dimension gate.
  Variable g = nn::Sigmoid(net_->gate);
  Variable inv_g = nn::AddScalar(nn::Scale(g, -1.0f), 1.0f);
  Variable fused = nn::Add(nn::MulRowBroadcast(glob, g),
                           nn::MulRowBroadcast(loc, inv_g));
  return net_->scorer.Forward(nn::ConcatCols({h, fused}));
}

std::vector<Variable> SrgaReranker::Params() const {
  std::vector<Variable> out = net_->input_proj.Params();
  for (const nn::Linear* l :
       {&net_->wq_glob, &net_->wk_glob, &net_->wv_glob, &net_->wq_loc,
        &net_->wk_loc, &net_->wv_loc}) {
    for (const Variable& p : l->Params()) out.push_back(p);
  }
  out.push_back(net_->gate);
  for (const Variable& p : net_->scorer.Params()) out.push_back(p);
  return out;
}

// ---------------------------------------------------------------- DESA --

struct DesaReranker::Net {
  Net(int in_dim, int num_topics, int hidden, std::mt19937_64& rng)
      : input_proj(in_dim, hidden, rng),
        rel_attention(hidden, 2, rng),
        scorer({hidden + num_topics, hidden, 1}, rng,
               nn::Activation::kRelu) {}
  nn::Linear input_proj;
  nn::MultiHeadAttention rel_attention;
  nn::Mlp scorer;
};

NeuralRerankConfig DesaReranker::PairwiseConfig() {
  NeuralRerankConfig cfg;
  cfg.loss = RerankLoss::kPairwiseLogistic;
  return cfg;
}

DesaReranker::DesaReranker(NeuralRerankConfig config)
    : NeuralReranker(config) {}
DesaReranker::~DesaReranker() = default;

void DesaReranker::InitNet(const data::Dataset& data, std::mt19937_64& rng) {
  net_ = std::make_unique<Net>(ListFeatureDim(data), data.num_topics,
                               config_.hidden_dim, rng);
}

Variable DesaReranker::BuildBatchLogits(
    const data::Dataset& data,
    const std::vector<const data::ImpressionList*>& lists, bool /*training*/,
    std::mt19937_64& /*rng*/) const {
  const int B = static_cast<int>(lists.size());
  const int L = static_cast<int>(lists[0]->items.size());
  // Relevance branch: projected multi-head self-attention over items.
  Variable h = net_->input_proj.Forward(
      Variable::Constant(BatchFeatureMatrix(data, lists)));
  Variable rel = nn::Add(h, net_->rel_attention.Forward(h, /*segment=*/L));

  // Diversity branch: parameter-free self-attention over coverage rows —
  // each item's row becomes a mixture of similar items' coverages, so
  // redundant items light up and novel ones stay distinct. Per-list
  // blocks: redundancy is relative to the list an item sits in.
  nn::Matrix cov(B * L, data.num_topics);
  for (int b = 0; b < B; ++b) {
    for (int i = 0; i < L; ++i) {
      const auto& tau = data.item(lists[b]->items[i]).topic_coverage;
      for (int j = 0; j < data.num_topics; ++j) {
        cov.at(b * L + i, j) = tau[j];
      }
    }
  }
  Variable div =
      nn::UnprojectedSelfAttention(Variable::Constant(cov), /*segment=*/L);

  return net_->scorer.Forward(nn::ConcatCols({rel, div}));
}

std::vector<Variable> DesaReranker::Params() const {
  std::vector<Variable> out = net_->input_proj.Params();
  for (const Variable& p : net_->rel_attention.Params()) out.push_back(p);
  for (const Variable& p : net_->scorer.Params()) out.push_back(p);
  return out;
}

}  // namespace rapid::rerank
