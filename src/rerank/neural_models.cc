#include "rerank/neural_models.h"

#include <cmath>

namespace rapid::rerank {

namespace {

using nn::Variable;

// Splits the (L x F) feature matrix into L single-row constants for
// sequential (RNN) processing.
std::vector<Variable> RowSequence(const nn::Matrix& feats) {
  std::vector<Variable> rows;
  rows.reserve(feats.rows());
  for (int i = 0; i < feats.rows(); ++i) {
    nn::Matrix r(1, feats.cols());
    for (int c = 0; c < feats.cols(); ++c) r.at(0, c) = feats.at(i, c);
    rows.push_back(Variable::Constant(std::move(r)));
  }
  return rows;
}

// (L x L) additive attention mask: 0 where attention is allowed,
// -1e9 where blocked. `causal` blocks j > i; `band >= 0` additionally
// blocks |i - j| > band.
nn::Matrix AttentionMask(int L, bool causal, int band) {
  nn::Matrix mask(L, L);
  for (int i = 0; i < L; ++i) {
    for (int j = 0; j < L; ++j) {
      const bool blocked =
          (causal && j > i) || (band >= 0 && std::abs(i - j) > band);
      mask.at(i, j) = blocked ? -1e9f : 0.0f;
    }
  }
  return mask;
}

// Single-head projected attention with an additive mask.
Variable MaskedAttention(const Variable& x, const nn::Linear& wq,
                         const nn::Linear& wk, const nn::Linear& wv,
                         const nn::Matrix& mask) {
  Variable q = wq.Forward(x);
  Variable k = wk.Forward(x);
  Variable v = wv.Forward(x);
  const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(q.cols()));
  Variable scores = nn::Scale(nn::MatMul(q, nn::Transpose(k)), inv_sqrt_d);
  scores = nn::Add(scores, Variable::Constant(mask));
  return nn::MatMul(nn::SoftmaxRows(scores), v);
}

}  // namespace

// ---------------------------------------------------------------- DLCM --

struct DlcmReranker::Net {
  Net(int in_dim, int hidden, std::mt19937_64& rng)
      : gru(in_dim, hidden, rng),
        scorer({2 * hidden, hidden, 1}, rng, nn::Activation::kRelu) {}
  nn::GruCell gru;
  nn::Mlp scorer;
};

DlcmReranker::DlcmReranker(NeuralRerankConfig config)
    : NeuralReranker(config) {}
DlcmReranker::~DlcmReranker() = default;

void DlcmReranker::InitNet(const data::Dataset& data, std::mt19937_64& rng) {
  net_ = std::make_unique<Net>(ListFeatureDim(data), config_.hidden_dim, rng);
}

Variable DlcmReranker::BuildLogits(const data::Dataset& data,
                                   const data::ImpressionList& list,
                                   bool /*training*/,
                                   std::mt19937_64& /*rng*/) const {
  const std::vector<Variable> rows =
      RowSequence(ListFeatureMatrix(data, list));
  Variable h = Variable::Constant(nn::Matrix(1, net_->gru.hidden_dim()));
  std::vector<Variable> states;
  states.reserve(rows.size());
  for (const Variable& x : rows) {
    h = net_->gru.Forward(x, h);
    states.push_back(h);
  }
  // Score each item against the final (whole-list) context state.
  Variable state_mat = nn::ConcatRows(states);  // (L x h)
  std::vector<Variable> final_tiled(rows.size(), states.back());
  Variable context = nn::ConcatRows(final_tiled);  // (L x h)
  return net_->scorer.Forward(nn::ConcatCols({state_mat, context}));
}

std::vector<Variable> DlcmReranker::Params() const {
  std::vector<Variable> out = net_->gru.Params();
  for (const Variable& p : net_->scorer.Params()) out.push_back(p);
  return out;
}

// ----------------------------------------------------------------- PRM --

struct PrmReranker::Net {
  Net(int in_dim, int hidden, std::mt19937_64& rng)
      : input_proj(in_dim, hidden, rng),
        encoder(hidden, 2, 2 * hidden, rng),
        scorer({hidden, hidden, 1}, rng, nn::Activation::kRelu) {}
  nn::Linear input_proj;
  nn::TransformerEncoderLayer encoder;
  nn::Mlp scorer;
};

PrmReranker::PrmReranker(NeuralRerankConfig config) : NeuralReranker(config) {}
PrmReranker::~PrmReranker() = default;

void PrmReranker::InitNet(const data::Dataset& data, std::mt19937_64& rng) {
  net_ = std::make_unique<Net>(ListFeatureDim(data), config_.hidden_dim, rng);
}

Variable PrmReranker::BuildLogits(const data::Dataset& data,
                                  const data::ImpressionList& list,
                                  bool /*training*/,
                                  std::mt19937_64& /*rng*/) const {
  const int L = static_cast<int>(list.items.size());
  Variable x = Variable::Constant(ListFeatureMatrix(data, list));
  Variable h = net_->input_proj.Forward(x);
  h = nn::Add(h, Variable::Constant(
                     nn::SinusoidalPositionalEncoding(L, h.cols())));
  h = net_->encoder.Forward(h);
  return net_->scorer.Forward(h);
}

std::vector<Variable> PrmReranker::Params() const {
  std::vector<Variable> out = net_->input_proj.Params();
  for (const Variable& p : net_->encoder.Params()) out.push_back(p);
  for (const Variable& p : net_->scorer.Params()) out.push_back(p);
  return out;
}

// ------------------------------------------------------------- SetRank --

struct SetRankReranker::Net {
  Net(int in_dim, int hidden, std::mt19937_64& rng)
      : input_proj(in_dim, hidden, rng),
        block1(hidden, 2, 2 * hidden, rng),
        block2(hidden, 2, 2 * hidden, rng),
        scorer({hidden, hidden, 1}, rng, nn::Activation::kRelu) {}
  nn::Linear input_proj;
  nn::TransformerEncoderLayer block1;
  nn::TransformerEncoderLayer block2;
  nn::Mlp scorer;
};

SetRankReranker::SetRankReranker(NeuralRerankConfig config)
    : NeuralReranker(config) {}
SetRankReranker::~SetRankReranker() = default;

void SetRankReranker::InitNet(const data::Dataset& data,
                              std::mt19937_64& rng) {
  net_ = std::make_unique<Net>(ListFeatureDim(data), config_.hidden_dim, rng);
}

Variable SetRankReranker::BuildLogits(const data::Dataset& data,
                                      const data::ImpressionList& list,
                                      bool /*training*/,
                                      std::mt19937_64& /*rng*/) const {
  // No positional encoding: permutation-invariant by construction.
  Variable h = net_->input_proj.Forward(
      Variable::Constant(ListFeatureMatrix(data, list)));
  h = net_->block1.Forward(h);
  h = net_->block2.Forward(h);
  return net_->scorer.Forward(h);
}

std::vector<Variable> SetRankReranker::Params() const {
  std::vector<Variable> out = net_->input_proj.Params();
  for (const Variable& p : net_->block1.Params()) out.push_back(p);
  for (const Variable& p : net_->block2.Params()) out.push_back(p);
  for (const Variable& p : net_->scorer.Params()) out.push_back(p);
  return out;
}

// ---------------------------------------------------------------- SRGA --

struct SrgaReranker::Net {
  Net(int in_dim, int hidden, std::mt19937_64& rng)
      : input_proj(in_dim, hidden, rng),
        wq_glob(hidden, hidden, rng),
        wk_glob(hidden, hidden, rng),
        wv_glob(hidden, hidden, rng),
        wq_loc(hidden, hidden, rng),
        wk_loc(hidden, hidden, rng),
        wv_loc(hidden, hidden, rng),
        gate(Variable::Parameter(nn::Matrix(1, hidden))),
        scorer({2 * hidden, hidden, 1}, rng, nn::Activation::kRelu) {}
  nn::Linear input_proj;
  nn::Linear wq_glob, wk_glob, wv_glob;  // unidirectional (causal) head
  nn::Linear wq_loc, wk_loc, wv_loc;     // local-window head
  Variable gate;                          // learned fusion gate (1 x h)
  nn::Mlp scorer;
};

SrgaReranker::SrgaReranker(NeuralRerankConfig config, int local_window)
    : NeuralReranker(config), local_window_(local_window) {}
SrgaReranker::~SrgaReranker() = default;

void SrgaReranker::InitNet(const data::Dataset& data, std::mt19937_64& rng) {
  net_ = std::make_unique<Net>(ListFeatureDim(data), config_.hidden_dim, rng);
}

Variable SrgaReranker::BuildLogits(const data::Dataset& data,
                                   const data::ImpressionList& list,
                                   bool /*training*/,
                                   std::mt19937_64& /*rng*/) const {
  const int L = static_cast<int>(list.items.size());
  Variable h = net_->input_proj.Forward(
      Variable::Constant(ListFeatureMatrix(data, list)));
  Variable glob =
      MaskedAttention(h, net_->wq_glob, net_->wk_glob, net_->wv_glob,
                      AttentionMask(L, /*causal=*/true, /*band=*/-1));
  Variable loc =
      MaskedAttention(h, net_->wq_loc, net_->wk_loc, net_->wv_loc,
                      AttentionMask(L, /*causal=*/false, local_window_));
  // Gated fusion g*glob + (1-g)*loc with a learned per-dimension gate.
  Variable g = nn::Sigmoid(net_->gate);
  Variable inv_g = nn::AddScalar(nn::Scale(g, -1.0f), 1.0f);
  Variable fused = nn::Add(nn::MulRowBroadcast(glob, g),
                           nn::MulRowBroadcast(loc, inv_g));
  return net_->scorer.Forward(nn::ConcatCols({h, fused}));
}

std::vector<Variable> SrgaReranker::Params() const {
  std::vector<Variable> out = net_->input_proj.Params();
  for (const nn::Linear* l :
       {&net_->wq_glob, &net_->wk_glob, &net_->wv_glob, &net_->wq_loc,
        &net_->wk_loc, &net_->wv_loc}) {
    for (const Variable& p : l->Params()) out.push_back(p);
  }
  out.push_back(net_->gate);
  for (const Variable& p : net_->scorer.Params()) out.push_back(p);
  return out;
}

// ---------------------------------------------------------------- DESA --

struct DesaReranker::Net {
  Net(int in_dim, int num_topics, int hidden, std::mt19937_64& rng)
      : input_proj(in_dim, hidden, rng),
        rel_attention(hidden, 2, rng),
        scorer({hidden + num_topics, hidden, 1}, rng,
               nn::Activation::kRelu) {}
  nn::Linear input_proj;
  nn::MultiHeadAttention rel_attention;
  nn::Mlp scorer;
};

NeuralRerankConfig DesaReranker::PairwiseConfig() {
  NeuralRerankConfig cfg;
  cfg.loss = RerankLoss::kPairwiseLogistic;
  return cfg;
}

DesaReranker::DesaReranker(NeuralRerankConfig config)
    : NeuralReranker(config) {}
DesaReranker::~DesaReranker() = default;

void DesaReranker::InitNet(const data::Dataset& data, std::mt19937_64& rng) {
  net_ = std::make_unique<Net>(ListFeatureDim(data), data.num_topics,
                               config_.hidden_dim, rng);
}

Variable DesaReranker::BuildLogits(const data::Dataset& data,
                                   const data::ImpressionList& list,
                                   bool /*training*/,
                                   std::mt19937_64& /*rng*/) const {
  const int L = static_cast<int>(list.items.size());
  // Relevance branch: projected multi-head self-attention over items.
  Variable h = net_->input_proj.Forward(
      Variable::Constant(ListFeatureMatrix(data, list)));
  Variable rel = nn::Add(h, net_->rel_attention.Forward(h));

  // Diversity branch: parameter-free self-attention over coverage rows —
  // each item's row becomes a mixture of similar items' coverages, so
  // redundant items light up and novel ones stay distinct.
  nn::Matrix cov(L, data.num_topics);
  for (int i = 0; i < L; ++i) {
    const auto& tau = data.item(list.items[i]).topic_coverage;
    for (int j = 0; j < data.num_topics; ++j) cov.at(i, j) = tau[j];
  }
  Variable div = nn::UnprojectedSelfAttention(Variable::Constant(cov));

  return net_->scorer.Forward(nn::ConcatCols({rel, div}));
}

std::vector<Variable> DesaReranker::Params() const {
  std::vector<Variable> out = net_->input_proj.Params();
  for (const Variable& p : net_->rel_attention.Params()) out.push_back(p);
  for (const Variable& p : net_->scorer.Params()) out.push_back(p);
  return out;
}

}  // namespace rapid::rerank
