#include "rerank/seq2slate.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace rapid::rerank {

namespace {

using nn::Variable;

}  // namespace

struct Seq2SlateReranker::Net {
  Net(int in_dim, int hidden, std::mt19937_64& rng)
      : input_proj(in_dim, hidden, rng, nn::Activation::kTanh),
        encoder(hidden, hidden, rng),
        decoder_cell(hidden, hidden, rng),
        att_enc(hidden, hidden, rng),
        att_dec(hidden, hidden, rng),
        att_v(hidden, 1, rng) {}
  nn::Linear input_proj;
  nn::Lstm encoder;
  nn::LstmCell decoder_cell;
  // Additive (Bahdanau) pointer attention: v^T tanh(W1 e_i + W2 d).
  nn::Linear att_enc, att_dec, att_v;
};

Seq2SlateReranker::Seq2SlateReranker(NeuralRerankConfig config,
                                     int decode_steps)
    : NeuralReranker(config), decode_steps_(decode_steps) {}
Seq2SlateReranker::~Seq2SlateReranker() = default;

void Seq2SlateReranker::InitNet(const data::Dataset& data,
                                std::mt19937_64& rng) {
  net_ = std::make_unique<Net>(ListFeatureDim(data), config_.hidden_dim,
                               rng);
}

Variable Seq2SlateReranker::Encode(const data::Dataset& data,
                                   const data::ImpressionList& list) const {
  const nn::Matrix feats = ListFeatureMatrix(data, list);
  Variable projected = net_->input_proj.Forward(Variable::Constant(feats));
  // Run the encoder LSTM over the projected rows.
  std::vector<Variable> steps;
  steps.reserve(projected.rows());
  for (int i = 0; i < projected.rows(); ++i) {
    steps.push_back(nn::SliceRows(projected, i, 1));
  }
  return nn::ConcatRows(net_->encoder.Forward(steps));  // (L x h)
}

Variable Seq2SlateReranker::PointerLogits(
    const Variable& encoder_states, const Variable& decoder_state,
    const std::vector<bool>& selected) const {
  const int L = encoder_states.rows();
  // (L x h) + broadcast (1 x h) -> tanh -> (L x 1) scores.
  Variable keys = net_->att_enc.Forward(encoder_states);
  Variable query = net_->att_dec.Forward(decoder_state);  // (1 x h)
  Variable scores =
      net_->att_v.Forward(nn::Tanh(nn::AddRowBroadcast(keys, query)));
  nn::Matrix mask(L, 1);
  for (int i = 0; i < L; ++i) mask.at(i, 0) = selected[i] ? -1e9f : 0.0f;
  return nn::Add(scores, Variable::Constant(std::move(mask)));  // (L x 1)
}

nn::Variable Seq2SlateReranker::ListLoss(const data::Dataset& data,
                                         const data::ImpressionList& list,
                                         std::mt19937_64& /*rng*/) const {
  assert(list.clicks.size() == list.items.size());
  const int L = static_cast<int>(list.items.size());
  Variable enc = Encode(data, list);

  // Target ordering: clicked items first (initial order within groups).
  std::vector<int> target;
  for (int i = 0; i < L; ++i) {
    if (list.clicks[i]) target.push_back(i);
  }
  for (int i = 0; i < L; ++i) {
    if (!list.clicks[i]) target.push_back(i);
  }

  const int steps = std::min(decode_steps_, L);
  std::vector<bool> selected(L, false);
  Variable h = Variable::Constant(nn::Matrix(1, config_.hidden_dim));
  Variable c = Variable::Constant(nn::Matrix(1, config_.hidden_dim));
  Variable dec_in = Variable::Constant(nn::Matrix(1, config_.hidden_dim));
  std::vector<Variable> step_losses;
  step_losses.reserve(steps);
  for (int t = 0; t < steps; ++t) {
    auto [h2, c2] = net_->decoder_cell.Forward(dec_in, h, c);
    h = h2;
    c = c2;
    Variable logits = PointerLogits(enc, h, selected);       // (L x 1)
    Variable probs = nn::SoftmaxRows(nn::Transpose(logits));  // (1 x L)
    const int choice = target[t];
    Variable p = nn::SliceCols(probs, choice, 1);
    step_losses.push_back(
        nn::Scale(nn::Log(nn::AddScalar(p, 1e-9f)), -1.0f));
    // Teacher forcing: feed the target item's encoder state next.
    selected[choice] = true;
    dec_in = nn::SliceRows(enc, choice, 1);
  }
  return nn::MeanAll(nn::ConcatRows(step_losses));
}

nn::Variable Seq2SlateReranker::GreedyLogits(
    const data::Dataset& data, const data::ImpressionList& list) const {
  // Greedy decode; logits are the step index at which each item was
  // picked, negated so earlier picks score higher (permutation-compatible
  // with the score-and-sort base-class plumbing).
  const std::vector<int> order = Rerank(data, list);
  nn::Matrix out(static_cast<int>(list.items.size()), 1);
  for (size_t rank = 0; rank < order.size(); ++rank) {
    const auto it =
        std::find(list.items.begin(), list.items.end(), order[rank]);
    const int pos = static_cast<int>(it - list.items.begin());
    out.at(pos, 0) = -static_cast<float>(rank);
  }
  return Variable::Constant(std::move(out));
}

nn::Variable Seq2SlateReranker::BuildBatchLogits(
    const data::Dataset& data,
    const std::vector<const data::ImpressionList*>& lists, bool /*training*/,
    std::mt19937_64& /*rng*/) const {
  // The pointer decode is sequential per list, so the batch is a loop;
  // stacking keeps each list's logits bit-identical to its solo decode.
  if (lists.size() == 1) return GreedyLogits(data, *lists[0]);
  std::vector<Variable> blocks;
  blocks.reserve(lists.size());
  for (const data::ImpressionList* list : lists) {
    blocks.push_back(GreedyLogits(data, *list));
  }
  return nn::ConcatRows(blocks);
}

std::vector<int> Seq2SlateReranker::Rerank(
    const data::Dataset& data, const data::ImpressionList& list) const {
  assert(net_ != nullptr && "Fit must run before Rerank");
  const int L = static_cast<int>(list.items.size());
  Variable enc = Encode(data, list);
  std::vector<bool> selected(L, false);
  Variable h = Variable::Constant(nn::Matrix(1, config_.hidden_dim));
  Variable c = Variable::Constant(nn::Matrix(1, config_.hidden_dim));
  Variable dec_in = Variable::Constant(nn::Matrix(1, config_.hidden_dim));
  std::vector<int> out;
  out.reserve(L);
  for (int t = 0; t < L; ++t) {
    auto [h2, c2] = net_->decoder_cell.Forward(dec_in, h, c);
    h = h2;
    c = c2;
    Variable logits = PointerLogits(enc, h, selected);
    int best = -1;
    float best_score = -1e30f;
    for (int i = 0; i < L; ++i) {
      if (!selected[i] && logits.value().at(i, 0) > best_score) {
        best_score = logits.value().at(i, 0);
        best = i;
      }
    }
    selected[best] = true;
    out.push_back(list.items[best]);
    dec_in = nn::SliceRows(enc, best, 1);
  }
  return out;
}

std::vector<nn::Variable> Seq2SlateReranker::Params() const {
  std::vector<Variable> out = net_->input_proj.Params();
  for (const Variable& p : net_->encoder.Params()) out.push_back(p);
  for (const Variable& p : net_->decoder_cell.Params()) out.push_back(p);
  for (const nn::Linear* l : {&net_->att_enc, &net_->att_dec, &net_->att_v}) {
    for (const Variable& p : l->Params()) out.push_back(p);
  }
  return out;
}

}  // namespace rapid::rerank
