#ifndef RAPID_RERANK_MMR_H_
#define RAPID_RERANK_MMR_H_

#include <string>
#include <vector>

#include "rerank/reranker.h"

namespace rapid::rerank {

/// Maximum Marginal Relevance (Carbonell & Goldstein, SIGIR 1998): greedily
/// appends the item maximizing
/// `trade * rel(v) - (1 - trade) * max_{s in selected} sim(v, s)`
/// with `sim` the topic-coverage cosine and `rel` the normalized initial
/// score. `trade` is a fixed global constant.
class MmrReranker : public Reranker {
 public:
  explicit MmrReranker(float trade = 0.7f) : trade_(trade) {}

  std::string name() const override { return "MMR"; }
  std::vector<int> Rerank(const data::Dataset& data,
                          const data::ImpressionList& list) const override;

 protected:
  /// Greedy MMR with an explicit tradeoff (shared with adpMMR).
  static std::vector<int> GreedyMmr(const data::Dataset& data,
                                    const data::ImpressionList& list,
                                    float trade);

 private:
  float trade_;
};

/// adpMMR (Di Noia et al., RecSys 2014): MMR whose tradeoff is personalized
/// by a rule — the user's propensity toward diversity is the normalized
/// entropy of their behavior-history topic distribution. High-entropy
/// (diverse) users get a lower relevance weight, i.e. more diversification.
class AdpMmrReranker : public MmrReranker {
 public:
  std::string name() const override { return "adpMMR"; }
  std::vector<int> Rerank(const data::Dataset& data,
                          const data::ImpressionList& list) const override;
};

}  // namespace rapid::rerank

#endif  // RAPID_RERANK_MMR_H_
