#include "rerank/reranker.h"

#include <algorithm>
#include <cmath>

namespace rapid::rerank {

void Reranker::Fit(const data::Dataset& /*data*/,
                   const std::vector<data::ImpressionList>& /*train*/,
                   uint64_t /*seed*/) {}

void Reranker::RerankBatchInto(
    const data::Dataset& data,
    const std::vector<const data::ImpressionList*>& lists,
    std::vector<std::vector<int>>* out) const {
  out->resize(lists.size());
  for (size_t i = 0; i < lists.size(); ++i) {
    // Assign rather than push_back so a warm caller's inner vectors keep
    // their capacity across calls.
    (*out)[i] = Rerank(data, *lists[i]);
  }
}

std::vector<std::vector<int>> Reranker::RerankBatch(
    const data::Dataset& data,
    const std::vector<const data::ImpressionList*>& lists) const {
  std::vector<std::vector<int>> out;
  RerankBatchInto(data, lists, &out);
  return out;
}

std::vector<int> InitReranker::Rerank(
    const data::Dataset& /*data*/, const data::ImpressionList& list) const {
  return list.items;
}

std::vector<float> NormalizedScores(const data::ImpressionList& list) {
  std::vector<float> out(list.scores);
  if (out.empty()) return out;
  const auto [mn_it, mx_it] = std::minmax_element(out.begin(), out.end());
  const float mn = *mn_it, mx = *mx_it;
  if (mx - mn < 1e-9f) {
    std::fill(out.begin(), out.end(), 0.5f);
    return out;
  }
  for (float& s : out) s = (s - mn) / (mx - mn);
  return out;
}

float CoverageCosine(const data::Item& a, const data::Item& b) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t j = 0; j < a.topic_coverage.size(); ++j) {
    dot += a.topic_coverage[j] * b.topic_coverage[j];
    na += a.topic_coverage[j] * a.topic_coverage[j];
    nb += b.topic_coverage[j] * b.topic_coverage[j];
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0f;
  return static_cast<float>(dot / std::sqrt(na * nb));
}

float MarginalCoverageGain(const data::Item& item,
                           const std::vector<float>& residual) {
  const size_t m = residual.size();
  if (m == 0) return 0.0f;
  double gain = 0.0;
  for (size_t j = 0; j < m && j < item.topic_coverage.size(); ++j) {
    gain += item.topic_coverage[j] * residual[j];
  }
  return static_cast<float>(gain / static_cast<double>(m));
}

void AbsorbCoverage(const data::Item& item, std::vector<float>* residual) {
  for (size_t j = 0; j < residual->size() && j < item.topic_coverage.size();
       ++j) {
    (*residual)[j] *= 1.0f - item.topic_coverage[j];
  }
}

}  // namespace rapid::rerank
