#ifndef RAPID_RERANK_PDGAN_H_
#define RAPID_RERANK_PDGAN_H_

#include <string>
#include <vector>

#include "rerank/reranker.h"

namespace rapid::rerank {

/// PD-GAN (Wu et al., IJCAI 2019): personalized diversity-promoting
/// recommendation with a *personalized DPP kernel* — the similarity
/// repulsion is scaled per user by their diversity propensity, and item
/// quality blends model relevance with a history-match signal.
///
/// Substitution note (see DESIGN.md): the original trains the kernel
/// parameters adversarially (generator vs discriminator over clicked
/// lists). Here the three kernel parameters (quality sharpness `a`,
/// base repulsion `b0`, propensity repulsion `b1`) are fit by a direct
/// surrogate: grid search maximizing the NDCG of logged clicks under the
/// greedy MAP ordering on the training lists. This preserves PD-GAN's
/// observed behavior (a personalized DPP that trades a little utility for
/// diversity) without the GAN training loop. Like the original, it scores
/// items independently of the listwise context.
class PdGanReranker : public Reranker {
 public:
  std::string name() const override { return "PD-GAN"; }

  void Fit(const data::Dataset& data,
           const std::vector<data::ImpressionList>& train,
           uint64_t seed) override;

  std::vector<int> Rerank(const data::Dataset& data,
                          const data::ImpressionList& list) const override;

  float quality_sharpness() const { return a_; }
  float base_repulsion() const { return b0_; }
  float propensity_repulsion() const { return b1_; }

 private:
  std::vector<std::vector<float>> BuildKernel(
      const data::Dataset& data, const data::ImpressionList& list, float a,
      float b0, float b1) const;

  float a_ = 1.0f;
  float b0_ = 0.3f;
  float b1_ = 0.5f;
};

}  // namespace rapid::rerank

#endif  // RAPID_RERANK_PDGAN_H_
