#ifndef RAPID_RERANK_SSD_H_
#define RAPID_RERANK_SSD_H_

#include <string>
#include <vector>

#include "rerank/reranker.h"

namespace rapid::rerank {

/// Sliding Spectrum Decomposition (Huang et al., KDD 2021): greedily
/// appends the item maximizing `rel(v) + gamma * ||residual(v)||`, where
/// the residual is the component of the item's embedding orthogonal to the
/// span of the last `window` selected items (maintained by modified
/// Gram-Schmidt). Maximizing the residual norm maximizes the volume spanned
/// by the trajectory tensor within the sliding window.
class SsdReranker : public Reranker {
 public:
  explicit SsdReranker(float gamma = 0.4f, int window = 5)
      : gamma_(gamma), window_(window) {}

  std::string name() const override { return "SSD"; }
  std::vector<int> Rerank(const data::Dataset& data,
                          const data::ImpressionList& list) const override;

 private:
  float gamma_;
  int window_;
};

}  // namespace rapid::rerank

#endif  // RAPID_RERANK_SSD_H_
