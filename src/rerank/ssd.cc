#include "rerank/ssd.h"

#include <algorithm>
#include <cmath>
#include <deque>

namespace rapid::rerank {

namespace {

using Vec = std::vector<double>;

double Dot(const Vec& a, const Vec& b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double Norm(const Vec& a) { return std::sqrt(Dot(a, a)); }

// Unit-normalized item embedding: topic coverage concatenated with l2
// normalized latent features (both signals matter for spanned volume).
Vec Embedding(const data::Item& item) {
  Vec v;
  v.reserve(item.topic_coverage.size() + item.features.size());
  for (float t : item.topic_coverage) v.push_back(t);
  double fn = 0.0;
  for (float f : item.features) fn += static_cast<double>(f) * f;
  fn = std::sqrt(std::max(fn, 1e-12));
  for (float f : item.features) v.push_back(f / fn);
  const double n = std::max(Norm(v), 1e-12);
  for (double& x : v) x /= n;
  return v;
}

// Residual of `v` after projecting out the (orthonormal) basis vectors.
Vec Residual(const Vec& v, const std::deque<Vec>& basis) {
  Vec r = v;
  for (const Vec& b : basis) {
    const double proj = Dot(r, b);
    for (size_t i = 0; i < r.size(); ++i) r[i] -= proj * b[i];
  }
  return r;
}

}  // namespace

std::vector<int> SsdReranker::Rerank(const data::Dataset& data,
                                     const data::ImpressionList& list) const {
  const int n = static_cast<int>(list.items.size());
  const std::vector<float> rel = NormalizedScores(list);
  std::vector<Vec> emb(n);
  for (int i = 0; i < n; ++i) emb[i] = Embedding(data.item(list.items[i]));

  std::vector<bool> used(n, false);
  std::deque<Vec> basis;  // Orthonormal basis of the sliding window.
  std::deque<Vec> raw_window;
  std::vector<int> out;
  out.reserve(n);

  for (int step = 0; step < n; ++step) {
    int best = -1;
    double best_score = -1e30;
    for (int i = 0; i < n; ++i) {
      if (used[i]) continue;
      const double vol = Norm(Residual(emb[i], basis));
      const double score = rel[i] + gamma_ * vol;
      if (score > best_score) {
        best_score = score;
        best = i;
      }
    }
    used[best] = true;
    out.push_back(list.items[best]);

    raw_window.push_back(emb[best]);
    if (static_cast<int>(raw_window.size()) > window_) {
      raw_window.pop_front();
    }
    // Rebuild the orthonormal basis of the window by modified Gram-Schmidt
    // (window is small, so this stays cheap and numerically clean).
    basis.clear();
    for (const Vec& w : raw_window) {
      Vec r = Residual(w, basis);
      const double nr = Norm(r);
      if (nr > 1e-8) {
        for (double& x : r) x /= nr;
        basis.push_back(std::move(r));
      }
    }
  }
  return out;
}

}  // namespace rapid::rerank
