#ifndef RAPID_RERANK_RERANKER_H_
#define RAPID_RERANK_RERANKER_H_

#include <string>
#include <vector>

#include "datagen/types.h"

namespace rapid::rerank {

/// Interface for re-ranking models (the paper's final MRS stage).
///
/// A re-ranker receives an initial `ImpressionList` (items, initial-ranker
/// scores, and — during training — simulated clicks) and outputs a
/// permutation of the list. Heuristic methods ignore `Fit`.
class Reranker {
 public:
  virtual ~Reranker() = default;

  /// Name used in experiment tables (matches the paper's method names).
  virtual std::string name() const = 0;

  /// Trains on logged initial lists with click labels. Default: no-op
  /// (heuristic methods).
  virtual void Fit(const data::Dataset& data,
                   const std::vector<data::ImpressionList>& train,
                   uint64_t seed);

  /// Returns the re-ranked item ids — a permutation of `list.items`.
  /// Evaluation metrics are computed over prefixes of this permutation.
  virtual std::vector<int> Rerank(const data::Dataset& data,
                                  const data::ImpressionList& list) const = 0;
};

/// The identity re-ranker: returns the initial ranking unchanged ("Init"
/// rows of the paper's tables).
class InitReranker : public Reranker {
 public:
  std::string name() const override { return "Init"; }
  std::vector<int> Rerank(const data::Dataset& data,
                          const data::ImpressionList& list) const override;
};

/// Min-max normalizes the initial scores of a list into [0,1] (constant
/// lists map to all-0.5). Heuristic re-rankers use this as their relevance
/// estimate.
std::vector<float> NormalizedScores(const data::ImpressionList& list);

/// Cosine similarity of two items' topic-coverage vectors (0 when either
/// is all-zero).
float CoverageCosine(const data::Item& a, const data::Item& b);

}  // namespace rapid::rerank

#endif  // RAPID_RERANK_RERANKER_H_
