#ifndef RAPID_RERANK_RERANKER_H_
#define RAPID_RERANK_RERANKER_H_

#include <string>
#include <vector>

#include "datagen/types.h"

namespace rapid::rerank {

/// Interface for re-ranking models (the paper's final MRS stage).
///
/// A re-ranker receives an initial `ImpressionList` (items, initial-ranker
/// scores, and — during training — simulated clicks) and outputs a
/// permutation of the list. Heuristic methods ignore `Fit`.
///
/// ## Thread-safety contract (relied on by `serve::ServingEngine`)
///
/// `Fit` (and `NeuralReranker::LoadModel`) require exclusive access. Once
/// fitting/loading has completed, every const member — `Rerank`,
/// `RerankBatch`, `name`, and subclass const methods such as
/// `NeuralReranker::ScoreList`/`ScoreBatch` — MUST be safe to call
/// concurrently from any number of threads with no external locking.
/// Concretely, implementations of the const inference path must not mutate
/// shared state: no memoization caches, no reused scratch buffers, no
/// member RNGs. Any working memory (autograd graphs, feature matrices,
/// RNGs for tie-breaking) is allocated per call or thread-local.
///
/// The in-tree implementations satisfy this by construction (audited for
/// the serving subsystem): the heuristic methods are pure functions of
/// their arguments, and the neural methods build a fresh autograd graph
/// per `BuildBatchLogits` call whose only shared nodes are the parameter
/// leaves, which inference only reads (`Backward` is never invoked on the
/// inference path, so even lazy gradient allocation cannot race).
class Reranker {
 public:
  virtual ~Reranker() = default;

  /// Name used in experiment tables (matches the paper's method names).
  virtual std::string name() const = 0;

  /// Trains on logged initial lists with click labels. Default: no-op
  /// (heuristic methods).
  virtual void Fit(const data::Dataset& data,
                   const std::vector<data::ImpressionList>& train,
                   uint64_t seed);

  /// Returns the re-ranked item ids — a permutation of `list.items`.
  /// Evaluation metrics are computed over prefixes of this permutation.
  virtual std::vector<int> Rerank(const data::Dataset& data,
                                  const data::ImpressionList& list) const = 0;

  /// Re-ranks several lists into `*out` — the batched workhorse behind
  /// `RerankBatch`. `*out` is resized to `lists.size()`; existing inner
  /// vectors (and their capacity) are reused, so a steady-state caller
  /// that passes the same scratch object back in allocates nothing here.
  /// Result `i` corresponds to `lists[i]` and is bit-identical to
  /// `Rerank(data, *lists[i])`. The default loops `Rerank` (heuristics,
  /// decorators); `NeuralReranker` overrides it with a true batched
  /// forward pass that groups same-length lists into single matrix
  /// computations and runs them out of the thread-local arena (see
  /// nn/arena.h). The pointers must be non-null and stay valid for the
  /// duration of the call. Same thread-safety contract as `Rerank`
  /// (`*out` itself is the caller's and must not be shared).
  virtual void RerankBatchInto(
      const data::Dataset& data,
      const std::vector<const data::ImpressionList*>& lists,
      std::vector<std::vector<int>>* out) const;

  /// Convenience wrapper over `RerankBatchInto` returning a fresh vector.
  std::vector<std::vector<int>> RerankBatch(
      const data::Dataset& data,
      const std::vector<const data::ImpressionList*>& lists) const;
};

/// The identity re-ranker: returns the initial ranking unchanged ("Init"
/// rows of the paper's tables).
class InitReranker : public Reranker {
 public:
  std::string name() const override { return "Init"; }
  std::vector<int> Rerank(const data::Dataset& data,
                          const data::ImpressionList& list) const override;
};

/// Min-max normalizes the initial scores of a list into [0,1] (constant
/// lists map to all-0.5). Heuristic re-rankers use this as their relevance
/// estimate.
std::vector<float> NormalizedScores(const data::ImpressionList& list);

/// Cosine similarity of two items' topic-coverage vectors (0 when either
/// is all-zero).
float CoverageCosine(const data::Item& a, const data::Item& b);

/// The RAPID coverage function (Eq. 4) factored into externalized state:
/// `residual[j]` is the uncovered probability mass of topic j given
/// everything already selected, i.e. `prod_v (1 - tau_v^j)` over the
/// selections so far. Keeping the residual outside any single list is what
/// lets a *page* share one coverage state across sibling lists — an item's
/// marginal gain shrinks when a sibling list already covered its topics.
///
/// Marginal coverage gain of adding `item` against `residual`, averaged
/// over topics: `(1/m) sum_j tau_v^j * residual[j]`, in [0, 1].
float MarginalCoverageGain(const data::Item& item,
                           const std::vector<float>& residual);

/// Folds `item` into `residual` in place: `residual[j] *= (1 - tau_v^j)`.
void AbsorbCoverage(const data::Item& item, std::vector<float>* residual);

}  // namespace rapid::rerank

#endif  // RAPID_RERANK_RERANKER_H_
