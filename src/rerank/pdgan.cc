#include "rerank/pdgan.h"

#include <algorithm>
#include <cmath>
#include <random>

#include "datagen/history.h"
#include "rerank/dpp.h"

namespace rapid::rerank {

namespace {

// Normalized entropy of the user's history topic distribution: PD-GAN's
// per-user diversity propensity signal.
float UserPropensity(const data::Dataset& data, int user_id) {
  const std::vector<float> dist =
      data::HistoryTopicDistribution(data, user_id);
  double h = 0.0;
  for (float p : dist) {
    if (p > 0.0f) h -= p * std::log(p);
  }
  const double max_h = std::log(static_cast<double>(data.num_topics));
  return max_h > 0.0 ? static_cast<float>(h / max_h) : 0.0f;
}

// History-topic match of an item: how well it fits what the user clicked.
float HistMatch(const data::Dataset& data, int user_id,
                const data::Item& item) {
  const std::vector<float> dist =
      data::HistoryTopicDistribution(data, user_id);
  float s = 0.0f;
  for (int j = 0; j < data.num_topics; ++j) {
    s += dist[j] * item.topic_coverage[j];
  }
  return s;
}

// NDCG of logged clicks under a candidate ordering (indices into the list).
double ClickNdcg(const data::ImpressionList& list,
                 const std::vector<int>& order) {
  double dcg = 0.0;
  int clicks = 0;
  for (size_t r = 0; r < order.size(); ++r) {
    if (list.clicks[order[r]]) {
      dcg += 1.0 / std::log2(r + 2.0);
      ++clicks;
    }
  }
  if (clicks == 0) return 0.0;
  double idcg = 0.0;
  for (int r = 0; r < clicks; ++r) idcg += 1.0 / std::log2(r + 2.0);
  return dcg / idcg;
}

}  // namespace

std::vector<std::vector<float>> PdGanReranker::BuildKernel(
    const data::Dataset& data, const data::ImpressionList& list, float a,
    float b0, float b1) const {
  const int n = static_cast<int>(list.items.size());
  const std::vector<float> rel = NormalizedScores(list);
  const float propensity = UserPropensity(data, list.user_id);
  const float repulsion = std::clamp(b0 + b1 * propensity, 0.0f, 1.0f);
  std::vector<float> q(n);
  for (int i = 0; i < n; ++i) {
    const float match =
        HistMatch(data, list.user_id, data.item(list.items[i]));
    q[i] = std::exp(a * (0.7f * rel[i] + 0.3f * match));
  }
  std::vector<std::vector<float>> kernel(n, std::vector<float>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) {
        kernel[i][j] = q[i] * q[i] * (1.0f + 1e-3f);
      } else {
        const float s = CoverageCosine(data.item(list.items[i]),
                                       data.item(list.items[j]));
        kernel[i][j] = q[i] * q[j] * repulsion * s;
      }
    }
  }
  return kernel;
}

void PdGanReranker::Fit(const data::Dataset& data,
                        const std::vector<data::ImpressionList>& train,
                        uint64_t seed) {
  // Surrogate fit: grid search the kernel parameters against logged-click
  // NDCG of the greedy MAP ordering on a training subsample.
  std::mt19937_64 rng(seed);
  std::vector<const data::ImpressionList*> sample;
  for (const auto& list : train) {
    if (!list.clicks.empty()) sample.push_back(&list);
  }
  std::shuffle(sample.begin(), sample.end(), rng);
  if (sample.size() > 300) sample.resize(300);
  if (sample.empty()) return;

  const std::vector<float> a_grid = {0.5f, 1.0f, 2.0f};
  const std::vector<float> b0_grid = {0.0f, 0.3f, 0.6f};
  const std::vector<float> b1_grid = {0.0f, 0.4f, 0.8f};
  double best = -1.0;
  for (float a : a_grid) {
    for (float b0 : b0_grid) {
      for (float b1 : b1_grid) {
        double total = 0.0;
        for (const auto* list : sample) {
          const auto kernel = BuildKernel(data, *list, a, b0, b1);
          const std::vector<int> order = DppReranker::GreedyMapInference(
              kernel, static_cast<int>(list->items.size()));
          total += ClickNdcg(*list, order);
        }
        if (total > best) {
          best = total;
          a_ = a;
          b0_ = b0;
          b1_ = b1;
        }
      }
    }
  }
}

std::vector<int> PdGanReranker::Rerank(
    const data::Dataset& data, const data::ImpressionList& list) const {
  const auto kernel = BuildKernel(data, list, a_, b0_, b1_);
  const std::vector<int> order = DppReranker::GreedyMapInference(
      kernel, static_cast<int>(list.items.size()));
  std::vector<int> out;
  out.reserve(order.size());
  for (int idx : order) out.push_back(list.items[idx]);
  return out;
}

}  // namespace rapid::rerank
