#include "rerank/neural_base.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "nn/arena.h"
#include "nn/serialize.h"
#include "nn/variable.h"

namespace rapid::rerank {

nn::Matrix ListFeatureMatrix(const data::Dataset& data,
                             const data::ImpressionList& list) {
  const int L = static_cast<int>(list.items.size());
  const int qu = data.user_feature_dim();
  const int qv = data.item_feature_dim();
  const int m = data.num_topics;
  nn::Matrix out(L, qu + qv + m + 1);
  const std::vector<float> norm_scores = NormalizedScores(list);
  const data::User& user = data.user(list.user_id);
  for (int i = 0; i < L; ++i) {
    const data::Item& item = data.item(list.items[i]);
    int c = 0;
    for (int k = 0; k < qu; ++k) out.at(i, c++) = user.features[k];
    for (int k = 0; k < qv; ++k) out.at(i, c++) = item.features[k];
    for (int j = 0; j < m; ++j) out.at(i, c++) = item.topic_coverage[j];
    out.at(i, c++) = norm_scores[i];
  }
  return out;
}

int ListFeatureDim(const data::Dataset& data) {
  return data.user_feature_dim() + data.item_feature_dim() +
         data.num_topics + 1;
}

nn::Matrix BatchFeatureMatrix(
    const data::Dataset& data,
    const std::vector<const data::ImpressionList*>& lists) {
  assert(!lists.empty());
  const int L = static_cast<int>(lists[0]->items.size());
  const int F = ListFeatureDim(data);
  nn::Matrix out(static_cast<int>(lists.size()) * L, F);
  for (size_t b = 0; b < lists.size(); ++b) {
    assert(static_cast<int>(lists[b]->items.size()) == L);
    const nn::Matrix m = ListFeatureMatrix(data, *lists[b]);
    float* dst = out.row(static_cast<int>(b) * L);
    for (int i = 0; i < m.size(); ++i) dst[i] = m.data()[i];
  }
  return out;
}

std::vector<nn::Variable> TimeMajorSteps(const nn::Matrix& feats, int batch,
                                         int length) {
  assert(feats.rows() == batch * length);
  std::vector<nn::Variable> steps;
  steps.reserve(length);
  for (int t = 0; t < length; ++t) {
    nn::Matrix x(batch, feats.cols());
    for (int b = 0; b < batch; ++b) {
      const float* src = feats.row(b * length + t);
      float* dst = x.row(b);
      for (int c = 0; c < feats.cols(); ++c) dst[c] = src[c];
    }
    steps.push_back(nn::Variable::Constant(std::move(x)));
  }
  return steps;
}

nn::Variable NeuralReranker::ListLoss(const data::Dataset& data,
                                      const data::ImpressionList& list,
                                      std::mt19937_64& rng) const {
  assert(list.clicks.size() == list.items.size());
  nn::Variable logits = BuildLogits(data, list, /*training=*/true, rng);
  const int L = static_cast<int>(list.items.size());

  if (config_.loss == RerankLoss::kPairwiseLogistic) {
    std::vector<int> pos, neg;
    for (int i = 0; i < L; ++i) {
      (list.clicks[i] ? pos : neg).push_back(i);
    }
    if (pos.empty() || neg.empty()) {
      // No informative pairs: fall through to the pointwise loss so the
      // batch still contributes gradient.
    } else {
      // mean over pairs of softplus(-(s_pos - s_neg)).
      std::vector<nn::Variable> pair_losses;
      pair_losses.reserve(pos.size() * neg.size());
      for (int i : pos) {
        nn::Variable si = nn::SliceRows(logits, i, 1);
        for (int j : neg) {
          nn::Variable sj = nn::SliceRows(logits, j, 1);
          pair_losses.push_back(
              nn::Softplus(nn::Scale(nn::Sub(si, sj), -1.0f)));
        }
      }
      return nn::MeanAll(nn::ConcatRows(pair_losses));
    }
  }

  nn::Matrix targets(L, 1);
  for (int i = 0; i < L; ++i) {
    targets.at(i, 0) = static_cast<float>(list.clicks[i]);
  }
  return nn::BceWithLogits(logits, targets, nn::Matrix::Constant(L, 1, 1.0f));
}

void NeuralReranker::Fit(const data::Dataset& data,
                         const std::vector<data::ImpressionList>& train,
                         uint64_t seed) {
  std::mt19937_64 rng(seed);
  InitNet(data, rng);
  TrainLoop(data, train, rng, config_.epochs);
}

void NeuralReranker::FineTune(const data::Dataset& data,
                              const std::vector<data::ImpressionList>& train,
                              uint64_t seed, int epochs) {
  if (train.empty() || epochs <= 0) return;
  std::mt19937_64 rng(seed);
  TrainLoop(data, train, rng, epochs);
}

void NeuralReranker::TrainLoop(const data::Dataset& data,
                               const std::vector<data::ImpressionList>& train,
                               std::mt19937_64& rng, int epochs) {
  nn::Adam opt(Params(), config_.learning_rate);

  std::vector<int> order(train.size());
  std::iota(order.begin(), order.end(), 0);

  for (int epoch = 0; epoch < epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng);
    double epoch_loss = 0.0;
    int batches = 0;
    for (size_t start = 0; start < order.size();
         start += config_.batch_size) {
      const size_t end = std::min(order.size(), start + config_.batch_size);
      opt.ZeroGrad();
      nn::Variable total;
      bool first = true;
      for (size_t i = start; i < end; ++i) {
        nn::Variable l = ListLoss(data, train[order[i]], rng);
        total = first ? l : nn::Add(total, l);
        first = false;
      }
      nn::Variable loss =
          nn::Scale(total, 1.0f / static_cast<float>(end - start));
      loss.Backward();
      nn::ClipGradNorm(opt.params(), config_.grad_clip);
      opt.Step();
      epoch_loss += loss.value().at(0, 0);
      ++batches;
    }
    final_loss_ = static_cast<float>(epoch_loss / std::max(batches, 1));
  }
}

bool NeuralReranker::SaveModel(const std::string& path) const {
  return nn::SaveParams(path, Params());
}

bool NeuralReranker::LoadModel(const data::Dataset& data,
                               const std::string& path) {
  std::mt19937_64 rng(0);  // Initialization values are overwritten.
  InitNet(data, rng);
  std::vector<nn::Variable> params = Params();
  return nn::LoadParams(path, &params);
}

bool NeuralReranker::SaveModel(std::ostream& out) const {
  return nn::SaveParams(out, Params());
}

bool NeuralReranker::LoadModel(const data::Dataset& data, std::istream& in) {
  std::mt19937_64 rng(0);  // Initialization values are overwritten.
  InitNet(data, rng);
  std::vector<nn::Variable> params = Params();
  return nn::LoadParams(in, &params);
}

nn::Variable NeuralReranker::BuildLogits(const data::Dataset& data,
                                         const data::ImpressionList& list,
                                         bool training,
                                         std::mt19937_64& rng) const {
  return BuildBatchLogits(data, {&list}, training, rng);
}

std::vector<float> NeuralReranker::ScoreList(
    const data::Dataset& data, const data::ImpressionList& list) const {
  return ScoreBatch(data, {&list}).front();
}

std::vector<std::vector<float>> NeuralReranker::ScoreBatch(
    const data::Dataset& data,
    const std::vector<const data::ImpressionList*>& lists) const {
  std::vector<std::vector<float>> out;
  ScoreBatchInto(data, lists, &out);
  return out;
}

void NeuralReranker::ScoreBatchInto(
    const data::Dataset& data,
    const std::vector<const data::ImpressionList*>& lists,
    std::vector<std::vector<float>>* out) const {
  // Pre-size every output vector before any arena scope opens: a scope
  // rewind must never reclaim a buffer the caller keeps (nn/arena.h rule 1).
  out->resize(lists.size());
  for (size_t i = 0; i < lists.size(); ++i) {
    (*out)[i].resize(lists[i]->items.size());
  }
  if (lists.empty()) return;

  std::mt19937_64 rng(0);  // Inference paths must not consume randomness.

  // Everything below is scratch; it comes from (and returns to) the
  // thread-local arena.
  nn::arena::ArenaScope scratch_scope;

  // Group positions by list length; the group order does not affect any
  // output (each list's scores are read back from its own logit block).
  std::vector<size_t> order(lists.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return lists[a]->items.size() < lists[b]->items.size();
  });

  size_t start = 0;
  while (start < order.size()) {
    const size_t L = lists[order[start]]->items.size();
    size_t end = start;
    while (end < order.size() && lists[order[end]]->items.size() == L) ++end;
    if (L == 0) {  // Empty lists score to empty vectors; no forward to run.
      start = end;
      continue;
    }
    // Per-group scope: feature blocks and the whole forward graph are
    // reclaimed before the next group runs, keeping the high-water mark at
    // max-over-groups rather than sum. No-grad mode keeps the graph free of
    // parent edges and backward closures (inference never calls Backward).
    nn::arena::ArenaScope group_scope;
    nn::NoGradScope no_grad;
    std::vector<const data::ImpressionList*> group;
    group.reserve(end - start);
    for (size_t g = start; g < end; ++g) group.push_back(lists[order[g]]);
    nn::Variable logits =
        BuildBatchLogits(data, group, /*training=*/false, rng);
    assert(static_cast<size_t>(logits.rows()) == group.size() * L);
    for (size_t g = start; g < end; ++g) {
      std::vector<float>& scores = (*out)[order[g]];
      const int base = static_cast<int>((g - start) * L);
      for (size_t i = 0; i < L; ++i) {
        scores[i] = logits.value().at(base + static_cast<int>(i), 0);
      }
    }
    start = end;
  }
}

namespace {

// Stable score-descending sort of a list's items (shared by the single and
// batched rerank paths so both produce identical permutations).
std::vector<int> SortByScores(const data::ImpressionList& list,
                              const std::vector<float>& scores) {
  std::vector<int> idx(list.items.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(), [&](int a, int b) {
    return scores[a] > scores[b];
  });
  std::vector<int> out;
  out.reserve(idx.size());
  for (int i : idx) out.push_back(list.items[i]);
  return out;
}

}  // namespace

std::vector<int> NeuralReranker::Rerank(
    const data::Dataset& data, const data::ImpressionList& list) const {
  return SortByScores(list, ScoreList(data, list));
}

void NeuralReranker::RerankBatchInto(
    const data::Dataset& data,
    const std::vector<const data::ImpressionList*>& lists,
    std::vector<std::vector<int>>* out) const {
  // Thread-local score scratch: (re)sized inside ScoreBatchInto before any
  // arena scope opens, so its buffers are heap-backed, warm after the first
  // call on a thread, and never handed across threads.
  static thread_local std::vector<std::vector<float>> scores;
  ScoreBatchInto(data, lists, &scores);
  // Pre-size the output permutations outside the arena scope (they outlive
  // it); the sort below then allocates at most stable_sort's temporary
  // buffer, which the arena absorbs.
  out->resize(lists.size());
  for (size_t i = 0; i < lists.size(); ++i) {
    (*out)[i].resize(lists[i]->items.size());
  }
  nn::arena::ArenaScope sort_scope;
  for (size_t i = 0; i < lists.size(); ++i) {
    const data::ImpressionList& list = *lists[i];
    const std::vector<float>& s = scores[i];
    std::vector<int>& perm = (*out)[i];
    // Same stable index sort as SortByScores, done in place so the single
    // and batched paths stay permutation-identical.
    std::iota(perm.begin(), perm.end(), 0);
    std::stable_sort(perm.begin(), perm.end(),
                     [&s](int a, int b) { return s[a] > s[b]; });
    for (int& v : perm) v = list.items[v];
  }
}

}  // namespace rapid::rerank
