#include "rerank/neural_base.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "nn/serialize.h"

namespace rapid::rerank {

nn::Matrix ListFeatureMatrix(const data::Dataset& data,
                             const data::ImpressionList& list) {
  const int L = static_cast<int>(list.items.size());
  const int qu = data.user_feature_dim();
  const int qv = data.item_feature_dim();
  const int m = data.num_topics;
  nn::Matrix out(L, qu + qv + m + 1);
  const std::vector<float> norm_scores = NormalizedScores(list);
  const data::User& user = data.user(list.user_id);
  for (int i = 0; i < L; ++i) {
    const data::Item& item = data.item(list.items[i]);
    int c = 0;
    for (int k = 0; k < qu; ++k) out.at(i, c++) = user.features[k];
    for (int k = 0; k < qv; ++k) out.at(i, c++) = item.features[k];
    for (int j = 0; j < m; ++j) out.at(i, c++) = item.topic_coverage[j];
    out.at(i, c++) = norm_scores[i];
  }
  return out;
}

int ListFeatureDim(const data::Dataset& data) {
  return data.user_feature_dim() + data.item_feature_dim() +
         data.num_topics + 1;
}

nn::Variable NeuralReranker::ListLoss(const data::Dataset& data,
                                      const data::ImpressionList& list,
                                      std::mt19937_64& rng) const {
  assert(list.clicks.size() == list.items.size());
  nn::Variable logits = BuildLogits(data, list, /*training=*/true, rng);
  const int L = static_cast<int>(list.items.size());

  if (config_.loss == RerankLoss::kPairwiseLogistic) {
    std::vector<int> pos, neg;
    for (int i = 0; i < L; ++i) {
      (list.clicks[i] ? pos : neg).push_back(i);
    }
    if (pos.empty() || neg.empty()) {
      // No informative pairs: fall through to the pointwise loss so the
      // batch still contributes gradient.
    } else {
      // mean over pairs of softplus(-(s_pos - s_neg)).
      std::vector<nn::Variable> pair_losses;
      pair_losses.reserve(pos.size() * neg.size());
      for (int i : pos) {
        nn::Variable si = nn::SliceRows(logits, i, 1);
        for (int j : neg) {
          nn::Variable sj = nn::SliceRows(logits, j, 1);
          pair_losses.push_back(
              nn::Softplus(nn::Scale(nn::Sub(si, sj), -1.0f)));
        }
      }
      return nn::MeanAll(nn::ConcatRows(pair_losses));
    }
  }

  nn::Matrix targets(L, 1);
  for (int i = 0; i < L; ++i) {
    targets.at(i, 0) = static_cast<float>(list.clicks[i]);
  }
  return nn::BceWithLogits(logits, targets, nn::Matrix::Constant(L, 1, 1.0f));
}

void NeuralReranker::Fit(const data::Dataset& data,
                         const std::vector<data::ImpressionList>& train,
                         uint64_t seed) {
  std::mt19937_64 rng(seed);
  InitNet(data, rng);
  nn::Adam opt(Params(), config_.learning_rate);

  std::vector<int> order(train.size());
  std::iota(order.begin(), order.end(), 0);

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng);
    double epoch_loss = 0.0;
    int batches = 0;
    for (size_t start = 0; start < order.size();
         start += config_.batch_size) {
      const size_t end = std::min(order.size(), start + config_.batch_size);
      opt.ZeroGrad();
      nn::Variable total;
      bool first = true;
      for (size_t i = start; i < end; ++i) {
        nn::Variable l = ListLoss(data, train[order[i]], rng);
        total = first ? l : nn::Add(total, l);
        first = false;
      }
      nn::Variable loss =
          nn::Scale(total, 1.0f / static_cast<float>(end - start));
      loss.Backward();
      nn::ClipGradNorm(opt.params(), config_.grad_clip);
      opt.Step();
      epoch_loss += loss.value().at(0, 0);
      ++batches;
    }
    final_loss_ = static_cast<float>(epoch_loss / std::max(batches, 1));
  }
}

bool NeuralReranker::SaveModel(const std::string& path) const {
  return nn::SaveParams(path, Params());
}

bool NeuralReranker::LoadModel(const data::Dataset& data,
                               const std::string& path) {
  std::mt19937_64 rng(0);  // Initialization values are overwritten.
  InitNet(data, rng);
  std::vector<nn::Variable> params = Params();
  return nn::LoadParams(path, &params);
}

bool NeuralReranker::SaveModel(std::ostream& out) const {
  return nn::SaveParams(out, Params());
}

bool NeuralReranker::LoadModel(const data::Dataset& data, std::istream& in) {
  std::mt19937_64 rng(0);  // Initialization values are overwritten.
  InitNet(data, rng);
  std::vector<nn::Variable> params = Params();
  return nn::LoadParams(in, &params);
}

std::vector<float> NeuralReranker::ScoreList(
    const data::Dataset& data, const data::ImpressionList& list) const {
  std::mt19937_64 rng(0);  // Inference paths must not consume randomness.
  nn::Variable logits = BuildLogits(data, list, /*training=*/false, rng);
  std::vector<float> out(list.items.size());
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = logits.value().at(static_cast<int>(i), 0);
  }
  return out;
}

std::vector<int> NeuralReranker::Rerank(
    const data::Dataset& data, const data::ImpressionList& list) const {
  const std::vector<float> scores = ScoreList(data, list);
  std::vector<int> idx(list.items.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(), [&](int a, int b) {
    return scores[a] > scores[b];
  });
  std::vector<int> out;
  out.reserve(idx.size());
  for (int i : idx) out.push_back(list.items[i]);
  return out;
}

}  // namespace rapid::rerank
