#ifndef RAPID_RERANK_NEURAL_BASE_H_
#define RAPID_RERANK_NEURAL_BASE_H_

#include <iosfwd>
#include <random>
#include <string>
#include <vector>

#include "nn/layers.h"
#include "nn/optimizer.h"
#include "rerank/reranker.h"

namespace rapid::rerank {

/// Per-list training objective.
enum class RerankLoss {
  /// The paper's Eq. 11: pointwise binary cross-entropy on clicks.
  kPointwiseBce,
  /// BPR-style pairwise logistic loss over (clicked, unclicked) pairs
  /// within a list (used by DESA, whose original formulation is pairwise).
  kPairwiseLogistic,
};

/// Shared hyper-parameters of all neural re-rankers.
struct NeuralRerankConfig {
  int hidden_dim = 16;
  int epochs = 10;
  /// Lists per gradient step.
  int batch_size = 16;
  /// Grid-searched over {1e-3, 3e-3, 6e-3, 1e-2} on the Taobao simulator;
  /// 6e-3 is the best shared setting across all neural re-rankers.
  float learning_rate = 6e-3f;
  float grad_clip = 5.0f;
  RerankLoss loss = RerankLoss::kPointwiseBce;
};

/// Base class for neural re-rankers: owns the training loop (Adam over
/// mini-batches of lists, pointwise BCE on click labels, gradient
/// clipping) and the score-then-sort inference. Subclasses implement the
/// network: `InitNet` builds parameters, `BuildLogits` maps one list to a
/// `(L x 1)` logit column.
///
/// Thread safety: `Fit`/`LoadModel` are exclusive; after either completes,
/// the const inference surface (`Rerank`/`ScoreList`/`SaveModel`) is safe
/// to call concurrently from many threads (see the contract on
/// `Reranker::Rerank`). Subclass `BuildLogits` implementations must uphold
/// this: with `training == false` they may only *read* the network
/// parameters and must keep all scratch state (graphs, buffers) local to
/// the call.
class NeuralReranker : public Reranker {
 public:
  explicit NeuralReranker(NeuralRerankConfig config) : config_(config) {}

  void Fit(const data::Dataset& data,
           const std::vector<data::ImpressionList>& train,
           uint64_t seed) override;

  std::vector<int> Rerank(const data::Dataset& data,
                          const data::ImpressionList& list) const override;

  /// Per-item re-ranking scores in list order (inference mode).
  virtual std::vector<float> ScoreList(const data::Dataset& data,
                                       const data::ImpressionList& list) const;

  /// Mean training loss of the last epoch.
  float final_loss() const { return final_loss_; }

  /// The shared training hyper-parameters. `serve::Snapshot` persists these
  /// in its header so a serving process can reconstruct the model family
  /// without the training code's configuration.
  const NeuralRerankConfig& train_config() const { return config_; }

  /// Persists the trained weights to `path` (binary). Requires a prior
  /// Fit (or LoadModel). Returns false on I/O failure.
  bool SaveModel(const std::string& path) const;

  /// Rebuilds the network for `data`'s dimensions and restores weights
  /// saved by `SaveModel`. The configuration must match the one used at
  /// save time (shape mismatches fail). Returns false on failure.
  bool LoadModel(const data::Dataset& data, const std::string& path);

  /// Stream variants, used by `serve::Snapshot` to embed the weight blob
  /// after its own configuration header.
  bool SaveModel(std::ostream& out) const;
  bool LoadModel(const data::Dataset& data, std::istream& in);

 protected:
  /// Builds the network parameters for `data`'s dimensions.
  virtual void InitNet(const data::Dataset& data, std::mt19937_64& rng) = 0;

  /// Forward pass for one list. `training` enables stochastic paths
  /// (exploration noise, dropout) using `rng`.
  virtual nn::Variable BuildLogits(const data::Dataset& data,
                                   const data::ImpressionList& list,
                                   bool training,
                                   std::mt19937_64& rng) const = 0;

  /// All trainable parameters.
  virtual std::vector<nn::Variable> Params() const = 0;

  /// Per-list training loss; default is pointwise BCE of `BuildLogits`
  /// against the list's clicks. Subclasses may override (e.g. pairwise).
  virtual nn::Variable ListLoss(const data::Dataset& data,
                                const data::ImpressionList& list,
                                std::mt19937_64& rng) const;

  NeuralRerankConfig config_;
  float final_loss_ = 0.0f;
};

/// Builds the `(L x F)` per-item input matrix of a list:
/// `[x_u, x_v, tau_v, normalized initial score]`, `F = q_u + q_v + m + 1`.
nn::Matrix ListFeatureMatrix(const data::Dataset& data,
                             const data::ImpressionList& list);

/// The input feature dimension of `ListFeatureMatrix` for `data`.
int ListFeatureDim(const data::Dataset& data);

}  // namespace rapid::rerank

#endif  // RAPID_RERANK_NEURAL_BASE_H_
