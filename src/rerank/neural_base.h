#ifndef RAPID_RERANK_NEURAL_BASE_H_
#define RAPID_RERANK_NEURAL_BASE_H_

#include <iosfwd>
#include <random>
#include <string>
#include <vector>

#include "nn/layers.h"
#include "nn/optimizer.h"
#include "rerank/reranker.h"

namespace rapid::rerank {

/// Per-list training objective.
enum class RerankLoss {
  /// The paper's Eq. 11: pointwise binary cross-entropy on clicks.
  kPointwiseBce,
  /// BPR-style pairwise logistic loss over (clicked, unclicked) pairs
  /// within a list (used by DESA, whose original formulation is pairwise).
  kPairwiseLogistic,
};

/// Shared hyper-parameters of all neural re-rankers.
struct NeuralRerankConfig {
  int hidden_dim = 16;
  int epochs = 10;
  /// Lists per gradient step.
  int batch_size = 16;
  /// Grid-searched over {1e-3, 3e-3, 6e-3, 1e-2} on the Taobao simulator;
  /// 6e-3 is the best shared setting across all neural re-rankers.
  float learning_rate = 6e-3f;
  float grad_clip = 5.0f;
  RerankLoss loss = RerankLoss::kPointwiseBce;
};

/// Base class for neural re-rankers: owns the training loop (Adam over
/// mini-batches of lists, pointwise BCE on click labels, gradient
/// clipping) and the score-then-sort inference. Subclasses implement the
/// network: `InitNet` builds parameters, `BuildBatchLogits` maps a batch
/// of same-length lists to one stacked `(B*L x 1)` logit column — the
/// single forward implementation behind every entry point. `ScoreList` /
/// `Rerank` are batch-of-one wrappers over it; `ScoreBatch` /
/// `RerankBatch` group mixed-length inputs by length and run one forward
/// per group.
///
/// Thread safety: `Fit`/`LoadModel` are exclusive; after either completes,
/// the const inference surface (`Rerank`/`RerankBatch`/`ScoreList`/
/// `ScoreBatch`/`SaveModel`) is safe to call concurrently from many
/// threads (see the contract on `Reranker::Rerank`). Subclass
/// `BuildBatchLogits` implementations must uphold this: with `training ==
/// false` they may only *read* the network parameters and must keep all
/// scratch state (graphs, buffers) local to the call.
class NeuralReranker : public Reranker {
 public:
  explicit NeuralReranker(NeuralRerankConfig config) : config_(config) {}

  void Fit(const data::Dataset& data,
           const std::vector<data::ImpressionList>& train,
           uint64_t seed) override;

  /// Continues training on `train` *without* re-initializing the network:
  /// `epochs` passes of the same mini-batch loop as `Fit` (fresh Adam
  /// state per call) over the already-fitted parameters — the online
  /// trainer's incremental update on drained feedback batches. Requires a
  /// prior `Fit` or `LoadModel`; exclusive access like `Fit` (never call
  /// concurrently with inference on the same object). No-op on an empty
  /// `train`.
  void FineTune(const data::Dataset& data,
                const std::vector<data::ImpressionList>& train, uint64_t seed,
                int epochs = 1);

  std::vector<int> Rerank(const data::Dataset& data,
                          const data::ImpressionList& list) const override;

  /// Batched inference: groups same-length lists and runs one forward per
  /// group through `ScoreBatchInto`; sorts each list by its scores. Output
  /// `i` is bit-identical to `Rerank(data, *lists[i])`. The whole call runs
  /// under the thread-local arena (nn/arena.h) in no-grad mode — on a warm
  /// thread with a reused `*out` it performs zero heap allocations.
  void RerankBatchInto(
      const data::Dataset& data,
      const std::vector<const data::ImpressionList*>& lists,
      std::vector<std::vector<int>>* out) const override;

  /// Per-item re-ranking scores in list order (inference mode). A
  /// batch-of-one wrapper over `ScoreBatch` — there is exactly one forward
  /// implementation (`BuildBatchLogits`); do not override this in models
  /// (pre-batching subclass overrides are deprecated, see DESIGN.md).
  std::vector<float> ScoreList(const data::Dataset& data,
                               const data::ImpressionList& list) const;

  /// Per-item scores for several lists at once (inference mode). Lists may
  /// have mixed lengths: same-length lists are grouped, each group is
  /// concatenated list-major into one `(B*L x F)` block and scored by a
  /// single `BuildBatchLogits` forward. Result `i` aligns with `lists[i]`
  /// and is bit-identical to `ScoreList(data, *lists[i])` — batching is a
  /// pure throughput optimization, never a numeric change.
  std::vector<std::vector<float>> ScoreBatch(
      const data::Dataset& data,
      const std::vector<const data::ImpressionList*>& lists) const;

  /// `ScoreBatch` into caller-owned storage. `*out` is resized to
  /// `lists.size()` and each inner vector to its list length *before* any
  /// arena scope opens (outputs must never live in the arena — see
  /// nn/arena.h lifetime rules); all forward-pass temporaries come from
  /// per-group arena scopes in no-grad mode, so a warm caller that reuses
  /// `*out` allocates nothing on the heap.
  void ScoreBatchInto(const data::Dataset& data,
                      const std::vector<const data::ImpressionList*>& lists,
                      std::vector<std::vector<float>>* out) const;

  /// Mean training loss of the last epoch.
  float final_loss() const { return final_loss_; }

  /// The shared training hyper-parameters. `serve::Snapshot` persists these
  /// in its header so a serving process can reconstruct the model family
  /// without the training code's configuration.
  const NeuralRerankConfig& train_config() const { return config_; }

  /// Persists the trained weights to `path` (binary). Requires a prior
  /// Fit (or LoadModel). Returns false on I/O failure.
  bool SaveModel(const std::string& path) const;

  /// Rebuilds the network for `data`'s dimensions and restores weights
  /// saved by `SaveModel`. The configuration must match the one used at
  /// save time (shape mismatches fail). Returns false on failure.
  bool LoadModel(const data::Dataset& data, const std::string& path);

  /// Stream variants, used by `serve::Snapshot` to embed the weight blob
  /// after its own configuration header.
  bool SaveModel(std::ostream& out) const;
  bool LoadModel(const data::Dataset& data, std::istream& in);

 protected:
  /// Builds the network parameters for `data`'s dimensions.
  virtual void InitNet(const data::Dataset& data, std::mt19937_64& rng) = 0;

  /// The single forward implementation: logits for a batch of lists that
  /// all share one length `L`, stacked list-major — row `b*L + i` is item
  /// `i` of `lists[b]`, giving a `(B*L x 1)` output column. Implementations
  /// must be bit-exact under concatenation: each list's logit block must
  /// equal the `B == 1` forward of that list alone (attend per list via
  /// the `segment` overloads in nn/layers.h; never mix rows across lists).
  /// `training` enables stochastic paths (exploration noise, dropout)
  /// using `rng`; the training loop always calls with `B == 1`.
  virtual nn::Variable BuildBatchLogits(
      const data::Dataset& data,
      const std::vector<const data::ImpressionList*>& lists, bool training,
      std::mt19937_64& rng) const = 0;

  /// Batch-of-one convenience over `BuildBatchLogits` (training loop,
  /// losses).
  nn::Variable BuildLogits(const data::Dataset& data,
                           const data::ImpressionList& list, bool training,
                           std::mt19937_64& rng) const;

  /// All trainable parameters.
  virtual std::vector<nn::Variable> Params() const = 0;

  /// Per-list training loss; default is pointwise BCE of `BuildLogits`
  /// against the list's clicks. Subclasses may override (e.g. pairwise).
  virtual nn::Variable ListLoss(const data::Dataset& data,
                                const data::ImpressionList& list,
                                std::mt19937_64& rng) const;

  NeuralRerankConfig config_;
  float final_loss_ = 0.0f;

 private:
  /// The shared mini-batch Adam loop behind `Fit` and `FineTune`.
  void TrainLoop(const data::Dataset& data,
                 const std::vector<data::ImpressionList>& train,
                 std::mt19937_64& rng, int epochs);
};

/// Builds the `(L x F)` per-item input matrix of a list:
/// `[x_u, x_v, tau_v, normalized initial score]`, `F = q_u + q_v + m + 1`.
nn::Matrix ListFeatureMatrix(const data::Dataset& data,
                             const data::ImpressionList& list);

/// Stacks `ListFeatureMatrix` of each list into one `(B*L x F)` block,
/// list-major (rows `[b*L, (b+1)*L)` hold list `b`). All lists must share
/// one length `L`. Rows are bitwise copies of the per-list matrices.
nn::Matrix BatchFeatureMatrix(
    const data::Dataset& data,
    const std::vector<const data::ImpressionList*>& lists);

/// Splits a list-major `(B*L x F)` feature block into `L` time-major
/// `(B x F)` constant steps: step `t`'s row `b` is block row `b*L + t`.
/// Feed these to `Lstm`/`BiLstm`/`GruCell`, whose per-row arithmetic makes
/// the batched recurrence bit-identical to `B` single-list runs; reorder
/// the time-major step outputs back to list-major with `nn::GatherRows`.
std::vector<nn::Variable> TimeMajorSteps(const nn::Matrix& feats, int batch,
                                         int length);

/// The input feature dimension of `ListFeatureMatrix` for `data`.
int ListFeatureDim(const data::Dataset& data);

}  // namespace rapid::rerank

#endif  // RAPID_RERANK_NEURAL_BASE_H_
