#ifndef RAPID_RERANK_SEQ2SLATE_H_
#define RAPID_RERANK_SEQ2SLATE_H_

#include <memory>
#include <string>

#include "rerank/neural_base.h"

namespace rapid::rerank {

/// Seq2Slate (Bello et al. 2019, reference [1] of the paper): a pointer
/// network that *generates* the re-ranked slate item by item — an LSTM
/// encoder over the initial list, an LSTM decoder whose additive attention
/// points at the next item among the not-yet-selected candidates.
///
/// Trained with the supervised cross-entropy variant from the original
/// paper: the target ordering places clicked items first (in initial
/// order), and the per-step pointer distribution is pushed toward the
/// target choice over the first `decode_steps` positions. Inference decodes
/// greedily into a full permutation.
///
/// Provided as an extension baseline (generative, rather than
/// score-and-sort, re-ranking); not part of the paper's Table II line-up.
class Seq2SlateReranker : public NeuralReranker {
 public:
  explicit Seq2SlateReranker(NeuralRerankConfig config = {},
                             int decode_steps = 10);
  ~Seq2SlateReranker() override;
  std::string name() const override { return "Seq2Slate"; }

  /// Generative decoding: not score-and-sort.
  std::vector<int> Rerank(const data::Dataset& data,
                          const data::ImpressionList& list) const override;

 protected:
  void InitNet(const data::Dataset& data, std::mt19937_64& rng) override;
  /// Greedy decode per list (the pointer decoding is inherently
  /// sequential), stacked list-major; each list's block is its `-rank`
  /// logits, so `ScoreBatch` grouping is a pure loop with no numeric
  /// interaction between lists.
  nn::Variable BuildBatchLogits(
      const data::Dataset& data,
      const std::vector<const data::ImpressionList*>& lists, bool training,
      std::mt19937_64& rng) const override;
  nn::Variable ListLoss(const data::Dataset& data,
                        const data::ImpressionList& list,
                        std::mt19937_64& rng) const override;
  std::vector<nn::Variable> Params() const override;

 private:
  struct Net;
  /// Greedy-decode logits for one list: item `i` scores `-rank(i)` in the
  /// generated order.
  nn::Variable GreedyLogits(const data::Dataset& data,
                            const data::ImpressionList& list) const;
  /// Encoder states for a list: (L x h).
  nn::Variable Encode(const data::Dataset& data,
                      const data::ImpressionList& list) const;
  /// Pointer logits over all L items for one decoder state, with already
  /// selected positions masked to -1e9.
  nn::Variable PointerLogits(const nn::Variable& encoder_states,
                             const nn::Variable& decoder_state,
                             const std::vector<bool>& selected) const;

  std::unique_ptr<Net> net_;
  int decode_steps_;
};

}  // namespace rapid::rerank

#endif  // RAPID_RERANK_SEQ2SLATE_H_
