#ifndef RAPID_RERANK_DPP_H_
#define RAPID_RERANK_DPP_H_

#include <string>
#include <vector>

#include "rerank/reranker.h"

namespace rapid::rerank {

/// Determinantal point process re-ranking (Wilhelm et al., CIKM 2018) with
/// the fast greedy MAP inference of Chen et al. (NeurIPS 2018).
///
/// The kernel is `L = Diag(q) S Diag(q)` with quality
/// `q_i = exp(alpha * rel_i)` (normalized initial scores) and similarity
/// `S` the topic-coverage cosine plus a small diagonal jitter. Greedy MAP
/// runs in O(n^2 k) via incremental Cholesky updates.
class DppReranker : public Reranker {
 public:
  explicit DppReranker(float alpha = 1.2f) : alpha_(alpha) {}

  std::string name() const override { return "DPP"; }
  std::vector<int> Rerank(const data::Dataset& data,
                          const data::ImpressionList& list) const override;

  /// Fast greedy MAP over an explicit kernel: returns selected indices in
  /// selection order; stops early if no PSD-feasible item remains (the
  /// remaining indices are appended in original order). Exposed for tests
  /// and for PD-GAN, which builds its own personalized kernel.
  static std::vector<int> GreedyMapInference(
      const std::vector<std::vector<float>>& kernel, int max_items);

 private:
  float alpha_;
};

}  // namespace rapid::rerank

#endif  // RAPID_RERANK_DPP_H_
