#ifndef RAPID_RERANK_NEURAL_MODELS_H_
#define RAPID_RERANK_NEURAL_MODELS_H_

#include <memory>
#include <string>
#include <vector>

#include "rerank/neural_base.h"

namespace rapid::rerank {

/// DLCM (Ai et al., SIGIR 2018): a GRU encodes the top-ranked items in
/// initial order into a local context embedding; each item is scored by an
/// MLP over its GRU state and the final (whole-list) state.
class DlcmReranker : public NeuralReranker {
 public:
  explicit DlcmReranker(NeuralRerankConfig config = {});
  ~DlcmReranker() override;
  std::string name() const override { return "DLCM"; }

 protected:
  void InitNet(const data::Dataset& data, std::mt19937_64& rng) override;
  nn::Variable BuildBatchLogits(
      const data::Dataset& data,
      const std::vector<const data::ImpressionList*>& lists, bool training,
      std::mt19937_64& rng) const override;
  std::vector<nn::Variable> Params() const override;

 private:
  struct Net;
  std::unique_ptr<Net> net_;
};

/// PRM (Pei et al., RecSys 2019): transformer encoder over the item
/// sequence with sinusoidal positional encoding, modeling cross-item
/// interactions explicitly.
class PrmReranker : public NeuralReranker {
 public:
  explicit PrmReranker(NeuralRerankConfig config = {});
  ~PrmReranker() override;
  std::string name() const override { return "PRM"; }

 protected:
  void InitNet(const data::Dataset& data, std::mt19937_64& rng) override;
  nn::Variable BuildBatchLogits(
      const data::Dataset& data,
      const std::vector<const data::ImpressionList*>& lists, bool training,
      std::mt19937_64& rng) const override;
  std::vector<nn::Variable> Params() const override;

 private:
  struct Net;
  std::unique_ptr<Net> net_;
};

/// SetRank (Pang et al., SIGIR 2020): multi-head self-attention blocks
/// *without* positional encoding — a permutation-invariant set encoder.
class SetRankReranker : public NeuralReranker {
 public:
  explicit SetRankReranker(NeuralRerankConfig config = {});
  ~SetRankReranker() override;
  std::string name() const override { return "SetRank"; }

 protected:
  void InitNet(const data::Dataset& data, std::mt19937_64& rng) override;
  nn::Variable BuildBatchLogits(
      const data::Dataset& data,
      const std::vector<const data::ImpressionList*>& lists, bool training,
      std::mt19937_64& rng) const override;
  std::vector<nn::Variable> Params() const override;

 private:
  struct Net;
  std::unique_ptr<Net> net_;
};

/// SRGA (Qian et al., WSDM 2022): scope-aware gated attention — a
/// unidirectional (causal) attention head models the browsing direction, a
/// local-window head models neighboring-item interactions, and a learned
/// sigmoid gate fuses them.
class SrgaReranker : public NeuralReranker {
 public:
  explicit SrgaReranker(NeuralRerankConfig config = {}, int local_window = 3);
  ~SrgaReranker() override;
  std::string name() const override { return "SRGA"; }

 protected:
  void InitNet(const data::Dataset& data, std::mt19937_64& rng) override;
  nn::Variable BuildBatchLogits(
      const data::Dataset& data,
      const std::vector<const data::ImpressionList*>& lists, bool training,
      std::mt19937_64& rng) const override;
  std::vector<nn::Variable> Params() const override;

 private:
  struct Net;
  std::unique_ptr<Net> net_;
  int local_window_;
};

/// DESA (Qin et al., CIKM 2020): jointly estimates relevance (projected
/// multi-head self-attention over item embeddings) and diversity
/// (parameter-free self-attention over the topic-coverage rows), fusing
/// both with an MLP. Trained with the pairwise logistic loss by default,
/// matching the original formulation.
class DesaReranker : public NeuralReranker {
 public:
  /// A `NeuralRerankConfig` with the pairwise loss selected (DESA's
  /// original objective); all other fields at their defaults.
  static NeuralRerankConfig PairwiseConfig();

  explicit DesaReranker(NeuralRerankConfig config = PairwiseConfig());
  ~DesaReranker() override;
  std::string name() const override { return "DESA"; }

 protected:
  void InitNet(const data::Dataset& data, std::mt19937_64& rng) override;
  nn::Variable BuildBatchLogits(
      const data::Dataset& data,
      const std::vector<const data::ImpressionList*>& lists, bool training,
      std::mt19937_64& rng) const override;
  std::vector<nn::Variable> Params() const override;

 private:
  struct Net;
  std::unique_ptr<Net> net_;
};

}  // namespace rapid::rerank

#endif  // RAPID_RERANK_NEURAL_MODELS_H_
