#include "rankers/din.h"

#include <algorithm>

#include "nn/embedding.h"
#include "nn/optimizer.h"

namespace rapid::rank {

namespace {

using nn::Variable;

// Builds the (H x q_v) matrix of a user's history item features.
nn::Matrix HistoryMatrix(const data::Dataset& data, int user_id) {
  const auto& hist = data.history[user_id];
  const int q = data.item_feature_dim();
  nn::Matrix out(static_cast<int>(hist.size()), q);
  for (size_t i = 0; i < hist.size(); ++i) {
    const auto& f = data.item(hist[i]).features;
    for (int c = 0; c < q; ++c) out.at(static_cast<int>(i), c) = f[c];
  }
  return out;
}

nn::Matrix RowFrom(const std::vector<float>& v) {
  return nn::Matrix(1, static_cast<int>(v.size()), v);
}

}  // namespace

struct DinRanker::Net {
  Net(const data::Dataset& data, const DinConfig& cfg, std::mt19937_64& rng)
      : item_dim(data.item_feature_dim() +
                 (cfg.use_id_embeddings ? cfg.id_embedding_dim : 0)),
        user_dim(data.user_feature_dim() +
                 (cfg.use_id_embeddings ? cfg.id_embedding_dim : 0)),
        attention({3 * item_dim, cfg.hidden_dim, 1}, rng,
                  nn::Activation::kRelu),
        scorer({user_dim + 2 * item_dim, cfg.hidden_dim, cfg.hidden_dim, 1},
               rng, nn::Activation::kRelu) {
    if (cfg.use_id_embeddings) {
      user_emb = std::make_unique<nn::Embedding>(
          static_cast<int>(data.users.size()), cfg.id_embedding_dim, rng);
      item_emb = std::make_unique<nn::Embedding>(
          static_cast<int>(data.items.size()), cfg.id_embedding_dim, rng);
    }
  }

  std::vector<Variable> Params() const {
    std::vector<Variable> out = attention.Params();
    for (const Variable& p : scorer.Params()) out.push_back(p);
    if (user_emb) out.push_back(user_emb->Params()[0]);
    if (item_emb) out.push_back(item_emb->Params()[0]);
    return out;
  }

  int item_dim;
  int user_dim;
  nn::Mlp attention;  // [h, v, h*v] -> attention logit
  nn::Mlp scorer;     // [x_u, x_v, pooled_history] -> logit
  std::unique_ptr<nn::Embedding> user_emb;
  std::unique_ptr<nn::Embedding> item_emb;
};

DinRanker::DinRanker(DinConfig config) : config_(config) {}
DinRanker::~DinRanker() = default;

Variable DinRanker::ScoreLogit(const data::Dataset& data, int user_id,
                               int item_id) const {
  const data::User& user = data.user(user_id);
  const data::Item& item = data.item(item_id);
  const auto& history = data.history[user_id];
  const int h_len = static_cast<int>(history.size());

  // Item representation: dense features, optionally with ID embeddings.
  Variable hist = Variable::Constant(HistoryMatrix(data, user_id));
  Variable cand_row = Variable::Constant(RowFrom(item.features));
  if (net_->item_emb) {
    hist = nn::ConcatCols({hist, net_->item_emb->Lookup(history)});
    cand_row =
        nn::ConcatCols({cand_row, net_->item_emb->LookupOne(item_id)});
  }
  // Tile the candidate representation to align with history rows.
  std::vector<Variable> tiled(h_len, cand_row);
  Variable cand = nn::ConcatRows(tiled);

  // Attention logits over history, keyed by the candidate.
  Variable att_in = nn::ConcatCols({hist, cand, nn::Mul(hist, cand)});
  Variable att_logits = net_->attention.Forward(att_in);       // (H x 1)
  Variable att = nn::SoftmaxRows(nn::Transpose(att_logits));   // (1 x H)
  Variable pooled = nn::MatMul(att, hist);                     // (1 x item_dim)

  Variable user_row = Variable::Constant(RowFrom(user.features));
  if (net_->user_emb) {
    user_row = nn::ConcatCols({user_row, net_->user_emb->LookupOne(user_id)});
  }
  Variable x = nn::ConcatCols({user_row, cand_row, pooled});
  return net_->scorer.Forward(x);  // (1 x 1) logit
}

void DinRanker::Train(const data::Dataset& data, uint64_t seed) {
  std::mt19937_64 rng(seed);
  net_ = std::make_unique<Net>(data, config_, rng);
  nn::Adam opt(net_->Params(), config_.learning_rate);

  std::vector<int> order(data.ranker_train.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng);
    double epoch_loss = 0.0;
    int batches = 0;
    for (size_t start = 0; start < order.size();
         start += config_.batch_size) {
      const size_t end =
          std::min(order.size(), start + config_.batch_size);
      opt.ZeroGrad();
      std::vector<Variable> logits;
      nn::Matrix targets(static_cast<int>(end - start), 1);
      for (size_t i = start; i < end; ++i) {
        const data::Interaction& it = data.ranker_train[order[i]];
        logits.push_back(ScoreLogit(data, it.user_id, it.item_id));
        targets.at(static_cast<int>(i - start), 0) =
            static_cast<float>(it.label);
      }
      Variable batch_logits = nn::ConcatRows(logits);
      nn::Matrix weights =
          nn::Matrix::Constant(targets.rows(), 1, 1.0f);
      Variable loss = nn::BceWithLogits(batch_logits, targets, weights);
      loss.Backward();
      nn::ClipGradNorm(opt.params(), config_.grad_clip);
      opt.Step();
      epoch_loss += loss.value().at(0, 0);
      ++batches;
    }
    final_loss_ = static_cast<float>(epoch_loss / std::max(batches, 1));
  }
}

float DinRanker::Score(const data::Dataset& data, int user_id,
                       int item_id) const {
  return ScoreLogit(data, user_id, item_id).value().at(0, 0);
}

}  // namespace rapid::rank
