#include "rankers/lambdamart.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace rapid::rank {

namespace {

// NDCG discount at 0-based rank i.
double Discount(int i) { return 1.0 / std::log2(i + 2.0); }

}  // namespace

void LambdaMartRanker::Train(const data::Dataset& data, uint64_t /*seed*/) {
  trees_.clear();

  // Build per-query (per-user) document groups with precomputed features.
  struct Query {
    std::vector<int> docs;  // indices into the flat arrays below
  };
  std::vector<std::vector<float>> features;
  std::vector<int> labels;
  std::vector<Query> queries(data.users.size());
  for (const data::Interaction& it : data.ranker_train) {
    queries[it.user_id].docs.push_back(static_cast<int>(features.size()));
    features.push_back(PairFeatures(data, it.user_id, it.item_id));
    labels.push_back(it.label);
  }
  const int n = static_cast<int>(features.size());
  if (n == 0) return;

  std::vector<float> scores(n, 0.0f);
  std::vector<float> lambdas(n), hessians(n);

  for (int t = 0; t < config_.num_trees; ++t) {
    std::fill(lambdas.begin(), lambdas.end(), 0.0f);
    std::fill(hessians.begin(), hessians.end(), 0.0f);

    for (const Query& q : queries) {
      if (q.docs.size() < 2) continue;
      // Current ranking of this query's docs by score (for delta-NDCG).
      std::vector<int> order(q.docs.size());
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(), [&](int a, int b) {
        return scores[q.docs[a]] > scores[q.docs[b]];
      });
      std::vector<int> rank_of(q.docs.size());
      for (size_t r = 0; r < order.size(); ++r) rank_of[order[r]] = static_cast<int>(r);

      // Ideal DCG for normalization.
      int num_pos = 0;
      for (int d : q.docs) num_pos += labels[d];
      if (num_pos == 0 || num_pos == static_cast<int>(q.docs.size())) continue;
      double idcg = 0.0;
      for (int i = 0; i < num_pos; ++i) idcg += Discount(i);

      for (size_t a = 0; a < q.docs.size(); ++a) {
        for (size_t b = 0; b < q.docs.size(); ++b) {
          const int da = q.docs[a], db = q.docs[b];
          if (labels[da] <= labels[db]) continue;  // a must beat b
          const double delta_ndcg =
              std::fabs(Discount(rank_of[a]) - Discount(rank_of[b])) / idcg;
          const double s_diff =
              config_.sigma * (scores[da] - scores[db]);
          const double rho = 1.0 / (1.0 + std::exp(s_diff));
          const double lambda = config_.sigma * rho * delta_ndcg;
          const double hess = config_.sigma * config_.sigma * rho *
                              (1.0 - rho) * delta_ndcg;
          lambdas[da] += static_cast<float>(lambda);
          lambdas[db] -= static_cast<float>(lambda);
          hessians[da] += static_cast<float>(hess);
          hessians[db] += static_cast<float>(hess);
        }
      }
    }

    RegressionTree tree;
    tree.Fit(features, lambdas, hessians, config_.tree);
    for (int i = 0; i < n; ++i) {
      scores[i] += config_.learning_rate * tree.Predict(features[i]);
    }
    trees_.push_back(std::move(tree));
  }
}

float LambdaMartRanker::PredictFeatures(const std::vector<float>& f) const {
  double s = 0.0;
  for (const RegressionTree& t : trees_) {
    s += config_.learning_rate * t.Predict(f);
  }
  return static_cast<float>(s);
}

float LambdaMartRanker::Score(const data::Dataset& data, int user_id,
                              int item_id) const {
  return PredictFeatures(PairFeatures(data, user_id, item_id));
}

}  // namespace rapid::rank
