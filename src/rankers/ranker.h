#ifndef RAPID_RANKERS_RANKER_H_
#define RAPID_RANKERS_RANKER_H_

#include <string>
#include <vector>

#include "datagen/types.h"

namespace rapid::rank {

/// Interface for initial rankers (the stage before re-ranking).
///
/// A ranker is trained on the initial-ranker split of a dataset and then
/// scores (user, item) pairs pointwise; `RankRequest` turns a request's
/// candidate pool into a ranked initial list.
class Ranker {
 public:
  virtual ~Ranker() = default;

  /// Human-readable name used in experiment tables.
  virtual std::string name() const = 0;

  /// Fits the ranker on `data.ranker_train`.
  virtual void Train(const data::Dataset& data, uint64_t seed) = 0;

  /// Relevance score for one user-item pair (higher = more relevant).
  virtual float Score(const data::Dataset& data, int user_id,
                      int item_id) const = 0;

  /// Scores the request's candidates and returns the top-`list_len` as an
  /// initial `ImpressionList` (descending score; clicks left empty).
  data::ImpressionList RankRequest(const data::Dataset& data,
                                   const data::Request& request,
                                   int list_len) const;
};

/// Hand-crafted feature vector for the linear / tree rankers:
/// `[x_u, x_v, tau_v, <x_u,x_v>/d]`. Static features only — unlike DIN,
/// these classical rankers do not consume the behavior history, which is
/// exactly why DIN is the strongest initial ranker (as in the paper).
std::vector<float> PairFeatures(const data::Dataset& data, int user_id,
                                int item_id);

/// Dimensionality of `PairFeatures` for `data`.
int PairFeatureDim(const data::Dataset& data);

}  // namespace rapid::rank

#endif  // RAPID_RANKERS_RANKER_H_
