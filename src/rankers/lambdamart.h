#ifndef RAPID_RANKERS_LAMBDAMART_H_
#define RAPID_RANKERS_LAMBDAMART_H_

#include <string>
#include <vector>

#include "rankers/ranker.h"
#include "rankers/regression_tree.h"

namespace rapid::rank {

/// Configuration for the LambdaMART initial ranker.
struct LambdaMartConfig {
  int num_trees = 40;
  float learning_rate = 0.15f;
  RegressionTree::Options tree;
  /// Sigmoid sharpness of the pairwise lambda gradients.
  float sigma = 1.0f;
};

/// LambdaMART: gradient-boosted regression trees driven by LambdaRank
/// gradients (pairwise logistic gradients weighted by |delta-NDCG|), the
/// listwise learning-to-rank baseline of the paper's RQ2 study.
class LambdaMartRanker : public Ranker {
 public:
  explicit LambdaMartRanker(LambdaMartConfig config = {}) : config_(config) {}

  std::string name() const override { return "LambdaMART"; }
  void Train(const data::Dataset& data, uint64_t seed) override;
  float Score(const data::Dataset& data, int user_id,
              int item_id) const override;

  int num_trees() const { return static_cast<int>(trees_.size()); }

 private:
  float PredictFeatures(const std::vector<float>& f) const;

  LambdaMartConfig config_;
  std::vector<RegressionTree> trees_;
};

}  // namespace rapid::rank

#endif  // RAPID_RANKERS_LAMBDAMART_H_
