#ifndef RAPID_RANKERS_DIN_H_
#define RAPID_RANKERS_DIN_H_

#include <memory>
#include <random>
#include <string>

#include "nn/layers.h"
#include "rankers/ranker.h"

namespace rapid::rank {

/// Configuration for the DIN initial ranker.
struct DinConfig {
  int hidden_dim = 16;
  int epochs = 4;
  int batch_size = 32;
  float learning_rate = 3e-3f;
  float grad_clip = 5.0f;
  /// When true, learned per-user and per-item ID embeddings are
  /// concatenated with the dense features (the original DIN is
  /// embedding-based; the dense-only default suits the small synthetic
  /// universes, where IDs would memorize).
  bool use_id_embeddings = false;
  int id_embedding_dim = 8;
};

/// Deep Interest Network (Zhou et al., KDD 2018), the paper's default
/// initial ranker: the user representation is an attention-weighted pool of
/// behavior-history item embeddings, keyed by the candidate item, followed
/// by a scoring MLP. Trained pointwise with binary cross-entropy.
class DinRanker : public Ranker {
 public:
  explicit DinRanker(DinConfig config = {});
  ~DinRanker() override;

  std::string name() const override { return "DIN"; }
  void Train(const data::Dataset& data, uint64_t seed) override;
  float Score(const data::Dataset& data, int user_id,
              int item_id) const override;

  /// Final training loss (for tests / convergence checks).
  float final_loss() const { return final_loss_; }

 private:
  struct Net;
  nn::Variable ScoreLogit(const data::Dataset& data, int user_id,
                          int item_id) const;

  DinConfig config_;
  std::unique_ptr<Net> net_;
  float final_loss_ = 0.0f;
};

}  // namespace rapid::rank

#endif  // RAPID_RANKERS_DIN_H_
