#ifndef RAPID_RANKERS_SVMRANK_H_
#define RAPID_RANKERS_SVMRANK_H_

#include <string>
#include <vector>

#include "rankers/ranker.h"

namespace rapid::rank {

/// Configuration for the pairwise linear SVM ranker.
struct SvmRankConfig {
  int epochs = 12;
  float learning_rate = 0.05f;
  /// L2 regularization strength.
  float l2 = 1e-4f;
};

/// RankSVM (Joachims, KDD 2006): a linear model over `PairFeatures` trained
/// with the pairwise hinge loss `max(0, 1 - w^T (f_pos - f_neg))` by SGD
/// over per-user positive/negative pairs.
class SvmRankRanker : public Ranker {
 public:
  explicit SvmRankRanker(SvmRankConfig config = {}) : config_(config) {}

  std::string name() const override { return "SVMRank"; }
  void Train(const data::Dataset& data, uint64_t seed) override;
  float Score(const data::Dataset& data, int user_id,
              int item_id) const override;

  const std::vector<float>& weights() const { return w_; }

 private:
  SvmRankConfig config_;
  std::vector<float> w_;
};

}  // namespace rapid::rank

#endif  // RAPID_RANKERS_SVMRANK_H_
