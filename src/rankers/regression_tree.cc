#include "rankers/regression_tree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace rapid::rank {

namespace {

// Newton leaf value with a small ridge term for stability.
float LeafValue(const std::vector<float>& targets,
                const std::vector<float>& hessians,
                const std::vector<int>& indices) {
  double g = 0.0, h = 0.0;
  for (int i : indices) {
    g += targets[i];
    h += hessians.empty() ? 1.0 : hessians[i];
  }
  return static_cast<float>(g / (h + 1e-6));
}

}  // namespace

void RegressionTree::Fit(const std::vector<std::vector<float>>& features,
                         const std::vector<float>& targets,
                         const std::vector<float>& hessians,
                         const Options& options) {
  assert(features.size() == targets.size());
  assert(hessians.empty() || hessians.size() == targets.size());
  nodes_.clear();
  std::vector<int> indices(features.size());
  for (size_t i = 0; i < indices.size(); ++i) indices[i] = static_cast<int>(i);
  Build(features, targets, hessians, indices, 0, options);
}

int RegressionTree::Build(const std::vector<std::vector<float>>& features,
                          const std::vector<float>& targets,
                          const std::vector<float>& hessians,
                          std::vector<int>& indices, int depth,
                          const Options& options) {
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();

  const int n = static_cast<int>(indices.size());
  if (depth >= options.max_depth || n < 2 * options.min_leaf_size) {
    nodes_[node_id].value = LeafValue(targets, hessians, indices);
    return node_id;
  }

  // Current SSE baseline.
  double sum = 0.0;
  for (int i : indices) sum += targets[i];
  const double mean = sum / n;
  double best_gain = 1e-8;
  int best_feature = -1;
  float best_threshold = 0.0f;

  const int dim = static_cast<int>(features[0].size());
  std::vector<float> column(n);
  for (int f = 0; f < dim; ++f) {
    for (int i = 0; i < n; ++i) column[i] = features[indices[i]][f];
    // Quantile threshold candidates.
    std::vector<float> sorted = column;
    std::sort(sorted.begin(), sorted.end());
    for (int q = 1; q <= options.candidate_thresholds; ++q) {
      const int pos = q * (n - 1) / (options.candidate_thresholds + 1);
      const float thr = sorted[pos];
      if (thr >= sorted[n - 1]) continue;  // Would send everything left.
      double lsum = 0.0, rsum = 0.0;
      int ln = 0, rn = 0;
      for (int i = 0; i < n; ++i) {
        if (column[i] <= thr) {
          lsum += targets[indices[i]];
          ++ln;
        } else {
          rsum += targets[indices[i]];
          ++rn;
        }
      }
      if (ln < options.min_leaf_size || rn < options.min_leaf_size) continue;
      // Variance-reduction gain = SSE(parent) - SSE(children), which
      // simplifies to sum-of-squares of child means minus parent.
      const double gain = lsum * lsum / ln + rsum * rsum / rn -
                          mean * mean * n;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = f;
        best_threshold = thr;
      }
    }
  }

  if (best_feature < 0) {
    nodes_[node_id].value = LeafValue(targets, hessians, indices);
    return node_id;
  }

  std::vector<int> left, right;
  for (int i : indices) {
    if (features[i][best_feature] <= best_threshold) {
      left.push_back(i);
    } else {
      right.push_back(i);
    }
  }
  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  const int l = Build(features, targets, hessians, left, depth + 1, options);
  const int r = Build(features, targets, hessians, right, depth + 1, options);
  nodes_[node_id].left = l;
  nodes_[node_id].right = r;
  return node_id;
}

float RegressionTree::Predict(const std::vector<float>& f) const {
  assert(!nodes_.empty());
  int node = 0;
  while (nodes_[node].feature >= 0) {
    node = f[nodes_[node].feature] <= nodes_[node].threshold
               ? nodes_[node].left
               : nodes_[node].right;
  }
  return nodes_[node].value;
}

}  // namespace rapid::rank
