#include "rankers/ranker.h"

#include <algorithm>
#include <numeric>


namespace rapid::rank {

data::ImpressionList Ranker::RankRequest(const data::Dataset& data,
                                         const data::Request& request,
                                         int list_len) const {
  std::vector<std::pair<float, int>> scored;
  scored.reserve(request.candidates.size());
  for (int v : request.candidates) {
    scored.push_back({Score(data, request.user_id, v), v});
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  data::ImpressionList out;
  out.user_id = request.user_id;
  const int n = std::min<int>(list_len, static_cast<int>(scored.size()));
  out.items.reserve(n);
  out.scores.reserve(n);
  for (int i = 0; i < n; ++i) {
    out.scores.push_back(scored[i].first);
    out.items.push_back(scored[i].second);
  }
  return out;
}

std::vector<float> PairFeatures(const data::Dataset& data, int user_id,
                                int item_id) {
  const data::User& user = data.user(user_id);
  const data::Item& item = data.item(item_id);
  std::vector<float> f;
  f.reserve(PairFeatureDim(data));
  f.insert(f.end(), user.features.begin(), user.features.end());
  f.insert(f.end(), item.features.begin(), item.features.end());
  f.insert(f.end(), item.topic_coverage.begin(), item.topic_coverage.end());
  float dot = 0.0f;
  const size_t d = std::min(user.features.size(), item.features.size());
  for (size_t i = 0; i < d; ++i) {
    dot += user.features[i] * item.features[i];
  }
  f.push_back(dot / static_cast<float>(d));
  return f;
}

int PairFeatureDim(const data::Dataset& data) {
  return data.user_feature_dim() + data.item_feature_dim() +
         data.num_topics + 1;
}

}  // namespace rapid::rank
