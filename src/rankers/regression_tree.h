#ifndef RAPID_RANKERS_REGRESSION_TREE_H_
#define RAPID_RANKERS_REGRESSION_TREE_H_

#include <random>
#include <vector>

namespace rapid::rank {

/// A CART-style binary regression tree used as the base learner of
/// LambdaMART. Splits greedily on variance reduction of the targets; leaf
/// values are Newton steps `sum(gradient) / sum(hessian)` when hessians are
/// provided (as LambdaMART requires), plain means otherwise.
class RegressionTree {
 public:
  struct Options {
    int max_depth = 4;
    int min_leaf_size = 10;
    /// Thresholds tried per feature at each split (quantile candidates).
    int candidate_thresholds = 8;
  };

  /// Fits to `features[i]` -> `targets[i]`. `hessians` may be empty (plain
  /// regression) or aligned with `targets` (Newton leaf values).
  void Fit(const std::vector<std::vector<float>>& features,
           const std::vector<float>& targets,
           const std::vector<float>& hessians, const Options& options);

  /// Predicted value for one feature vector.
  float Predict(const std::vector<float>& f) const;

  /// Number of nodes (for tests); 0 before Fit.
  int num_nodes() const { return static_cast<int>(nodes_.size()); }

 private:
  struct Node {
    int feature = -1;       // -1 = leaf
    float threshold = 0.0f;  // go left if f[feature] <= threshold
    int left = -1;
    int right = -1;
    float value = 0.0f;  // leaf prediction
  };

  int Build(const std::vector<std::vector<float>>& features,
            const std::vector<float>& targets,
            const std::vector<float>& hessians, std::vector<int>& indices,
            int depth, const Options& options);

  std::vector<Node> nodes_;
};

}  // namespace rapid::rank

#endif  // RAPID_RANKERS_REGRESSION_TREE_H_
