#include "rankers/svmrank.h"

#include <algorithm>
#include <random>

namespace rapid::rank {

void SvmRankRanker::Train(const data::Dataset& data, uint64_t seed) {
  std::mt19937_64 rng(seed);
  const int dim = PairFeatureDim(data);
  w_.assign(dim, 0.0f);

  // Group interactions per user and precompute features.
  struct Doc {
    std::vector<float> f;
    int label;
  };
  std::vector<std::vector<Doc>> per_user(data.users.size());
  for (const data::Interaction& it : data.ranker_train) {
    per_user[it.user_id].push_back(
        {PairFeatures(data, it.user_id, it.item_id), it.label});
  }

  // All (pos, neg) index pairs per user.
  struct Pair {
    const Doc* pos;
    const Doc* neg;
  };
  std::vector<Pair> pairs;
  for (const auto& docs : per_user) {
    for (const Doc& a : docs) {
      if (!a.label) continue;
      for (const Doc& b : docs) {
        if (b.label) continue;
        pairs.push_back({&a, &b});
      }
    }
  }

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    std::shuffle(pairs.begin(), pairs.end(), rng);
    const float lr =
        config_.learning_rate / (1.0f + 0.3f * static_cast<float>(epoch));
    for (const Pair& p : pairs) {
      float margin = 0.0f;
      for (int i = 0; i < dim; ++i) {
        margin += w_[i] * (p.pos->f[i] - p.neg->f[i]);
      }
      // Hinge subgradient + L2 shrinkage.
      for (int i = 0; i < dim; ++i) {
        float g = config_.l2 * w_[i];
        if (margin < 1.0f) g -= (p.pos->f[i] - p.neg->f[i]);
        w_[i] -= lr * g;
      }
    }
  }
}

float SvmRankRanker::Score(const data::Dataset& data, int user_id,
                           int item_id) const {
  const std::vector<float> f = PairFeatures(data, user_id, item_id);
  float s = 0.0f;
  for (size_t i = 0; i < f.size(); ++i) s += w_[i] * f[i];
  return s;
}

}  // namespace rapid::rank
