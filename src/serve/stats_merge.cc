#include "serve/stats_merge.h"

#include <algorithm>

namespace rapid::serve {

namespace {

/// Request-weighted average of one per-shard point. Used for `mean_us`
/// (where it is exact) and as the percentile fallback for histogram-less
/// peers (where it is an approximation; see the header note).
double WeightedPercentile(double a, uint64_t wa, double b, uint64_t wb) {
  const uint64_t total = wa + wb;
  if (total == 0) return 0.0;
  return (a * static_cast<double>(wa) + b * static_cast<double>(wb)) /
         static_cast<double>(total);
}

}  // namespace

void MergeInto(ServingStats* dst, const ServingStats& src) {
  // Sum the raw histograms first; if the merged histogram has samples the
  // fleet percentiles are recomputed exactly from it below. The weighted
  // average only survives as a fallback for stats from peers that predate
  // histogram transport (their latency_hist is all zero).
  const double fallback_p50 = WeightedPercentile(dst->p50_us, dst->requests,
                                                 src.p50_us, src.requests);
  const double fallback_p95 = WeightedPercentile(dst->p95_us, dst->requests,
                                                 src.p95_us, src.requests);
  const double fallback_p99 = WeightedPercentile(dst->p99_us, dst->requests,
                                                 src.p99_us, src.requests);
  dst->mean_us = WeightedPercentile(dst->mean_us, dst->requests, src.mean_us,
                                    src.requests);
  for (int i = 0; i < ServingStats::kLatencyHistBins; ++i) {
    dst->latency_hist[i] += src.latency_hist[i];
  }
  if (dst->HasLatencyHist()) {
    dst->RecomputeLatencyPercentiles();
  } else {
    dst->p50_us = fallback_p50;
    dst->p95_us = fallback_p95;
    dst->p99_us = fallback_p99;
  }
  dst->requests += src.requests;
  dst->fallbacks += src.fallbacks;
  dst->shed += src.shed;
  dst->max_us = std::max(dst->max_us, src.max_us);
  dst->max_queue_depth = std::max(dst->max_queue_depth, src.max_queue_depth);
  dst->batches += src.batches;
  dst->batched_lists += src.batched_lists;
  dst->max_batch_size = std::max(dst->max_batch_size, src.max_batch_size);
  for (int i = 0; i < ServingStats::kBatchHistBins; ++i) {
    dst->batch_size_hist[i] += src.batch_size_hist[i];
  }
}

void MergeInto(CacheStats* dst, const CacheStats& src) {
  dst->hits += src.hits;
  dst->misses += src.misses;
  dst->inserts += src.inserts;
  dst->evictions += src.evictions;
  dst->expired += src.expired;
  dst->bypass += src.bypass;
  dst->swept += src.swept;
  dst->deferred += src.deferred;
  dst->negative_hits += src.negative_hits;
  dst->negative_inserts += src.negative_inserts;
}

void MergeInto(NetStats* dst, const NetStats& src) {
  dst->connections_accepted += src.connections_accepted;
  dst->connections_active += src.connections_active;
  dst->connections_rejected += src.connections_rejected;
  dst->closed_idle += src.closed_idle;
  dst->closed_slow += src.closed_slow;
  dst->closed_protocol_error += src.closed_protocol_error;
  dst->frames_in += src.frames_in;
  dst->frames_out += src.frames_out;
  dst->error_frames_out += src.error_frames_out;
  dst->decode_errors += src.decode_errors;
  dst->bytes_in += src.bytes_in;
  dst->bytes_out += src.bytes_out;
  dst->dropped_responses += src.dropped_responses;
  dst->stats_frames += src.stats_frames;
  dst->load_frames += src.load_frames;
  dst->feedback_frames += src.feedback_frames;
  dst->max_inflight_per_conn =
      std::max(dst->max_inflight_per_conn, src.max_inflight_per_conn);
}

void MergeInto(OnlineStats* dst, const OnlineStats& src) {
  dst->feedback_appended += src.feedback_appended;
  dst->feedback_dropped += src.feedback_dropped;
  dst->feedback_drained += src.feedback_drained;
  dst->train_rounds += src.train_rounds;
  dst->trained_lists += src.trained_lists;
  dst->publishes += src.publishes;
  dst->publish_rejected += src.publish_rejected;
  dst->publish_skipped += src.publish_skipped;
  dst->last_published_version =
      std::max(dst->last_published_version, src.last_published_version);
}

void MergeInto(PageStats* dst, const PageStats& src) {
  dst->pages += src.pages;
  dst->page_lists += src.page_lists;
  dst->joint_pages += src.joint_pages;
  dst->degraded_pages += src.degraded_pages;
  for (int i = 0; i < PageStats::kListsHistBins; ++i) {
    dst->lists_per_page_hist[i] += src.lists_per_page_hist[i];
  }
  dst->redundancy_millitopics += src.redundancy_millitopics;
  dst->max_lists_per_page =
      std::max(dst->max_lists_per_page, src.max_lists_per_page);
}

void MergeInto(RouterStats* dst, const RouterStats& src) {
  MergeInto(&dst->total, src.total);
  MergeInto(&dst->cache, src.cache);
  dst->unknown_slot += src.unknown_slot;
  dst->invalid_ids += src.invalid_ids;
  dst->canary_rejected += src.canary_rejected;
  dst->quota_shed += src.quota_shed;
  if (src.has_net) {
    MergeInto(&dst->net, src.net);
    dst->has_net = true;
  }
  if (src.has_online) {
    MergeInto(&dst->online, src.online);
    dst->has_online = true;
  }
  if (src.has_page) {
    MergeInto(&dst->page, src.page);
    dst->has_page = true;
  }
  for (const RouterStats::SlotEntry& slot : src.slots) {
    auto it = std::find_if(dst->slots.begin(), dst->slots.end(),
                           [&slot](const RouterStats::SlotEntry& entry) {
                             return entry.slot == slot.slot;
                           });
    if (it == dst->slots.end()) {
      dst->slots.push_back(slot);
      continue;
    }
    MergeInto(&it->stats, slot.stats);
    MergeInto(&it->cache, slot.cache);
    // Mid-rollout version skew: report the newest published version (the
    // one the fleet is converging to) rather than an arbitrary shard's.
    if (slot.version > it->version) {
      it->version = slot.version;
      it->model_name = slot.model_name;
    }
  }
  std::sort(dst->slots.begin(), dst->slots.end(),
            [](const RouterStats::SlotEntry& a,
               const RouterStats::SlotEntry& b) { return a.slot < b.slot; });
}

}  // namespace rapid::serve
