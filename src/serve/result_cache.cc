#include "serve/result_cache.h"

#include <algorithm>

namespace rapid::serve {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t Fnv1a(uint64_t h, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

CachePolicy Sanitized(CachePolicy policy) {
  policy.capacity = std::max<size_t>(policy.capacity, 1);
  policy.num_shards = std::clamp<int>(policy.num_shards, 1,
                                      static_cast<int>(policy.capacity));
  policy.ttl_us = std::max<int64_t>(policy.ttl_us, 0);
  policy.negative_ttl_us = std::max<int64_t>(policy.negative_ttl_us, 0);
  policy.admission_sketch_slots =
      std::max<size_t>(policy.admission_sketch_slots, 1);
  return policy;
}

}  // namespace

CacheStats ResultCache::Counters::Snapshot() const {
  CacheStats s;
  s.hits = hits.load(std::memory_order_relaxed);
  s.misses = misses.load(std::memory_order_relaxed);
  s.inserts = inserts.load(std::memory_order_relaxed);
  s.evictions = evictions.load(std::memory_order_relaxed);
  s.expired = expired.load(std::memory_order_relaxed);
  s.bypass = bypass.load(std::memory_order_relaxed);
  s.swept = swept.load(std::memory_order_relaxed);
  s.deferred = deferred.load(std::memory_order_relaxed);
  s.negative_hits = negative_hits.load(std::memory_order_relaxed);
  s.negative_inserts = negative_inserts.load(std::memory_order_relaxed);
  return s;
}

ResultCache::ResultCache(CachePolicy policy)
    : policy_(Sanitized(std::move(policy))),
      per_shard_capacity_(std::max<size_t>(
          policy_.capacity / static_cast<size_t>(policy_.num_shards), 1)) {
  shards_.reserve(static_cast<size_t>(policy_.num_shards));
  for (int i = 0; i < policy_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    if (policy_.enabled && policy_.admit_on_second_hit) {
      shards_.back()->seen.assign(policy_.admission_sketch_slots, 0);
    }
  }
  if (policy_.enabled) {
    sweeper_ = std::thread([this] { SweeperLoop(); });
  }
}

ResultCache::~ResultCache() {
  {
    std::lock_guard<std::mutex> lock(sweep_mu_);
    stop_ = true;
  }
  sweep_cv_.notify_all();
  if (sweeper_.joinable()) sweeper_.join();
}

uint64_t ResultCache::Fingerprint(const data::ImpressionList& list) {
  uint64_t h = kFnvOffset;
  const int32_t user = list.user_id;
  h = Fnv1a(h, &user, sizeof(user));
  // Hashing the arrays front-to-back makes the fingerprint order-sensitive
  // by construction: a permuted candidate list is a different key.
  const uint32_t num_items = static_cast<uint32_t>(list.items.size());
  h = Fnv1a(h, &num_items, sizeof(num_items));
  h = Fnv1a(h, list.items.data(), list.items.size() * sizeof(int));
  const uint32_t num_scores = static_cast<uint32_t>(list.scores.size());
  h = Fnv1a(h, &num_scores, sizeof(num_scores));
  h = Fnv1a(h, list.scores.data(), list.scores.size() * sizeof(float));
  return h;
}

bool ResultCache::EnabledFor(const std::string& slot) const {
  if (!policy_.enabled) return false;
  return std::find(policy_.bypass_slots.begin(), policy_.bypass_slots.end(),
                   slot) == policy_.bypass_slots.end();
}

ResultCache::Counters& ResultCache::CountersFor(const std::string& slot) {
  std::lock_guard<std::mutex> lock(slots_mu_);
  std::unique_ptr<Counters>& counters = slot_counters_[slot];
  if (counters == nullptr) counters = std::make_unique<Counters>();
  return *counters;
}

void ResultCache::RecordBypass(const std::string& slot) {
  total_.bypass.fetch_add(1, std::memory_order_relaxed);
  CountersFor(slot).bypass.fetch_add(1, std::memory_order_relaxed);
}

std::optional<ResultCache::CachedResult> ResultCache::Lookup(
    const std::string& slot, uint64_t version, uint64_t fingerprint) {
  Key key{slot, version, fingerprint};
  Shard& shard = ShardFor(key);
  Counters& counters = CountersFor(slot);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    total_.misses.fetch_add(1, std::memory_order_relaxed);
    counters.misses.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  if (ExpiredAt(*it->second, Clock::now())) {
    shard.lru.erase(it->second);
    shard.index.erase(it);
    total_.expired.fetch_add(1, std::memory_order_relaxed);
    counters.expired.fetch_add(1, std::memory_order_relaxed);
    total_.misses.fetch_add(1, std::memory_order_relaxed);
    counters.misses.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  total_.hits.fetch_add(1, std::memory_order_relaxed);
  counters.hits.fetch_add(1, std::memory_order_relaxed);
  return it->second->result;
}

void ResultCache::Insert(const std::string& slot, uint64_t version,
                         uint64_t fingerprint, CachedResult result) {
  Key key{slot, version, fingerprint};
  Shard& shard = ShardFor(key);
  Counters& counters = CountersFor(slot);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Concurrent misses on the same key both run the model; last writer
    // refreshes (both computed the same deterministic answer anyway).
    it->second->result = std::move(result);
    it->second->inserted_at = Clock::now();
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (!shard.seen.empty()) {
    // Second-hit admission: the first miss of a key only records its full
    // hash in the sketch (|1 so an empty cell never matches); the repeat
    // miss finds it and admits. A hot-swap resets nothing here — the
    // version is part of the key, so every key re-earns admission under
    // the new version, which is the conservative behaviour we want.
    const uint64_t h = static_cast<uint64_t>(KeyHash{}(key)) | 1ull;
    uint64_t& cell = shard.seen[h % shard.seen.size()];
    if (cell != h) {
      cell = h;
      total_.deferred.fetch_add(1, std::memory_order_relaxed);
      counters.deferred.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  shard.lru.push_front(Entry{std::move(key), std::move(result), Clock::now()});
  shard.index.emplace(shard.lru.front().key, shard.lru.begin());
  total_.inserts.fetch_add(1, std::memory_order_relaxed);
  counters.inserts.fetch_add(1, std::memory_order_relaxed);
  while (shard.lru.size() > per_shard_capacity_) {
    const Entry& victim = shard.lru.back();
    total_.evictions.fetch_add(1, std::memory_order_relaxed);
    CountersFor(victim.key.slot)
        .evictions.fetch_add(1, std::memory_order_relaxed);
    shard.index.erase(victim.key);
    shard.lru.pop_back();
  }
}

std::optional<std::vector<int>> ResultCache::LookupNegative(
    const std::string& slot, uint64_t fingerprint) {
  if (!NegativeEnabled()) return std::nullopt;
  Key key{slot, 0, fingerprint};
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) return std::nullopt;
  if (ExpiredAt(*it->second, Clock::now())) {
    shard.lru.erase(it->second);
    shard.index.erase(it);
    Counters& counters = CountersFor(slot);
    total_.expired.fetch_add(1, std::memory_order_relaxed);
    counters.expired.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  Counters& counters = CountersFor(slot);
  total_.negative_hits.fetch_add(1, std::memory_order_relaxed);
  counters.negative_hits.fetch_add(1, std::memory_order_relaxed);
  return it->second->result.items;
}

void ResultCache::InsertNegative(const std::string& slot, uint64_t fingerprint,
                                 std::vector<int> items) {
  if (!NegativeEnabled()) return;
  Key key{slot, 0, fingerprint};
  Shard& shard = ShardFor(key);
  Counters& counters = CountersFor(slot);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->result.items = std::move(items);
    it->second->inserted_at = Clock::now();
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  // No second-hit sketch here: the goal is absorbing the second arrival of
  // the same bad request, so the first rejection must already store.
  shard.lru.push_front(Entry{std::move(key),
                             CachedResult{std::move(items), "", 0},
                             Clock::now()});
  shard.index.emplace(shard.lru.front().key, shard.lru.begin());
  total_.negative_inserts.fetch_add(1, std::memory_order_relaxed);
  counters.negative_inserts.fetch_add(1, std::memory_order_relaxed);
  while (shard.lru.size() > per_shard_capacity_) {
    const Entry& victim = shard.lru.back();
    total_.evictions.fetch_add(1, std::memory_order_relaxed);
    CountersFor(victim.key.slot)
        .evictions.fetch_add(1, std::memory_order_relaxed);
    shard.index.erase(victim.key);
    shard.lru.pop_back();
  }
}

void ResultCache::ScheduleSweep(std::string slot, uint64_t live_version) {
  if (!policy_.enabled) return;
  {
    std::lock_guard<std::mutex> lock(sweep_mu_);
    if (stop_) return;
    pending_sweeps_.emplace_back(std::move(slot), live_version);
  }
  sweep_cv_.notify_one();
}

void ResultCache::DrainSweeps() {
  std::unique_lock<std::mutex> lock(sweep_mu_);
  sweep_idle_cv_.wait(
      lock, [this] { return pending_sweeps_.empty() && !sweep_active_; });
}

void ResultCache::SweeperLoop() {
  std::unique_lock<std::mutex> lock(sweep_mu_);
  for (;;) {
    sweep_cv_.wait(lock, [this] { return stop_ || !pending_sweeps_.empty(); });
    if (pending_sweeps_.empty()) {
      if (stop_) return;
      continue;
    }
    const auto [slot, live_version] = std::move(pending_sweeps_.front());
    pending_sweeps_.pop_front();
    sweep_active_ = true;
    lock.unlock();
    SweepSlot(slot, live_version);
    lock.lock();
    sweep_active_ = false;
    if (pending_sweeps_.empty()) sweep_idle_cv_.notify_all();
  }
}

void ResultCache::SweepSlot(const std::string& slot, uint64_t live_version) {
  const Clock::time_point now = Clock::now();
  for (std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto it = shard->lru.begin(); it != shard->lru.end();) {
      const bool dead_version =
          it->key.slot == slot && it->key.version != live_version;
      const bool aged_out = ExpiredAt(*it, now);
      if (!dead_version && !aged_out) {
        ++it;
        continue;
      }
      Counters& counters = CountersFor(it->key.slot);
      if (dead_version) {
        total_.swept.fetch_add(1, std::memory_order_relaxed);
        counters.swept.fetch_add(1, std::memory_order_relaxed);
      } else {
        total_.expired.fetch_add(1, std::memory_order_relaxed);
        counters.expired.fetch_add(1, std::memory_order_relaxed);
      }
      shard->index.erase(it->key);
      it = shard->lru.erase(it);
    }
  }
}

size_t ResultCache::size() const {
  size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

CacheStats ResultCache::StatsFor(const std::string& slot) const {
  std::lock_guard<std::mutex> lock(slots_mu_);
  const auto it = slot_counters_.find(slot);
  return it == slot_counters_.end() ? CacheStats{} : it->second->Snapshot();
}

}  // namespace rapid::serve
