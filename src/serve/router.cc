#include "serve/router.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "serve/snapshot.h"

namespace rapid::serve {

namespace {

RouterConfig Sanitized(RouterConfig cfg) {
  cfg.num_threads = std::max(cfg.num_threads, 1);
  cfg.max_batch = std::max(cfg.max_batch, 1);
  cfg.max_wait_us = std::max(cfg.max_wait_us, 0);
  cfg.queue_capacity = std::max(cfg.queue_capacity, 1);
  cfg.deadline_us = std::max<int64_t>(cfg.deadline_us, 0);
  return cfg;
}

}  // namespace

ServingRouter::ServingRouter(const data::Dataset& data, RouterConfig config)
    : data_(data),
      config_(Sanitized(config)),
      admission_(config_.admission, config_.queue_capacity),
      cache_(config_.cache),
      queue_(static_cast<size_t>(config_.queue_capacity), kNumLanes,
             admission_.config().high_bursts_per_low) {
  workers_.reserve(config_.num_threads);
  for (int i = 0; i < config_.num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ServingRouter::~ServingRouter() { Shutdown(); }

uint64_t ServingRouter::LoadSlot(const std::string& slot,
                                 const std::string& path) {
  // The expensive part of the swap — rebuilding the model from disk —
  // happens here on the caller's thread; workers keep answering from the
  // old version until the Publish below swaps the slot pointer.
  std::unique_ptr<rerank::NeuralReranker> model = Snapshot::LoadAny(path, data_);
  if (model == nullptr) return 0;
  if (!CanaryPasses(slot, path, *model)) {
    canary_rejected_.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }
  const uint64_t version = registry_.Publish(
      slot, WrapForSlot(slot, std::shared_ptr<const rerank::Reranker>(
                                  std::move(model))));
  // Entries cached under older versions became unreachable with the
  // publish (the version is part of the key); reclaim their memory.
  cache_.ScheduleSweep(slot, version);
  return version;
}

uint64_t ServingRouter::InstallSlot(
    const std::string& slot, std::shared_ptr<const rerank::Reranker> model) {
  if (model == nullptr) return 0;
  const uint64_t version = registry_.Publish(slot, WrapForSlot(slot, std::move(model)));
  cache_.ScheduleSweep(slot, version);
  return version;
}

void ServingRouter::SetSlotWrapper(const std::string& slot,
                                   ModelWrapper wrapper) {
  std::lock_guard<std::mutex> lock(wrapper_mu_);
  if (wrapper == nullptr) {
    wrappers_.erase(slot);
  } else {
    wrappers_[slot] = std::move(wrapper);
  }
}

bool ServingRouter::ClearSlotWrapper(const std::string& slot) {
  std::lock_guard<std::mutex> lock(wrapper_mu_);
  return wrappers_.erase(slot) > 0;
}

std::shared_ptr<const rerank::Reranker> ServingRouter::WrapForSlot(
    const std::string& slot,
    std::shared_ptr<const rerank::Reranker> model) const {
  ModelWrapper wrapper;
  {
    std::lock_guard<std::mutex> lock(wrapper_mu_);
    const auto it = wrappers_.find(slot);
    if (it == wrappers_.end()) return model;
    wrapper = it->second;  // Copied so the user callback runs unlocked.
  }
  std::shared_ptr<const rerank::Reranker> wrapped = wrapper(model);
  // A wrapper returning null must not turn a valid publish into an
  // unpublish; fall back to the unwrapped model.
  return wrapped != nullptr ? std::move(wrapped) : std::move(model);
}

bool ServingRouter::RemoveSlot(const std::string& slot) {
  if (!registry_.Remove(slot)) return false;
  cache_.ScheduleSweep(slot, /*live_version=*/0);
  return true;
}

void ServingRouter::SetCanary(const std::string& slot, CanaryProbe probe) {
  std::lock_guard<std::mutex> lock(canary_mu_);
  canaries_[slot] = std::move(probe);
}

bool ServingRouter::ClearCanary(const std::string& slot) {
  std::lock_guard<std::mutex> lock(canary_mu_);
  return canaries_.erase(slot) > 0;
}

bool ServingRouter::CanaryPasses(const std::string& slot,
                                 const std::string& path,
                                 const rerank::NeuralReranker& model) const {
  CanaryProbe probe;
  bool have_probe = false;
  {
    std::lock_guard<std::mutex> lock(canary_mu_);
    const auto it = canaries_.find(slot);
    if (it != canaries_.end()) {
      probe = it->second;
      have_probe = true;
    }
  }
  if (!have_probe) {
    // No explicit canary for the slot: fall back to the probe the snapshot
    // auto-recorded at save time (format v3+). A probe referencing entities
    // outside this serving dataset was recorded against a different world —
    // scoring it would index out of range — so it is treated as absent.
    if (!Snapshot::ReadCanary(path, &probe)) return true;
    if (probe.list.user_id < 0 ||
        static_cast<size_t>(probe.list.user_id) >= data_.users.size()) {
      return true;
    }
    for (int id : probe.list.items) {
      if (id < 0 || static_cast<size_t>(id) >= data_.items.size()) return true;
    }
  }
  const std::vector<float> scores = model.ScoreList(data_, probe.list);
  if (scores.size() != probe.expected_scores.size()) return false;
  for (size_t i = 0; i < scores.size(); ++i) {
    const float drift = std::fabs(scores[i] - probe.expected_scores[i]);
    // Negated comparison so NaN drift (corrupted weights can produce NaN
    // scores) fails the probe instead of slipping through.
    if (!(drift <= probe.tolerance)) return false;
  }
  return true;
}

void ServingRouter::DrainCacheMaintenance() { cache_.DrainSweeps(); }

void ServingRouter::WorkerLoop() {
  std::vector<PendingRequest> batch;
  batch.reserve(config_.max_batch);
  while (queue_.PopBatch(static_cast<size_t>(config_.max_batch),
                         std::chrono::microseconds(config_.max_wait_us),
                         &batch) > 0) {
    ProcessBatch(&batch);
    batch.clear();
  }
}

void ServingRouter::ProcessBatch(std::vector<PendingRequest>* batch) {
  // Triage: resolve each request's slot exactly once (the swap-consistency
  // invariant — attribution and cache inserts below reuse the same
  // resolved version) and peel off requests the model won't answer.
  // Survivors are grouped by resolved model so a dequeued batch mixing
  // slots, or racing a hot swap, still runs one batched forward per
  // distinct published model.
  const auto now = std::chrono::steady_clock::now();
  struct Group {
    std::shared_ptr<const ServedModel> served;
    std::vector<PendingRequest*> requests;
  };
  std::vector<Group> groups;
  for (PendingRequest& request : *batch) {
    // The request left the queue: its slot-quota charge is returned now,
    // before any processing, so the quota tracks queue depth only.
    if (request.charged) {
      admission_.ReleaseSlot(request.request.slot);
      request.charged = false;
    }
    const int64_t waited_us =
        std::chrono::duration_cast<std::chrono::microseconds>(
            now - request.enqueued_at)
            .count();
    std::shared_ptr<const ServedModel> served;
    if (!(config_.deadline_us > 0 && waited_us >= config_.deadline_us)) {
      served = registry_.Acquire(request.request.slot);
    }
    if (served == nullptr) {
      // Deadline blown or unknown slot: the per-request path owns the
      // fallback answer and its accounting.
      Process(&request);
      continue;
    }
    Group* group = nullptr;
    for (Group& g : groups) {
      if (g.served.get() == served.get()) {
        group = &g;
        break;
      }
    }
    if (group == nullptr) {
      groups.push_back({std::move(served), {}});
      group = &groups.back();
    }
    group->requests.push_back(&request);
  }

  for (Group& group : groups) {
    aggregate_metrics_.RecordBatch(static_cast<int>(group.requests.size()));
    group.served->metrics->RecordBatch(
        static_cast<int>(group.requests.size()));
    std::vector<const data::ImpressionList*> lists;
    lists.reserve(group.requests.size());
    for (const PendingRequest* request : group.requests) {
      lists.push_back(&request->request.list);
    }
    // Per-worker scratch kept warm across batches — the model's batched
    // path allocates nothing on the heap once this is sized.
    static thread_local std::vector<std::vector<int>> permutations;
    group.served->model->RerankBatchInto(data_, lists, &permutations);
    for (size_t i = 0; i < group.requests.size(); ++i) {
      PendingRequest* request = group.requests[i];
      RouterResponse response;
      // Copy out of the scratch; the response (and the cache insert below)
      // own their items independently of the reused buffer.
      response.items = permutations[i];
      response.model_name = group.served->model_name;
      response.model_version = group.served->version;
      if (request->cacheable) {
        cache_.Insert(request->request.slot, group.served->version,
                      request->fingerprint,
                      {response.items, group.served->model_name,
                       group.served->version});
      }
      response.latency_us =
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - request->enqueued_at)
              .count();
      const uint64_t latency = static_cast<uint64_t>(response.latency_us);
      aggregate_metrics_.RecordRequest(latency, /*fallback=*/false);
      group.served->metrics->RecordRequest(latency, /*fallback=*/false);
      request->promise.set_value(std::move(response));
    }
  }
}

std::vector<int> ServingRouter::FallbackRerank(
    const data::ImpressionList& list) const {
  const rerank::Reranker& fallback =
      config_.fallback == FallbackPolicy::kMmr
          ? static_cast<const rerank::Reranker&>(mmr_fallback_)
          : static_cast<const rerank::Reranker&>(init_fallback_);
  return fallback.Rerank(data_, list);
}

bool ServingRouter::ListInBounds(const data::ImpressionList& list) const {
  if (data_.users.empty() && data_.items.empty()) return true;
  if (list.user_id < 0 ||
      static_cast<size_t>(list.user_id) >= data_.users.size()) {
    return false;
  }
  if (list.scores.size() != list.items.size()) return false;
  for (const int item : list.items) {
    if (item < 0 || static_cast<size_t>(item) >= data_.items.size()) {
      return false;
    }
  }
  return true;
}

void ServingRouter::Process(PendingRequest* request, bool shed) {
  const auto now = std::chrono::steady_clock::now;
  const int64_t waited_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          now() - request->enqueued_at)
          .count();

  // Resolve the slot exactly once: everything below — the re-rank and the
  // attribution stamped on the response — uses this one published version,
  // even if a hot swap republishes the slot mid-flight.
  const std::shared_ptr<const ServedModel> served =
      registry_.Acquire(request->request.slot);
  const bool deadline_blown =
      config_.deadline_us > 0 && waited_us >= config_.deadline_us;

  RouterResponse response;
  if (shed || deadline_blown || served == nullptr) {
    response.items = FallbackRerank(request->request.list);
    response.degraded = true;
    response.shed = shed;
    if (!shed && !deadline_blown && served == nullptr) {
      unknown_slot_.fetch_add(1, std::memory_order_relaxed);
      // Remember the rejection so a replay of the same bad request is
      // answered inline at submit time. The fingerprint was computed on
      // the submit path (negative lookups precede everything else there).
      if (cache_.NegativeEnabled()) {
        cache_.InsertNegative(request->request.slot, request->fingerprint,
                              response.items);
      }
    }
  } else {
    response.items = served->model->Rerank(data_, request->request.list);
    response.model_name = served->model_name;
    response.model_version = served->version;
    if (request->cacheable) {
      // Keyed under the version that actually answered — which may already
      // be newer than the one probed at submit time if a swap landed in
      // between. Either way the (version, items) pair is consistent.
      cache_.Insert(request->request.slot, served->version,
                    request->fingerprint,
                    {response.items, served->model_name, served->version});
    }
  }

  response.latency_us = std::chrono::duration_cast<std::chrono::microseconds>(
                            now() - request->enqueued_at)
                            .count();
  const uint64_t latency = static_cast<uint64_t>(response.latency_us);
  aggregate_metrics_.RecordRequest(latency, response.degraded);
  if (shed) aggregate_metrics_.RecordShed();
  if (served != nullptr) {
    served->metrics->RecordRequest(latency, response.degraded);
    if (shed) served->metrics->RecordShed();
  }
  request->promise.set_value(std::move(response));
}

std::future<RouterResponse> ServingRouter::Submit(RouterRequest request) {
  PendingRequest pending;
  pending.request = std::move(request);
  pending.enqueued_at = std::chrono::steady_clock::now();
  std::future<RouterResponse> future = pending.promise.get_future();

  // Replayed bad traffic first: a (slot, list) pair the router already
  // rejected — invalid ids or an unknown slot — is answered from the
  // negative cache before re-running the bounds check or occupying a
  // queue slot for the fallback heuristic.
  if (cache_.NegativeEnabled()) {
    pending.fingerprint = ResultCache::Fingerprint(pending.request.list);
    std::optional<std::vector<int>> remembered =
        cache_.LookupNegative(pending.request.slot, pending.fingerprint);
    if (remembered.has_value()) {
      RouterResponse response;
      response.items = std::move(*remembered);
      response.degraded = true;
      response.cache_hit = true;
      response.latency_us =
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - pending.enqueued_at)
              .count();
      aggregate_metrics_.RecordRequest(
          static_cast<uint64_t>(response.latency_us), /*fallback=*/true);
      pending.promise.set_value(std::move(response));
      return future;
    }
  }

  // Defensive bounds check on caller-supplied ids: a networked caller can
  // put anything on the wire, and an out-of-range user or item id would
  // index past the model's embedding tables. Such requests are answered
  // with the candidates in submitted order — the only id-agnostic answer —
  // and never reach a model or fallback heuristic. Datasets without users
  // or items (heuristic-only setups) have no id universe to check against.
  if (!ListInBounds(pending.request.list)) {
    invalid_ids_.fetch_add(1, std::memory_order_relaxed);
    RouterResponse response;
    response.items = pending.request.list.items;
    response.degraded = true;
    if (cache_.NegativeEnabled()) {
      cache_.InsertNegative(pending.request.slot, pending.fingerprint,
                            response.items);
    }
    response.latency_us =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - pending.enqueued_at)
            .count();
    aggregate_metrics_.RecordRequest(static_cast<uint64_t>(response.latency_us),
                                     /*fallback=*/true);
    pending.promise.set_value(std::move(response));
    return future;
  }

  if (shutdown_.load(std::memory_order_acquire)) {
    // Serve inline on the caller's thread so no submission is ever lost.
    // The inline path always runs the model (no cache lookup or insert).
    Process(&pending);
    return future;
  }

  if (cache_.enabled()) {
    if (!cache_.EnabledFor(pending.request.slot)) {
      cache_.RecordBypass(pending.request.slot);
    } else if (const std::shared_ptr<const ServedModel> served =
                   registry_.Acquire(pending.request.slot);
               served != nullptr) {
      // Probe under the version published right now. A swap racing this
      // lookup is harmless: the response is stamped with the same version
      // whose cached output it carries, exactly as if the request had been
      // processed an instant before the swap.
      if (pending.fingerprint == 0) {
        pending.fingerprint = ResultCache::Fingerprint(pending.request.list);
      }
      pending.cacheable = true;
      std::optional<ResultCache::CachedResult> hit = cache_.Lookup(
          pending.request.slot, served->version, pending.fingerprint);
      if (hit.has_value()) {
        RouterResponse response;
        response.items = std::move(hit->items);
        response.model_name = std::move(hit->model_name);
        response.model_version = hit->model_version;
        response.cache_hit = true;
        response.latency_us =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - pending.enqueued_at)
                .count();
        const uint64_t latency = static_cast<uint64_t>(response.latency_us);
        aggregate_metrics_.RecordRequest(latency, /*fallback=*/false);
        served->metrics->RecordRequest(latency, /*fallback=*/false);
        pending.promise.set_value(std::move(response));
        return future;
      }
    }
  }

  const size_t lane = pending.request.lane == Lane::kHigh ? 0 : 1;
  if (!admission_.Admit(pending.request.lane, queue_.size())) {
    Process(&pending, /*shed=*/true);
    return future;
  }
  // Per-slot quota, independent of the global policy: one tenant's burst
  // is shed at its own budget even while the shared queue has room.
  if (!admission_.TryChargeSlot(pending.request.slot)) {
    quota_shed_.fetch_add(1, std::memory_order_relaxed);
    Process(&pending, /*shed=*/true);
    return future;
  }
  pending.charged = admission_.has_quotas();

  using PushResult = BoundedRequestQueue<PendingRequest>::PushResult;
  PushResult result;
  if (admission_.config().policy == AdmissionPolicy::kShed) {
    // Shed mode never blocks: losing the TryPush race to capacity is the
    // same signal as the watermark.
    result = queue_.TryPush(std::move(pending), lane);
  } else if (config_.deadline_us > 0) {
    const auto deadline =
        pending.enqueued_at + std::chrono::microseconds(config_.deadline_us);
    result = queue_.PushUntil(std::move(pending), deadline, lane);
  } else {
    result = queue_.Push(std::move(pending), lane) ? PushResult::kOk
                                                   : PushResult::kClosed;
  }

  switch (result) {
    case PushResult::kOk:
      aggregate_metrics_.RecordQueueDepth(static_cast<int>(queue_.size()));
      break;
    case PushResult::kFull:
      // Shed mode: full queue. Block mode: the deadline elapsed while the
      // producer waited, so the request is already past saving — answer
      // with the fallback instead of the model. Either way the request
      // never entered the queue, so its quota charge comes back here.
      if (pending.charged) {
        admission_.ReleaseSlot(pending.request.slot);
        pending.charged = false;
      }
      Process(&pending,
              /*shed=*/admission_.config().policy == AdmissionPolicy::kShed);
      break;
    case PushResult::kClosed:
      if (pending.charged) {
        admission_.ReleaseSlot(pending.request.slot);
        pending.charged = false;
      }
      Process(&pending);
      break;
  }
  return future;
}

void ServingRouter::Shutdown() {
  if (shutdown_.exchange(true)) return;
  queue_.Close();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

RouterStats ServingRouter::stats() const {
  RouterStats out;
  out.total = aggregate_metrics_.Snapshot();
  out.cache = cache_.TotalStats();
  out.unknown_slot = unknown_slot_.load(std::memory_order_relaxed);
  out.invalid_ids = invalid_ids_.load(std::memory_order_relaxed);
  out.canary_rejected = canary_rejected_.load(std::memory_order_relaxed);
  out.quota_shed = quota_shed_.load(std::memory_order_relaxed);
  for (const std::string& name : registry_.Names()) {
    const auto served = registry_.Acquire(name);
    if (served == nullptr) continue;  // Removed since Names().
    out.slots.push_back({name, served->model_name, served->version,
                         served->metrics->Snapshot(), cache_.StatsFor(name)});
  }
  return out;
}

std::string RouterStats::ToTable() const {
  std::string out = "aggregate:\n" + total.ToTable() + cache.ToTable();
  char line[256];
  std::snprintf(line, sizeof(line),
                "  unknown slot    %10llu\n"
                "  invalid ids     %10llu\n"
                "  canary rejected %10llu\n"
                "  quota shed      %10llu\n",
                static_cast<unsigned long long>(unknown_slot),
                static_cast<unsigned long long>(invalid_ids),
                static_cast<unsigned long long>(canary_rejected),
                static_cast<unsigned long long>(quota_shed));
  out += line;
  if (has_net) out += net.ToTable();
  if (has_online) out += online.ToTable();
  if (has_page) out += page.ToTable();
  for (const SlotEntry& slot : slots) {
    std::snprintf(line, sizeof(line), "slot %s (%s v%llu):\n",
                  slot.slot.c_str(), slot.model_name.c_str(),
                  static_cast<unsigned long long>(slot.version));
    out += line;
    out += slot.stats.ToTable();
    out += slot.cache.ToTable();
  }
  return out;
}

std::string RouterStats::ToJson() const {
  std::string out = "{\"total\": " + total.ToJson();
  out += ", \"cache\": " + cache.ToJson();
  if (has_net) out += ", \"net\": " + net.ToJson();
  if (has_online) out += ", \"online\": " + online.ToJson();
  if (has_page) out += ", \"page\": " + page.ToJson();
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                ", \"unknown_slot\": %llu, \"invalid_ids\": %llu, "
                "\"canary_rejected\": %llu, \"quota_shed\": %llu, "
                "\"slots\": {",
                static_cast<unsigned long long>(unknown_slot),
                static_cast<unsigned long long>(invalid_ids),
                static_cast<unsigned long long>(canary_rejected),
                static_cast<unsigned long long>(quota_shed));
  out += buf;
  bool first = true;
  for (const SlotEntry& slot : slots) {
    std::snprintf(buf, sizeof(buf), "%s\"%s\": {\"model\": \"%s\", "
                  "\"version\": %llu, \"stats\": ",
                  first ? "" : ", ", slot.slot.c_str(),
                  slot.model_name.c_str(),
                  static_cast<unsigned long long>(slot.version));
    out += buf;
    out += slot.stats.ToJson();
    out += ", \"cache\": " + slot.cache.ToJson();
    out += "}";
    first = false;
  }
  out += "}}";
  return out;
}

}  // namespace rapid::serve
