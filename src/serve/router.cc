#include "serve/router.h"

#include <algorithm>
#include <cstdio>

#include "serve/snapshot.h"

namespace rapid::serve {

namespace {

RouterConfig Sanitized(RouterConfig cfg) {
  cfg.num_threads = std::max(cfg.num_threads, 1);
  cfg.max_batch = std::max(cfg.max_batch, 1);
  cfg.max_wait_us = std::max(cfg.max_wait_us, 0);
  cfg.queue_capacity = std::max(cfg.queue_capacity, 1);
  cfg.deadline_us = std::max<int64_t>(cfg.deadline_us, 0);
  return cfg;
}

}  // namespace

ServingRouter::ServingRouter(const data::Dataset& data, RouterConfig config)
    : data_(data),
      config_(Sanitized(config)),
      admission_(config_.admission, config_.queue_capacity),
      queue_(static_cast<size_t>(config_.queue_capacity), kNumLanes,
             admission_.config().high_bursts_per_low) {
  workers_.reserve(config_.num_threads);
  for (int i = 0; i < config_.num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ServingRouter::~ServingRouter() { Shutdown(); }

uint64_t ServingRouter::LoadSlot(const std::string& slot,
                                 const std::string& path) {
  // The expensive part of the swap — rebuilding the model from disk —
  // happens here on the caller's thread; workers keep answering from the
  // old version until the Publish below swaps the slot pointer.
  std::shared_ptr<const rerank::Reranker> model =
      Snapshot::LoadAny(path, data_);
  if (model == nullptr) return 0;
  return registry_.Publish(slot, std::move(model));
}

uint64_t ServingRouter::InstallSlot(
    const std::string& slot, std::shared_ptr<const rerank::Reranker> model) {
  if (model == nullptr) return 0;
  return registry_.Publish(slot, std::move(model));
}

bool ServingRouter::RemoveSlot(const std::string& slot) {
  return registry_.Remove(slot);
}

void ServingRouter::WorkerLoop() {
  std::vector<PendingRequest> batch;
  batch.reserve(config_.max_batch);
  while (queue_.PopBatch(static_cast<size_t>(config_.max_batch),
                         std::chrono::microseconds(config_.max_wait_us),
                         &batch) > 0) {
    for (PendingRequest& request : batch) Process(&request);
    batch.clear();
  }
}

std::vector<int> ServingRouter::FallbackRerank(
    const data::ImpressionList& list) const {
  const rerank::Reranker& fallback =
      config_.fallback == FallbackPolicy::kMmr
          ? static_cast<const rerank::Reranker&>(mmr_fallback_)
          : static_cast<const rerank::Reranker&>(init_fallback_);
  return fallback.Rerank(data_, list);
}

void ServingRouter::Process(PendingRequest* request, bool shed) {
  const auto now = std::chrono::steady_clock::now;
  const int64_t waited_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          now() - request->enqueued_at)
          .count();

  // Resolve the slot exactly once: everything below — the re-rank and the
  // attribution stamped on the response — uses this one published version,
  // even if a hot swap republishes the slot mid-flight.
  const std::shared_ptr<const ServedModel> served =
      registry_.Acquire(request->request.slot);
  const bool deadline_blown =
      config_.deadline_us > 0 && waited_us >= config_.deadline_us;

  RouterResponse response;
  if (shed || deadline_blown || served == nullptr) {
    response.items = FallbackRerank(request->request.list);
    response.degraded = true;
    response.shed = shed;
    if (!shed && !deadline_blown && served == nullptr) {
      unknown_slot_.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    response.items = served->model->Rerank(data_, request->request.list);
    response.model_name = served->model_name;
    response.model_version = served->version;
  }

  response.latency_us = std::chrono::duration_cast<std::chrono::microseconds>(
                            now() - request->enqueued_at)
                            .count();
  const uint64_t latency = static_cast<uint64_t>(response.latency_us);
  aggregate_metrics_.RecordRequest(latency, response.degraded);
  if (shed) aggregate_metrics_.RecordShed();
  if (served != nullptr) {
    served->metrics->RecordRequest(latency, response.degraded);
    if (shed) served->metrics->RecordShed();
  }
  request->promise.set_value(std::move(response));
}

std::future<RouterResponse> ServingRouter::Submit(RouterRequest request) {
  PendingRequest pending;
  pending.request = std::move(request);
  pending.enqueued_at = std::chrono::steady_clock::now();
  std::future<RouterResponse> future = pending.promise.get_future();

  if (shutdown_.load(std::memory_order_acquire)) {
    // Serve inline on the caller's thread so no submission is ever lost.
    Process(&pending);
    return future;
  }

  const size_t lane = pending.request.lane == Lane::kHigh ? 0 : 1;
  if (!admission_.Admit(pending.request.lane, queue_.size())) {
    Process(&pending, /*shed=*/true);
    return future;
  }

  using PushResult = BoundedRequestQueue<PendingRequest>::PushResult;
  PushResult result;
  if (admission_.config().policy == AdmissionPolicy::kShed) {
    // Shed mode never blocks: losing the TryPush race to capacity is the
    // same signal as the watermark.
    result = queue_.TryPush(std::move(pending), lane);
  } else if (config_.deadline_us > 0) {
    const auto deadline =
        pending.enqueued_at + std::chrono::microseconds(config_.deadline_us);
    result = queue_.PushUntil(std::move(pending), deadline, lane);
  } else {
    result = queue_.Push(std::move(pending), lane) ? PushResult::kOk
                                                   : PushResult::kClosed;
  }

  switch (result) {
    case PushResult::kOk:
      aggregate_metrics_.RecordQueueDepth(static_cast<int>(queue_.size()));
      break;
    case PushResult::kFull:
      // Shed mode: full queue. Block mode: the deadline elapsed while the
      // producer waited, so the request is already past saving — answer
      // with the fallback instead of the model.
      Process(&pending,
              /*shed=*/admission_.config().policy == AdmissionPolicy::kShed);
      break;
    case PushResult::kClosed:
      Process(&pending);
      break;
  }
  return future;
}

void ServingRouter::Shutdown() {
  if (shutdown_.exchange(true)) return;
  queue_.Close();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

RouterStats ServingRouter::stats() const {
  RouterStats out;
  out.total = aggregate_metrics_.Snapshot();
  out.unknown_slot = unknown_slot_.load(std::memory_order_relaxed);
  for (const std::string& name : registry_.Names()) {
    const auto served = registry_.Acquire(name);
    if (served == nullptr) continue;  // Removed since Names().
    out.slots.push_back({name, served->model_name, served->version,
                         served->metrics->Snapshot()});
  }
  return out;
}

std::string RouterStats::ToTable() const {
  std::string out = "aggregate:\n" + total.ToTable();
  char line[256];
  std::snprintf(line, sizeof(line), "  unknown slot    %10llu\n",
                static_cast<unsigned long long>(unknown_slot));
  out += line;
  for (const SlotEntry& slot : slots) {
    std::snprintf(line, sizeof(line), "slot %s (%s v%llu):\n",
                  slot.slot.c_str(), slot.model_name.c_str(),
                  static_cast<unsigned long long>(slot.version));
    out += line;
    out += slot.stats.ToTable();
  }
  return out;
}

std::string RouterStats::ToJson() const {
  std::string out = "{\"total\": " + total.ToJson();
  char buf[128];
  std::snprintf(buf, sizeof(buf), ", \"unknown_slot\": %llu, \"slots\": {",
                static_cast<unsigned long long>(unknown_slot));
  out += buf;
  bool first = true;
  for (const SlotEntry& slot : slots) {
    std::snprintf(buf, sizeof(buf), "%s\"%s\": {\"model\": \"%s\", "
                  "\"version\": %llu, \"stats\": ",
                  first ? "" : ", ", slot.slot.c_str(),
                  slot.model_name.c_str(),
                  static_cast<unsigned long long>(slot.version));
    out += buf;
    out += slot.stats.ToJson();
    out += "}";
    first = false;
  }
  out += "}}";
  return out;
}

}  // namespace rapid::serve
