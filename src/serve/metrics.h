#ifndef RAPID_SERVE_METRICS_H_
#define RAPID_SERVE_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace rapid::serve {

/// A point-in-time summary of a `ServingMetrics` instance, safe to copy
/// around and render after the engine has been shut down.
struct ServingStats {
  /// Size of the fixed realized-batch-size histogram: bin `i` counts
  /// model-bound batches of exactly `i + 1` requests; the last bin absorbs
  /// everything at or above `kBatchHistBins`.
  static constexpr int kBatchHistBins = 16;

  /// Latency histogram geometry (HDR-style: 32 octaves x 8 sub-buckets,
  /// ~9% relative error). The raw bucket counts travel with the snapshot
  /// so fleet merges can sum histograms and recompute exact percentiles
  /// instead of averaging per-shard percentile points.
  static constexpr int kLatencySubBucketBits = 3;
  static constexpr int kLatencyHistBins = 32 << kLatencySubBucketBits;

  /// Bucket index for a latency sample, in microseconds.
  static int LatencyBucketIndex(uint64_t us);
  /// Representative (lower-bound) latency of a bucket, in microseconds.
  static double LatencyBucketValue(int index);

  /// Completed requests (including degraded and shed ones).
  uint64_t requests = 0;
  /// Requests answered by the fallback heuristic after a deadline miss.
  uint64_t fallbacks = 0;
  /// Requests rejected by admission control (load shedding) and answered
  /// immediately by the fallback heuristic instead of entering the queue.
  uint64_t shed = 0;
  /// End-to-end (submit -> response ready) latency percentiles, in
  /// microseconds. Bucketed with ~9% resolution; 0 when no requests.
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double mean_us = 0.0;
  uint64_t max_us = 0;
  /// Highest queue depth observed at submit time.
  int max_queue_depth = 0;
  /// Model-bound micro-batches executed via the batched forward path
  /// (`Reranker::RerankBatch`), including size-1 batches.
  uint64_t batches = 0;
  /// Requests served through those batches (sum of realized batch sizes).
  uint64_t batched_lists = 0;
  /// Largest realized batch.
  int max_batch_size = 0;
  /// Realized batch-size distribution; see `kBatchHistBins`.
  std::array<uint64_t, kBatchHistBins> batch_size_hist{};
  /// Raw latency bucket counts (see `kLatencyHistBins`). All zero for
  /// stats that predate histogram transport (old wire peers); consumers
  /// must fall back to the precomputed percentile points then.
  std::array<uint64_t, kLatencyHistBins> latency_hist{};

  /// Process-wide scratch-arena telemetry (see nn/arena.h), captured at
  /// `Snapshot()` time from `nn::arena::GlobalArenaStats()`. The
  /// steady-state invariant the counters make observable: once every
  /// worker's first batch has warmed its arena, `arena_heap_allocs` and
  /// `arena_chunk_mallocs` stop moving while `arena_allocs` keeps growing.
  /// Process-local gauges — not merged over the wire (remote snapshots
  /// report zeros).
  uint64_t arena_heap_allocs = 0;
  /// Bump allocations served from thread arenas (inference temporaries).
  uint64_t arena_allocs = 0;
  /// 1 MiB chunk mallocs backing the arenas (growth events).
  uint64_t arena_chunk_mallocs = 0;
  /// Bytes currently reserved by all thread arenas.
  uint64_t arena_reserved_bytes = 0;
  /// Peak bytes live inside any single arena scope, process lifetime.
  uint64_t arena_high_water_bytes = 0;

  /// True when `latency_hist` carries at least one sample.
  bool HasLatencyHist() const;
  /// Recomputes p50/p95/p99 from `latency_hist`. No-op when the
  /// histogram is empty (keeps whatever percentile points were set).
  void RecomputeLatencyPercentiles();

  /// Two-column human-readable table.
  std::string ToTable() const;
  /// Flat JSON object (no trailing newline), e.g. for bench output.
  std::string ToJson() const;
};

/// Point-in-time counters of the router-level result cache (see
/// serve/result_cache.h), reported per slot and in aggregate by
/// `RouterStats`. All zero when caching is disabled.
struct CacheStats {
  /// Lookups answered from the cache (inline, bypassing the queue).
  uint64_t hits = 0;
  /// Lookups that found no usable entry (absent, expired, or dead).
  uint64_t misses = 0;
  /// Entries written after a model answered a cache miss.
  uint64_t inserts = 0;
  /// Entries displaced by the LRU capacity bound.
  uint64_t evictions = 0;
  /// Entries discarded because their TTL elapsed.
  uint64_t expired = 0;
  /// Requests that skipped the cache entirely (slot on the bypass list).
  uint64_t bypass = 0;
  /// Dead-version entries reclaimed by the background sweep after a swap.
  uint64_t swept = 0;
  /// Results not stored because their key had not been seen before
  /// (`CachePolicy::admit_on_second_hit`): the first miss only records a
  /// sighting; a repeat miss admits. 0 when the policy is off.
  uint64_t deferred = 0;
  /// Rejected requests (unknown slot / invalid ids) answered from the
  /// negative cache instead of re-running the bounds check or the
  /// fallback heuristic. Not part of `hit_rate()` — every submission
  /// probes the negative side when the policy is on, and counting those
  /// probes as misses would wreck the positive hit rate.
  uint64_t negative_hits = 0;
  /// Degraded answers remembered by the negative cache.
  uint64_t negative_inserts = 0;

  /// hits / (hits + misses); 0 when no lookups happened.
  double hit_rate() const;
  /// Two-column human-readable block matching `ServingStats::ToTable`.
  std::string ToTable() const;
  /// Flat JSON object (no trailing newline).
  std::string ToJson() const;
};

/// Point-in-time counters of the network front-end (`net::Server`),
/// surfaced through `RouterStats::net` when a server wraps the router.
/// Defined here (not in net/) so `RouterStats` can embed and render it
/// without the serve layer depending on sockets.
struct NetStats {
  /// Connections accepted over the server's lifetime.
  uint64_t connections_accepted = 0;
  /// Currently open connections.
  uint64_t connections_active = 0;
  /// Accepts refused because `max_connections` were already open.
  uint64_t connections_rejected = 0;
  /// Connections closed for crossing an idle timeout.
  uint64_t closed_idle = 0;
  /// Slow clients disconnected: write buffer over the cap, or no write
  /// progress for the stall timeout while responses were pending.
  uint64_t closed_slow = 0;
  /// Connections closed because framing was lost (bad magic/version or an
  /// oversized length) — the codec rejected the stream, not a crash.
  uint64_t closed_protocol_error = 0;
  /// Well-framed score requests parsed off the wire.
  uint64_t frames_in = 0;
  /// Response frames fully written to a socket.
  uint64_t frames_out = 0;
  /// Error frames sent for malformed-but-framed payloads / unknown types.
  uint64_t error_frames_out = 0;
  /// Frames whose payload failed strict decoding (connection survives).
  uint64_t decode_errors = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  /// Responses whose connection was gone when they completed (slow-client
  /// or error disconnects only — a graceful drain keeps this at 0).
  uint64_t dropped_responses = 0;
  /// Stats scrapes (`kStatsRequest` frames) parsed off the wire.
  uint64_t stats_frames = 0;
  /// Remote load requests (`kLoadSlotRequest` frames) parsed off the
  /// wire, counting refused ones (remote load disabled).
  uint64_t load_frames = 0;
  /// Feedback frames (`kFeedback`) parsed off the wire, counting ones
  /// refused because no feedback log was configured.
  uint64_t feedback_frames = 0;
  /// Peak in-flight requests observed on any single connection.
  int max_inflight_per_conn = 0;

  /// Two-column human-readable block matching `ServingStats::ToTable`.
  std::string ToTable() const;
  /// Flat JSON object (no trailing newline).
  std::string ToJson() const;
};

/// Point-in-time counters of the online learning loop (`src/online/`:
/// feedback log + background trainer), surfaced through
/// `RouterStats::online` when the loop wraps a router. Defined here for
/// the same reason as `NetStats`: the serve layer embeds and renders the
/// numbers without depending on the online subsystem.
struct OnlineStats {
  /// Feedback events accepted into the bounded log.
  uint64_t feedback_appended = 0;
  /// Feedback events rejected because the log was full (or closed).
  uint64_t feedback_dropped = 0;
  /// Feedback events handed to a drainer (the trainer).
  uint64_t feedback_drained = 0;
  /// Fine-tune rounds the trainer completed.
  uint64_t train_rounds = 0;
  /// Feedback lists consumed across those rounds.
  uint64_t trained_lists = 0;
  /// Snapshots published through the canary-guarded `LoadSlot` path.
  uint64_t publishes = 0;
  /// Publish attempts rejected (canary failure or snapshot I/O error);
  /// the previous version kept serving.
  uint64_t publish_rejected = 0;
  /// Publish cadences skipped because no new feedback had arrived.
  uint64_t publish_skipped = 0;
  /// Slot version of the newest accepted publish (0 before the first).
  uint64_t last_published_version = 0;

  /// Two-column human-readable block matching `ServingStats::ToTable`.
  std::string ToTable() const;
  /// Flat JSON object (no trailing newline).
  std::string ToJson() const;
};

/// Point-in-time counters of the page-level reranking path (`src/page/`
/// served through `net::Server`'s `kPageRequest` dispatch), surfaced
/// through `RouterStats::page` when a network front-end serves pages.
/// Defined here for the same reason as `NetStats`: the serve layer embeds
/// and renders the numbers without depending on the page subsystem.
struct PageStats {
  /// Size of the fixed lists-per-page histogram: bin `i` counts pages
  /// carrying exactly `i + 1` lists; the last bin absorbs everything at or
  /// above `kListsHistBins`.
  static constexpr int kListsHistBins = 8;

  /// Page requests served end to end (one `kPageRequest` frame each).
  uint64_t pages = 0;
  /// Candidate lists carried by those pages (sum of lists per page).
  uint64_t page_lists = 0;
  /// Pages served with the joint cross-list pass (the rest ran the
  /// independent per-list baseline the caller requested).
  uint64_t joint_pages = 0;
  /// Pages with at least one degraded list (fallback answered) — the
  /// cross-list pass is skipped and the router's per-list orders returned.
  uint64_t degraded_pages = 0;
  /// Lists-per-page distribution; see `kListsHistBins`.
  std::array<uint64_t, kListsHistBins> lists_per_page_hist{};
  /// Cross-list redundancy observed on served pages, accumulated in
  /// milli-topics (1000 x the mean-topic coverage mass duplicated across
  /// sibling lists; see `page::CrossListRedundancy`).
  uint64_t redundancy_millitopics = 0;
  /// Largest page seen, in lists.
  int max_lists_per_page = 0;

  /// Two-column human-readable block matching `ServingStats::ToTable`.
  std::string ToTable() const;
  /// Flat JSON object (no trailing newline).
  std::string ToJson() const;
};

/// Lock-free serving-side metrics: request/fallback/shed counters, an
/// HDR-style log-bucketed latency histogram (32 octaves x 8 sub-buckets,
/// ~9% relative error), and a max queue-depth gauge. All recording methods
/// are safe to call concurrently from workers and submitters; `Snapshot`
/// may race with recording and yields a merely slightly stale view.
class ServingMetrics {
 public:
  /// Records one completed request with its end-to-end latency.
  void RecordRequest(uint64_t latency_us, bool fallback);

  /// Records one request shed by admission control (call in addition to
  /// `RecordRequest` for the fallback answer it received).
  void RecordShed();

  /// Records the queue depth seen when a request was enqueued.
  void RecordQueueDepth(int depth);

  /// Records one model-bound micro-batch of `size` requests executed
  /// through the batched forward path (size-1 batches included — the
  /// distribution shows how well batching amortizes under real load).
  void RecordBatch(int size);

  /// Summarizes counters and percentile estimates.
  ServingStats Snapshot() const;

 private:
  // Bucket geometry lives on ServingStats so snapshots can carry the raw
  // histogram across the wire and mergers can recompute percentiles.
  static constexpr int kSubBucketBits = ServingStats::kLatencySubBucketBits;
  static constexpr int kNumBuckets = ServingStats::kLatencyHistBins;

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> fallbacks_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> total_us_{0};
  std::atomic<uint64_t> max_us_{0};
  std::atomic<int> max_queue_depth_{0};
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> batched_lists_{0};
  std::atomic<int> max_batch_size_{0};
  std::array<std::atomic<uint64_t>, ServingStats::kBatchHistBins>
      batch_hist_{};
};

}  // namespace rapid::serve

#endif  // RAPID_SERVE_METRICS_H_
