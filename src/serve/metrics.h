#ifndef RAPID_SERVE_METRICS_H_
#define RAPID_SERVE_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace rapid::serve {

/// A point-in-time summary of a `ServingMetrics` instance, safe to copy
/// around and render after the engine has been shut down.
struct ServingStats {
  /// Completed requests (including degraded and shed ones).
  uint64_t requests = 0;
  /// Requests answered by the fallback heuristic after a deadline miss.
  uint64_t fallbacks = 0;
  /// Requests rejected by admission control (load shedding) and answered
  /// immediately by the fallback heuristic instead of entering the queue.
  uint64_t shed = 0;
  /// End-to-end (submit -> response ready) latency percentiles, in
  /// microseconds. Bucketed with ~9% resolution; 0 when no requests.
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double mean_us = 0.0;
  uint64_t max_us = 0;
  /// Highest queue depth observed at submit time.
  int max_queue_depth = 0;

  /// Two-column human-readable table.
  std::string ToTable() const;
  /// Flat JSON object (no trailing newline), e.g. for bench output.
  std::string ToJson() const;
};

/// Point-in-time counters of the router-level result cache (see
/// serve/result_cache.h), reported per slot and in aggregate by
/// `RouterStats`. All zero when caching is disabled.
struct CacheStats {
  /// Lookups answered from the cache (inline, bypassing the queue).
  uint64_t hits = 0;
  /// Lookups that found no usable entry (absent, expired, or dead).
  uint64_t misses = 0;
  /// Entries written after a model answered a cache miss.
  uint64_t inserts = 0;
  /// Entries displaced by the LRU capacity bound.
  uint64_t evictions = 0;
  /// Entries discarded because their TTL elapsed.
  uint64_t expired = 0;
  /// Requests that skipped the cache entirely (slot on the bypass list).
  uint64_t bypass = 0;
  /// Dead-version entries reclaimed by the background sweep after a swap.
  uint64_t swept = 0;

  /// hits / (hits + misses); 0 when no lookups happened.
  double hit_rate() const;
  /// Two-column human-readable block matching `ServingStats::ToTable`.
  std::string ToTable() const;
  /// Flat JSON object (no trailing newline).
  std::string ToJson() const;
};

/// Lock-free serving-side metrics: request/fallback/shed counters, an
/// HDR-style log-bucketed latency histogram (32 octaves x 8 sub-buckets,
/// ~9% relative error), and a max queue-depth gauge. All recording methods
/// are safe to call concurrently from workers and submitters; `Snapshot`
/// may race with recording and yields a merely slightly stale view.
class ServingMetrics {
 public:
  /// Records one completed request with its end-to-end latency.
  void RecordRequest(uint64_t latency_us, bool fallback);

  /// Records one request shed by admission control (call in addition to
  /// `RecordRequest` for the fallback answer it received).
  void RecordShed();

  /// Records the queue depth seen when a request was enqueued.
  void RecordQueueDepth(int depth);

  /// Summarizes counters and percentile estimates.
  ServingStats Snapshot() const;

 private:
  static constexpr int kSubBucketBits = 3;  // 8 sub-buckets per octave.
  static constexpr int kNumBuckets = 32 << kSubBucketBits;

  static int BucketIndex(uint64_t us);
  /// Representative (lower-bound) latency of a bucket, in microseconds.
  static double BucketValue(int index);

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> fallbacks_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> total_us_{0};
  std::atomic<uint64_t> max_us_{0};
  std::atomic<int> max_queue_depth_{0};
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
};

}  // namespace rapid::serve

#endif  // RAPID_SERVE_METRICS_H_
