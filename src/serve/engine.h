#ifndef RAPID_SERVE_ENGINE_H_
#define RAPID_SERVE_ENGINE_H_

#include <atomic>
#include <chrono>
#include <future>
#include <optional>
#include <thread>
#include <vector>

#include "datagen/types.h"
#include "rerank/mmr.h"
#include "rerank/reranker.h"
#include "serve/metrics.h"
#include "serve/request_queue.h"

namespace rapid::serve {

/// Which cheap heuristic answers a request once its deadline has passed
/// (graceful degradation): the untouched initial ranking, or a greedy MMR
/// pass that at least diversifies.
enum class FallbackPolicy { kInitialOrder, kMmr };

struct ServingConfig {
  /// Fixed worker pool size.
  int num_threads = 4;
  /// Requests a worker pulls per micro-batch.
  int max_batch = 8;
  /// After the first request of a batch is dequeued, how long a worker
  /// waits for the batch to fill before running it. 0 = run immediately.
  int max_wait_us = 200;
  /// Bounded request queue capacity; `Submit` blocks when full (at most
  /// `deadline_us` when a deadline is set), `TrySubmit` never blocks.
  int queue_capacity = 1024;
  /// Per-request deadline measured from `Submit`. A request dequeued after
  /// its deadline is answered by the fallback heuristic instead of the
  /// model and counted in `ServingStats::fallbacks`. 0 disables the
  /// deadline (every request runs the model — fully deterministic).
  int64_t deadline_us = 0;
  FallbackPolicy fallback = FallbackPolicy::kInitialOrder;
};

/// One answered re-ranking request.
struct RerankResponse {
  /// Re-ranked item ids (a permutation of the submitted `list.items`).
  std::vector<int> items;
  /// True if the deadline fallback produced `items`.
  bool degraded = false;
  /// End-to-end latency (submit -> response ready), microseconds.
  int64_t latency_us = 0;
};

/// The online serving core: a bounded request queue feeding a fixed pool
/// of worker threads that micro-batch incoming `ImpressionList` requests
/// and answer each dequeued batch with a single `Reranker::RerankBatch`
/// call — neural models group same-length lists into one matrix forward
/// per group (see rerank/neural_base.h), amortizing per-call overhead.
///
/// The engine borrows `data` and `model`; both must outlive it and `model`
/// must already be fitted (or snapshot-loaded). Workers call only the
/// const inference surface, which the `Reranker` contract guarantees is
/// safe to share (see reranker.h). With `deadline_us == 0`, responses are
/// byte-identical to calling `model.Rerank` directly on the same lists,
/// regardless of thread count or batching — scheduling never affects
/// scores, only latency.
class ServingEngine {
 public:
  ServingEngine(const data::Dataset& data, const rerank::Reranker& model,
                ServingConfig config = {});
  ~ServingEngine();

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// Enqueues a request and returns a future for its response. Blocks
  /// while the queue is full (backpressure) — but never past the request's
  /// own deadline: with `deadline_us` configured, a submission that cannot
  /// enter the queue in time is answered by the fallback heuristic on the
  /// caller's thread instead of blocking forever. After `Shutdown`, the
  /// request is served synchronously on the caller's thread (the future is
  /// already ready when returned), so no submission is ever lost.
  std::future<RerankResponse> Submit(data::ImpressionList list);

  /// Non-blocking submit: returns an empty optional immediately when the
  /// queue is full, leaving the caller free to shed, retry, or degrade
  /// (see `serve::ServingRouter` for a policy-driven version). After
  /// `Shutdown` the request is served inline, like `Submit`.
  std::optional<std::future<RerankResponse>> TrySubmit(
      data::ImpressionList list);

  /// Closes the queue, drains outstanding requests, and joins the worker
  /// pool. Idempotent; called by the destructor.
  void Shutdown();

  /// Point-in-time serving metrics.
  ServingStats stats() const { return metrics_.Snapshot(); }

  const ServingConfig& config() const { return config_; }

 private:
  struct PendingRequest {
    data::ImpressionList list;
    std::promise<RerankResponse> promise;
    std::chrono::steady_clock::time_point enqueued_at;
  };

  void WorkerLoop();
  /// Runs one dequeued micro-batch: deadline-blown requests fall back
  /// individually, the rest are answered by a single
  /// `Reranker::RerankBatch` call (one grouped forward pass for neural
  /// models). Records the realized model-bound batch size.
  void ProcessBatch(std::vector<PendingRequest>* batch);
  /// Runs one request (model or deadline fallback) and fulfills its
  /// promise. `force_fallback` skips the model unconditionally (used when
  /// the submission already timed out waiting for queue space).
  void Process(PendingRequest* request, bool force_fallback = false);

  const data::Dataset& data_;
  const rerank::Reranker& model_;
  const ServingConfig config_;
  rerank::InitReranker init_fallback_;
  rerank::MmrReranker mmr_fallback_;
  ServingMetrics metrics_;
  BoundedRequestQueue<PendingRequest> queue_;
  std::vector<std::thread> workers_;
  std::atomic<bool> shutdown_{false};
};

}  // namespace rapid::serve

#endif  // RAPID_SERVE_ENGINE_H_
