#ifndef RAPID_SERVE_ADMISSION_H_
#define RAPID_SERVE_ADMISSION_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace rapid::serve {

/// Priority lane of a routed request. High-priority traffic (interactive
/// surfaces) is drained first and shed last; low-priority traffic
/// (prefetch, background refresh) absorbs overload first. The drain is
/// starvation-free (see `BoundedRequestQueue`), so low-lane requests make
/// progress even under a sustained high-lane flood.
enum class Lane { kHigh = 0, kLow = 1 };

inline constexpr int kNumLanes = 2;

/// What happens when the request queue runs hot.
enum class AdmissionPolicy {
  /// Producers block in `Submit` while the queue is full (backpressure) —
  /// the single-engine default. Latency is unbounded under overload.
  kBlock,
  /// Requests arriving above a lane's depth watermark are rejected and
  /// answered immediately by the fallback heuristic (`shed` in the
  /// response and per-slot metrics). `Submit` never blocks; tail latency
  /// stays bounded by queue depth at the watermark.
  kShed,
};

/// Load-shedding configuration of a `ServingRouter`.
struct AdmissionConfig {
  AdmissionPolicy policy = AdmissionPolicy::kBlock;
  /// Queue depth at/above which low-lane requests are shed (kShed only).
  /// 0 means "the full queue capacity" — shed only when the queue is full.
  int low_lane_watermark = 0;
  /// Depth at/above which even high-lane requests are shed. 0 = capacity.
  /// Must be >= the low watermark to mean anything; the controller clamps.
  int high_lane_watermark = 0;
  /// Starvation-free drain: after this many consecutive high-lane pops
  /// while low-lane work waited, one low-lane request is served.
  int high_bursts_per_low = 4;
  /// Optional per-slot queue-depth quotas: at most this many requests of a
  /// slot may sit in the queue at once; a request arriving above its
  /// slot's quota is shed (answered by the fallback) regardless of the
  /// global policy, so one tenant's burst cannot fill the shared queue and
  /// starve every other slot. Slots without an entry are unlimited.
  /// Quota sheds are counted in `RouterStats::quota_shed`. Non-positive
  /// quotas are clamped to 1.
  std::vector<std::pair<std::string, int>> slot_quotas;
};

/// Decides, per request, whether it enters the queue or is shed. The lane
/// watermarks are resolved against the queue capacity at construction, so
/// `Admit` is safe to call from any number of submitter threads
/// concurrently; per-slot quota charges are tracked in atomics behind a
/// const map (no lock on the submit path).
///
/// Ordering note: the router consults its result cache *before* admission
/// — a cache hit is answered inline without entering either lane, so hits
/// neither count toward queue depth nor can be shed. Only cache misses
/// (and bypassed slots) reach `Admit`.
class AdmissionController {
 public:
  AdmissionController(const AdmissionConfig& config, int queue_capacity);

  /// True if a request on `lane` arriving while the queue holds `depth`
  /// items should be admitted; false means shed it (answer with the
  /// fallback immediately). Always true under `kBlock` — blocking
  /// backpressure is applied by the queue itself, not here.
  bool Admit(Lane lane, size_t depth) const;

  /// Per-slot quota charge, called once per request just before it enters
  /// the queue. Returns false — without charging — when `slot` has a quota
  /// and its queued count is already at it: the caller must shed. A true
  /// return must be balanced by exactly one `ReleaseSlot`, either when the
  /// request is dequeued or when the push it guarded fails. Slots without
  /// a quota always charge successfully (and keep no count).
  bool TryChargeSlot(const std::string& slot);

  /// Returns a successful `TryChargeSlot` charge for `slot`.
  void ReleaseSlot(const std::string& slot);

  bool has_quotas() const { return !quotas_.empty(); }

  /// Currently queued (charged) requests of a quota'd slot; 0 for slots
  /// without a quota. Racy gauge, for tests and stats.
  int SlotDepth(const std::string& slot) const;

  const AdmissionConfig& config() const { return config_; }

  /// The resolved shed watermark for a lane, in requests.
  size_t watermark(Lane lane) const {
    return lane == Lane::kHigh ? high_mark_ : low_mark_;
  }

 private:
  struct SlotQuota {
    int limit = 0;
    std::atomic<int> depth{0};
  };

  AdmissionConfig config_;
  size_t low_mark_ = 0;
  size_t high_mark_ = 0;
  /// Immutable after construction; only the atomic depths mutate.
  std::unordered_map<std::string, std::unique_ptr<SlotQuota>> quotas_;
};

}  // namespace rapid::serve

#endif  // RAPID_SERVE_ADMISSION_H_
