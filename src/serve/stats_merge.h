#ifndef RAPID_SERVE_STATS_MERGE_H_
#define RAPID_SERVE_STATS_MERGE_H_

#include "serve/router.h"

namespace rapid::serve {

/// Fleet-wide stats aggregation: fold per-shard snapshots into one view
/// that renders through the same `ToTable`/`ToJson` as a single process.
///
/// Counters sum, gauges and maxima take the max, and latency percentiles
/// are merged as *request-weighted averages* — an approximation (the true
/// fleet percentile needs the underlying histograms, which don't cross
/// the wire), documented rather than hidden: with shards serving similar
/// traffic the weighted average tracks the true value closely, and a
/// pathological shard still drags the merged number in the right
/// direction. `mean_us` and `max_us` are exact.

/// Folds `src` into `dst` (sums, maxes, weighted percentiles).
void MergeInto(ServingStats* dst, const ServingStats& src);

/// Folds `src` into `dst` (pure counter sums).
void MergeInto(CacheStats* dst, const CacheStats& src);

/// Folds `src` into `dst`: counters sum, `connections_active` sums (each
/// shard's gauge counts distinct sockets), `max_inflight_per_conn` maxes.
void MergeInto(NetStats* dst, const NetStats& src);

/// Folds a full per-shard snapshot into `dst`: totals and cache merge as
/// above, rejection counters sum, per-slot entries merge by slot name
/// (a slot present on several shards becomes one entry; mid-rollout
/// version skew keeps the highest version and its model name). `dst->net`
/// merges only when `src.has_net` — a fleet view has net counters as soon
/// as any shard reported them.
void MergeInto(RouterStats* dst, const RouterStats& src);

}  // namespace rapid::serve

#endif  // RAPID_SERVE_STATS_MERGE_H_
