#ifndef RAPID_SERVE_STATS_MERGE_H_
#define RAPID_SERVE_STATS_MERGE_H_

#include "serve/router.h"

namespace rapid::serve {

/// Fleet-wide stats aggregation: fold per-shard snapshots into one view
/// that renders through the same `ToTable`/`ToJson` as a single process.
///
/// Counters sum, gauges and maxima take the max, and latency percentiles
/// are **exact**: snapshots carry their raw latency histograms
/// (`ServingStats::latency_hist`), the merge sums them bucket-wise and
/// recomputes p50/p95/p99 from the fleet histogram. Only when neither
/// side has a histogram (an old peer that predates histogram transport)
/// does the merge fall back to the request-weighted average of the
/// percentile points — an approximation, documented rather than hidden.
/// `mean_us` and `max_us` are exact in both modes.

/// Folds `src` into `dst` (sums, maxes, exact histogram percentiles).
void MergeInto(ServingStats* dst, const ServingStats& src);

/// Folds `src` into `dst` (pure counter sums).
void MergeInto(CacheStats* dst, const CacheStats& src);

/// Folds `src` into `dst`: counters sum, `connections_active` sums (each
/// shard's gauge counts distinct sockets), `max_inflight_per_conn` maxes.
void MergeInto(NetStats* dst, const NetStats& src);

/// Folds `src` into `dst`: counters sum, `last_published_version` maxes.
void MergeInto(OnlineStats* dst, const OnlineStats& src);

/// Folds `src` into `dst`: counters and the lists-per-page histogram sum,
/// `max_lists_per_page` maxes.
void MergeInto(PageStats* dst, const PageStats& src);

/// Folds a full per-shard snapshot into `dst`: totals and cache merge as
/// above, rejection counters sum, per-slot entries merge by slot name
/// (a slot present on several shards becomes one entry; mid-rollout
/// version skew keeps the highest version and its model name). `dst->net`
/// merges only when `src.has_net` — a fleet view has net counters as soon
/// as any shard reported them.
void MergeInto(RouterStats* dst, const RouterStats& src);

}  // namespace rapid::serve

#endif  // RAPID_SERVE_STATS_MERGE_H_
