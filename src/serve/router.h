#ifndef RAPID_SERVE_ROUTER_H_
#define RAPID_SERVE_ROUTER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "datagen/types.h"
#include "rerank/mmr.h"
#include "rerank/neural_base.h"
#include "rerank/reranker.h"
#include "serve/admission.h"
#include "serve/engine.h"
#include "serve/metrics.h"
#include "serve/model_registry.h"
#include "serve/request_queue.h"
#include "serve/result_cache.h"
#include "serve/snapshot.h"

namespace rapid::serve {

struct RouterConfig {
  /// Size of the worker pool *shared by every slot* — the structural
  /// difference from one `ServingEngine` (and pool) per model.
  int num_threads = 4;
  /// Requests a worker pulls per micro-batch (may mix slots and lanes).
  int max_batch = 8;
  /// Batching window after the first dequeue of a batch, microseconds.
  int max_wait_us = 200;
  /// Bounded request queue capacity, shared across both priority lanes.
  int queue_capacity = 1024;
  /// Per-request deadline measured from `Submit`; 0 disables. A request
  /// dequeued after its deadline is answered by the fallback heuristic.
  int64_t deadline_us = 0;
  FallbackPolicy fallback = FallbackPolicy::kInitialOrder;
  /// Load-shedding policy, watermarks, and the lane drain ratio.
  AdmissionConfig admission;
  /// Router-level result cache (off by default): repeated
  /// (user, candidate-set) requests against the same published model
  /// version are answered inline from a sharded LRU instead of re-running
  /// the forward pass. See `serve::ResultCache` for the swap-consistency
  /// argument.
  CachePolicy cache;
};

/// One routed re-ranking request: which model slot should answer, on which
/// priority lane.
struct RouterRequest {
  std::string slot;
  Lane lane = Lane::kHigh;
  data::ImpressionList list;
};

/// One answered routed request.
struct RouterResponse {
  /// Re-ranked item ids (a permutation of the submitted `list.items`).
  std::vector<int> items;
  /// True if the fallback heuristic produced `items` (deadline miss,
  /// shed, or unknown slot) — the model did not run.
  bool degraded = false;
  /// True if admission control rejected the request (implies `degraded`).
  bool shed = false;
  /// Attribution: the published model that answered, or version 0 and an
  /// empty name for degraded responses. Under a concurrent hot swap every
  /// response carries exactly the pre- or the post-swap version — never a
  /// mixture.
  std::string model_name;
  uint64_t model_version = 0;
  /// True if the result cache answered inline (queue and admission lanes
  /// bypassed). For non-degraded hits the items are byte-identical to what
  /// the stamped model version would have produced — only the latency
  /// differs. With `degraded` also set, the hit came from the *negative*
  /// cache: a replay of a previously rejected request, answered with the
  /// remembered degraded items.
  bool cache_hit = false;
  /// End-to-end latency (submit -> response ready), microseconds.
  int64_t latency_us = 0;
};

/// Point-in-time view of the router: per-slot serving stats plus the
/// aggregate across all traffic (including unknown-slot requests).
struct RouterStats {
  struct SlotEntry {
    std::string slot;
    std::string model_name;
    uint64_t version = 0;
    ServingStats stats;
    /// Result-cache counters attributed to this slot.
    CacheStats cache;
  };
  std::vector<SlotEntry> slots;  // Sorted by slot name.
  ServingStats total;
  /// Aggregate result-cache counters across all slots.
  CacheStats cache;
  /// Requests whose slot key matched no registered slot (answered by the
  /// fallback heuristic, counted in `total` only).
  uint64_t unknown_slot = 0;
  /// Requests rejected before reaching any model because they referenced
  /// user or item ids outside the dataset (or mismatched score/item
  /// lengths) — a remote caller probing the serving tier. Answered
  /// degraded, in submitted order.
  uint64_t invalid_ids = 0;
  /// Snapshots rejected by a canary probe before publish (`LoadSlot`
  /// returned 0 and the slot kept serving its previous version).
  uint64_t canary_rejected = 0;
  /// Requests shed because their slot's queue-depth quota
  /// (`AdmissionConfig::slot_quotas`) was exhausted — also counted in the
  /// regular `shed` totals; this isolates the per-tenant cause.
  uint64_t quota_shed = 0;
  /// Connection-layer counters, filled by `net::Server::StatsWithNet` when
  /// a network front-end wraps this router; absent for in-process use.
  bool has_net = false;
  NetStats net;
  /// Online-loop counters (feedback log + background trainer), filled by
  /// `online::OnlineTrainer::FillStats` / the net server's online-stats
  /// provider when the loop wraps this router; absent otherwise.
  bool has_online = false;
  OnlineStats online;
  /// Page-level reranking counters (`src/page/` served over the wire),
  /// filled by `net::Server::StatsWithNet`; absent for in-process use and
  /// for servers that never saw a `kPageRequest` frame.
  bool has_page = false;
  PageStats page;

  std::string ToTable() const;
  /// One JSON object: `{"total": {...}, "unknown_slot": n, "slots": {...}}`.
  std::string ToJson() const;
};

/// The multi-tenant serving tier: N named model slots served by one shared
/// worker pool, with hot snapshot swap and admission control.
///
/// Requests enter a two-lane bounded queue (high lane drained first,
/// starvation-free) guarded by an `AdmissionController`: under the `kShed`
/// policy a request arriving above its lane's depth watermark is answered
/// immediately by the cheap fallback heuristic instead of blocking the
/// caller. Workers micro-batch across slots, grouping each dequeued batch
/// by resolved model and answering every group with a single
/// `Reranker::RerankBatch` call; each request resolves its
/// slot to the currently published `ServedModel` exactly once, so a
/// concurrent `LoadSlot` swap is invisible except through the version
/// stamped on each response: in-flight requests finish on the old model,
/// new dequeues see the new one, and the old snapshot retires when its
/// last reference drops — zero requests are dropped or torn by a swap.
///
/// The router borrows `data` (must outlive it) and owns its models via the
/// registry. Published models must be fitted and uphold the `Reranker`
/// const-inference thread-safety contract (see reranker.h).
class ServingRouter {
 public:
  explicit ServingRouter(const data::Dataset& data, RouterConfig config = {});
  ~ServingRouter();

  ServingRouter(const ServingRouter&) = delete;
  ServingRouter& operator=(const ServingRouter&) = delete;

  /// Hot swap: loads the family-tagged snapshot at `path` on the calling
  /// thread (workers keep serving the old version throughout the build),
  /// then atomically publishes it as the new current model of `slot`,
  /// creating the slot on first use. The candidate is scored against a
  /// canary probe *before* publish — the one set via `SetCanary`, or (for
  /// format v3+ snapshots) the probe `Snapshot::Save` auto-recorded in the
  /// file — and a drifting (corrupt-but-parseable) snapshot is rejected.
  /// Returns the
  /// new version, or 0 if the snapshot failed to load or the canary
  /// rejected it — either way the slot keeps serving its current version.
  uint64_t LoadSlot(const std::string& slot, const std::string& path);

  /// Registers (or replaces) an explicit canary probe guarding `LoadSlot`
  /// for `slot`, overriding the snapshot's auto-recorded probe. Record
  /// `probe.expected_scores` with `ScoreList` on the fitted model at
  /// snapshot-save time.
  void SetCanary(const std::string& slot, CanaryProbe probe);

  /// Drops the canary for `slot`; returns false if none was set.
  bool ClearCanary(const std::string& slot);

  /// Publishes an in-memory fitted model into `slot` (same swap semantics
  /// as `LoadSlot`). Useful for heuristic models and tests.
  uint64_t InstallSlot(const std::string& slot,
                       std::shared_ptr<const rerank::Reranker> model);

  /// Decorates every model published into `slot` — by `LoadSlot` (after
  /// the canary passes) and `InstallSlot` alike. The wrapper receives the
  /// validated base model and returns the model actually published; it
  /// must uphold the `Reranker` const-inference thread-safety contract.
  /// This is how `online::OnlinePolicy` layers UCB exploration onto a
  /// slot without the serve layer depending on the online subsystem.
  /// Takes effect on the *next* publish; slots without a wrapper publish
  /// the base model unchanged (deterministic serving stays the default).
  using ModelWrapper = std::function<std::shared_ptr<const rerank::Reranker>(
      std::shared_ptr<const rerank::Reranker>)>;
  void SetSlotWrapper(const std::string& slot, ModelWrapper wrapper);

  /// Drops the wrapper for `slot`; returns false if none was set. Already
  /// published wrapped models keep serving until the next publish.
  bool ClearSlotWrapper(const std::string& slot);

  /// Unregisters `slot`. In-flight requests finish on the retiring model;
  /// subsequent submissions to the slot degrade to the fallback.
  bool RemoveSlot(const std::string& slot);

  /// Registered slot names, sorted.
  std::vector<std::string> slots() const { return registry_.Names(); }

  /// Current published version of `slot`, 0 if absent.
  uint64_t SlotVersion(const std::string& slot) const {
    return registry_.VersionOf(slot);
  }

  /// Routes a request. Never loses a submission: depending on admission
  /// policy and queue state the future resolves from the model, the
  /// fallback heuristic (shed / deadline / unknown slot), or — after
  /// `Shutdown` — an inline synchronous serve on the caller's thread.
  /// Under `kBlock` with a deadline configured, the blocking wait is
  /// capped at the deadline and times out into the fallback.
  std::future<RouterResponse> Submit(RouterRequest request);

  /// Closes the queue, drains outstanding requests, and joins the shared
  /// worker pool. Idempotent; called by the destructor.
  void Shutdown();

  /// Blocks until all scheduled cache sweeps have completed — dead-version
  /// entries are unreachable regardless (the version is part of the cache
  /// key); this only makes the memory reclaim observable (tests, ops).
  void DrainCacheMaintenance();

  /// Per-slot and aggregate serving stats.
  RouterStats stats() const;

  const RouterConfig& config() const { return config_; }

  /// The borrowed dataset this router serves against — the item catalog
  /// the page-level cross-list pass needs for topic-coverage vectors.
  const data::Dataset& dataset() const { return data_; }

 private:
  struct PendingRequest {
    RouterRequest request;
    std::promise<RouterResponse> promise;
    std::chrono::steady_clock::time_point enqueued_at;
    /// Set at submit time when the cache missed: the worker that answers
    /// this request inserts its result under the version that served it.
    bool cacheable = false;
    uint64_t fingerprint = 0;
    /// Holds a slot-quota charge (`AdmissionController::TryChargeSlot`)
    /// that must be released exactly once — on dequeue, or when the push
    /// it guarded fails.
    bool charged = false;
  };

  void WorkerLoop();
  /// Runs one dequeued micro-batch: each request resolves its slot once;
  /// deadline-blown and unknown-slot requests take the per-request
  /// fallback path, the rest are grouped by the published model that will
  /// answer them and served by one `Reranker::RerankBatch` call per group
  /// (so a batch mixing slots still batches within each slot). Realized
  /// group sizes are recorded on the aggregate and per-slot metrics.
  void ProcessBatch(std::vector<PendingRequest>* batch);
  /// Runs one request (model, fallback, or forced shed) and fulfills its
  /// promise.
  void Process(PendingRequest* request, bool shed = false);
  /// The fallback heuristic for `list` under the configured policy.
  std::vector<int> FallbackRerank(const data::ImpressionList& list) const;
  /// True if every id in `list` is inside the dataset's user/item universe
  /// and the score vector matches the item vector — i.e. the request is
  /// safe to hand to a model. Vacuously true for empty datasets.
  bool ListInBounds(const data::ImpressionList& list) const;
  /// True if `model` reproduces the recorded probe scores within
  /// tolerance. The probe is the explicit canary set for `slot` when one
  /// exists, else the one auto-recorded inside the snapshot at `path`
  /// (format v3+); with neither, the check passes vacuously.
  bool CanaryPasses(const std::string& slot, const std::string& path,
                    const rerank::NeuralReranker& model) const;

  const data::Dataset& data_;
  const RouterConfig config_;
  rerank::InitReranker init_fallback_;
  rerank::MmrReranker mmr_fallback_;
  ModelRegistry registry_;
  AdmissionController admission_;
  ResultCache cache_;
  /// Applies the registered wrapper for `slot` (if any) to `model`.
  std::shared_ptr<const rerank::Reranker> WrapForSlot(
      const std::string& slot,
      std::shared_ptr<const rerank::Reranker> model) const;

  mutable std::mutex canary_mu_;
  std::map<std::string, CanaryProbe> canaries_;
  mutable std::mutex wrapper_mu_;
  std::map<std::string, ModelWrapper> wrappers_;
  std::atomic<uint64_t> canary_rejected_{0};
  ServingMetrics aggregate_metrics_;
  std::atomic<uint64_t> unknown_slot_{0};
  std::atomic<uint64_t> invalid_ids_{0};
  std::atomic<uint64_t> quota_shed_{0};
  BoundedRequestQueue<PendingRequest> queue_;
  std::vector<std::thread> workers_;
  std::atomic<bool> shutdown_{false};
};

}  // namespace rapid::serve

#endif  // RAPID_SERVE_ROUTER_H_
