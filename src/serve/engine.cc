#include "serve/engine.h"

#include <algorithm>
#include <utility>

namespace rapid::serve {

namespace {

ServingConfig Sanitized(ServingConfig cfg) {
  cfg.num_threads = std::max(cfg.num_threads, 1);
  cfg.max_batch = std::max(cfg.max_batch, 1);
  cfg.max_wait_us = std::max(cfg.max_wait_us, 0);
  cfg.queue_capacity = std::max(cfg.queue_capacity, 1);
  cfg.deadline_us = std::max<int64_t>(cfg.deadline_us, 0);
  return cfg;
}

}  // namespace

ServingEngine::ServingEngine(const data::Dataset& data,
                             const rerank::Reranker& model,
                             ServingConfig config)
    : data_(data),
      model_(model),
      config_(Sanitized(config)),
      queue_(static_cast<size_t>(config_.queue_capacity)) {
  workers_.reserve(config_.num_threads);
  for (int i = 0; i < config_.num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ServingEngine::~ServingEngine() { Shutdown(); }

void ServingEngine::WorkerLoop() {
  std::vector<PendingRequest> batch;
  batch.reserve(config_.max_batch);
  while (queue_.PopBatch(static_cast<size_t>(config_.max_batch),
                         std::chrono::microseconds(config_.max_wait_us),
                         &batch) > 0) {
    ProcessBatch(&batch);
    batch.clear();
  }
}

void ServingEngine::ProcessBatch(std::vector<PendingRequest>* batch) {
  // Triage once at batch start: requests whose deadline already passed in
  // the queue get the cheap fallback; the rest share one batched model
  // forward. (The per-request path re-checked the deadline between
  // requests; checking once up front is equivalent for accounting — the
  // model pass serves the whole batch at once anyway.)
  const auto now = std::chrono::steady_clock::now();
  std::vector<PendingRequest*> model_bound;
  model_bound.reserve(batch->size());
  for (PendingRequest& request : *batch) {
    const int64_t waited_us =
        std::chrono::duration_cast<std::chrono::microseconds>(
            now - request.enqueued_at)
            .count();
    if (config_.deadline_us > 0 && waited_us > config_.deadline_us) {
      Process(&request, /*force_fallback=*/true);
    } else {
      model_bound.push_back(&request);
    }
  }
  if (model_bound.empty()) return;

  metrics_.RecordBatch(static_cast<int>(model_bound.size()));
  std::vector<const data::ImpressionList*> lists;
  lists.reserve(model_bound.size());
  for (const PendingRequest* request : model_bound) {
    lists.push_back(&request->list);
  }
  // Per-worker batched-inference scratch, reused across batches so the
  // model's warm zero-allocation path (see NeuralReranker::RerankBatchInto)
  // is actually exercised in serving.
  static thread_local std::vector<std::vector<int>> permutations;
  model_.RerankBatchInto(data_, lists, &permutations);
  for (size_t i = 0; i < model_bound.size(); ++i) {
    PendingRequest* request = model_bound[i];
    RerankResponse response;
    // Copy (not move): the response crosses threads via the promise, while
    // the scratch buffer stays warm for the next batch.
    response.items = permutations[i];
    response.latency_us =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - request->enqueued_at)
            .count();
    metrics_.RecordRequest(static_cast<uint64_t>(response.latency_us),
                           /*fallback=*/false);
    request->promise.set_value(std::move(response));
  }
}

void ServingEngine::Process(PendingRequest* request, bool force_fallback) {
  const auto now = std::chrono::steady_clock::now;
  const int64_t waited_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          now() - request->enqueued_at)
          .count();

  RerankResponse response;
  if (force_fallback ||
      (config_.deadline_us > 0 && waited_us > config_.deadline_us)) {
    // Deadline already blown in the queue: answer with the cheap heuristic
    // rather than making the client wait out a full model pass.
    const rerank::Reranker& fallback =
        config_.fallback == FallbackPolicy::kMmr
            ? static_cast<const rerank::Reranker&>(mmr_fallback_)
            : static_cast<const rerank::Reranker&>(init_fallback_);
    response.items = fallback.Rerank(data_, request->list);
    response.degraded = true;
  } else {
    response.items = model_.Rerank(data_, request->list);
  }

  response.latency_us = std::chrono::duration_cast<std::chrono::microseconds>(
                            now() - request->enqueued_at)
                            .count();
  metrics_.RecordRequest(static_cast<uint64_t>(response.latency_us),
                         response.degraded);
  request->promise.set_value(std::move(response));
}

std::future<RerankResponse> ServingEngine::Submit(data::ImpressionList list) {
  PendingRequest request;
  request.list = std::move(list);
  request.enqueued_at = std::chrono::steady_clock::now();
  std::future<RerankResponse> future = request.promise.get_future();

  using PushResult = BoundedRequestQueue<PendingRequest>::PushResult;
  PushResult result;
  if (config_.deadline_us > 0) {
    // Backpressure capped by the request's own deadline: there is no point
    // blocking for queue space longer than the request could still be
    // served within it.
    const auto deadline =
        request.enqueued_at + std::chrono::microseconds(config_.deadline_us);
    result = queue_.PushUntil(std::move(request), deadline);
  } else {
    result = queue_.Push(std::move(request)) ? PushResult::kOk
                                             : PushResult::kClosed;
  }
  switch (result) {
    case PushResult::kOk:
      metrics_.RecordQueueDepth(static_cast<int>(queue_.size()));
      break;
    case PushResult::kFull:
      // The deadline elapsed while blocked on a full queue: the request is
      // already past saving, answer with the fallback heuristic.
      Process(&request, /*force_fallback=*/true);
      break;
    case PushResult::kClosed:
      // Engine already shut down (the queue refused without consuming the
      // request): serve inline on the caller's thread so the submission
      // still gets a valid, deterministic answer.
      Process(&request);
      break;
  }
  return future;
}

std::optional<std::future<RerankResponse>> ServingEngine::TrySubmit(
    data::ImpressionList list) {
  PendingRequest request;
  request.list = std::move(list);
  request.enqueued_at = std::chrono::steady_clock::now();
  std::future<RerankResponse> future = request.promise.get_future();
  using PushResult = BoundedRequestQueue<PendingRequest>::PushResult;
  switch (queue_.TryPush(std::move(request))) {
    case PushResult::kOk:
      metrics_.RecordQueueDepth(static_cast<int>(queue_.size()));
      return future;
    case PushResult::kClosed:
      Process(&request);
      return future;
    case PushResult::kFull:
      return std::nullopt;
  }
  return std::nullopt;
}

void ServingEngine::Shutdown() {
  if (shutdown_.exchange(true)) return;
  queue_.Close();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

}  // namespace rapid::serve
