#include "serve/prometheus.h"

#include <cinttypes>
#include <cstdio>

namespace rapid::serve {

namespace {

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline must be backslash-escaped.
std::string EscapeLabel(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

class Renderer {
 public:
  void Header(const char* name, const char* help, const char* type) {
    out_ += "# HELP ";
    out_ += name;
    out_ += ' ';
    out_ += help;
    out_ += "\n# TYPE ";
    out_ += name;
    out_ += ' ';
    out_ += type;
    out_ += '\n';
  }

  void Counter(const char* name, const char* help, uint64_t value,
               const std::string& labels = "") {
    Header(name, help, "counter");
    Sample(name, labels, value);
  }

  void Gauge(const char* name, const char* help, double value,
             const std::string& labels = "") {
    Header(name, help, "gauge");
    Sample(name, labels, value);
  }

  void Sample(const std::string& name, const std::string& labels,
              uint64_t value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", value);
    out_ += name + labels + buf;
  }

  void Sample(const std::string& name, const std::string& labels,
              double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), " %.6g\n", value);
    out_ += name + labels + buf;
  }

  /// One native cumulative histogram from raw latency buckets. Empty
  /// buckets are skipped (the series stays cumulative and valid); the
  /// mandatory `+Inf` bucket, `_sum`, and `_count` always render.
  void LatencyHistogram(const char* name, const ServingStats& stats,
                        const std::string& labels) {
    Header(name, "End-to-end request latency.", "histogram");
    const std::string base = std::string(name) + "_bucket";
    uint64_t cumulative = 0;
    for (int i = 0; i < ServingStats::kLatencyHistBins; ++i) {
      if (stats.latency_hist[i] == 0) continue;
      cumulative += stats.latency_hist[i];
      // A bucket's upper bound is the next bucket's representative value.
      char le[64];
      if (i + 1 < ServingStats::kLatencyHistBins) {
        std::snprintf(le, sizeof(le), "%.6g",
                      ServingStats::LatencyBucketValue(i + 1));
      } else {
        std::snprintf(le, sizeof(le), "+Inf");
      }
      Sample(base, MergeLabels(labels, std::string("le=\"") + le + "\""),
             cumulative);
    }
    Sample(base, MergeLabels(labels, "le=\"+Inf\""), cumulative);
    Sample(std::string(name) + "_sum", labels,
           stats.mean_us * static_cast<double>(stats.requests));
    Sample(std::string(name) + "_count", labels, stats.requests);
  }

  std::string Take() { return std::move(out_); }

 private:
  static std::string MergeLabels(const std::string& labels,
                                 const std::string& extra) {
    if (labels.empty()) return "{" + extra + "}";
    // labels is "{a="b"}" — splice the extra pair before the brace.
    return labels.substr(0, labels.size() - 1) + "," + extra + "}";
  }

  std::string out_;
};

std::string SlotLabels(const RouterStats::SlotEntry& slot) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(slot.version));
  return "{slot=\"" + EscapeLabel(slot.slot) + "\",model=\"" +
         EscapeLabel(slot.model_name) + "\",version=\"" + buf + "\"}";
}

}  // namespace

std::string RenderPrometheus(const RouterStats& stats) {
  Renderer r;

  r.Counter("rapid_requests_total", "Completed requests.",
            stats.total.requests);
  r.Counter("rapid_fallbacks_total",
            "Requests answered by the fallback heuristic.",
            stats.total.fallbacks);
  r.Counter("rapid_shed_total", "Requests rejected by admission control.",
            stats.total.shed);
  r.LatencyHistogram("rapid_request_latency_microseconds", stats.total, "");
  r.Header("rapid_latency_quantile_microseconds",
           "Precomputed latency percentile points.", "gauge");
  r.Sample("rapid_latency_quantile_microseconds", "{quantile=\"0.5\"}",
           stats.total.p50_us);
  r.Sample("rapid_latency_quantile_microseconds", "{quantile=\"0.95\"}",
           stats.total.p95_us);
  r.Sample("rapid_latency_quantile_microseconds", "{quantile=\"0.99\"}",
           stats.total.p99_us);
  r.Gauge("rapid_max_latency_microseconds", "Largest observed latency.",
          static_cast<double>(stats.total.max_us));
  r.Gauge("rapid_max_queue_depth", "Highest queue depth observed at submit.",
          stats.total.max_queue_depth);
  r.Counter("rapid_model_batches_total",
            "Model-bound micro-batches executed.", stats.total.batches);
  r.Counter("rapid_batched_lists_total",
            "Requests served through micro-batches.",
            stats.total.batched_lists);

  r.Counter("rapid_cache_hits_total", "Result-cache hits.", stats.cache.hits);
  r.Counter("rapid_cache_misses_total", "Result-cache misses.",
            stats.cache.misses);
  r.Counter("rapid_cache_inserts_total", "Result-cache inserts.",
            stats.cache.inserts);
  r.Counter("rapid_cache_evictions_total", "Result-cache LRU evictions.",
            stats.cache.evictions);
  r.Counter("rapid_cache_negative_hits_total",
            "Rejected requests answered from the negative cache.",
            stats.cache.negative_hits);

  r.Counter("rapid_unknown_slot_total",
            "Requests naming no registered slot.", stats.unknown_slot);
  r.Counter("rapid_invalid_ids_total",
            "Requests rejected by the id bounds check.", stats.invalid_ids);
  r.Counter("rapid_canary_rejected_total",
            "Snapshots rejected by a canary probe before publish.",
            stats.canary_rejected);
  r.Counter("rapid_quota_shed_total",
            "Requests shed by a per-slot admission quota.", stats.quota_shed);

  if (stats.has_net) {
    const NetStats& n = stats.net;
    r.Counter("rapid_net_connections_accepted_total",
              "Connections accepted.", n.connections_accepted);
    r.Gauge("rapid_net_connections_active", "Currently open connections.",
            static_cast<double>(n.connections_active));
    r.Counter("rapid_net_connections_rejected_total",
              "Accepts refused at the connection cap.",
              n.connections_rejected);
    r.Header("rapid_net_closed_total",
             "Connections closed by protective limits.", "counter");
    r.Sample("rapid_net_closed_total", "{reason=\"idle\"}", n.closed_idle);
    r.Sample("rapid_net_closed_total", "{reason=\"slow\"}", n.closed_slow);
    r.Sample("rapid_net_closed_total", "{reason=\"protocol\"}",
             n.closed_protocol_error);
    r.Counter("rapid_net_frames_in_total", "Score requests parsed.",
              n.frames_in);
    r.Counter("rapid_net_frames_out_total", "Response frames written.",
              n.frames_out);
    r.Counter("rapid_net_error_frames_total", "Error frames sent.",
              n.error_frames_out);
    r.Counter("rapid_net_decode_errors_total",
              "Frames whose payload failed strict decoding.", n.decode_errors);
    r.Counter("rapid_net_bytes_in_total", "Bytes read.", n.bytes_in);
    r.Counter("rapid_net_bytes_out_total", "Bytes written.", n.bytes_out);
    r.Counter("rapid_net_dropped_responses_total",
              "Responses whose connection was gone at completion.",
              n.dropped_responses);
    r.Counter("rapid_net_stats_frames_total", "Stats scrapes parsed.",
              n.stats_frames);
    r.Counter("rapid_net_load_frames_total", "Remote load requests parsed.",
              n.load_frames);
    r.Counter("rapid_net_feedback_frames_total", "Feedback frames parsed.",
              n.feedback_frames);
  }

  if (stats.has_online) {
    const OnlineStats& o = stats.online;
    r.Counter("rapid_online_feedback_appended_total",
              "Feedback events accepted into the log.", o.feedback_appended);
    r.Counter("rapid_online_feedback_dropped_total",
              "Feedback events rejected by the bounded log.",
              o.feedback_dropped);
    r.Counter("rapid_online_feedback_drained_total",
              "Feedback events handed to the trainer.", o.feedback_drained);
    r.Counter("rapid_online_train_rounds_total",
              "Fine-tune rounds completed.", o.train_rounds);
    r.Counter("rapid_online_trained_lists_total",
              "Feedback lists consumed by training.", o.trained_lists);
    r.Counter("rapid_online_publishes_total",
              "Snapshots published through the canary-guarded LoadSlot.",
              o.publishes);
    r.Counter("rapid_online_publish_rejected_total",
              "Publishes rejected by the canary or snapshot I/O.",
              o.publish_rejected);
    r.Counter("rapid_online_publish_skipped_total",
              "Publish cadences skipped for lack of new feedback.",
              o.publish_skipped);
    r.Gauge("rapid_online_last_published_version",
            "Slot version of the newest accepted publish.",
            static_cast<double>(o.last_published_version));
  }

  if (stats.has_page) {
    const PageStats& p = stats.page;
    r.Counter("rapid_page_pages_total",
              "Page requests served end to end.", p.pages);
    r.Counter("rapid_page_lists_total",
              "Candidate lists carried by page requests.", p.page_lists);
    r.Counter("rapid_page_joint_total",
              "Pages served with the joint cross-list pass.", p.joint_pages);
    r.Counter("rapid_page_degraded_total",
              "Pages with at least one degraded list.", p.degraded_pages);
    r.Counter("rapid_page_redundancy_millitopics_total",
              "Cross-list redundancy observed on served pages.",
              p.redundancy_millitopics);
    r.Gauge("rapid_page_max_lists", "Largest page seen, in lists.",
            static_cast<double>(p.max_lists_per_page));
    r.Header("rapid_page_lists_per_page_total",
             "Pages by number of lists carried.", "counter");
    for (int i = 0; i < PageStats::kListsHistBins; ++i) {
      char label[48];
      std::snprintf(label, sizeof(label), "{lists=\"%d%s\"}", i + 1,
                    i + 1 == PageStats::kListsHistBins ? "+" : "");
      r.Sample("rapid_page_lists_per_page_total", label,
               p.lists_per_page_hist[i]);
    }
  }

  if (!stats.slots.empty()) {
    r.Header("rapid_slot_requests_total", "Completed requests per slot.",
             "counter");
    for (const auto& slot : stats.slots) {
      r.Sample("rapid_slot_requests_total", SlotLabels(slot),
               slot.stats.requests);
    }
    r.Header("rapid_slot_fallbacks_total",
             "Fallback-answered requests per slot.", "counter");
    for (const auto& slot : stats.slots) {
      r.Sample("rapid_slot_fallbacks_total", SlotLabels(slot),
               slot.stats.fallbacks);
    }
    r.Header("rapid_slot_cache_hits_total", "Result-cache hits per slot.",
             "counter");
    for (const auto& slot : stats.slots) {
      r.Sample("rapid_slot_cache_hits_total", SlotLabels(slot),
               slot.cache.hits);
    }
    r.Header("rapid_slot_version", "Published model version per slot.",
             "gauge");
    for (const auto& slot : stats.slots) {
      r.Sample("rapid_slot_version",
               "{slot=\"" + EscapeLabel(slot.slot) + "\",model=\"" +
                   EscapeLabel(slot.model_name) + "\"}",
               slot.version);
    }
  }

  return r.Take();
}

}  // namespace rapid::serve
