#include "serve/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "nn/arena.h"

namespace rapid::serve {

int ServingStats::LatencyBucketIndex(uint64_t us) {
  constexpr int kBits = kLatencySubBucketBits;
  if (us < (1u << kBits)) return static_cast<int>(us);
  // Octave = position of the highest set bit; the next kBits bits select
  // the sub-bucket, giving a fixed relative resolution of 2^-kBits
  // (~12.5% bucket width, ~9% mean error).
  const int octave = 63 - std::countl_zero(us);
  const int sub = static_cast<int>((us >> (octave - kBits)) & ((1 << kBits) - 1));
  const int index = ((octave - kBits + 1) << kBits) + sub;
  return index < kLatencyHistBins ? index : kLatencyHistBins - 1;
}

double ServingStats::LatencyBucketValue(int index) {
  constexpr int kBits = kLatencySubBucketBits;
  if (index < (1 << kBits)) return index;
  const int octave = (index >> kBits) + kBits - 1;
  const int sub = index & ((1 << kBits) - 1);
  const double base = static_cast<double>(1ull << octave);
  return base + sub * (base / (1 << kBits));
}

bool ServingStats::HasLatencyHist() const {
  for (int i = 0; i < kLatencyHistBins; ++i) {
    if (latency_hist[i] != 0) return true;
  }
  return false;
}

void ServingStats::RecomputeLatencyPercentiles() {
  uint64_t total = 0;
  for (int i = 0; i < kLatencyHistBins; ++i) total += latency_hist[i];
  if (total == 0) return;
  auto percentile = [&](double q) -> double {
    const uint64_t rank =
        static_cast<uint64_t>(q * static_cast<double>(total - 1));
    uint64_t seen = 0;
    for (int i = 0; i < kLatencyHistBins; ++i) {
      seen += latency_hist[i];
      if (seen > rank) return LatencyBucketValue(i);
    }
    return LatencyBucketValue(kLatencyHistBins - 1);
  };
  p50_us = percentile(0.50);
  p95_us = percentile(0.95);
  p99_us = percentile(0.99);
}

void ServingMetrics::RecordRequest(uint64_t latency_us, bool fallback) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (fallback) fallbacks_.fetch_add(1, std::memory_order_relaxed);
  total_us_.fetch_add(latency_us, std::memory_order_relaxed);
  uint64_t prev = max_us_.load(std::memory_order_relaxed);
  while (prev < latency_us &&
         !max_us_.compare_exchange_weak(prev, latency_us,
                                        std::memory_order_relaxed)) {
  }
  buckets_[ServingStats::LatencyBucketIndex(latency_us)].fetch_add(
      1, std::memory_order_relaxed);
}

void ServingMetrics::RecordShed() {
  shed_.fetch_add(1, std::memory_order_relaxed);
}

void ServingMetrics::RecordQueueDepth(int depth) {
  int prev = max_queue_depth_.load(std::memory_order_relaxed);
  while (prev < depth &&
         !max_queue_depth_.compare_exchange_weak(prev, depth,
                                                 std::memory_order_relaxed)) {
  }
}

void ServingMetrics::RecordBatch(int size) {
  if (size <= 0) return;
  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_lists_.fetch_add(static_cast<uint64_t>(size),
                           std::memory_order_relaxed);
  int prev = max_batch_size_.load(std::memory_order_relaxed);
  while (prev < size &&
         !max_batch_size_.compare_exchange_weak(prev, size,
                                                std::memory_order_relaxed)) {
  }
  const int bin = std::min(size - 1, ServingStats::kBatchHistBins - 1);
  batch_hist_[bin].fetch_add(1, std::memory_order_relaxed);
}

ServingStats ServingMetrics::Snapshot() const {
  ServingStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.fallbacks = fallbacks_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.max_us = max_us_.load(std::memory_order_relaxed);
  s.max_queue_depth = max_queue_depth_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.batched_lists = batched_lists_.load(std::memory_order_relaxed);
  s.max_batch_size = max_batch_size_.load(std::memory_order_relaxed);
  for (int i = 0; i < ServingStats::kBatchHistBins; ++i) {
    s.batch_size_hist[i] = batch_hist_[i].load(std::memory_order_relaxed);
  }
  const nn::arena::GlobalStats arena = nn::arena::GlobalArenaStats();
  s.arena_heap_allocs = arena.heap_allocs;
  s.arena_allocs = arena.arena_allocs;
  s.arena_chunk_mallocs = arena.chunk_mallocs;
  s.arena_reserved_bytes = arena.reserved_bytes;
  s.arena_high_water_bytes = arena.high_water_bytes;
  if (s.requests == 0) return s;
  s.mean_us = static_cast<double>(total_us_.load(std::memory_order_relaxed)) /
              static_cast<double>(s.requests);
  for (int i = 0; i < kNumBuckets; ++i) {
    s.latency_hist[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  s.RecomputeLatencyPercentiles();
  return s;
}

double CacheStats::hit_rate() const {
  const uint64_t lookups = hits + misses;
  return lookups == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(lookups);
}

std::string CacheStats::ToTable() const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "  cache hits      %10llu (hit rate %3.0f%%)\n"
                "  cache misses    %10llu\n"
                "  cache inserts   %10llu\n"
                "  cache evictions %10llu\n"
                "  cache expired   %10llu\n"
                "  cache bypass    %10llu\n"
                "  cache swept     %10llu\n"
                "  cache deferred  %10llu\n"
                "  cache negative  %10llu hits, %llu inserts\n",
                static_cast<unsigned long long>(hits), 100.0 * hit_rate(),
                static_cast<unsigned long long>(misses),
                static_cast<unsigned long long>(inserts),
                static_cast<unsigned long long>(evictions),
                static_cast<unsigned long long>(expired),
                static_cast<unsigned long long>(bypass),
                static_cast<unsigned long long>(swept),
                static_cast<unsigned long long>(deferred),
                static_cast<unsigned long long>(negative_hits),
                static_cast<unsigned long long>(negative_inserts));
  return buf;
}

std::string CacheStats::ToJson() const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "{\"hits\": %llu, \"misses\": %llu, \"inserts\": %llu, "
                "\"evictions\": %llu, \"expired\": %llu, \"bypass\": %llu, "
                "\"swept\": %llu, \"deferred\": %llu, "
                "\"negative_hits\": %llu, \"negative_inserts\": %llu, "
                "\"hit_rate\": %.3f}",
                static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(misses),
                static_cast<unsigned long long>(inserts),
                static_cast<unsigned long long>(evictions),
                static_cast<unsigned long long>(expired),
                static_cast<unsigned long long>(bypass),
                static_cast<unsigned long long>(swept),
                static_cast<unsigned long long>(deferred),
                static_cast<unsigned long long>(negative_hits),
                static_cast<unsigned long long>(negative_inserts),
                hit_rate());
  return buf;
}

std::string NetStats::ToTable() const {
  char buf[1024];
  std::snprintf(buf, sizeof(buf),
                "  net accepted    %10llu (active %llu, rejected %llu)\n"
                "  net closed      %10llu idle, %llu slow, %llu protocol\n"
                "  net frames in   %10llu (%llu bytes)\n"
                "  net frames out  %10llu (%llu bytes, %llu errors)\n"
                "  net decode errs %10llu\n"
                "  net dropped     %10llu\n"
                "  net admin       %10llu stats, %llu loads\n"
                "  net feedback    %10llu\n"
                "  net max inflight%10d per connection\n",
                static_cast<unsigned long long>(connections_accepted),
                static_cast<unsigned long long>(connections_active),
                static_cast<unsigned long long>(connections_rejected),
                static_cast<unsigned long long>(closed_idle),
                static_cast<unsigned long long>(closed_slow),
                static_cast<unsigned long long>(closed_protocol_error),
                static_cast<unsigned long long>(frames_in),
                static_cast<unsigned long long>(bytes_in),
                static_cast<unsigned long long>(frames_out),
                static_cast<unsigned long long>(bytes_out),
                static_cast<unsigned long long>(error_frames_out),
                static_cast<unsigned long long>(decode_errors),
                static_cast<unsigned long long>(dropped_responses),
                static_cast<unsigned long long>(stats_frames),
                static_cast<unsigned long long>(load_frames),
                static_cast<unsigned long long>(feedback_frames),
                max_inflight_per_conn);
  return buf;
}

std::string NetStats::ToJson() const {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "{\"connections_accepted\": %llu, \"connections_active\": %llu, "
      "\"connections_rejected\": %llu, \"closed_idle\": %llu, "
      "\"closed_slow\": %llu, \"closed_protocol_error\": %llu, "
      "\"frames_in\": %llu, \"frames_out\": %llu, "
      "\"error_frames_out\": %llu, \"decode_errors\": %llu, "
      "\"bytes_in\": %llu, \"bytes_out\": %llu, "
      "\"dropped_responses\": %llu, \"stats_frames\": %llu, "
      "\"load_frames\": %llu, \"feedback_frames\": %llu, "
      "\"max_inflight_per_conn\": %d}",
      static_cast<unsigned long long>(connections_accepted),
      static_cast<unsigned long long>(connections_active),
      static_cast<unsigned long long>(connections_rejected),
      static_cast<unsigned long long>(closed_idle),
      static_cast<unsigned long long>(closed_slow),
      static_cast<unsigned long long>(closed_protocol_error),
      static_cast<unsigned long long>(frames_in),
      static_cast<unsigned long long>(frames_out),
      static_cast<unsigned long long>(error_frames_out),
      static_cast<unsigned long long>(decode_errors),
      static_cast<unsigned long long>(bytes_in),
      static_cast<unsigned long long>(bytes_out),
      static_cast<unsigned long long>(dropped_responses),
      static_cast<unsigned long long>(stats_frames),
      static_cast<unsigned long long>(load_frames),
      static_cast<unsigned long long>(feedback_frames),
      max_inflight_per_conn);
  return buf;
}

std::string OnlineStats::ToTable() const {
  char buf[1024];
  std::snprintf(buf, sizeof(buf),
                "  feedback        %10llu appended, %llu dropped, "
                "%llu drained\n"
                "  train rounds    %10llu (%llu lists)\n"
                "  publishes       %10llu (rejected %llu, skipped %llu)\n"
                "  published ver   %10llu\n",
                static_cast<unsigned long long>(feedback_appended),
                static_cast<unsigned long long>(feedback_dropped),
                static_cast<unsigned long long>(feedback_drained),
                static_cast<unsigned long long>(train_rounds),
                static_cast<unsigned long long>(trained_lists),
                static_cast<unsigned long long>(publishes),
                static_cast<unsigned long long>(publish_rejected),
                static_cast<unsigned long long>(publish_skipped),
                static_cast<unsigned long long>(last_published_version));
  return buf;
}

std::string OnlineStats::ToJson() const {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "{\"feedback_appended\": %llu, \"feedback_dropped\": %llu, "
      "\"feedback_drained\": %llu, \"train_rounds\": %llu, "
      "\"trained_lists\": %llu, \"publishes\": %llu, "
      "\"publish_rejected\": %llu, \"publish_skipped\": %llu, "
      "\"last_published_version\": %llu}",
      static_cast<unsigned long long>(feedback_appended),
      static_cast<unsigned long long>(feedback_dropped),
      static_cast<unsigned long long>(feedback_drained),
      static_cast<unsigned long long>(train_rounds),
      static_cast<unsigned long long>(trained_lists),
      static_cast<unsigned long long>(publishes),
      static_cast<unsigned long long>(publish_rejected),
      static_cast<unsigned long long>(publish_skipped),
      static_cast<unsigned long long>(last_published_version));
  return buf;
}

std::string PageStats::ToTable() const {
  char buf[1024];
  std::snprintf(buf, sizeof(buf),
                "  pages           %10llu (%llu lists, max %d per page)\n"
                "  page joint      %10llu\n"
                "  page degraded   %10llu\n"
                "  page redundancy %10llu millitopics\n",
                static_cast<unsigned long long>(pages),
                static_cast<unsigned long long>(page_lists),
                max_lists_per_page,
                static_cast<unsigned long long>(joint_pages),
                static_cast<unsigned long long>(degraded_pages),
                static_cast<unsigned long long>(redundancy_millitopics));
  std::string out = buf;
  out += "  lists/page hist ";
  for (int i = 0; i < kListsHistBins; ++i) {
    std::snprintf(buf, sizeof(buf), "%s%llu", i == 0 ? "" : " ",
                  static_cast<unsigned long long>(lists_per_page_hist[i]));
    out += buf;
  }
  out += "\n";
  return out;
}

std::string PageStats::ToJson() const {
  char buf[1024];
  std::snprintf(buf, sizeof(buf),
                "{\"pages\": %llu, \"page_lists\": %llu, "
                "\"joint_pages\": %llu, \"degraded_pages\": %llu, "
                "\"redundancy_millitopics\": %llu, "
                "\"max_lists_per_page\": %d, \"lists_per_page_hist\": [",
                static_cast<unsigned long long>(pages),
                static_cast<unsigned long long>(page_lists),
                static_cast<unsigned long long>(joint_pages),
                static_cast<unsigned long long>(degraded_pages),
                static_cast<unsigned long long>(redundancy_millitopics),
                max_lists_per_page);
  std::string out = buf;
  for (int i = 0; i < kListsHistBins; ++i) {
    std::snprintf(buf, sizeof(buf), "%s%llu", i == 0 ? "" : ", ",
                  static_cast<unsigned long long>(lists_per_page_hist[i]));
    out += buf;
  }
  out += "]}";
  return out;
}

std::string ServingStats::ToTable() const {
  char buf[1024];
  const double mean_batch =
      batches == 0 ? 0.0
                   : static_cast<double>(batched_lists) /
                         static_cast<double>(batches);
  std::snprintf(buf, sizeof(buf),
                "  requests        %10llu\n"
                "  fallbacks       %10llu\n"
                "  shed            %10llu\n"
                "  p50 latency     %10.0f us\n"
                "  p95 latency     %10.0f us\n"
                "  p99 latency     %10.0f us\n"
                "  mean latency    %10.0f us\n"
                "  max latency     %10llu us\n"
                "  max queue depth %10d\n"
                "  model batches   %10llu (mean size %.2f, max %d)\n"
                "  batched lists   %10llu\n"
                "  arena allocs    %10llu (heap %llu, chunks %llu)\n"
                "  arena bytes     %10llu reserved (high water %llu)\n",
                static_cast<unsigned long long>(requests),
                static_cast<unsigned long long>(fallbacks),
                static_cast<unsigned long long>(shed), p50_us, p95_us,
                p99_us, mean_us, static_cast<unsigned long long>(max_us),
                max_queue_depth, static_cast<unsigned long long>(batches),
                mean_batch, max_batch_size,
                static_cast<unsigned long long>(batched_lists),
                static_cast<unsigned long long>(arena_allocs),
                static_cast<unsigned long long>(arena_heap_allocs),
                static_cast<unsigned long long>(arena_chunk_mallocs),
                static_cast<unsigned long long>(arena_reserved_bytes),
                static_cast<unsigned long long>(arena_high_water_bytes));
  return buf;
}

std::string ServingStats::ToJson() const {
  char buf[1024];
  int n = std::snprintf(
      buf, sizeof(buf),
      "{\"requests\": %llu, \"fallbacks\": %llu, \"shed\": %llu, "
      "\"p50_us\": %.1f, \"p95_us\": %.1f, \"p99_us\": %.1f, "
      "\"mean_us\": %.1f, \"max_us\": %llu, "
      "\"max_queue_depth\": %d, \"batches\": %llu, "
      "\"batched_lists\": %llu, \"max_batch_size\": %d, "
      "\"arena_allocs\": %llu, \"arena_heap_allocs\": %llu, "
      "\"arena_chunk_mallocs\": %llu, \"arena_reserved_bytes\": %llu, "
      "\"arena_high_water_bytes\": %llu, "
      "\"batch_size_hist\": [",
      static_cast<unsigned long long>(requests),
      static_cast<unsigned long long>(fallbacks),
      static_cast<unsigned long long>(shed), p50_us, p95_us, p99_us, mean_us,
      static_cast<unsigned long long>(max_us), max_queue_depth,
      static_cast<unsigned long long>(batches),
      static_cast<unsigned long long>(batched_lists), max_batch_size,
      static_cast<unsigned long long>(arena_allocs),
      static_cast<unsigned long long>(arena_heap_allocs),
      static_cast<unsigned long long>(arena_chunk_mallocs),
      static_cast<unsigned long long>(arena_reserved_bytes),
      static_cast<unsigned long long>(arena_high_water_bytes));
  std::string out(buf, static_cast<size_t>(n));
  for (int i = 0; i < kBatchHistBins; ++i) {
    std::snprintf(buf, sizeof(buf), i == 0 ? "%llu" : ", %llu",
                  static_cast<unsigned long long>(batch_size_hist[i]));
    out += buf;
  }
  out += "]}";
  return out;
}

}  // namespace rapid::serve
