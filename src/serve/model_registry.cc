#include "serve/model_registry.h"

#include <utility>

namespace rapid::serve {

uint64_t ModelRegistry::Publish(const std::string& slot,
                                std::shared_ptr<const rerank::Reranker> model) {
  auto entry = std::make_shared<ServedModel>();
  entry->model_name = model->name();
  entry->model = std::move(model);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(slot);
  if (it == slots_.end()) {
    entry->metrics = std::make_shared<ServingMetrics>();
    entry->version = 1;
    slots_.emplace(slot, entry);
  } else {
    entry->metrics = it->second->metrics;
    entry->version = it->second->version + 1;
    it->second = entry;  // The swap: new dequeues see the new model.
  }
  return entry->version;
}

std::shared_ptr<const ServedModel> ModelRegistry::Acquire(
    const std::string& slot) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(slot);
  return it == slots_.end() ? nullptr : it->second;
}

bool ModelRegistry::Remove(const std::string& slot) {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.erase(slot) > 0;
}

std::vector<std::string> ModelRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(slots_.size());
  for (const auto& [name, entry] : slots_) names.push_back(name);
  return names;
}

uint64_t ModelRegistry::VersionOf(const std::string& slot) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(slot);
  return it == slots_.end() ? 0 : it->second->version;
}

size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.size();
}

}  // namespace rapid::serve
