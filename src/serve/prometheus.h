#ifndef RAPID_SERVE_PROMETHEUS_H_
#define RAPID_SERVE_PROMETHEUS_H_

#include <string>

#include "serve/router.h"

namespace rapid::serve {

/// Renders a `RouterStats` snapshot in the Prometheus text exposition
/// format (version 0.0.4): `# HELP` / `# TYPE` headers, `rapid_`-prefixed
/// counters and gauges, per-slot series labelled `{slot="...",
/// model="...", version="..."}`, and a native cumulative histogram
/// (`rapid_request_latency_microseconds_bucket{le="..."}`) built from the
/// snapshot's raw latency buckets so collectors can compute arbitrary
/// fleet quantiles. Net and online blocks render only when present
/// (`has_net` / `has_online`). The output always ends with a newline, as
/// scrapers expect.
///
/// This is a pure formatter over the same snapshot the JSON scrape path
/// uses; serve it via `net::Client::GetStatsPrometheus` or dump it from
/// any in-process `RouterStats`.
std::string RenderPrometheus(const RouterStats& stats);

}  // namespace rapid::serve

#endif  // RAPID_SERVE_PROMETHEUS_H_
