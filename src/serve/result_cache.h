#ifndef RAPID_SERVE_RESULT_CACHE_H_
#define RAPID_SERVE_RESULT_CACHE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "datagen/types.h"
#include "serve/metrics.h"

namespace rapid::serve {

/// Result-cache behaviour of a `ServingRouter`. Re-ranking is
/// deterministic at inference (no deadline, no randomness on the const
/// path), so a repeated (user, candidate-set) request against the same
/// model version can be answered from memory instead of re-running the
/// forward pass.
struct CachePolicy {
  /// Off by default: the cache changes no response, only its latency, but
  /// memoization is opt-in because it holds copies of ranked lists.
  bool enabled = false;
  /// Total cached responses. Enforced per shard as `capacity / num_shards`
  /// (min 1), so the bound is approximate unless `num_shards == 1`.
  size_t capacity = 4096;
  /// Entry lifetime from insert, microseconds; 0 = entries never expire on
  /// age (they still die with their model version on a swap).
  int64_t ttl_us = 0;
  /// Hash-partitioned shards; submitters touching different keys contend
  /// on different mutexes. Clamped to [1, capacity].
  int num_shards = 8;
  /// Slots that never consult the cache (counted as `bypass` per slot) —
  /// e.g. an exploration arm whose traffic must always hit the model.
  std::vector<std::string> bypass_slots;
  /// Admission control for heavy-tailed traffic: store a result only on
  /// the *second* miss of its key. One-off (user, candidate-set) requests
  /// then never displace entries the hot set will actually re-read; the
  /// price is one extra model run on each genuinely repeating key. First
  /// sightings live in a small per-shard direct-mapped sketch, so a
  /// sighting can be displaced by a colliding key (re-deferring the
  /// victim) — an accepted approximation, like the LRU bound itself.
  bool admit_on_second_hit = false;
  /// Sketch cells per shard when `admit_on_second_hit` is set.
  size_t admission_sketch_slots = 1024;
  /// Negative-result caching (0 = off): rejections that never reach a
  /// model — unknown-slot and invalid-id requests — are remembered for
  /// this many microseconds, so a remote caller replaying the same bad
  /// request is answered from memory instead of re-running the bounds
  /// check or occupying a queue slot and a worker for the fallback
  /// heuristic. Entries are keyed under the reserved version 0 (registry
  /// versions start at 1, so they can never shadow a real result) and are
  /// swept like any dead version when the slot publishes — a slot that
  /// comes into existence invalidates its own unknown-slot entries. The
  /// TTL should be short: between an insert racing a publish and the
  /// sweep, a stale negative entry can answer degraded for at most one
  /// TTL. Requires `enabled`.
  int64_t negative_ttl_us = 0;
};

/// A sharded LRU of re-ranked responses keyed on
/// `(slot, model_version, list_fingerprint)`, sitting in front of the
/// router's worker pool.
///
/// ## Swap consistency
///
/// The published model version is part of the key. `ModelRegistry`
/// versions increase monotonically and are never reused, so the instant
/// `LoadSlot` publishes version v+1, every entry cached under version v
/// becomes *unreachable* — a lookup resolves the slot's current version
/// first and probes only under it. No flush, no epoch counter, no lock
/// shared with the publish path: the atomicity of the swap is inherited
/// from the RCU publish itself. Stale entries still occupy memory until
/// the background sweep (kicked by each publish/remove) reclaims them,
/// but they can never answer a request.
///
/// ## Fingerprint
///
/// `Fingerprint` hashes the user id plus the *ordered* candidate item ids
/// and initial scores (FNV-1a over the raw bytes), so a permutation of
/// the same candidates is a different key — re-rankers are order-aware.
/// Click labels are deliberately excluded: inference never reads them.
/// A 64-bit collision between two live lists would serve the wrong
/// ranking; at ~2^-64 per pair this is accepted and documented rather
/// than defended against.
///
/// All methods are thread-safe.
class ResultCache {
 public:
  /// What a hit returns: the re-ranked items plus the attribution of the
  /// version that originally computed them (== the key's version).
  struct CachedResult {
    std::vector<int> items;
    std::string model_name;
    uint64_t model_version = 0;
  };

  explicit ResultCache(CachePolicy policy);
  ~ResultCache();

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Order-sensitive hash of (user id, item ids, initial scores).
  static uint64_t Fingerprint(const data::ImpressionList& list);

  bool enabled() const { return policy_.enabled; }

  /// False when the cache is disabled or `slot` is on the bypass list.
  bool EnabledFor(const std::string& slot) const;

  /// True when negative-result caching is active (`enabled` plus a
  /// positive `negative_ttl_us`).
  bool NegativeEnabled() const {
    return policy_.enabled && policy_.negative_ttl_us > 0;
  }

  /// Probes the negative cache (version-0 entries) for a previously
  /// rejected (slot, list) request. Hits count as `negative_hits`; misses
  /// are not counted at all — every submission probes here when the
  /// policy is on, and folding those into `misses` would wreck the
  /// positive cache's hit rate.
  std::optional<std::vector<int>> LookupNegative(const std::string& slot,
                                                 uint64_t fingerprint);

  /// Remembers the degraded answer of a rejected request under the
  /// reserved version 0 with the negative TTL. Bypasses second-hit
  /// admission: the whole point is absorbing the *second* arrival.
  void InsertNegative(const std::string& slot, uint64_t fingerprint,
                      std::vector<int> items);

  /// Counts a request that skipped the cache for `slot`.
  void RecordBypass(const std::string& slot);

  /// Probes the cache; a hit refreshes the entry's LRU position. Expired
  /// entries are discarded on contact and reported as a miss.
  std::optional<CachedResult> Lookup(const std::string& slot,
                                     uint64_t version, uint64_t fingerprint);

  /// Inserts (or refreshes) an entry, evicting from the cold end of the
  /// shard when over capacity.
  void Insert(const std::string& slot, uint64_t version, uint64_t fingerprint,
              CachedResult result);

  /// Asks the background sweeper to reclaim entries of `slot` whose
  /// version differs from `live_version` (0 = all versions, for slot
  /// removal). Entries are already unreachable the moment the registry
  /// republished; this only frees their memory. Returns immediately.
  void ScheduleSweep(std::string slot, uint64_t live_version);

  /// Blocks until every scheduled sweep has completed (tests, shutdown
  /// sequencing).
  void DrainSweeps();

  /// Live entries across all shards (racy gauge).
  size_t size() const;

  CacheStats TotalStats() const { return total_.Snapshot(); }
  /// Counters attributed to one slot; zeroes if the slot never traded.
  CacheStats StatsFor(const std::string& slot) const;

  const CachePolicy& policy() const { return policy_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Key {
    std::string slot;
    uint64_t version = 0;
    uint64_t fingerprint = 0;
    bool operator==(const Key& other) const {
      return version == other.version && fingerprint == other.fingerprint &&
             slot == other.slot;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& key) const {
      // The fingerprint is already a well-mixed 64-bit hash; fold in the
      // version and slot so versions of the same list land apart.
      uint64_t h = key.fingerprint ^ (key.version * 0x9E3779B97F4A7C15ull);
      h ^= std::hash<std::string>{}(key.slot) + (h << 6) + (h >> 2);
      return static_cast<size_t>(h);
    }
  };
  struct Entry {
    Key key;
    CachedResult result;
    Clock::time_point inserted_at;
  };
  struct Shard {
    mutable std::mutex mu;
    /// Front = most recently used.
    std::list<Entry> lru;
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index;
    /// Direct-mapped first-sighting sketch (`admit_on_second_hit`): cell
    /// holds the full key hash (never 0) of the last first-seen key that
    /// mapped there. Guarded by `mu`; empty when the policy is off.
    std::vector<uint64_t> seen;
  };
  /// Per-slot (and aggregate) counters; all relaxed atomics.
  struct Counters {
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> inserts{0};
    std::atomic<uint64_t> evictions{0};
    std::atomic<uint64_t> expired{0};
    std::atomic<uint64_t> bypass{0};
    std::atomic<uint64_t> swept{0};
    std::atomic<uint64_t> deferred{0};
    std::atomic<uint64_t> negative_hits{0};
    std::atomic<uint64_t> negative_inserts{0};
    CacheStats Snapshot() const;
  };

  Shard& ShardFor(const Key& key) {
    return *shards_[KeyHash{}(key) % shards_.size()];
  }
  /// Find-or-create the counter block for `slot` (short leaf lock).
  Counters& CountersFor(const std::string& slot);
  bool ExpiredAt(const Entry& entry, Clock::time_point now) const {
    // Version 0 marks a negative entry, which lives on its own (short)
    // TTL; positive entries use the regular one.
    const int64_t ttl_us =
        entry.key.version == 0 ? policy_.negative_ttl_us : policy_.ttl_us;
    return ttl_us > 0 &&
           now - entry.inserted_at >= std::chrono::microseconds(ttl_us);
  }

  void SweeperLoop();
  /// Erases `slot` entries on dead versions (and any TTL-expired entry it
  /// walks past) across all shards.
  void SweepSlot(const std::string& slot, uint64_t live_version);

  const CachePolicy policy_;
  const size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;

  Counters total_;
  mutable std::mutex slots_mu_;
  std::map<std::string, std::unique_ptr<Counters>> slot_counters_;

  std::mutex sweep_mu_;
  std::condition_variable sweep_cv_;
  std::condition_variable sweep_idle_cv_;
  std::deque<std::pair<std::string, uint64_t>> pending_sweeps_;
  bool sweep_active_ = false;
  bool stop_ = false;
  std::thread sweeper_;
};

}  // namespace rapid::serve

#endif  // RAPID_SERVE_RESULT_CACHE_H_
