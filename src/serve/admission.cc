#include "serve/admission.h"

#include <algorithm>

namespace rapid::serve {

AdmissionController::AdmissionController(const AdmissionConfig& config,
                                         int queue_capacity)
    : config_(config) {
  config_.high_bursts_per_low = std::max(config_.high_bursts_per_low, 1);
  const size_t capacity = static_cast<size_t>(std::max(queue_capacity, 1));
  auto resolve = [capacity](int mark) {
    return mark <= 0 ? capacity
                     : std::min(static_cast<size_t>(mark), capacity);
  };
  low_mark_ = resolve(config_.low_lane_watermark);
  // The high lane never sheds before the low lane: a high watermark below
  // the low one would invert the priority order.
  high_mark_ = std::max(resolve(config_.high_lane_watermark), low_mark_);
  for (const auto& [slot, limit] : config_.slot_quotas) {
    auto quota = std::make_unique<SlotQuota>();
    quota->limit = std::max(limit, 1);
    quotas_[slot] = std::move(quota);
  }
}

bool AdmissionController::Admit(Lane lane, size_t depth) const {
  if (config_.policy == AdmissionPolicy::kBlock) return true;
  return depth < watermark(lane);
}

bool AdmissionController::TryChargeSlot(const std::string& slot) {
  if (quotas_.empty()) return true;
  const auto it = quotas_.find(slot);
  if (it == quotas_.end()) return true;
  SlotQuota& quota = *it->second;
  // Optimistic increment with a rollback on overshoot: two racing
  // submitters can momentarily read depth == limit, but the count never
  // stays above the limit and no admitted request is lost.
  if (quota.depth.fetch_add(1, std::memory_order_relaxed) >= quota.limit) {
    quota.depth.fetch_sub(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

void AdmissionController::ReleaseSlot(const std::string& slot) {
  if (quotas_.empty()) return;
  const auto it = quotas_.find(slot);
  if (it != quotas_.end()) {
    it->second->depth.fetch_sub(1, std::memory_order_relaxed);
  }
}

int AdmissionController::SlotDepth(const std::string& slot) const {
  const auto it = quotas_.find(slot);
  return it == quotas_.end()
             ? 0
             : it->second->depth.load(std::memory_order_relaxed);
}

}  // namespace rapid::serve
