#include "serve/admission.h"

#include <algorithm>

namespace rapid::serve {

AdmissionController::AdmissionController(const AdmissionConfig& config,
                                         int queue_capacity)
    : config_(config) {
  config_.high_bursts_per_low = std::max(config_.high_bursts_per_low, 1);
  const size_t capacity = static_cast<size_t>(std::max(queue_capacity, 1));
  auto resolve = [capacity](int mark) {
    return mark <= 0 ? capacity
                     : std::min(static_cast<size_t>(mark), capacity);
  };
  low_mark_ = resolve(config_.low_lane_watermark);
  // The high lane never sheds before the low lane: a high watermark below
  // the low one would invert the priority order.
  high_mark_ = std::max(resolve(config_.high_lane_watermark), low_mark_);
}

bool AdmissionController::Admit(Lane lane, size_t depth) const {
  if (config_.policy == AdmissionPolicy::kBlock) return true;
  return depth < watermark(lane);
}

}  // namespace rapid::serve
