#include "serve/snapshot.h"

#include <cstdint>
#include <fstream>

#include "rerank/neural_models.h"

namespace rapid::serve {

namespace {

constexpr uint32_t kMagic = 0x52534E50;  // "RSNP"
// v1: magic, version, Header (implicitly a RapidReranker).
// v2: magic, version, family tag (int32), Header.
constexpr uint32_t kVersion = 2;

struct Header {
  int32_t hidden_dim = 0;
  int32_t max_seq_len = 0;
  int32_t relevance_encoder = 0;
  int32_t diversity_aggregator = 0;
  int32_t head = 0;
  int32_t diversity_function = 0;
  int32_t train_hidden_dim = 0;
  int32_t train_epochs = 0;
  int32_t train_batch_size = 0;
  float train_learning_rate = 0.0f;
  float train_grad_clip = 0.0f;
  int32_t train_loss = 0;
  // Dataset fingerprint: the loader must serve the same feature space the
  // model was trained on, or every forward pass would shape-mismatch.
  int32_t num_topics = 0;
  int32_t user_feature_dim = 0;
  int32_t item_feature_dim = 0;
};

void FingerprintHeader(const data::Dataset& data, Header* h) {
  h->num_topics = data.num_topics;
  h->user_feature_dim = data.user_feature_dim();
  h->item_feature_dim = data.item_feature_dim();
}

Header MakeHeader(const core::RapidConfig& cfg, const data::Dataset& data) {
  Header h;
  h.hidden_dim = cfg.hidden_dim;
  h.max_seq_len = cfg.max_seq_len;
  h.relevance_encoder = static_cast<int32_t>(cfg.relevance_encoder);
  h.diversity_aggregator = static_cast<int32_t>(cfg.diversity_aggregator);
  h.head = static_cast<int32_t>(cfg.head);
  h.diversity_function = static_cast<int32_t>(cfg.diversity_function);
  h.train_hidden_dim = cfg.train.hidden_dim;
  h.train_epochs = cfg.train.epochs;
  h.train_batch_size = cfg.train.batch_size;
  h.train_learning_rate = cfg.train.learning_rate;
  h.train_grad_clip = cfg.train.grad_clip;
  h.train_loss = static_cast<int32_t>(cfg.train.loss);
  FingerprintHeader(data, &h);
  return h;
}

// Header for the baseline families, which share `NeuralRerankConfig` only:
// the RAPID-specific architecture fields stay at their defaults.
Header MakeHeader(const rerank::NeuralRerankConfig& cfg,
                  const data::Dataset& data) {
  core::RapidConfig rapid_cfg;
  rapid_cfg.hidden_dim = cfg.hidden_dim;
  rapid_cfg.train = cfg;
  return MakeHeader(rapid_cfg, data);
}

core::RapidConfig ConfigFromHeader(const Header& h) {
  core::RapidConfig cfg;
  cfg.hidden_dim = h.hidden_dim;
  cfg.max_seq_len = h.max_seq_len;
  cfg.relevance_encoder =
      static_cast<core::RelevanceEncoder>(h.relevance_encoder);
  cfg.diversity_aggregator =
      static_cast<core::DiversityAggregator>(h.diversity_aggregator);
  cfg.head = static_cast<core::OutputHead>(h.head);
  cfg.diversity_function =
      static_cast<core::DiversityFunctionKind>(h.diversity_function);
  cfg.train.hidden_dim = h.train_hidden_dim;
  cfg.train.epochs = h.train_epochs;
  cfg.train.batch_size = h.train_batch_size;
  cfg.train.learning_rate = h.train_learning_rate;
  cfg.train.grad_clip = h.train_grad_clip;
  cfg.train.loss = static_cast<rerank::RerankLoss>(h.train_loss);
  return cfg;
}

bool KnownFamily(int32_t tag) {
  return tag >= static_cast<int32_t>(SnapshotFamily::kRapid) &&
         tag <= static_cast<int32_t>(SnapshotFamily::kDesa);
}

bool ReadHeader(std::istream& in, Header* h, SnapshotFamily* family,
                uint32_t* format_version) {
  uint32_t magic = 0, version = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in || magic != kMagic || version < 1 || version > kVersion) {
    return false;
  }
  int32_t family_tag = static_cast<int32_t>(SnapshotFamily::kRapid);
  if (version >= 2) {
    in.read(reinterpret_cast<char*>(&family_tag), sizeof(family_tag));
    if (!in || !KnownFamily(family_tag)) return false;
  }
  in.read(reinterpret_cast<char*>(h), sizeof(*h));
  if (!in) return false;
  *family = static_cast<SnapshotFamily>(family_tag);
  *format_version = version;
  return true;
}

bool WriteSnapshot(const std::string& path, SnapshotFamily family,
                   const Header& header,
                   const rerank::NeuralReranker& model) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  const uint32_t magic = kMagic;
  const uint32_t version = kVersion;
  const int32_t family_tag = static_cast<int32_t>(family);
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  out.write(reinterpret_cast<const char*>(&family_tag), sizeof(family_tag));
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));
  if (!out) return false;
  return model.SaveModel(out);
}

bool FingerprintMatches(const Header& h, const data::Dataset& data) {
  return h.num_topics == data.num_topics &&
         h.user_feature_dim == data.user_feature_dim() &&
         h.item_feature_dim == data.item_feature_dim();
}

std::unique_ptr<rerank::NeuralReranker> MakeModel(SnapshotFamily family,
                                                  const Header& h) {
  const core::RapidConfig cfg = ConfigFromHeader(h);
  switch (family) {
    case SnapshotFamily::kRapid:
      return std::make_unique<core::RapidReranker>(cfg);
    case SnapshotFamily::kDlcm:
      return std::make_unique<rerank::DlcmReranker>(cfg.train);
    case SnapshotFamily::kPrm:
      return std::make_unique<rerank::PrmReranker>(cfg.train);
    case SnapshotFamily::kSetRank:
      return std::make_unique<rerank::SetRankReranker>(cfg.train);
    case SnapshotFamily::kSrga:
      return std::make_unique<rerank::SrgaReranker>(cfg.train);
    case SnapshotFamily::kDesa:
      return std::make_unique<rerank::DesaReranker>(cfg.train);
  }
  return nullptr;
}

}  // namespace

const char* SnapshotFamilyName(SnapshotFamily family) {
  switch (family) {
    case SnapshotFamily::kRapid:
      return "RAPID";
    case SnapshotFamily::kDlcm:
      return "DLCM";
    case SnapshotFamily::kPrm:
      return "PRM";
    case SnapshotFamily::kSetRank:
      return "SetRank";
    case SnapshotFamily::kSrga:
      return "SRGA";
    case SnapshotFamily::kDesa:
      return "DESA";
  }
  return "unknown";
}

bool Snapshot::Save(const std::string& path, const core::RapidReranker& model,
                    const data::Dataset& data) {
  return WriteSnapshot(path, SnapshotFamily::kRapid,
                       MakeHeader(model.config(), data), model);
}

bool Snapshot::Save(const std::string& path,
                    const rerank::NeuralReranker& model, SnapshotFamily family,
                    const data::Dataset& data) {
  // A RapidReranker shipped through the generic path keeps its full
  // architecture header, not just the shared training config.
  if (family == SnapshotFamily::kRapid) {
    const auto* rapid = dynamic_cast<const core::RapidReranker*>(&model);
    if (rapid == nullptr) return false;
    return Save(path, *rapid, data);
  }
  return WriteSnapshot(path, family, MakeHeader(model.train_config(), data),
                       model);
}

std::unique_ptr<core::RapidReranker> Snapshot::Load(const std::string& path,
                                                    const data::Dataset& data) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return nullptr;
  Header h;
  SnapshotFamily family;
  uint32_t version;
  if (!ReadHeader(in, &h, &family, &version)) return nullptr;
  if (family != SnapshotFamily::kRapid || !FingerprintMatches(h, data)) {
    return nullptr;
  }
  auto model = std::make_unique<core::RapidReranker>(ConfigFromHeader(h));
  if (!model->LoadModel(data, in)) return nullptr;
  return model;
}

std::unique_ptr<rerank::NeuralReranker> Snapshot::LoadAny(
    const std::string& path, const data::Dataset& data) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return nullptr;
  Header h;
  SnapshotFamily family;
  uint32_t version;
  if (!ReadHeader(in, &h, &family, &version)) return nullptr;
  if (!FingerprintMatches(h, data)) return nullptr;
  std::unique_ptr<rerank::NeuralReranker> model = MakeModel(family, h);
  if (model == nullptr || !model->LoadModel(data, in)) return nullptr;
  return model;
}

bool Snapshot::ReadConfig(const std::string& path, core::RapidConfig* config) {
  SnapshotInfo info;
  if (!ReadInfo(path, &info)) return false;
  *config = info.config;
  return true;
}

bool Snapshot::ReadInfo(const std::string& path, SnapshotInfo* info) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  Header h;
  if (!ReadHeader(in, &h, &info->family, &info->format_version)) return false;
  info->config = ConfigFromHeader(h);
  return true;
}

}  // namespace rapid::serve
