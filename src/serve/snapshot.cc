#include "serve/snapshot.h"

#include <cstdint>
#include <fstream>

namespace rapid::serve {

namespace {

constexpr uint32_t kMagic = 0x52534E50;  // "RSNP"
constexpr uint32_t kVersion = 1;

struct Header {
  int32_t hidden_dim = 0;
  int32_t max_seq_len = 0;
  int32_t relevance_encoder = 0;
  int32_t diversity_aggregator = 0;
  int32_t head = 0;
  int32_t diversity_function = 0;
  int32_t train_hidden_dim = 0;
  int32_t train_epochs = 0;
  int32_t train_batch_size = 0;
  float train_learning_rate = 0.0f;
  float train_grad_clip = 0.0f;
  int32_t train_loss = 0;
  // Dataset fingerprint: the loader must serve the same feature space the
  // model was trained on, or every forward pass would shape-mismatch.
  int32_t num_topics = 0;
  int32_t user_feature_dim = 0;
  int32_t item_feature_dim = 0;
};

Header MakeHeader(const core::RapidConfig& cfg, const data::Dataset& data) {
  Header h;
  h.hidden_dim = cfg.hidden_dim;
  h.max_seq_len = cfg.max_seq_len;
  h.relevance_encoder = static_cast<int32_t>(cfg.relevance_encoder);
  h.diversity_aggregator = static_cast<int32_t>(cfg.diversity_aggregator);
  h.head = static_cast<int32_t>(cfg.head);
  h.diversity_function = static_cast<int32_t>(cfg.diversity_function);
  h.train_hidden_dim = cfg.train.hidden_dim;
  h.train_epochs = cfg.train.epochs;
  h.train_batch_size = cfg.train.batch_size;
  h.train_learning_rate = cfg.train.learning_rate;
  h.train_grad_clip = cfg.train.grad_clip;
  h.train_loss = static_cast<int32_t>(cfg.train.loss);
  h.num_topics = data.num_topics;
  h.user_feature_dim = data.user_feature_dim();
  h.item_feature_dim = data.item_feature_dim();
  return h;
}

core::RapidConfig ConfigFromHeader(const Header& h) {
  core::RapidConfig cfg;
  cfg.hidden_dim = h.hidden_dim;
  cfg.max_seq_len = h.max_seq_len;
  cfg.relevance_encoder =
      static_cast<core::RelevanceEncoder>(h.relevance_encoder);
  cfg.diversity_aggregator =
      static_cast<core::DiversityAggregator>(h.diversity_aggregator);
  cfg.head = static_cast<core::OutputHead>(h.head);
  cfg.diversity_function =
      static_cast<core::DiversityFunctionKind>(h.diversity_function);
  cfg.train.hidden_dim = h.train_hidden_dim;
  cfg.train.epochs = h.train_epochs;
  cfg.train.batch_size = h.train_batch_size;
  cfg.train.learning_rate = h.train_learning_rate;
  cfg.train.grad_clip = h.train_grad_clip;
  cfg.train.loss = static_cast<rerank::RerankLoss>(h.train_loss);
  return cfg;
}

bool ReadHeader(std::istream& in, Header* h) {
  uint32_t magic = 0, version = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in || magic != kMagic || version != kVersion) return false;
  in.read(reinterpret_cast<char*>(h), sizeof(*h));
  return static_cast<bool>(in);
}

}  // namespace

bool Snapshot::Save(const std::string& path, const core::RapidReranker& model,
                    const data::Dataset& data) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  const uint32_t magic = kMagic;
  const uint32_t version = kVersion;
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  const Header h = MakeHeader(model.config(), data);
  out.write(reinterpret_cast<const char*>(&h), sizeof(h));
  if (!out) return false;
  return model.SaveModel(out);
}

std::unique_ptr<core::RapidReranker> Snapshot::Load(
    const std::string& path, const data::Dataset& data) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return nullptr;
  Header h;
  if (!ReadHeader(in, &h)) return nullptr;
  if (h.num_topics != data.num_topics ||
      h.user_feature_dim != data.user_feature_dim() ||
      h.item_feature_dim != data.item_feature_dim()) {
    return nullptr;
  }
  auto model = std::make_unique<core::RapidReranker>(ConfigFromHeader(h));
  if (!model->LoadModel(data, in)) return nullptr;
  return model;
}

bool Snapshot::ReadConfig(const std::string& path, core::RapidConfig* config) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  Header h;
  if (!ReadHeader(in, &h)) return false;
  *config = ConfigFromHeader(h);
  return true;
}

}  // namespace rapid::serve
