#include "serve/snapshot.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>

#include "rerank/neural_models.h"

namespace rapid::serve {

namespace {

constexpr uint32_t kMagic = 0x52534E50;  // "RSNP"
// v1: magic, version, Header (implicitly a RapidReranker).
// v2: magic, version, family tag (int32), Header.
// v3: v2 + canary trailer after the weight blob (see below).
constexpr uint32_t kVersion = 3;

// Canary trailer: [payload][payload_len u32][kCanaryMagic u32] at EOF.
// Payload: user_id i32, n u32, item ids i32[n], initial scores f32[n],
// m u32, expected model scores f32[m], tolerance f32. Anchored at the file
// *end* so readers recover it without parsing the weight blob, and pre-v3
// readers (which stop at the end of the blob) never see it.
constexpr uint32_t kCanaryMagic = 0x43534E50;  // "RSNC"
// A probe is a handful of items; anything bigger is a corrupt length.
constexpr uint32_t kMaxCanaryPayload = 1u << 16;
constexpr int kCanaryProbeItems = 10;

struct Header {
  int32_t hidden_dim = 0;
  int32_t max_seq_len = 0;
  int32_t relevance_encoder = 0;
  int32_t diversity_aggregator = 0;
  int32_t head = 0;
  int32_t diversity_function = 0;
  int32_t train_hidden_dim = 0;
  int32_t train_epochs = 0;
  int32_t train_batch_size = 0;
  float train_learning_rate = 0.0f;
  float train_grad_clip = 0.0f;
  int32_t train_loss = 0;
  // Dataset fingerprint: the loader must serve the same feature space the
  // model was trained on, or every forward pass would shape-mismatch.
  int32_t num_topics = 0;
  int32_t user_feature_dim = 0;
  int32_t item_feature_dim = 0;
};

void FingerprintHeader(const data::Dataset& data, Header* h) {
  h->num_topics = data.num_topics;
  h->user_feature_dim = data.user_feature_dim();
  h->item_feature_dim = data.item_feature_dim();
}

Header MakeHeader(const core::RapidConfig& cfg, const data::Dataset& data) {
  Header h;
  h.hidden_dim = cfg.hidden_dim;
  h.max_seq_len = cfg.max_seq_len;
  h.relevance_encoder = static_cast<int32_t>(cfg.relevance_encoder);
  h.diversity_aggregator = static_cast<int32_t>(cfg.diversity_aggregator);
  h.head = static_cast<int32_t>(cfg.head);
  h.diversity_function = static_cast<int32_t>(cfg.diversity_function);
  h.train_hidden_dim = cfg.train.hidden_dim;
  h.train_epochs = cfg.train.epochs;
  h.train_batch_size = cfg.train.batch_size;
  h.train_learning_rate = cfg.train.learning_rate;
  h.train_grad_clip = cfg.train.grad_clip;
  h.train_loss = static_cast<int32_t>(cfg.train.loss);
  FingerprintHeader(data, &h);
  return h;
}

// Header for the baseline families, which share `NeuralRerankConfig` only:
// the RAPID-specific architecture fields stay at their defaults.
Header MakeHeader(const rerank::NeuralRerankConfig& cfg,
                  const data::Dataset& data) {
  core::RapidConfig rapid_cfg;
  rapid_cfg.hidden_dim = cfg.hidden_dim;
  rapid_cfg.train = cfg;
  return MakeHeader(rapid_cfg, data);
}

core::RapidConfig ConfigFromHeader(const Header& h) {
  core::RapidConfig cfg;
  cfg.hidden_dim = h.hidden_dim;
  cfg.max_seq_len = h.max_seq_len;
  cfg.relevance_encoder =
      static_cast<core::RelevanceEncoder>(h.relevance_encoder);
  cfg.diversity_aggregator =
      static_cast<core::DiversityAggregator>(h.diversity_aggregator);
  cfg.head = static_cast<core::OutputHead>(h.head);
  cfg.diversity_function =
      static_cast<core::DiversityFunctionKind>(h.diversity_function);
  cfg.train.hidden_dim = h.train_hidden_dim;
  cfg.train.epochs = h.train_epochs;
  cfg.train.batch_size = h.train_batch_size;
  cfg.train.learning_rate = h.train_learning_rate;
  cfg.train.grad_clip = h.train_grad_clip;
  cfg.train.loss = static_cast<rerank::RerankLoss>(h.train_loss);
  return cfg;
}

bool KnownFamily(int32_t tag) {
  return tag >= static_cast<int32_t>(SnapshotFamily::kRapid) &&
         tag <= static_cast<int32_t>(SnapshotFamily::kDesa);
}

bool ReadHeader(std::istream& in, Header* h, SnapshotFamily* family,
                uint32_t* format_version) {
  uint32_t magic = 0, version = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in || magic != kMagic || version < 1 || version > kVersion) {
    return false;
  }
  int32_t family_tag = static_cast<int32_t>(SnapshotFamily::kRapid);
  if (version >= 2) {
    in.read(reinterpret_cast<char*>(&family_tag), sizeof(family_tag));
    if (!in || !KnownFamily(family_tag)) return false;
  }
  in.read(reinterpret_cast<char*>(h), sizeof(*h));
  if (!in) return false;
  *family = static_cast<SnapshotFamily>(family_tag);
  *format_version = version;
  return true;
}

// Deterministic probe list: the dataset's first user over its first few
// items, with synthetic descending initial scores. The specific choice is
// arbitrary — the probe only needs to exercise the forward pass — but it
// must be reproducible so the load-time check is exact.
CanaryProbe MakeCanaryProbe(const rerank::NeuralReranker& model,
                            const data::Dataset& data) {
  CanaryProbe probe;
  if (data.users.empty() || data.items.empty()) return probe;
  probe.list.user_id = data.users.front().id;
  const int n = std::min<int>(kCanaryProbeItems,
                              static_cast<int>(data.items.size()));
  for (int i = 0; i < n; ++i) {
    probe.list.items.push_back(data.items[static_cast<size_t>(i)].id);
    probe.list.scores.push_back(1.0f - 0.05f * static_cast<float>(i));
  }
  probe.expected_scores = model.ScoreList(data, probe.list);
  return probe;
}

template <typename T>
void PutTrailer(std::string* buf, T v) {
  buf->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool WriteCanaryTrailer(std::ostream& out, const CanaryProbe& probe) {
  std::string payload;
  PutTrailer<int32_t>(&payload, probe.list.user_id);
  PutTrailer<uint32_t>(&payload,
                       static_cast<uint32_t>(probe.list.items.size()));
  for (int id : probe.list.items) PutTrailer<int32_t>(&payload, id);
  for (float s : probe.list.scores) PutTrailer<float>(&payload, s);
  PutTrailer<uint32_t>(&payload,
                       static_cast<uint32_t>(probe.expected_scores.size()));
  for (float s : probe.expected_scores) PutTrailer<float>(&payload, s);
  PutTrailer<float>(&payload, probe.tolerance);
  const uint32_t len = static_cast<uint32_t>(payload.size());
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  out.write(reinterpret_cast<const char*>(&len), sizeof(len));
  out.write(reinterpret_cast<const char*>(&kCanaryMagic),
            sizeof(kCanaryMagic));
  return static_cast<bool>(out);
}

bool WriteSnapshot(const std::string& path, SnapshotFamily family,
                   const Header& header, const rerank::NeuralReranker& model,
                   const data::Dataset& data) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  const uint32_t magic = kMagic;
  const uint32_t version = kVersion;
  const int32_t family_tag = static_cast<int32_t>(family);
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  out.write(reinterpret_cast<const char*>(&family_tag), sizeof(family_tag));
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));
  if (!out) return false;
  if (!model.SaveModel(out)) return false;
  // Auto-record the canary so every LoadSlot of this file is validated
  // without the caller wiring SetCanary. An empty dataset (no probe to
  // record) writes an empty-but-well-formed trailer; ReadCanary reports it
  // as absent.
  return WriteCanaryTrailer(out, MakeCanaryProbe(model, data));
}

bool FingerprintMatches(const Header& h, const data::Dataset& data) {
  return h.num_topics == data.num_topics &&
         h.user_feature_dim == data.user_feature_dim() &&
         h.item_feature_dim == data.item_feature_dim();
}

std::unique_ptr<rerank::NeuralReranker> MakeModel(SnapshotFamily family,
                                                  const Header& h) {
  const core::RapidConfig cfg = ConfigFromHeader(h);
  switch (family) {
    case SnapshotFamily::kRapid:
      return std::make_unique<core::RapidReranker>(cfg);
    case SnapshotFamily::kDlcm:
      return std::make_unique<rerank::DlcmReranker>(cfg.train);
    case SnapshotFamily::kPrm:
      return std::make_unique<rerank::PrmReranker>(cfg.train);
    case SnapshotFamily::kSetRank:
      return std::make_unique<rerank::SetRankReranker>(cfg.train);
    case SnapshotFamily::kSrga:
      return std::make_unique<rerank::SrgaReranker>(cfg.train);
    case SnapshotFamily::kDesa:
      return std::make_unique<rerank::DesaReranker>(cfg.train);
  }
  return nullptr;
}

}  // namespace

const char* SnapshotFamilyName(SnapshotFamily family) {
  switch (family) {
    case SnapshotFamily::kRapid:
      return "RAPID";
    case SnapshotFamily::kDlcm:
      return "DLCM";
    case SnapshotFamily::kPrm:
      return "PRM";
    case SnapshotFamily::kSetRank:
      return "SetRank";
    case SnapshotFamily::kSrga:
      return "SRGA";
    case SnapshotFamily::kDesa:
      return "DESA";
  }
  return "unknown";
}

bool Snapshot::Save(const std::string& path, const core::RapidReranker& model,
                    const data::Dataset& data) {
  return WriteSnapshot(path, SnapshotFamily::kRapid,
                       MakeHeader(model.config(), data), model, data);
}

bool Snapshot::Save(const std::string& path,
                    const rerank::NeuralReranker& model, SnapshotFamily family,
                    const data::Dataset& data) {
  // A RapidReranker shipped through the generic path keeps its full
  // architecture header, not just the shared training config.
  if (family == SnapshotFamily::kRapid) {
    const auto* rapid = dynamic_cast<const core::RapidReranker*>(&model);
    if (rapid == nullptr) return false;
    return Save(path, *rapid, data);
  }
  return WriteSnapshot(path, family, MakeHeader(model.train_config(), data),
                       model, data);
}

std::unique_ptr<core::RapidReranker> Snapshot::Load(const std::string& path,
                                                    const data::Dataset& data) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return nullptr;
  Header h;
  SnapshotFamily family;
  uint32_t version;
  if (!ReadHeader(in, &h, &family, &version)) return nullptr;
  if (family != SnapshotFamily::kRapid || !FingerprintMatches(h, data)) {
    return nullptr;
  }
  auto model = std::make_unique<core::RapidReranker>(ConfigFromHeader(h));
  if (!model->LoadModel(data, in)) return nullptr;
  return model;
}

std::unique_ptr<rerank::NeuralReranker> Snapshot::LoadAny(
    const std::string& path, const data::Dataset& data) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return nullptr;
  Header h;
  SnapshotFamily family;
  uint32_t version;
  if (!ReadHeader(in, &h, &family, &version)) return nullptr;
  if (!FingerprintMatches(h, data)) return nullptr;
  std::unique_ptr<rerank::NeuralReranker> model = MakeModel(family, h);
  if (model == nullptr || !model->LoadModel(data, in)) return nullptr;
  return model;
}

bool Snapshot::ReadConfig(const std::string& path, core::RapidConfig* config) {
  SnapshotInfo info;
  if (!ReadInfo(path, &info)) return false;
  *config = info.config;
  return true;
}

bool Snapshot::ReadInfo(const std::string& path, SnapshotInfo* info) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  Header h;
  if (!ReadHeader(in, &h, &info->family, &info->format_version)) return false;
  info->config = ConfigFromHeader(h);
  return true;
}

namespace {

// Bounds-checked reader over the trailer payload.
class TrailerReader {
 public:
  TrailerReader(const char* data, size_t size) : data_(data), size_(size) {}

  template <typename T>
  bool Read(T* out) {
    if (size_ - pos_ < sizeof(T)) return false;
    std::memcpy(out, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool AtEnd() const { return pos_ == size_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace

bool Snapshot::ReadCanary(const std::string& path, CanaryProbe* probe) {
  // Gate on the header first: the trailer is located from the file end, so
  // without this check 4 bytes of weight data in a pre-v3 file could
  // masquerade as a trailer magic.
  SnapshotInfo info;
  if (!ReadInfo(path, &info) || info.format_version < 3) return false;

  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return false;
  const std::streamoff file_size = in.tellg();
  constexpr std::streamoff kFooterBytes = 8;  // payload_len + magic.
  if (file_size < kFooterBytes) return false;
  uint32_t payload_len = 0, magic = 0;
  in.seekg(file_size - kFooterBytes);
  in.read(reinterpret_cast<char*>(&payload_len), sizeof(payload_len));
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!in || magic != kCanaryMagic || payload_len > kMaxCanaryPayload ||
      static_cast<std::streamoff>(payload_len) > file_size - kFooterBytes) {
    return false;
  }
  std::string payload(payload_len, '\0');
  in.seekg(file_size - kFooterBytes - static_cast<std::streamoff>(payload_len));
  in.read(payload.data(), static_cast<std::streamsize>(payload_len));
  if (!in) return false;

  TrailerReader reader(payload.data(), payload.size());
  CanaryProbe out;
  int32_t user_id = 0;
  uint32_t n = 0, m = 0;
  if (!reader.Read(&user_id) || !reader.Read(&n)) return false;
  if (n == 0 || n > static_cast<uint32_t>(kCanaryProbeItems)) return false;
  out.list.user_id = user_id;
  out.list.items.resize(n);
  out.list.scores.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    int32_t id = 0;
    if (!reader.Read(&id)) return false;
    out.list.items[i] = id;
  }
  for (uint32_t i = 0; i < n; ++i) {
    if (!reader.Read(&out.list.scores[i])) return false;
  }
  if (!reader.Read(&m) || m != n) return false;
  out.expected_scores.resize(m);
  for (uint32_t i = 0; i < m; ++i) {
    if (!reader.Read(&out.expected_scores[i])) return false;
  }
  if (!reader.Read(&out.tolerance) || !reader.AtEnd()) return false;
  if (!(out.tolerance >= 0.0f)) return false;  // Rejects NaN tolerance.
  *probe = std::move(out);
  return true;
}

}  // namespace rapid::serve
