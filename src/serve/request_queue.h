#ifndef RAPID_SERVE_REQUEST_QUEUE_H_
#define RAPID_SERVE_REQUEST_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <vector>

namespace rapid::serve {

/// A bounded multi-producer/multi-consumer queue with micro-batch pops.
///
/// Producers block in `Push` while the queue is full (backpressure —
/// admission control beyond "block the caller" is a roadmap follow-on).
/// Consumers call `PopBatch`, which blocks until at least one item is
/// available, then keeps collecting until the batch is full or the batching
/// window has elapsed — the micro-batching primitive of `ServingEngine`.
/// `Close` wakes everyone: producers fail fast, consumers drain what is
/// left and then see empty batches.
template <typename T>
class BoundedRequestQueue {
 public:
  explicit BoundedRequestQueue(size_t capacity) : capacity_(capacity) {}

  BoundedRequestQueue(const BoundedRequestQueue&) = delete;
  BoundedRequestQueue& operator=(const BoundedRequestQueue&) = delete;

  /// Blocks while full. Returns false once closed, in which case `item` is
  /// left untouched so the caller can still dispose of or serve it.
  bool Push(T&& item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Pops up to `max_items` into `out` (appended). Blocks until the first
  /// item arrives; afterwards waits at most `max_wait` for the batch to
  /// fill. Returns the number popped — 0 only when the queue is closed and
  /// fully drained.
  size_t PopBatch(size_t max_items, std::chrono::microseconds max_wait,
                  std::vector<T>* out) {
    const size_t before = out->size();
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
    const auto deadline = std::chrono::steady_clock::now() + max_wait;
    for (;;) {
      while (!items_.empty() && out->size() - before < max_items) {
        out->push_back(std::move(items_.front()));
        items_.pop_front();
        not_full_.notify_one();
      }
      if (out->size() - before >= max_items || closed_ ||
          max_wait.count() <= 0) {
        break;
      }
      if (!not_empty_.wait_until(lock, deadline, [this] {
            return !items_.empty() || closed_;
          })) {
        break;  // Batching window elapsed.
      }
    }
    return out->size() - before;
  }

  /// Marks the queue closed and wakes all waiters. Idempotent.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// Current depth (racy by nature; used for gauges).
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace rapid::serve

#endif  // RAPID_SERVE_REQUEST_QUEUE_H_
