#ifndef RAPID_SERVE_REQUEST_QUEUE_H_
#define RAPID_SERVE_REQUEST_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <vector>

namespace rapid::serve {

/// A bounded multi-producer/multi-consumer queue with micro-batch pops and
/// optional priority lanes.
///
/// The queue holds `num_lanes` FIFO lanes sharing one capacity; lane 0 is
/// the highest priority. `PopBatch` normally drains the highest-priority
/// non-empty lane, but the drain is starvation-free: after
/// `bursts_per_yield` consecutive pops that bypassed a waiting
/// lower-priority item, one item from the next non-empty lower lane is
/// served before priority resumes. With the default single lane the queue
/// degenerates to the plain FIFO used by `ServingEngine`.
///
/// Producers choose between three admission styles:
///  - `Push`       blocks while the queue is full (backpressure);
///  - `TryPush`    never blocks — reports `kFull` so the caller can shed;
///  - `PushUntil`  blocks at most until a deadline (a request never waits
///                 in admission longer than it could still be served).
/// On any failure the item is left untouched so the caller can still
/// dispose of or serve it.
///
/// Consumers call `PopBatch`, which blocks until at least one item is
/// available, then keeps collecting until the batch is full or the batching
/// window has elapsed — the micro-batching primitive of the serving tier.
/// `Close` wakes everyone: producers fail fast, consumers drain what is
/// left and then see empty batches.
template <typename T>
class BoundedRequestQueue {
 public:
  /// Outcome of a non-blocking or deadline-bounded push.
  enum class PushResult { kOk, kFull, kClosed };

  explicit BoundedRequestQueue(size_t capacity, int num_lanes = 1,
                               int bursts_per_yield = 4)
      : capacity_(capacity > 0 ? capacity : 1),
        bursts_per_yield_(bursts_per_yield > 0 ? bursts_per_yield : 1),
        lanes_(num_lanes > 0 ? static_cast<size_t>(num_lanes) : 1) {}

  BoundedRequestQueue(const BoundedRequestQueue&) = delete;
  BoundedRequestQueue& operator=(const BoundedRequestQueue&) = delete;

  /// Blocks while full. Returns false once closed, in which case `item` is
  /// left untouched so the caller can still dispose of or serve it.
  bool Push(T&& item, size_t lane = 0) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [this] { return count_ < capacity_ || closed_; });
    if (closed_) return false;
    Enqueue(std::move(item), lane);
    return true;
  }

  /// Never blocks: `kFull` when at capacity, `kClosed` after `Close`; the
  /// item is moved from only on `kOk`.
  PushResult TryPush(T&& item, size_t lane = 0) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return PushResult::kClosed;
    if (count_ >= capacity_) return PushResult::kFull;
    Enqueue(std::move(item), lane);
    return PushResult::kOk;
  }

  /// Blocks while full, but only until `deadline`; `kFull` on timeout. The
  /// item is moved from only on `kOk`.
  PushResult PushUntil(T&& item, std::chrono::steady_clock::time_point deadline,
                       size_t lane = 0) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!not_full_.wait_until(lock, deadline, [this] {
          return count_ < capacity_ || closed_;
        })) {
      return PushResult::kFull;
    }
    if (closed_) return PushResult::kClosed;
    Enqueue(std::move(item), lane);
    return PushResult::kOk;
  }

  /// Pops up to `max_items` into `out` (appended), following the
  /// starvation-free priority drain. Blocks until the first item arrives;
  /// afterwards waits at most `max_wait` for the batch to fill. Returns the
  /// number popped — 0 only when the queue is closed and fully drained.
  size_t PopBatch(size_t max_items, std::chrono::microseconds max_wait,
                  std::vector<T>* out) {
    const size_t before = out->size();
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return count_ > 0 || closed_; });
    const auto deadline = std::chrono::steady_clock::now() + max_wait;
    for (;;) {
      while (count_ > 0 && out->size() - before < max_items) {
        std::deque<T>& lane = lanes_[PickLaneLocked()];
        out->push_back(std::move(lane.front()));
        lane.pop_front();
        --count_;
        not_full_.notify_one();
      }
      if (out->size() - before >= max_items || closed_ ||
          max_wait.count() <= 0) {
        break;
      }
      if (!not_empty_.wait_until(lock, deadline, [this] {
            return count_ > 0 || closed_;
          })) {
        break;  // Batching window elapsed.
      }
    }
    return out->size() - before;
  }

  /// Marks the queue closed and wakes all waiters. Idempotent.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// Current total depth across lanes (racy by nature; used for gauges and
  /// admission watermarks).
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }

  /// Current depth of one lane.
  size_t lane_size(size_t lane) const {
    std::lock_guard<std::mutex> lock(mu_);
    return lane < lanes_.size() ? lanes_[lane].size() : 0;
  }

  size_t num_lanes() const { return lanes_.size(); }

 private:
  void Enqueue(T&& item, size_t lane) {
    lanes_[lane < lanes_.size() ? lane : lanes_.size() - 1].push_back(
        std::move(item));
    ++count_;
    not_empty_.notify_one();
  }

  /// The drain policy. Picks the highest-priority non-empty lane unless
  /// that choice has already bypassed waiting lower-priority work
  /// `bursts_per_yield_` times in a row, in which case the next non-empty
  /// lower lane is served once. Requires `count_ > 0`; caller holds `mu_`.
  size_t PickLaneLocked() {
    size_t top = 0;
    while (lanes_[top].empty()) ++top;
    size_t lower = top + 1;
    while (lower < lanes_.size() && lanes_[lower].empty()) ++lower;
    if (lower >= lanes_.size()) {  // Nothing waiting behind `top`.
      bypass_streak_ = 0;
      return top;
    }
    if (bypass_streak_ >= bursts_per_yield_) {
      bypass_streak_ = 0;
      return lower;
    }
    ++bypass_streak_;
    return top;
  }

  const size_t capacity_;
  const int bursts_per_yield_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::vector<std::deque<T>> lanes_;
  size_t count_ = 0;
  int bypass_streak_ = 0;
  bool closed_ = false;
};

}  // namespace rapid::serve

#endif  // RAPID_SERVE_REQUEST_QUEUE_H_
