#ifndef RAPID_SERVE_MODEL_REGISTRY_H_
#define RAPID_SERVE_MODEL_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "rerank/reranker.h"
#include "serve/metrics.h"

namespace rapid::serve {

/// One published model version of a slot: the immutable unit the registry
/// hands to workers. A worker resolves its request's slot to a
/// `ServedModel` exactly once and runs the whole re-rank against it, so
/// every response is attributable to one version — a concurrent republish
/// can never produce a torn read. The old version stays alive (shared_ptr)
/// until the last in-flight batch holding it finishes, then retires.
struct ServedModel {
  /// The slot's metrics, shared across versions of the slot.
  std::shared_ptr<ServingMetrics> metrics;
  /// The fitted model; workers call only its const inference surface.
  std::shared_ptr<const rerank::Reranker> model;
  /// `model->name()`, captured at publish (name() is virtual and cheap,
  /// but capturing it makes response attribution allocation-free).
  std::string model_name;
  /// Monotonically increasing per slot, starting at 1. Monotonicity is
  /// load-bearing beyond attribution: `serve::ResultCache` keys entries on
  /// this version, so "versions are never reused" is exactly what makes
  /// every stale cache entry unreachable the instant a publish lands — a
  /// recycled version number would resurrect old cached responses.
  uint64_t version = 0;
};

/// A named slot table mapping routing keys ("taobao-main", "ab-arm-b",
/// ...) to the currently published model version, with RCU-style hot
/// swap: `Publish` atomically replaces the slot's `ServedModel` under a
/// short critical section; readers that already acquired the old version
/// keep serving with it until they drop their reference. No reader ever
/// blocks on a publish, and no publish waits for readers.
///
/// All methods are thread-safe. The registry never touches worker threads
/// itself — building the model (the expensive part of a swap) happens on
/// the publisher's thread before `Publish` is called.
class ModelRegistry {
 public:
  /// Publishes `model` as the new current version of `slot`, creating the
  /// slot on first use. Returns the new version number (1 for a fresh
  /// slot). The slot's metrics survive the swap.
  uint64_t Publish(const std::string& slot,
                   std::shared_ptr<const rerank::Reranker> model);

  /// The current version of `slot`, or null if the slot does not exist.
  /// The returned pointer stays valid (and the model alive) for as long as
  /// the caller holds it, regardless of concurrent publishes or removes.
  std::shared_ptr<const ServedModel> Acquire(const std::string& slot) const;

  /// Drops `slot` from the table. In-flight requests holding the model
  /// finish normally; new lookups fail. Returns false if absent.
  bool Remove(const std::string& slot);

  /// Registered slot names, sorted.
  std::vector<std::string> Names() const;

  /// Current version of `slot`, 0 if absent.
  uint64_t VersionOf(const std::string& slot) const;

  size_t size() const;

 private:
  mutable std::mutex mu_;
  /// Slot -> current version. The metrics object and version counter live
  /// inside the published `ServedModel`s; on republish the new version
  /// inherits the old one's metrics and increments its version.
  std::map<std::string, std::shared_ptr<const ServedModel>> slots_;
};

}  // namespace rapid::serve

#endif  // RAPID_SERVE_MODEL_REGISTRY_H_
