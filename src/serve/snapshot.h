#ifndef RAPID_SERVE_SNAPSHOT_H_
#define RAPID_SERVE_SNAPSHOT_H_

#include <memory>
#include <string>

#include "core/rapid.h"

namespace rapid::serve {

/// Self-describing on-disk format for a fitted `RapidReranker`: a
/// `RapidConfig` header plus a dataset fingerprint (topic count and feature
/// dims), followed by the weight blob of `nn::SaveParams`. Unlike
/// `NeuralReranker::SaveModel`, a snapshot can be rehydrated without the
/// loader knowing the training-time configuration — the header carries it —
/// which is what an online serving process needs: train offline, ship one
/// file, `Load` and serve.
///
/// The format is versioned; `Load` rejects unknown versions, mismatched
/// dataset dimensions, and truncated weight blobs by returning null.
struct Snapshot {
  /// Writes `model`'s configuration and weights to `path`. `data` supplies
  /// the dimension fingerprint validated at load time. The model must have
  /// been fitted (or loaded). Returns false on I/O failure.
  static bool Save(const std::string& path, const core::RapidReranker& model,
                   const data::Dataset& data);

  /// Reads the header, reconstructs a `RapidReranker` with the saved
  /// configuration, and restores its weights. Returns null if the file is
  /// missing/corrupt, the version is unknown, or `data`'s dimensions do not
  /// match the fingerprint recorded at save time.
  static std::unique_ptr<core::RapidReranker> Load(const std::string& path,
                                                   const data::Dataset& data);

  /// Reads only the configuration header (inspection/tooling). Returns
  /// false if the file is not a valid snapshot.
  static bool ReadConfig(const std::string& path, core::RapidConfig* config);
};

}  // namespace rapid::serve

#endif  // RAPID_SERVE_SNAPSHOT_H_
