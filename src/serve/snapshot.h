#ifndef RAPID_SERVE_SNAPSHOT_H_
#define RAPID_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/rapid.h"
#include "datagen/types.h"

namespace rapid::serve {

/// A recorded probe for validating snapshots before they are published
/// (`ServingRouter::LoadSlot`): `expected_scores` is the fitted model's
/// `ScoreList` output on `list`, captured at save time. A snapshot whose
/// scores drift past `tolerance` on any item — including NaN — is
/// corrupt-but-parseable and is rejected before the swap.
///
/// Since format v3, `Snapshot::Save` auto-records a probe into the
/// `.rsnp` trailer, so every `LoadSlot` validates every snapshot without
/// the caller wiring `ServingRouter::SetCanary` by hand; `SetCanary`
/// remains as an override for custom probe lists.
struct CanaryProbe {
  data::ImpressionList list;
  std::vector<float> expected_scores;
  /// Max absolute per-score drift. Snapshot round trips are bit-exact, so
  /// any honest load reproduces the scores exactly; the tolerance only
  /// absorbs future quantized/compressed formats.
  float tolerance = 1e-4f;
};

/// Which re-ranker family a snapshot rehydrates into. Stored as a tag in
/// the snapshot header (format v2+) so a serving process can reconstruct
/// the right class without being told; v1 files predate the tag and are
/// implicitly `kRapid`.
enum class SnapshotFamily : int32_t {
  kRapid = 0,
  kDlcm = 1,
  kPrm = 2,
  kSetRank = 3,
  kSrga = 4,
  kDesa = 5,
};

/// Human-readable family name ("RAPID", "PRM", ...).
const char* SnapshotFamilyName(SnapshotFamily family);

/// Everything the header records about a snapshot, for inspection tooling
/// and the model registry.
struct SnapshotInfo {
  SnapshotFamily family = SnapshotFamily::kRapid;
  /// On-disk format version of the file (1, 2, or 3).
  uint32_t format_version = 0;
  /// Full configuration. For `kRapid` every field is meaningful; for the
  /// baseline families only `train` (the shared `NeuralRerankConfig`)
  /// applies — the RAPID-specific architecture enums are left at defaults.
  core::RapidConfig config;
};

/// Self-describing on-disk format for a fitted neural re-ranker: a family
/// tag and configuration header plus a dataset fingerprint (topic count
/// and feature dims), followed by the weight blob of `nn::SaveParams`.
/// Unlike `NeuralReranker::SaveModel`, a snapshot can be rehydrated
/// without the loader knowing the training-time configuration — the header
/// carries it — which is what an online serving process needs: train
/// offline, ship one file, `Load` and serve.
///
/// The format is versioned; loaders reject unknown versions, unknown
/// family tags, mismatched dataset dimensions, and truncated weight blobs
/// by returning null. v1 files (written before the family tag existed)
/// still load, as `RapidReranker`; v2 files (no canary trailer) load but
/// report no embedded probe.
///
/// Format v3 appends a self-describing canary trailer after the weight
/// blob: a deterministic probe list plus the model's scores on it at save
/// time, closed by a fixed footer (`payload length`, trailer magic) at
/// EOF. Readers locate it from the file end, so no weight-blob parsing is
/// needed to recover the probe, and pre-v3 readers — which stop at the
/// end of the weight blob — are untouched by the extra bytes.
struct Snapshot {
  /// Writes `model`'s configuration and weights to `path`. `data` supplies
  /// the dimension fingerprint validated at load time. The model must have
  /// been fitted (or loaded). Returns false on I/O failure.
  static bool Save(const std::string& path, const core::RapidReranker& model,
                   const data::Dataset& data);

  /// Family-tagged save for any neural re-ranker, so baselines (PRM, DLCM,
  /// ...) ship through the same registry. `family` must name `model`'s
  /// actual class — `LoadAny` reconstructs from the tag, and a mismatched
  /// tag surfaces as a weight-shape failure at load. Passing a
  /// `RapidReranker` with `kRapid` is equivalent to the overload above
  /// (the full RAPID architecture header is written). Baseline families
  /// persist the shared `NeuralRerankConfig` only; constructor arguments
  /// outside it (e.g. SRGA's local window) reload at their defaults.
  static bool Save(const std::string& path,
                   const rerank::NeuralReranker& model, SnapshotFamily family,
                   const data::Dataset& data);

  /// Reads the header, reconstructs a `RapidReranker` with the saved
  /// configuration, and restores its weights. Returns null if the file is
  /// missing/corrupt, the version is unknown, the family is not `kRapid`,
  /// or `data`'s dimensions do not match the fingerprint recorded at save
  /// time.
  static std::unique_ptr<core::RapidReranker> Load(const std::string& path,
                                                   const data::Dataset& data);

  /// Like `Load`, but dispatches on the family tag and reconstructs the
  /// corresponding re-ranker class — the loader the multi-model registry
  /// uses. Returns null under the same conditions as `Load` (any known
  /// family is accepted).
  static std::unique_ptr<rerank::NeuralReranker> LoadAny(
      const std::string& path, const data::Dataset& data);

  /// Reads only the configuration header (inspection/tooling). Returns
  /// false if the file is not a valid snapshot.
  static bool ReadConfig(const std::string& path, core::RapidConfig* config);

  /// Reads the header including the family tag and format version.
  static bool ReadInfo(const std::string& path, SnapshotInfo* info);

  /// Recovers the canary probe auto-recorded by `Save` (format v3+).
  /// Returns false — without touching `probe` — for pre-v3 files, a
  /// missing/corrupt trailer, or an internally inconsistent payload; the
  /// snapshot itself stays loadable either way.
  static bool ReadCanary(const std::string& path, CanaryProbe* probe);
};

}  // namespace rapid::serve

#endif  // RAPID_SERVE_SNAPSHOT_H_
