#ifndef RAPID_METRICS_METRICS_H_
#define RAPID_METRICS_METRICS_H_

#include <vector>

#include "datagen/types.h"

namespace rapid::metrics {

/// Total clicks in the top-k prefix (paper's `click@k` per request).
float ClickAtK(const std::vector<int>& clicks, int k);

/// Normalized discounted cumulative gain at k with the click labels as
/// gains: DCG over the displayed order divided by the DCG of the ideal
/// (clicks-first) order. Lists with no clicks in the top-k score 0.
float NdcgAtK(const std::vector<int>& clicks, int k);

/// Expected number of covered topics of the top-k items:
/// `sum_j c_j(S_{1:k})` with the probabilistic coverage of Eq.(4).
float DivAtK(const data::Dataset& data, const std::vector<int>& items, int k);

/// Revenue at k: sum of bid prices of clicked items in the top-k prefix
/// (the App Store platform objective).
float RevAtK(const data::Dataset& data, const std::vector<int>& items,
             const std::vector<int>& clicks, int k);

/// Intra-list distance at k: mean pairwise (1 - cosine) dissimilarity of
/// the top-k items' topic-coverage vectors. A standard complementary
/// diversity metric (Ziegler et al. 2005); 0 for k < 2.
float IldAtK(const data::Dataset& data, const std::vector<int>& items,
             int k);

/// alpha-NDCG at k (Clarke et al. 2008): redundancy-penalized DCG where
/// the gain of covering topic j a (c+1)-th time is `tau^j (1-alpha)^c`,
/// normalized by the greedy-ideal ordering of the same items.
/// Rewards rankings that cover many topics early.
float AlphaNdcgAtK(const data::Dataset& data, const std::vector<int>& items,
                   int k, float alpha = 0.5f);

/// Mean / standard deviation / count of a sample.
struct Summary {
  double mean = 0.0;
  double stddev = 0.0;
  int n = 0;
};

Summary Summarize(const std::vector<float>& values);

/// Two-sided paired t-test p-value for H0: mean(a - b) == 0.
/// `a` and `b` must be the same length (>= 2). Returns 1.0 when the
/// difference is identically zero.
double PairedTTestPValue(const std::vector<float>& a,
                         const std::vector<float>& b);

/// CDF of Student's t distribution with `df` degrees of freedom (via the
/// regularized incomplete beta function). Exposed for tests.
double StudentTCdf(double t, double df);

}  // namespace rapid::metrics

#endif  // RAPID_METRICS_METRICS_H_
