#include "metrics/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace rapid::metrics {

float ClickAtK(const std::vector<int>& clicks, int k) {
  const int n = std::min<int>(k, static_cast<int>(clicks.size()));
  int total = 0;
  for (int i = 0; i < n; ++i) total += clicks[i];
  return static_cast<float>(total);
}

float NdcgAtK(const std::vector<int>& clicks, int k) {
  const int n = std::min<int>(k, static_cast<int>(clicks.size()));
  double dcg = 0.0;
  int num_clicks = 0;
  for (int i = 0; i < n; ++i) {
    if (clicks[i]) {
      dcg += 1.0 / std::log2(i + 2.0);
      ++num_clicks;
    }
  }
  if (num_clicks == 0) return 0.0f;
  double idcg = 0.0;
  for (int i = 0; i < num_clicks; ++i) idcg += 1.0 / std::log2(i + 2.0);
  return static_cast<float>(dcg / idcg);
}

float DivAtK(const data::Dataset& data, const std::vector<int>& items,
             int k) {
  float total = 0.0f;
  for (int j = 0; j < data.num_topics; ++j) {
    total += data::TopicCoverage(data, items, j, k);
  }
  return total;
}

float RevAtK(const data::Dataset& data, const std::vector<int>& items,
             const std::vector<int>& clicks, int k) {
  const int n = std::min<int>(
      k, static_cast<int>(std::min(items.size(), clicks.size())));
  float total = 0.0f;
  for (int i = 0; i < n; ++i) {
    if (clicks[i]) total += data.item(items[i]).bid;
  }
  return total;
}

namespace {

float CoverageCosineOf(const data::Item& a, const data::Item& b) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t j = 0; j < a.topic_coverage.size(); ++j) {
    dot += a.topic_coverage[j] * b.topic_coverage[j];
    na += a.topic_coverage[j] * a.topic_coverage[j];
    nb += b.topic_coverage[j] * b.topic_coverage[j];
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0f;
  return static_cast<float>(dot / std::sqrt(na * nb));
}

// Redundancy-penalized DCG of an ordering (alpha-DCG numerator).
double AlphaDcg(const data::Dataset& data, const std::vector<int>& order,
                int k, float alpha) {
  const int n = std::min<int>(k, static_cast<int>(order.size()));
  std::vector<double> seen(data.num_topics, 0.0);  // Cover counts.
  double dcg = 0.0;
  for (int i = 0; i < n; ++i) {
    const auto& tau = data.item(order[i]).topic_coverage;
    double gain = 0.0;
    for (int j = 0; j < data.num_topics; ++j) {
      gain += tau[j] * std::pow(1.0 - alpha, seen[j]);
      seen[j] += tau[j];
    }
    dcg += gain / std::log2(i + 2.0);
  }
  return dcg;
}

}  // namespace

float IldAtK(const data::Dataset& data, const std::vector<int>& items,
             int k) {
  const int n = std::min<int>(k, static_cast<int>(items.size()));
  if (n < 2) return 0.0f;
  double total = 0.0;
  int pairs = 0;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      total += 1.0 - CoverageCosineOf(data.item(items[i]),
                                      data.item(items[j]));
      ++pairs;
    }
  }
  return static_cast<float>(total / pairs);
}

float AlphaNdcgAtK(const data::Dataset& data, const std::vector<int>& items,
                   int k, float alpha) {
  const int n = std::min<int>(k, static_cast<int>(items.size()));
  if (n == 0) return 0.0f;
  const double dcg = AlphaDcg(data, items, n, alpha);

  // Greedy ideal ordering of the same item set.
  std::vector<int> rest(items.begin(), items.begin() + n);
  std::vector<int> ideal;
  std::vector<double> seen(data.num_topics, 0.0);
  while (!rest.empty()) {
    int best = -1;
    double best_gain = -1.0;
    for (size_t i = 0; i < rest.size(); ++i) {
      const auto& tau = data.item(rest[i]).topic_coverage;
      double gain = 0.0;
      for (int j = 0; j < data.num_topics; ++j) {
        gain += tau[j] * std::pow(1.0 - alpha, seen[j]);
      }
      if (gain > best_gain) {
        best_gain = gain;
        best = static_cast<int>(i);
      }
    }
    const auto& tau = data.item(rest[best]).topic_coverage;
    for (int j = 0; j < data.num_topics; ++j) seen[j] += tau[j];
    ideal.push_back(rest[best]);
    rest.erase(rest.begin() + best);
  }
  const double idcg = AlphaDcg(data, ideal, n, alpha);
  return idcg > 0.0 ? static_cast<float>(dcg / idcg) : 0.0f;
}

Summary Summarize(const std::vector<float>& values) {
  Summary s;
  s.n = static_cast<int>(values.size());
  if (s.n == 0) return s;
  double sum = 0.0;
  for (float v : values) sum += v;
  s.mean = sum / s.n;
  double ss = 0.0;
  for (float v : values) ss += (v - s.mean) * (v - s.mean);
  s.stddev = s.n > 1 ? std::sqrt(ss / (s.n - 1)) : 0.0;
  return s;
}

namespace {

// Regularized incomplete beta function I_x(a, b) by Lentz's continued
// fraction (Numerical Recipes style).
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-12;
  constexpr double kFpMin = 1e-300;
  const double qab = a + b, qap = a + 1.0, qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

double RegularizedIncompleteBeta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_beta =
      std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b);
  const double front =
      std::exp(ln_beta + a * std::log(x) + b * std::log(1.0 - x));
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

}  // namespace

double StudentTCdf(double t, double df) {
  const double x = df / (df + t * t);
  const double p = 0.5 * RegularizedIncompleteBeta(df / 2.0, 0.5, x);
  return t >= 0.0 ? 1.0 - p : p;
}

double PairedTTestPValue(const std::vector<float>& a,
                         const std::vector<float>& b) {
  assert(a.size() == b.size());
  const int n = static_cast<int>(a.size());
  assert(n >= 2);
  std::vector<float> diff(n);
  for (int i = 0; i < n; ++i) diff[i] = a[i] - b[i];
  Summary s = Summarize(diff);
  if (s.stddev == 0.0) return s.mean == 0.0 ? 1.0 : 0.0;
  const double t = s.mean / (s.stddev / std::sqrt(static_cast<double>(n)));
  const double df = n - 1;
  // Two-sided.
  return 2.0 * (1.0 - StudentTCdf(std::fabs(t), df));
}

}  // namespace rapid::metrics
