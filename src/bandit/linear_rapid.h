#ifndef RAPID_BANDIT_LINEAR_RAPID_H_
#define RAPID_BANDIT_LINEAR_RAPID_H_

#include <random>
#include <vector>

#include "click/dcm.h"
#include "datagen/types.h"

namespace rapid::bandit {

/// Context features of placing `item_id` after `prefix` for `user_id`:
/// `[1, x_u, x_v, tau_v, hist_dist ⊙ zeta]` where `zeta` is the marginal
/// coverage gain over the prefix. The personalization enters through the
/// user's observable history topic distribution — the observable analogue
/// of `theta^T = b^T T` in the paper's linearized model.
std::vector<float> BanditFeatures(const data::Dataset& data, int user_id,
                                  const std::vector<int>& prefix,
                                  int item_id);

/// Feature dimension of `BanditFeatures`: `1 + q_u + q_v + 2m`.
int BanditFeatureDim(const data::Dataset& data);

/// A DCM whose attraction is *exactly linear* in `BanditFeatures` — the
/// environment Theorem 5.1 assumes ("the click probability is a linear
/// combination of relevance and diversity"). The hidden `omega*` puts most
/// mass on the item quality feature, the topic coverage block, and the
/// personalized-diversity block, calibrated so attractions stay inside
/// [0, 1] (the clip is almost never active).
class LinearDcmEnvironment {
 public:
  LinearDcmEnvironment(const data::Dataset* data, uint64_t seed);

  /// Attraction of the item at `pos` of `items` given the prefix before it.
  float Attraction(int user_id, const std::vector<int>& items,
                   int pos) const;
  /// Termination probability at 1-based position k (decreasing in k).
  float Termination(int k) const;
  /// Samples DCM clicks for the whole displayed list.
  std::vector<int> SimulateClicks(int user_id, const std::vector<int>& items,
                                  std::mt19937_64& rng) const;
  /// `f(S, eps, phi)` of the top-k prefix.
  float TrueSatisfaction(int user_id, const std::vector<int>& items,
                         int k) const;

  const std::vector<float>& omega_star() const { return omega_; }

 private:
  const data::Dataset* data_;
  std::vector<float> omega_;
};

/// The linearized RAPID of the paper's Section V: the re-ranking function
/// is `phi = omega^T eta` with `eta = [x_u, x_v, tau_v, theta-weighted
/// marginal diversity]`, scored by a LinUCB-style upper confidence bound
/// and selected greedily position-by-position (the gamma-approximate greedy
/// the regret bound assumes).
///
/// Maintains the ridge-regression statistics `M = sigma^2 I + sum eta eta^T`
/// (inverse kept incrementally via Sherman-Morrison) and
/// `b = sum click * eta`.
class LinearRapidBandit {
 public:
  struct Config {
    /// Exploration scale `s` of the confidence radius.
    float exploration = 0.6f;
    /// Ridge regularization `sigma^2`.
    float ridge = 1.0f;
    /// Re-ranked list length K.
    int k = 5;
  };

  LinearRapidBandit(const data::Dataset* data, Config config);

  /// Feature dimension q0 (see `BanditFeatureDim`).
  int dim() const { return dim_; }

  /// Context features; delegates to `BanditFeatures`.
  std::vector<float> Features(int user_id, const std::vector<int>& prefix,
                              int item_id) const;

  /// UCB score of one candidate in context.
  float UcbScore(const std::vector<float>& eta) const;

  /// Mean (exploitation-only) score of one candidate.
  float MeanScore(const std::vector<float>& eta) const;

  /// Greedily selects the top-K list from `candidates` by UCB, updating
  /// the marginal-diversity context after each pick.
  std::vector<int> SelectList(int user_id,
                              const std::vector<int>& candidates) const;

  /// Updates the statistics with the displayed list and observed clicks.
  void Update(int user_id, const std::vector<int>& displayed,
              const std::vector<int>& clicks);

  /// Number of Update calls so far.
  int rounds() const { return rounds_; }

 private:
  const data::Dataset* data_;
  Config config_;
  int dim_;
  std::vector<std::vector<double>> m_inv_;  // (q0 x q0) inverse of M
  std::vector<double> b_;                   // q0
  std::vector<double> omega_;               // q0, ridge solution M^-1 b
  int rounds_ = 0;
};

/// One cumulative-regret experiment on a DCM environment: at each round a
/// random user arrives with a random candidate pool; the bandit selects a
/// top-K list, the DCM generates clicks, and the per-round regret is the
/// true-satisfaction gap to the greedy oracle list (the gamma-approximate
/// benchmark of Eq. 12).
struct RegretCurve {
  /// Cumulative regret after each round.
  std::vector<double> cumulative_regret;
  /// cumulative_regret[n] / sqrt(n+1): flattens if regret is O(sqrt(n)).
  std::vector<double> regret_over_sqrt_n;
};

RegretCurve RunRegretExperiment(const data::Dataset& data,
                                const click::GroundTruthClickModel& dcm,
                                LinearRapidBandit::Config config,
                                int num_rounds, int pool_size, uint64_t seed);

/// Theorem 5.1's own setting: the linear DCM environment. The UCB policy's
/// cumulative regret here should grow as O~(sqrt(n)).
RegretCurve RunRegretExperiment(const data::Dataset& data,
                                const LinearDcmEnvironment& env,
                                LinearRapidBandit::Config config,
                                int num_rounds, int pool_size, uint64_t seed);

/// Same environment, but the list is chosen uniformly at random — the
/// linear-regret contrast curve.
RegretCurve RunRandomPolicyExperiment(const data::Dataset& data,
                                      const click::GroundTruthClickModel& dcm,
                                      int k, int num_rounds, int pool_size,
                                      uint64_t seed);
RegretCurve RunRandomPolicyExperiment(const data::Dataset& data,
                                      const LinearDcmEnvironment& env, int k,
                                      int num_rounds, int pool_size,
                                      uint64_t seed);

/// Greedy oracle list under the true DCM attraction (the benchmark both
/// experiments measure regret against).
std::vector<int> GreedyOracleList(const data::Dataset& data,
                                  const click::GroundTruthClickModel& dcm,
                                  int user_id,
                                  const std::vector<int>& candidates, int k);
std::vector<int> GreedyOracleList(const data::Dataset& data,
                                  const LinearDcmEnvironment& env,
                                  int user_id,
                                  const std::vector<int>& candidates, int k);

}  // namespace rapid::bandit

#endif  // RAPID_BANDIT_LINEAR_RAPID_H_
