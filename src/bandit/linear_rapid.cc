#include "bandit/linear_rapid.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "datagen/history.h"

namespace rapid::bandit {

std::vector<float> BanditFeatures(const data::Dataset& data, int user_id,
                                  const std::vector<int>& prefix,
                                  int item_id) {
  const data::User& user = data.user(user_id);
  const data::Item& item = data.item(item_id);
  std::vector<float> eta;
  eta.reserve(BanditFeatureDim(data));
  eta.push_back(1.0f);  // Bias.
  eta.insert(eta.end(), user.features.begin(), user.features.end());
  eta.insert(eta.end(), item.features.begin(), item.features.end());
  eta.insert(eta.end(), item.topic_coverage.begin(),
             item.topic_coverage.end());
  // Personalized marginal diversity: history distribution (the observable
  // proxy of theta) times the coverage gain of this item over the prefix.
  const std::vector<float> hist =
      data::HistoryTopicDistribution(data, user_id);
  for (int j = 0; j < data.num_topics; ++j) {
    double miss = 1.0;
    for (int v : prefix) miss *= 1.0 - data.item(v).topic_coverage[j];
    eta.push_back(hist[j] *
                  static_cast<float>(miss * item.topic_coverage[j]));
  }
  return eta;
}

int BanditFeatureDim(const data::Dataset& data) {
  return 1 + data.user_feature_dim() + data.item_feature_dim() +
         2 * data.num_topics;
}

// ------------------------- LinearDcmEnvironment -------------------------

LinearDcmEnvironment::LinearDcmEnvironment(const data::Dataset* data,
                                           uint64_t seed)
    : data_(data) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> uni(0.0f, 1.0f);
  const int qu = data_->user_feature_dim();
  const int qv = data_->item_feature_dim();
  const int m = data_->num_topics;
  omega_.assign(BanditFeatureDim(*data_), 0.0f);
  int c = 0;
  omega_[c++] = 0.12f;  // Bias: base attraction.
  for (int k = 0; k < qu; ++k) omega_[c++] = 0.0f;  // User demographics.
  // Item features: only the (last) quality dimension matters, weakly.
  for (int k = 0; k < qv; ++k) {
    omega_[c++] = (k == qv - 1) ? 0.06f : 0.0f;
  }
  // Topic coverage: mild global topical popularity.
  for (int j = 0; j < m; ++j) omega_[c++] = 0.08f * uni(rng);
  // Personalized diversity: the dominant effect (Theorem 5.1's setting).
  for (int j = 0; j < m; ++j) omega_[c++] = 0.45f + 0.2f * uni(rng);
}

float LinearDcmEnvironment::Attraction(int user_id,
                                       const std::vector<int>& items,
                                       int pos) const {
  std::vector<int> prefix(items.begin(), items.begin() + pos);
  const std::vector<float> eta =
      BanditFeatures(*data_, user_id, prefix, items[pos]);
  double s = 0.0;
  for (size_t i = 0; i < eta.size(); ++i) s += omega_[i] * eta[i];
  return std::clamp(static_cast<float>(s), 0.0f, 1.0f);
}

float LinearDcmEnvironment::Termination(int k) const {
  assert(k >= 1);
  return 0.4f * std::pow(0.9f, static_cast<float>(k - 1));
}

std::vector<int> LinearDcmEnvironment::SimulateClicks(
    int user_id, const std::vector<int>& items, std::mt19937_64& rng) const {
  std::vector<int> clicks(items.size(), 0);
  std::uniform_real_distribution<float> uni(0.0f, 1.0f);
  for (size_t pos = 0; pos < items.size(); ++pos) {
    const float phi = Attraction(user_id, items, static_cast<int>(pos));
    if (uni(rng) < phi) {
      clicks[pos] = 1;
      if (uni(rng) < Termination(static_cast<int>(pos) + 1)) break;
    }
  }
  return clicks;
}

float LinearDcmEnvironment::TrueSatisfaction(int user_id,
                                             const std::vector<int>& items,
                                             int k) const {
  const int n = std::min<int>(k, static_cast<int>(items.size()));
  double miss = 1.0;
  for (int pos = 0; pos < n; ++pos) {
    miss *= 1.0 - Termination(pos + 1) * Attraction(user_id, items, pos);
  }
  return static_cast<float>(1.0 - miss);
}

// --------------------------- LinearRapidBandit --------------------------

LinearRapidBandit::LinearRapidBandit(const data::Dataset* data, Config config)
    : data_(data), config_(config) {
  dim_ = BanditFeatureDim(*data_);
  m_inv_.assign(dim_, std::vector<double>(dim_, 0.0));
  for (int i = 0; i < dim_; ++i) m_inv_[i][i] = 1.0 / config_.ridge;
  b_.assign(dim_, 0.0);
  omega_.assign(dim_, 0.0);
}

std::vector<float> LinearRapidBandit::Features(
    int user_id, const std::vector<int>& prefix, int item_id) const {
  return BanditFeatures(*data_, user_id, prefix, item_id);
}

float LinearRapidBandit::MeanScore(const std::vector<float>& eta) const {
  double s = 0.0;
  for (int i = 0; i < dim_; ++i) s += omega_[i] * eta[i];
  return static_cast<float>(s);
}

float LinearRapidBandit::UcbScore(const std::vector<float>& eta) const {
  // mean + s * sqrt(eta^T M^-1 eta).
  double quad = 0.0;
  for (int i = 0; i < dim_; ++i) {
    double row = 0.0;
    for (int j = 0; j < dim_; ++j) row += m_inv_[i][j] * eta[j];
    quad += eta[i] * row;
  }
  return MeanScore(eta) +
         config_.exploration * static_cast<float>(std::sqrt(quad));
}

std::vector<int> LinearRapidBandit::SelectList(
    int user_id, const std::vector<int>& candidates) const {
  std::vector<int> rest = candidates;
  std::vector<int> out;
  const int k = std::min<int>(config_.k, static_cast<int>(rest.size()));
  out.reserve(k);
  for (int step = 0; step < k; ++step) {
    int best = -1;
    float best_score = -1e30f;
    for (size_t i = 0; i < rest.size(); ++i) {
      const float s = UcbScore(Features(user_id, out, rest[i]));
      if (s > best_score) {
        best_score = s;
        best = static_cast<int>(i);
      }
    }
    out.push_back(rest[best]);
    rest.erase(rest.begin() + best);
  }
  return out;
}

void LinearRapidBandit::Update(int user_id,
                               const std::vector<int>& displayed,
                               const std::vector<int>& clicks) {
  assert(displayed.size() == clicks.size());
  std::vector<int> prefix;
  for (size_t pos = 0; pos < displayed.size(); ++pos) {
    const std::vector<float> eta = Features(user_id, prefix, displayed[pos]);
    // Sherman-Morrison: M^-1 <- M^-1 - (M^-1 eta eta^T M^-1)/(1+eta^T M^-1 eta)
    std::vector<double> mi_eta(dim_, 0.0);
    for (int i = 0; i < dim_; ++i) {
      double s = 0.0;
      for (int j = 0; j < dim_; ++j) s += m_inv_[i][j] * eta[j];
      mi_eta[i] = s;
    }
    double denom = 1.0;
    for (int i = 0; i < dim_; ++i) denom += eta[i] * mi_eta[i];
    for (int i = 0; i < dim_; ++i) {
      for (int j = 0; j < dim_; ++j) {
        m_inv_[i][j] -= mi_eta[i] * mi_eta[j] / denom;
      }
    }
    for (int i = 0; i < dim_; ++i) b_[i] += clicks[pos] * eta[i];
    prefix.push_back(displayed[pos]);
  }
  // omega = M^-1 b.
  for (int i = 0; i < dim_; ++i) {
    double s = 0.0;
    for (int j = 0; j < dim_; ++j) s += m_inv_[i][j] * b_[j];
    omega_[i] = s;
  }
  ++rounds_;
}

// ------------------------------ experiments -----------------------------

namespace {

template <typename Env>
std::vector<int> GreedyOracleImpl(const Env& env, int user_id,
                                  const std::vector<int>& candidates,
                                  int k) {
  std::vector<int> rest = candidates;
  std::vector<int> out;
  const int kk = std::min<int>(k, static_cast<int>(rest.size()));
  for (int step = 0; step < kk; ++step) {
    int best = -1;
    float best_score = -1e30f;
    for (size_t i = 0; i < rest.size(); ++i) {
      std::vector<int> cand = out;
      cand.push_back(rest[i]);
      const float a =
          env.Attraction(user_id, cand, static_cast<int>(out.size()));
      if (a > best_score) {
        best_score = a;
        best = static_cast<int>(i);
      }
    }
    out.push_back(rest[best]);
    rest.erase(rest.begin() + best);
  }
  return out;
}

template <typename Env, typename SelectFn>
RegretCurve RunExperiment(const data::Dataset& data, const Env& env, int k,
                          int num_rounds, int pool_size, uint64_t seed,
                          SelectFn&& select,
                          LinearRapidBandit* bandit_to_update) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> user_dist(
      0, static_cast<int>(data.users.size()) - 1);
  std::uniform_int_distribution<int> item_dist(
      0, static_cast<int>(data.items.size()) - 1);
  RegretCurve curve;
  curve.cumulative_regret.reserve(num_rounds);
  curve.regret_over_sqrt_n.reserve(num_rounds);
  double cumulative = 0.0;
  for (int t = 0; t < num_rounds; ++t) {
    const int user = user_dist(rng);
    std::vector<int> pool;
    while (static_cast<int>(pool.size()) < pool_size) {
      const int v = item_dist(rng);
      if (std::find(pool.begin(), pool.end(), v) == pool.end()) {
        pool.push_back(v);
      }
    }
    const std::vector<int> chosen = select(user, pool);
    const std::vector<int> oracle = GreedyOracleImpl(env, user, pool, k);
    const double regret = env.TrueSatisfaction(user, oracle, k) -
                          env.TrueSatisfaction(user, chosen, k);
    cumulative += std::max(regret, 0.0);
    curve.cumulative_regret.push_back(cumulative);
    curve.regret_over_sqrt_n.push_back(cumulative / std::sqrt(t + 1.0));
    if (bandit_to_update != nullptr) {
      const std::vector<int> clicks = env.SimulateClicks(user, chosen, rng);
      bandit_to_update->Update(user, chosen, clicks);
    }
  }
  return curve;
}

template <typename Env>
RegretCurve RunUcb(const data::Dataset& data, const Env& env,
                   LinearRapidBandit::Config config, int num_rounds,
                   int pool_size, uint64_t seed) {
  LinearRapidBandit bandit(&data, config);
  return RunExperiment(
      data, env, config.k, num_rounds, pool_size, seed,
      [&bandit](int user, const std::vector<int>& pool) {
        return bandit.SelectList(user, pool);
      },
      &bandit);
}

template <typename Env>
RegretCurve RunRandom(const data::Dataset& data, const Env& env, int k,
                      int num_rounds, int pool_size, uint64_t seed) {
  std::mt19937_64 policy_rng(seed ^ 0x9e3779b97f4a7c15ull);
  return RunExperiment(
      data, env, k, num_rounds, pool_size, seed,
      [&policy_rng, k](int /*user*/, const std::vector<int>& pool) {
        std::vector<int> shuffled = pool;
        std::shuffle(shuffled.begin(), shuffled.end(), policy_rng);
        shuffled.resize(std::min<size_t>(k, shuffled.size()));
        return shuffled;
      },
      nullptr);
}

}  // namespace

RegretCurve RunRegretExperiment(const data::Dataset& data,
                                const click::GroundTruthClickModel& dcm,
                                LinearRapidBandit::Config config,
                                int num_rounds, int pool_size,
                                uint64_t seed) {
  return RunUcb(data, dcm, config, num_rounds, pool_size, seed);
}

RegretCurve RunRegretExperiment(const data::Dataset& data,
                                const LinearDcmEnvironment& env,
                                LinearRapidBandit::Config config,
                                int num_rounds, int pool_size,
                                uint64_t seed) {
  return RunUcb(data, env, config, num_rounds, pool_size, seed);
}

RegretCurve RunRandomPolicyExperiment(const data::Dataset& data,
                                      const click::GroundTruthClickModel& dcm,
                                      int k, int num_rounds, int pool_size,
                                      uint64_t seed) {
  return RunRandom(data, dcm, k, num_rounds, pool_size, seed);
}

RegretCurve RunRandomPolicyExperiment(const data::Dataset& data,
                                      const LinearDcmEnvironment& env, int k,
                                      int num_rounds, int pool_size,
                                      uint64_t seed) {
  return RunRandom(data, env, k, num_rounds, pool_size, seed);
}

std::vector<int> GreedyOracleList(const data::Dataset& /*data*/,
                                  const click::GroundTruthClickModel& dcm,
                                  int user_id,
                                  const std::vector<int>& candidates,
                                  int k) {
  return GreedyOracleImpl(dcm, user_id, candidates, k);
}

std::vector<int> GreedyOracleList(const data::Dataset& /*data*/,
                                  const LinearDcmEnvironment& env,
                                  int user_id,
                                  const std::vector<int>& candidates,
                                  int k) {
  return GreedyOracleImpl(env, user_id, candidates, k);
}

}  // namespace rapid::bandit
