#ifndef RAPID_SHARD_SHARD_ROUTER_H_
#define RAPID_SHARD_SHARD_ROUTER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/codec.h"
#include "serve/metrics.h"
#include "serve/router.h"
#include "shard/ring.h"

namespace rapid::shard {

/// One shard's network address (a running `net::Server`).
struct ShardEndpoint {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

struct ShardRouterConfig {
  /// Ring geometry; the ring is seeded with shard indices 0..N-1 in
  /// endpoint order, so two routers over the same endpoint list agree.
  RingConfig ring;
  /// A routed request with no reply after this long fails with a timeout
  /// reply (the shard may still answer later; the late reply is dropped
  /// by id). 0 disables the scan.
  int request_timeout_ms = 2000;
  /// Receiver redial backoff after a shard connection dies: first retry
  /// after `backoff_initial_ms`, doubling to `backoff_max_ms`.
  int backoff_initial_ms = 10;
  int backoff_max_ms = 1000;
  /// Receive slice the receiver threads poll in; bounds how stale the
  /// timeout scan and shutdown notice can be.
  int poll_slice_ms = 50;
  /// Timeout for admin round-trips (stats scrape, rollout load). Remote
  /// loads rebuild a snapshot server-side, so this is generous.
  int admin_timeout_ms = 10000;
  net::CodecLimits limits;
};

/// Client-side counters of one shard connection.
struct ShardStats {
  uint64_t sent = 0;
  /// Score responses correlated back to a caller.
  uint64_t ok = 0;
  /// Server error frames surfaced to callers.
  uint64_t error_frames = 0;
  /// Requests failed locally: shard down at submit, send failure, or
  /// connection death with the request in flight.
  uint64_t failed = 0;
  /// Requests failed by the timeout scan.
  uint64_t timeouts = 0;
  /// Successful redials after a connection died.
  uint64_t reconnects = 0;
  bool healthy = false;
};

/// One answered (or failed) fan-out request.
struct ShardReply {
  /// True when a score response arrived — inspect `response`. False means
  /// the failure is local or an error frame: `error` says which, and
  /// `response.items` is empty (callers degrade themselves; the shard
  /// router does not invent rankings).
  bool ok = false;
  std::string error;
  /// Which shard the ring routed to (-1 if the ring was empty).
  int shard = -1;
  net::WireResponse response;
};

/// How a coordinated rollout ended.
enum class RolloutStatus {
  /// Canary published, every other live shard published: the fleet serves
  /// the new snapshot.
  kCommitted,
  /// The canary shard refused the snapshot (load failure or canary-probe
  /// rejection). Nothing was applied anywhere else; the fleet is
  /// untouched.
  kCanaryRejected,
  /// Some post-canary shard refused; every shard that had published was
  /// rolled back to the previous committed snapshot. The fleet is
  /// consistent on the old version.
  kRolledBack,
  /// A rollback re-apply itself failed (or there was no previous
  /// committed snapshot to re-apply): the fleet is mixed and needs an
  /// operator. `detail` names the shards.
  kRollbackFailed,
  /// No shard was reachable.
  kNoShards,
};

struct RolloutResult {
  RolloutStatus status = RolloutStatus::kNoShards;
  int canary_shard = -1;
  /// Per-shard published version; 0 = not applied (down, refused, or
  /// rolled back).
  std::vector<uint64_t> versions;
  std::string detail;
};

/// Fleet-wide stats: the per-shard `RouterStats` scrapes merged into one
/// (see serve/stats_merge.h for the merge semantics) plus the router's
/// own client-side counters.
struct FleetStats {
  serve::RouterStats merged;
  std::vector<ShardStats> shards;
  /// Shards that answered the scrape.
  int shards_up = 0;

  std::string ToTable() const;
  std::string ToJson() const;
};

/// The scale-out front-end: N independent `net::Server` processes behind
/// one submit interface.
///
/// ## Fan-out
///
/// `Submit` hashes the request's user id on the consistent ring, picks
/// that shard's pipelined connection, and sends with a router-assigned
/// request id. A receiver thread per shard correlates replies — which
/// arrive out of order (a cache hit on the shard overtakes a model run) —
/// back to promises by id.
///
/// ## Degradation
///
/// A shard marked unhealthy fast-fails its requests (no queueing behind a
/// dead socket, no hangs); its receiver redials with exponential backoff
/// and flips it healthy again on success. Server error frames resolve the
/// caller's future with `ok = false` and the message — never a hang.
/// In-flight requests on a dying connection fail immediately; requests
/// with no reply past `request_timeout_ms` fail via the timeout scan.
///
/// ## Threading
///
/// Senders (any thread calling `Submit`) serialize on a per-shard mutex
/// that guards the pending map and the socket write; each shard's
/// receiver thread reads the same socket *without* that mutex (POSIX
/// allows concurrent read/write on one fd) and takes it only to resolve
/// pending entries or redial. The receiver alone may reconnect or close
/// the connection — `Reconnect` replaces the fd and read buffers its own
/// lock-free read is using, so a sender that hits a send failure only
/// marks the shard unhealthy and fails the request; the redial is the
/// receiver's. Request ids are assigned and the pending entry inserted
/// *before* the bytes hit the wire, so a reply can never race its own
/// bookkeeping, and `Submit` re-checks `running_` under the shard lock so
/// a racing `Shutdown` always drains (never strands) a just-registered
/// promise.
///
/// Admin traffic (stats scrape, rollout) uses short-lived dedicated
/// connections per call, never the pipelined score connections.
class ShardRouter {
 public:
  explicit ShardRouter(std::vector<ShardEndpoint> endpoints,
                       ShardRouterConfig config = {});
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Dials every shard and starts the receiver threads. True if at least
  /// one shard connected; unreachable shards start unhealthy and their
  /// receivers keep redialing in the background.
  bool Start();

  /// Fails outstanding requests, joins receivers, closes connections.
  /// Idempotent; called by the destructor.
  void Shutdown();

  size_t num_shards() const { return shards_.size(); }

  /// Ring lookup only (no I/O): which shard owns `user_id`.
  int ShardFor(int64_t user_id) const { return ring_.ShardFor(user_id); }

  bool ShardHealthy(int shard) const;

  /// Routes by `request.list.user_id`. The returned future always
  /// resolves — with a score response, an error-frame message, or a
  /// local failure — never hangs on a dead shard.
  std::future<ShardReply> Submit(net::WireRequest request);

  /// Synchronous convenience around `Submit`.
  ShardReply Call(net::WireRequest request);

  /// Coordinated snapshot rollout: apply `LoadSlot(slot, path)` on one
  /// canary shard first; only if the canary publishes, roll the rest of
  /// the fleet; on a partial failure re-apply the previous committed
  /// snapshot to every shard that had published. Serving traffic is
  /// never interrupted — each shard swaps atomically (`LoadSlot`
  /// semantics) and the fleet is version-mixed only between the canary
  /// publish and the last follower publish (or rollback).
  ///
  /// `path` must name the snapshot on each shard server's filesystem
  /// (same path fleet-wide — shards share a snapshot store), and the
  /// servers must run `enable_remote_load`.
  RolloutResult Rollout(const std::string& slot, const std::string& path);

  /// Scrapes every live shard's `RouterStats` over the wire and merges
  /// them (request-weighted percentiles; see serve/stats_merge.h).
  FleetStats Stats();

  const ShardRouterConfig& config() const { return config_; }

 private:
  struct Pending {
    std::promise<ShardReply> promise;
    std::chrono::steady_clock::time_point deadline;
  };

  /// One shard connection: the pipelined client, its pending map, and the
  /// receiver that drains it. `mu` guards `client` sends, `pending`, and
  /// redials; `healthy` is read lock-free on the submit fast path.
  struct Shard {
    explicit Shard(net::CodecLimits limits) : client(limits) {}
    ShardEndpoint endpoint;
    std::mutex mu;
    net::Client client;
    std::map<uint64_t, Pending> pending;
    std::atomic<bool> healthy{false};
    std::thread receiver;
    // Counters (relaxed; snapshotted by Stats()).
    std::atomic<uint64_t> sent{0};
    std::atomic<uint64_t> ok{0};
    std::atomic<uint64_t> error_frames{0};
    std::atomic<uint64_t> failed{0};
    std::atomic<uint64_t> timeouts{0};
    std::atomic<uint64_t> reconnects{0};
  };

  void ReceiverLoop(Shard* shard);
  int IndexOf(const Shard* shard) const;
  /// Resolves one received reply against the pending map.
  void ResolveReply(Shard* shard, net::Client::Reply reply);
  /// Fails every pending entry (connection death, shutdown).
  void FailAllPending(Shard* shard, const std::string& reason);
  /// Fails entries whose deadline passed.
  void ExpirePending(Shard* shard);
  static ShardReply FailedReply(int shard_index, std::string error);

  const ShardRouterConfig config_;
  HashRing ring_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> next_request_id_{1};
  std::atomic<bool> running_{false};
  /// Previous committed snapshot per slot — what a failed rollout rolls
  /// back to. Guarded by `rollout_mu_`; rollouts are serialized.
  std::mutex rollout_mu_;
  std::map<std::string, std::string> last_committed_path_;
};

}  // namespace rapid::shard

#endif  // RAPID_SHARD_SHARD_ROUTER_H_
