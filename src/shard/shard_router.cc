#include "shard/shard_router.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "serve/stats_merge.h"

namespace rapid::shard {

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

ShardRouter::ShardRouter(std::vector<ShardEndpoint> endpoints,
                         ShardRouterConfig config)
    : config_(config), ring_(config.ring) {
  shards_.reserve(endpoints.size());
  for (size_t i = 0; i < endpoints.size(); ++i) {
    auto shard = std::make_unique<Shard>(config_.limits);
    shard->endpoint = std::move(endpoints[i]);
    shards_.push_back(std::move(shard));
    ring_.AddShard(static_cast<int>(i));
  }
}

ShardRouter::~ShardRouter() { Shutdown(); }

bool ShardRouter::Start() {
  if (running_.exchange(true)) return true;
  int connected = 0;
  for (auto& shard : shards_) {
    // Dial before spawning the receiver so a reachable fleet is healthy the
    // moment Start returns; unreachable shards stay unhealthy and their
    // receiver keeps redialing in the background.
    if (shard->client.Connect(shard->endpoint.host, shard->endpoint.port)) {
      shard->healthy.store(true, std::memory_order_release);
      ++connected;
    }
    shard->receiver = std::thread(&ShardRouter::ReceiverLoop, this,
                                  shard.get());
  }
  return connected > 0;
}

void ShardRouter::Shutdown() {
  if (!running_.exchange(false)) return;
  for (auto& shard : shards_) {
    if (shard->receiver.joinable()) shard->receiver.join();
    FailAllPending(shard.get(), "shard router shut down");
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->client.Close();
    shard->healthy.store(false, std::memory_order_release);
  }
}

bool ShardRouter::ShardHealthy(int shard) const {
  if (shard < 0 || static_cast<size_t>(shard) >= shards_.size()) return false;
  return shards_[static_cast<size_t>(shard)]->healthy.load(
      std::memory_order_acquire);
}

ShardReply ShardRouter::FailedReply(int shard_index, std::string error) {
  ShardReply reply;
  reply.ok = false;
  reply.shard = shard_index;
  reply.error = std::move(error);
  return reply;
}

std::future<ShardReply> ShardRouter::Submit(net::WireRequest request) {
  std::promise<ShardReply> promise;
  std::future<ShardReply> future = promise.get_future();
  const int shard_index = ring_.ShardFor(request.list.user_id);
  if (shard_index < 0 || !running_.load(std::memory_order_acquire)) {
    promise.set_value(FailedReply(shard_index, "no shards on the ring"));
    return future;
  }
  Shard& shard = *shards_[static_cast<size_t>(shard_index)];
  if (!shard.healthy.load(std::memory_order_acquire)) {
    // Fast-fail: a dead shard answers immediately instead of queueing the
    // caller behind a socket that cannot make progress.
    shard.failed.fetch_add(1, std::memory_order_relaxed);
    promise.set_value(FailedReply(shard_index, "shard down"));
    return future;
  }
  // Ids come from the router, not the client, so the pending entry can be
  // registered before the bytes hit the wire — a reply can never arrive
  // ahead of its own bookkeeping.
  const uint64_t id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  request.request_id = id;
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(config_.request_timeout_ms);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    // Re-checked under the lock: Shutdown's final drain (FailAllPending)
    // also takes shard.mu, so an entry inserted while this load still saw
    // `running_` is ordered before that drain and gets failed by it —
    // never stranded after the receiver has been joined.
    if (!running_.load(std::memory_order_acquire)) {
      promise.set_value(FailedReply(shard_index, "shard router shut down"));
      return future;
    }
    auto [it, inserted] = shard.pending.try_emplace(id);
    it->second.promise = std::move(promise);
    it->second.deadline = deadline;
    const bool sent =
        shard.client.connected() && shard.client.Send(&request) != 0;
    if (!sent) {
      // Never redial here: the receiver thread reads this Client without
      // the lock, so only it may reconnect (Reconnect mutates the fd and
      // buffers a concurrent read is using). Mark the shard down, fail
      // this request, and let the receiver's backoff loop recover.
      shard.healthy.store(false, std::memory_order_release);
      shard.failed.fetch_add(1, std::memory_order_relaxed);
      Pending pending = std::move(it->second);
      shard.pending.erase(it);
      pending.promise.set_value(FailedReply(shard_index, "send failed"));
      return future;
    }
    shard.sent.fetch_add(1, std::memory_order_relaxed);
  }
  return future;
}

ShardReply ShardRouter::Call(net::WireRequest request) {
  return Submit(std::move(request)).get();
}

void ShardRouter::ResolveReply(Shard* shard, net::Client::Reply reply) {
  const uint64_t id = reply.request_id();
  Pending pending;
  {
    std::lock_guard<std::mutex> lock(shard->mu);
    auto it = shard->pending.find(id);
    if (it == shard->pending.end()) return;  // Late reply past its timeout.
    pending = std::move(it->second);
    shard->pending.erase(it);
  }
  ShardReply out;
  out.shard = IndexOf(shard);
  if (reply.is_error) {
    out.ok = false;
    out.error = std::move(reply.error_message);
    shard->error_frames.fetch_add(1, std::memory_order_relaxed);
  } else if (reply.type == net::FrameType::kScoreResponse) {
    out.ok = true;
    out.response = std::move(reply.response);
    shard->ok.fetch_add(1, std::memory_order_relaxed);
  } else {
    // A stats/load frame on the score connection — nothing sends those
    // here, but surface rather than hang.
    out.ok = false;
    out.error = "unexpected admin frame on score connection";
    shard->error_frames.fetch_add(1, std::memory_order_relaxed);
  }
  pending.promise.set_value(std::move(out));
}

int ShardRouter::IndexOf(const Shard* shard) const {
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i].get() == shard) return static_cast<int>(i);
  }
  return -1;
}

void ShardRouter::FailAllPending(Shard* shard, const std::string& reason) {
  std::vector<Pending> doomed;
  {
    std::lock_guard<std::mutex> lock(shard->mu);
    doomed.reserve(shard->pending.size());
    for (auto& [id, pending] : shard->pending) {
      doomed.push_back(std::move(pending));
    }
    shard->pending.clear();
  }
  const int shard_index = IndexOf(shard);
  shard->failed.fetch_add(doomed.size(), std::memory_order_relaxed);
  for (Pending& pending : doomed) {
    // set_value outside the lock: a caller's .get() continuation may call
    // back into Submit.
    pending.promise.set_value(FailedReply(shard_index, reason));
  }
}

void ShardRouter::ExpirePending(Shard* shard) {
  if (config_.request_timeout_ms <= 0) return;
  const auto now = Clock::now();
  std::vector<Pending> expired;
  {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto it = shard->pending.begin(); it != shard->pending.end();) {
      if (it->second.deadline <= now) {
        expired.push_back(std::move(it->second));
        it = shard->pending.erase(it);
      } else {
        ++it;
      }
    }
  }
  if (expired.empty()) return;
  const int shard_index = IndexOf(shard);
  shard->timeouts.fetch_add(expired.size(), std::memory_order_relaxed);
  for (Pending& pending : expired) {
    pending.promise.set_value(FailedReply(shard_index, "request timed out"));
  }
}

void ShardRouter::ReceiverLoop(Shard* shard) {
  int backoff_ms = config_.backoff_initial_ms;
  while (running_.load(std::memory_order_acquire)) {
    if (!shard->healthy.load(std::memory_order_acquire)) {
      // A submit may have marked the shard down on a send failure without
      // draining the map (it owns neither the socket nor the redial).
      // Whatever is still in flight can never be answered once we redial —
      // Reconnect discards the old stream — so fail it ahead of the
      // timeout scan.
      FailAllPending(shard, "shard connection lost");
      // Redial with exponential backoff. Sleep *outside* the lock so
      // Submit's fast-fail path never blocks behind a backoff wait.
      {
        std::lock_guard<std::mutex> lock(shard->mu);
        if (shard->client.Reconnect()) {
          shard->reconnects.fetch_add(1, std::memory_order_relaxed);
          shard->healthy.store(true, std::memory_order_release);
          backoff_ms = config_.backoff_initial_ms;
          continue;
        }
      }
      const auto wake = Clock::now() + std::chrono::milliseconds(backoff_ms);
      while (running_.load(std::memory_order_acquire) && Clock::now() < wake) {
        std::this_thread::sleep_for(std::chrono::milliseconds(
            std::min(backoff_ms, config_.poll_slice_ms)));
      }
      backoff_ms = std::min(backoff_ms * 2, config_.backoff_max_ms);
      continue;
    }
    // The receiver reads the socket without shard->mu — POSIX permits a
    // concurrent read and write on one fd — and only takes the lock inside
    // ResolveReply to touch the pending map.
    net::Client::Reply reply;
    const net::Client::RecvStatus status =
        shard->client.ReceiveStatus(&reply, config_.poll_slice_ms);
    switch (status) {
      case net::Client::RecvStatus::kOk:
        ResolveReply(shard, std::move(reply));
        break;
      case net::Client::RecvStatus::kTimeout:
        break;  // Nothing arrived this slice; fall through to the scan.
      case net::Client::RecvStatus::kClosed:
        // Requests in flight on the dead connection can never be answered;
        // fail them now rather than letting the timeout scan find them.
        shard->healthy.store(false, std::memory_order_release);
        FailAllPending(shard, "shard connection lost");
        break;
    }
    ExpirePending(shard);
  }
}

RolloutResult ShardRouter::Rollout(const std::string& slot,
                                   const std::string& path) {
  std::lock_guard<std::mutex> rollout_lock(rollout_mu_);
  RolloutResult result;
  result.versions.assign(shards_.size(), 0);

  // Admin round-trips use fresh short-lived connections: a slow snapshot
  // load must not stall pipelined score traffic, and a half-dead score
  // socket must not veto a rollout.
  auto load_on = [&](size_t i, const std::string& p, uint64_t* version,
                     std::string* message) -> bool {
    net::Client admin(config_.limits);
    if (!admin.Connect(shards_[i]->endpoint.host, shards_[i]->endpoint.port)) {
      return false;
    }
    return admin.RemoteLoadSlot(slot, p, version, message,
                                config_.admin_timeout_ms);
  };

  // Phase 1: canary. The first reachable shard takes the snapshot alone;
  // the fleet is untouched until it publishes.
  int canary = -1;
  for (size_t i = 0; i < shards_.size(); ++i) {
    uint64_t version = 0;
    std::string message;
    if (!load_on(i, path, &version, &message)) continue;
    canary = static_cast<int>(i);
    result.canary_shard = canary;
    if (version == 0) {
      result.status = RolloutStatus::kCanaryRejected;
      result.detail = "canary shard " + std::to_string(canary) +
                      " rejected: " + message;
      return result;
    }
    result.versions[i] = version;
    break;
  }
  if (canary < 0) {
    result.status = RolloutStatus::kNoShards;
    result.detail = "no shard reachable for canary";
    return result;
  }

  // Phase 2: fleet. Stop at the first refusal — shards past it never see
  // the new snapshot, which keeps the rollback set minimal.
  std::vector<size_t> published = {static_cast<size_t>(canary)};
  std::string failure;
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (static_cast<int>(i) == canary) continue;
    uint64_t version = 0;
    std::string message;
    if (!load_on(i, path, &version, &message)) {
      // Unreachable is not a failure: the shard is down, and a rollout
      // cannot wait for it. It picks the snapshot up when it restarts.
      continue;
    }
    if (version == 0) {
      failure = "shard " + std::to_string(i) + " rejected: " + message;
      break;
    }
    result.versions[i] = version;
    published.push_back(i);
  }

  if (failure.empty()) {
    result.status = RolloutStatus::kCommitted;
    last_committed_path_[slot] = path;
    return result;
  }

  // Phase 3: rollback. Re-apply the previous committed snapshot to every
  // shard that already published the new one.
  const auto prev = last_committed_path_.find(slot);
  if (prev == last_committed_path_.end()) {
    result.status = RolloutStatus::kRollbackFailed;
    result.detail = failure + "; no previous committed snapshot to roll back "
                              "to — fleet is mixed";
    return result;
  }
  std::string stuck;
  for (size_t i : published) {
    uint64_t version = 0;
    std::string message;
    if (!load_on(i, prev->second, &version, &message) || version == 0) {
      stuck += (stuck.empty() ? "shard " : ", shard ") + std::to_string(i);
      continue;
    }
    result.versions[i] = 0;  // Back on the old snapshot.
  }
  if (!stuck.empty()) {
    result.status = RolloutStatus::kRollbackFailed;
    result.detail = failure + "; rollback failed on " + stuck;
    return result;
  }
  result.status = RolloutStatus::kRolledBack;
  result.detail = failure + "; fleet rolled back";
  return result;
}

FleetStats ShardRouter::Stats() {
  FleetStats fleet;
  fleet.shards.reserve(shards_.size());
  for (auto& shard : shards_) {
    ShardStats stats;
    stats.sent = shard->sent.load(std::memory_order_relaxed);
    stats.ok = shard->ok.load(std::memory_order_relaxed);
    stats.error_frames = shard->error_frames.load(std::memory_order_relaxed);
    stats.failed = shard->failed.load(std::memory_order_relaxed);
    stats.timeouts = shard->timeouts.load(std::memory_order_relaxed);
    stats.reconnects = shard->reconnects.load(std::memory_order_relaxed);
    stats.healthy = shard->healthy.load(std::memory_order_acquire);
    fleet.shards.push_back(stats);

    net::Client admin(config_.limits);
    if (!admin.Connect(shard->endpoint.host, shard->endpoint.port)) continue;
    serve::RouterStats scraped;
    if (!admin.GetStats(&scraped, config_.admin_timeout_ms)) continue;
    serve::MergeInto(&fleet.merged, scraped);
    ++fleet.shards_up;
  }
  return fleet;
}

std::string FleetStats::ToTable() const {
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "fleet        %10d shards up / %d\n",
                shards_up, static_cast<int>(shards.size()));
  out += buf;
  for (size_t i = 0; i < shards.size(); ++i) {
    const ShardStats& s = shards[i];
    std::snprintf(buf, sizeof(buf),
                  "shard %-6zu %10llu sent, %llu ok, %llu err, %llu fail, "
                  "%llu timeout, %llu redial %s\n",
                  i, static_cast<unsigned long long>(s.sent),
                  static_cast<unsigned long long>(s.ok),
                  static_cast<unsigned long long>(s.error_frames),
                  static_cast<unsigned long long>(s.failed),
                  static_cast<unsigned long long>(s.timeouts),
                  static_cast<unsigned long long>(s.reconnects),
                  s.healthy ? "[up]" : "[down]");
    out += buf;
  }
  out += merged.ToTable();
  return out;
}

std::string FleetStats::ToJson() const {
  std::string out = "{\"shards_up\":" + std::to_string(shards_up);
  out += ",\"shards\":[";
  for (size_t i = 0; i < shards.size(); ++i) {
    const ShardStats& s = shards[i];
    if (i > 0) out += ',';
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"sent\":%llu,\"ok\":%llu,\"error_frames\":%llu,"
                  "\"failed\":%llu,\"timeouts\":%llu,\"reconnects\":%llu,"
                  "\"healthy\":%s}",
                  static_cast<unsigned long long>(s.sent),
                  static_cast<unsigned long long>(s.ok),
                  static_cast<unsigned long long>(s.error_frames),
                  static_cast<unsigned long long>(s.failed),
                  static_cast<unsigned long long>(s.timeouts),
                  static_cast<unsigned long long>(s.reconnects),
                  s.healthy ? "true" : "false");
    out += buf;
  }
  out += "],\"merged\":" + merged.ToJson() + "}";
  return out;
}

}  // namespace rapid::shard
