#include "shard/ring.h"

#include <algorithm>

namespace rapid::shard {

namespace {

/// splitmix64 finalizer: a cheap, well-distributed 64-bit mixer. The ring
/// only needs uniformity and determinism, not cryptographic strength.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

uint64_t PointHash(uint64_t seed, int shard, int replica) {
  // Chain the mixer so (shard, replica) pairs land independently; a plain
  // xor of the three would correlate neighbouring replicas.
  return Mix64(Mix64(Mix64(seed) ^ static_cast<uint64_t>(shard)) ^
               static_cast<uint64_t>(replica));
}

}  // namespace

HashRing::HashRing(RingConfig config) : config_(config) {
  config_.virtual_nodes = std::max(config_.virtual_nodes, 1);
}

void HashRing::AddShard(int shard_id) {
  for (const Point& point : points_) {
    if (point.shard == shard_id) return;
  }
  points_.reserve(points_.size() + static_cast<size_t>(config_.virtual_nodes));
  for (int replica = 0; replica < config_.virtual_nodes; ++replica) {
    points_.push_back({PointHash(config_.seed, shard_id, replica), shard_id});
  }
  std::sort(points_.begin(), points_.end());
}

bool HashRing::RemoveShard(int shard_id) {
  const size_t before = points_.size();
  points_.erase(std::remove_if(points_.begin(), points_.end(),
                               [shard_id](const Point& point) {
                                 return point.shard == shard_id;
                               }),
                points_.end());
  return points_.size() != before;  // Erase keeps the sorted order.
}

int HashRing::ShardFor(int64_t user_id) const {
  if (points_.empty()) return -1;
  const uint64_t h = Mix64(Mix64(config_.seed) ^ static_cast<uint64_t>(user_id));
  // First point at or after the key, wrapping past the top of the circle.
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const Point& point, uint64_t key) { return point.hash < key; });
  return it == points_.end() ? points_.front().shard : it->shard;
}

std::vector<int> HashRing::Shards() const {
  std::vector<int> shards;
  for (const Point& point : points_) shards.push_back(point.shard);
  std::sort(shards.begin(), shards.end());
  shards.erase(std::unique(shards.begin(), shards.end()), shards.end());
  return shards;
}

}  // namespace rapid::shard
