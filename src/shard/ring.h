#ifndef RAPID_SHARD_RING_H_
#define RAPID_SHARD_RING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rapid::shard {

/// Consistent-hash ring configuration.
struct RingConfig {
  /// Virtual nodes per shard. More points smooth the load split (the
  /// max/mean user-count ratio across shards shrinks roughly with
  /// 1/sqrt(virtual_nodes)) at the cost of a larger sorted point array;
  /// lookups stay O(log(shards * virtual_nodes)). Clamped to >= 1.
  int virtual_nodes = 128;
  /// Seeds every point and key hash. Two rings built with the same seed
  /// and membership assign every user identically — the shard router and
  /// any external tooling can agree on placement without talking.
  uint64_t seed = 0x5eed5eed5eed5eedull;
};

/// A seeded consistent-hash ring mapping user ids onto shard ids.
///
/// Each shard contributes `virtual_nodes` pseudo-random points on a
/// 64-bit circle; a user id hashes to a point and walks clockwise to the
/// next shard point. The property this buys over `user % N`: adding or
/// removing one shard of N remaps only the keys whose arc the change
/// touches — an expected 1/N fraction — instead of nearly all of them,
/// so a membership change invalidates at most one shard's worth of
/// per-shard state (caches, affinity) rather than the fleet's.
///
/// Deterministic: placement depends only on (seed, membership), not on
/// insertion order. Not thread-safe during mutation; lookups are const
/// and safe to share once membership is settled.
class HashRing {
 public:
  explicit HashRing(RingConfig config = {});

  /// Adds `shard_id`'s virtual nodes. Adding a present shard is a no-op.
  void AddShard(int shard_id);

  /// Removes `shard_id`'s points; false if it was never added.
  bool RemoveShard(int shard_id);

  /// The shard owning `user_id`, or -1 on an empty ring.
  int ShardFor(int64_t user_id) const;

  /// Distinct shard ids on the ring, sorted.
  std::vector<int> Shards() const;

  bool empty() const { return points_.empty(); }
  size_t num_points() const { return points_.size(); }

  const RingConfig& config() const { return config_; }

 private:
  struct Point {
    uint64_t hash = 0;
    int shard = -1;
    bool operator<(const Point& other) const {
      // Tie-break on shard id so equal hashes (astronomically rare but
      // possible) still order deterministically across rebuilds.
      return hash != other.hash ? hash < other.hash : shard < other.shard;
    }
  };

  RingConfig config_;
  /// Sorted by hash; binary-searched per lookup.
  std::vector<Point> points_;
};

}  // namespace rapid::shard

#endif  // RAPID_SHARD_RING_H_
