#include "datagen/pages.h"

#include <algorithm>
#include <numeric>
#include <random>
#include <unordered_set>

#include "datagen/simulator.h"

namespace rapid::data {

namespace {

/// Samples `count` distinct item ids from the catalog, skipping any id in
/// `taken`. Falls back to fewer when the catalog is nearly exhausted.
std::vector<int> SampleDistinct(int catalog, int count,
                                const std::unordered_set<int>& taken,
                                std::mt19937_64& rng) {
  std::vector<int> out;
  std::unordered_set<int> used = taken;
  std::uniform_int_distribution<int> pick(0, catalog - 1);
  int attempts = 0;
  while (static_cast<int>(out.size()) < count && attempts < catalog * 8) {
    const int id = pick(rng);
    ++attempts;
    if (used.insert(id).second) out.push_back(id);
  }
  return out;
}

}  // namespace

std::vector<PageSession> GeneratePageSessions(const Dataset& data,
                                              const PageGenConfig& config,
                                              uint64_t seed) {
  std::mt19937_64 rng(seed ^ 0x70616765u);  // "page"
  std::normal_distribution<float> noise(0.0f, config.score_noise);
  const int catalog = static_cast<int>(data.items.size());
  std::vector<PageSession> sessions;
  if (catalog == 0 || data.users.empty()) return sessions;
  sessions.reserve(config.num_pages);

  for (int p = 0; p < config.num_pages; ++p) {
    PageSession session;
    session.user_id = p % static_cast<int>(data.users.size());
    const User& user = data.user(session.user_id);
    session.diversity_budget = user.diversity_appetite * config.budget_scale *
                               static_cast<float>(config.lists_per_page);

    // The page's shared "trending" pool, common to every sibling list.
    const std::vector<int> pool =
        SampleDistinct(catalog, config.shared_pool_size, {}, rng);

    session.lists.reserve(config.lists_per_page);
    for (int l = 0; l < config.lists_per_page; ++l) {
      ImpressionList list;
      list.user_id = session.user_id;
      const int from_pool = std::min(
          static_cast<int>(pool.size()),
          static_cast<int>(config.shared_frac *
                           static_cast<float>(config.items_per_list)));
      std::unordered_set<int> used;
      std::vector<int> shuffled = pool;
      std::shuffle(shuffled.begin(), shuffled.end(), rng);
      for (int i = 0; i < from_pool; ++i) {
        list.items.push_back(shuffled[i]);
        used.insert(shuffled[i]);
      }
      for (const int id : SampleDistinct(
               catalog, config.items_per_list - from_pool, used, rng)) {
        list.items.push_back(id);
      }
      // Stand-in initial ranker: noisy true relevance, sorted descending —
      // the same observation model the candidate generator uses, so page
      // sessions need no trained ranker to be realistic.
      list.scores.reserve(list.items.size());
      for (const int id : list.items) {
        list.scores.push_back(TrueRelevance(user, data.item(id)) +
                              noise(rng));
      }
      std::vector<int> order(list.items.size());
      std::iota(order.begin(), order.end(), 0);
      std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return list.scores[a] > list.scores[b];
      });
      ImpressionList ranked;
      ranked.user_id = list.user_id;
      for (const int at : order) {
        ranked.items.push_back(list.items[at]);
        ranked.scores.push_back(list.scores[at]);
      }
      session.lists.push_back(std::move(ranked));
    }
    sessions.push_back(std::move(session));
  }
  return sessions;
}

}  // namespace rapid::data
