#ifndef RAPID_DATAGEN_GMM_H_
#define RAPID_DATAGEN_GMM_H_

#include <random>
#include <vector>

namespace rapid::data {

/// A spherical Gaussian mixture model fit with expectation-maximization.
///
/// Used by the Taobao simulator to cluster item latent vectors into soft
/// topics, mirroring the paper's "we use Gaussian Mixture Models to cluster
/// items into 5 topics as the item's topic coverage".
class GaussianMixture {
 public:
  /// `k` components over `dim`-dimensional points.
  GaussianMixture(int k, int dim);

  /// Fits the mixture to `points` (each of size `dim`) by EM, initialized
  /// with k-means++-style seeding from `rng`. Runs at most `max_iters`
  /// iterations or until the log-likelihood improvement drops below `tol`.
  void Fit(const std::vector<std::vector<float>>& points, std::mt19937_64& rng,
           int max_iters = 50, double tol = 1e-4);

  /// Posterior responsibilities p(component | point): a length-`k`
  /// distribution (sums to 1). `var_inflation > 1` evaluates the components
  /// with inflated variances, tempering the posterior toward uniform —
  /// useful when a soft cluster-membership signal is wanted from
  /// well-separated clusters (e.g. soft topic coverage).
  std::vector<float> Posterior(const std::vector<float>& point,
                               double var_inflation = 1.0) const;

  /// Average per-point log-likelihood of the last Fit call.
  double log_likelihood() const { return log_likelihood_; }

  int num_components() const { return k_; }
  const std::vector<std::vector<double>>& means() const { return means_; }
  const std::vector<double>& variances() const { return vars_; }
  const std::vector<double>& weights() const { return weights_; }

 private:
  int k_;
  int dim_;
  std::vector<std::vector<double>> means_;  // k x dim
  std::vector<double> vars_;                // k (spherical)
  std::vector<double> weights_;             // k, sums to 1
  double log_likelihood_ = 0.0;
};

}  // namespace rapid::data

#endif  // RAPID_DATAGEN_GMM_H_
