#include "datagen/simulator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "datagen/gmm.h"

namespace rapid::data {

namespace {

// Relevance calibration: chosen so the population mean attraction is about
// 0.2 with a long tail of highly relevant items (verified in tests). The
// topic-match term dominates, and the user's topic preference is *hidden*
// (only inferable from behavior history), which is what leaves headroom for
// the re-ranking stage over any pointwise initial ranker.
constexpr float kTopicMatchWeight = 4.0f;
constexpr float kQualityWeight = 1.2f;
constexpr float kRelevanceBias = -2.4f;

// Observation noise of the user-feature projection and the item-quality
// feature (how much of the hidden state leaks into observable features).
constexpr float kUserObsNoise = 0.8f;
constexpr float kQualityObsNoise = 0.6f;

// Variance inflation applied to GMM posteriors when deriving soft topic
// coverage from well-separated item clusters (kTaobao only).
constexpr double kCoverageVarInflation = 25.0;

float Dot(const std::vector<float>& a, const std::vector<float>& b) {
  float s = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

// Samples `count` distinct indices from `logits` via Gumbel-top-k (softmax
// sampling without replacement).
std::vector<int> SampleWithoutReplacement(const std::vector<float>& logits,
                                          int count, std::mt19937_64& rng) {
  std::uniform_real_distribution<double> uni(1e-12, 1.0);
  std::vector<std::pair<float, int>> keys(logits.size());
  for (size_t i = 0; i < logits.size(); ++i) {
    const float gumbel = -std::log(-std::log(uni(rng)));
    keys[i] = {logits[i] + gumbel, static_cast<int>(i)};
  }
  const int k = std::min<int>(count, static_cast<int>(logits.size()));
  std::partial_sort(keys.begin(), keys.begin() + k, keys.end(),
                    [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<int> out(k);
  for (int i = 0; i < k; ++i) out[i] = keys[i].second;
  return out;
}

std::vector<float> DirichletSample(int dim, float alpha,
                                   std::mt19937_64& rng) {
  std::gamma_distribution<float> gamma(alpha, 1.0f);
  std::vector<float> out(dim);
  float sum = 0.0f;
  for (int j = 0; j < dim; ++j) {
    out[j] = std::max(gamma(rng), 1e-8f);
    sum += out[j];
  }
  for (float& x : out) x /= sum;
  return out;
}

float NormalizedEntropy(const std::vector<float>& p) {
  double h = 0.0;
  for (float x : p) {
    if (x > 0.0f) h -= x * std::log(x);
  }
  return static_cast<float>(h / std::log(static_cast<double>(p.size())));
}

}  // namespace

int SimConfig::num_topics() const {
  switch (kind) {
    case DatasetKind::kTaobao:
      return 5;
    case DatasetKind::kMovieLens:
      return 20;
    case DatasetKind::kAppStore:
      return 23;
  }
  return 5;
}

float TrueRelevanceLogit(const User& user, const Item& item) {
  const float topic_match = Dot(user.topic_pref, item.topic_coverage);
  return kTopicMatchWeight * topic_match +
         kQualityWeight * item.hidden_quality + kRelevanceBias;
}

float TrueRelevance(const User& user, const Item& item) {
  const float z = TrueRelevanceLogit(user, item);
  return z >= 0.0f ? 1.0f / (1.0f + std::exp(-z))
                   : std::exp(z) / (1.0f + std::exp(z));
}

Dataset GenerateDataset(const SimConfig& config, uint64_t seed) {
  std::mt19937_64 rng(seed);
  const int m = config.num_topics();
  const int d = config.latent_dim;

  Dataset data;
  data.num_topics = m;
  switch (config.kind) {
    case DatasetKind::kTaobao:
      data.name = "TaobaoSim";
      break;
    case DatasetKind::kMovieLens:
      data.name = "MovieLensSim";
      break;
    case DatasetKind::kAppStore:
      data.name = "AppStoreSim";
      break;
  }

  // Topic centroids.
  std::normal_distribution<float> unit_normal(0.0f, 1.0f);
  std::vector<std::vector<float>> centroids(m, std::vector<float>(d));
  for (int j = 0; j < m; ++j) {
    for (int k = 0; k < d; ++k) {
      centroids[j][k] = unit_normal(rng) * config.topic_spread;
    }
  }

  // Items: latent near a primary topic centroid; Zipf-ish topic popularity.
  std::vector<double> topic_pop(m);
  for (int j = 0; j < m; ++j) topic_pop[j] = 1.0 / (1.0 + j * 0.35);
  std::discrete_distribution<int> topic_dist(topic_pop.begin(),
                                             topic_pop.end());
  std::lognormal_distribution<float> bid_dist(0.0f, 0.5f);
  data.items.resize(config.num_items);
  std::vector<int> primary_topic(config.num_items);
  for (int v = 0; v < config.num_items; ++v) {
    Item& item = data.items[v];
    item.id = v;
    const int t = topic_dist(rng);
    primary_topic[v] = t;
    item.features.resize(d);
    for (int k = 0; k < d; ++k) {
      item.features[k] = centroids[t][k] + unit_normal(rng) * config.item_noise;
    }
    item.hidden_quality = unit_normal(rng) * 0.7f;
    item.topic_coverage.assign(m, 0.0f);
    item.bid = 0.0f;
  }

  // Topic coverage per dataset kind.
  switch (config.kind) {
    case DatasetKind::kTaobao: {
      // GMM soft clustering of item latents (paper Section IV-A1).
      std::vector<std::vector<float>> latents;
      latents.reserve(data.items.size());
      for (const Item& item : data.items) latents.push_back(item.features);
      GaussianMixture gmm(m, d);
      gmm.Fit(latents, rng);
      for (Item& item : data.items) {
        item.topic_coverage =
            gmm.Posterior(item.features, kCoverageVarInflation);
      }
      break;
    }
    case DatasetKind::kMovieLens: {
      // Normalized multi-hot genres: primary genre plus 0-2 extras.
      std::uniform_real_distribution<float> coin(0.0f, 1.0f);
      std::uniform_int_distribution<int> genre(0, m - 1);
      for (int v = 0; v < config.num_items; ++v) {
        std::vector<int> genres = {primary_topic[v]};
        if (coin(rng) < 0.55f) genres.push_back(genre(rng));
        if (coin(rng) < 0.20f) genres.push_back(genre(rng));
        std::sort(genres.begin(), genres.end());
        genres.erase(std::unique(genres.begin(), genres.end()), genres.end());
        const float w = 1.0f / genres.size();
        for (int g : genres) data.items[v].topic_coverage[g] = w;
      }
      break;
    }
    case DatasetKind::kAppStore: {
      for (int v = 0; v < config.num_items; ++v) {
        data.items[v].topic_coverage[primary_topic[v]] = 1.0f;
        data.items[v].bid = bid_dist(rng);
      }
      break;
    }
  }

  // Append the noisy observable quality feature (after coverage, so GMM
  // clustering above ran on the topic-structured latent dims only).
  for (Item& item : data.items) {
    item.features.push_back(item.hidden_quality +
                            unit_normal(rng) * kQualityObsNoise);
  }

  // Users: heterogeneous Dirichlet concentration -> heterogeneous
  // diversity appetite (focused / medium / diverse thirds).
  data.users.resize(config.num_users);
  std::uniform_int_distribution<int> third(0, 2);
  for (int u = 0; u < config.num_users; ++u) {
    User& user = data.users[u];
    user.id = u;
    float alpha = 0.0f;
    switch (third(rng)) {
      case 0:
        alpha = 0.05f;  // focused
        break;
      case 1:
        alpha = 0.6f;  // medium
        break;
      default:
        alpha = 2.5f;  // diverse
        break;
    }
    user.topic_pref = DirichletSample(m, alpha, rng);
    user.diversity_appetite = NormalizedEntropy(user.topic_pref);
    // Observed user features: a fixed random projection of the hidden
    // preference plus observation noise — a weak "demographic" signal. The
    // projection matrix is shared across users (sampled once below).
    user.features.resize(d);
  }
  {
    std::vector<std::vector<float>> proj(d, std::vector<float>(m));
    for (int k = 0; k < d; ++k) {
      for (int j = 0; j < m; ++j) proj[k][j] = unit_normal(rng);
    }
    for (User& user : data.users) {
      for (int k = 0; k < d; ++k) {
        float mix = 0.0f;
        for (int j = 0; j < m; ++j) mix += proj[k][j] * user.topic_pref[j];
        user.features[k] = mix + unit_normal(rng) * config.user_noise;
      }
    }
  }

  // Per-user relevance logits over all items drive every sampling step.
  data.history.resize(config.num_users);
  std::uniform_int_distribution<int> random_item(0, config.num_items - 1);
  for (int u = 0; u < config.num_users; ++u) {
    const User& user = data.users[u];
    std::vector<float> logits(config.num_items);
    for (int v = 0; v < config.num_items; ++v) {
      // Sharpen (x2) so sampled positives are genuinely relevant.
      logits[v] = 2.0f * TrueRelevanceLogit(user, data.items[v]);
    }

    // Behavior history: relevance-weighted sample, random temporal order.
    data.history[u] = SampleWithoutReplacement(logits, config.history_len, rng);
    std::shuffle(data.history[u].begin(), data.history[u].end(), rng);

    // Initial-ranker training interactions: positives by relevance
    // sampling, negatives uniform.
    std::vector<int> pos = SampleWithoutReplacement(
        logits, config.ranker_train_pos_per_user, rng);
    for (int v : pos) {
      data.ranker_train.push_back({u, v, 1});
      data.ranker_train.push_back({u, random_item(rng), 0});
    }

    // Candidate pools: 70% relevance-sampled, 30% uniform exploration.
    auto make_request = [&]() {
      Request req;
      req.user_id = u;
      const int n_rel = static_cast<int>(config.candidates_per_request *
                                         config.candidate_relevant_frac);
      req.candidates = SampleWithoutReplacement(logits, n_rel, rng);
      while (static_cast<int>(req.candidates.size()) <
             config.candidates_per_request) {
        const int v = random_item(rng);
        if (std::find(req.candidates.begin(), req.candidates.end(), v) ==
            req.candidates.end()) {
          req.candidates.push_back(v);
        }
      }
      return req;
    };
    for (int r = 0; r < config.rerank_lists_per_user; ++r) {
      data.rerank_train_requests.push_back(make_request());
    }
    for (int r = 0; r < config.test_lists_per_user; ++r) {
      data.test_requests.push_back(make_request());
    }
  }

  return data;
}

void ApplyPreferenceDrift(Dataset* data, int rotate_topics, float blend) {
  const int m = data->num_topics;
  if (m <= 0) return;
  const float b = std::clamp(blend, 0.0f, 1.0f);
  const int shift = ((rotate_topics % m) + m) % m;
  if (b == 0.0f || shift == 0) return;
  std::vector<float> rotated(static_cast<size_t>(m));
  for (User& user : data->users) {
    if (static_cast<int>(user.topic_pref.size()) != m) continue;
    for (int j = 0; j < m; ++j) {
      rotated[j] = user.topic_pref[(j + shift) % m];
    }
    float sum = 0.0f;
    for (int j = 0; j < m; ++j) {
      user.topic_pref[j] = (1.0f - b) * user.topic_pref[j] + b * rotated[j];
      sum += user.topic_pref[j];
    }
    if (sum > 0.0f) {
      for (float& x : user.topic_pref) x /= sum;
    }
    user.diversity_appetite = NormalizedEntropy(user.topic_pref);
  }
}

}  // namespace rapid::data
