#ifndef RAPID_DATAGEN_TYPES_H_
#define RAPID_DATAGEN_TYPES_H_

#include <string>
#include <vector>

namespace rapid::data {

/// An item in the catalog.
struct Item {
  int id = 0;
  /// Dense observed item features `x_v`: the topic-structured latent vector
  /// plus a *noisy* view of the item's quality.
  std::vector<float> features;
  /// Topic coverage `tau_v in [0,1]^m`: probability the item covers topic j.
  std::vector<float> topic_coverage;
  /// Bid price, used by the App Store revenue metric `rev@k` (0 elsewhere).
  float bid = 0.0f;
  /// Simulator-internal ground truth: the item's true quality. Drives the
  /// click model; models must never read it (they see only the noisy
  /// feature copy inside `features`).
  float hidden_quality = 0.0f;
};

/// A user with ground-truth (hidden) preference structure. Models only see
/// `features` and the behavior history; `topic_pref` / `diversity_appetite`
/// drive the click simulator and are used for evaluation oracles.
struct User {
  int id = 0;
  /// Dense observed user features `x_u`: a noisy random projection of the
  /// hidden topic preference (a weak "demographic" signal). The full
  /// preference is only recoverable from the behavior history.
  std::vector<float> features;
  /// Ground-truth preference distribution over topics (sums to 1).
  std::vector<float> topic_pref;
  /// In [0,1]: how strongly list diversity (vs pure relevance) drives this
  /// user's clicks. Heterogeneous across users by construction.
  float diversity_appetite = 0.0f;
};

/// One labelled user-item interaction for initial-ranker training.
struct Interaction {
  int user_id = 0;
  int item_id = 0;
  /// 1 = positive (clicked/purchased), 0 = sampled negative.
  int label = 0;
};

/// One re-ranking request: a user plus a ranked list of candidate items.
/// `clicks` is filled by the click simulator (training) or left empty until
/// evaluation time (test).
struct ImpressionList {
  int user_id = 0;
  /// Item ids in ranked order (initial ranking for inputs; re-ranked for
  /// outputs).
  std::vector<int> items;
  /// Initial-ranker scores aligned with `items`.
  std::vector<float> scores;
  /// 0/1 click labels aligned with `items`; empty if not yet simulated.
  std::vector<int> clicks;
};

/// One recommendation request before initial ranking: a user plus an
/// unranked candidate pool. The experiment pipeline scores the candidates
/// with an initial ranker and keeps the top-L as the `ImpressionList`.
struct Request {
  int user_id = 0;
  std::vector<int> candidates;
};

/// A fully generated dataset following the paper's 4-way split:
/// user behavior history / initial-ranker train / re-ranking train / test.
struct Dataset {
  std::string name;
  int num_topics = 0;
  std::vector<User> users;
  std::vector<Item> items;
  /// Per user: time-ordered item ids from the behavior-history split.
  std::vector<std::vector<int>> history;
  /// Interactions for training the initial ranker.
  std::vector<Interaction> ranker_train;
  /// Requests whose initial lists train the re-rankers (clicks from DCM).
  std::vector<Request> rerank_train_requests;
  /// Requests used for final evaluation.
  std::vector<Request> test_requests;

  const User& user(int id) const { return users[id]; }
  const Item& item(int id) const { return items[id]; }
  int user_feature_dim() const {
    return users.empty() ? 0 : static_cast<int>(users[0].features.size());
  }
  int item_feature_dim() const {
    return items.empty() ? 0 : static_cast<int>(items[0].features.size());
  }
};

/// Probabilistic coverage of topic `j` by the first `upto` items of `list`
/// (Eq. 4 of the paper): `c_j = 1 - prod_v (1 - tau_v^j)`.
/// `upto < 0` means the whole list.
float TopicCoverage(const Dataset& data, const std::vector<int>& item_ids,
                    int topic, int upto = -1);

/// All-topic coverage vector `c(list_1..upto)`.
std::vector<float> CoverageVector(const Dataset& data,
                                  const std::vector<int>& item_ids,
                                  int upto = -1);

/// Marginal diversity of each position in `item_ids` (Eq. 5):
/// `d_R(R(i)) = c(R) - c(R \ {R(i)})`, returned as an
/// `item_ids.size() x m` row-major matrix flattened per item.
std::vector<std::vector<float>> MarginalDiversity(
    const Dataset& data, const std::vector<int>& item_ids);

}  // namespace rapid::data

#endif  // RAPID_DATAGEN_TYPES_H_
