#ifndef RAPID_DATAGEN_HISTORY_H_
#define RAPID_DATAGEN_HISTORY_H_

#include <vector>

#include "datagen/types.h"

namespace rapid::data {

/// Topics an item is considered to belong to when splitting behavior
/// histories: every topic whose coverage is at least `threshold`, or the
/// argmax topic if none reaches it. One-hot and multi-hot items resolve to
/// exactly their nonzero topics (their weights are >= 1/3 >= threshold by
/// construction); soft GMM coverage maps to the confident components.
std::vector<int> TopicMembership(const Item& item, float threshold = 0.25f);

/// Splits a user's time-ordered behavior history into per-topic sequences
/// (paper Section III-C): sequence `j` holds the ids of the *most recent*
/// `max_len` history items belonging to topic `j`, oldest first. Topics the
/// user never interacted with yield empty sequences.
std::vector<std::vector<int>> SplitHistoryByTopic(const Dataset& data,
                                                  int user_id, int max_len,
                                                  float threshold = 0.25f);

/// Empirical topic distribution of a user's history (how often each topic
/// appears among the history items' memberships, normalized). Used by the
/// adpMMR baseline and the case-study tooling.
std::vector<float> HistoryTopicDistribution(const Dataset& data, int user_id,
                                            float threshold = 0.25f);

}  // namespace rapid::data

#endif  // RAPID_DATAGEN_HISTORY_H_
