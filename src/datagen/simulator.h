#ifndef RAPID_DATAGEN_SIMULATOR_H_
#define RAPID_DATAGEN_SIMULATOR_H_

#include <random>
#include <vector>

#include "datagen/types.h"

namespace rapid::data {

/// Which public/industrial dataset the synthetic universe stands in for.
/// The three kinds differ in topic structure exactly as the paper's
/// datasets do:
///  - kTaobao:    m=5 soft topic coverage from GMM clustering of item
///                latents (the paper clusters Taobao's 9439 categories into
///                5 topics with GMMs);
///  - kMovieLens: m=20 normalized multi-hot genre vectors (1-3 genres);
///  - kAppStore:  m=23 one-hot categories plus per-item bid prices.
enum class DatasetKind { kTaobao, kMovieLens, kAppStore };

/// Scale and shape parameters of the synthetic universe.
struct SimConfig {
  DatasetKind kind = DatasetKind::kTaobao;
  int num_users = 300;
  int num_items = 1500;
  /// Latent/feature dimensionality (q_u = q_v).
  int latent_dim = 8;
  /// Items per user in the behavior-history split.
  int history_len = 30;
  /// Positive (and equally many negative) interactions per user for the
  /// initial-ranker training split.
  int ranker_train_pos_per_user = 12;
  /// Re-ranking training requests per user.
  int rerank_lists_per_user = 4;
  /// Test requests per user.
  int test_lists_per_user = 1;
  /// Candidate-pool size per request (initial ranker keeps the top-L).
  int candidates_per_request = 40;
  /// Fraction of each candidate pool sampled by relevance; the rest is
  /// uniform. Lower values leave more headroom for the re-ranking stage
  /// (the initial ranker must find the needles).
  float candidate_relevant_frac = 0.3f;
  /// Spread of topic centroids in latent space (larger = easier topics).
  float topic_spread = 2.0f;
  /// Item latent noise around its topic centroid.
  float item_noise = 0.6f;
  /// Observation noise of the user-feature projection (how much of the
  /// hidden topic preference leaks into the observable features).
  float user_noise = 0.8f;

  /// Returns the number of topics implied by `kind` (5 / 20 / 23).
  int num_topics() const;
};

/// Generates a full synthetic dataset. Deterministic given `seed`.
///
/// Ground-truth structure (hidden from models):
///  - topic centroids `mu_j` spread in latent space;
///  - item latents near their topic centroid; coverage per `kind`;
///  - user topic preferences `theta_u` ~ Dirichlet with per-user
///    concentration drawn from a focused/medium/diverse mixture, so
///    diversity appetite is heterogeneous across the population;
///  - `diversity_appetite` = normalized entropy of `theta_u`;
///  - relevance-driven sampling of histories, training interactions, and
///    candidate pools.
Dataset GenerateDataset(const SimConfig& config, uint64_t seed);

/// Ground-truth relevance `alpha(u, v)` in (0,1) used by the click
/// simulator: a calibrated logistic of the user-item latent affinity and
/// the topic-preference match. Models never see this directly.
float TrueRelevance(const User& user, const Item& item);

/// The raw (pre-sigmoid) relevance logit; exposed for samplers and tests.
float TrueRelevanceLogit(const User& user, const Item& item);

/// Non-stationarity injector for online-learning experiments: shifts every
/// user's *hidden* topic preference by blending it with a copy cyclically
/// rotated `rotate_topics` positions —
/// `theta' = (1 - blend) * theta + blend * rotate(theta, rotate_topics)`,
/// renormalized — and recomputes `diversity_appetite` from the new
/// distribution. Observable `features` are deliberately left untouched:
/// clicks change while model inputs do not, which is exactly the drift a
/// frozen model cannot follow and a feedback-trained one can. `blend` is
/// clamped to [0, 1]; `blend = 1` is a pure rotation.
void ApplyPreferenceDrift(Dataset* data, int rotate_topics, float blend);

}  // namespace rapid::data

#endif  // RAPID_DATAGEN_SIMULATOR_H_
