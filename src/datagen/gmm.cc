#include "datagen/gmm.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace rapid::data {

namespace {

double SquaredDistance(const std::vector<float>& a,
                       const std::vector<double>& b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

}  // namespace

GaussianMixture::GaussianMixture(int k, int dim)
    : k_(k),
      dim_(dim),
      means_(k, std::vector<double>(dim, 0.0)),
      vars_(k, 1.0),
      weights_(k, 1.0 / k) {}

void GaussianMixture::Fit(const std::vector<std::vector<float>>& points,
                          std::mt19937_64& rng, int max_iters, double tol) {
  assert(!points.empty());
  const int n = static_cast<int>(points.size());

  // k-means++ seeding: first mean uniform, the rest proportional to the
  // squared distance from the nearest chosen mean.
  std::uniform_int_distribution<int> uni(0, n - 1);
  {
    const auto& p0 = points[uni(rng)];
    for (int d = 0; d < dim_; ++d) means_[0][d] = p0[d];
  }
  std::vector<double> min_d2(n, std::numeric_limits<double>::max());
  for (int c = 1; c < k_; ++c) {
    double total = 0.0;
    for (int i = 0; i < n; ++i) {
      min_d2[i] = std::min(min_d2[i], SquaredDistance(points[i], means_[c - 1]));
      total += min_d2[i];
    }
    std::uniform_real_distribution<double> pick(0.0, total);
    double r = pick(rng);
    int chosen = n - 1;
    for (int i = 0; i < n; ++i) {
      r -= min_d2[i];
      if (r <= 0.0) {
        chosen = i;
        break;
      }
    }
    for (int d = 0; d < dim_; ++d) means_[c][d] = points[chosen][d];
  }

  std::vector<std::vector<double>> resp(n, std::vector<double>(k_));
  double prev_ll = -std::numeric_limits<double>::max();
  for (int iter = 0; iter < max_iters; ++iter) {
    // E-step with log-sum-exp stabilization.
    double ll = 0.0;
    for (int i = 0; i < n; ++i) {
      double max_log = -std::numeric_limits<double>::max();
      std::vector<double> logp(k_);
      for (int c = 0; c < k_; ++c) {
        const double var = vars_[c];
        logp[c] = std::log(weights_[c]) -
                  0.5 * dim_ * std::log(2.0 * M_PI * var) -
                  SquaredDistance(points[i], means_[c]) / (2.0 * var);
        max_log = std::max(max_log, logp[c]);
      }
      double denom = 0.0;
      for (int c = 0; c < k_; ++c) denom += std::exp(logp[c] - max_log);
      ll += max_log + std::log(denom);
      for (int c = 0; c < k_; ++c) {
        resp[i][c] = std::exp(logp[c] - max_log) / denom;
      }
    }
    log_likelihood_ = ll / n;

    // M-step.
    for (int c = 0; c < k_; ++c) {
      double nc = 0.0;
      std::vector<double> mean(dim_, 0.0);
      for (int i = 0; i < n; ++i) {
        nc += resp[i][c];
        for (int d = 0; d < dim_; ++d) mean[d] += resp[i][c] * points[i][d];
      }
      nc = std::max(nc, 1e-9);
      for (int d = 0; d < dim_; ++d) mean[d] /= nc;
      double var = 0.0;
      for (int i = 0; i < n; ++i) {
        var += resp[i][c] * SquaredDistance(points[i], mean) / dim_;
      }
      var = std::max(var / nc, 1e-4);
      means_[c] = std::move(mean);
      vars_[c] = var;
      weights_[c] = nc / n;
    }

    if (log_likelihood_ - prev_ll < tol && iter > 0) break;
    prev_ll = log_likelihood_;
  }
}

std::vector<float> GaussianMixture::Posterior(const std::vector<float>& point,
                                              double var_inflation) const {
  std::vector<double> logp(k_);
  double max_log = -std::numeric_limits<double>::max();
  for (int c = 0; c < k_; ++c) {
    const double var = vars_[c] * var_inflation;
    logp[c] = std::log(weights_[c]) -
              0.5 * dim_ * std::log(2.0 * M_PI * var) -
              SquaredDistance(point, means_[c]) / (2.0 * var);
    max_log = std::max(max_log, logp[c]);
  }
  double denom = 0.0;
  for (int c = 0; c < k_; ++c) denom += std::exp(logp[c] - max_log);
  std::vector<float> out(k_);
  for (int c = 0; c < k_; ++c) {
    out[c] = static_cast<float>(std::exp(logp[c] - max_log) / denom);
  }
  return out;
}

}  // namespace rapid::data
