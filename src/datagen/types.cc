#include "datagen/types.h"

#include <cassert>

namespace rapid::data {

float TopicCoverage(const Dataset& data, const std::vector<int>& item_ids,
                    int topic, int upto) {
  const size_t n = upto < 0 ? item_ids.size()
                            : std::min<size_t>(upto, item_ids.size());
  double prod = 1.0;
  for (size_t i = 0; i < n; ++i) {
    prod *= 1.0 - data.item(item_ids[i]).topic_coverage[topic];
  }
  return static_cast<float>(1.0 - prod);
}

std::vector<float> CoverageVector(const Dataset& data,
                                  const std::vector<int>& item_ids,
                                  int upto) {
  std::vector<float> out(data.num_topics);
  for (int j = 0; j < data.num_topics; ++j) {
    out[j] = TopicCoverage(data, item_ids, j, upto);
  }
  return out;
}

std::vector<std::vector<float>> MarginalDiversity(
    const Dataset& data, const std::vector<int>& item_ids) {
  const int m = data.num_topics;
  const int L = static_cast<int>(item_ids.size());
  // prod_all[j] = prod_v (1 - tau_v^j). Marginal diversity of item i in
  // topic j is prod_{v != i}(1 - tau_v^j) * tau_i^j. Guard division by zero
  // when some tau is exactly 1 by recomputing the leave-one-out product.
  std::vector<double> prod_all(m, 1.0);
  std::vector<int> zero_count(m, 0);
  for (int i = 0; i < L; ++i) {
    const auto& tau = data.item(item_ids[i]).topic_coverage;
    for (int j = 0; j < m; ++j) {
      const double f = 1.0 - tau[j];
      if (f == 0.0) {
        ++zero_count[j];
      } else {
        prod_all[j] *= f;
      }
    }
  }
  std::vector<std::vector<float>> out(L, std::vector<float>(m));
  for (int i = 0; i < L; ++i) {
    const auto& tau = data.item(item_ids[i]).topic_coverage;
    for (int j = 0; j < m; ++j) {
      const double f = 1.0 - tau[j];
      double loo;  // prod over v != i of (1 - tau_v^j)
      if (f == 0.0) {
        loo = (zero_count[j] == 1) ? prod_all[j] : 0.0;
      } else {
        loo = (zero_count[j] > 0) ? 0.0 : prod_all[j] / f;
      }
      out[i][j] = static_cast<float>(loo * tau[j]);
    }
  }
  return out;
}

}  // namespace rapid::data
