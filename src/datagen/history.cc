#include "datagen/history.h"

#include <algorithm>

namespace rapid::data {

std::vector<int> TopicMembership(const Item& item, float threshold) {
  std::vector<int> topics;
  int argmax = 0;
  for (size_t j = 0; j < item.topic_coverage.size(); ++j) {
    if (item.topic_coverage[j] >= threshold) {
      topics.push_back(static_cast<int>(j));
    }
    if (item.topic_coverage[j] > item.topic_coverage[argmax]) {
      argmax = static_cast<int>(j);
    }
  }
  if (topics.empty()) topics.push_back(argmax);
  return topics;
}

std::vector<std::vector<int>> SplitHistoryByTopic(const Dataset& data,
                                                  int user_id, int max_len,
                                                  float threshold) {
  std::vector<std::vector<int>> seqs(data.num_topics);
  for (int item_id : data.history[user_id]) {
    for (int j : TopicMembership(data.item(item_id), threshold)) {
      seqs[j].push_back(item_id);
    }
  }
  // Keep only the most recent `max_len` per topic (history is oldest-first).
  for (auto& seq : seqs) {
    if (static_cast<int>(seq.size()) > max_len) {
      seq.erase(seq.begin(), seq.end() - max_len);
    }
  }
  return seqs;
}

std::vector<float> HistoryTopicDistribution(const Dataset& data, int user_id,
                                            float threshold) {
  std::vector<float> dist(data.num_topics, 0.0f);
  float total = 0.0f;
  for (int item_id : data.history[user_id]) {
    for (int j : TopicMembership(data.item(item_id), threshold)) {
      dist[j] += 1.0f;
      total += 1.0f;
    }
  }
  if (total > 0.0f) {
    for (float& x : dist) x /= total;
  }
  return dist;
}

}  // namespace rapid::data
