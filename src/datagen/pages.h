#ifndef RAPID_DATAGEN_PAGES_H_
#define RAPID_DATAGEN_PAGES_H_

#include <cstdint>
#include <vector>

#include "datagen/types.h"

namespace rapid::data {

/// Shape of a simulated multi-list page session: one user shown several
/// candidate lists together (feed, ads, banners). Sibling lists draw part
/// of their candidates from a shared per-page "trending" pool, so the raw
/// page carries genuine cross-list topical redundancy for a page-level
/// reranker to remove.
struct PageGenConfig {
  int lists_per_page = 3;
  int items_per_list = 20;
  /// Total pages generated; users are assigned round-robin.
  int num_pages = 100;
  /// Fraction of each list's candidates drawn from the page's shared pool
  /// (the redundancy dial: 0 = disjoint sampling, 1 = every list samples
  /// only trending items).
  float shared_frac = 0.4f;
  /// Size of the per-page shared pool.
  int shared_pool_size = 30;
  /// Std-dev of the observation noise on the initial scores (a stand-in
  /// initial ranker: noisy true relevance, sorted descending).
  float score_noise = 0.1f;
  /// Scales the per-user diversity budget:
  /// `budget = diversity_appetite * budget_scale * lists_per_page`.
  float budget_scale = 1.0f;
};

/// One generated page session. Each list is initial-ranked (items sorted
/// by its noisy scores, descending); `clicks` stays empty — page-level
/// clicks come from the page DCM at evaluation time.
struct PageSession {
  int user_id = 0;
  /// The user's diversity budget for this page, in mean-topic units of
  /// marginal-coverage mass (see `page::PageRequest`).
  float diversity_budget = 0.0f;
  std::vector<ImpressionList> lists;
};

/// Generates `config.num_pages` multi-list page sessions. Deterministic
/// given `seed`. Item ids within one list are distinct; sibling lists
/// overlap through the shared pool by construction.
std::vector<PageSession> GeneratePageSessions(const Dataset& data,
                                              const PageGenConfig& config,
                                              uint64_t seed);

}  // namespace rapid::data

#endif  // RAPID_DATAGEN_PAGES_H_
