#ifndef RAPID_NET_CLIENT_H_
#define RAPID_NET_CLIENT_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "net/codec.h"

namespace rapid::net {

/// A small blocking client for the wire protocol, with pipelining: many
/// requests may be in flight before the first response is read, and
/// responses may arrive out of order (the request id correlates them).
/// Used by the tests, the quickstart, and `bench_net`'s load driver.
///
/// Not thread-safe: one client per thread (open N clients for N
/// connections, which is exactly what the load driver does).
class Client {
 public:
  /// One received frame: either a score response or a server-side error
  /// report for the given request id.
  struct Reply {
    WireResponse response;
    bool is_error = false;
    std::string error_message;
    uint64_t request_id() const {
      return is_error ? error_request_id : response.request_id;
    }
    uint64_t error_request_id = 0;
  };

  Client() = default;
  explicit Client(CodecLimits limits) : limits_(limits) {}
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to `host:port`. Returns false on any socket error.
  bool Connect(const std::string& host, uint16_t port);

  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Half-close: tells the server no more requests are coming while
  /// responses can still be read — how a pipelined batch is finished.
  void FinishSending();

  /// Encodes and writes one request frame (blocking until fully written).
  /// Assigns `request->request_id` from an internal counter when it is 0.
  /// Returns the request id, or 0 on a write failure.
  uint64_t Send(WireRequest* request);

  /// Reads the next response or error frame, in arrival order (stashed
  /// frames from `Call` first). `timeout_ms < 0` blocks indefinitely.
  /// Returns false on timeout, EOF, or a protocol error.
  bool Receive(Reply* out, int timeout_ms = -1);

  /// Synchronous convenience: `Send` + receive until *this* request's
  /// reply arrives, stashing any other pipelined replies for later
  /// `Receive` calls.
  bool Call(WireRequest request, Reply* out, int timeout_ms = -1);

 private:
  /// Blocking-reads one frame off the socket into `out`.
  bool ReadFrame(Reply* out, int timeout_ms);

  int fd_ = -1;
  uint64_t next_request_id_ = 1;
  std::vector<uint8_t> rbuf_;
  std::deque<Reply> stashed_;
  CodecLimits limits_;
};

}  // namespace rapid::net

#endif  // RAPID_NET_CLIENT_H_
