#ifndef RAPID_NET_CLIENT_H_
#define RAPID_NET_CLIENT_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "net/codec.h"
#include "net/fault.h"

namespace rapid::net {

/// A small blocking client for the wire protocol, with pipelining: many
/// requests may be in flight before the first response is read, and
/// responses may arrive out of order (the request id correlates them).
/// Used by the tests, the quickstart, and `bench_net`'s load driver.
///
/// Not thread-safe: one client per thread (open N clients for N
/// connections, which is exactly what the load driver does).
class Client {
 public:
  /// One received frame: a score response, a stats or load-slot answer, or
  /// a server-side error report for the given request id. `type` says
  /// which of the bodies is meaningful.
  struct Reply {
    FrameType type = FrameType::kScoreResponse;
    WireResponse response;
    WireStatsResponse stats;
    WireLoadResponse load;
    WireFeedbackAck feedback_ack;
    WirePageResponse page;
    bool is_error = false;
    std::string error_message;
    uint64_t request_id() const {
      switch (type) {
        case FrameType::kStatsResponse:
          return stats.request_id;
        case FrameType::kLoadSlotResponse:
          return load.request_id;
        case FrameType::kFeedbackAck:
          return feedback_ack.request_id;
        case FrameType::kPageResponse:
          return page.request_id;
        case FrameType::kError:
          return error_request_id;
        default:
          return response.request_id;
      }
    }
    uint64_t error_request_id = 0;
  };

  Client() = default;
  explicit Client(CodecLimits limits) : limits_(limits) {}
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to `host:port`. Returns false on any socket error. The
  /// address is remembered for `Reconnect`.
  bool Connect(const std::string& host, uint16_t port);

  /// Re-dials the address of the last `Connect` (a shard router's
  /// recovery hook after a shard restart). Any in-flight pipelined state
  /// is discarded with the old socket. False if never connected or the
  /// dial fails.
  bool Reconnect();

  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Half-close: tells the server no more requests are coming while
  /// responses can still be read — how a pipelined batch is finished.
  void FinishSending();

  /// Encodes and writes one request frame (blocking until fully written).
  /// Assigns `request->request_id` from an internal counter when it is 0.
  /// Returns the request id, or 0 on a write failure.
  uint64_t Send(WireRequest* request);

  /// Reads the next response or error frame, in arrival order (stashed
  /// frames from `Call` first). `timeout_ms < 0` blocks indefinitely.
  /// Returns false on timeout, EOF, or a protocol error.
  bool Receive(Reply* out, int timeout_ms = -1);

  /// `Receive` outcome with the failure cause split out: a caller polling
  /// in slices (the shard router's receiver thread) must tell "nothing
  /// arrived yet" from "this connection is dead and needs a redial".
  enum class RecvStatus {
    kOk,
    /// The timeout elapsed with no complete frame; the connection is fine.
    kTimeout,
    /// EOF, a socket error, or lost framing — redial to recover.
    kClosed,
  };
  RecvStatus ReceiveStatus(Reply* out, int timeout_ms = -1);

  /// Synchronous convenience: `Send` + receive until *this* request's
  /// reply arrives, stashing any other pipelined replies for later
  /// `Receive` calls.
  bool Call(WireRequest request, Reply* out, int timeout_ms = -1);

  /// Encodes and writes one page-request frame (many candidate lists in
  /// one frame). Same id-assignment and pipelining contract as `Send`.
  uint64_t SendPage(WirePageRequest* request);

  /// Synchronous page round-trip: `SendPage` + wait for this page's
  /// reply, stashing any other pipelined replies.
  bool CallPage(WirePageRequest request, Reply* out, int timeout_ms = -1);

  /// Fetches the server's `RouterStats` snapshot in structured binary
  /// form. False on transport failure or if the server answered with an
  /// error frame (e.g. a pre-stats peer).
  bool GetStats(serve::RouterStats* out, int timeout_ms = -1);

  /// Same scrape, but as the server-rendered `ToJson` text.
  bool GetStatsJson(std::string* out, int timeout_ms = -1);

  /// Same scrape, in Prometheus text exposition format — what a scrape
  /// bridge relays to the metrics tier verbatim.
  bool GetStatsPrometheus(std::string* out, int timeout_ms = -1);

  /// Reports one served list back to the server's feedback log: `items`
  /// in the order they were shown, one 0/1 click label per item. True
  /// when the server acked; `*accepted` (when non-null) says whether the
  /// event made it into the log or was shed (log full) / refused
  /// (feedback disabled — reported via `accepted=false` after an error
  /// frame). False only on transport failure.
  bool SendFeedback(const std::string& slot, uint64_t model_version,
                    int user_id, const std::vector<int>& items,
                    const std::vector<uint8_t>& clicks, bool* accepted,
                    int timeout_ms = -1);

  /// Deterministic fault injection (tests only; see net/fault.h): when a
  /// plan is set, writes may be split partial, reads clamped short, and
  /// the connection aborted with an RST mid-stream — on the plan's
  /// seeded, replayable schedule. The client is single-threaded, so the
  /// plan's injection points are visited in a deterministic order and a
  /// faulty session replays bit-identically from its seed. Null restores
  /// the untouched I/O paths. Borrowed; must outlive the client.
  void set_fault_plan(FaultPlan* plan) { fault_plan_ = plan; }

  /// Asks the server to `LoadSlot(slot, path)` (the path names a snapshot
  /// on the *server's* filesystem). True when a load response arrived:
  /// `*version` is the published version, 0 when the server refused
  /// (disabled, bad snapshot, canary rejection) with the reason in
  /// `*message`. False only on transport failure.
  bool RemoteLoadSlot(const std::string& slot, const std::string& path,
                      uint64_t* version, std::string* message = nullptr,
                      int timeout_ms = -1);

 private:
  /// Blocking-reads one frame off the socket into `out`.
  bool ReadFrame(Reply* out, int timeout_ms);
  RecvStatus ReadFrameStatus(Reply* out, int timeout_ms);
  /// Blocking-writes `frame`; false on any write failure.
  bool WriteAll(const std::vector<uint8_t>& frame);
  /// Fault seam: tears the connection down with an RST (SO_LINGER 0) so
  /// the server sees a genuine reset, not a polite FIN.
  void AbortConnection();
  /// Drains replies until `id`'s arrives (others are stashed).
  /// `timeout_ms` bounds the *whole* wait with one absolute deadline, not
  /// each frame read.
  bool WaitFor(uint64_t id, Reply* out, int timeout_ms);

  int fd_ = -1;
  std::string host_;
  uint16_t port_ = 0;
  uint64_t next_request_id_ = 1;
  std::vector<uint8_t> rbuf_;
  std::deque<Reply> stashed_;
  CodecLimits limits_;
  FaultPlan* fault_plan_ = nullptr;
};

}  // namespace rapid::net

#endif  // RAPID_NET_CLIENT_H_
