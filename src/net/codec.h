#ifndef RAPID_NET_CODEC_H_
#define RAPID_NET_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "datagen/types.h"
#include "serve/admission.h"
#include "serve/router.h"

namespace rapid::net {

/// The wire protocol of the network serving front-end: compact
/// length-prefixed binary frames carrying score requests and responses
/// between a remote caller and a `net::Server` wrapping a
/// `serve::ServingRouter`.
///
/// ## Frame layout (all integers little-endian)
///
///   offset  size  field
///        0     4  magic "RNET" (0x54454E52)
///        4     1  protocol version (kProtocolVersion)
///        5     1  frame type (`FrameType`)
///        6     2  flags (reserved, must be 0)
///        8     8  request id (caller-chosen, echoed on the response)
///       16     4  payload length in bytes
///       20     N  payload (type-specific, see Encode*/Parse* below)
///
/// Responses may arrive out of order relative to submissions on the same
/// connection (a cache hit overtakes a model run); the request id is the
/// correlation key.
///
/// ## Robustness contract
///
/// Decoding is strictly bounds-checked and never trusts a length field:
/// `ExtractFrame` rejects bad magic, unknown versions, nonzero reserved
/// flags, and oversized payload lengths as `kError` without reading past
/// the buffer; a torn prefix is `kNeedMore`, never a crash. Payload
/// parsers (`ParseScoreRequest` etc.) consume a *complete* frame and fail
/// cleanly on truncated or internally inconsistent payloads (an item
/// count pointing past the payload end), so a malformed payload never
/// desynchronizes the framing layer.
inline constexpr uint32_t kFrameMagic = 0x54454E52;  // "RNET"
inline constexpr uint8_t kProtocolVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 20;

enum class FrameType : uint8_t {
  kScoreRequest = 1,
  kScoreResponse = 2,
  /// Server -> client: the request could not be served (malformed payload,
  /// unknown frame type, server draining). Payload is a UTF-8 message.
  kError = 3,
  /// Client -> server: asks for the router's `RouterStats` snapshot, in
  /// the format named by the payload's `StatsFormat` byte. Added after the
  /// first protocol release *without* a version bump: a peer that predates
  /// it answers with a `kError` frame ("unknown frame type"), which
  /// callers surface — new frame types are a compatible extension, unlike
  /// a layout change to an existing frame.
  kStatsRequest = 4,
  kStatsResponse = 5,
  /// Client -> server: asks the server to `LoadSlot(slot, path)` — the
  /// remote-rollout primitive the shard coordinator drives. Servers refuse
  /// it unless explicitly enabled (`ServerConfig::enable_remote_load`):
  /// the path names a file on the *server's* filesystem, so the frame is
  /// trusted-operator API, not public surface.
  kLoadSlotRequest = 6,
  kLoadSlotResponse = 7,
  /// Client -> server: one served impression list plus its observed
  /// click labels — the raw material of the online learning loop. The
  /// server appends it to its `online::FeedbackLog` (refusing with
  /// `kError` when no log is configured) and answers `kFeedbackAck`.
  /// Like the admin frames, a compatible extension: an old peer answers
  /// `kError` ("unknown frame type").
  kFeedback = 8,
  kFeedbackAck = 9,
  /// Client -> server: one *page* — several candidate lists for one user
  /// plus a shared diversity budget. The server fans the lists into one
  /// router micro-batch, runs the cross-list greedy pass (`src/page/`)
  /// over the returned orders, and answers `kPageResponse` with every
  /// list's final permutation. One frame carrying L lists amortizes
  /// syscalls and dispatcher round-trips over L single-list frames — the
  /// bulk-scoring batch frame. Like the other post-v1 frames, a
  /// compatible extension: an old peer answers `kError`
  /// ("unknown frame type").
  kPageRequest = 10,
  kPageResponse = 11,
};

/// How a `kStatsRequest` wants its answer encoded.
enum class StatsFormat : uint8_t {
  /// Structured binary payload (`ParseStatsResponse` fills a
  /// `serve::RouterStats`) — what the shard layer merges across a fleet.
  kBinary = 0,
  /// The router's `ToJson` text as the raw payload bytes (not
  /// length-prefixed — JSON outgrows the string limit), for scrapers.
  kJson = 1,
  /// Prometheus text exposition (`serve::RenderPrometheus`), raw payload
  /// bytes like kJson, for standard metric collectors.
  kPrometheus = 2,
};

/// Decoder bounds, enforced before any allocation sized from wire data.
struct CodecLimits {
  /// Frames with a larger payload length are rejected outright.
  uint32_t max_payload_bytes = 1u << 20;
  /// Candidate items per request/response list.
  uint32_t max_items = 4096;
  /// Slot-name / model-name / error-message length.
  uint32_t max_string_bytes = 256;
  /// Candidate lists one page frame may carry (each list is additionally
  /// bounded by `max_items`).
  uint32_t max_lists_per_page = 64;
};

struct FrameHeader {
  uint8_t version = 0;
  FrameType type = FrameType::kError;
  uint64_t request_id = 0;
  uint32_t payload_len = 0;
};

/// One complete frame pulled off a connection's read buffer.
struct Frame {
  FrameHeader header;
  std::vector<uint8_t> payload;
};

/// A score request as it crosses the wire: the routing envelope plus the
/// candidate list. Click labels never cross the wire — inference does not
/// read them (see `serve::ResultCache`).
struct WireRequest {
  uint64_t request_id = 0;
  std::string slot;
  serve::Lane lane = serve::Lane::kHigh;
  /// Advisory per-request deadline, microseconds from submission; 0 =
  /// none. Carried on the wire for forward compatibility; the router
  /// currently applies its configured per-request deadline.
  int64_t deadline_us = 0;
  /// `user_id`, `items`, `scores` are meaningful; `clicks` is ignored.
  data::ImpressionList list;
};

/// A score response as it crosses the wire (mirrors
/// `serve::RouterResponse` minus the transport-local latency stamp).
struct WireResponse {
  uint64_t request_id = 0;
  bool degraded = false;
  bool shed = false;
  bool cache_hit = false;
  std::string model_name;
  uint64_t model_version = 0;
  /// Server-side latency (router submit -> response ready), microseconds.
  int64_t server_latency_us = 0;
  std::vector<int> items;
};

struct WireError {
  uint64_t request_id = 0;
  std::string message;
};

/// A stats scrape as it crosses the wire.
struct WireStatsRequest {
  uint64_t request_id = 0;
  StatsFormat format = StatsFormat::kBinary;
};

/// The answer: exactly one of `stats` (kBinary) or `text` (kJson /
/// kPrometheus) is meaningful, per `format`.
struct WireStatsResponse {
  uint64_t request_id = 0;
  StatsFormat format = StatsFormat::kBinary;
  serve::RouterStats stats;
  std::string text;
};

/// A remote `LoadSlot` as it crosses the wire. `path` names a snapshot on
/// the receiving server's filesystem.
struct WireLoadRequest {
  uint64_t request_id = 0;
  std::string slot;
  std::string path;
};

struct WireLoadResponse {
  uint64_t request_id = 0;
  /// The newly published version, or 0 when the load failed (bad
  /// snapshot, canary rejection) and the slot kept its previous version.
  uint64_t version = 0;
  /// Human-readable detail, empty on success.
  std::string message;
};

/// One served impression and its observed clicks, as they cross the wire
/// back to the trainer. `items` is the list *as served* (post-rerank
/// order matters — the DCM click model is positional) and `clicks` is one
/// 0/1 label per item; a length mismatch fails the parse.
struct WireFeedback {
  uint64_t request_id = 0;
  /// The slot that served the list, so one log can feed per-slot trainers.
  std::string slot;
  /// The model version stamped on the serving response; lets the trainer
  /// attribute feedback to the exact published model that earned it.
  uint64_t model_version = 0;
  int32_t user_id = 0;
  std::vector<int> items;
  std::vector<uint8_t> clicks;
};

struct WireFeedbackAck {
  uint64_t request_id = 0;
  /// False when the event was not logged (log full, or feedback disabled
  /// on this server); `message` carries the reason.
  bool accepted = false;
  std::string message;
};

/// One page as it crosses the wire: the routing envelope, the user's
/// diversity budget, and N candidate lists (each list's `items` and
/// `scores` are meaningful; the per-list `user_id` and `clicks` never
/// cross — the page-level `user_id` applies to every list).
struct WirePageRequest {
  uint64_t request_id = 0;
  std::string slot;
  serve::Lane lane = serve::Lane::kHigh;
  /// Advisory, as on `WireRequest`.
  int64_t deadline_us = 0;
  int32_t user_id = 0;
  /// Per-user diversity budget in mean-topic units (see
  /// `page::PageRequest::diversity_budget`). The server sanitizes
  /// non-finite or negative values to 0.
  float diversity_budget = 0.0f;
  /// 1 = joint cross-list pass (the default), 0 = independent per-list
  /// baseline — on the wire so a caller can A/B both against one server.
  uint8_t joint = 1;
  /// Positions per list receiving the diversity treatment; 0 = all.
  int32_t top_k = 0;
  std::vector<data::ImpressionList> lists;
};

/// The reranked page as it crosses the wire.
struct WirePageResponse {
  uint64_t request_id = 0;
  /// True when any list was answered degraded — the cross-list pass is
  /// skipped and the router's per-list orders returned unchanged.
  bool degraded = false;
  /// Attribution of the model that scored the lists (first non-degraded
  /// list's stamp; empty/0 when the whole page degraded).
  std::string model_name;
  uint64_t model_version = 0;
  int64_t server_latency_us = 0;
  /// Mean-topic coverage of the served page's treated prefixes.
  float page_coverage = 0.0f;
  /// Duplicated topic mass across sibling lists (mean-topic units).
  float cross_list_redundancy = 0.0f;
  /// One permutation per submitted list, in submission order.
  std::vector<std::vector<int>> lists;
};

/// Appends one encoded frame to `out` (does not clear it), so a pipelined
/// batch can be serialized into one flat buffer and written with one
/// syscall.
void EncodeScoreRequest(const WireRequest& request, std::vector<uint8_t>* out);
void EncodeScoreResponse(const WireResponse& response,
                         std::vector<uint8_t>* out);
void EncodeError(uint64_t request_id, std::string_view message,
                 std::vector<uint8_t>* out);
void EncodeStatsRequest(const WireStatsRequest& request,
                        std::vector<uint8_t>* out);
void EncodeStatsResponse(const WireStatsResponse& response,
                         std::vector<uint8_t>* out);
void EncodeLoadRequest(const WireLoadRequest& request,
                       std::vector<uint8_t>* out);
void EncodeLoadResponse(const WireLoadResponse& response,
                        std::vector<uint8_t>* out);
void EncodeFeedback(const WireFeedback& feedback, std::vector<uint8_t>* out);
void EncodeFeedbackAck(const WireFeedbackAck& ack, std::vector<uint8_t>* out);
void EncodePageRequest(const WirePageRequest& request,
                       std::vector<uint8_t>* out);
void EncodePageResponse(const WirePageResponse& response,
                        std::vector<uint8_t>* out);

enum class DecodeStatus {
  /// One complete frame extracted; `*consumed` bytes were used.
  kOk,
  /// The buffer holds a valid prefix of a frame; read more bytes.
  kNeedMore,
  /// The buffer does not start with a well-formed frame (bad magic,
  /// unknown version, oversized length). The connection is
  /// unrecoverable — framing is lost — and should be closed.
  kError,
};

/// Tries to pull one frame off the front of `data[0..size)`. On `kOk`,
/// `*out` holds the frame and `*consumed` the bytes to discard; on
/// `kNeedMore`/`kError` nothing is consumed.
DecodeStatus ExtractFrame(const uint8_t* data, size_t size, size_t* consumed,
                          Frame* out, const CodecLimits& limits = {});

/// Payload parsers. Each requires the matching frame type and returns
/// false on any truncated, oversized, or internally inconsistent payload
/// (the output is unspecified but never out-of-bounds).
bool ParseScoreRequest(const Frame& frame, WireRequest* out,
                       const CodecLimits& limits = {});
bool ParseScoreResponse(const Frame& frame, WireResponse* out,
                        const CodecLimits& limits = {});
bool ParseError(const Frame& frame, WireError* out,
                const CodecLimits& limits = {});
bool ParseStatsRequest(const Frame& frame, WireStatsRequest* out,
                       const CodecLimits& limits = {});
bool ParseStatsResponse(const Frame& frame, WireStatsResponse* out,
                        const CodecLimits& limits = {});
bool ParseLoadRequest(const Frame& frame, WireLoadRequest* out,
                      const CodecLimits& limits = {});
bool ParseLoadResponse(const Frame& frame, WireLoadResponse* out,
                       const CodecLimits& limits = {});
bool ParseFeedback(const Frame& frame, WireFeedback* out,
                   const CodecLimits& limits = {});
bool ParseFeedbackAck(const Frame& frame, WireFeedbackAck* out,
                      const CodecLimits& limits = {});
bool ParsePageRequest(const Frame& frame, WirePageRequest* out,
                      const CodecLimits& limits = {});
bool ParsePageResponse(const Frame& frame, WirePageResponse* out,
                       const CodecLimits& limits = {});

}  // namespace rapid::net

#endif  // RAPID_NET_CODEC_H_
