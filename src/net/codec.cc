#include "net/codec.h"

#include <cstring>

namespace rapid::net {

namespace {

// The wire format is defined little-endian; every supported target of this
// repo (x86-64, aarch64 Linux) is little-endian, so encode/decode are raw
// byte copies. A big-endian port would swap here, in one place.

template <typename T>
void Append(std::vector<uint8_t>* out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  const size_t at = out->size();
  out->resize(at + sizeof(T));
  std::memcpy(out->data() + at, &value, sizeof(T));
}

void AppendBytes(std::vector<uint8_t>* out, const void* data, size_t n) {
  if (n == 0) return;  // Empty vectors may hand over a null data().
  const size_t at = out->size();
  out->resize(at + n);
  std::memcpy(out->data() + at, data, n);
}

void AppendString(std::vector<uint8_t>* out, std::string_view s) {
  Append<uint16_t>(out, static_cast<uint16_t>(s.size()));
  AppendBytes(out, s.data(), s.size());
}

/// Bounds-checked sequential reader over one frame payload. Every `Read*`
/// fails (returns false) instead of reading past `size_`; a parser that
/// only ever advances through this class cannot overrun the buffer no
/// matter what the length fields claim.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  template <typename T>
  bool Read(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (size_ - pos_ < sizeof(T)) return false;
    std::memcpy(out, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool ReadString(std::string* out, uint32_t max_bytes) {
    uint16_t len = 0;
    if (!Read(&len) || len > max_bytes || size_ - pos_ < len) return false;
    out->assign(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return true;
  }

  template <typename T>
  bool ReadArray(std::vector<T>* out, uint32_t max_elems) {
    uint32_t count = 0;
    if (!Read(&count) || count > max_elems) return false;
    // Checked before the resize: a hostile count can never size an
    // allocation beyond max_elems or read past the payload.
    if ((size_ - pos_) / sizeof(T) < count) return false;
    out->resize(count);
    if (count > 0) {
      std::memcpy(out->data(), data_ + pos_, count * sizeof(T));
      pos_ += count * sizeof(T);
    }
    return true;
  }

  bool AtEnd() const { return pos_ == size_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

void AppendFrame(std::vector<uint8_t>* out, FrameType type,
                 uint64_t request_id, const std::vector<uint8_t>& payload) {
  out->reserve(out->size() + kFrameHeaderBytes + payload.size());
  Append<uint32_t>(out, kFrameMagic);
  Append<uint8_t>(out, kProtocolVersion);
  Append<uint8_t>(out, static_cast<uint8_t>(type));
  Append<uint16_t>(out, 0);  // flags
  Append<uint64_t>(out, request_id);
  Append<uint32_t>(out, static_cast<uint32_t>(payload.size()));
  AppendBytes(out, payload.data(), payload.size());
}

constexpr uint8_t kFlagDegraded = 1;
constexpr uint8_t kFlagShed = 2;
constexpr uint8_t kFlagCacheHit = 4;

}  // namespace

void EncodeScoreRequest(const WireRequest& request,
                        std::vector<uint8_t>* out) {
  std::vector<uint8_t> payload;
  AppendString(&payload, request.slot);
  Append<uint8_t>(&payload, request.lane == serve::Lane::kHigh ? 0 : 1);
  Append<int64_t>(&payload, request.deadline_us);
  Append<int32_t>(&payload, request.list.user_id);
  Append<uint32_t>(&payload,
                   static_cast<uint32_t>(request.list.items.size()));
  AppendBytes(&payload, request.list.items.data(),
              request.list.items.size() * sizeof(int));
  Append<uint32_t>(&payload,
                   static_cast<uint32_t>(request.list.scores.size()));
  AppendBytes(&payload, request.list.scores.data(),
              request.list.scores.size() * sizeof(float));
  AppendFrame(out, FrameType::kScoreRequest, request.request_id, payload);
}

void EncodeScoreResponse(const WireResponse& response,
                         std::vector<uint8_t>* out) {
  std::vector<uint8_t> payload;
  uint8_t flags = 0;
  if (response.degraded) flags |= kFlagDegraded;
  if (response.shed) flags |= kFlagShed;
  if (response.cache_hit) flags |= kFlagCacheHit;
  Append<uint8_t>(&payload, flags);
  Append<uint64_t>(&payload, response.model_version);
  AppendString(&payload, response.model_name);
  Append<int64_t>(&payload, response.server_latency_us);
  Append<uint32_t>(&payload, static_cast<uint32_t>(response.items.size()));
  AppendBytes(&payload, response.items.data(),
              response.items.size() * sizeof(int));
  AppendFrame(out, FrameType::kScoreResponse, response.request_id, payload);
}

void EncodeError(uint64_t request_id, std::string_view message,
                 std::vector<uint8_t>* out) {
  std::vector<uint8_t> payload;
  AppendString(&payload, message.substr(0, 255));
  AppendFrame(out, FrameType::kError, request_id, payload);
}

DecodeStatus ExtractFrame(const uint8_t* data, size_t size, size_t* consumed,
                          Frame* out, const CodecLimits& limits) {
  if (size < kFrameHeaderBytes) {
    // Reject a wrong magic as soon as 4 bytes are visible — no point
    // waiting for a full header that can never become valid.
    if (size >= sizeof(uint32_t)) {
      uint32_t magic = 0;
      std::memcpy(&magic, data, sizeof(magic));
      if (magic != kFrameMagic) return DecodeStatus::kError;
    }
    return DecodeStatus::kNeedMore;
  }
  ByteReader reader(data, kFrameHeaderBytes);
  uint32_t magic = 0;
  uint8_t version = 0, type = 0;
  uint16_t flags = 0;
  uint64_t request_id = 0;
  uint32_t payload_len = 0;
  reader.Read(&magic);
  reader.Read(&version);
  reader.Read(&type);
  reader.Read(&flags);
  reader.Read(&request_id);
  reader.Read(&payload_len);
  if (magic != kFrameMagic || version != kProtocolVersion || flags != 0 ||
      payload_len > limits.max_payload_bytes) {
    return DecodeStatus::kError;
  }
  if (size - kFrameHeaderBytes < payload_len) return DecodeStatus::kNeedMore;
  out->header.version = version;
  out->header.type = static_cast<FrameType>(type);
  out->header.request_id = request_id;
  out->header.payload_len = payload_len;
  out->payload.assign(data + kFrameHeaderBytes,
                      data + kFrameHeaderBytes + payload_len);
  *consumed = kFrameHeaderBytes + payload_len;
  return DecodeStatus::kOk;
}

bool ParseScoreRequest(const Frame& frame, WireRequest* out,
                       const CodecLimits& limits) {
  if (frame.header.type != FrameType::kScoreRequest) return false;
  out->request_id = frame.header.request_id;
  ByteReader reader(frame.payload.data(), frame.payload.size());
  uint8_t lane = 0;
  if (!reader.ReadString(&out->slot, limits.max_string_bytes) ||
      !reader.Read(&lane) || lane > 1 || !reader.Read(&out->deadline_us) ||
      !reader.Read(&out->list.user_id) ||
      !reader.ReadArray(&out->list.items, limits.max_items) ||
      !reader.ReadArray(&out->list.scores, limits.max_items)) {
    return false;
  }
  out->lane = lane == 0 ? serve::Lane::kHigh : serve::Lane::kLow;
  out->list.clicks.clear();
  return reader.AtEnd();
}

bool ParseScoreResponse(const Frame& frame, WireResponse* out,
                        const CodecLimits& limits) {
  if (frame.header.type != FrameType::kScoreResponse) return false;
  out->request_id = frame.header.request_id;
  ByteReader reader(frame.payload.data(), frame.payload.size());
  uint8_t flags = 0;
  if (!reader.Read(&flags) || !reader.Read(&out->model_version) ||
      !reader.ReadString(&out->model_name, limits.max_string_bytes) ||
      !reader.Read(&out->server_latency_us) ||
      !reader.ReadArray(&out->items, limits.max_items)) {
    return false;
  }
  out->degraded = (flags & kFlagDegraded) != 0;
  out->shed = (flags & kFlagShed) != 0;
  out->cache_hit = (flags & kFlagCacheHit) != 0;
  return reader.AtEnd();
}

bool ParseError(const Frame& frame, WireError* out,
                const CodecLimits& limits) {
  if (frame.header.type != FrameType::kError) return false;
  out->request_id = frame.header.request_id;
  ByteReader reader(frame.payload.data(), frame.payload.size());
  return reader.ReadString(&out->message, limits.max_string_bytes) &&
         reader.AtEnd();
}

}  // namespace rapid::net
