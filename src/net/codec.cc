#include "net/codec.h"

#include <cstdint>
#include <cstring>

namespace rapid::net {

namespace {

// The wire format is defined little-endian; every supported target of this
// repo (x86-64, aarch64 Linux) is little-endian, so encode/decode are raw
// byte copies. A big-endian port would swap here, in one place.

template <typename T>
void Append(std::vector<uint8_t>* out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  const size_t at = out->size();
  out->resize(at + sizeof(T));
  std::memcpy(out->data() + at, &value, sizeof(T));
}

void AppendBytes(std::vector<uint8_t>* out, const void* data, size_t n) {
  if (n == 0) return;  // Empty vectors may hand over a null data().
  const size_t at = out->size();
  out->resize(at + n);
  std::memcpy(out->data() + at, data, n);
}

void AppendString(std::vector<uint8_t>* out, std::string_view s) {
  // The length prefix is 16-bit: truncate oversized strings to what it can
  // describe rather than emit a desynchronized frame (prefix says 64KiB-n,
  // payload carries more). Decoders additionally cap accepted lengths at
  // CodecLimits::max_string_bytes.
  if (s.size() > UINT16_MAX) s = s.substr(0, UINT16_MAX);
  Append<uint16_t>(out, static_cast<uint16_t>(s.size()));
  AppendBytes(out, s.data(), s.size());
}

/// Bounds-checked sequential reader over one frame payload. Every `Read*`
/// fails (returns false) instead of reading past `size_`; a parser that
/// only ever advances through this class cannot overrun the buffer no
/// matter what the length fields claim.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  template <typename T>
  bool Read(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (size_ - pos_ < sizeof(T)) return false;
    std::memcpy(out, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool ReadString(std::string* out, uint32_t max_bytes) {
    uint16_t len = 0;
    if (!Read(&len) || len > max_bytes || size_ - pos_ < len) return false;
    out->assign(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return true;
  }

  template <typename T>
  bool ReadArray(std::vector<T>* out, uint32_t max_elems) {
    uint32_t count = 0;
    if (!Read(&count) || count > max_elems) return false;
    // Checked before the resize: a hostile count can never size an
    // allocation beyond max_elems or read past the payload.
    if ((size_ - pos_) / sizeof(T) < count) return false;
    out->resize(count);
    if (count > 0) {
      std::memcpy(out->data(), data_ + pos_, count * sizeof(T));
      pos_ += count * sizeof(T);
    }
    return true;
  }

  bool AtEnd() const { return pos_ == size_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

void AppendFrame(std::vector<uint8_t>* out, FrameType type,
                 uint64_t request_id, const std::vector<uint8_t>& payload) {
  out->reserve(out->size() + kFrameHeaderBytes + payload.size());
  Append<uint32_t>(out, kFrameMagic);
  Append<uint8_t>(out, kProtocolVersion);
  Append<uint8_t>(out, static_cast<uint8_t>(type));
  Append<uint16_t>(out, 0);  // flags
  Append<uint64_t>(out, request_id);
  Append<uint32_t>(out, static_cast<uint32_t>(payload.size()));
  AppendBytes(out, payload.data(), payload.size());
}

constexpr uint8_t kFlagDegraded = 1;
constexpr uint8_t kFlagShed = 2;
constexpr uint8_t kFlagCacheHit = 4;

// --- Binary RouterStats payload -------------------------------------------
//
// The structured stats format the shard layer merges: plain field dumps in
// declaration order, each nested block prefixed by nothing (the layout IS
// the schema, strict on both ends — a field added later must extend the
// encoder and decoder together, which one test pins).

void AppendServingStats(std::vector<uint8_t>* out,
                        const serve::ServingStats& s) {
  Append<uint64_t>(out, s.requests);
  Append<uint64_t>(out, s.fallbacks);
  Append<uint64_t>(out, s.shed);
  Append<double>(out, s.p50_us);
  Append<double>(out, s.p95_us);
  Append<double>(out, s.p99_us);
  Append<double>(out, s.mean_us);
  Append<uint64_t>(out, s.max_us);
  Append<int32_t>(out, s.max_queue_depth);
  Append<uint64_t>(out, s.batches);
  Append<uint64_t>(out, s.batched_lists);
  Append<int32_t>(out, s.max_batch_size);
  Append<uint32_t>(out, serve::ServingStats::kBatchHistBins);
  AppendBytes(out, s.batch_size_hist.data(),
              s.batch_size_hist.size() * sizeof(uint64_t));
  // Raw latency buckets travel with the snapshot so fleet merges can
  // recompute exact percentiles (see serve/stats_merge.h).
  Append<uint32_t>(out, serve::ServingStats::kLatencyHistBins);
  AppendBytes(out, s.latency_hist.data(),
              s.latency_hist.size() * sizeof(uint64_t));
}

bool ReadServingStats(ByteReader* reader, serve::ServingStats* s) {
  int32_t max_queue_depth = 0, max_batch_size = 0;
  uint32_t bins = 0;
  if (!reader->Read(&s->requests) || !reader->Read(&s->fallbacks) ||
      !reader->Read(&s->shed) || !reader->Read(&s->p50_us) ||
      !reader->Read(&s->p95_us) || !reader->Read(&s->p99_us) ||
      !reader->Read(&s->mean_us) || !reader->Read(&s->max_us) ||
      !reader->Read(&max_queue_depth) || !reader->Read(&s->batches) ||
      !reader->Read(&s->batched_lists) || !reader->Read(&max_batch_size) ||
      !reader->Read(&bins) ||
      bins != serve::ServingStats::kBatchHistBins) {
    return false;
  }
  s->max_queue_depth = max_queue_depth;
  s->max_batch_size = max_batch_size;
  for (uint64_t& bin : s->batch_size_hist) {
    if (!reader->Read(&bin)) return false;
  }
  uint32_t latency_bins = 0;
  if (!reader->Read(&latency_bins) ||
      latency_bins != serve::ServingStats::kLatencyHistBins) {
    return false;
  }
  for (uint64_t& bin : s->latency_hist) {
    if (!reader->Read(&bin)) return false;
  }
  return true;
}

void AppendCacheStats(std::vector<uint8_t>* out, const serve::CacheStats& s) {
  Append<uint64_t>(out, s.hits);
  Append<uint64_t>(out, s.misses);
  Append<uint64_t>(out, s.inserts);
  Append<uint64_t>(out, s.evictions);
  Append<uint64_t>(out, s.expired);
  Append<uint64_t>(out, s.bypass);
  Append<uint64_t>(out, s.swept);
  Append<uint64_t>(out, s.deferred);
  Append<uint64_t>(out, s.negative_hits);
  Append<uint64_t>(out, s.negative_inserts);
}

bool ReadCacheStats(ByteReader* reader, serve::CacheStats* s) {
  return reader->Read(&s->hits) && reader->Read(&s->misses) &&
         reader->Read(&s->inserts) && reader->Read(&s->evictions) &&
         reader->Read(&s->expired) && reader->Read(&s->bypass) &&
         reader->Read(&s->swept) && reader->Read(&s->deferred) &&
         reader->Read(&s->negative_hits) &&
         reader->Read(&s->negative_inserts);
}

void AppendNetStats(std::vector<uint8_t>* out, const serve::NetStats& s) {
  Append<uint64_t>(out, s.connections_accepted);
  Append<uint64_t>(out, s.connections_active);
  Append<uint64_t>(out, s.connections_rejected);
  Append<uint64_t>(out, s.closed_idle);
  Append<uint64_t>(out, s.closed_slow);
  Append<uint64_t>(out, s.closed_protocol_error);
  Append<uint64_t>(out, s.frames_in);
  Append<uint64_t>(out, s.frames_out);
  Append<uint64_t>(out, s.error_frames_out);
  Append<uint64_t>(out, s.decode_errors);
  Append<uint64_t>(out, s.bytes_in);
  Append<uint64_t>(out, s.bytes_out);
  Append<uint64_t>(out, s.dropped_responses);
  Append<uint64_t>(out, s.stats_frames);
  Append<uint64_t>(out, s.load_frames);
  Append<uint64_t>(out, s.feedback_frames);
  Append<int32_t>(out, s.max_inflight_per_conn);
}

bool ReadNetStats(ByteReader* reader, serve::NetStats* s) {
  int32_t max_inflight = 0;
  if (!reader->Read(&s->connections_accepted) ||
      !reader->Read(&s->connections_active) ||
      !reader->Read(&s->connections_rejected) ||
      !reader->Read(&s->closed_idle) || !reader->Read(&s->closed_slow) ||
      !reader->Read(&s->closed_protocol_error) ||
      !reader->Read(&s->frames_in) || !reader->Read(&s->frames_out) ||
      !reader->Read(&s->error_frames_out) ||
      !reader->Read(&s->decode_errors) || !reader->Read(&s->bytes_in) ||
      !reader->Read(&s->bytes_out) || !reader->Read(&s->dropped_responses) ||
      !reader->Read(&s->stats_frames) || !reader->Read(&s->load_frames) ||
      !reader->Read(&s->feedback_frames) || !reader->Read(&max_inflight)) {
    return false;
  }
  s->max_inflight_per_conn = max_inflight;
  return true;
}

void AppendOnlineStats(std::vector<uint8_t>* out,
                       const serve::OnlineStats& s) {
  Append<uint64_t>(out, s.feedback_appended);
  Append<uint64_t>(out, s.feedback_dropped);
  Append<uint64_t>(out, s.feedback_drained);
  Append<uint64_t>(out, s.train_rounds);
  Append<uint64_t>(out, s.trained_lists);
  Append<uint64_t>(out, s.publishes);
  Append<uint64_t>(out, s.publish_rejected);
  Append<uint64_t>(out, s.publish_skipped);
  Append<uint64_t>(out, s.last_published_version);
}

bool ReadOnlineStats(ByteReader* reader, serve::OnlineStats* s) {
  return reader->Read(&s->feedback_appended) &&
         reader->Read(&s->feedback_dropped) &&
         reader->Read(&s->feedback_drained) &&
         reader->Read(&s->train_rounds) && reader->Read(&s->trained_lists) &&
         reader->Read(&s->publishes) && reader->Read(&s->publish_rejected) &&
         reader->Read(&s->publish_skipped) &&
         reader->Read(&s->last_published_version);
}

void AppendPageStats(std::vector<uint8_t>* out, const serve::PageStats& s) {
  Append<uint64_t>(out, s.pages);
  Append<uint64_t>(out, s.page_lists);
  Append<uint64_t>(out, s.joint_pages);
  Append<uint64_t>(out, s.degraded_pages);
  Append<uint32_t>(out, serve::PageStats::kListsHistBins);
  AppendBytes(out, s.lists_per_page_hist.data(),
              s.lists_per_page_hist.size() * sizeof(uint64_t));
  Append<uint64_t>(out, s.redundancy_millitopics);
  Append<int32_t>(out, s.max_lists_per_page);
}

bool ReadPageStats(ByteReader* reader, serve::PageStats* s) {
  uint32_t bins = 0;
  if (!reader->Read(&s->pages) || !reader->Read(&s->page_lists) ||
      !reader->Read(&s->joint_pages) || !reader->Read(&s->degraded_pages) ||
      !reader->Read(&bins) || bins != serve::PageStats::kListsHistBins) {
    return false;
  }
  for (uint64_t& bin : s->lists_per_page_hist) {
    if (!reader->Read(&bin)) return false;
  }
  int32_t max_lists = 0;
  if (!reader->Read(&s->redundancy_millitopics) || !reader->Read(&max_lists)) {
    return false;
  }
  s->max_lists_per_page = max_lists;
  return true;
}

void AppendRouterStats(std::vector<uint8_t>* out,
                       const serve::RouterStats& s) {
  AppendServingStats(out, s.total);
  AppendCacheStats(out, s.cache);
  Append<uint64_t>(out, s.unknown_slot);
  Append<uint64_t>(out, s.invalid_ids);
  Append<uint64_t>(out, s.canary_rejected);
  Append<uint64_t>(out, s.quota_shed);
  Append<uint8_t>(out, s.has_net ? 1 : 0);
  if (s.has_net) AppendNetStats(out, s.net);
  Append<uint8_t>(out, s.has_online ? 1 : 0);
  if (s.has_online) AppendOnlineStats(out, s.online);
  Append<uint8_t>(out, s.has_page ? 1 : 0);
  if (s.has_page) AppendPageStats(out, s.page);
  Append<uint32_t>(out, static_cast<uint32_t>(s.slots.size()));
  for (const serve::RouterStats::SlotEntry& slot : s.slots) {
    AppendString(out, slot.slot);
    AppendString(out, slot.model_name);
    Append<uint64_t>(out, slot.version);
    AppendServingStats(out, slot.stats);
    AppendCacheStats(out, slot.cache);
  }
}

bool ReadRouterStats(ByteReader* reader, serve::RouterStats* s,
                     const CodecLimits& limits) {
  uint8_t has_net = 0;
  uint32_t num_slots = 0;
  if (!ReadServingStats(reader, &s->total) ||
      !ReadCacheStats(reader, &s->cache) || !reader->Read(&s->unknown_slot) ||
      !reader->Read(&s->invalid_ids) || !reader->Read(&s->canary_rejected) ||
      !reader->Read(&s->quota_shed) || !reader->Read(&has_net) ||
      has_net > 1) {
    return false;
  }
  s->has_net = has_net != 0;
  if (s->has_net && !ReadNetStats(reader, &s->net)) return false;
  uint8_t has_online = 0;
  if (!reader->Read(&has_online) || has_online > 1) return false;
  s->has_online = has_online != 0;
  if (s->has_online && !ReadOnlineStats(reader, &s->online)) return false;
  uint8_t has_page = 0;
  if (!reader->Read(&has_page) || has_page > 1) return false;
  s->has_page = has_page != 0;
  if (s->has_page && !ReadPageStats(reader, &s->page)) return false;
  if (!reader->Read(&num_slots) || num_slots > limits.max_items) return false;
  s->slots.clear();
  s->slots.reserve(num_slots);
  for (uint32_t i = 0; i < num_slots; ++i) {
    serve::RouterStats::SlotEntry entry;
    if (!reader->ReadString(&entry.slot, limits.max_string_bytes) ||
        !reader->ReadString(&entry.model_name, limits.max_string_bytes) ||
        !reader->Read(&entry.version) ||
        !ReadServingStats(reader, &entry.stats) ||
        !ReadCacheStats(reader, &entry.cache)) {
      return false;
    }
    s->slots.push_back(std::move(entry));
  }
  return true;
}

}  // namespace

void EncodeScoreRequest(const WireRequest& request,
                        std::vector<uint8_t>* out) {
  std::vector<uint8_t> payload;
  AppendString(&payload, request.slot);
  Append<uint8_t>(&payload, request.lane == serve::Lane::kHigh ? 0 : 1);
  Append<int64_t>(&payload, request.deadline_us);
  Append<int32_t>(&payload, request.list.user_id);
  Append<uint32_t>(&payload,
                   static_cast<uint32_t>(request.list.items.size()));
  AppendBytes(&payload, request.list.items.data(),
              request.list.items.size() * sizeof(int));
  Append<uint32_t>(&payload,
                   static_cast<uint32_t>(request.list.scores.size()));
  AppendBytes(&payload, request.list.scores.data(),
              request.list.scores.size() * sizeof(float));
  AppendFrame(out, FrameType::kScoreRequest, request.request_id, payload);
}

void EncodeScoreResponse(const WireResponse& response,
                         std::vector<uint8_t>* out) {
  std::vector<uint8_t> payload;
  uint8_t flags = 0;
  if (response.degraded) flags |= kFlagDegraded;
  if (response.shed) flags |= kFlagShed;
  if (response.cache_hit) flags |= kFlagCacheHit;
  Append<uint8_t>(&payload, flags);
  Append<uint64_t>(&payload, response.model_version);
  AppendString(&payload, response.model_name);
  Append<int64_t>(&payload, response.server_latency_us);
  Append<uint32_t>(&payload, static_cast<uint32_t>(response.items.size()));
  AppendBytes(&payload, response.items.data(),
              response.items.size() * sizeof(int));
  AppendFrame(out, FrameType::kScoreResponse, response.request_id, payload);
}

void EncodeError(uint64_t request_id, std::string_view message,
                 std::vector<uint8_t>* out) {
  std::vector<uint8_t> payload;
  AppendString(&payload, message.substr(0, 255));
  AppendFrame(out, FrameType::kError, request_id, payload);
}

void EncodeStatsRequest(const WireStatsRequest& request,
                        std::vector<uint8_t>* out) {
  std::vector<uint8_t> payload;
  Append<uint8_t>(&payload, static_cast<uint8_t>(request.format));
  AppendFrame(out, FrameType::kStatsRequest, request.request_id, payload);
}

void EncodeStatsResponse(const WireStatsResponse& response,
                         std::vector<uint8_t>* out) {
  std::vector<uint8_t> payload;
  Append<uint8_t>(&payload, static_cast<uint8_t>(response.format));
  if (response.format == StatsFormat::kBinary) {
    AppendRouterStats(&payload, response.stats);
  } else {
    // kJson / kPrometheus: raw bytes, not a length-prefixed string — the
    // text body routinely exceeds the string limit, and the frame length
    // already bounds it.
    AppendBytes(&payload, response.text.data(), response.text.size());
  }
  AppendFrame(out, FrameType::kStatsResponse, response.request_id, payload);
}

void EncodeLoadRequest(const WireLoadRequest& request,
                       std::vector<uint8_t>* out) {
  std::vector<uint8_t> payload;
  AppendString(&payload, request.slot);
  AppendString(&payload, request.path);
  AppendFrame(out, FrameType::kLoadSlotRequest, request.request_id, payload);
}

void EncodeLoadResponse(const WireLoadResponse& response,
                        std::vector<uint8_t>* out) {
  std::vector<uint8_t> payload;
  Append<uint64_t>(&payload, response.version);
  AppendString(&payload, std::string_view(response.message).substr(0, 255));
  AppendFrame(out, FrameType::kLoadSlotResponse, response.request_id,
              payload);
}

DecodeStatus ExtractFrame(const uint8_t* data, size_t size, size_t* consumed,
                          Frame* out, const CodecLimits& limits) {
  if (size < kFrameHeaderBytes) {
    // Reject a wrong magic as soon as 4 bytes are visible — no point
    // waiting for a full header that can never become valid.
    if (size >= sizeof(uint32_t)) {
      uint32_t magic = 0;
      std::memcpy(&magic, data, sizeof(magic));
      if (magic != kFrameMagic) return DecodeStatus::kError;
    }
    return DecodeStatus::kNeedMore;
  }
  ByteReader reader(data, kFrameHeaderBytes);
  uint32_t magic = 0;
  uint8_t version = 0, type = 0;
  uint16_t flags = 0;
  uint64_t request_id = 0;
  uint32_t payload_len = 0;
  reader.Read(&magic);
  reader.Read(&version);
  reader.Read(&type);
  reader.Read(&flags);
  reader.Read(&request_id);
  reader.Read(&payload_len);
  if (magic != kFrameMagic || version != kProtocolVersion || flags != 0 ||
      payload_len > limits.max_payload_bytes) {
    return DecodeStatus::kError;
  }
  if (size - kFrameHeaderBytes < payload_len) return DecodeStatus::kNeedMore;
  out->header.version = version;
  out->header.type = static_cast<FrameType>(type);
  out->header.request_id = request_id;
  out->header.payload_len = payload_len;
  out->payload.assign(data + kFrameHeaderBytes,
                      data + kFrameHeaderBytes + payload_len);
  *consumed = kFrameHeaderBytes + payload_len;
  return DecodeStatus::kOk;
}

bool ParseScoreRequest(const Frame& frame, WireRequest* out,
                       const CodecLimits& limits) {
  if (frame.header.type != FrameType::kScoreRequest) return false;
  out->request_id = frame.header.request_id;
  ByteReader reader(frame.payload.data(), frame.payload.size());
  uint8_t lane = 0;
  if (!reader.ReadString(&out->slot, limits.max_string_bytes) ||
      !reader.Read(&lane) || lane > 1 || !reader.Read(&out->deadline_us) ||
      !reader.Read(&out->list.user_id) ||
      !reader.ReadArray(&out->list.items, limits.max_items) ||
      !reader.ReadArray(&out->list.scores, limits.max_items)) {
    return false;
  }
  out->lane = lane == 0 ? serve::Lane::kHigh : serve::Lane::kLow;
  out->list.clicks.clear();
  return reader.AtEnd();
}

bool ParseScoreResponse(const Frame& frame, WireResponse* out,
                        const CodecLimits& limits) {
  if (frame.header.type != FrameType::kScoreResponse) return false;
  out->request_id = frame.header.request_id;
  ByteReader reader(frame.payload.data(), frame.payload.size());
  uint8_t flags = 0;
  if (!reader.Read(&flags) || !reader.Read(&out->model_version) ||
      !reader.ReadString(&out->model_name, limits.max_string_bytes) ||
      !reader.Read(&out->server_latency_us) ||
      !reader.ReadArray(&out->items, limits.max_items)) {
    return false;
  }
  out->degraded = (flags & kFlagDegraded) != 0;
  out->shed = (flags & kFlagShed) != 0;
  out->cache_hit = (flags & kFlagCacheHit) != 0;
  return reader.AtEnd();
}

bool ParseError(const Frame& frame, WireError* out,
                const CodecLimits& limits) {
  if (frame.header.type != FrameType::kError) return false;
  out->request_id = frame.header.request_id;
  ByteReader reader(frame.payload.data(), frame.payload.size());
  return reader.ReadString(&out->message, limits.max_string_bytes) &&
         reader.AtEnd();
}

bool ParseStatsRequest(const Frame& frame, WireStatsRequest* out,
                       const CodecLimits& limits) {
  (void)limits;
  if (frame.header.type != FrameType::kStatsRequest) return false;
  out->request_id = frame.header.request_id;
  ByteReader reader(frame.payload.data(), frame.payload.size());
  uint8_t format = 0;
  if (!reader.Read(&format) || format > 2 || !reader.AtEnd()) return false;
  out->format = static_cast<StatsFormat>(format);
  return true;
}

bool ParseStatsResponse(const Frame& frame, WireStatsResponse* out,
                        const CodecLimits& limits) {
  if (frame.header.type != FrameType::kStatsResponse) return false;
  out->request_id = frame.header.request_id;
  ByteReader reader(frame.payload.data(), frame.payload.size());
  uint8_t format = 0;
  if (!reader.Read(&format) || format > 2) return false;
  out->format = static_cast<StatsFormat>(format);
  if (out->format != StatsFormat::kBinary) {
    // Everything after the format byte is the text body (JSON or
    // Prometheus exposition).
    out->text.assign(
        reinterpret_cast<const char*>(frame.payload.data()) + 1,
        frame.payload.size() - 1);
    out->stats = serve::RouterStats{};
    return true;
  }
  out->text.clear();
  out->stats = serve::RouterStats{};
  return ReadRouterStats(&reader, &out->stats, limits) && reader.AtEnd();
}

void EncodeFeedback(const WireFeedback& feedback, std::vector<uint8_t>* out) {
  std::vector<uint8_t> payload;
  AppendString(&payload, feedback.slot);
  Append<uint64_t>(&payload, feedback.model_version);
  Append<int32_t>(&payload, feedback.user_id);
  Append<uint32_t>(&payload, static_cast<uint32_t>(feedback.items.size()));
  AppendBytes(&payload, feedback.items.data(),
              feedback.items.size() * sizeof(int));
  Append<uint32_t>(&payload, static_cast<uint32_t>(feedback.clicks.size()));
  AppendBytes(&payload, feedback.clicks.data(), feedback.clicks.size());
  AppendFrame(out, FrameType::kFeedback, feedback.request_id, payload);
}

void EncodeFeedbackAck(const WireFeedbackAck& ack,
                       std::vector<uint8_t>* out) {
  std::vector<uint8_t> payload;
  Append<uint8_t>(&payload, ack.accepted ? 1 : 0);
  AppendString(&payload, std::string_view(ack.message).substr(0, 255));
  AppendFrame(out, FrameType::kFeedbackAck, ack.request_id, payload);
}

bool ParseFeedback(const Frame& frame, WireFeedback* out,
                   const CodecLimits& limits) {
  if (frame.header.type != FrameType::kFeedback) return false;
  out->request_id = frame.header.request_id;
  ByteReader reader(frame.payload.data(), frame.payload.size());
  if (!reader.ReadString(&out->slot, limits.max_string_bytes) ||
      !reader.Read(&out->model_version) || !reader.Read(&out->user_id) ||
      !reader.ReadArray(&out->items, limits.max_items) ||
      !reader.ReadArray(&out->clicks, limits.max_items)) {
    return false;
  }
  // One label per served item — a mismatch is an internally inconsistent
  // payload, not something the trainer should guess about.
  if (out->clicks.size() != out->items.size()) return false;
  for (const uint8_t click : out->clicks) {
    if (click > 1) return false;
  }
  return reader.AtEnd();
}

bool ParseFeedbackAck(const Frame& frame, WireFeedbackAck* out,
                      const CodecLimits& limits) {
  if (frame.header.type != FrameType::kFeedbackAck) return false;
  out->request_id = frame.header.request_id;
  ByteReader reader(frame.payload.data(), frame.payload.size());
  uint8_t accepted = 0;
  if (!reader.Read(&accepted) || accepted > 1 ||
      !reader.ReadString(&out->message, limits.max_string_bytes) ||
      !reader.AtEnd()) {
    return false;
  }
  out->accepted = accepted != 0;
  return true;
}

void EncodePageRequest(const WirePageRequest& request,
                       std::vector<uint8_t>* out) {
  std::vector<uint8_t> payload;
  AppendString(&payload, request.slot);
  Append<uint8_t>(&payload, request.lane == serve::Lane::kHigh ? 0 : 1);
  Append<int64_t>(&payload, request.deadline_us);
  Append<int32_t>(&payload, request.user_id);
  Append<float>(&payload, request.diversity_budget);
  Append<uint8_t>(&payload, request.joint ? 1 : 0);
  Append<int32_t>(&payload, request.top_k);
  Append<uint32_t>(&payload, static_cast<uint32_t>(request.lists.size()));
  for (const data::ImpressionList& list : request.lists) {
    Append<uint32_t>(&payload, static_cast<uint32_t>(list.items.size()));
    AppendBytes(&payload, list.items.data(),
                list.items.size() * sizeof(int));
    Append<uint32_t>(&payload, static_cast<uint32_t>(list.scores.size()));
    AppendBytes(&payload, list.scores.data(),
                list.scores.size() * sizeof(float));
  }
  AppendFrame(out, FrameType::kPageRequest, request.request_id, payload);
}

void EncodePageResponse(const WirePageResponse& response,
                        std::vector<uint8_t>* out) {
  std::vector<uint8_t> payload;
  Append<uint8_t>(&payload, response.degraded ? kFlagDegraded : 0);
  Append<uint64_t>(&payload, response.model_version);
  AppendString(&payload, response.model_name);
  Append<int64_t>(&payload, response.server_latency_us);
  Append<float>(&payload, response.page_coverage);
  Append<float>(&payload, response.cross_list_redundancy);
  Append<uint32_t>(&payload, static_cast<uint32_t>(response.lists.size()));
  for (const std::vector<int>& list : response.lists) {
    Append<uint32_t>(&payload, static_cast<uint32_t>(list.size()));
    AppendBytes(&payload, list.data(), list.size() * sizeof(int));
  }
  AppendFrame(out, FrameType::kPageResponse, response.request_id, payload);
}

bool ParsePageRequest(const Frame& frame, WirePageRequest* out,
                      const CodecLimits& limits) {
  if (frame.header.type != FrameType::kPageRequest) return false;
  out->request_id = frame.header.request_id;
  ByteReader reader(frame.payload.data(), frame.payload.size());
  uint8_t lane = 0;
  uint32_t num_lists = 0;
  if (!reader.ReadString(&out->slot, limits.max_string_bytes) ||
      !reader.Read(&lane) || lane > 1 || !reader.Read(&out->deadline_us) ||
      !reader.Read(&out->user_id) || !reader.Read(&out->diversity_budget) ||
      !reader.Read(&out->joint) || out->joint > 1 ||
      !reader.Read(&out->top_k) || out->top_k < 0 ||
      !reader.Read(&num_lists) || num_lists == 0 ||
      num_lists > limits.max_lists_per_page) {
    return false;
  }
  out->lane = lane == 0 ? serve::Lane::kHigh : serve::Lane::kLow;
  out->lists.clear();
  out->lists.reserve(num_lists);
  for (uint32_t l = 0; l < num_lists; ++l) {
    data::ImpressionList list;
    if (!reader.ReadArray(&list.items, limits.max_items) ||
        !reader.ReadArray(&list.scores, limits.max_items)) {
      return false;
    }
    out->lists.push_back(std::move(list));
  }
  return reader.AtEnd();
}

bool ParsePageResponse(const Frame& frame, WirePageResponse* out,
                       const CodecLimits& limits) {
  if (frame.header.type != FrameType::kPageResponse) return false;
  out->request_id = frame.header.request_id;
  ByteReader reader(frame.payload.data(), frame.payload.size());
  uint8_t flags = 0;
  uint32_t num_lists = 0;
  if (!reader.Read(&flags) || flags > kFlagDegraded ||
      !reader.Read(&out->model_version) ||
      !reader.ReadString(&out->model_name, limits.max_string_bytes) ||
      !reader.Read(&out->server_latency_us) ||
      !reader.Read(&out->page_coverage) ||
      !reader.Read(&out->cross_list_redundancy) ||
      !reader.Read(&num_lists) || num_lists > limits.max_lists_per_page) {
    return false;
  }
  out->degraded = (flags & kFlagDegraded) != 0;
  out->lists.clear();
  out->lists.reserve(num_lists);
  for (uint32_t l = 0; l < num_lists; ++l) {
    std::vector<int> items;
    if (!reader.ReadArray(&items, limits.max_items)) return false;
    out->lists.push_back(std::move(items));
  }
  return reader.AtEnd();
}

bool ParseLoadRequest(const Frame& frame, WireLoadRequest* out,
                      const CodecLimits& limits) {
  if (frame.header.type != FrameType::kLoadSlotRequest) return false;
  out->request_id = frame.header.request_id;
  ByteReader reader(frame.payload.data(), frame.payload.size());
  return reader.ReadString(&out->slot, limits.max_string_bytes) &&
         reader.ReadString(&out->path, limits.max_string_bytes) &&
         reader.AtEnd();
}

bool ParseLoadResponse(const Frame& frame, WireLoadResponse* out,
                       const CodecLimits& limits) {
  if (frame.header.type != FrameType::kLoadSlotResponse) return false;
  out->request_id = frame.header.request_id;
  ByteReader reader(frame.payload.data(), frame.payload.size());
  return reader.Read(&out->version) &&
         reader.ReadString(&out->message, limits.max_string_bytes) &&
         reader.AtEnd();
}

}  // namespace rapid::net
