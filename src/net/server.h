#ifndef RAPID_NET_SERVER_H_
#define RAPID_NET_SERVER_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/codec.h"
#include "net/fault.h"
#include "serve/metrics.h"
#include "serve/router.h"

namespace rapid::online {
class FeedbackLog;
}  // namespace rapid::online

namespace rapid::net {

struct ServerConfig {
  /// Bind address. Loopback by default — the bench and tests drive the
  /// server over 127.0.0.1; bind 0.0.0.0 to serve a real ranking tier.
  std::string host = "127.0.0.1";
  /// 0 = ephemeral: the kernel picks a free port, readable via `port()`
  /// after `Start` (how the tests avoid port collisions).
  uint16_t port = 0;
  /// Threads that wait on router futures and serialize responses. They
  /// bound how many requests can be *blocked* on the router concurrently
  /// (the router's own worker pool bounds actual inference parallelism).
  int num_dispatchers = 4;
  /// Accepts beyond this many open connections are refused immediately.
  int max_connections = 256;
  /// Per-connection pipelining cap: once this many parsed requests are
  /// unanswered, the server stops *reading* that connection (TCP
  /// backpressure) instead of buffering unboundedly. Parsed requests are
  /// never rejected.
  int max_inflight_per_conn = 64;
  /// Close a connection with no readable traffic, no in-flight requests,
  /// and nothing to write for this long. 0 disables.
  int64_t idle_timeout_ms = 0;
  /// Slow-client guard: a connection whose write buffer has made no
  /// progress for this long is disconnected. 0 disables.
  int64_t write_stall_timeout_ms = 2000;
  /// Slow-client guard: a connection whose buffered-but-unsent responses
  /// exceed this many bytes is disconnected rather than buffering
  /// unboundedly (a reader that stopped reading would otherwise grow the
  /// server's memory without limit).
  size_t max_write_buffer_bytes = 4u << 20;
  /// How long `Stop` keeps reading-and-discarding after flushing, so a
  /// client mid-write sees a clean FIN instead of an RST that could tear
  /// down responses still in its receive buffer.
  int64_t drain_linger_ms = 200;
  /// Event-loop tick used for timeout bookkeeping, milliseconds.
  int64_t poll_tick_ms = 20;
  /// SO_SNDBUF for accepted sockets; 0 keeps the kernel default. Pinning
  /// it small makes slow-client backpressure deterministic (kernel
  /// autotuning can otherwise absorb megabytes before the server's own
  /// write buffer sees any pressure) — used by the slow-client tests and
  /// `bench_net`'s injection phase.
  int so_sndbuf = 0;
  /// Allow `kLoadSlotRequest` frames to drive `ServingRouter::LoadSlot`
  /// remotely. Off by default: the frame carries a filesystem path the
  /// server will open, so it is trusted-operator surface (the shard
  /// rollout coordinator), not something an internet-facing listener
  /// should honor. When off, the frame is answered with an error frame
  /// and the connection survives.
  bool enable_remote_load = false;
  /// Destination for `kFeedback` frames (impressions + clicks from served
  /// lists). Null = feedback disabled: the frame is answered with an
  /// error frame and the connection survives. When set, appends are O(1)
  /// and bounded (the log drops, never blocks), so the event loop handles
  /// them inline without a dispatcher round-trip; the ack reports whether
  /// the event was accepted or dropped. Must outlive the server.
  online::FeedbackLog* feedback_log = nullptr;
  /// Optional provider of online-loop counters (typically
  /// `OnlineTrainer::Stats`). When set, stats scrapes and `StatsWithNet`
  /// include the `online` block. Called from dispatcher threads and from
  /// `StatsWithNet` callers — must be thread-safe. Must outlive the
  /// server.
  std::function<serve::OnlineStats()> online_stats;
  /// Force the portable poll(2) backend instead of epoll(7) (Linux).
  /// Functionally identical; epoll scales better past a few hundred fds.
  bool use_poll = false;
  /// Decoder bounds applied to every inbound frame.
  CodecLimits limits;
  /// Deterministic fault injection (tests only; see net/fault.h). When
  /// set, socket reads/writes on the event loop consult the plan: reads
  /// may be clamped short, writes split partial, connections dropped, and
  /// completed response frames held for a few ticks — all on a seeded,
  /// replayable schedule. Null (the default) leaves every I/O path
  /// untouched. Borrowed; must outlive the server.
  FaultPlan* fault_plan = nullptr;
};

/// The network serving front-end: a non-blocking accept + connection loop
/// that reads length-prefixed score-request frames, submits them through
/// the wrapped `ServingRouter` (admission, cache, and hot-swap semantics
/// all apply unchanged), and writes response frames back — possibly out
/// of order per connection; the request id correlates them.
///
/// ## Threading
///
/// One event-loop thread owns every connection (sockets, buffers,
/// timers); `num_dispatchers` threads only move work between the loop and
/// the router through two locked queues, so no socket state is ever
/// shared across threads. A self-pipe wakes the loop when a dispatcher
/// completes a response.
///
/// ## Graceful drain
///
/// `Stop()` closes the listener, stops parsing new frames, lets every
/// already-parsed request finish *on the model version the router
/// resolves for it* (mirroring `LoadSlot`'s zero-drop swap guarantee
/// across the wire), flushes every response frame, sends FIN, lingers
/// briefly to avoid an RST racing the client's last read, then closes.
/// Zero in-flight responses are dropped; `NetStats::dropped_responses`
/// stays 0 across a drain.
///
/// The server borrows `router` (must outlive it) and never shuts the
/// router down — the owner decides whether the router keeps serving
/// in-process traffic after the socket front-end stops.
class Server {
 public:
  explicit Server(serve::ServingRouter& router, ServerConfig config = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the loop + dispatcher threads. Returns
  /// false (with the server stopped) if the address cannot be bound.
  bool Start();

  /// The bound port (after a successful `Start`); useful with `port = 0`.
  uint16_t port() const { return port_; }

  /// Graceful drain as described above. Idempotent; called by the
  /// destructor. Safe to call from any thread except the loop itself.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Connection-layer counters (see `serve::NetStats`).
  serve::NetStats stats() const;

  /// Router stats with the `net` section filled in — the one-call ops
  /// readout for a networked deployment.
  serve::RouterStats StatsWithNet() const;

  /// Event-loop backend: epoll on Linux, poll(2) everywhere (and on
  /// Linux when `use_poll` is set). Public only so the implementations
  /// (anonymous namespace in server.cc) can subclass it.
  class Poller;

 private:
  struct Connection;

  struct Work {
    uint64_t conn_id = 0;
    /// What the dispatcher should do: score (the default), answer a stats
    /// scrape, or apply a remote snapshot load. Admin work rides the same
    /// queue and inflight accounting as scores, so a graceful drain
    /// flushes admin answers too.
    FrameType type = FrameType::kScoreRequest;
    WireRequest request;
    uint64_t admin_request_id = 0;
    StatsFormat stats_format = StatsFormat::kBinary;
    std::string load_slot;
    std::string load_path;
    WirePageRequest page;
  };
  struct Completion {
    uint64_t conn_id = 0;
    std::vector<uint8_t> frame;  // Encoded response, ready to write.
  };

  void LoopThread();
  void DispatcherThread();
  /// Page fan-out on a dispatcher thread: submits every list of the page
  /// through the router (they micro-batch together), gathers the routed
  /// orders, runs the cross-list greedy pass when every list came back
  /// clean, and encodes the page response frame into `frame_out`.
  void ServePage(WirePageRequest page, std::vector<uint8_t>* frame_out);

  void AcceptReady();
  /// Reads until EAGAIN, then parses every complete frame in the buffer.
  void ReadReady(Connection* conn);
  /// Flushes as much buffered response data as the socket accepts.
  void WriteReady(Connection* conn);
  void ParseFrames(Connection* conn);
  void HandleFrame(Connection* conn, Frame frame);
  /// Charges the connection's inflight count and hands `work` to the
  /// dispatcher pool.
  void EnqueueWork(Connection* conn, Work work);
  /// Appends bytes to the connection's write queue and tries an
  /// opportunistic immediate flush.
  void QueueWrite(Connection* conn, std::vector<uint8_t> bytes);
  void QueueWriteTagged(Connection* conn, std::vector<uint8_t> bytes,
                        bool is_response);
  void DrainCompletions();
  void CloseConnection(uint64_t conn_id);
  void UpdateInterest(Connection* conn);
  void EnforceTimeouts();
  /// Fault seam: ages injected frame delays by one event-loop tick and
  /// flushes frames whose hold expired. No-op without a fault plan.
  void TickFaultDelays();
  /// True once every parsed request has been answered and flushed.
  bool DrainComplete() const;

  serve::ServingRouter& router_;
  const ServerConfig config_;

  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  uint16_t port_ = 0;

  std::unique_ptr<Poller> poller_;
  /// Owned exclusively by the loop thread.
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> connections_;
  uint64_t next_conn_id_ = 1;

  std::mutex work_mu_;
  std::condition_variable work_cv_;
  std::deque<Work> work_;
  bool work_closed_ = false;

  std::mutex completion_mu_;
  std::deque<Completion> completions_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread loop_;
  std::vector<std::thread> dispatchers_;

  // Counters (relaxed atomics; snapshotted by stats()).
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> active_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> closed_idle_{0};
  std::atomic<uint64_t> closed_slow_{0};
  std::atomic<uint64_t> closed_protocol_{0};
  std::atomic<uint64_t> frames_in_{0};
  std::atomic<uint64_t> frames_out_{0};
  std::atomic<uint64_t> error_frames_out_{0};
  std::atomic<uint64_t> decode_errors_{0};
  std::atomic<uint64_t> bytes_in_{0};
  std::atomic<uint64_t> bytes_out_{0};
  std::atomic<uint64_t> dropped_responses_{0};
  std::atomic<uint64_t> stats_frames_{0};
  std::atomic<uint64_t> load_frames_{0};
  std::atomic<uint64_t> feedback_frames_{0};
  std::atomic<int> max_inflight_{0};

  // Page-serving counters (see serve::PageStats).
  std::atomic<uint64_t> pages_served_{0};
  std::atomic<uint64_t> page_lists_{0};
  std::atomic<uint64_t> joint_pages_{0};
  std::atomic<uint64_t> degraded_pages_{0};
  std::array<std::atomic<uint64_t>, serve::PageStats::kListsHistBins>
      page_hist_{};
  std::atomic<uint64_t> page_redundancy_mt_{0};
  std::atomic<int> page_max_lists_{0};
};

}  // namespace rapid::net

#endif  // RAPID_NET_SERVER_H_
