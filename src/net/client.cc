#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

namespace rapid::net {

Client::~Client() { Close(); }

bool Client::Connect(const std::string& host, uint16_t port) {
  Close();
  host_ = host;
  port_ = port;
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Close();
    return false;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return true;
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  rbuf_.clear();
  stashed_.clear();
}

void Client::FinishSending() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

bool Client::Reconnect() {
  if (host_.empty()) return false;
  return Connect(host_, port_);
}

bool Client::WriteAll(const std::vector<uint8_t>& frame) {
  size_t written = 0;
  while (written < frame.size()) {
    size_t want = frame.size() - written;
    if (fault_plan_ != nullptr) {
      if (fault_plan_->InjectReset()) {
        // Mid-frame reset: the server is left holding a torn prefix.
        AbortConnection();
        return false;
      }
      want = fault_plan_->ClampWrite(want);
    }
    const ssize_t n = ::send(fd_, frame.data() + written, want, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    written += static_cast<size_t>(n);
  }
  return true;
}

void Client::AbortConnection() {
  if (fd_ < 0) return;
  // SO_LINGER with zero timeout turns close() into an RST — the server's
  // read path sees a hard error, not a clean EOF.
  const linger hard{1, 0};
  ::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
  Close();
}

uint64_t Client::Send(WireRequest* request) {
  if (fd_ < 0) return 0;
  if (request->request_id == 0) request->request_id = next_request_id_++;
  std::vector<uint8_t> frame;
  EncodeScoreRequest(*request, &frame);
  return WriteAll(frame) ? request->request_id : 0;
}

bool Client::ReadFrame(Reply* out, int timeout_ms) {
  return ReadFrameStatus(out, timeout_ms) == RecvStatus::kOk;
}

Client::RecvStatus Client::ReadFrameStatus(Reply* out, int timeout_ms) {
  for (;;) {
    // A complete frame may already be buffered from an earlier read.
    Frame frame;
    size_t consumed = 0;
    const DecodeStatus status =
        ExtractFrame(rbuf_.data(), rbuf_.size(), &consumed, &frame, limits_);
    if (status == DecodeStatus::kError) return RecvStatus::kClosed;
    if (status == DecodeStatus::kOk) {
      rbuf_.erase(rbuf_.begin(), rbuf_.begin() + static_cast<ptrdiff_t>(consumed));
      out->type = frame.header.type;
      if (frame.header.type == FrameType::kScoreResponse) {
        out->is_error = false;
        return ParseScoreResponse(frame, &out->response, limits_)
                   ? RecvStatus::kOk
                   : RecvStatus::kClosed;
      }
      if (frame.header.type == FrameType::kStatsResponse) {
        out->is_error = false;
        return ParseStatsResponse(frame, &out->stats, limits_)
                   ? RecvStatus::kOk
                   : RecvStatus::kClosed;
      }
      if (frame.header.type == FrameType::kLoadSlotResponse) {
        out->is_error = false;
        return ParseLoadResponse(frame, &out->load, limits_)
                   ? RecvStatus::kOk
                   : RecvStatus::kClosed;
      }
      if (frame.header.type == FrameType::kFeedbackAck) {
        out->is_error = false;
        return ParseFeedbackAck(frame, &out->feedback_ack, limits_)
                   ? RecvStatus::kOk
                   : RecvStatus::kClosed;
      }
      if (frame.header.type == FrameType::kPageResponse) {
        out->is_error = false;
        return ParsePageResponse(frame, &out->page, limits_)
                   ? RecvStatus::kOk
                   : RecvStatus::kClosed;
      }
      if (frame.header.type == FrameType::kError) {
        WireError error;
        if (!ParseError(frame, &error, limits_)) return RecvStatus::kClosed;
        out->is_error = true;
        out->error_request_id = error.request_id;
        out->error_message = std::move(error.message);
        return RecvStatus::kOk;
      }
      return RecvStatus::kClosed;  // A server never sends request frames.
    }
    if (timeout_ms >= 0) {
      pollfd pfd{fd_, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, timeout_ms);
      if (ready <= 0) return RecvStatus::kTimeout;
    }
    uint8_t scratch[16384];
    size_t want = sizeof(scratch);
    if (fault_plan_ != nullptr) {
      if (fault_plan_->InjectReset()) {
        AbortConnection();
        return RecvStatus::kClosed;
      }
      want = fault_plan_->ClampRead(want);
    }
    const ssize_t n = ::read(fd_, scratch, want);
    if (n == 0) return RecvStatus::kClosed;  // Clean EOF (server drained).
    if (n < 0) {
      if (errno == EINTR) continue;
      return RecvStatus::kClosed;
    }
    rbuf_.insert(rbuf_.end(), scratch, scratch + n);
  }
}

bool Client::Receive(Reply* out, int timeout_ms) {
  return ReceiveStatus(out, timeout_ms) == RecvStatus::kOk;
}

Client::RecvStatus Client::ReceiveStatus(Reply* out, int timeout_ms) {
  if (!stashed_.empty()) {
    *out = std::move(stashed_.front());
    stashed_.pop_front();
    return RecvStatus::kOk;
  }
  if (fd_ < 0) return RecvStatus::kClosed;
  return ReadFrameStatus(out, timeout_ms);
}

bool Client::WaitFor(uint64_t id, Reply* out, int timeout_ms) {
  // Drain replies until this request's arrives; out-of-order replies to
  // earlier pipelined sends are stashed for later Receive calls.
  for (auto it = stashed_.begin(); it != stashed_.end(); ++it) {
    if (it->request_id() == id) {
      *out = std::move(*it);
      stashed_.erase(it);
      return true;
    }
  }
  // One absolute deadline bounds the whole wait: each unrelated pipelined
  // reply that arrives must not restart the clock, or a busy connection
  // could block a synchronous caller far past its timeout.
  const bool bounded = timeout_ms >= 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    int remaining_ms = -1;
    if (bounded) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - std::chrono::steady_clock::now())
                            .count();
      if (left < 0) return false;
      remaining_ms = static_cast<int>(left);
    }
    Reply reply;
    if (!ReadFrame(&reply, remaining_ms)) return false;
    if (reply.request_id() == id) {
      *out = std::move(reply);
      return true;
    }
    stashed_.push_back(std::move(reply));
  }
}

bool Client::Call(WireRequest request, Reply* out, int timeout_ms) {
  const uint64_t id = Send(&request);
  if (id == 0) return false;
  return WaitFor(id, out, timeout_ms);
}

uint64_t Client::SendPage(WirePageRequest* request) {
  if (fd_ < 0) return 0;
  if (request->request_id == 0) request->request_id = next_request_id_++;
  std::vector<uint8_t> frame;
  EncodePageRequest(*request, &frame);
  return WriteAll(frame) ? request->request_id : 0;
}

bool Client::CallPage(WirePageRequest request, Reply* out, int timeout_ms) {
  const uint64_t id = SendPage(&request);
  if (id == 0) return false;
  return WaitFor(id, out, timeout_ms);
}

bool Client::GetStats(serve::RouterStats* out, int timeout_ms) {
  if (fd_ < 0) return false;
  WireStatsRequest request;
  request.request_id = next_request_id_++;
  request.format = StatsFormat::kBinary;
  std::vector<uint8_t> frame;
  EncodeStatsRequest(request, &frame);
  if (!WriteAll(frame)) return false;
  Reply reply;
  if (!WaitFor(request.request_id, &reply, timeout_ms)) return false;
  if (reply.is_error || reply.type != FrameType::kStatsResponse ||
      reply.stats.format != StatsFormat::kBinary) {
    return false;
  }
  *out = std::move(reply.stats.stats);
  return true;
}

bool Client::GetStatsJson(std::string* out, int timeout_ms) {
  if (fd_ < 0) return false;
  WireStatsRequest request;
  request.request_id = next_request_id_++;
  request.format = StatsFormat::kJson;
  std::vector<uint8_t> frame;
  EncodeStatsRequest(request, &frame);
  if (!WriteAll(frame)) return false;
  Reply reply;
  if (!WaitFor(request.request_id, &reply, timeout_ms)) return false;
  if (reply.is_error || reply.type != FrameType::kStatsResponse ||
      reply.stats.format != StatsFormat::kJson) {
    return false;
  }
  *out = std::move(reply.stats.text);
  return true;
}

bool Client::GetStatsPrometheus(std::string* out, int timeout_ms) {
  if (fd_ < 0) return false;
  WireStatsRequest request;
  request.request_id = next_request_id_++;
  request.format = StatsFormat::kPrometheus;
  std::vector<uint8_t> frame;
  EncodeStatsRequest(request, &frame);
  if (!WriteAll(frame)) return false;
  Reply reply;
  if (!WaitFor(request.request_id, &reply, timeout_ms)) return false;
  if (reply.is_error || reply.type != FrameType::kStatsResponse ||
      reply.stats.format != StatsFormat::kPrometheus) {
    return false;
  }
  *out = std::move(reply.stats.text);
  return true;
}

bool Client::SendFeedback(const std::string& slot, uint64_t model_version,
                          int user_id, const std::vector<int>& items,
                          const std::vector<uint8_t>& clicks, bool* accepted,
                          int timeout_ms) {
  if (accepted != nullptr) *accepted = false;
  if (fd_ < 0) return false;
  WireFeedback feedback;
  feedback.request_id = next_request_id_++;
  feedback.slot = slot;
  feedback.model_version = model_version;
  feedback.user_id = user_id;
  feedback.items = items;
  feedback.clicks = clicks;
  std::vector<uint8_t> frame;
  EncodeFeedback(feedback, &frame);
  if (!WriteAll(frame)) return false;
  Reply reply;
  if (!WaitFor(feedback.request_id, &reply, timeout_ms)) return false;
  if (reply.is_error) {
    // Answered but refused (feedback disabled, or a peer that predates the
    // frame type) — an application-level "no", not a transport failure.
    return true;
  }
  if (reply.type != FrameType::kFeedbackAck) return false;
  if (accepted != nullptr) *accepted = reply.feedback_ack.accepted;
  return true;
}

bool Client::RemoteLoadSlot(const std::string& slot, const std::string& path,
                            uint64_t* version, std::string* message,
                            int timeout_ms) {
  *version = 0;
  if (fd_ < 0) return false;
  WireLoadRequest request;
  request.request_id = next_request_id_++;
  request.slot = slot;
  request.path = path;
  std::vector<uint8_t> frame;
  EncodeLoadRequest(request, &frame);
  if (!WriteAll(frame)) return false;
  Reply reply;
  if (!WaitFor(request.request_id, &reply, timeout_ms)) return false;
  if (reply.is_error) {
    // The server answered but refused (remote load disabled, or a peer
    // that predates the frame type) — an application-level "no", not a
    // transport failure.
    if (message != nullptr) *message = std::move(reply.error_message);
    return true;
  }
  if (reply.type != FrameType::kLoadSlotResponse) return false;
  *version = reply.load.version;
  if (message != nullptr) *message = std::move(reply.load.message);
  return true;
}

}  // namespace rapid::net
