#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace rapid::net {

Client::~Client() { Close(); }

bool Client::Connect(const std::string& host, uint16_t port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Close();
    return false;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return true;
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  rbuf_.clear();
  stashed_.clear();
}

void Client::FinishSending() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

uint64_t Client::Send(WireRequest* request) {
  if (fd_ < 0) return 0;
  if (request->request_id == 0) request->request_id = next_request_id_++;
  std::vector<uint8_t> frame;
  EncodeScoreRequest(*request, &frame);
  size_t written = 0;
  while (written < frame.size()) {
    const ssize_t n = ::send(fd_, frame.data() + written,
                             frame.size() - written, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return 0;
    }
    written += static_cast<size_t>(n);
  }
  return request->request_id;
}

bool Client::ReadFrame(Reply* out, int timeout_ms) {
  for (;;) {
    // A complete frame may already be buffered from an earlier read.
    Frame frame;
    size_t consumed = 0;
    const DecodeStatus status =
        ExtractFrame(rbuf_.data(), rbuf_.size(), &consumed, &frame, limits_);
    if (status == DecodeStatus::kError) return false;
    if (status == DecodeStatus::kOk) {
      rbuf_.erase(rbuf_.begin(), rbuf_.begin() + static_cast<ptrdiff_t>(consumed));
      if (frame.header.type == FrameType::kScoreResponse) {
        out->is_error = false;
        return ParseScoreResponse(frame, &out->response, limits_);
      }
      if (frame.header.type == FrameType::kError) {
        WireError error;
        if (!ParseError(frame, &error, limits_)) return false;
        out->is_error = true;
        out->error_request_id = error.request_id;
        out->error_message = std::move(error.message);
        return true;
      }
      return false;  // A server never sends request frames.
    }
    if (timeout_ms >= 0) {
      pollfd pfd{fd_, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, timeout_ms);
      if (ready <= 0) return false;  // Timeout or poll error.
    }
    uint8_t scratch[16384];
    const ssize_t n = ::read(fd_, scratch, sizeof(scratch));
    if (n == 0) return false;  // Clean EOF (server drained and closed).
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    rbuf_.insert(rbuf_.end(), scratch, scratch + n);
  }
}

bool Client::Receive(Reply* out, int timeout_ms) {
  if (!stashed_.empty()) {
    *out = std::move(stashed_.front());
    stashed_.pop_front();
    return true;
  }
  if (fd_ < 0) return false;
  return ReadFrame(out, timeout_ms);
}

bool Client::Call(WireRequest request, Reply* out, int timeout_ms) {
  const uint64_t id = Send(&request);
  if (id == 0) return false;
  // Drain replies until this request's arrives; out-of-order replies to
  // earlier pipelined sends are stashed for later Receive calls.
  for (auto it = stashed_.begin(); it != stashed_.end(); ++it) {
    if (it->request_id() == id) {
      *out = std::move(*it);
      stashed_.erase(it);
      return true;
    }
  }
  for (;;) {
    Reply reply;
    if (!ReadFrame(&reply, timeout_ms)) return false;
    if (reply.request_id() == id) {
      *out = std::move(reply);
      return true;
    }
    stashed_.push_back(std::move(reply));
  }
}

}  // namespace rapid::net
