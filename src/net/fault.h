#ifndef RAPID_NET_FAULT_H_
#define RAPID_NET_FAULT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace rapid::net {

/// Deterministic fault-injection rates. All rates are probabilities in
/// [0, 1] evaluated independently at each injection point; 0 disables
/// that fault class. The *schedule* is a pure function of `seed` and the
/// injection-point visit order, never of wall-clock or kernel state —
/// which is what makes a faulty run replayable (see `FaultPlan`).
struct FaultConfig {
  uint64_t seed = 1;
  /// Probability a socket write is split short (a "partial write"): only
  /// a prefix of the requested bytes is handed to the kernel, the rest
  /// follows at the next writable opportunity. Exercises every resume
  /// path that a full-buffer `send` would.
  double partial_write_rate = 0.0;
  /// Probability a socket read is clamped to a small byte count (a
  /// "short read"): frames arrive sliced at arbitrary offsets, so every
  /// `kNeedMore` resume path in the decoder runs for real.
  double short_read_rate = 0.0;
  /// Probability the connection is torn down at an injection point. The
  /// client seam aborts with an RST (SO_LINGER 0); the server seam drops
  /// the connection as if the peer vanished.
  double reset_rate = 0.0;
  /// Probability a completed response frame is held back for
  /// 1..max_delay_ticks event-loop ticks before entering the socket —
  /// reorders wall-clock arrival against completion order and stretches
  /// pipelining windows (server seam only).
  double delay_rate = 0.0;
  int max_delay_ticks = 3;
  /// Floor for clamped reads/writes, bytes. >= 1.
  size_t min_io_bytes = 1;
};

/// One recorded fault decision: the op index at which it fired, what it
/// was, and its magnitude (bytes allowed for clamps, ticks for delays,
/// 1 for resets).
struct FaultDecision {
  uint64_t op = 0;
  enum class Kind : uint8_t { kPartialWrite, kShortRead, kReset, kDelay };
  Kind kind = Kind::kPartialWrite;
  uint64_t arg = 0;
};

/// A seeded, deterministic fault schedule shared by the net seams.
///
/// Every injection point (`ClampWrite`, `ClampRead`, `InjectReset`,
/// `NextFrameDelayTicks`) consumes one op index from an atomic counter;
/// the decision for op `i` is a pure function of `(config.seed, i)`. Two
/// runs that visit the injection points in the same order therefore
/// inject *exactly* the same faults — and both seams guarantee that
/// order: the server's points are all visited by its single event-loop
/// thread, the client's by its single calling thread. The plan records
/// every fired fault in a trace whose FNV-1a `TraceDigest` gives a
/// compact replay-bit-identity check: same seed, same digest.
///
/// Test-only surface — a null plan pointer (the default everywhere)
/// compiles to the untouched I/O paths.
///
/// Thread safety: all methods are safe to call concurrently (atomic op
/// counter, mutex-guarded trace), though replay determinism additionally
/// requires a deterministic visit order as above.
class FaultPlan {
 public:
  explicit FaultPlan(FaultConfig config = {});

  /// Bytes the caller may hand to `send` out of `want` (>= 1). Returns
  /// `want` untouched unless a partial-write fault fires.
  size_t ClampWrite(size_t want);

  /// Bytes the caller may ask `read` for out of `want` (>= 1).
  size_t ClampRead(size_t want);

  /// True when the connection should be torn down right now.
  bool InjectReset();

  /// Event-loop ticks to hold the next completed frame back; 0 = none.
  int NextFrameDelayTicks();

  /// Injection points visited so far (fired or not).
  uint64_t ops() const { return next_op_.load(std::memory_order_relaxed); }

  /// Faults actually fired so far.
  uint64_t faults() const { return faults_.load(std::memory_order_relaxed); }

  /// Every fired fault, in firing order.
  std::vector<FaultDecision> Trace() const;

  /// FNV-1a over the trace — equal digests mean the two runs fired
  /// byte-identical fault schedules.
  uint64_t TraceDigest() const;

  /// Human-readable trace summary for failure messages ("op 17
  /// short_read->3B, op 41 reset, ...", truncated).
  std::string TraceSummary(size_t max_entries = 16) const;

  /// Rewinds the schedule to op 0 and clears the trace: the same plan
  /// object replays its schedule from the start.
  void Restart();

  const FaultConfig& config() const { return config_; }

 private:
  /// Pure decision bits for `(seed, op, salt)`.
  uint64_t Draw(uint64_t op, uint64_t salt) const;
  /// Uniform double in [0, 1) from `Draw`.
  double DrawUnit(uint64_t op, uint64_t salt) const;
  void Record(uint64_t op, FaultDecision::Kind kind, uint64_t arg);

  const FaultConfig config_;
  std::atomic<uint64_t> next_op_{0};
  std::atomic<uint64_t> faults_{0};
  mutable std::mutex trace_mu_;
  std::vector<FaultDecision> trace_;
};

}  // namespace rapid::net

#endif  // RAPID_NET_FAULT_H_
