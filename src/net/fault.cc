#include "net/fault.h"

#include <algorithm>
#include <sstream>

namespace rapid::net {

namespace {

/// splitmix64 finalizer — the same mixing the shard ring uses; cheap and
/// statistically fine for schedule decisions.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

FaultConfig Sanitized(FaultConfig cfg) {
  const auto clamp01 = [](double rate) {
    return std::clamp(rate, 0.0, 1.0);
  };
  cfg.partial_write_rate = clamp01(cfg.partial_write_rate);
  cfg.short_read_rate = clamp01(cfg.short_read_rate);
  cfg.reset_rate = clamp01(cfg.reset_rate);
  cfg.delay_rate = clamp01(cfg.delay_rate);
  cfg.max_delay_ticks = std::max(cfg.max_delay_ticks, 1);
  cfg.min_io_bytes = std::max<size_t>(cfg.min_io_bytes, 1);
  return cfg;
}

const char* KindName(FaultDecision::Kind kind) {
  switch (kind) {
    case FaultDecision::Kind::kPartialWrite:
      return "partial_write";
    case FaultDecision::Kind::kShortRead:
      return "short_read";
    case FaultDecision::Kind::kReset:
      return "reset";
    case FaultDecision::Kind::kDelay:
      return "delay";
  }
  return "?";
}

}  // namespace

FaultPlan::FaultPlan(FaultConfig config) : config_(Sanitized(config)) {}

uint64_t FaultPlan::Draw(uint64_t op, uint64_t salt) const {
  return Mix(config_.seed ^ Mix(op ^ Mix(salt)));
}

double FaultPlan::DrawUnit(uint64_t op, uint64_t salt) const {
  // 53 mantissa bits -> uniform in [0, 1).
  return static_cast<double>(Draw(op, salt) >> 11) * 0x1.0p-53;
}

void FaultPlan::Record(uint64_t op, FaultDecision::Kind kind, uint64_t arg) {
  faults_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(trace_mu_);
  trace_.push_back({op, kind, arg});
}

size_t FaultPlan::ClampWrite(size_t want) {
  const uint64_t op = next_op_.fetch_add(1, std::memory_order_relaxed);
  if (want <= config_.min_io_bytes) return want;
  if (DrawUnit(op, 1) >= config_.partial_write_rate) return want;
  const size_t span = want - config_.min_io_bytes;
  const size_t allowed = config_.min_io_bytes + Draw(op, 2) % span;
  Record(op, FaultDecision::Kind::kPartialWrite, allowed);
  return allowed;
}

size_t FaultPlan::ClampRead(size_t want) {
  const uint64_t op = next_op_.fetch_add(1, std::memory_order_relaxed);
  if (want <= config_.min_io_bytes) return want;
  if (DrawUnit(op, 3) >= config_.short_read_rate) return want;
  // Short reads bias tiny: sliced headers are where resume bugs live.
  const size_t cap = std::min<size_t>(want, 16);
  const size_t allowed =
      config_.min_io_bytes + Draw(op, 4) % std::max<size_t>(cap, 1);
  const size_t clamped = std::min(allowed, want);
  Record(op, FaultDecision::Kind::kShortRead, clamped);
  return clamped;
}

bool FaultPlan::InjectReset() {
  const uint64_t op = next_op_.fetch_add(1, std::memory_order_relaxed);
  if (DrawUnit(op, 5) >= config_.reset_rate) return false;
  Record(op, FaultDecision::Kind::kReset, 1);
  return true;
}

int FaultPlan::NextFrameDelayTicks() {
  const uint64_t op = next_op_.fetch_add(1, std::memory_order_relaxed);
  if (DrawUnit(op, 6) >= config_.delay_rate) return 0;
  const int ticks =
      1 + static_cast<int>(Draw(op, 7) %
                           static_cast<uint64_t>(config_.max_delay_ticks));
  Record(op, FaultDecision::Kind::kDelay, static_cast<uint64_t>(ticks));
  return ticks;
}

std::vector<FaultDecision> FaultPlan::Trace() const {
  std::lock_guard<std::mutex> lock(trace_mu_);
  return trace_;
}

uint64_t FaultPlan::TraceDigest() const {
  std::lock_guard<std::mutex> lock(trace_mu_);
  uint64_t hash = 1469598103934665603ull;  // FNV-1a offset basis.
  const auto fold = [&hash](uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (v >> (byte * 8)) & 0xff;
      hash *= 1099511628211ull;
    }
  };
  for (const FaultDecision& d : trace_) {
    fold(d.op);
    fold(static_cast<uint64_t>(d.kind));
    fold(d.arg);
  }
  return hash;
}

std::string FaultPlan::TraceSummary(size_t max_entries) const {
  std::lock_guard<std::mutex> lock(trace_mu_);
  std::ostringstream os;
  os << trace_.size() << " faults";
  const size_t shown = std::min(trace_.size(), max_entries);
  for (size_t i = 0; i < shown; ++i) {
    os << (i == 0 ? ": " : ", ") << "op " << trace_[i].op << ' '
       << KindName(trace_[i].kind) << '(' << trace_[i].arg << ')';
  }
  if (shown < trace_.size()) os << ", ...";
  return os.str();
}

void FaultPlan::Restart() {
  std::lock_guard<std::mutex> lock(trace_mu_);
  trace_.clear();
  next_op_.store(0, std::memory_order_relaxed);
  faults_.store(0, std::memory_order_relaxed);
}

}  // namespace rapid::net
