#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <future>
#include <utility>

#include "online/feedback.h"
#include "page/page.h"
#include "serve/prometheus.h"

#if defined(__linux__)
#include <sys/epoll.h>
#endif

namespace rapid::net {

namespace {

using Clock = std::chrono::steady_clock;

constexpr uint32_t kWatchRead = 1;
constexpr uint32_t kWatchWrite = 2;

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

ServerConfig Sanitized(ServerConfig cfg) {
  cfg.num_dispatchers = std::max(cfg.num_dispatchers, 1);
  cfg.max_connections = std::max(cfg.max_connections, 1);
  cfg.max_inflight_per_conn = std::max(cfg.max_inflight_per_conn, 1);
  cfg.idle_timeout_ms = std::max<int64_t>(cfg.idle_timeout_ms, 0);
  cfg.write_stall_timeout_ms = std::max<int64_t>(cfg.write_stall_timeout_ms, 0);
  cfg.max_write_buffer_bytes = std::max<size_t>(cfg.max_write_buffer_bytes, 1);
  cfg.drain_linger_ms = std::max<int64_t>(cfg.drain_linger_ms, 0);
  cfg.poll_tick_ms = std::clamp<int64_t>(cfg.poll_tick_ms, 1, 1000);
  return cfg;
}

}  // namespace

/// One accepted connection. Owned and touched exclusively by the event
/// loop thread; dispatchers only ever see the connection *id*.
struct Server::Connection {
  int fd = -1;
  uint64_t id = 0;
  /// Raw inbound bytes; complete frames are parsed off the front.
  std::vector<uint8_t> rbuf;
  /// Encoded outbound frames, front partially written up to `woff`.
  struct OutFrame {
    std::vector<uint8_t> bytes;
    bool is_response = false;
    /// Fault seam: event-loop ticks this frame is still held back before
    /// any of it enters the socket. 0 outside fault-injected runs.
    int delay_ticks = 0;
  };
  std::deque<OutFrame> wbufs;
  size_t woff = 0;
  size_t wbuf_bytes = 0;
  /// Parsed score requests not yet answered on the wire.
  int inflight = 0;
  uint32_t watch_mask = 0;
  /// Peer half-closed (EOF on read): answer what was parsed, flush, then
  /// close — a client may pipeline a batch and immediately SHUT_WR.
  bool peer_eof = false;
  Clock::time_point last_read;
  Clock::time_point last_write_progress;
};

class Server::Poller {
 public:
  virtual ~Poller() = default;
  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    bool error = false;
  };
  /// Registers, re-arms, or (mask 0) removes `fd`. Level-triggered.
  virtual void Watch(int fd, uint32_t mask) = 0;
  virtual void Wait(int timeout_ms, std::vector<Event>* out) = 0;
};

namespace {

/// Portable fallback: rebuilds the pollfd array per wait. O(fds) per call,
/// which is irrelevant below a few hundred connections.
class PollPoller : public Server::Poller {
 public:
  void Watch(int fd, uint32_t mask) override {
    if (mask == 0) {
      masks_.erase(fd);
    } else {
      masks_[fd] = mask;
    }
  }

  void Wait(int timeout_ms, std::vector<Event>* out) override {
    fds_.clear();
    for (const auto& [fd, mask] : masks_) {
      short events = 0;
      if (mask & kWatchRead) events |= POLLIN;
      if (mask & kWatchWrite) events |= POLLOUT;
      fds_.push_back({fd, events, 0});
    }
    out->clear();
    const int n = ::poll(fds_.data(), fds_.size(), timeout_ms);
    if (n <= 0) return;
    for (const pollfd& p : fds_) {
      if (p.revents == 0) continue;
      out->push_back({p.fd, (p.revents & POLLIN) != 0,
                      (p.revents & POLLOUT) != 0,
                      (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0});
    }
  }

 private:
  std::unordered_map<int, uint32_t> masks_;
  std::vector<pollfd> fds_;
};

#if defined(__linux__)
class EpollPoller : public Server::Poller {
 public:
  EpollPoller() : epfd_(::epoll_create1(0)) {}
  ~EpollPoller() override {
    if (epfd_ >= 0) ::close(epfd_);
  }

  void Watch(int fd, uint32_t mask) override {
    epoll_event ev{};
    ev.data.fd = fd;
    if (mask & kWatchRead) ev.events |= EPOLLIN;
    if (mask & kWatchWrite) ev.events |= EPOLLOUT;
    const auto it = registered_.find(fd);
    if (mask == 0) {
      if (it != registered_.end()) {
        ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
        registered_.erase(it);
      }
      return;
    }
    if (it == registered_.end()) {
      ::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev);
      registered_[fd] = mask;
    } else if (it->second != mask) {
      ::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev);
      it->second = mask;
    }
  }

  void Wait(int timeout_ms, std::vector<Event>* out) override {
    events_.resize(std::max<size_t>(registered_.size() + 1, 16));
    out->clear();
    const int n = ::epoll_wait(epfd_, events_.data(),
                               static_cast<int>(events_.size()), timeout_ms);
    for (int i = 0; i < n; ++i) {
      const epoll_event& ev = events_[i];
      out->push_back({ev.data.fd, (ev.events & EPOLLIN) != 0,
                      (ev.events & EPOLLOUT) != 0,
                      (ev.events & (EPOLLERR | EPOLLHUP)) != 0});
    }
  }

 private:
  int epfd_ = -1;
  std::unordered_map<int, uint32_t> registered_;
  std::vector<epoll_event> events_;
};
#endif  // __linux__

std::unique_ptr<Server::Poller> MakePoller(bool use_poll) {
#if defined(__linux__)
  if (!use_poll) return std::make_unique<EpollPoller>();
#else
  (void)use_poll;
#endif
  return std::make_unique<PollPoller>();
}

}  // namespace

Server::Server(serve::ServingRouter& router, ServerConfig config)
    : router_(router), config_(Sanitized(std::move(config))) {}

Server::~Server() { Stop(); }

bool Server::Start() {
  if (running_.load(std::memory_order_acquire)) return true;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return false;
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1 ||
      ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 128) != 0 || !SetNonBlocking(listen_fd_)) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  SetNonBlocking(wake_read_fd_);
  SetNonBlocking(wake_write_fd_);

  poller_ = MakePoller(config_.use_poll);
  poller_->Watch(listen_fd_, kWatchRead);
  poller_->Watch(wake_read_fd_, kWatchRead);

  stopping_.store(false, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    work_closed_ = false;
  }
  running_.store(true, std::memory_order_release);
  loop_ = std::thread([this] { LoopThread(); });
  dispatchers_.reserve(config_.num_dispatchers);
  for (int i = 0; i < config_.num_dispatchers; ++i) {
    dispatchers_.emplace_back([this] { DispatcherThread(); });
  }
  return true;
}

void Server::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  // Wake the loop so it notices the flag without waiting out a tick.
  const char byte = 0;
  if (wake_write_fd_ >= 0) {
    [[maybe_unused]] const ssize_t n = ::write(wake_write_fd_, &byte, 1);
  }
  if (loop_.joinable()) loop_.join();
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    work_closed_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : dispatchers_) {
    if (t.joinable()) t.join();
  }
  dispatchers_.clear();
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
  wake_read_fd_ = wake_write_fd_ = -1;
  poller_.reset();
}

void Server::DispatcherThread() {
  for (;;) {
    Work work;
    {
      std::unique_lock<std::mutex> lock(work_mu_);
      work_cv_.wait(lock, [this] { return work_closed_ || !work_.empty(); });
      if (work_.empty()) {
        if (work_closed_) return;
        continue;
      }
      work = std::move(work_.front());
      work_.pop_front();
    }
    Completion completion;
    completion.conn_id = work.conn_id;
    if (work.type == FrameType::kStatsRequest) {
      WireStatsResponse response;
      response.request_id = work.admin_request_id;
      response.format = work.stats_format;
      if (work.stats_format == StatsFormat::kJson) {
        response.text = StatsWithNet().ToJson();
      } else if (work.stats_format == StatsFormat::kPrometheus) {
        response.text = serve::RenderPrometheus(StatsWithNet());
      } else {
        response.stats = StatsWithNet();
      }
      EncodeStatsResponse(response, &completion.frame);
    } else if (work.type == FrameType::kLoadSlotRequest) {
      // The expensive part (snapshot rebuild + canary probe) runs here on
      // the dispatcher, never on the event loop; scoring traffic keeps
      // flowing on the old version until the publish inside LoadSlot.
      WireLoadResponse response;
      response.request_id = work.admin_request_id;
      response.version = router_.LoadSlot(work.load_slot, work.load_path);
      if (response.version == 0) {
        response.message = "snapshot load failed or canary rejected";
      }
      EncodeLoadResponse(response, &completion.frame);
    } else if (work.type == FrameType::kPageRequest) {
      ServePage(std::move(work.page), &completion.frame);
    } else {
      serve::RouterRequest request;
      request.slot = std::move(work.request.slot);
      request.lane = work.request.lane;
      request.list = std::move(work.request.list);
      // The future resolves from the router's worker pool (or inline on a
      // cache hit / shed); blocking here is the dispatcher's whole job.
      serve::RouterResponse routed = router_.Submit(std::move(request)).get();

      WireResponse response;
      response.request_id = work.request.request_id;
      response.degraded = routed.degraded;
      response.shed = routed.shed;
      response.cache_hit = routed.cache_hit;
      response.model_name = std::move(routed.model_name);
      response.model_version = routed.model_version;
      response.server_latency_us = routed.latency_us;
      response.items = std::move(routed.items);
      EncodeScoreResponse(response, &completion.frame);
    }
    {
      std::lock_guard<std::mutex> lock(completion_mu_);
      completions_.push_back(std::move(completion));
    }
    const char byte = 0;
    // A full pipe already guarantees a pending wakeup; EAGAIN is fine.
    [[maybe_unused]] const ssize_t n = ::write(wake_write_fd_, &byte, 1);
  }
}

void Server::ServePage(WirePageRequest page, std::vector<uint8_t>* frame_out) {
  const size_t num_lists = page.lists.size();
  // Submit every list before gathering: the router's micro-batcher sees the
  // whole page at once, so the lists score in one (or few) model batches —
  // the throughput edge `bench_page` measures against per-list frames.
  std::vector<std::future<serve::RouterResponse>> futures;
  futures.reserve(num_lists);
  for (data::ImpressionList& list : page.lists) {
    list.user_id = page.user_id;
    serve::RouterRequest request;
    request.slot = page.slot;
    request.lane = page.lane;
    request.list = std::move(list);
    futures.push_back(router_.Submit(std::move(request)));
  }

  WirePageResponse response;
  response.request_id = page.request_id;
  const data::Dataset& data = router_.dataset();
  const int num_items = static_cast<int>(data.items.size());
  bool degraded = false;
  int64_t latency_us = 0;
  std::vector<std::vector<int>> routed(num_lists);
  for (size_t l = 0; l < num_lists; ++l) {
    serve::RouterResponse reply = futures[l].get();
    if (l == 0) {
      response.model_name = std::move(reply.model_name);
      response.model_version = reply.model_version;
    }
    degraded = degraded || reply.degraded || reply.shed;
    latency_us = std::max(latency_us, reply.latency_us);
    for (const int item : reply.items) {
      // Degraded fallbacks echo the input order, which may carry ids
      // outside the catalog; the coverage pass must never index them.
      if (item < 0 || item >= num_items) degraded = true;
    }
    routed[l] = std::move(reply.items);
  }

  response.server_latency_us = latency_us;
  response.degraded = degraded;
  float redundancy = 0.0f;
  if (degraded) {
    // Best effort: the router orders are already relevance-ranked; skip
    // the cross-list pass rather than risk reading out-of-catalog items.
    response.lists = std::move(routed);
  } else {
    page::PageRerankConfig cfg;
    cfg.joint = page.joint != 0;
    cfg.top_k = page.top_k;
    page::PageReranker reranker(data, cfg);
    std::vector<std::vector<float>> relevance;
    relevance.reserve(num_lists);
    for (const std::vector<int>& list : routed) {
      relevance.push_back(page::PageReranker::RankRelevance(list.size()));
    }
    page::PageResult result =
        reranker.Rerank(routed, relevance, page.diversity_budget);
    response.page_coverage = result.page_coverage;
    response.cross_list_redundancy = result.cross_list_redundancy;
    redundancy = result.cross_list_redundancy;
    response.lists = std::move(result.lists);
    if (cfg.joint) joint_pages_.fetch_add(1, std::memory_order_relaxed);
  }

  pages_served_.fetch_add(1, std::memory_order_relaxed);
  page_lists_.fetch_add(num_lists, std::memory_order_relaxed);
  if (degraded) degraded_pages_.fetch_add(1, std::memory_order_relaxed);
  const int bin = std::min<int>(static_cast<int>(num_lists),
                                serve::PageStats::kListsHistBins) -
                  1;
  if (bin >= 0) page_hist_[bin].fetch_add(1, std::memory_order_relaxed);
  page_redundancy_mt_.fetch_add(
      static_cast<uint64_t>(std::max(redundancy, 0.0f) * 1000.0f),
      std::memory_order_relaxed);
  int prev = page_max_lists_.load(std::memory_order_relaxed);
  while (prev < static_cast<int>(num_lists) &&
         !page_max_lists_.compare_exchange_weak(
             prev, static_cast<int>(num_lists), std::memory_order_relaxed)) {
  }

  EncodePageResponse(response, frame_out);
}

void Server::LoopThread() {
  std::vector<Poller::Event> events;
  bool draining = false;
  size_t total_inflight = 0;  // Recomputed below; loop-thread-only.

  const auto recount_inflight = [&] {
    total_inflight = 0;
    for (const auto& [id, conn] : connections_) {
      total_inflight += static_cast<size_t>(conn->inflight);
    }
  };

  for (;;) {
    DrainCompletions();

    if (stopping_.load(std::memory_order_acquire) && !draining) {
      draining = true;
      if (listen_fd_ >= 0) {
        poller_->Watch(listen_fd_, 0);
        ::close(listen_fd_);
        listen_fd_ = -1;
      }
      // From here on no new bytes are read and no buffered bytes are
      // parsed: "in-flight" is frozen to the already-parsed requests.
    }

    if (draining) {
      recount_inflight();
      bool flushed = total_inflight == 0;
      for (const auto& [id, conn] : connections_) {
        flushed = flushed && conn->wbufs.empty();
      }
      if (flushed) break;  // Fall through to the FIN + linger phase.
    }

    std::vector<uint64_t> finished_eof;
    for (const auto& [id, conn] : connections_) {
      if (conn->peer_eof && conn->inflight == 0 && conn->wbufs.empty()) {
        finished_eof.push_back(id);  // Half-closed peer, all answered.
        continue;
      }
      uint32_t mask = 0;
      if (!draining && !conn->peer_eof &&
          conn->inflight < config_.max_inflight_per_conn) {
        mask |= kWatchRead;
      }
      if (!conn->wbufs.empty()) mask |= kWatchWrite;
      if (mask != conn->watch_mask) {
        poller_->Watch(conn->fd, mask);
        conn->watch_mask = mask;
      }
    }
    for (const uint64_t id : finished_eof) CloseConnection(id);

    poller_->Wait(static_cast<int>(config_.poll_tick_ms), &events);

    for (const Poller::Event& event : events) {
      if (event.fd == wake_read_fd_) {
        char scratch[256];
        while (::read(wake_read_fd_, scratch, sizeof(scratch)) > 0) {
        }
        continue;
      }
      if (event.fd == listen_fd_) {
        AcceptReady();
        continue;
      }
      // Map fd -> connection (linear scan is fine at this fan-in; the
      // map is keyed by id because ids, unlike fds, are never reused).
      Connection* conn = nullptr;
      for (const auto& [id, candidate] : connections_) {
        if (candidate->fd == event.fd) {
          conn = candidate.get();
          break;
        }
      }
      if (conn == nullptr) continue;  // Closed earlier this iteration.
      if (event.error) {
        CloseConnection(conn->id);
        continue;
      }
      const uint64_t conn_id = conn->id;
      if (event.writable) WriteReady(conn);
      // WriteReady may close on EPIPE; re-resolve before reading.
      if (event.readable && connections_.count(conn_id) != 0 && !draining) {
        ReadReady(conn);
      }
    }

    DrainCompletions();
    TickFaultDelays();
    EnforceTimeouts();
  }

  // Drain phase 2: every response is flushed. Send FIN so clients see a
  // clean end-of-stream after their last response, then linger briefly,
  // discarding whatever the client was still sending — closing with
  // unread bytes in the receive queue would turn the FIN into an RST and
  // could tear down responses still in the client's receive buffer.
  for (const auto& [id, conn] : connections_) {
    ::shutdown(conn->fd, SHUT_WR);
    if (conn->watch_mask != kWatchRead) {
      poller_->Watch(conn->fd, kWatchRead);
      conn->watch_mask = kWatchRead;
    }
  }
  const Clock::time_point linger_deadline =
      Clock::now() + std::chrono::milliseconds(config_.drain_linger_ms);
  while (!connections_.empty() && Clock::now() < linger_deadline) {
    poller_->Wait(static_cast<int>(config_.poll_tick_ms), &events);
    std::vector<uint64_t> finished;
    for (const Poller::Event& event : events) {
      for (const auto& [id, conn] : connections_) {
        if (conn->fd != event.fd) continue;
        char scratch[4096];
        ssize_t n;
        while ((n = ::read(conn->fd, scratch, sizeof(scratch))) > 0) {
        }
        if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK)) {
          finished.push_back(id);
        }
        break;
      }
    }
    for (const uint64_t id : finished) CloseConnection(id);
  }
  std::vector<uint64_t> remaining;
  remaining.reserve(connections_.size());
  for (const auto& [id, conn] : connections_) remaining.push_back(id);
  for (const uint64_t id : remaining) CloseConnection(id);
}

void Server::AcceptReady() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or a transient error; the loop retries.
    if (connections_.size() >=
        static_cast<size_t>(config_.max_connections)) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    SetNonBlocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (config_.so_sndbuf > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &config_.so_sndbuf,
                   sizeof(config_.so_sndbuf));
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    conn->last_read = conn->last_write_progress = Clock::now();
    poller_->Watch(fd, kWatchRead);
    conn->watch_mask = kWatchRead;
    accepted_.fetch_add(1, std::memory_order_relaxed);
    active_.fetch_add(1, std::memory_order_relaxed);
    connections_.emplace(conn->id, std::move(conn));
  }
}

void Server::ReadReady(Connection* conn) {
  char scratch[16384];
  if (config_.fault_plan != nullptr && config_.fault_plan->InjectReset()) {
    // Injected peer loss: the connection vanishes exactly as it would on
    // a hard socket error — owed responses are counted dropped.
    CloseConnection(conn->id);
    return;
  }
  for (;;) {
    size_t want = sizeof(scratch);
    if (config_.fault_plan != nullptr) {
      want = config_.fault_plan->ClampRead(want);
    }
    const ssize_t n = ::read(conn->fd, scratch, want);
    if (n > 0) {
      bytes_in_.fetch_add(static_cast<uint64_t>(n),
                          std::memory_order_relaxed);
      conn->rbuf.insert(conn->rbuf.end(), scratch, scratch + n);
      conn->last_read = Clock::now();
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0) {  // Hard error: the stream is gone.
      CloseConnection(conn->id);
      return;
    }
    // EOF. Parse what already arrived (a client may pipeline a batch and
    // immediately half-close); responses owed are still answered and
    // flushed before the close.
    const uint64_t conn_id = conn->id;
    ParseFrames(conn);
    if (connections_.count(conn_id) == 0) return;  // Framing error closed.
    conn->peer_eof = true;
    if (conn->inflight == 0 && conn->wbufs.empty()) CloseConnection(conn_id);
    return;
  }
  ParseFrames(conn);
}

void Server::ParseFrames(Connection* conn) {
  size_t offset = 0;
  const uint64_t conn_id = conn->id;
  while (offset < conn->rbuf.size()) {
    Frame frame;
    size_t consumed = 0;
    const DecodeStatus status =
        ExtractFrame(conn->rbuf.data() + offset, conn->rbuf.size() - offset,
                     &consumed, &frame, config_.limits);
    if (status == DecodeStatus::kNeedMore) break;
    if (status == DecodeStatus::kError) {
      // Framing is lost: there is no way to find the next frame boundary,
      // so the connection is closed (responses already in flight are
      // dropped and counted).
      closed_protocol_.fetch_add(1, std::memory_order_relaxed);
      CloseConnection(conn_id);
      return;
    }
    offset += consumed;
    HandleFrame(conn, std::move(frame));
    if (connections_.count(conn_id) == 0) return;  // Closed by handler.
  }
  conn->rbuf.erase(conn->rbuf.begin(),
                   conn->rbuf.begin() + static_cast<ptrdiff_t>(offset));
}

void Server::HandleFrame(Connection* conn, Frame frame) {
  // Malformed-but-framed payloads and unwanted types are answered with an
  // error frame instead of disconnecting — framing survived, so the
  // connection is still usable.
  const auto answer_error = [&](const char* message) {
    decode_errors_.fetch_add(1, std::memory_order_relaxed);
    std::vector<uint8_t> out;
    EncodeError(frame.header.request_id, message, &out);
    error_frames_out_.fetch_add(1, std::memory_order_relaxed);
    QueueWrite(conn, std::move(out));
  };

  if (frame.header.type == FrameType::kStatsRequest) {
    WireStatsRequest stats_request;
    if (!ParseStatsRequest(frame, &stats_request, config_.limits)) {
      answer_error("malformed stats request");
      return;
    }
    stats_frames_.fetch_add(1, std::memory_order_relaxed);
    Work work;
    work.conn_id = conn->id;
    work.type = FrameType::kStatsRequest;
    work.admin_request_id = stats_request.request_id;
    work.stats_format = stats_request.format;
    EnqueueWork(conn, std::move(work));
    return;
  }

  if (frame.header.type == FrameType::kLoadSlotRequest) {
    WireLoadRequest load_request;
    if (!ParseLoadRequest(frame, &load_request, config_.limits)) {
      answer_error("malformed load request");
      return;
    }
    load_frames_.fetch_add(1, std::memory_order_relaxed);
    if (!config_.enable_remote_load) {
      // Refused, not dropped: the caller gets a definite answer and the
      // connection keeps serving score traffic.
      std::vector<uint8_t> out;
      EncodeError(frame.header.request_id, "remote load disabled", &out);
      error_frames_out_.fetch_add(1, std::memory_order_relaxed);
      QueueWrite(conn, std::move(out));
      return;
    }
    Work work;
    work.conn_id = conn->id;
    work.type = FrameType::kLoadSlotRequest;
    work.admin_request_id = load_request.request_id;
    work.load_slot = std::move(load_request.slot);
    work.load_path = std::move(load_request.path);
    EnqueueWork(conn, std::move(work));
    return;
  }

  if (frame.header.type == FrameType::kFeedback) {
    WireFeedback feedback;
    if (!ParseFeedback(frame, &feedback, config_.limits)) {
      answer_error("malformed feedback frame");
      return;
    }
    feedback_frames_.fetch_add(1, std::memory_order_relaxed);
    if (config_.feedback_log == nullptr) {
      // Refused, not dropped: the caller gets a definite answer and the
      // connection keeps serving score traffic.
      std::vector<uint8_t> out;
      EncodeError(frame.header.request_id, "feedback disabled", &out);
      error_frames_out_.fetch_add(1, std::memory_order_relaxed);
      QueueWrite(conn, std::move(out));
      return;
    }
    // Handled inline on the event loop: Append is an O(1) bounded push
    // that drops (never blocks) on a full log, so there is nothing worth
    // a dispatcher round-trip.
    online::FeedbackEvent event;
    event.slot = std::move(feedback.slot);
    event.model_version = feedback.model_version;
    event.list.user_id = feedback.user_id;
    event.list.items = std::move(feedback.items);
    event.list.clicks.assign(feedback.clicks.begin(), feedback.clicks.end());
    const bool accepted = config_.feedback_log->Append(std::move(event));
    WireFeedbackAck ack;
    ack.request_id = feedback.request_id;
    ack.accepted = accepted;
    if (!accepted) ack.message = "feedback log full or closed";
    std::vector<uint8_t> out;
    EncodeFeedbackAck(ack, &out);
    QueueWrite(conn, std::move(out));
    return;
  }

  if (frame.header.type == FrameType::kPageRequest) {
    Work work;
    if (!ParsePageRequest(frame, &work.page, config_.limits)) {
      answer_error("malformed page request");
      return;
    }
    frames_in_.fetch_add(1, std::memory_order_relaxed);
    work.conn_id = conn->id;
    work.type = FrameType::kPageRequest;
    EnqueueWork(conn, std::move(work));
    return;
  }

  if (frame.header.type != FrameType::kScoreRequest) {
    answer_error("unexpected frame type");
    return;
  }
  Work work;
  if (!ParseScoreRequest(frame, &work.request, config_.limits)) {
    answer_error("malformed score request");
    return;
  }
  frames_in_.fetch_add(1, std::memory_order_relaxed);
  work.conn_id = conn->id;
  EnqueueWork(conn, std::move(work));
}

void Server::EnqueueWork(Connection* conn, Work work) {
  conn->inflight++;
  int prev = max_inflight_.load(std::memory_order_relaxed);
  while (prev < conn->inflight &&
         !max_inflight_.compare_exchange_weak(prev, conn->inflight,
                                              std::memory_order_relaxed)) {
  }
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    work_.push_back(std::move(work));
  }
  work_cv_.notify_one();
}

void Server::QueueWrite(Connection* conn, std::vector<uint8_t> bytes) {
  QueueWriteTagged(conn, std::move(bytes), /*is_response=*/false);
}

void Server::QueueWriteTagged(Connection* conn, std::vector<uint8_t> bytes,
                              bool is_response) {
  conn->wbuf_bytes += bytes.size();
  int delay_ticks = 0;
  if (config_.fault_plan != nullptr) {
    delay_ticks = config_.fault_plan->NextFrameDelayTicks();
  }
  conn->wbufs.push_back({std::move(bytes), is_response, delay_ticks});
  if (conn->wbuf_bytes > config_.max_write_buffer_bytes) {
    // Slow client: it stopped reading while responses kept arriving.
    // Disconnecting bounds the server's memory; the client's unread
    // responses are counted as dropped.
    closed_slow_.fetch_add(1, std::memory_order_relaxed);
    CloseConnection(conn->id);
    return;
  }
  WriteReady(conn);  // Opportunistic flush; common case writes in full.
}

void Server::WriteReady(Connection* conn) {
  while (!conn->wbufs.empty()) {
    Connection::OutFrame& front = conn->wbufs.front();
    if (front.delay_ticks > 0) return;  // Held by the fault seam.
    const size_t remaining = front.bytes.size() - conn->woff;
    size_t allowed = remaining;
    if (config_.fault_plan != nullptr) {
      allowed = config_.fault_plan->ClampWrite(remaining);
    }
    const ssize_t n = ::send(conn->fd, front.bytes.data() + conn->woff,
                             allowed, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      CloseConnection(conn->id);
      return;
    }
    bytes_out_.fetch_add(static_cast<uint64_t>(n), std::memory_order_relaxed);
    conn->wbuf_bytes -= static_cast<size_t>(n);
    conn->woff += static_cast<size_t>(n);
    conn->last_write_progress = Clock::now();
    if (conn->woff < front.bytes.size()) return;  // Socket buffer full.
    if (front.is_response) {
      frames_out_.fetch_add(1, std::memory_order_relaxed);
    }
    conn->wbufs.pop_front();
    conn->woff = 0;
  }
}

void Server::DrainCompletions() {
  std::deque<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(completion_mu_);
    batch.swap(completions_);
  }
  for (Completion& completion : batch) {
    const auto it = connections_.find(completion.conn_id);
    if (it == connections_.end()) {
      // The connection died (slow client, protocol error, peer reset)
      // between submit and completion. A graceful drain never takes this
      // path — it waits for in-flight responses before closing anything.
      dropped_responses_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    Connection* conn = it->second.get();
    conn->inflight--;
    QueueWriteTagged(conn, std::move(completion.frame), /*is_response=*/true);
  }
}

void Server::CloseConnection(uint64_t conn_id) {
  const auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  Connection* conn = it->second.get();
  // Responses still owed (parsed but unanswered) or buffered-but-unsent
  // are lost with the connection; count them so a graceful drain can
  // prove it dropped nothing.
  uint64_t lost = static_cast<uint64_t>(conn->inflight);
  for (const Connection::OutFrame& frame : conn->wbufs) {
    if (frame.is_response) ++lost;
  }
  if (lost > 0) dropped_responses_.fetch_add(lost, std::memory_order_relaxed);
  poller_->Watch(conn->fd, 0);
  ::close(conn->fd);
  active_.fetch_sub(1, std::memory_order_relaxed);
  connections_.erase(it);
}

void Server::TickFaultDelays() {
  if (config_.fault_plan == nullptr) return;
  std::vector<uint64_t> ready;
  for (const auto& [id, conn] : connections_) {
    // Only the front frame ages: held frames serialize behind it, which
    // keeps per-connection response bytes in completion order (the frame
    // *content* already correlates by request id).
    if (!conn->wbufs.empty() && conn->wbufs.front().delay_ticks > 0 &&
        --conn->wbufs.front().delay_ticks == 0) {
      ready.push_back(id);
    }
  }
  for (const uint64_t id : ready) {
    const auto it = connections_.find(id);
    if (it != connections_.end()) WriteReady(it->second.get());
  }
}

void Server::EnforceTimeouts() {
  if (config_.idle_timeout_ms == 0 && config_.write_stall_timeout_ms == 0) {
    return;
  }
  const Clock::time_point now = Clock::now();
  std::vector<std::pair<uint64_t, bool>> victims;  // (id, is_slow)
  for (const auto& [id, conn] : connections_) {
    if (config_.write_stall_timeout_ms > 0 && !conn->wbufs.empty() &&
        now - conn->last_write_progress >
            std::chrono::milliseconds(config_.write_stall_timeout_ms)) {
      victims.emplace_back(id, true);
      continue;
    }
    if (config_.idle_timeout_ms > 0 && conn->inflight == 0 &&
        conn->wbufs.empty() &&
        now - conn->last_read >
            std::chrono::milliseconds(config_.idle_timeout_ms)) {
      victims.emplace_back(id, false);
    }
  }
  for (const auto& [id, is_slow] : victims) {
    (is_slow ? closed_slow_ : closed_idle_)
        .fetch_add(1, std::memory_order_relaxed);
    CloseConnection(id);
  }
}

serve::NetStats Server::stats() const {
  serve::NetStats s;
  s.connections_accepted = accepted_.load(std::memory_order_relaxed);
  s.connections_active = active_.load(std::memory_order_relaxed);
  s.connections_rejected = rejected_.load(std::memory_order_relaxed);
  s.closed_idle = closed_idle_.load(std::memory_order_relaxed);
  s.closed_slow = closed_slow_.load(std::memory_order_relaxed);
  s.closed_protocol_error = closed_protocol_.load(std::memory_order_relaxed);
  s.frames_in = frames_in_.load(std::memory_order_relaxed);
  s.frames_out = frames_out_.load(std::memory_order_relaxed);
  s.error_frames_out = error_frames_out_.load(std::memory_order_relaxed);
  s.decode_errors = decode_errors_.load(std::memory_order_relaxed);
  s.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  s.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  s.dropped_responses = dropped_responses_.load(std::memory_order_relaxed);
  s.stats_frames = stats_frames_.load(std::memory_order_relaxed);
  s.load_frames = load_frames_.load(std::memory_order_relaxed);
  s.feedback_frames = feedback_frames_.load(std::memory_order_relaxed);
  s.max_inflight_per_conn = max_inflight_.load(std::memory_order_relaxed);
  return s;
}

serve::RouterStats Server::StatsWithNet() const {
  serve::RouterStats stats = router_.stats();
  stats.has_net = true;
  stats.net = this->stats();
  if (config_.online_stats) {
    stats.online = config_.online_stats();
    stats.has_online = true;
  }
  if (pages_served_.load(std::memory_order_relaxed) > 0) {
    serve::PageStats& p = stats.page;
    p.pages = pages_served_.load(std::memory_order_relaxed);
    p.page_lists = page_lists_.load(std::memory_order_relaxed);
    p.joint_pages = joint_pages_.load(std::memory_order_relaxed);
    p.degraded_pages = degraded_pages_.load(std::memory_order_relaxed);
    for (int i = 0; i < serve::PageStats::kListsHistBins; ++i) {
      p.lists_per_page_hist[i] =
          page_hist_[i].load(std::memory_order_relaxed);
    }
    p.redundancy_millitopics =
        page_redundancy_mt_.load(std::memory_order_relaxed);
    p.max_lists_per_page = page_max_lists_.load(std::memory_order_relaxed);
    stats.has_page = true;
  }
  return stats;
}

}  // namespace rapid::net
