#ifndef RAPID_CORE_DIVERSITY_FUNCTION_H_
#define RAPID_CORE_DIVERSITY_FUNCTION_H_

#include <vector>

#include "datagen/types.h"

namespace rapid::core {

/// The submodular set function used to measure per-topic diversity of a
/// list (the paper notes Eq. 4 "can be replaced by other submodular
/// diversity functions according to the objective of the recommendation
/// scenario"). All three are monotone and submodular in the list:
///
///  - kProbabilisticCoverage (the paper's default, Eq. 4):
///      `c_j(R) = 1 - prod_v (1 - tau_v^j)`;
///  - kConcaveOverModular:
///      `c_j(R) = sqrt(sum_v tau_v^j) / normalizer` — rewards mass in a
///      topic with diminishing returns that decay slower than coverage;
///  - kSaturatingLinear:
///      `c_j(R) = min(1, sum_v tau_v^j)` — a budgeted-coverage objective.
enum class DiversityFunctionKind {
  kProbabilisticCoverage,
  kConcaveOverModular,
  kSaturatingLinear,
};

/// Value of the chosen diversity function for topic `j` over the first
/// `upto` items (whole list when `upto < 0`).
float DiversityValue(DiversityFunctionKind kind, const data::Dataset& data,
                     const std::vector<int>& item_ids, int topic,
                     int upto = -1);

/// Marginal diversity of every position under the chosen function
/// (the generalization of Eq. 5): `d_j(i) = c_j(R) - c_j(R \ {R(i)})`.
/// Returns an `item_ids.size() x m` matrix.
std::vector<std::vector<float>> MarginalDiversityOf(
    DiversityFunctionKind kind, const data::Dataset& data,
    const std::vector<int>& item_ids);

/// Human-readable name for tables.
const char* DiversityFunctionName(DiversityFunctionKind kind);

}  // namespace rapid::core

#endif  // RAPID_CORE_DIVERSITY_FUNCTION_H_
