#ifndef RAPID_CORE_RAPID_H_
#define RAPID_CORE_RAPID_H_

#include <memory>
#include <string>
#include <vector>

#include "core/diversity_function.h"
#include "rerank/neural_base.h"

namespace rapid::core {

/// Which architecture computes the listwise relevance representation
/// (paper Section III-B; the transformer swap is the RAPID-trans ablation).
enum class RelevanceEncoder { kBiLstm, kTransformer };

/// How the per-topic behavior sequences are aggregated into topic
/// representations (Section III-C):
///  - kLstm: the paper's intra-topic LSTM (final state per topic);
///  - kMean: RAPID-mean ablation — mean of the item embeddings per topic;
///  - kNone: RAPID-RNN ablation — the personalized diversity estimator is
///    removed entirely.
enum class DiversityAggregator { kLstm, kMean, kNone };

/// Output approach of the re-ranker module (Section III-D):
///  - kDeterministic (RAPID-det): a single fused MLP head;
///  - kProbabilistic (RAPID-pro): mean/std heads with reparameterized
///    sampling during training and UCB (mean + std) scoring at inference.
enum class OutputHead { kDeterministic, kProbabilistic };

/// Full configuration of a RAPID model and its training loop.
struct RapidConfig {
  /// Hidden size q_h of the LSTMs / attention.
  int hidden_dim = 16;
  /// Maximum per-topic behavior sequence length D (paper default 5).
  int max_seq_len = 5;
  RelevanceEncoder relevance_encoder = RelevanceEncoder::kBiLstm;
  DiversityAggregator diversity_aggregator = DiversityAggregator::kLstm;
  OutputHead head = OutputHead::kProbabilistic;
  /// Which submodular diversity function drives the marginal-diversity
  /// features (the paper's pluggable Eq. 4; default is its probabilistic
  /// coverage).
  DiversityFunctionKind diversity_function =
      DiversityFunctionKind::kProbabilisticCoverage;
  rerank::NeuralRerankConfig train;
};

/// RAPID: re-ranking with personalized diversification (the paper's
/// primary contribution).
///
/// Pipeline per list:
///  1. listwise relevance: Bi-LSTM (or transformer) over the item feature
///     sequence `e_i = [x_u, x_v, tau_v]` -> `H in R^{L x 2q_h}`;
///  2. personalized diversity: per-topic behavior LSTM -> topic matrix
///     `V in R^{m x q_h}` -> parameter-free self-attention (Eq. 2) ->
///     MLP + softmax -> preference distribution `theta in R^m`; the
///     marginal coverage diversity `d_R` (Eq. 5) is weighted elementwise:
///     `Delta = theta ⊙ d_R`;
///  3. re-ranker: MLP over `[H, Delta]`, deterministic or probabilistic.
/// Trained end-to-end with pointwise BCE on clicks (Eq. 11).
class RapidReranker : public rerank::NeuralReranker {
 public:
  explicit RapidReranker(RapidConfig config = {});
  ~RapidReranker() override;

  /// Movable (the network lives behind a pimpl), not copyable — serving
  /// code hands fitted models around by value or `unique_ptr`.
  RapidReranker(RapidReranker&&) noexcept;
  RapidReranker& operator=(RapidReranker&&) noexcept;

  /// "RAPID-pro", "RAPID-det", "RAPID-RNN", "RAPID-mean" or "RAPID-trans",
  /// derived from the configuration.
  std::string name() const override;

  /// The learned preference distribution `theta` over topics for a user
  /// (Section III-C / the RQ5 case study). Must be called after Fit.
  std::vector<float> PreferenceDistribution(const data::Dataset& data,
                                            int user_id) const;

  const RapidConfig& config() const { return rapid_config_; }

 protected:
  void InitNet(const data::Dataset& data, std::mt19937_64& rng) override;
  nn::Variable BuildBatchLogits(
      const data::Dataset& data,
      const std::vector<const data::ImpressionList*>& lists, bool training,
      std::mt19937_64& rng) const override;
  std::vector<nn::Variable> Params() const override;

 private:
  struct Net;
  /// Relevance representations of a batch of same-length lists, stacked
  /// list-major: (B*L x 2q_h). Each list's block is bit-identical to its
  /// solo encoding (time-major Bi-LSTM batching / per-list attention).
  nn::Variable RelevanceStates(
      const data::Dataset& data,
      const std::vector<const data::ImpressionList*>& lists) const;
  /// Preference distribution theta (1 x m) for a user.
  nn::Variable Theta(const data::Dataset& data, int user_id) const;

  RapidConfig rapid_config_;
  std::unique_ptr<Net> net_;
};

}  // namespace rapid::core

#endif  // RAPID_CORE_RAPID_H_
