#include "core/rapid.h"

#include <cassert>
#include <cmath>
#include <unordered_map>

#include "datagen/history.h"

namespace rapid::core {

namespace {

using nn::Variable;

// Per-item relevance input e_i = [x_u, x_v, tau_v, initial score] (paper
// Section III-B plus the normalized initial score, so every neural
// re-ranker in this repo sees identical per-item inputs — see DESIGN.md),
// stacked list-major over a same-length batch.
nn::Matrix RelevanceFeatureMatrix(
    const data::Dataset& data,
    const std::vector<const data::ImpressionList*>& lists) {
  return rerank::BatchFeatureMatrix(data, lists);
}

// idx[b*L + i] = i*B + b: reorders time-major recurrence output rows
// (step-of-all-lists) back to list-major blocks.
std::vector<int> ListMajorIndex(int B, int L) {
  std::vector<int> idx(static_cast<size_t>(B) * L);
  for (int b = 0; b < B; ++b) {
    for (int i = 0; i < L; ++i) idx[b * L + i] = i * B + b;
  }
  return idx;
}

// Tiles a per-list (L x d) constant (e.g. the sinusoidal positional
// encoding) B times: row b*L + i of the result is row i of `pe`.
nn::Matrix TileRows(const nn::Matrix& pe, int B) {
  nn::Matrix out(B * pe.rows(), pe.cols());
  for (int b = 0; b < B; ++b) {
    for (int i = 0; i < pe.rows(); ++i) {
      const float* src = pe.row(i);
      float* dst = out.row(b * pe.rows() + i);
      for (int c = 0; c < pe.cols(); ++c) dst[c] = src[c];
    }
  }
  return out;
}

}  // namespace

struct RapidReranker::Net {
  Net(const data::Dataset& data, const RapidConfig& cfg, std::mt19937_64& rng)
      : rel_in_dim(rerank::ListFeatureDim(data)),
        beh_in_dim(data.user_feature_dim() + data.item_feature_dim()) {
    const int h = cfg.hidden_dim;
    const int m = data.num_topics;
    if (cfg.relevance_encoder == RelevanceEncoder::kBiLstm) {
      bilstm = std::make_unique<nn::BiLstm>(rel_in_dim, h, rng);
    } else {
      // Transformer relevance encoder at d_model = 2h so the head input
      // width matches the Bi-LSTM variant.
      trans_proj = std::make_unique<nn::Linear>(rel_in_dim, 2 * h, rng);
      trans_enc =
          std::make_unique<nn::TransformerEncoderLayer>(2 * h, 2, 4 * h, rng);
    }
    if (cfg.diversity_aggregator == DiversityAggregator::kLstm) {
      topic_lstm = std::make_unique<nn::Lstm>(beh_in_dim, h, rng);
    } else if (cfg.diversity_aggregator == DiversityAggregator::kMean) {
      mean_proj = std::make_unique<nn::Linear>(beh_in_dim, h, rng,
                                               nn::Activation::kTanh);
    }
    if (cfg.diversity_aggregator != DiversityAggregator::kNone) {
      // Input: flattened attended topic matrix plus a skip connection of
      // the empirical history topic distribution (aids trainability at
      // small data scale; see DESIGN.md).
      theta_mlp = std::make_unique<nn::Mlp>(
          std::vector<int>{m * h + m, 2 * h, m}, rng, nn::Activation::kRelu);
    }
    // Head input: encoded context, raw-feature skip, and (when the
    // diversity estimator is on) the m per-topic gains plus their sum.
    const int head_in =
        2 * h + rel_in_dim +
        (cfg.diversity_aggregator == DiversityAggregator::kNone ? 0 : m + 1);
    score_mlp = std::make_unique<nn::Mlp>(std::vector<int>{head_in, h, 1},
                                          rng, nn::Activation::kRelu);
    if (cfg.head == OutputHead::kProbabilistic) {
      sigma_mlp = std::make_unique<nn::Mlp>(std::vector<int>{head_in, h, 1},
                                            rng, nn::Activation::kRelu);
    }
  }

  int rel_in_dim;
  int beh_in_dim;
  std::unique_ptr<nn::BiLstm> bilstm;
  std::unique_ptr<nn::Linear> trans_proj;
  std::unique_ptr<nn::TransformerEncoderLayer> trans_enc;
  std::unique_ptr<nn::Lstm> topic_lstm;
  std::unique_ptr<nn::Linear> mean_proj;
  std::unique_ptr<nn::Mlp> theta_mlp;
  std::unique_ptr<nn::Mlp> score_mlp;  // deterministic head / mean head
  std::unique_ptr<nn::Mlp> sigma_mlp;  // probabilistic std head
};

RapidReranker::RapidReranker(RapidConfig config)
    : NeuralReranker(config.train), rapid_config_(config) {}
RapidReranker::~RapidReranker() = default;
RapidReranker::RapidReranker(RapidReranker&&) noexcept = default;
RapidReranker& RapidReranker::operator=(RapidReranker&&) noexcept = default;

std::string RapidReranker::name() const {
  if (rapid_config_.diversity_aggregator == DiversityAggregator::kNone) {
    return "RAPID-RNN";
  }
  if (rapid_config_.diversity_aggregator == DiversityAggregator::kMean) {
    return "RAPID-mean";
  }
  if (rapid_config_.relevance_encoder == RelevanceEncoder::kTransformer) {
    return "RAPID-trans";
  }
  return rapid_config_.head == OutputHead::kProbabilistic ? "RAPID-pro"
                                                          : "RAPID-det";
}

void RapidReranker::InitNet(const data::Dataset& data, std::mt19937_64& rng) {
  net_ = std::make_unique<Net>(data, rapid_config_, rng);
}

Variable RapidReranker::RelevanceStates(
    const data::Dataset& data,
    const std::vector<const data::ImpressionList*>& lists) const {
  const int B = static_cast<int>(lists.size());
  const int L = static_cast<int>(lists[0]->items.size());
  const nn::Matrix feats = RelevanceFeatureMatrix(data, lists);
  if (rapid_config_.relevance_encoder == RelevanceEncoder::kBiLstm) {
    // One time-major recurrence encodes all lists at once; rows evolve
    // independently, so each list's states match its solo encoding.
    Variable tm = nn::ConcatRows(
        net_->bilstm->Forward(rerank::TimeMajorSteps(feats, B, L)));
    if (B == 1) return tm;  // time-major == list-major for one list
    return nn::GatherRows(tm, ListMajorIndex(B, L));
  }
  Variable h = net_->trans_proj->Forward(Variable::Constant(feats));
  h = nn::Add(h, Variable::Constant(TileRows(
                     nn::SinusoidalPositionalEncoding(L, h.cols()), B)));
  return net_->trans_enc->Forward(h, /*segment=*/L);
}

Variable RapidReranker::Theta(const data::Dataset& data, int user_id) const {
  const int m = data.num_topics;
  const int D = rapid_config_.max_seq_len;
  const int qu = data.user_feature_dim();
  const int qv = data.item_feature_dim();
  const data::User& user = data.user(user_id);
  const auto seqs = data::SplitHistoryByTopic(data, user_id, D);

  Variable topic_repr;  // (m x q_h)
  if (rapid_config_.diversity_aggregator == DiversityAggregator::kLstm) {
    // Batch all m topic sequences through one shared LSTM: step t input is
    // the (m x (qu+qv)) matrix of each topic's t-th item (left-padded), the
    // mask keeps padded topics' state unchanged.
    std::vector<Variable> inputs, masks;
    inputs.reserve(D);
    masks.reserve(D);
    for (int t = 0; t < D; ++t) {
      nn::Matrix x(m, qu + qv);
      nn::Matrix mask(m, 1);
      for (int j = 0; j < m; ++j) {
        const int len = static_cast<int>(seqs[j].size());
        const int offset = D - len;  // left padding
        if (t >= offset) {
          const data::Item& item = data.item(seqs[j][t - offset]);
          for (int k = 0; k < qu; ++k) x.at(j, k) = user.features[k];
          for (int k = 0; k < qv; ++k) x.at(j, qu + k) = item.features[k];
          mask.at(j, 0) = 1.0f;
        }
      }
      inputs.push_back(Variable::Constant(std::move(x)));
      masks.push_back(Variable::Constant(std::move(mask)));
    }
    topic_repr = net_->topic_lstm->ForwardLast(inputs, masks);
  } else {
    // RAPID-mean: mean item embedding per topic, projected to q_h.
    nn::Matrix x(m, qu + qv);
    for (int j = 0; j < m; ++j) {
      if (seqs[j].empty()) continue;
      for (int k = 0; k < qu; ++k) x.at(j, k) = user.features[k];
      for (int v : seqs[j]) {
        const data::Item& item = data.item(v);
        for (int k = 0; k < qv; ++k) {
          x.at(j, qu + k) += item.features[k] / seqs[j].size();
        }
      }
    }
    topic_repr = net_->mean_proj->Forward(Variable::Constant(std::move(x)));
  }

  // Inter-topic interactions (Eq. 2) and the preference head (Eq. 3).
  // A sigmoid (not softmax) keeps per-topic preferences independent —
  // a softmax here collapses under the elementwise-product gradient path.
  Variable attended = nn::UnprojectedSelfAttention(topic_repr);
  const std::vector<float> hist_dist =
      data::HistoryTopicDistribution(data, user_id);
  Variable theta = net_->theta_mlp->Forward(nn::ConcatCols(
      {nn::FlattenToRow(attended),
       Variable::Constant(nn::Matrix::RowVector(hist_dist))}));  // (1 x m)
  return nn::Sigmoid(theta);
}

Variable RapidReranker::BuildBatchLogits(
    const data::Dataset& data,
    const std::vector<const data::ImpressionList*>& lists, bool training,
    std::mt19937_64& rng) const {
  const int B = static_cast<int>(lists.size());
  const int L = static_cast<int>(lists[0]->items.size());
  // Skip connection of the raw per-item features into the head alongside
  // the encoded listwise context (small-scale trainability; DESIGN.md).
  Variable head_in =
      nn::ConcatCols({RelevanceStates(data, lists),
                      Variable::Constant(RelevanceFeatureMatrix(data, lists))});

  if (rapid_config_.diversity_aggregator != DiversityAggregator::kNone) {
    // The personalized diversity gain is inherently per list (theta is
    // per user, d_R per candidate set): compute each list's (L x m) block
    // and stack. A user appearing in several lists shares one Theta graph.
    std::unordered_map<int, Variable> theta_by_user;
    std::vector<Variable> deltas;
    deltas.reserve(lists.size());
    for (const data::ImpressionList* list : lists) {
      auto it = theta_by_user.find(list->user_id);
      if (it == theta_by_user.end()) {
        it = theta_by_user.emplace(list->user_id, Theta(data, list->user_id))
                 .first;
      }
      // Marginal diversity d_R (Eq. 5, under the configured submodular
      // function) as a constant (L x m), weighted by the personalized
      // preference (Eq. 6).
      const auto md = MarginalDiversityOf(rapid_config_.diversity_function,
                                          data, list->items);
      nn::Matrix d_mat(L, data.num_topics);
      for (int i = 0; i < L; ++i) {
        for (int j = 0; j < data.num_topics; ++j) d_mat.at(i, j) = md[i][j];
      }
      deltas.push_back(nn::MulRowBroadcast(
          Variable::Constant(std::move(d_mat)), it->second));
    }
    Variable delta = B == 1 ? deltas[0] : nn::ConcatRows(deltas);
    // Alongside the per-topic gains, expose their sum `theta . d_i` — the
    // scalar personalized diversity gain — which is the easiest signal for
    // the head when m is large and the per-topic columns are sparse.
    head_in = nn::ConcatCols({head_in, delta, nn::SumCols(delta)});
  }

  Variable mean_logits = net_->score_mlp->Forward(head_in);  // (B*L x 1)
  if (rapid_config_.head == OutputHead::kDeterministic) {
    return mean_logits;
  }

  // Probabilistic head (Section III-D2): std via softplus; training uses
  // the reparameterization trick, inference the UCB (mean + std).
  Variable sigma = nn::Softplus(net_->sigma_mlp->Forward(head_in));
  if (training) {
    nn::Matrix noise(B * L, 1);
    std::normal_distribution<float> n01(0.0f, 1.0f);
    for (int i = 0; i < B * L; ++i) noise.at(i, 0) = n01(rng);
    return nn::Add(mean_logits,
                   nn::Mul(sigma, Variable::Constant(std::move(noise))));
  }
  return nn::Add(mean_logits, sigma);
}

std::vector<Variable> RapidReranker::Params() const {
  std::vector<Variable> out;
  auto append = [&out](const std::vector<Variable>& ps) {
    out.insert(out.end(), ps.begin(), ps.end());
  };
  if (net_->bilstm) append(net_->bilstm->Params());
  if (net_->trans_proj) append(net_->trans_proj->Params());
  if (net_->trans_enc) append(net_->trans_enc->Params());
  if (net_->topic_lstm) append(net_->topic_lstm->Params());
  if (net_->mean_proj) append(net_->mean_proj->Params());
  if (net_->theta_mlp) append(net_->theta_mlp->Params());
  append(net_->score_mlp->Params());
  if (net_->sigma_mlp) append(net_->sigma_mlp->Params());
  return out;
}

std::vector<float> RapidReranker::PreferenceDistribution(
    const data::Dataset& data, int user_id) const {
  assert(net_ != nullptr && "call Fit before PreferenceDistribution");
  assert(rapid_config_.diversity_aggregator != DiversityAggregator::kNone);
  const nn::Matrix theta = Theta(data, user_id).value();
  std::vector<float> out(theta.cols());
  for (int j = 0; j < theta.cols(); ++j) out[j] = theta.at(0, j);
  return out;
}

}  // namespace rapid::core
