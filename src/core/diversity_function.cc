#include "core/diversity_function.h"

#include <algorithm>
#include <cmath>

namespace rapid::core {

namespace {

// Sum of tau^j over the first `upto` items.
double TopicMass(const data::Dataset& data, const std::vector<int>& item_ids,
                 int topic, int upto) {
  const size_t n = upto < 0 ? item_ids.size()
                            : std::min<size_t>(upto, item_ids.size());
  double mass = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mass += data.item(item_ids[i]).topic_coverage[topic];
  }
  return mass;
}

// Normalizer for concave-over-modular so a fully saturated topic maps
// near 1 on typical list lengths (sqrt(4) = 2 items of full coverage).
constexpr double kComNormalizer = 2.0;

}  // namespace

float DiversityValue(DiversityFunctionKind kind, const data::Dataset& data,
                     const std::vector<int>& item_ids, int topic, int upto) {
  switch (kind) {
    case DiversityFunctionKind::kProbabilisticCoverage:
      return data::TopicCoverage(data, item_ids, topic, upto);
    case DiversityFunctionKind::kConcaveOverModular:
      return static_cast<float>(
          std::sqrt(TopicMass(data, item_ids, topic, upto)) /
          kComNormalizer);
    case DiversityFunctionKind::kSaturatingLinear:
      return static_cast<float>(
          std::min(1.0, TopicMass(data, item_ids, topic, upto)));
  }
  return 0.0f;
}

std::vector<std::vector<float>> MarginalDiversityOf(
    DiversityFunctionKind kind, const data::Dataset& data,
    const std::vector<int>& item_ids) {
  if (kind == DiversityFunctionKind::kProbabilisticCoverage) {
    // Keep the optimized leave-one-out product implementation.
    return data::MarginalDiversity(data, item_ids);
  }
  const int m = data.num_topics;
  const int L = static_cast<int>(item_ids.size());
  std::vector<std::vector<float>> out(L, std::vector<float>(m));
  for (int j = 0; j < m; ++j) {
    const float full = DiversityValue(kind, data, item_ids, j);
    for (int i = 0; i < L; ++i) {
      std::vector<int> without = item_ids;
      without.erase(without.begin() + i);
      out[i][j] = full - DiversityValue(kind, data, without, j);
    }
  }
  return out;
}

const char* DiversityFunctionName(DiversityFunctionKind kind) {
  switch (kind) {
    case DiversityFunctionKind::kProbabilisticCoverage:
      return "prob-coverage";
    case DiversityFunctionKind::kConcaveOverModular:
      return "concave-over-modular";
    case DiversityFunctionKind::kSaturatingLinear:
      return "saturating-linear";
  }
  return "?";
}

}  // namespace rapid::core
