#include "eval/pipeline.h"

#include <cassert>

#include "metrics/metrics.h"

namespace rapid::eval {

Environment::Environment(const PipelineConfig& config,
                         std::unique_ptr<rank::Ranker> ranker)
    : config_(config),
      data_(data::GenerateDataset(config.sim, config.seed)),
      ranker_(std::move(ranker)) {
  ranker_->Train(data_, config.seed + 1);
  dcm_ = std::make_unique<click::GroundTruthClickModel>(&data_, config.dcm);

  // Initial lists for the re-ranking training split, with simulated clicks
  // (one independent click realization per request).
  std::mt19937_64 click_rng(config.seed + 2);
  train_lists_.reserve(data_.rerank_train_requests.size());
  for (const data::Request& req : data_.rerank_train_requests) {
    data::ImpressionList list =
        ranker_->RankRequest(data_, req, config.list_len);
    list.clicks = dcm_->SimulateClicks(list.user_id, list.items, click_rng);
    train_lists_.push_back(std::move(list));
  }

  test_lists_.reserve(data_.test_requests.size());
  for (const data::Request& req : data_.test_requests) {
    test_lists_.push_back(ranker_->RankRequest(data_, req, config.list_len));
  }

  est_dcm_.Fit(data_, train_lists_);
}

double MethodMetrics::Mean(const std::string& metric) const {
  auto it = per_request.find(metric);
  if (it == per_request.end() || it->second.empty()) return 0.0;
  return metrics::Summarize(it->second).mean;
}

MethodMetrics EvaluateReranker(const Environment& env,
                               const rerank::Reranker& reranker,
                               const std::vector<int>& ks,
                               uint64_t eval_seed,
                               int num_click_realizations) {
  MethodMetrics out;
  out.name = reranker.name();
  const data::Dataset& data = env.dataset();
  const bool has_bids = data.items.empty() ? false : data.items[0].bid > 0.0f;

  for (size_t r = 0; r < env.test_lists().size(); ++r) {
    const data::ImpressionList& initial = env.test_lists()[r];
    const std::vector<int> reranked = reranker.Rerank(data, initial);
    assert(reranked.size() == initial.items.size());

    // Common random numbers: the click RNG depends on the request, not the
    // method, so method comparisons share noise where lists agree.
    std::mt19937_64 rng(eval_seed * 1000003ull + r);
    for (int k : ks) {
      const std::string suffix = "@" + std::to_string(k);
      double click_sum = 0.0, ndcg_sum = 0.0, rev_sum = 0.0;
      std::mt19937_64 realization_rng = rng;  // Same draws for every k.
      for (int t = 0; t < num_click_realizations; ++t) {
        const std::vector<int> clicks = env.dcm().SimulateClicks(
            initial.user_id, reranked, realization_rng);
        click_sum += metrics::ClickAtK(clicks, k);
        ndcg_sum += metrics::NdcgAtK(clicks, k);
        if (has_bids) rev_sum += metrics::RevAtK(data, reranked, clicks, k);
      }
      const float inv = 1.0f / num_click_realizations;
      out.per_request["click" + suffix].push_back(
          static_cast<float>(click_sum) * inv);
      out.per_request["ndcg" + suffix].push_back(
          static_cast<float>(ndcg_sum) * inv);
      out.per_request["div" + suffix].push_back(
          metrics::DivAtK(data, reranked, k));
      out.per_request["satis" + suffix].push_back(
          env.estimated_dcm().Satisfaction(reranked, k));
      if (has_bids) {
        out.per_request["rev" + suffix].push_back(
            static_cast<float>(rev_sum) * inv);
      }
    }
  }
  return out;
}

MethodMetrics FitAndEvaluate(const Environment& env,
                             rerank::Reranker& reranker,
                             const std::vector<int>& ks, uint64_t fit_seed,
                             uint64_t eval_seed, int num_click_realizations) {
  reranker.Fit(env.dataset(), env.train_lists(), fit_seed);
  return EvaluateReranker(env, reranker, ks, eval_seed,
                          num_click_realizations);
}

double CompareMethods(const MethodMetrics& a, const MethodMetrics& b,
                      const std::string& metric) {
  const auto ia = a.per_request.find(metric);
  const auto ib = b.per_request.find(metric);
  assert(ia != a.per_request.end() && ib != b.per_request.end());
  return metrics::PairedTTestPValue(ia->second, ib->second);
}

}  // namespace rapid::eval
