#include "eval/multi_run.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace rapid::eval {

double MultiRunResult::Mean(const std::string& metric) const {
  auto it = per_seed_means.find(metric);
  if (it == per_seed_means.end() || it->second.empty()) return 0.0;
  double s = 0.0;
  for (double v : it->second) s += v;
  return s / it->second.size();
}

double MultiRunResult::StdDev(const std::string& metric) const {
  auto it = per_seed_means.find(metric);
  if (it == per_seed_means.end() || it->second.size() < 2) return 0.0;
  const double mean = Mean(metric);
  double ss = 0.0;
  for (double v : it->second) ss += (v - mean) * (v - mean);
  return std::sqrt(ss / (it->second.size() - 1));
}

std::vector<MultiRunResult> MultiSeedEvaluate(
    const PipelineConfig& base_config,
    const std::function<std::unique_ptr<rank::Ranker>()>& make_ranker,
    const std::vector<std::pair<std::string, MethodFactory>>& methods,
    int num_seeds, const std::vector<int>& ks) {
  std::vector<MultiRunResult> results(methods.size());
  for (size_t m = 0; m < methods.size(); ++m) {
    results[m].name = methods[m].first;
  }
  for (int s = 0; s < num_seeds; ++s) {
    PipelineConfig config = base_config;
    config.seed = base_config.seed + static_cast<uint64_t>(s);
    Environment env(config, make_ranker());
    for (size_t m = 0; m < methods.size(); ++m) {
      std::unique_ptr<rerank::Reranker> method = methods[m].second();
      MethodMetrics metrics = FitAndEvaluate(env, *method, ks,
                                             /*fit_seed=*/99 + s,
                                             /*eval_seed=*/777 + s);
      for (const auto& [name, values] : metrics.per_request) {
        double total = 0.0;
        for (float v : values) total += v;
        results[m].per_seed_means[name].push_back(
            values.empty() ? 0.0 : total / values.size());
      }
    }
  }
  return results;
}

std::string RenderMultiRun(const std::vector<MultiRunResult>& results,
                           const std::vector<std::string>& metrics,
                           const std::string& title) {
  std::ostringstream os;
  os << "== " << title << " (mean +- std over seeds) ==\n";
  os << std::string(12, ' ');
  for (const std::string& m : metrics) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), " %-17s", m.c_str());
    os << buf;
  }
  os << "\n";
  for (const MultiRunResult& row : results) {
    char name_buf[32];
    std::snprintf(name_buf, sizeof(name_buf), "%-12s", row.name.c_str());
    os << name_buf;
    for (const std::string& m : metrics) {
      char buf[40];
      std::snprintf(buf, sizeof(buf), " %7.4f +- %6.4f", row.Mean(m),
                    row.StdDev(m));
      os << buf;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace rapid::eval
