#ifndef RAPID_EVAL_TABLE_H_
#define RAPID_EVAL_TABLE_H_

#include <string>
#include <vector>

#include "eval/pipeline.h"

namespace rapid::eval {

/// Plain-text table formatter mirroring the paper's result tables: one row
/// per method, one column per metric.
class ResultTable {
 public:
  /// `metrics` defines the column order (e.g. {"click@5", "ndcg@5", ...}).
  explicit ResultTable(std::vector<std::string> metrics);

  /// Appends a method row.
  void AddRow(const MethodMetrics& m);

  /// Renders with aligned columns; the best value per column is starred.
  /// `title` is printed above the header.
  std::string Render(const std::string& title) const;

  /// Relative improvement (%) of method `a` over method `b` on `metric`
  /// (the paper's "impv%" row). Rows must have been added already.
  double ImprovementPercent(const std::string& a, const std::string& b,
                            const std::string& metric) const;

  const std::vector<MethodMetrics>& rows() const { return rows_; }

 private:
  std::vector<std::string> metrics_;
  std::vector<MethodMetrics> rows_;
};

}  // namespace rapid::eval

#endif  // RAPID_EVAL_TABLE_H_
