#ifndef RAPID_EVAL_MULTI_RUN_H_
#define RAPID_EVAL_MULTI_RUN_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "eval/pipeline.h"

namespace rapid::eval {

/// Aggregated results of one method across several independently seeded
/// environments: per-seed means plus the cross-seed mean and standard
/// deviation for every metric.
struct MultiRunResult {
  std::string name;
  /// metric -> one mean per seed.
  std::map<std::string, std::vector<double>> per_seed_means;

  /// Cross-seed mean of a metric.
  double Mean(const std::string& metric) const;
  /// Cross-seed sample standard deviation of a metric.
  double StdDev(const std::string& metric) const;
};

/// A method factory: multi-run evaluation needs a *fresh* model per seed
/// (fitting mutates state). Called once per seed.
using MethodFactory = std::function<std::unique_ptr<rerank::Reranker>()>;

/// Runs `factory`'s method across environments built from `base_config`
/// with seeds `base_config.seed + i` for i in [0, num_seeds), fitting and
/// evaluating in each, and aggregates the per-seed metric means.
///
/// `make_ranker` builds the initial ranker per seed (also stateful).
/// This is the variance-aware counterpart of `FitAndEvaluate`: use it when
/// a conclusion must be robust to the environment draw, not just the
/// click draw.
std::vector<MultiRunResult> MultiSeedEvaluate(
    const PipelineConfig& base_config,
    const std::function<std::unique_ptr<rank::Ranker>()>& make_ranker,
    const std::vector<std::pair<std::string, MethodFactory>>& methods,
    int num_seeds, const std::vector<int>& ks = {5, 10});

/// Renders a mean +- std table across seeds.
std::string RenderMultiRun(const std::vector<MultiRunResult>& results,
                           const std::vector<std::string>& metrics,
                           const std::string& title);

}  // namespace rapid::eval

#endif  // RAPID_EVAL_MULTI_RUN_H_
