#include "eval/table.h"

#include <cassert>
#include <cstdio>
#include <sstream>

namespace rapid::eval {

ResultTable::ResultTable(std::vector<std::string> metrics)
    : metrics_(std::move(metrics)) {}

void ResultTable::AddRow(const MethodMetrics& m) { rows_.push_back(m); }

std::string ResultTable::Render(const std::string& title) const {
  std::ostringstream os;
  os << "== " << title << " ==\n";
  const int name_w = 12;
  const int col_w = 10;
  os << std::string(name_w, ' ');
  for (const std::string& m : metrics_) {
    os << " " << m << std::string(std::max<int>(1, col_w - 1 -
                                                static_cast<int>(m.size())),
                                  ' ');
  }
  os << "\n";

  // Best value per column (max).
  std::vector<double> best(metrics_.size(), -1e300);
  for (const MethodMetrics& row : rows_) {
    for (size_t c = 0; c < metrics_.size(); ++c) {
      best[c] = std::max(best[c], row.Mean(metrics_[c]));
    }
  }

  for (const MethodMetrics& row : rows_) {
    char name_buf[64];
    std::snprintf(name_buf, sizeof(name_buf), "%-*s", name_w,
                  row.name.c_str());
    os << name_buf;
    for (size_t c = 0; c < metrics_.size(); ++c) {
      const double v = row.Mean(metrics_[c]);
      char buf[32];
      std::snprintf(buf, sizeof(buf), " %8.4f%c", v,
                    v >= best[c] - 1e-12 ? '*' : ' ');
      os << buf;
    }
    os << "\n";
  }
  return os.str();
}

double ResultTable::ImprovementPercent(const std::string& a,
                                       const std::string& b,
                                       const std::string& metric) const {
  const MethodMetrics* ma = nullptr;
  const MethodMetrics* mb = nullptr;
  for (const MethodMetrics& row : rows_) {
    if (row.name == a) ma = &row;
    if (row.name == b) mb = &row;
  }
  assert(ma && mb);
  const double vb = mb->Mean(metric);
  if (vb == 0.0) return 0.0;
  return 100.0 * (ma->Mean(metric) - vb) / vb;
}

}  // namespace rapid::eval
