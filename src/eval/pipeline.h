#ifndef RAPID_EVAL_PIPELINE_H_
#define RAPID_EVAL_PIPELINE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "click/dcm.h"
#include "datagen/simulator.h"
#include "rankers/ranker.h"
#include "rerank/reranker.h"

namespace rapid::eval {

/// End-to-end experiment configuration: the synthetic universe, the DCM
/// click environment, and the initial-list length L.
struct PipelineConfig {
  data::SimConfig sim;
  click::DcmConfig dcm;
  /// Initial list length L (paper default 20).
  int list_len = 20;
  uint64_t seed = 1;
};

/// A prepared semi-synthetic experiment environment, following the paper's
/// protocol: generate the dataset, train the initial ranker on its split,
/// produce initial lists for the re-ranking train/test splits, simulate
/// training clicks with the ground-truth DCM, and fit the estimated DCM
/// (for `satis@k`) from those logs.
class Environment {
 public:
  /// Builds everything. `ranker` is trained inside; the environment keeps
  /// ownership.
  Environment(const PipelineConfig& config,
              std::unique_ptr<rank::Ranker> ranker);

  const data::Dataset& dataset() const { return data_; }
  const rank::Ranker& ranker() const { return *ranker_; }
  const click::GroundTruthClickModel& dcm() const { return *dcm_; }
  const click::EstimatedDcm& estimated_dcm() const { return est_dcm_; }
  /// Training lists (initial order) with simulated clicks.
  const std::vector<data::ImpressionList>& train_lists() const {
    return train_lists_;
  }
  /// Test lists (initial order), clicks left empty.
  const std::vector<data::ImpressionList>& test_lists() const {
    return test_lists_;
  }
  const PipelineConfig& config() const { return config_; }

 private:
  PipelineConfig config_;
  data::Dataset data_;
  std::unique_ptr<rank::Ranker> ranker_;
  std::unique_ptr<click::GroundTruthClickModel> dcm_;
  click::EstimatedDcm est_dcm_;
  std::vector<data::ImpressionList> train_lists_;
  std::vector<data::ImpressionList> test_lists_;
};

/// Per-method evaluation results: every metric keeps its per-request
/// values so means and paired significance tests are both available.
struct MethodMetrics {
  std::string name;
  /// Metric name ("click@5", "ndcg@10", "div@5", "satis@10", "rev@5", ...)
  /// -> per-request values, aligned across methods for paired tests.
  std::map<std::string, std::vector<float>> per_request;

  double Mean(const std::string& metric) const;
};

/// Evaluates a (fitted) re-ranker on the environment's test lists: re-ranks
/// each list, simulates clicks on the re-ranked order with the ground-truth
/// DCM (common random numbers across methods via per-request seeds), and
/// computes click/ndcg/div/satis[/rev]@k for each k in `ks`.
///
/// Click-based metrics are averaged over `num_click_realizations`
/// independent DCM simulations per request, suppressing click-sampling
/// noise so method differences reflect the lists, not the dice.
MethodMetrics EvaluateReranker(const Environment& env,
                               const rerank::Reranker& reranker,
                               const std::vector<int>& ks = {5, 10},
                               uint64_t eval_seed = 777,
                               int num_click_realizations = 8);

/// Convenience: fits the re-ranker on the environment's training lists and
/// evaluates it.
MethodMetrics FitAndEvaluate(const Environment& env,
                             rerank::Reranker& reranker,
                             const std::vector<int>& ks = {5, 10},
                             uint64_t fit_seed = 99,
                             uint64_t eval_seed = 777,
                             int num_click_realizations = 8);

/// Paired t-test p-value between two methods on one metric.
double CompareMethods(const MethodMetrics& a, const MethodMetrics& b,
                      const std::string& metric);

}  // namespace rapid::eval

#endif  // RAPID_EVAL_PIPELINE_H_
