#ifndef RAPID_PAGE_PAGE_H_
#define RAPID_PAGE_PAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "datagen/types.h"
#include "rerank/neural_base.h"
#include "rerank/reranker.h"

namespace rapid::page {

/// Page-level reranking: a *page* is several candidate lists (feed, ads,
/// banners) shown to one user together, so the user experiences their
/// topical redundancy jointly. RAPID's coverage function (Eq. 4) is
/// per-list; this subsystem extends it across sibling lists by sharing one
/// per-topic residual-mass vector for the whole page (see
/// `rerank::MarginalCoverageGain` / `rerank::AbsorbCoverage`): an item's
/// marginal diversity gain shrinks when a sibling list already covered its
/// topics.

/// How the cross-list greedy pass weighs relevance against coverage and
/// whether the coverage state is shared across the page.
struct PageRerankConfig {
  /// Relevance weight of the greedy objective
  /// `lambda * rel(v) + (1 - lambda) * gain(v)`; mirrors the DCM's
  /// attraction tradeoff.
  float lambda = 0.5f;
  /// Positions per list that receive the diversity treatment; 0 = every
  /// position. Positions past `top_k` are filled by pure relevance.
  int top_k = 0;
  /// Share one coverage state across sibling lists (the page-level pass).
  /// False = the independent per-list baseline: each list gets its own
  /// residual vector and an even `budget / num_lists` share of the budget.
  bool joint = true;
};

/// One page to rerank: the user, the candidate lists, and the user's
/// diversity budget — the total marginal-coverage mass (in mean-topic
/// units) the page may spend before the greedy pass falls back to pure
/// relevance. The budget is *per user* (scaled from their diversity
/// appetite by the session generator), and under the joint pass it is
/// allocated greedily across lists rather than split evenly.
struct PageRequest {
  int user_id = 0;
  float diversity_budget = 0.0f;
  /// Candidate lists; `items` and `scores` are meaningful.
  std::vector<data::ImpressionList> lists;
};

/// The reranked page plus its coverage diagnostics.
struct PageResult {
  /// Reranked item ids, one permutation per input list.
  std::vector<std::vector<int>> lists;
  /// Mean-over-topics coverage (Eq. 4) of the union of the treated list
  /// prefixes — what the user's cross-list coverage memory sees.
  float page_coverage = 0.0f;
  /// Cross-list redundancy in mean-topic units:
  /// `sum_l coverage(list_l) - coverage(union)`. Non-negative by
  /// subadditivity of probabilistic coverage; 0 means no topic mass is
  /// duplicated across sibling lists.
  float cross_list_redundancy = 0.0f;
  /// Marginal-coverage mass actually spent against the budget.
  float diversity_spent = 0.0f;
};

/// The cross-list greedy reranker. Borrows the dataset (must outlive it);
/// stateless otherwise, so one instance is safe to use concurrently.
class PageReranker {
 public:
  PageReranker(const data::Dataset& data, PageRerankConfig config = {})
      : data_(data), config_(config) {}

  /// Reranks a page from explicit per-item relevance in [0, 1] (row r
  /// aligned with `lists[r]`). Every item id must be inside the dataset's
  /// catalog. Round-robin across lists by position — the order a user
  /// scans a page — picking at each step the remaining item maximizing
  /// `lambda * rel + (1 - lambda) * MarginalCoverageGain(item, residual)`
  /// while budget remains, then absorbing the pick into the (shared or
  /// per-list) residual.
  PageResult Rerank(const std::vector<std::vector<int>>& lists,
                    const std::vector<std::vector<float>>& relevance,
                    float budget) const;

  /// Convenience over the neural path: scores every list of the page with
  /// one `NeuralReranker::ScoreBatch` call (the same micro-batched forward
  /// the serving tier uses), min-max normalizes each list's scores into
  /// [0, 1], and runs `Rerank`.
  PageResult RerankWithModel(const rerank::NeuralReranker& model,
                             const PageRequest& request) const;

  /// Rank-decay relevance for a list already ordered by a model:
  /// `rel[i] = (n - i) / n`. How the serving tier derives relevance from
  /// the router's returned permutations.
  static std::vector<float> RankRelevance(size_t n);

  const PageRerankConfig& config() const { return config_; }

 private:
  const data::Dataset& data_;
  PageRerankConfig config_;
};

/// Mean-over-topics probabilistic coverage of the *set union* of the given
/// `top_k` prefixes (whole lists when `top_k <= 0`). An item repeated
/// across sibling lists is absorbed once — duplicated impressions add no
/// coverage, which is what makes cross-list redundancy measurable.
float PageCoverage(const data::Dataset& data,
                   const std::vector<std::vector<int>>& lists, int top_k = 0);

/// `sum_l coverage(list_l) - coverage(union)` over the same prefixes; the
/// page's duplicated topic mass, >= 0.
float CrossListRedundancy(const data::Dataset& data,
                          const std::vector<std::vector<int>>& lists,
                          int top_k = 0);

}  // namespace rapid::page

#endif  // RAPID_PAGE_PAGE_H_
