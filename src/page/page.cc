#include "page/page.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

namespace rapid::page {

namespace {

/// Mean of a topic-residual vector turned back into coverage:
/// coverage_j = 1 - residual_j.
float MeanCoverage(const std::vector<float>& residual) {
  if (residual.empty()) return 0.0f;
  double covered = 0.0;
  for (const float r : residual) covered += 1.0 - r;
  return static_cast<float>(covered / static_cast<double>(residual.size()));
}

}  // namespace

std::vector<float> PageReranker::RankRelevance(size_t n) {
  std::vector<float> rel(n);
  for (size_t i = 0; i < n; ++i) {
    rel[i] = static_cast<float>(n - i) / static_cast<float>(n);
  }
  return rel;
}

PageResult PageReranker::Rerank(const std::vector<std::vector<int>>& lists,
                                const std::vector<std::vector<float>>& relevance,
                                float budget) const {
  const size_t num_lists = lists.size();
  const int m = data_.num_topics;
  PageResult result;
  result.lists.resize(num_lists);
  if (num_lists == 0) return result;
  if (!(budget >= 0.0f)) budget = 0.0f;  // Sanitizes NaN / negative input.

  // One shared residual for the joint pass; one per list (with an even
  // budget split) for the independent baseline.
  std::vector<std::vector<float>> residuals;
  std::vector<float> budgets;
  if (config_.joint) {
    residuals.assign(1, std::vector<float>(m, 1.0f));
    budgets.assign(1, budget);
  } else {
    residuals.assign(num_lists, std::vector<float>(m, 1.0f));
    budgets.assign(num_lists, budget / static_cast<float>(num_lists));
  }
  std::vector<float> spent(budgets.size(), 0.0f);
  // Item ids already placed per coverage state: a duplicate (the same
  // trending item surfacing on a sibling list) adds nothing to the set
  // union the page is scored on, so its gain is zero and it is absorbed
  // only once — keeping the greedy objective aligned with `PageCoverage`.
  std::vector<std::unordered_set<int>> shown(residuals.size());

  // Per-list remaining-candidate index sets, in input order so ties break
  // toward the higher-relevance (earlier) candidate.
  std::vector<std::vector<int>> remaining(num_lists);
  size_t longest = 0;
  for (size_t l = 0; l < num_lists; ++l) {
    remaining[l].resize(lists[l].size());
    std::iota(remaining[l].begin(), remaining[l].end(), 0);
    result.lists[l].reserve(lists[l].size());
    longest = std::max(longest, lists[l].size());
  }

  // Round-robin by position: position p of list 1, position p of list 2,
  // ... — the order a user scans a page row by row, so every list's early
  // positions compete for the same uncovered topic mass.
  for (size_t pos = 0; pos < longest; ++pos) {
    for (size_t l = 0; l < num_lists; ++l) {
      if (remaining[l].empty()) continue;
      const size_t state = config_.joint ? 0 : l;
      std::vector<float>& residual = residuals[state];
      const bool diversify =
          (config_.top_k <= 0 || pos < static_cast<size_t>(config_.top_k)) &&
          spent[state] < budgets[state];
      size_t best_at = 0;
      float best_obj = -1.0f, best_gain = 0.0f;
      for (size_t c = 0; c < remaining[l].size(); ++c) {
        const int idx = remaining[l][c];
        const float rel = relevance[l][idx];
        float obj = rel, gain = 0.0f;
        if (diversify) {
          if (shown[state].count(lists[l][idx]) == 0) {
            gain = rerank::MarginalCoverageGain(data_.item(lists[l][idx]),
                                                residual);
          }
          obj = config_.lambda * rel + (1.0f - config_.lambda) * gain;
        }
        if (obj > best_obj) {
          best_obj = obj;
          best_gain = gain;
          best_at = c;
        }
      }
      const int idx = remaining[l][best_at];
      remaining[l].erase(remaining[l].begin() +
                         static_cast<ptrdiff_t>(best_at));
      result.lists[l].push_back(lists[l][idx]);
      if (diversify) spent[state] += best_gain;
      // The coverage state absorbs every *distinct* shown item
      // (diversified or not): the user sees the whole page, so later
      // marginal gains must discount everything already placed.
      if (shown[state].insert(lists[l][idx]).second) {
        rerank::AbsorbCoverage(data_.item(lists[l][idx]), &residual);
      }
    }
  }

  result.diversity_spent =
      std::accumulate(spent.begin(), spent.end(), 0.0f);
  result.page_coverage = PageCoverage(data_, result.lists, config_.top_k);
  result.cross_list_redundancy =
      CrossListRedundancy(data_, result.lists, config_.top_k);
  return result;
}

PageResult PageReranker::RerankWithModel(const rerank::NeuralReranker& model,
                                         const PageRequest& request) const {
  std::vector<const data::ImpressionList*> ptrs;
  ptrs.reserve(request.lists.size());
  for (const data::ImpressionList& list : request.lists) {
    ptrs.push_back(&list);
  }
  const std::vector<std::vector<float>> scores =
      model.ScoreBatch(data_, ptrs);
  std::vector<std::vector<int>> items(request.lists.size());
  std::vector<std::vector<float>> relevance(request.lists.size());
  for (size_t l = 0; l < request.lists.size(); ++l) {
    items[l] = request.lists[l].items;
    // Min-max normalize into [0,1] (constant lists map to all-0.5), the
    // same relevance estimate the heuristic rerankers use.
    data::ImpressionList scored;
    scored.items = request.lists[l].items;
    scored.scores = scores[l];
    relevance[l] = rerank::NormalizedScores(scored);
  }
  return Rerank(items, relevance, request.diversity_budget);
}

float PageCoverage(const data::Dataset& data,
                   const std::vector<std::vector<int>>& lists, int top_k) {
  // Set union: an item repeated across sibling lists (or within one) is
  // absorbed once. Folding every *occurrence* would keep crediting
  // duplicated topic mass — probabilistic coverage never saturates — and
  // a redundancy metric built on it would reward showing the same
  // trending item on every list.
  std::vector<float> residual(data.num_topics, 1.0f);
  std::unordered_set<int> seen;
  for (const std::vector<int>& list : lists) {
    const size_t k = top_k <= 0
                         ? list.size()
                         : std::min(list.size(), static_cast<size_t>(top_k));
    for (size_t i = 0; i < k; ++i) {
      if (!seen.insert(list[i]).second) continue;
      rerank::AbsorbCoverage(data.item(list[i]), &residual);
    }
  }
  return MeanCoverage(residual);
}

float CrossListRedundancy(const data::Dataset& data,
                          const std::vector<std::vector<int>>& lists,
                          int top_k) {
  float sum_own = 0.0f;
  for (const std::vector<int>& list : lists) {
    sum_own += PageCoverage(data, {list}, top_k);
  }
  return std::max(0.0f, sum_own - PageCoverage(data, lists, top_k));
}

}  // namespace rapid::page
