# Empty compiler generated dependencies file for run_experiment.
# This may be replaced when dependencies are built.
