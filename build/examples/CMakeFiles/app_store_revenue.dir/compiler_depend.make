# Empty compiler generated dependencies file for app_store_revenue.
# This may be replaced when dependencies are built.
