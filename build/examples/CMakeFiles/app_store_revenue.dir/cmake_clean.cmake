file(REMOVE_RECURSE
  "CMakeFiles/app_store_revenue.dir/app_store_revenue.cpp.o"
  "CMakeFiles/app_store_revenue.dir/app_store_revenue.cpp.o.d"
  "app_store_revenue"
  "app_store_revenue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_store_revenue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
