file(REMOVE_RECURSE
  "CMakeFiles/personalized_vs_uniform.dir/personalized_vs_uniform.cpp.o"
  "CMakeFiles/personalized_vs_uniform.dir/personalized_vs_uniform.cpp.o.d"
  "personalized_vs_uniform"
  "personalized_vs_uniform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/personalized_vs_uniform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
