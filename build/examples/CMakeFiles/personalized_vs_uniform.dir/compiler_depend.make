# Empty compiler generated dependencies file for personalized_vs_uniform.
# This may be replaced when dependencies are built.
