# Empty compiler generated dependencies file for news_feed_diversification.
# This may be replaced when dependencies are built.
