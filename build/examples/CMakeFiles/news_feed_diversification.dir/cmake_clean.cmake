file(REMOVE_RECURSE
  "CMakeFiles/news_feed_diversification.dir/news_feed_diversification.cpp.o"
  "CMakeFiles/news_feed_diversification.dir/news_feed_diversification.cpp.o.d"
  "news_feed_diversification"
  "news_feed_diversification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/news_feed_diversification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
