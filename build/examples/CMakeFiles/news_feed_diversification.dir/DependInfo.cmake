
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/news_feed_diversification.cpp" "examples/CMakeFiles/news_feed_diversification.dir/news_feed_diversification.cpp.o" "gcc" "examples/CMakeFiles/news_feed_diversification.dir/news_feed_diversification.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/rapid_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rapid_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rerank/CMakeFiles/rapid_rerank.dir/DependInfo.cmake"
  "/root/repo/build/src/rankers/CMakeFiles/rapid_rankers.dir/DependInfo.cmake"
  "/root/repo/build/src/click/CMakeFiles/rapid_click.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/rapid_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/rapid_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/rapid_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
