file(REMOVE_RECURSE
  "CMakeFiles/rapid_core.dir/diversity_function.cc.o"
  "CMakeFiles/rapid_core.dir/diversity_function.cc.o.d"
  "CMakeFiles/rapid_core.dir/rapid.cc.o"
  "CMakeFiles/rapid_core.dir/rapid.cc.o.d"
  "librapid_core.a"
  "librapid_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rapid_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
