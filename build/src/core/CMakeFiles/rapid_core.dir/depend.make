# Empty dependencies file for rapid_core.
# This may be replaced when dependencies are built.
