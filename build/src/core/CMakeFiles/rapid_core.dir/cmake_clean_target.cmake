file(REMOVE_RECURSE
  "librapid_core.a"
)
