# Empty dependencies file for rapid_rankers.
# This may be replaced when dependencies are built.
