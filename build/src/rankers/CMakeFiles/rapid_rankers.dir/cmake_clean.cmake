file(REMOVE_RECURSE
  "CMakeFiles/rapid_rankers.dir/din.cc.o"
  "CMakeFiles/rapid_rankers.dir/din.cc.o.d"
  "CMakeFiles/rapid_rankers.dir/lambdamart.cc.o"
  "CMakeFiles/rapid_rankers.dir/lambdamart.cc.o.d"
  "CMakeFiles/rapid_rankers.dir/ranker.cc.o"
  "CMakeFiles/rapid_rankers.dir/ranker.cc.o.d"
  "CMakeFiles/rapid_rankers.dir/regression_tree.cc.o"
  "CMakeFiles/rapid_rankers.dir/regression_tree.cc.o.d"
  "CMakeFiles/rapid_rankers.dir/svmrank.cc.o"
  "CMakeFiles/rapid_rankers.dir/svmrank.cc.o.d"
  "librapid_rankers.a"
  "librapid_rankers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rapid_rankers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
