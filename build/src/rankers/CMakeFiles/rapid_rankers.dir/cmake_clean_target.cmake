file(REMOVE_RECURSE
  "librapid_rankers.a"
)
