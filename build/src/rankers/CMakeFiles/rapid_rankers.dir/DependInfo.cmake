
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rankers/din.cc" "src/rankers/CMakeFiles/rapid_rankers.dir/din.cc.o" "gcc" "src/rankers/CMakeFiles/rapid_rankers.dir/din.cc.o.d"
  "/root/repo/src/rankers/lambdamart.cc" "src/rankers/CMakeFiles/rapid_rankers.dir/lambdamart.cc.o" "gcc" "src/rankers/CMakeFiles/rapid_rankers.dir/lambdamart.cc.o.d"
  "/root/repo/src/rankers/ranker.cc" "src/rankers/CMakeFiles/rapid_rankers.dir/ranker.cc.o" "gcc" "src/rankers/CMakeFiles/rapid_rankers.dir/ranker.cc.o.d"
  "/root/repo/src/rankers/regression_tree.cc" "src/rankers/CMakeFiles/rapid_rankers.dir/regression_tree.cc.o" "gcc" "src/rankers/CMakeFiles/rapid_rankers.dir/regression_tree.cc.o.d"
  "/root/repo/src/rankers/svmrank.cc" "src/rankers/CMakeFiles/rapid_rankers.dir/svmrank.cc.o" "gcc" "src/rankers/CMakeFiles/rapid_rankers.dir/svmrank.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datagen/CMakeFiles/rapid_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/rapid_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
