file(REMOVE_RECURSE
  "CMakeFiles/rapid_nn.dir/embedding.cc.o"
  "CMakeFiles/rapid_nn.dir/embedding.cc.o.d"
  "CMakeFiles/rapid_nn.dir/gradcheck.cc.o"
  "CMakeFiles/rapid_nn.dir/gradcheck.cc.o.d"
  "CMakeFiles/rapid_nn.dir/layers.cc.o"
  "CMakeFiles/rapid_nn.dir/layers.cc.o.d"
  "CMakeFiles/rapid_nn.dir/matrix.cc.o"
  "CMakeFiles/rapid_nn.dir/matrix.cc.o.d"
  "CMakeFiles/rapid_nn.dir/ops.cc.o"
  "CMakeFiles/rapid_nn.dir/ops.cc.o.d"
  "CMakeFiles/rapid_nn.dir/optimizer.cc.o"
  "CMakeFiles/rapid_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/rapid_nn.dir/serialize.cc.o"
  "CMakeFiles/rapid_nn.dir/serialize.cc.o.d"
  "CMakeFiles/rapid_nn.dir/variable.cc.o"
  "CMakeFiles/rapid_nn.dir/variable.cc.o.d"
  "librapid_nn.a"
  "librapid_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rapid_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
