file(REMOVE_RECURSE
  "librapid_nn.a"
)
