# Empty compiler generated dependencies file for rapid_nn.
# This may be replaced when dependencies are built.
