
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/embedding.cc" "src/nn/CMakeFiles/rapid_nn.dir/embedding.cc.o" "gcc" "src/nn/CMakeFiles/rapid_nn.dir/embedding.cc.o.d"
  "/root/repo/src/nn/gradcheck.cc" "src/nn/CMakeFiles/rapid_nn.dir/gradcheck.cc.o" "gcc" "src/nn/CMakeFiles/rapid_nn.dir/gradcheck.cc.o.d"
  "/root/repo/src/nn/layers.cc" "src/nn/CMakeFiles/rapid_nn.dir/layers.cc.o" "gcc" "src/nn/CMakeFiles/rapid_nn.dir/layers.cc.o.d"
  "/root/repo/src/nn/matrix.cc" "src/nn/CMakeFiles/rapid_nn.dir/matrix.cc.o" "gcc" "src/nn/CMakeFiles/rapid_nn.dir/matrix.cc.o.d"
  "/root/repo/src/nn/ops.cc" "src/nn/CMakeFiles/rapid_nn.dir/ops.cc.o" "gcc" "src/nn/CMakeFiles/rapid_nn.dir/ops.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/nn/CMakeFiles/rapid_nn.dir/optimizer.cc.o" "gcc" "src/nn/CMakeFiles/rapid_nn.dir/optimizer.cc.o.d"
  "/root/repo/src/nn/serialize.cc" "src/nn/CMakeFiles/rapid_nn.dir/serialize.cc.o" "gcc" "src/nn/CMakeFiles/rapid_nn.dir/serialize.cc.o.d"
  "/root/repo/src/nn/variable.cc" "src/nn/CMakeFiles/rapid_nn.dir/variable.cc.o" "gcc" "src/nn/CMakeFiles/rapid_nn.dir/variable.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
