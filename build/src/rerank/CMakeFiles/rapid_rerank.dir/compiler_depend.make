# Empty compiler generated dependencies file for rapid_rerank.
# This may be replaced when dependencies are built.
