# Empty dependencies file for rapid_rerank.
# This may be replaced when dependencies are built.
