file(REMOVE_RECURSE
  "librapid_rerank.a"
)
