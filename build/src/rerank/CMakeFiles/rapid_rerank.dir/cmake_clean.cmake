file(REMOVE_RECURSE
  "CMakeFiles/rapid_rerank.dir/dpp.cc.o"
  "CMakeFiles/rapid_rerank.dir/dpp.cc.o.d"
  "CMakeFiles/rapid_rerank.dir/mmr.cc.o"
  "CMakeFiles/rapid_rerank.dir/mmr.cc.o.d"
  "CMakeFiles/rapid_rerank.dir/neural_base.cc.o"
  "CMakeFiles/rapid_rerank.dir/neural_base.cc.o.d"
  "CMakeFiles/rapid_rerank.dir/neural_models.cc.o"
  "CMakeFiles/rapid_rerank.dir/neural_models.cc.o.d"
  "CMakeFiles/rapid_rerank.dir/pdgan.cc.o"
  "CMakeFiles/rapid_rerank.dir/pdgan.cc.o.d"
  "CMakeFiles/rapid_rerank.dir/reranker.cc.o"
  "CMakeFiles/rapid_rerank.dir/reranker.cc.o.d"
  "CMakeFiles/rapid_rerank.dir/seq2slate.cc.o"
  "CMakeFiles/rapid_rerank.dir/seq2slate.cc.o.d"
  "CMakeFiles/rapid_rerank.dir/ssd.cc.o"
  "CMakeFiles/rapid_rerank.dir/ssd.cc.o.d"
  "librapid_rerank.a"
  "librapid_rerank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rapid_rerank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
