
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rerank/dpp.cc" "src/rerank/CMakeFiles/rapid_rerank.dir/dpp.cc.o" "gcc" "src/rerank/CMakeFiles/rapid_rerank.dir/dpp.cc.o.d"
  "/root/repo/src/rerank/mmr.cc" "src/rerank/CMakeFiles/rapid_rerank.dir/mmr.cc.o" "gcc" "src/rerank/CMakeFiles/rapid_rerank.dir/mmr.cc.o.d"
  "/root/repo/src/rerank/neural_base.cc" "src/rerank/CMakeFiles/rapid_rerank.dir/neural_base.cc.o" "gcc" "src/rerank/CMakeFiles/rapid_rerank.dir/neural_base.cc.o.d"
  "/root/repo/src/rerank/neural_models.cc" "src/rerank/CMakeFiles/rapid_rerank.dir/neural_models.cc.o" "gcc" "src/rerank/CMakeFiles/rapid_rerank.dir/neural_models.cc.o.d"
  "/root/repo/src/rerank/pdgan.cc" "src/rerank/CMakeFiles/rapid_rerank.dir/pdgan.cc.o" "gcc" "src/rerank/CMakeFiles/rapid_rerank.dir/pdgan.cc.o.d"
  "/root/repo/src/rerank/reranker.cc" "src/rerank/CMakeFiles/rapid_rerank.dir/reranker.cc.o" "gcc" "src/rerank/CMakeFiles/rapid_rerank.dir/reranker.cc.o.d"
  "/root/repo/src/rerank/seq2slate.cc" "src/rerank/CMakeFiles/rapid_rerank.dir/seq2slate.cc.o" "gcc" "src/rerank/CMakeFiles/rapid_rerank.dir/seq2slate.cc.o.d"
  "/root/repo/src/rerank/ssd.cc" "src/rerank/CMakeFiles/rapid_rerank.dir/ssd.cc.o" "gcc" "src/rerank/CMakeFiles/rapid_rerank.dir/ssd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datagen/CMakeFiles/rapid_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/rapid_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
