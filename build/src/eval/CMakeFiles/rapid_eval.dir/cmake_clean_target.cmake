file(REMOVE_RECURSE
  "librapid_eval.a"
)
