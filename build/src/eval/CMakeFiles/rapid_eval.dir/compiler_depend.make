# Empty compiler generated dependencies file for rapid_eval.
# This may be replaced when dependencies are built.
