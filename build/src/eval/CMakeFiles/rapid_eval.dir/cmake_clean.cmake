file(REMOVE_RECURSE
  "CMakeFiles/rapid_eval.dir/multi_run.cc.o"
  "CMakeFiles/rapid_eval.dir/multi_run.cc.o.d"
  "CMakeFiles/rapid_eval.dir/pipeline.cc.o"
  "CMakeFiles/rapid_eval.dir/pipeline.cc.o.d"
  "CMakeFiles/rapid_eval.dir/table.cc.o"
  "CMakeFiles/rapid_eval.dir/table.cc.o.d"
  "librapid_eval.a"
  "librapid_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rapid_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
