file(REMOVE_RECURSE
  "librapid_click.a"
)
