file(REMOVE_RECURSE
  "CMakeFiles/rapid_click.dir/dcm.cc.o"
  "CMakeFiles/rapid_click.dir/dcm.cc.o.d"
  "librapid_click.a"
  "librapid_click.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rapid_click.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
