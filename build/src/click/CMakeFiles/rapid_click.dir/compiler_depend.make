# Empty compiler generated dependencies file for rapid_click.
# This may be replaced when dependencies are built.
