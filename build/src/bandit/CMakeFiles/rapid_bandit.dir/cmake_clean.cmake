file(REMOVE_RECURSE
  "CMakeFiles/rapid_bandit.dir/linear_rapid.cc.o"
  "CMakeFiles/rapid_bandit.dir/linear_rapid.cc.o.d"
  "librapid_bandit.a"
  "librapid_bandit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rapid_bandit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
