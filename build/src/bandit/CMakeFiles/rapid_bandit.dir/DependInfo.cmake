
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bandit/linear_rapid.cc" "src/bandit/CMakeFiles/rapid_bandit.dir/linear_rapid.cc.o" "gcc" "src/bandit/CMakeFiles/rapid_bandit.dir/linear_rapid.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datagen/CMakeFiles/rapid_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/click/CMakeFiles/rapid_click.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
