file(REMOVE_RECURSE
  "librapid_bandit.a"
)
