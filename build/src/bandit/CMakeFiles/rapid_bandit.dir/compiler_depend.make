# Empty compiler generated dependencies file for rapid_bandit.
# This may be replaced when dependencies are built.
