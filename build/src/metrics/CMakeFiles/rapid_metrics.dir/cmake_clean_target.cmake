file(REMOVE_RECURSE
  "librapid_metrics.a"
)
