# Empty compiler generated dependencies file for rapid_metrics.
# This may be replaced when dependencies are built.
