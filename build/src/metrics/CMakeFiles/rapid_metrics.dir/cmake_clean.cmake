file(REMOVE_RECURSE
  "CMakeFiles/rapid_metrics.dir/metrics.cc.o"
  "CMakeFiles/rapid_metrics.dir/metrics.cc.o.d"
  "librapid_metrics.a"
  "librapid_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rapid_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
