
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/gmm.cc" "src/datagen/CMakeFiles/rapid_datagen.dir/gmm.cc.o" "gcc" "src/datagen/CMakeFiles/rapid_datagen.dir/gmm.cc.o.d"
  "/root/repo/src/datagen/history.cc" "src/datagen/CMakeFiles/rapid_datagen.dir/history.cc.o" "gcc" "src/datagen/CMakeFiles/rapid_datagen.dir/history.cc.o.d"
  "/root/repo/src/datagen/simulator.cc" "src/datagen/CMakeFiles/rapid_datagen.dir/simulator.cc.o" "gcc" "src/datagen/CMakeFiles/rapid_datagen.dir/simulator.cc.o.d"
  "/root/repo/src/datagen/types.cc" "src/datagen/CMakeFiles/rapid_datagen.dir/types.cc.o" "gcc" "src/datagen/CMakeFiles/rapid_datagen.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
