file(REMOVE_RECURSE
  "CMakeFiles/rapid_datagen.dir/gmm.cc.o"
  "CMakeFiles/rapid_datagen.dir/gmm.cc.o.d"
  "CMakeFiles/rapid_datagen.dir/history.cc.o"
  "CMakeFiles/rapid_datagen.dir/history.cc.o.d"
  "CMakeFiles/rapid_datagen.dir/simulator.cc.o"
  "CMakeFiles/rapid_datagen.dir/simulator.cc.o.d"
  "CMakeFiles/rapid_datagen.dir/types.cc.o"
  "CMakeFiles/rapid_datagen.dir/types.cc.o.d"
  "librapid_datagen.a"
  "librapid_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rapid_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
