# Empty compiler generated dependencies file for rapid_datagen.
# This may be replaced when dependencies are built.
