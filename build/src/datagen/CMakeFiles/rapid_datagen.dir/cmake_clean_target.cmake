file(REMOVE_RECURSE
  "librapid_datagen.a"
)
