file(REMOVE_RECURSE
  "CMakeFiles/bench_nn_micro.dir/bench_nn_micro.cc.o"
  "CMakeFiles/bench_nn_micro.dir/bench_nn_micro.cc.o.d"
  "bench_nn_micro"
  "bench_nn_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nn_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
