# Empty dependencies file for bench_nn_micro.
# This may be replaced when dependencies are built.
