file(REMOVE_RECURSE
  "CMakeFiles/bench_regret.dir/bench_regret.cc.o"
  "CMakeFiles/bench_regret.dir/bench_regret.cc.o.d"
  "bench_regret"
  "bench_regret.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_regret.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
