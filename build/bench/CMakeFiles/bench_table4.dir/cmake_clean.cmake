file(REMOVE_RECURSE
  "CMakeFiles/bench_table4.dir/bench_table4.cc.o"
  "CMakeFiles/bench_table4.dir/bench_table4.cc.o.d"
  "bench_table4"
  "bench_table4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
