# Empty dependencies file for bench_table4.
# This may be replaced when dependencies are built.
