file(REMOVE_RECURSE
  "CMakeFiles/rapid_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/rapid_bench_common.dir/bench_common.cc.o.d"
  "librapid_bench_common.a"
  "librapid_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rapid_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
