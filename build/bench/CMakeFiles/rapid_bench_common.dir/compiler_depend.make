# Empty compiler generated dependencies file for rapid_bench_common.
# This may be replaced when dependencies are built.
