file(REMOVE_RECURSE
  "librapid_bench_common.a"
)
