file(REMOVE_RECURSE
  "CMakeFiles/bench_robustness_cascade.dir/bench_robustness_cascade.cc.o"
  "CMakeFiles/bench_robustness_cascade.dir/bench_robustness_cascade.cc.o.d"
  "bench_robustness_cascade"
  "bench_robustness_cascade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_robustness_cascade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
