# Empty compiler generated dependencies file for bench_robustness_cascade.
# This may be replaced when dependencies are built.
