# Empty compiler generated dependencies file for bench_ablation_diversity.
# This may be replaced when dependencies are built.
