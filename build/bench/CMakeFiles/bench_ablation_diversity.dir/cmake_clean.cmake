file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_diversity.dir/bench_ablation_diversity.cc.o"
  "CMakeFiles/bench_ablation_diversity.dir/bench_ablation_diversity.cc.o.d"
  "bench_ablation_diversity"
  "bench_ablation_diversity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_diversity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
