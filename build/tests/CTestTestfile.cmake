# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/nn_matrix_test[1]_include.cmake")
include("/root/repo/build/tests/nn_autograd_test[1]_include.cmake")
include("/root/repo/build/tests/nn_layers_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/click_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/rankers_test[1]_include.cmake")
include("/root/repo/build/tests/rerank_test[1]_include.cmake")
include("/root/repo/build/tests/rapid_core_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/bandit_test[1]_include.cmake")
include("/root/repo/build/tests/diversity_function_test[1]_include.cmake")
include("/root/repo/build/tests/persistence_test[1]_include.cmake")
include("/root/repo/build/tests/nn_embedding_test[1]_include.cmake")
include("/root/repo/build/tests/edgecases_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/multi_run_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/nn_optimizer_extra_test[1]_include.cmake")
