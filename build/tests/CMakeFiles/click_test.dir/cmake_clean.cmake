file(REMOVE_RECURSE
  "CMakeFiles/click_test.dir/click_test.cc.o"
  "CMakeFiles/click_test.dir/click_test.cc.o.d"
  "click_test"
  "click_test.pdb"
  "click_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/click_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
