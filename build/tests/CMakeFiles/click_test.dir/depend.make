# Empty dependencies file for click_test.
# This may be replaced when dependencies are built.
