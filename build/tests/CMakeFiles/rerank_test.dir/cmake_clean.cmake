file(REMOVE_RECURSE
  "CMakeFiles/rerank_test.dir/rerank_test.cc.o"
  "CMakeFiles/rerank_test.dir/rerank_test.cc.o.d"
  "rerank_test"
  "rerank_test.pdb"
  "rerank_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rerank_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
