# Empty dependencies file for rerank_test.
# This may be replaced when dependencies are built.
