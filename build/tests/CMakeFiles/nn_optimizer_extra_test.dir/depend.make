# Empty dependencies file for nn_optimizer_extra_test.
# This may be replaced when dependencies are built.
