file(REMOVE_RECURSE
  "CMakeFiles/nn_optimizer_extra_test.dir/nn_optimizer_extra_test.cc.o"
  "CMakeFiles/nn_optimizer_extra_test.dir/nn_optimizer_extra_test.cc.o.d"
  "nn_optimizer_extra_test"
  "nn_optimizer_extra_test.pdb"
  "nn_optimizer_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_optimizer_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
