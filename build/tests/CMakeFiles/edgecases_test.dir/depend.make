# Empty dependencies file for edgecases_test.
# This may be replaced when dependencies are built.
