file(REMOVE_RECURSE
  "CMakeFiles/edgecases_test.dir/edgecases_test.cc.o"
  "CMakeFiles/edgecases_test.dir/edgecases_test.cc.o.d"
  "edgecases_test"
  "edgecases_test.pdb"
  "edgecases_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgecases_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
