file(REMOVE_RECURSE
  "CMakeFiles/nn_matrix_test.dir/nn_matrix_test.cc.o"
  "CMakeFiles/nn_matrix_test.dir/nn_matrix_test.cc.o.d"
  "nn_matrix_test"
  "nn_matrix_test.pdb"
  "nn_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
