# Empty compiler generated dependencies file for diversity_function_test.
# This may be replaced when dependencies are built.
