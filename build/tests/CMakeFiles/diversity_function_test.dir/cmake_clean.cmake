file(REMOVE_RECURSE
  "CMakeFiles/diversity_function_test.dir/diversity_function_test.cc.o"
  "CMakeFiles/diversity_function_test.dir/diversity_function_test.cc.o.d"
  "diversity_function_test"
  "diversity_function_test.pdb"
  "diversity_function_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diversity_function_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
