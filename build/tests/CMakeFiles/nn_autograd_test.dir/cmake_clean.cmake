file(REMOVE_RECURSE
  "CMakeFiles/nn_autograd_test.dir/nn_autograd_test.cc.o"
  "CMakeFiles/nn_autograd_test.dir/nn_autograd_test.cc.o.d"
  "nn_autograd_test"
  "nn_autograd_test.pdb"
  "nn_autograd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_autograd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
