# Empty compiler generated dependencies file for nn_autograd_test.
# This may be replaced when dependencies are built.
