file(REMOVE_RECURSE
  "CMakeFiles/multi_run_test.dir/multi_run_test.cc.o"
  "CMakeFiles/multi_run_test.dir/multi_run_test.cc.o.d"
  "multi_run_test"
  "multi_run_test.pdb"
  "multi_run_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_run_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
