# Empty compiler generated dependencies file for multi_run_test.
# This may be replaced when dependencies are built.
