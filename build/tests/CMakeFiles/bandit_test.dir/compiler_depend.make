# Empty compiler generated dependencies file for bandit_test.
# This may be replaced when dependencies are built.
