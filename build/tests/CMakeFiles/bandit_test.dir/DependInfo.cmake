
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bandit_test.cc" "tests/CMakeFiles/bandit_test.dir/bandit_test.cc.o" "gcc" "tests/CMakeFiles/bandit_test.dir/bandit_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bandit/CMakeFiles/rapid_bandit.dir/DependInfo.cmake"
  "/root/repo/build/src/click/CMakeFiles/rapid_click.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/rapid_datagen.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
