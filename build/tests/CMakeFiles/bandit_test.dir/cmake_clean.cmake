file(REMOVE_RECURSE
  "CMakeFiles/bandit_test.dir/bandit_test.cc.o"
  "CMakeFiles/bandit_test.dir/bandit_test.cc.o.d"
  "bandit_test"
  "bandit_test.pdb"
  "bandit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bandit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
