file(REMOVE_RECURSE
  "CMakeFiles/nn_embedding_test.dir/nn_embedding_test.cc.o"
  "CMakeFiles/nn_embedding_test.dir/nn_embedding_test.cc.o.d"
  "nn_embedding_test"
  "nn_embedding_test.pdb"
  "nn_embedding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_embedding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
