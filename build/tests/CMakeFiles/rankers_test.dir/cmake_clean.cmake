file(REMOVE_RECURSE
  "CMakeFiles/rankers_test.dir/rankers_test.cc.o"
  "CMakeFiles/rankers_test.dir/rankers_test.cc.o.d"
  "rankers_test"
  "rankers_test.pdb"
  "rankers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rankers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
