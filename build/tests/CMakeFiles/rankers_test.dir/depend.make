# Empty dependencies file for rankers_test.
# This may be replaced when dependencies are built.
