# Empty dependencies file for rapid_core_test.
# This may be replaced when dependencies are built.
