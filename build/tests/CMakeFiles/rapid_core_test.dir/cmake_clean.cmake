file(REMOVE_RECURSE
  "CMakeFiles/rapid_core_test.dir/rapid_core_test.cc.o"
  "CMakeFiles/rapid_core_test.dir/rapid_core_test.cc.o.d"
  "rapid_core_test"
  "rapid_core_test.pdb"
  "rapid_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rapid_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
