#!/usr/bin/env python3
"""Perf-trajectory trend gate over the committed ledger.

Compares the most recent entry under perf/ledger/ (filenames start with a
UTC timestamp, so lexicographic order is chronological) against the
*median* of the preceding window of entries (``--window``, default 5) and
fails when a latency or throughput metric regressed beyond the threshold:

  * keys ending in ``p99_us``          -- lower is better
  * keys ending in ``throughput_rps``  -- higher is better

The windowed median makes the baseline robust to one anomalously fast or
slow historical run: a single lucky entry can no longer make every
subsequent run look like a regression, and a single unlucky one cannot
mask a real slide. With a window of 1 this degenerates to the previous
pairwise behaviour.

A flagged metric must regress beyond the threshold against *both* the
windowed median and the best window observation (lowest p99 / highest
throughput). The window entries sample the same machine-noise
distribution as the new run -- on a single-core CI box back-to-back runs
of an identical binary can differ by 40%+ -- so a new value that some
recent run already matched is within observed variance, while a genuine
code regression lands worse than every recent observation.

Metrics are matched per bench (by the ``"bench"`` field of each entry in
the ledger's ``benches`` array) and per JSON path, so adding a new bench
or a new metric never trips the gate -- only a metric present in the
latest entry *and* at least one window entry can regress. Sub-floor p99s
(microsecond-scale cache hits and the like) are skipped: at that
magnitude scheduler noise swamps any signal. A p99 regression must also
move by at least ``--min-delta-us`` in absolute terms -- the serving
metrics histogram is log-bucketed, so at millisecond magnitudes one
bucket step between adjacent runs already exceeds a 20% ratio without
meaning anything.

Usage:
  perf/ledger_trend.py [--ledger-dir DIR] [--threshold 0.20]
                       [--window 5] [--min-p99-us 200]
                       [--min-delta-us 1000]

Exit status: 0 = no regression (or fewer than two entries), 1 =
regression, 2 = malformed ledger. Registered as the tier-2 ctest target
``perf_ledger_trend`` (run with ``ctest -C perf``).
"""

import argparse
import json
import os
import statistics
import sys


def collect_metrics(node, path, out):
    """Flattens numeric p99/throughput leaves into {json.path: value}."""
    if isinstance(node, dict):
        for key, value in node.items():
            collect_metrics(value, f"{path}.{key}" if path else key, out)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            collect_metrics(value, f"{path}[{i}]", out)
    elif isinstance(node, (int, float)):
        if path.endswith("p99_us") or path.endswith("throughput_rps"):
            out[path] = float(node)


def entry_metrics(ledger):
    """{bench_name: {metric_path: value}} for one ledger file."""
    out = {}
    for bench in ledger.get("benches", []):
        name = bench.get("bench", "?")
        metrics = {}
        collect_metrics(bench, "", metrics)
        out[name] = metrics
    return out


def window_baseline(window_entries):
    """Per-(bench, path) samples across the window entries that have it."""
    samples = {}
    for entry in window_entries:
        for bench, metrics in entry.items():
            for path, value in metrics.items():
                samples.setdefault((bench, path), []).append(value)
    return samples


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    default_dir = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                               "ledger")
    parser.add_argument("--ledger-dir", default=default_dir)
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="fractional regression that fails the gate")
    parser.add_argument("--window", type=int, default=5,
                        help="history entries (before the latest) whose "
                             "median forms the baseline")
    parser.add_argument("--min-p99-us", type=float, default=200.0,
                        help="ignore p99 metrics below this baseline")
    parser.add_argument("--min-delta-us", type=float, default=1000.0,
                        help="a p99 regression must also grow by this many "
                             "microseconds (histogram-bucket noise guard)")
    args = parser.parse_args()
    if args.window < 1:
        print("ledger_trend: --window must be >= 1")
        return 2

    try:
        files = sorted(f for f in os.listdir(args.ledger_dir)
                       if f.endswith(".json"))
    except FileNotFoundError:
        print(f"ledger_trend: no ledger dir at {args.ledger_dir}")
        return 0
    if len(files) < 2:
        print(f"ledger_trend: {len(files)} entr{'y' if len(files) == 1 else 'ies'}"
              " in the ledger; need two to diff -- skipping")
        return 0

    curr_file = files[-1]
    window_files = files[-1 - args.window:-1]
    entries = []
    for name in window_files + [curr_file]:
        try:
            with open(os.path.join(args.ledger_dir, name)) as f:
                entries.append(entry_metrics(json.load(f)))
        except (OSError, json.JSONDecodeError) as err:
            print(f"ledger_trend: cannot read {name}: {err}")
            return 2
    curr = entries[-1]
    baseline = window_baseline(entries[:-1])

    print(f"ledger_trend: median of {len(window_files)} "
          f"({window_files[0]} .. {window_files[-1]}) -> {curr_file} "
          f"(threshold {args.threshold:.0%})")
    regressions = []
    compared = 0
    for (bench, path), samples in sorted(baseline.items()):
        curr_metrics = curr.get(bench)
        if curr_metrics is None:
            continue
        new = curr_metrics.get(path)
        old = statistics.median(samples)
        if new is None or old <= 0.0:
            continue
        if path.endswith("p99_us"):
            if old < args.min_p99_us:
                continue  # Microsecond-scale noise, not signal.
            best = min(samples)
            ratio = new / old
            worse = (ratio > 1.0 + args.threshold and
                     new - old >= args.min_delta_us and
                     best > 0.0 and new / best > 1.0 + args.threshold)
            arrow = "p99"
        else:
            best = max(samples)
            ratio = new / old
            worse = (ratio < 1.0 - args.threshold and
                     new / best < 1.0 - args.threshold)
            arrow = "rps"
        compared += 1
        status = "REGRESSED" if worse else "ok"
        print(f"  [{bench}] {path}: median {old:.1f} (best {best:.1f}) -> "
              f"{new:.1f} ({arrow} ratio {ratio:.2f}) {status}")
        if worse:
            regressions.append(f"{bench}:{path}")

    dropped = sorted({bench for (bench, _) in baseline} - set(curr))
    for bench in dropped:
        print(f"  [{bench}] dropped from the latest entry -- skipping")

    if regressions:
        print(f"ledger_trend: {len(regressions)} regression(s): "
              + ", ".join(regressions))
        return 1
    print(f"ledger_trend: {compared} metric(s) compared, no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
