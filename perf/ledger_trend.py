#!/usr/bin/env python3
"""Perf-trajectory trend gate over the committed ledger.

Compares the two most recent entries under perf/ledger/ (filenames start
with a UTC timestamp, so lexicographic order is chronological) and fails
when a latency or throughput metric regressed beyond the threshold:

  * keys ending in ``p99_us``          -- lower is better
  * keys ending in ``throughput_rps``  -- higher is better

Metrics are matched per bench (by the ``"bench"`` field of each entry in
the ledger's ``benches`` array) and per JSON path, so adding a new bench
or a new metric never trips the gate -- only a metric present in *both*
entries can regress. Sub-floor p99s (microsecond-scale cache hits and the
like) are skipped: at that magnitude scheduler noise swamps any signal.
A p99 regression must also move by at least ``--min-delta-us`` in
absolute terms -- the serving metrics histogram is log-bucketed, so at
millisecond magnitudes one bucket step between adjacent runs already
exceeds a 20% ratio without meaning anything.

Usage:
  perf/ledger_trend.py [--ledger-dir DIR] [--threshold 0.20]
                       [--min-p99-us 200] [--min-delta-us 1000]

Exit status: 0 = no regression (or fewer than two entries), 1 =
regression, 2 = malformed ledger. Registered as the tier-2 ctest target
``perf_ledger_trend`` (run with ``ctest -C perf``).
"""

import argparse
import json
import os
import sys


def collect_metrics(node, path, out):
    """Flattens numeric p99/throughput leaves into {json.path: value}."""
    if isinstance(node, dict):
        for key, value in node.items():
            collect_metrics(value, f"{path}.{key}" if path else key, out)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            collect_metrics(value, f"{path}[{i}]", out)
    elif isinstance(node, (int, float)):
        if path.endswith("p99_us") or path.endswith("throughput_rps"):
            out[path] = float(node)


def entry_metrics(ledger):
    """{bench_name: {metric_path: value}} for one ledger file."""
    out = {}
    for bench in ledger.get("benches", []):
        name = bench.get("bench", "?")
        metrics = {}
        collect_metrics(bench, "", metrics)
        out[name] = metrics
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    default_dir = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                               "ledger")
    parser.add_argument("--ledger-dir", default=default_dir)
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="fractional regression that fails the gate")
    parser.add_argument("--min-p99-us", type=float, default=200.0,
                        help="ignore p99 metrics below this baseline")
    parser.add_argument("--min-delta-us", type=float, default=1000.0,
                        help="a p99 regression must also grow by this many "
                             "microseconds (histogram-bucket noise guard)")
    args = parser.parse_args()

    try:
        files = sorted(f for f in os.listdir(args.ledger_dir)
                       if f.endswith(".json"))
    except FileNotFoundError:
        print(f"ledger_trend: no ledger dir at {args.ledger_dir}")
        return 0
    if len(files) < 2:
        print(f"ledger_trend: {len(files)} entr{'y' if len(files) == 1 else 'ies'}"
              " in the ledger; need two to diff -- skipping")
        return 0

    prev_file, curr_file = files[-2], files[-1]
    entries = []
    for name in (prev_file, curr_file):
        try:
            with open(os.path.join(args.ledger_dir, name)) as f:
                entries.append(entry_metrics(json.load(f)))
        except (OSError, json.JSONDecodeError) as err:
            print(f"ledger_trend: cannot read {name}: {err}")
            return 2
    prev, curr = entries

    print(f"ledger_trend: {prev_file} -> {curr_file} "
          f"(threshold {args.threshold:.0%})")
    regressions = []
    compared = 0
    for bench, prev_metrics in sorted(prev.items()):
        curr_metrics = curr.get(bench)
        if curr_metrics is None:
            print(f"  [{bench}] dropped from the latest entry -- skipping")
            continue
        for path, old in sorted(prev_metrics.items()):
            new = curr_metrics.get(path)
            if new is None or old <= 0.0:
                continue
            if path.endswith("p99_us"):
                if old < args.min_p99_us:
                    continue  # Microsecond-scale noise, not signal.
                ratio = new / old
                worse = (ratio > 1.0 + args.threshold and
                         new - old >= args.min_delta_us)
                arrow = "p99"
            else:
                ratio = new / old
                worse = ratio < 1.0 - args.threshold
                arrow = "rps"
            compared += 1
            status = "REGRESSED" if worse else "ok"
            print(f"  [{bench}] {path}: {old:.1f} -> {new:.1f} "
                  f"({arrow} ratio {ratio:.2f}) {status}")
            if worse:
                regressions.append(f"{bench}:{path}")

    if regressions:
        print(f"ledger_trend: {len(regressions)} regression(s): "
              + ", ".join(regressions))
        return 1
    print(f"ledger_trend: {compared} metric(s) compared, no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
