#!/usr/bin/env bash
# Perf-trajectory ledger: runs the machine-readable (--json) benches and
# records their output as one timestamped file under perf/ledger/, keyed to
# the current commit. Committing these files alongside code changes gives
# the repo a queryable history of serving/perf numbers per revision.
#
# Usage:
#   perf/run_ledger.sh           # quick set: serving + router + cache
#   perf/run_ledger.sh --full    # adds bench_table5 + bench_table6 (slow)
#
# After writing the entry, perf/ledger_trend.py diffs it against the
# previous one (report only here; the tier-2 ctest target enforces it).
#
# Requires a configured build tree (default ./build, override with
# BUILD_DIR). The new file is `git add`ed but not committed.

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${BUILD_DIR:-$repo_root/build}"
ledger_dir="$repo_root/perf/ledger"

mode="quick"
if [[ "${1:-}" == "--full" ]]; then
  mode="full"
fi

if [[ ! -d "$build_dir" ]]; then
  echo "error: build tree '$build_dir' not found (run cmake first)" >&2
  exit 1
fi

benches=(
  "bench_serving --quick"
  "bench_nn_micro --quick --json"
  "bench_batch --quick --json"
  "bench_router --quick --json"
  "bench_cache --quick --json"
  "bench_net --quick --json"
  "bench_shard --quick --json"
  "bench_page --quick --json"
)
if [[ "$mode" == "full" ]]; then
  benches+=("bench_table5 --json" "bench_table6 --json")
fi

targets=()
for spec in "${benches[@]}"; do
  targets+=("${spec%% *}")
done
echo "[ledger] building: ${targets[*]}" >&2
cmake --build "$build_dir" --target "${targets[@]}" >&2

timestamp="$(date -u +%Y%m%dT%H%M%SZ)"
commit="$(git -C "$repo_root" rev-parse --short HEAD)"
out="$ledger_dir/$timestamp-$commit.json"
mkdir -p "$ledger_dir"

{
  printf '{"timestamp": "%s", "commit": "%s", "mode": "%s", "benches": [\n' \
    "$timestamp" "$commit" "$mode"
  first=1
  for spec in "${benches[@]}"; do
    name="${spec%% *}"
    args="${spec#* }"
    echo "[ledger] running $name $args" >&2
    json="$("$build_dir/bench/$name" $args)"
    [[ $first -eq 1 ]] || printf ',\n'
    first=0
    printf '%s' "$json"
  done
  printf '\n]}\n'
} > "$out"

git -C "$repo_root" add "$out"
echo "[ledger] wrote $out" >&2

if command -v python3 >/dev/null 2>&1; then
  python3 "$repo_root/perf/ledger_trend.py" --ledger-dir "$ledger_dir" >&2 ||
    echo "[ledger] warning: trend gate reported a regression (see above)" >&2
fi
