// Fault-injection tests for the network layer (net/fault.h): a seeded
// `FaultPlan` drives partial writes, short reads, connection resets, and
// delayed response frames through the *real* server and client I/O paths,
// and every run is replayable from its seed:
//
//   - the plan's decisions are a pure function of (seed, op index);
//   - a faulty client session replays bit-identically — same fault trace
//     digest, same response payloads — across two runs with one seed;
//   - RST-torn connections recover by reconnect, and no response ever
//     pairs a model version with items that version did not produce, even
//     with hot swaps racing the faults;
//   - server-side delayed frames keep request/response correlation intact
//     and a graceful drain still drops zero responses;
//   - feedback frames survive a faulty transport losslessly and in order.
//
// Every assertion message carries the active seed; export
// RAPID_PROPTEST_SEED=<seed> to replay a failing schedule exactly
// (tests/proptest.h documents the recipe).

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/client.h"
#include "net/codec.h"
#include "net/fault.h"
#include "net/server.h"
#include "online/feedback.h"
#include "proptest.h"
#include "serve/router.h"

namespace rapid {
namespace {

using namespace std::chrono_literals;

class RotateReranker : public rerank::Reranker {
 public:
  explicit RotateReranker(int shift) : shift_(shift) {}

  std::string name() const override {
    return "rotate-" + std::to_string(shift_);
  }

  std::vector<int> Rerank(const data::Dataset& /*data*/,
                          const data::ImpressionList& list) const override {
    std::vector<int> out = list.items;
    if (!out.empty()) {
      std::rotate(out.begin(),
                  out.begin() + (shift_ % static_cast<int>(out.size())),
                  out.end());
    }
    return out;
  }

 private:
  const int shift_;
};

data::ImpressionList TenItemList(int user_id = 0) {
  data::ImpressionList list;
  list.user_id = user_id;
  for (int i = 0; i < 10; ++i) {
    list.items.push_back(i);
    list.scores.push_back(1.0f - 0.05f * i);
  }
  return list;
}

std::vector<int> Rotated(const std::vector<int>& items, int shift) {
  std::vector<int> out = items;
  std::rotate(out.begin(), out.begin() + shift, out.end());
  return out;
}

net::WireRequest MakeRequest(const std::string& slot,
                             const data::ImpressionList& list) {
  net::WireRequest request;
  request.slot = slot;
  request.lane = serve::Lane::kHigh;
  request.list = list;
  return request;
}

// ---------------------------------------------------------------------------
// FaultPlan is a pure function of (seed, op index).

TEST(FaultPlanTest, DecisionsAreAPureFunctionOfSeedAndOpIndex) {
  net::FaultConfig config;
  config.seed = proptest::SeedFromEnv(20260850);
  config.partial_write_rate = 0.5;
  config.short_read_rate = 0.5;
  config.reset_rate = 0.1;
  config.delay_rate = 0.5;

  auto drive = [](net::FaultPlan& plan) {
    std::vector<uint64_t> decisions;
    for (int i = 0; i < 200; ++i) {
      switch (i % 4) {
        case 0:
          decisions.push_back(plan.ClampWrite(1000));
          break;
        case 1:
          decisions.push_back(plan.ClampRead(1000));
          break;
        case 2:
          decisions.push_back(plan.InjectReset() ? 1 : 0);
          break;
        default:
          decisions.push_back(
              static_cast<uint64_t>(plan.NextFrameDelayTicks()));
      }
    }
    return decisions;
  };

  net::FaultPlan a(config);
  net::FaultPlan b(config);
  EXPECT_EQ(drive(a), drive(b)) << "seed " << config.seed;
  EXPECT_EQ(a.TraceDigest(), b.TraceDigest()) << "seed " << config.seed;
  EXPECT_GT(a.faults(), 0u) << "seed " << config.seed;

  // Restart rewinds to op 0: the same plan object replays itself.
  a.Restart();
  const std::vector<uint64_t> first = drive(a);
  a.Restart();
  EXPECT_EQ(drive(a), first) << "seed " << config.seed;

  // A different seed gives a genuinely different schedule.
  net::FaultConfig other = config;
  other.seed = config.seed + 1;
  net::FaultPlan c(other);
  EXPECT_NE(drive(c), first) << "seed " << config.seed;
}

// ---------------------------------------------------------------------------
// Bit-identical replay of a faulty client session.

/// One observed session: the fault trace digest plus every response's
/// payload, keyed by request id.
struct SessionRecord {
  uint64_t digest = 0;
  uint64_t faults = 0;
  std::map<uint64_t, std::pair<uint64_t, std::vector<int>>> responses;

  bool operator==(const SessionRecord& other) const {
    return digest == other.digest && faults == other.faults &&
           responses == other.responses;
  }
};

/// Runs one pipelined session against `port` with write-path faults from
/// `seed`. All sends complete before the first read: the write-side op
/// sequence is then a pure function of the seed (reads also consume plan
/// ops, but their count is timing-dependent — with the read-fault rates
/// at zero those ops never fire, so the trace stays deterministic).
SessionRecord RunFaultySession(uint16_t port, uint64_t seed, int requests) {
  net::FaultConfig config;
  config.seed = seed;
  config.partial_write_rate = 0.6;
  net::FaultPlan plan(config);

  net::Client client;
  client.set_fault_plan(&plan);
  SessionRecord record;
  if (!client.Connect("127.0.0.1", port)) return record;
  for (int i = 0; i < requests; ++i) {
    net::WireRequest request = MakeRequest("main", TenItemList(i));
    const uint64_t id = client.Send(&request);
    if (id == 0) return record;  // Write faults never kill the session.
  }
  record.digest = plan.TraceDigest();
  record.faults = plan.faults();
  for (int i = 0; i < requests; ++i) {
    net::Client::Reply reply;
    if (!client.Receive(&reply, /*timeout_ms=*/5000) || reply.is_error) {
      return record;
    }
    record.responses[reply.response.request_id] = {
        reply.response.model_version, reply.response.items};
  }
  return record;
}

TEST(NetFaultTest, FaultySessionReplaysBitIdenticallyFromItsSeed) {
  const data::Dataset data;
  serve::ServingRouter router(data, {});
  ASSERT_EQ(router.InstallSlot("main", std::make_shared<RotateReranker>(3)),
            1u);
  net::Server server(router);
  ASSERT_TRUE(server.Start());

  const uint64_t seed = proptest::SeedFromEnv(20260851);
  constexpr int kRequests = 20;
  const SessionRecord first = RunFaultySession(server.port(), seed, kRequests);
  const SessionRecord second = RunFaultySession(server.port(), seed, kRequests);

  ASSERT_EQ(first.responses.size(), static_cast<size_t>(kRequests))
      << "seed " << seed;
  EXPECT_GT(first.faults, 0u) << "seed " << seed
                              << ": no partial write ever fired";
  EXPECT_TRUE(first == second)
      << "seed " << seed << " did not replay bit-identically; run 1 trace: "
      << first.digest << " (" << first.faults << " faults), run 2 trace: "
      << second.digest << " (" << second.faults << " faults)";

  // Faults changed the byte-level schedule, never the answers: every
  // response matches the fault-free model output for its request.
  uint64_t expected_id = 1;
  for (const auto& [id, payload] : first.responses) {
    EXPECT_EQ(id, expected_id++) << "seed " << seed;
    EXPECT_EQ(payload.first, 1u) << "seed " << seed;
    EXPECT_EQ(payload.second, Rotated(TenItemList(0).items, 3))
        << "seed " << seed << " request " << id;
  }
  server.Stop();
  EXPECT_EQ(server.stats().dropped_responses, 0u);
}

// ---------------------------------------------------------------------------
// Resets + reconnect racing hot swaps: no stale (version, items) pair.

TEST(NetFaultTest, ResetsRecoverByReconnectWithoutStaleVersionItemsPairs) {
  const data::Dataset data;
  serve::ServingRouter router(data, {});
  std::vector<std::pair<uint64_t, int>> published;  // (version, shift).
  const uint64_t first =
      router.InstallSlot("main", std::make_shared<RotateReranker>(1));
  ASSERT_EQ(first, 1u);
  published.emplace_back(first, 1);

  net::Server server(router);
  ASSERT_TRUE(server.Start());

  // Swaps race the faulty client below; results are read after join.
  std::thread swapper([&] {
    for (int i = 0; i < 30; ++i) {
      std::this_thread::sleep_for(1ms);
      const int shift = 1 + i % 9;
      const uint64_t version = router.InstallSlot(
          "main", std::make_shared<RotateReranker>(shift));
      published.emplace_back(version, shift);
    }
  });

  const uint64_t seed = proptest::SeedFromEnv(20260852);
  net::FaultConfig config;
  config.seed = seed;
  config.partial_write_rate = 0.3;
  config.short_read_rate = 0.3;
  config.reset_rate = 0.05;
  net::FaultPlan plan(config);

  net::Client client;
  client.set_fault_plan(&plan);
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  std::vector<net::WireResponse> succeeded;
  for (int i = 0; i < 60; ++i) {
    if (!client.connected() && !client.Reconnect()) continue;
    net::Client::Reply reply;
    if (client.Call(MakeRequest("main", TenItemList(i)), &reply,
                    /*timeout_ms=*/3000) &&
        !reply.is_error) {
      succeeded.push_back(reply.response);
    }
  }
  swapper.join();

  uint64_t resets = 0;
  for (const net::FaultDecision& decision : plan.Trace()) {
    if (decision.kind == net::FaultDecision::Kind::kReset) ++resets;
  }
  EXPECT_GT(resets, 0u) << "seed " << seed << ": no reset ever fired — "
                        << plan.TraceSummary();
  EXPECT_FALSE(succeeded.empty()) << "seed " << seed;

  // Monotone publishes, and every successful response pairs its stamped
  // version with exactly that version's output — faults and swaps never
  // produce a stale or torn pair.
  std::map<uint64_t, int> shift_of_version;
  uint64_t max_version = 0;
  for (const auto& [version, shift] : published) {
    ASSERT_GT(version, max_version) << "seed " << seed;
    max_version = version;
    shift_of_version[version] = shift;
  }
  for (const net::WireResponse& response : succeeded) {
    ASSERT_FALSE(response.degraded) << "seed " << seed;
    const auto it = shift_of_version.find(response.model_version);
    ASSERT_NE(it, shift_of_version.end())
        << "seed " << seed << ": unpublished version "
        << response.model_version;
    EXPECT_EQ(response.items, Rotated(TenItemList(0).items, it->second))
        << "seed " << seed << " version " << response.model_version;
  }

  // The server survived every RST: a clean client still gets answers.
  client.set_fault_plan(nullptr);
  ASSERT_TRUE(client.connected() || client.Reconnect());
  net::Client::Reply reply;
  ASSERT_TRUE(client.Call(MakeRequest("main", TenItemList(99)), &reply,
                          /*timeout_ms=*/3000))
      << "seed " << seed;
  EXPECT_FALSE(reply.is_error);
  server.Stop();
}

// ---------------------------------------------------------------------------
// Server-side delays: correlation intact, graceful drain still clean.

TEST(NetFaultTest, DelayedFramesKeepCorrelationAndDrainDropsNothing) {
  const data::Dataset data;
  serve::ServingRouter router(data, {});
  ASSERT_EQ(router.InstallSlot("main", std::make_shared<RotateReranker>(2)),
            1u);

  const uint64_t seed = proptest::SeedFromEnv(20260853);
  net::FaultConfig config;
  config.seed = seed;
  config.delay_rate = 0.8;
  config.max_delay_ticks = 3;
  config.short_read_rate = 0.3;  // Server-side reads arrive in shreds too.
  net::FaultPlan plan(config);

  net::ServerConfig server_config;
  server_config.poll_tick_ms = 5;  // Delay ticks age quickly.
  server_config.fault_plan = &plan;
  net::Server server(router, server_config);
  ASSERT_TRUE(server.Start());

  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  constexpr int kRequests = 30;
  std::vector<uint64_t> ids;
  for (int i = 0; i < kRequests; ++i) {
    net::WireRequest request = MakeRequest("main", TenItemList(i));
    const uint64_t id = client.Send(&request);
    ASSERT_NE(id, 0u) << "seed " << seed;
    ids.push_back(id);
  }
  // Held-back frames must still pair every answer with its question: all
  // replies arrive (in whatever order the delays produce) and the id set
  // matches the requests exactly.
  std::map<uint64_t, std::vector<int>> answered;
  for (int i = 0; i < kRequests; ++i) {
    net::Client::Reply reply;
    ASSERT_TRUE(client.Receive(&reply, /*timeout_ms=*/5000))
        << "seed " << seed << " reply " << i;
    ASSERT_FALSE(reply.is_error) << "seed " << seed;
    answered[reply.response.request_id] = reply.response.items;
  }
  ASSERT_EQ(answered.size(), ids.size()) << "seed " << seed;
  for (uint64_t id : ids) {
    const auto it = answered.find(id);
    ASSERT_NE(it, answered.end()) << "seed " << seed << " request " << id;
    EXPECT_EQ(it->second, Rotated(TenItemList(0).items, 2))
        << "seed " << seed << " request " << id;
  }
  EXPECT_GT(plan.faults(), 0u)
      << "seed " << seed << ": no delay ever fired — " << plan.TraceSummary();

  server.Stop();  // Graceful drain must flush held frames, not drop them.
  EXPECT_EQ(server.stats().dropped_responses, 0u) << "seed " << seed;
}

// ---------------------------------------------------------------------------
// Feedback frames over a faulty transport: lossless, ordered, uncorrupted.

TEST(NetFaultTest, FeedbackSurvivesFaultyTransportLosslesslyAndInOrder) {
  const data::Dataset data;
  serve::ServingRouter router(data, {});
  ASSERT_EQ(router.InstallSlot("main", std::make_shared<RotateReranker>(1)),
            1u);

  const uint64_t seed = proptest::SeedFromEnv(20260854);
  net::FaultConfig server_faults_config;
  server_faults_config.seed = seed;
  server_faults_config.short_read_rate = 0.5;  // Frames arrive byte-by-byte.
  net::FaultPlan server_faults(server_faults_config);

  online::FeedbackLog log;
  net::ServerConfig server_config;
  server_config.feedback_log = &log;
  server_config.fault_plan = &server_faults;
  net::Server server(router, server_config);
  ASSERT_TRUE(server.Start());

  net::FaultConfig client_faults_config;
  client_faults_config.seed = seed + 1;
  client_faults_config.partial_write_rate = 0.6;  // Torn-prefix writes.
  net::FaultPlan client_faults(client_faults_config);

  net::Client client;
  client.set_fault_plan(&client_faults);
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));

  constexpr int kEvents = 12;
  for (int i = 0; i < kEvents; ++i) {
    const std::vector<int> items = {i, i + 1, i + 2};
    const std::vector<uint8_t> clicks = {1, 0, static_cast<uint8_t>(i % 2)};
    bool accepted = false;
    ASSERT_TRUE(client.SendFeedback("main", 1, /*user_id=*/i, items, clicks,
                                    &accepted, /*timeout_ms=*/5000))
        << "seed " << seed << " event " << i;
    EXPECT_TRUE(accepted) << "seed " << seed << " event " << i;
  }
  EXPECT_GT(server_faults.faults() + client_faults.faults(), 0u)
      << "seed " << seed;

  // Every event landed exactly once, in order, uncorrupted.
  std::vector<online::FeedbackEvent> drained;
  ASSERT_EQ(log.Drain(kEvents + 1, &drained), static_cast<size_t>(kEvents))
      << "seed " << seed;
  for (int i = 0; i < kEvents; ++i) {
    const online::FeedbackEvent& event = drained[static_cast<size_t>(i)];
    EXPECT_EQ(event.slot, "main") << "seed " << seed;
    EXPECT_EQ(event.list.user_id, i) << "seed " << seed;
    EXPECT_EQ(event.list.items, (std::vector<int>{i, i + 1, i + 2}))
        << "seed " << seed;
    ASSERT_EQ(event.list.clicks.size(), 3u) << "seed " << seed;
    EXPECT_EQ(event.list.clicks[2], i % 2) << "seed " << seed;
  }
  server.Stop();
}

}  // namespace
}  // namespace rapid
