#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "datagen/simulator.h"
#include "rankers/din.h"
#include "rankers/lambdamart.h"
#include "rankers/ranker.h"
#include "rankers/regression_tree.h"
#include "rankers/svmrank.h"

namespace rapid::rank {
namespace {

data::Dataset SmallData(uint64_t seed = 51) {
  data::SimConfig cfg;
  cfg.kind = data::DatasetKind::kTaobao;
  cfg.num_users = 40;
  cfg.num_items = 250;
  cfg.history_len = 20;
  cfg.ranker_train_pos_per_user = 10;
  return data::GenerateDataset(cfg, seed);
}

// AUC of ranker scores against ground-truth relevance-sampled positives.
double RankerAuc(const Ranker& ranker, const data::Dataset& data) {
  double correct = 0.0, total = 0.0;
  for (int u = 0; u < static_cast<int>(data.users.size()); u += 4) {
    // Positives: history items. Negatives: arbitrary items.
    for (int i = 0; i < 8; ++i) {
      const int pos = data.history[u][i];
      const int neg = (u * 37 + i * 13) % data.items.size();
      if (std::find(data.history[u].begin(), data.history[u].end(), neg) !=
          data.history[u].end()) {
        continue;
      }
      const float sp = ranker.Score(data, u, pos);
      const float sn = ranker.Score(data, u, neg);
      if (sp > sn) correct += 1.0;
      if (sp == sn) correct += 0.5;
      total += 1.0;
    }
  }
  return correct / total;
}

TEST(PairFeaturesTest, DimensionMatches) {
  data::Dataset data = SmallData();
  const auto f = PairFeatures(data, 0, 0);
  EXPECT_EQ(static_cast<int>(f.size()), PairFeatureDim(data));
  // q_u + q_v + m + 1 = 8 + 9 + 5 + 1 (item features carry the extra
  // noisy-quality dimension; no history features for classical rankers).
  EXPECT_EQ(PairFeatureDim(data), 23);
}

TEST(RankRequestTest, ReturnsTopKDescending) {
  data::Dataset data = SmallData();
  SvmRankRanker svm;
  svm.Train(data, 1);
  const data::Request& req = data.test_requests[0];
  data::ImpressionList list = svm.RankRequest(data, req, 20);
  EXPECT_EQ(list.items.size(), 20u);
  EXPECT_EQ(list.user_id, req.user_id);
  for (size_t i = 1; i < list.scores.size(); ++i) {
    EXPECT_GE(list.scores[i - 1], list.scores[i]);
  }
  for (int v : list.items) {
    EXPECT_TRUE(std::find(req.candidates.begin(), req.candidates.end(), v) !=
                req.candidates.end());
  }
}

TEST(RankRequestTest, ShortCandidatePoolHandled) {
  data::Dataset data = SmallData();
  SvmRankRanker svm;
  svm.Train(data, 1);
  data::Request req;
  req.user_id = 0;
  req.candidates = {1, 2, 3};
  data::ImpressionList list = svm.RankRequest(data, req, 20);
  EXPECT_EQ(list.items.size(), 3u);
}

TEST(SvmRankTest, LearnsBetterThanRandom) {
  data::Dataset data = SmallData();
  SvmRankRanker svm;
  svm.Train(data, 2);
  EXPECT_GT(RankerAuc(svm, data), 0.62);
}

TEST(SvmRankTest, WeightsAreFiniteAndNonZero) {
  data::Dataset data = SmallData();
  SvmRankRanker svm;
  svm.Train(data, 3);
  float norm = 0.0f;
  for (float w : svm.weights()) {
    EXPECT_TRUE(std::isfinite(w));
    norm += w * w;
  }
  EXPECT_GT(norm, 0.0f);
}

TEST(DinTest, TrainsAndBeatsRandom) {
  data::Dataset data = SmallData();
  DinConfig cfg;
  cfg.epochs = 3;
  DinRanker din(cfg);
  din.Train(data, 4);
  EXPECT_LT(din.final_loss(), 0.69f);  // Below chance-level BCE.
  EXPECT_GT(RankerAuc(din, data), 0.62);
}

TEST(DinTest, IdEmbeddingVariantTrains) {
  data::Dataset data = SmallData();
  DinConfig cfg;
  cfg.epochs = 2;
  cfg.use_id_embeddings = true;
  DinRanker din(cfg);
  din.Train(data, 40);
  EXPECT_LT(din.final_loss(), 0.69f);
  EXPECT_GT(RankerAuc(din, data), 0.6);
  // Scores differ across items (embeddings wired in).
  EXPECT_NE(din.Score(data, 0, 1), din.Score(data, 0, 2));
}

TEST(DinTest, DeterministicGivenSeed) {
  data::Dataset data = SmallData();
  DinConfig cfg;
  cfg.epochs = 1;
  DinRanker a(cfg), b(cfg);
  a.Train(data, 5);
  b.Train(data, 5);
  EXPECT_FLOAT_EQ(a.Score(data, 0, 7), b.Score(data, 0, 7));
}

TEST(RegressionTreeTest, FitsAxisAlignedStep) {
  std::vector<std::vector<float>> x;
  std::vector<float> y;
  for (int i = 0; i < 200; ++i) {
    const float v = static_cast<float>(i) / 200.0f;
    x.push_back({v, 0.5f});
    y.push_back(v < 0.5f ? -1.0f : 2.0f);
  }
  RegressionTree tree;
  tree.Fit(x, y, {}, RegressionTree::Options{});
  EXPECT_NEAR(tree.Predict({0.1f, 0.5f}), -1.0f, 0.2f);
  EXPECT_NEAR(tree.Predict({0.9f, 0.5f}), 2.0f, 0.2f);
  EXPECT_GT(tree.num_nodes(), 1);
}

TEST(RegressionTreeTest, RespectsMinLeafSize) {
  std::vector<std::vector<float>> x;
  std::vector<float> y;
  for (int i = 0; i < 15; ++i) {
    x.push_back({static_cast<float>(i)});
    y.push_back(static_cast<float>(i % 2));
  }
  RegressionTree tree;
  RegressionTree::Options opt;
  opt.min_leaf_size = 10;
  tree.Fit(x, y, {}, opt);
  EXPECT_EQ(tree.num_nodes(), 1);  // Can't split: 15 < 2*10.
}

TEST(RegressionTreeTest, ConstantTargetsGiveLeafMean) {
  std::vector<std::vector<float>> x = {{0.0f}, {1.0f}, {2.0f}, {3.0f}};
  std::vector<float> y = {5.0f, 5.0f, 5.0f, 5.0f};
  RegressionTree tree;
  tree.Fit(x, y, {}, RegressionTree::Options{});
  EXPECT_NEAR(tree.Predict({1.5f}), 5.0f, 1e-5f);
}

TEST(RegressionTreeTest, NewtonLeavesUseHessians) {
  // With hessian 2 everywhere, leaf value = sum(g) / sum(h) = mean(g)/2.
  std::vector<std::vector<float>> x = {{0.0f}, {1.0f}};
  std::vector<float> g = {4.0f, 4.0f};
  std::vector<float> h = {2.0f, 2.0f};
  RegressionTree tree;
  tree.Fit(x, g, h, RegressionTree::Options{});
  EXPECT_NEAR(tree.Predict({0.5f}), 2.0f, 1e-4f);
}

TEST(LambdaMartTest, BuildsTreesAndBeatsRandom) {
  data::Dataset data = SmallData();
  LambdaMartConfig cfg;
  cfg.num_trees = 25;
  LambdaMartRanker lm(cfg);
  lm.Train(data, 6);
  EXPECT_EQ(lm.num_trees(), 25);
  EXPECT_GT(RankerAuc(lm, data), 0.6);
}

TEST(LambdaMartTest, ScoresPositivesAboveNegativesInTraining) {
  data::Dataset data = SmallData();
  LambdaMartRanker lm;
  lm.Train(data, 7);
  double pos_mean = 0.0, neg_mean = 0.0;
  int np = 0, nn = 0;
  for (const data::Interaction& it : data.ranker_train) {
    const float s = lm.Score(data, it.user_id, it.item_id);
    if (it.label) {
      pos_mean += s;
      ++np;
    } else {
      neg_mean += s;
      ++nn;
    }
  }
  EXPECT_GT(pos_mean / np, neg_mean / nn);
}

TEST(RankerComparisonTest, AllRankersProduceValidLists) {
  data::Dataset data = SmallData();
  std::vector<std::unique_ptr<Ranker>> rankers;
  DinConfig din_cfg;
  din_cfg.epochs = 1;
  rankers.push_back(std::make_unique<DinRanker>(din_cfg));
  rankers.push_back(std::make_unique<SvmRankRanker>());
  LambdaMartConfig lm_cfg;
  lm_cfg.num_trees = 5;
  rankers.push_back(std::make_unique<LambdaMartRanker>(lm_cfg));
  for (auto& r : rankers) {
    r->Train(data, 8);
    data::ImpressionList list =
        r->RankRequest(data, data.test_requests[0], 20);
    EXPECT_EQ(list.items.size(), 20u) << r->name();
  }
}

}  // namespace
}  // namespace rapid::rank
