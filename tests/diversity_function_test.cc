#include "core/diversity_function.h"

#include <gtest/gtest.h>

#include "datagen/simulator.h"

namespace rapid::core {
namespace {

class DiversityFunctionTest
    : public ::testing::TestWithParam<DiversityFunctionKind> {
 protected:
  DiversityFunctionTest() {
    data::SimConfig cfg;
    cfg.kind = data::DatasetKind::kTaobao;
    cfg.num_users = 10;
    cfg.num_items = 120;
    data_ = data::GenerateDataset(cfg, 91);
  }
  data::Dataset data_;
};

TEST_P(DiversityFunctionTest, EmptyListIsZero) {
  for (int j = 0; j < data_.num_topics; ++j) {
    EXPECT_FLOAT_EQ(DiversityValue(GetParam(), data_, {}, j), 0.0f);
  }
}

TEST_P(DiversityFunctionTest, MonotoneInListLength) {
  std::vector<int> list = {0, 7, 14, 21, 28, 35};
  for (int j = 0; j < data_.num_topics; ++j) {
    float prev = 0.0f;
    for (int k = 1; k <= 6; ++k) {
      const float v = DiversityValue(GetParam(), data_, list, j, k);
      EXPECT_GE(v, prev - 1e-6f);
      prev = v;
    }
  }
}

TEST_P(DiversityFunctionTest, SubmodularDiminishingReturns) {
  // Gain of adding item x to a subset >= gain of adding it to a superset.
  std::vector<int> small = {0, 7};
  std::vector<int> big = {0, 7, 14, 21};
  std::vector<int> small_plus = {0, 7, 50};
  std::vector<int> big_plus = {0, 7, 14, 21, 50};
  for (int j = 0; j < data_.num_topics; ++j) {
    const float gain_small =
        DiversityValue(GetParam(), data_, small_plus, j) -
        DiversityValue(GetParam(), data_, small, j);
    const float gain_big = DiversityValue(GetParam(), data_, big_plus, j) -
                           DiversityValue(GetParam(), data_, big, j);
    EXPECT_LE(gain_big, gain_small + 1e-5f)
        << DiversityFunctionName(GetParam()) << " topic " << j;
  }
}

TEST_P(DiversityFunctionTest, MarginalMatchesLeaveOneOut) {
  std::vector<int> list = {3, 11, 42, 77};
  const auto md = MarginalDiversityOf(GetParam(), data_, list);
  ASSERT_EQ(md.size(), list.size());
  for (size_t i = 0; i < list.size(); ++i) {
    std::vector<int> without = list;
    without.erase(without.begin() + i);
    for (int j = 0; j < data_.num_topics; ++j) {
      const float expect = DiversityValue(GetParam(), data_, list, j) -
                           DiversityValue(GetParam(), data_, without, j);
      EXPECT_NEAR(md[i][j], expect, 1e-5f)
          << DiversityFunctionName(GetParam());
    }
  }
}

TEST_P(DiversityFunctionTest, MarginalsAreNonNegative) {
  std::vector<int> list = {1, 2, 3, 4, 5, 6, 7, 8};
  for (const auto& row : MarginalDiversityOf(GetParam(), data_, list)) {
    for (float v : row) EXPECT_GE(v, -1e-6f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, DiversityFunctionTest,
    ::testing::Values(DiversityFunctionKind::kProbabilisticCoverage,
                      DiversityFunctionKind::kConcaveOverModular,
                      DiversityFunctionKind::kSaturatingLinear));

TEST(DiversityFunctionNameTest, DistinctNames) {
  EXPECT_STRNE(
      DiversityFunctionName(DiversityFunctionKind::kProbabilisticCoverage),
      DiversityFunctionName(DiversityFunctionKind::kConcaveOverModular));
  EXPECT_STRNE(
      DiversityFunctionName(DiversityFunctionKind::kConcaveOverModular),
      DiversityFunctionName(DiversityFunctionKind::kSaturatingLinear));
}

}  // namespace
}  // namespace rapid::core
