// Integration tests for the network serving front-end: a real net::Server
// over a real ServingRouter, driven through loopback sockets. Everything
// here exercises the full stack — codec, connection loop, dispatchers,
// router admission/cache — not mocks.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "click/dcm.h"
#include "core/rapid.h"
#include "datagen/simulator.h"
#include "net/client.h"
#include "net/codec.h"
#include "net/server.h"
#include "serve/router.h"
#include "serve/snapshot.h"

namespace rapid {
namespace {

using namespace std::chrono_literals;

/// Deterministic stand-in model (mirrors router_test): rotates the list
/// left by `shift`, optionally stalling to emulate inference cost.
class RotateReranker : public rerank::Reranker {
 public:
  explicit RotateReranker(int shift, int stall_us = 0)
      : shift_(shift), stall_us_(stall_us) {}

  std::string name() const override {
    return "rotate-" + std::to_string(shift_);
  }

  std::vector<int> Rerank(const data::Dataset& /*data*/,
                          const data::ImpressionList& list) const override {
    if (stall_us_ > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(stall_us_));
    }
    std::vector<int> out = list.items;
    if (!out.empty()) {
      std::rotate(out.begin(),
                  out.begin() + (shift_ % static_cast<int>(out.size())),
                  out.end());
    }
    return out;
  }

 private:
  const int shift_;
  const int stall_us_;
};

data::ImpressionList TenItemList(int user_id = 0) {
  data::ImpressionList list;
  list.user_id = user_id;
  for (int i = 0; i < 10; ++i) {
    list.items.push_back(i);
    list.scores.push_back(1.0f - 0.05f * i);
  }
  return list;
}

std::vector<int> Rotated(const std::vector<int>& items, int shift) {
  std::vector<int> out = items;
  std::rotate(out.begin(), out.begin() + shift, out.end());
  return out;
}

net::WireRequest MakeRequest(const std::string& slot,
                             const data::ImpressionList& list) {
  net::WireRequest request;
  request.slot = slot;
  request.lane = serve::Lane::kHigh;
  request.list = list;
  return request;
}

/// Spins until `pred()` holds or ~2s elapse. The server's counters update
/// from its own threads, so tests observing them must poll.
template <typename Pred>
bool EventuallyTrue(Pred pred) {
  const auto deadline = std::chrono::steady_clock::now() + 2s;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return pred();
}

/// A raw TCP connection for driving the server with bytes the well-behaved
/// `net::Client` refuses to produce: garbage framing, hand-built headers,
/// and a reader that deliberately never reads.
class RawConn {
 public:
  ~RawConn() { Close(); }

  bool Connect(uint16_t port, int rcvbuf_bytes = 0) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    if (rcvbuf_bytes > 0) {
      // Must be set before connect so the window is negotiated small.
      ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf_bytes,
                   sizeof(rcvbuf_bytes));
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      Close();
      return false;
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return true;
  }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  bool SendAll(const void* data, size_t size) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    size_t written = 0;
    while (written < size) {
      const ssize_t n =
          ::send(fd_, p + written, size - written, MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;  // Server closed on us (expected in slow-client tests).
      }
      written += static_cast<size_t>(n);
    }
    return true;
  }

  /// Blocking-reads until one complete frame parses off the stream.
  bool ReadFrame(net::Frame* out) {
    for (;;) {
      size_t consumed = 0;
      const net::DecodeStatus status =
          net::ExtractFrame(rbuf_.data(), rbuf_.size(), &consumed, out);
      if (status == net::DecodeStatus::kError) return false;
      if (status == net::DecodeStatus::kOk) {
        rbuf_.erase(rbuf_.begin(),
                    rbuf_.begin() + static_cast<ptrdiff_t>(consumed));
        return true;
      }
      uint8_t scratch[4096];
      const ssize_t n = ::read(fd_, scratch, sizeof(scratch));
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;  // EOF or error.
      }
      rbuf_.insert(rbuf_.end(), scratch, scratch + n);
    }
  }

  /// True when the peer sent FIN (a clean read of 0 bytes).
  bool ReadEof() {
    for (;;) {
      uint8_t scratch[4096];
      const ssize_t n = ::read(fd_, scratch, sizeof(scratch));
      if (n == 0) return true;
      if (n < 0) return errno == ECONNRESET;  // RST also means "closed".
    }
  }

 private:
  int fd_ = -1;
  std::vector<uint8_t> rbuf_;
};

/// Hand-builds a frame header (little-endian, matching codec.cc) so tests
/// can produce well-framed-but-invalid payloads.
std::vector<uint8_t> RawHeader(net::FrameType type, uint64_t request_id,
                               uint32_t payload_len) {
  std::vector<uint8_t> out(net::kFrameHeaderBytes, 0);
  const uint32_t magic = net::kFrameMagic;
  std::memcpy(out.data(), &magic, 4);
  out[4] = net::kProtocolVersion;
  out[5] = static_cast<uint8_t>(type);
  std::memcpy(out.data() + 8, &request_id, 8);
  std::memcpy(out.data() + 16, &payload_len, 4);
  return out;
}

TEST(NetServerTest, StartFailsOnUnbindableAddress) {
  const data::Dataset data;
  serve::ServingRouter router(data, {});
  net::ServerConfig cfg;
  cfg.host = "not-an-address";
  net::Server server(router, cfg);
  EXPECT_FALSE(server.Start());
  EXPECT_FALSE(server.running());
}

TEST(NetServerTest, RoundTripMatchesDirectRerankWithAttribution) {
  const data::Dataset data;
  serve::ServingRouter router(data, {});
  router.InstallSlot("main", std::make_shared<RotateReranker>(3));
  net::Server server(router);
  ASSERT_TRUE(server.Start());
  ASSERT_NE(server.port(), 0);

  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  net::Client::Reply reply;
  ASSERT_TRUE(client.Call(MakeRequest("main", TenItemList()), &reply, 2000));
  ASSERT_FALSE(reply.is_error);
  EXPECT_EQ(reply.response.items, Rotated(TenItemList().items, 3));
  EXPECT_FALSE(reply.response.degraded);
  EXPECT_EQ(reply.response.model_name, "rotate-3");
  EXPECT_EQ(reply.response.model_version, 1u);
  EXPECT_GE(reply.response.server_latency_us, 0);

  const serve::RouterStats stats = server.StatsWithNet();
  EXPECT_TRUE(stats.has_net);
  EXPECT_EQ(stats.net.connections_accepted, 1u);
  EXPECT_EQ(stats.net.frames_in, 1u);
  EXPECT_TRUE(EventuallyTrue([&] { return server.stats().frames_out == 1u; }));
  EXPECT_EQ(server.stats().dropped_responses, 0u);
  // The rendered ops readout includes the net section end to end.
  EXPECT_NE(stats.ToTable().find("net"), std::string::npos);
  EXPECT_NE(stats.ToJson().find("\"net\""), std::string::npos);
}

TEST(NetServerTest, PipelinedRepliesCorrelateByRequestId) {
  const data::Dataset data;
  serve::ServingRouter router(data, {});
  // The slow slot stalls long enough that the fast reply overtakes it on
  // the wire: the same connection sees responses out of submission order.
  router.InstallSlot("slow", std::make_shared<RotateReranker>(2, 30'000));
  router.InstallSlot("fast", std::make_shared<RotateReranker>(1));
  net::Server server(router);
  ASSERT_TRUE(server.Start());

  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  net::WireRequest slow_req = MakeRequest("slow", TenItemList());
  net::WireRequest fast_req = MakeRequest("fast", TenItemList());
  const uint64_t slow_id = client.Send(&slow_req);
  const uint64_t fast_id = client.Send(&fast_req);
  ASSERT_NE(slow_id, 0u);
  ASSERT_NE(fast_id, 0u);

  std::map<uint64_t, std::vector<int>> by_id;
  for (int i = 0; i < 2; ++i) {
    net::Client::Reply reply;
    ASSERT_TRUE(client.Receive(&reply, 5000));
    ASSERT_FALSE(reply.is_error);
    by_id[reply.request_id()] = reply.response.items;
  }
  EXPECT_EQ(by_id[slow_id], Rotated(TenItemList().items, 2));
  EXPECT_EQ(by_id[fast_id], Rotated(TenItemList().items, 1));
}

TEST(NetServerTest, UnknownSlotDegradesOverTheWire) {
  const data::Dataset data;
  serve::ServingRouter router(data, {});
  net::Server server(router);
  ASSERT_TRUE(server.Start());

  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  net::Client::Reply reply;
  ASSERT_TRUE(client.Call(MakeRequest("no-such-slot", TenItemList()), &reply,
                          2000));
  ASSERT_FALSE(reply.is_error);
  EXPECT_TRUE(reply.response.degraded);
  EXPECT_EQ(reply.response.model_version, 0u);
  // The degraded answer is still a permutation of the candidates.
  std::vector<int> sorted = reply.response.items;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, TenItemList().items);
}

TEST(NetServerTest, GarbageBytesCloseTheConnection) {
  const data::Dataset data;
  serve::ServingRouter router(data, {});
  net::Server server(router);
  ASSERT_TRUE(server.Start());

  RawConn raw;
  ASSERT_TRUE(raw.Connect(server.port()));
  const char garbage[] = "GET / HTTP/1.1\r\n\r\n";  // Wrong protocol entirely.
  ASSERT_TRUE(raw.SendAll(garbage, sizeof(garbage) - 1));
  // Framing is unrecoverable: the server must drop the connection (a
  // clean FIN or an RST both count as closed).
  EXPECT_TRUE(raw.ReadEof());
  EXPECT_TRUE(EventuallyTrue(
      [&] { return server.stats().closed_protocol_error == 1u; }));
  EXPECT_EQ(server.stats().frames_in, 0u);
}

TEST(NetServerTest, MalformedPayloadGetsErrorFrameAndConnectionSurvives) {
  const data::Dataset data;
  serve::ServingRouter router(data, {});
  router.InstallSlot("main", std::make_shared<RotateReranker>(1));
  net::Server server(router);
  ASSERT_TRUE(server.Start());

  RawConn raw;
  ASSERT_TRUE(raw.Connect(server.port()));
  // Well-framed but unparseable: a score request with an empty payload.
  const std::vector<uint8_t> bad = RawHeader(net::FrameType::kScoreRequest,
                                             /*request_id=*/7,
                                             /*payload_len=*/0);
  ASSERT_TRUE(raw.SendAll(bad.data(), bad.size()));
  net::Frame frame;
  ASSERT_TRUE(raw.ReadFrame(&frame));
  EXPECT_EQ(frame.header.type, net::FrameType::kError);
  net::WireError error;
  ASSERT_TRUE(net::ParseError(frame, &error));
  EXPECT_EQ(error.request_id, 7u);

  // Framing survived, so the same connection still serves a good request.
  net::WireRequest good = MakeRequest("main", TenItemList());
  good.request_id = 8;
  std::vector<uint8_t> encoded;
  net::EncodeScoreRequest(good, &encoded);
  ASSERT_TRUE(raw.SendAll(encoded.data(), encoded.size()));
  ASSERT_TRUE(raw.ReadFrame(&frame));
  EXPECT_EQ(frame.header.type, net::FrameType::kScoreResponse);
  net::WireResponse response;
  ASSERT_TRUE(net::ParseScoreResponse(frame, &response));
  EXPECT_EQ(response.request_id, 8u);
  EXPECT_EQ(response.items, Rotated(TenItemList().items, 1));

  const serve::NetStats stats = server.stats();
  EXPECT_EQ(stats.decode_errors, 1u);
  EXPECT_EQ(stats.error_frames_out, 1u);
  EXPECT_EQ(stats.closed_protocol_error, 0u);
  EXPECT_EQ(stats.connections_active, 1u);
}

TEST(NetServerTest, HalfClosedBatchStillGetsEveryResponse) {
  const data::Dataset data;
  serve::ServingRouter router(data, {});
  router.InstallSlot("main", std::make_shared<RotateReranker>(1, 1000));
  net::Server server(router);
  ASSERT_TRUE(server.Start());

  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  constexpr int kBatch = 8;
  std::vector<uint64_t> ids;
  for (int i = 0; i < kBatch; ++i) {
    net::WireRequest request = MakeRequest("main", TenItemList(i));
    ids.push_back(client.Send(&request));
    ASSERT_NE(ids.back(), 0u);
  }
  client.FinishSending();  // SHUT_WR: the batch is done, answers still owed.

  std::vector<uint64_t> answered;
  for (int i = 0; i < kBatch; ++i) {
    net::Client::Reply reply;
    ASSERT_TRUE(client.Receive(&reply, 5000));
    ASSERT_FALSE(reply.is_error);
    answered.push_back(reply.request_id());
  }
  std::sort(answered.begin(), answered.end());
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(answered, ids);
  // After the last owed response the server closes its side too.
  net::Client::Reply reply;
  EXPECT_FALSE(client.Receive(&reply, 2000));
  EXPECT_TRUE(EventuallyTrue(
      [&] { return server.stats().dropped_responses == 0u &&
                   server.stats().connections_active == 0u; }));
}

TEST(NetServerTest, DrainUnderLoadDropsNothing) {
  const data::Dataset data;
  serve::ServingRouter router(data, {});
  // Enough per-request stall that Stop() lands with real work in flight.
  router.InstallSlot("main", std::make_shared<RotateReranker>(1, 3000));
  net::ServerConfig cfg;
  cfg.drain_linger_ms = 100;
  net::Server server(router, cfg);
  ASSERT_TRUE(server.Start());

  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  constexpr uint64_t kBatch = 32;
  std::vector<uint64_t> ids;
  for (uint64_t i = 0; i < kBatch; ++i) {
    net::WireRequest request = MakeRequest("main", TenItemList());
    ids.push_back(client.Send(&request));
    ASSERT_NE(ids.back(), 0u);
  }
  // Wait until every request is parsed server-side, so the drain is
  // guaranteed to see all of them as in-flight...
  ASSERT_TRUE(
      EventuallyTrue([&] { return server.stats().frames_in == kBatch; }));
  // ...then stop while most are still stalled in the model.
  server.Stop();

  // Every response must already be flushed (Stop blocks until drained):
  // read them all, then see a clean FIN.
  std::vector<uint64_t> answered;
  for (uint64_t i = 0; i < kBatch; ++i) {
    net::Client::Reply reply;
    ASSERT_TRUE(client.Receive(&reply, 5000)) << "reply " << i << " missing";
    ASSERT_FALSE(reply.is_error);
    EXPECT_EQ(reply.response.items, Rotated(TenItemList().items, 1));
    answered.push_back(reply.request_id());
  }
  std::sort(answered.begin(), answered.end());
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(answered, ids);
  net::Client::Reply reply;
  EXPECT_FALSE(client.Receive(&reply, 2000));  // EOF after the last frame.

  const serve::NetStats stats = server.stats();
  EXPECT_EQ(stats.dropped_responses, 0u) << "graceful drain dropped responses";
  EXPECT_EQ(stats.frames_out, kBatch);
  EXPECT_EQ(stats.frames_in, kBatch);
}

TEST(NetServerTest, SlowClientIsDisconnectedWithoutHurtingHealthyPeers) {
  const data::Dataset data;
  serve::ServingRouter router(data, {});
  router.InstallSlot("main", std::make_shared<RotateReranker>(1));
  net::ServerConfig cfg;
  // Pin kernel buffering small so backpressure reaches the server's own
  // write buffer deterministically instead of vanishing into autotuned
  // socket buffers.
  cfg.so_sndbuf = 4096;
  cfg.max_write_buffer_bytes = 32 * 1024;
  cfg.write_stall_timeout_ms = 500;
  cfg.max_inflight_per_conn = 256;
  cfg.poll_tick_ms = 5;
  net::Server server(router, cfg);
  ASSERT_TRUE(server.Start());

  // The offender: pipelines large requests and never reads a byte back.
  RawConn slow;
  ASSERT_TRUE(slow.Connect(server.port(), /*rcvbuf_bytes=*/4096));
  data::ImpressionList big;
  big.user_id = 0;
  for (int i = 0; i < 1024; ++i) {
    big.items.push_back(i);
    big.scores.push_back(1.0f);
  }
  std::vector<uint8_t> encoded;
  for (uint64_t i = 0; i < 64; ++i) {
    net::WireRequest request = MakeRequest("main", big);
    request.request_id = i + 1;
    encoded.clear();
    net::EncodeScoreRequest(request, &encoded);
    if (!slow.SendAll(encoded.data(), encoded.size())) break;  // Kicked out.
  }
  EXPECT_TRUE(EventuallyTrue([&] { return server.stats().closed_slow >= 1u; }))
      << "slow client was never disconnected";
  // Its unread responses are accounted, not silently lost.
  EXPECT_GT(server.stats().dropped_responses, 0u);

  // A healthy connection keeps being served throughout.
  net::Client healthy;
  ASSERT_TRUE(healthy.Connect("127.0.0.1", server.port()));
  net::Client::Reply reply;
  ASSERT_TRUE(healthy.Call(MakeRequest("main", TenItemList()), &reply, 2000));
  ASSERT_FALSE(reply.is_error);
  EXPECT_EQ(reply.response.items, Rotated(TenItemList().items, 1));
}

TEST(NetServerTest, IdleConnectionsAreReaped) {
  const data::Dataset data;
  serve::ServingRouter router(data, {});
  router.InstallSlot("main", std::make_shared<RotateReranker>(1));
  net::ServerConfig cfg;
  cfg.idle_timeout_ms = 50;
  cfg.poll_tick_ms = 5;
  net::Server server(router, cfg);
  ASSERT_TRUE(server.Start());

  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  // An active request resets the clock; only true idleness is reaped.
  net::Client::Reply reply;
  ASSERT_TRUE(client.Call(MakeRequest("main", TenItemList()), &reply, 2000));
  EXPECT_TRUE(
      EventuallyTrue([&] { return server.stats().closed_idle >= 1u; }));
  EXPECT_FALSE(client.Receive(&reply, 1000));  // Server hung up.
}

TEST(NetServerTest, PollBackendServesIdentically) {
  const data::Dataset data;
  serve::ServingRouter router(data, {});
  router.InstallSlot("main", std::make_shared<RotateReranker>(4));
  net::ServerConfig cfg;
  cfg.use_poll = true;  // Exercise the portable poll(2) event loop.
  net::Server server(router, cfg);
  ASSERT_TRUE(server.Start());

  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  net::Client::Reply reply;
  ASSERT_TRUE(client.Call(MakeRequest("main", TenItemList()), &reply, 2000));
  ASSERT_FALSE(reply.is_error);
  EXPECT_EQ(reply.response.items, Rotated(TenItemList().items, 4));
}

TEST(NetServerTest, SynchronousWaitIsBoundedByOneDeadlineNotPerFrame) {
  // A stream of unrelated pipelined replies must not restart Call's clock:
  // the fake server below answers a request id the client never issued,
  // every 25ms, and the Call (200ms timeout) must still return promptly.
  int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listener, 1), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  const uint16_t port = ntohs(addr.sin_port);

  std::atomic<bool> stop{false};
  std::thread feeder([&] {
    int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) return;
    // 40 unrelated frames over ~1s: an implementation that grants the full
    // timeout to every ReadFrame would sit here the whole second.
    for (int i = 0; i < 40 && !stop.load(); ++i) {
      net::WireResponse unrelated;
      unrelated.request_id = 999900 + i;
      std::vector<uint8_t> frame;
      net::EncodeScoreResponse(unrelated, &frame);
      if (::send(conn, frame.data(), frame.size(), MSG_NOSIGNAL) < 0) break;
      std::this_thread::sleep_for(25ms);
    }
    ::close(conn);
  });

  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port));
  net::WireRequest request = MakeRequest("main", TenItemList());
  net::Client::Reply reply;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(client.Call(std::move(request), &reply, 200));
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_GE(elapsed.count(), 150);
  EXPECT_LT(elapsed.count(), 700) << "per-frame timeout restarted the clock";

  stop.store(true);
  feeder.join();
  ::close(listener);
}

TEST(NetServerTest, StatsScrapeOverTheWireMatchesLocalReadout) {
  const data::Dataset data;
  serve::ServingRouter router(data, {});
  router.InstallSlot("main", std::make_shared<RotateReranker>(2));
  net::Server server(router);
  ASSERT_TRUE(server.Start());

  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  for (int i = 0; i < 3; ++i) {
    net::Client::Reply reply;
    ASSERT_TRUE(client.Call(MakeRequest("main", TenItemList(i)), &reply, 2000));
    ASSERT_FALSE(reply.is_error);
  }

  // Binary scrape: the structured RouterStats crosses the wire intact.
  serve::RouterStats scraped;
  ASSERT_TRUE(client.GetStats(&scraped, 2000));
  EXPECT_EQ(scraped.total.requests, 3u);
  ASSERT_EQ(scraped.slots.size(), 1u);
  EXPECT_EQ(scraped.slots[0].slot, "main");
  EXPECT_EQ(scraped.slots[0].model_name, "rotate-2");
  ASSERT_TRUE(scraped.has_net);
  EXPECT_EQ(scraped.net.frames_in, 3u);

  // JSON scrape: the server-rendered text, unbounded by string limits.
  std::string json;
  ASSERT_TRUE(client.GetStatsJson(&json, 2000));
  EXPECT_NE(json.find("\"requests\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"net\""), std::string::npos);

  EXPECT_TRUE(EventuallyTrue([&] { return server.stats().stats_frames == 2u; }));
  // Admin frames are not score frames: frames_in counts scores only.
  EXPECT_EQ(server.stats().frames_in, 3u);
}

TEST(NetServerTest, RemoteLoadDisabledIsRefusedAndConnectionSurvives) {
  const data::Dataset data;
  serve::ServingRouter router(data, {});
  router.InstallSlot("main", std::make_shared<RotateReranker>(1));
  net::Server server(router);  // enable_remote_load defaults to false.
  ASSERT_TRUE(server.Start());

  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  uint64_t version = 99;
  std::string message;
  // True = the server answered; version 0 + message = application refusal.
  ASSERT_TRUE(client.RemoteLoadSlot("main", "/tmp/nope.rsnp", &version,
                                    &message, 2000));
  EXPECT_EQ(version, 0u);
  EXPECT_NE(message.find("disabled"), std::string::npos);
  EXPECT_TRUE(EventuallyTrue([&] { return server.stats().load_frames == 1u; }));

  // The refusal was an error frame, not a disconnect.
  net::Client::Reply reply;
  ASSERT_TRUE(client.Call(MakeRequest("main", TenItemList()), &reply, 2000));
  ASSERT_FALSE(reply.is_error);
  EXPECT_EQ(reply.response.items, Rotated(TenItemList().items, 1));
}

// End-to-end with real fitted models over real sockets: concurrent client
// threads stream requests while the main thread hot-swaps snapshots via
// LoadSlot. Every response must be internally consistent — the items must
// be exactly what the stamped model version produces — and nothing may be
// dropped. This is the primary TSan target for the net subsystem.
class NetSwapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::SimConfig cfg;
    cfg.kind = data::DatasetKind::kTaobao;
    cfg.num_users = 15;
    cfg.num_items = 100;
    cfg.rerank_lists_per_user = 2;
    data_ = data::GenerateDataset(cfg, 77);
    click::GroundTruthClickModel dcm(&data_, click::DcmConfig{});
    std::mt19937_64 rng(3);
    for (const data::Request& req : data_.rerank_train_requests) {
      data::ImpressionList list;
      list.user_id = req.user_id;
      list.items.assign(req.candidates.begin(), req.candidates.begin() + 10);
      for (int i = 0; i < 10; ++i) list.scores.push_back(1.0f - 0.05f * i);
      list.clicks = dcm.SimulateClicks(list.user_id, list.items, rng);
      train_.push_back(std::move(list));
    }
  }

  std::string TrainAndSnapshot(int hidden, uint64_t seed,
                               const std::string& file) {
    core::RapidConfig cfg;
    cfg.train.epochs = 1;
    cfg.hidden_dim = hidden;
    core::RapidReranker model(cfg);
    model.Fit(data_, train_, seed);
    const std::string path = ::testing::TempDir() + "/" + file;
    EXPECT_TRUE(serve::Snapshot::Save(path, model, data_));
    return path;
  }

  data::Dataset data_;
  std::vector<data::ImpressionList> train_;
};

// A remote caller controls every byte of the request, so ids pointing
// outside the dataset must never reach a model's embedding tables — the
// router answers them degraded, in submitted order, and counts them.
TEST_F(NetSwapTest, OutOfRangeIdsAreRejectedBeforeReachingTheModel) {
  const std::string path = TrainAndSnapshot(8, 3, "net_guard.rsnp");
  serve::ServingRouter router(data_, {});
  ASSERT_EQ(router.LoadSlot("main", path), 1u);
  net::Server server(router);
  ASSERT_TRUE(server.Start());

  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  data::ImpressionList hostile;
  hostile.user_id = 0;
  for (int i = 0; i < 10; ++i) {
    hostile.items.push_back(1'000'000 + i);  // No such items exist.
    hostile.scores.push_back(1.0f);
  }
  net::Client::Reply reply;
  ASSERT_TRUE(client.Call(MakeRequest("main", hostile), &reply, 2000));
  ASSERT_FALSE(reply.is_error);
  EXPECT_TRUE(reply.response.degraded);
  EXPECT_EQ(reply.response.model_version, 0u);
  EXPECT_EQ(reply.response.items, hostile.items);  // Submitted order.
  EXPECT_EQ(router.stats().invalid_ids, 1u);

  // The same connection still gets real model service afterwards.
  ASSERT_TRUE(client.Call(MakeRequest("main", train_[0]), &reply, 2000));
  ASSERT_FALSE(reply.is_error);
  EXPECT_FALSE(reply.response.degraded);
  EXPECT_EQ(reply.response.model_version, 1u);
}

TEST_F(NetSwapTest, RemoteLoadPublishesWhenEnabled) {
  const std::string path = TrainAndSnapshot(8, 5, "net_remote_load.rsnp");
  serve::ServingRouter router(data_, {});
  net::ServerConfig cfg;
  cfg.enable_remote_load = true;
  net::Server server(router, cfg);
  ASSERT_TRUE(server.Start());

  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  uint64_t version = 0;
  std::string message;
  ASSERT_TRUE(client.RemoteLoadSlot("main", path, &version, &message, 10'000));
  EXPECT_EQ(version, 1u) << message;

  // The remotely loaded snapshot serves real traffic on this connection.
  net::Client::Reply reply;
  ASSERT_TRUE(client.Call(MakeRequest("main", train_[0]), &reply, 5000));
  ASSERT_FALSE(reply.is_error);
  EXPECT_FALSE(reply.response.degraded);
  EXPECT_EQ(reply.response.model_version, 1u);

  // A bad path is refused with a reason; the published version survives.
  ASSERT_TRUE(client.RemoteLoadSlot("main", path + ".missing", &version,
                                    &message, 10'000));
  EXPECT_EQ(version, 0u);
  EXPECT_FALSE(message.empty());
  ASSERT_TRUE(client.Call(MakeRequest("main", train_[0]), &reply, 5000));
  EXPECT_EQ(reply.response.model_version, 1u);
}

TEST_F(NetSwapTest, ConcurrentConnectionsSeeConsistentVersionsAcrossSwaps) {
  const std::string path_a = TrainAndSnapshot(8, 1, "net_swap_a.rsnp");
  const std::string path_b = TrainAndSnapshot(12, 2, "net_swap_b.rsnp");
  const auto model_a = serve::Snapshot::Load(path_a, data_);
  const auto model_b = serve::Snapshot::Load(path_b, data_);
  ASSERT_NE(model_a, nullptr);
  ASSERT_NE(model_b, nullptr);

  // Precompute what each model produces for each probe list: a response
  // stamped with version v must carry exactly version v's permutation.
  const size_t kLists = std::min<size_t>(train_.size(), 8);
  std::vector<std::vector<int>> expect_a(kLists), expect_b(kLists);
  for (size_t i = 0; i < kLists; ++i) {
    expect_a[i] = model_a->Rerank(data_, train_[i]);
    expect_b[i] = model_b->Rerank(data_, train_[i]);
  }

  serve::RouterConfig router_cfg;
  router_cfg.num_threads = 3;
  serve::ServingRouter router(data_, router_cfg);
  ASSERT_EQ(router.LoadSlot("main", path_a), 1u);
  net::Server server(router);
  ASSERT_TRUE(server.Start());

  constexpr int kClients = 3;
  constexpr int kRequestsPerClient = 40;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      net::Client client;
      if (!client.Connect("127.0.0.1", server.port())) {
        failures.fetch_add(kRequestsPerClient);
        return;
      }
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const size_t li = static_cast<size_t>(t + i) % kLists;
        net::Client::Reply reply;
        if (!client.Call(MakeRequest("main", train_[li]), &reply, 5000) ||
            reply.is_error) {
          failures.fetch_add(1);
          continue;
        }
        if (reply.response.degraded) continue;  // No version to check.
        // Versions alternate a, b, a, b, ... as LoadSlot swaps below.
        const std::vector<int>& want = (reply.response.model_version % 2 == 1)
                                           ? expect_a[li]
                                           : expect_b[li];
        if (reply.response.items != want) mismatches.fetch_add(1);
      }
    });
  }

  // Mid-stream hot swaps while the clients hammer the socket.
  const std::string* paths[2] = {&path_b, &path_a};
  for (int swap = 0; swap < 4; ++swap) {
    std::this_thread::sleep_for(10ms);
    EXPECT_EQ(router.LoadSlot("main", *paths[swap % 2]),
              static_cast<uint64_t>(swap + 2));
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0)
      << "a response carried items from a different model version";
  const serve::NetStats stats = server.stats();
  EXPECT_EQ(stats.frames_in, static_cast<uint64_t>(kClients) *
                                 kRequestsPerClient);
  EXPECT_EQ(stats.dropped_responses, 0u);
  // The hot-swapped version is visible over the wire.
  net::Client probe;
  ASSERT_TRUE(probe.Connect("127.0.0.1", server.port()));
  net::Client::Reply reply;
  ASSERT_TRUE(probe.Call(MakeRequest("main", train_[0]), &reply, 2000));
  EXPECT_EQ(reply.response.model_version, 5u);
}

}  // namespace
}  // namespace rapid
