// Tests for the extension features beyond the paper's core: the Seq2Slate
// generative baseline, the cascade click model, and the complementary
// diversity metrics (ILD, alpha-NDCG).

#include <gtest/gtest.h>

#include <set>

#include "click/cascade.h"
#include "datagen/simulator.h"
#include "metrics/metrics.h"
#include "nn/gradcheck.h"
#include "rerank/seq2slate.h"

namespace rapid {
namespace {

class ExtensionsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::SimConfig cfg;
    cfg.kind = data::DatasetKind::kTaobao;
    cfg.num_users = 20;
    cfg.num_items = 120;
    cfg.rerank_lists_per_user = 3;
    data_ = data::GenerateDataset(cfg, 131);
    click::GroundTruthClickModel dcm(&data_, click::DcmConfig{});
    std::mt19937_64 rng(4);
    for (const data::Request& req : data_.rerank_train_requests) {
      data::ImpressionList list;
      list.user_id = req.user_id;
      list.items.assign(req.candidates.begin(), req.candidates.begin() + 10);
      for (int i = 0; i < 10; ++i) list.scores.push_back(1.0f - 0.05f * i);
      list.clicks = dcm.SimulateClicks(list.user_id, list.items, rng);
      train_.push_back(std::move(list));
    }
  }
  data::Dataset data_;
  std::vector<data::ImpressionList> train_;
};

TEST_F(ExtensionsTest, Seq2SlateTrainsAndPermutes) {
  rerank::NeuralRerankConfig cfg;
  cfg.epochs = 2;
  cfg.hidden_dim = 8;
  rerank::Seq2SlateReranker model(cfg, /*decode_steps=*/6);
  model.Fit(data_, train_, 5);
  EXPECT_TRUE(std::isfinite(model.final_loss()));
  EXPECT_GT(model.final_loss(), 0.0f);
  auto out = model.Rerank(data_, train_[0]);
  std::multiset<int> sa(out.begin(), out.end()),
      sb(train_[0].items.begin(), train_[0].items.end());
  EXPECT_EQ(sa, sb);
}

TEST_F(ExtensionsTest, Seq2SlateLossDecreasesWithTraining) {
  rerank::NeuralRerankConfig cfg;
  cfg.epochs = 1;
  cfg.hidden_dim = 8;
  rerank::Seq2SlateReranker one(cfg, 6);
  one.Fit(data_, train_, 6);
  cfg.epochs = 6;
  rerank::Seq2SlateReranker six(cfg, 6);
  six.Fit(data_, train_, 6);
  EXPECT_LT(six.final_loss(), one.final_loss());
}

TEST_F(ExtensionsTest, Seq2SlateScoreListConsistentWithDecoding) {
  rerank::NeuralRerankConfig cfg;
  cfg.epochs = 1;
  cfg.hidden_dim = 8;
  rerank::Seq2SlateReranker model(cfg, 6);
  model.Fit(data_, train_, 7);
  const auto order = model.Rerank(data_, train_[1]);
  const auto scores = model.ScoreList(data_, train_[1]);
  // The item decoded first must carry the highest score.
  const auto it = std::find(train_[1].items.begin(), train_[1].items.end(),
                            order[0]);
  const size_t first_pos = it - train_[1].items.begin();
  for (size_t i = 0; i < scores.size(); ++i) {
    EXPECT_LE(scores[i], scores[first_pos]);
  }
}

TEST_F(ExtensionsTest, CascadeProducesAtMostOneClick) {
  click::CascadeClickModel cascade(&data_, click::DcmConfig{});
  std::mt19937_64 rng(8);
  for (int t = 0; t < 200; ++t) {
    auto clicks = cascade.SimulateClicks(t % 20, {1, 5, 9, 13, 17}, rng);
    int total = 0;
    for (int c : clicks) total += c;
    EXPECT_LE(total, 1);
  }
}

TEST_F(ExtensionsTest, CascadeAttractionMatchesDcm) {
  click::DcmConfig cfg;
  click::CascadeClickModel cascade(&data_, cfg);
  click::GroundTruthClickModel dcm(&data_, cfg);
  std::vector<int> items = {2, 4, 6};
  for (int pos = 0; pos < 3; ++pos) {
    EXPECT_FLOAT_EQ(cascade.Attraction(0, items, pos),
                    dcm.Attraction(0, items, pos));
  }
}

TEST_F(ExtensionsTest, CascadeClickProbabilityIncreasesWithK) {
  click::CascadeClickModel cascade(&data_, click::DcmConfig{});
  std::vector<int> items = {2, 4, 6, 8, 10};
  float prev = 0.0f;
  for (int k = 1; k <= 5; ++k) {
    const float p = cascade.ClickProbability(0, items, k);
    EXPECT_GE(p, prev);
    EXPECT_LE(p, 1.0f);
    prev = p;
  }
}

TEST_F(ExtensionsTest, IldBasics) {
  // Two identical one-hot items: ILD 0; orthogonal items: ILD 1.
  data::Dataset tiny;
  tiny.num_topics = 2;
  data::Item a, b, c;
  a.id = 0;
  a.topic_coverage = {1, 0};
  b.id = 1;
  b.topic_coverage = {1, 0};
  c.id = 2;
  c.topic_coverage = {0, 1};
  tiny.items = {a, b, c};
  EXPECT_FLOAT_EQ(metrics::IldAtK(tiny, {0, 1}, 2), 0.0f);
  EXPECT_FLOAT_EQ(metrics::IldAtK(tiny, {0, 2}, 2), 1.0f);
  EXPECT_NEAR(metrics::IldAtK(tiny, {0, 1, 2}, 3), 2.0f / 3.0f, 1e-5f);
  EXPECT_FLOAT_EQ(metrics::IldAtK(tiny, {0}, 5), 0.0f);
}

TEST_F(ExtensionsTest, AlphaNdcgDiverseFirstBeatsRedundantFirst) {
  data::Dataset tiny;
  tiny.num_topics = 2;
  for (int i = 0; i < 4; ++i) {
    data::Item item;
    item.id = i;
    item.topic_coverage = (i < 3) ? std::vector<float>{1.0f, 0.0f}
                                  : std::vector<float>{0.0f, 1.0f};
    tiny.items.push_back(item);
  }
  // Redundant order: three topic-A items then the topic-B item.
  const float redundant = metrics::AlphaNdcgAtK(tiny, {0, 1, 2, 3}, 4);
  // Diverse order: topic-B item second.
  const float diverse = metrics::AlphaNdcgAtK(tiny, {0, 3, 1, 2}, 4);
  EXPECT_GT(diverse, redundant);
  EXPECT_FLOAT_EQ(diverse, 1.0f);  // Matches the greedy ideal.
}

TEST_F(ExtensionsTest, AlphaNdcgBounds) {
  std::vector<int> items = {0, 7, 14, 21, 28};
  const float v = metrics::AlphaNdcgAtK(data_, items, 5);
  EXPECT_GT(v, 0.0f);
  EXPECT_LE(v, 1.0f + 1e-5f);
  EXPECT_FLOAT_EQ(metrics::AlphaNdcgAtK(data_, {}, 5), 0.0f);
}

TEST_F(ExtensionsTest, ExpLogOpsGradCheck) {
  std::mt19937_64 rng(9);
  nn::Variable x = nn::Variable::Parameter(
      nn::Matrix::Uniform(3, 3, 0.5f, 2.0f, rng));
  nn::GradCheckResult r = nn::CheckGradients(
      [&] { return nn::SumAll(nn::Log(nn::AddScalar(nn::Exp(x), 1.0f))); },
      {x});
  EXPECT_TRUE(r.ok()) << r.max_rel_error;
}

}  // namespace
}  // namespace rapid
