// Property suite for the batched-inference contract
// (rerank/neural_base.h): for every neural model family, `ScoreBatch`
// over an *arbitrary* batch composition — random prefixes of the
// candidate pool, duplicated lists, empty lists, singleton and
// mixed-length groups — must reproduce per-list `ScoreList` bitwise, and
// `RerankBatch` must reproduce `Rerank`. The fixed-composition version of
// this check lives in batch_score_test.cc; here the composition itself is
// the random variable, and counterexamples shrink to a minimal batch with
// a replayable seed (see tests/proptest.h).
//
// Each family is fitted exactly once per process (1 epoch, hidden_dim 8)
// and then scored read-only across all trials.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "click/dcm.h"
#include "core/rapid.h"
#include "datagen/simulator.h"
#include "proptest.h"
#include "rerank/neural_models.h"
#include "rerank/seq2slate.h"

namespace rapid {
namespace {

/// Dataset, training lists, and one fitted model per family — built once
/// and shared read-only by every trial (the const-inference contract the
/// serving tier relies on is exactly what makes this sharing legal).
struct FittedFamilies {
  data::Dataset data;
  std::vector<data::ImpressionList> train;
  std::vector<std::unique_ptr<rerank::NeuralReranker>> models;

  FittedFamilies() {
    data::SimConfig cfg;
    cfg.kind = data::DatasetKind::kTaobao;
    cfg.num_users = 20;
    cfg.num_items = 120;
    cfg.rerank_lists_per_user = 2;
    data = data::GenerateDataset(cfg, 101);
    click::GroundTruthClickModel dcm(&data, click::DcmConfig{});
    std::mt19937_64 rng(2);
    for (const data::Request& req : data.rerank_train_requests) {
      data::ImpressionList list;
      list.user_id = req.user_id;
      list.items.assign(req.candidates.begin(), req.candidates.begin() + 10);
      for (int i = 0; i < 10; ++i) list.scores.push_back(1.0f - 0.05f * i);
      list.clicks = dcm.SimulateClicks(list.user_id, list.items, rng);
      train.push_back(std::move(list));
    }

    rerank::NeuralRerankConfig small;
    small.epochs = 1;
    small.hidden_dim = 8;
    models.push_back(std::make_unique<rerank::DlcmReranker>(small));
    models.push_back(std::make_unique<rerank::PrmReranker>(small));
    models.push_back(std::make_unique<rerank::SetRankReranker>(small));
    models.push_back(std::make_unique<rerank::SrgaReranker>(small));
    rerank::NeuralRerankConfig desa = small;
    desa.loss = rerank::RerankLoss::kPairwiseLogistic;
    models.push_back(std::make_unique<rerank::DesaReranker>(desa));
    models.push_back(std::make_unique<rerank::Seq2SlateReranker>(small));
    core::RapidConfig rapid_cfg;
    rapid_cfg.train = small;
    rapid_cfg.hidden_dim = 8;
    models.push_back(std::make_unique<core::RapidReranker>(rapid_cfg));
    for (auto& model : models) model->Fit(data, train, 6);
  }
};

const FittedFamilies& Families() {
  static const FittedFamilies* families = new FittedFamilies();
  return *families;
}

/// One batch member: a prefix of a training list, or an empty list.
struct BatchItem {
  int source = 0;  // Index into the training pool; -1 = empty list.
  int keep = 1;    // Prefix length (ignored for empty lists).
};

std::vector<BatchItem> RandomBatch(std::mt19937_64& rng) {
  const int pool = static_cast<int>(Families().train.size());
  std::uniform_int_distribution<int> len(1, 12);
  std::uniform_int_distribution<int> source(-1, pool - 1);
  std::uniform_int_distribution<int> keep(1, 10);
  std::vector<BatchItem> batch(static_cast<size_t>(len(rng)));
  for (BatchItem& item : batch) {
    item.source = source(rng);
    item.keep = keep(rng);
  }
  return batch;
}

std::string DescribeBatch(const std::vector<BatchItem>& batch) {
  std::ostringstream os;
  os << batch.size() << " lists [";
  for (size_t i = 0; i < batch.size(); ++i) {
    if (i > 0) os << ' ';
    if (batch[i].source < 0) {
      os << "empty";
    } else {
      os << batch[i].source << ":" << batch[i].keep;
    }
  }
  os << "]";
  return os.str();
}

std::vector<data::ImpressionList> Materialize(
    const std::vector<BatchItem>& batch) {
  const FittedFamilies& f = Families();
  std::vector<data::ImpressionList> lists;
  lists.reserve(batch.size());
  for (const BatchItem& item : batch) {
    if (item.source < 0) {
      data::ImpressionList empty;
      empty.user_id = f.train.front().user_id;
      lists.push_back(std::move(empty));
      continue;
    }
    data::ImpressionList list = f.train[static_cast<size_t>(item.source)];
    const int keep =
        std::min(item.keep, static_cast<int>(list.items.size()));
    list.items.resize(static_cast<size_t>(keep));
    list.scores.resize(static_cast<size_t>(keep));
    list.clicks.clear();
    lists.push_back(std::move(list));
  }
  return lists;
}

/// The invariant: batching is a pure throughput optimization, never a
/// numeric change — bitwise, for any composition.
bool CheckBatchEqualsSingle(const rerank::NeuralReranker& model,
                            const std::vector<BatchItem>& batch) {
  const FittedFamilies& f = Families();
  const std::vector<data::ImpressionList> lists = Materialize(batch);
  std::vector<const data::ImpressionList*> ptrs;
  for (const data::ImpressionList& list : lists) ptrs.push_back(&list);

  const std::vector<std::vector<float>> batched = model.ScoreBatch(f.data, ptrs);
  if (batched.size() != lists.size()) return false;
  for (size_t i = 0; i < lists.size(); ++i) {
    const std::vector<float> single = model.ScoreList(f.data, lists[i]);
    if (batched[i].size() != single.size()) return false;
    if (!single.empty() &&
        std::memcmp(batched[i].data(), single.data(),
                    single.size() * sizeof(float)) != 0) {
      return false;
    }
  }
  const std::vector<std::vector<int>> reranked = model.RerankBatch(f.data, ptrs);
  if (reranked.size() != lists.size()) return false;
  for (size_t i = 0; i < lists.size(); ++i) {
    if (reranked[i] != model.Rerank(f.data, lists[i])) return false;
  }
  return true;
}

testing::AssertionResult FamilyHoldsForArbitraryBatches(size_t family,
                                                        uint64_t seed) {
  const rerank::NeuralReranker& model = *Families().models[family];
  return proptest::ForAll(
      seed, /*trials=*/12, RandomBatch, proptest::ShrinkOps<BatchItem>,
      [&model](const std::vector<BatchItem>& batch) {
        return CheckBatchEqualsSingle(model, batch);
      },
      [&model](const std::vector<BatchItem>& batch) {
        return model.name() + ": " + DescribeBatch(batch);
      });
}

TEST(BatchPropertyTest, DlcmBatchesAreBitExactForArbitraryCompositions) {
  EXPECT_TRUE(FamilyHoldsForArbitraryBatches(0, 20260830));
}

TEST(BatchPropertyTest, PrmBatchesAreBitExactForArbitraryCompositions) {
  EXPECT_TRUE(FamilyHoldsForArbitraryBatches(1, 20260831));
}

TEST(BatchPropertyTest, SetRankBatchesAreBitExactForArbitraryCompositions) {
  EXPECT_TRUE(FamilyHoldsForArbitraryBatches(2, 20260832));
}

TEST(BatchPropertyTest, SrgaBatchesAreBitExactForArbitraryCompositions) {
  EXPECT_TRUE(FamilyHoldsForArbitraryBatches(3, 20260833));
}

TEST(BatchPropertyTest, DesaBatchesAreBitExactForArbitraryCompositions) {
  EXPECT_TRUE(FamilyHoldsForArbitraryBatches(4, 20260834));
}

TEST(BatchPropertyTest, Seq2SlateBatchesAreBitExactForArbitraryCompositions) {
  EXPECT_TRUE(FamilyHoldsForArbitraryBatches(5, 20260835));
}

TEST(BatchPropertyTest, RapidBatchesAreBitExactForArbitraryCompositions) {
  EXPECT_TRUE(FamilyHoldsForArbitraryBatches(6, 20260836));
}

}  // namespace
}  // namespace rapid
