#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <numeric>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "click/dcm.h"
#include "core/rapid.h"
#include "datagen/simulator.h"
#include "serve/result_cache.h"
#include "serve/router.h"
#include "serve/snapshot.h"

namespace rapid {
namespace {

data::ImpressionList TenItemList(int user_id = 0) {
  data::ImpressionList list;
  list.user_id = user_id;
  for (int i = 0; i < 10; ++i) {
    list.items.push_back(i);
    list.scores.push_back(1.0f - 0.05f * i);
  }
  return list;
}

serve::ResultCache::CachedResult Result(uint64_t version,
                                        std::vector<int> items = {1, 2, 3}) {
  return {std::move(items), "model", version};
}

// ---------------------------------------------------------------------------
// Fingerprint

TEST(ResultCacheFingerprintTest, SensitiveToUserOrderAndScores) {
  const data::ImpressionList base = TenItemList(7);
  const uint64_t fp = serve::ResultCache::Fingerprint(base);
  EXPECT_EQ(serve::ResultCache::Fingerprint(base), fp);  // Deterministic.

  data::ImpressionList other_user = base;
  other_user.user_id = 8;
  EXPECT_NE(serve::ResultCache::Fingerprint(other_user), fp);

  // Re-rankers are order-aware, so a permutation of the same candidates
  // must be a different key.
  data::ImpressionList permuted = base;
  std::rotate(permuted.items.begin(), permuted.items.begin() + 1,
              permuted.items.end());
  std::rotate(permuted.scores.begin(), permuted.scores.begin() + 1,
              permuted.scores.end());
  EXPECT_NE(serve::ResultCache::Fingerprint(permuted), fp);

  data::ImpressionList rescored = base;
  rescored.scores[3] += 0.25f;
  EXPECT_NE(serve::ResultCache::Fingerprint(rescored), fp);

  // Clicks are training-only; inference ignores them, so must the key.
  data::ImpressionList clicked = base;
  clicked.clicks.assign(base.items.size(), 1);
  EXPECT_EQ(serve::ResultCache::Fingerprint(clicked), fp);
}

// ---------------------------------------------------------------------------
// LRU / TTL / capacity semantics (single shard for exact bounds)

serve::CachePolicy UnitPolicy(size_t capacity, int64_t ttl_us = 0) {
  serve::CachePolicy policy;
  policy.enabled = true;
  policy.capacity = capacity;
  policy.num_shards = 1;
  policy.ttl_us = ttl_us;
  return policy;
}

TEST(ResultCacheTest, LruEvictsLeastRecentlyUsed) {
  serve::ResultCache cache(UnitPolicy(2));
  cache.Insert("m", 1, /*fingerprint=*/1, Result(1, {1}));
  cache.Insert("m", 1, 2, Result(1, {2}));
  // Touch fp=1 so fp=2 becomes the cold end.
  ASSERT_TRUE(cache.Lookup("m", 1, 1).has_value());
  cache.Insert("m", 1, 3, Result(1, {3}));

  EXPECT_TRUE(cache.Lookup("m", 1, 1).has_value());
  EXPECT_FALSE(cache.Lookup("m", 1, 2).has_value());  // Evicted.
  EXPECT_TRUE(cache.Lookup("m", 1, 3).has_value());
  EXPECT_EQ(cache.size(), 2u);

  const serve::CacheStats stats = cache.TotalStats();
  EXPECT_EQ(stats.inserts, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(ResultCacheTest, CapacityOneKeepsOnlyTheLatestEntry) {
  serve::ResultCache cache(UnitPolicy(1));
  cache.Insert("m", 1, 1, Result(1, {1}));
  EXPECT_TRUE(cache.Lookup("m", 1, 1).has_value());
  cache.Insert("m", 1, 2, Result(1, {2}));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_FALSE(cache.Lookup("m", 1, 1).has_value());
  const auto hit = cache.Lookup("m", 1, 2);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->items, (std::vector<int>{2}));
  EXPECT_EQ(cache.TotalStats().evictions, 1u);
}

TEST(ResultCacheTest, SecondHitAdmissionDefersFirstSightings) {
  serve::CachePolicy policy = UnitPolicy(8);
  policy.admit_on_second_hit = true;
  serve::ResultCache cache(policy);

  // First miss of a key records a sighting, stores nothing.
  cache.Insert("m", 1, /*fingerprint=*/1, Result(1, {1}));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup("m", 1, 1).has_value());
  EXPECT_EQ(cache.TotalStats().deferred, 1u);
  EXPECT_EQ(cache.TotalStats().inserts, 0u);

  // The repeat miss admits; the third request is a genuine hit.
  cache.Insert("m", 1, 1, Result(1, {1}));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.Lookup("m", 1, 1).has_value());
  EXPECT_EQ(cache.TotalStats().deferred, 1u);
  EXPECT_EQ(cache.TotalStats().inserts, 1u);

  // One-off keys never enter the LRU, so they cannot displace the hot
  // entry no matter how many distinct ones stream past.
  for (uint64_t fp = 100; fp < 200; ++fp) {
    cache.Insert("m", 1, fp, Result(1));
  }
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.Lookup("m", 1, 1).has_value());
  EXPECT_EQ(cache.TotalStats().deferred, 101u);

  // A new model version is a new key: admission is re-earned per version.
  cache.Insert("m", 2, 1, Result(2, {1}));
  EXPECT_FALSE(cache.Lookup("m", 2, 1).has_value());
  cache.Insert("m", 2, 1, Result(2, {1}));
  EXPECT_TRUE(cache.Lookup("m", 2, 1).has_value());

  // The per-slot attribution and the JSON rendering carry the counter.
  EXPECT_GE(cache.StatsFor("m").deferred, 1u);
  EXPECT_NE(cache.TotalStats().ToJson().find("\"deferred\": "),
            std::string::npos);
}

TEST(ResultCacheTest, TtlExpiresEntries) {
  serve::ResultCache cache(UnitPolicy(8, /*ttl_us=*/20'000));
  cache.Insert("m", 1, 1, Result(1));
  EXPECT_TRUE(cache.Lookup("m", 1, 1).has_value());
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_FALSE(cache.Lookup("m", 1, 1).has_value());
  const serve::CacheStats stats = cache.TotalStats();
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ResultCacheTest, LookupOnAnotherVersionMisses) {
  // The unit-level swap-consistency property: entries are only reachable
  // under the exact version they were computed by.
  serve::ResultCache cache(UnitPolicy(8));
  cache.Insert("m", 1, 1, Result(1));
  EXPECT_FALSE(cache.Lookup("m", 2, 1).has_value());
  EXPECT_FALSE(cache.Lookup("other", 1, 1).has_value());
  EXPECT_TRUE(cache.Lookup("m", 1, 1).has_value());
}

TEST(ResultCacheTest, SweepReclaimsDeadVersionsOnly) {
  serve::CachePolicy policy = UnitPolicy(16);
  policy.num_shards = 2;
  serve::ResultCache cache(policy);
  cache.Insert("m", 1, 1, Result(1));
  cache.Insert("m", 1, 2, Result(1));
  cache.Insert("m", 1, 3, Result(1));
  cache.Insert("m", 2, 4, Result(2));
  cache.Insert("x", 1, 5, Result(1));
  ASSERT_EQ(cache.size(), 5u);

  cache.ScheduleSweep("m", /*live_version=*/2);
  cache.DrainSweeps();
  EXPECT_EQ(cache.size(), 2u);  // m@v2 and x@v1 survive.
  EXPECT_TRUE(cache.Lookup("m", 2, 4).has_value());
  EXPECT_TRUE(cache.Lookup("x", 1, 5).has_value());
  EXPECT_EQ(cache.TotalStats().swept, 3u);
  EXPECT_EQ(cache.StatsFor("m").swept, 3u);
  EXPECT_EQ(cache.StatsFor("x").swept, 0u);

  // live_version 0 (slot removal) reclaims every version of the slot.
  cache.ScheduleSweep("x", 0);
  cache.DrainSweeps();
  EXPECT_FALSE(cache.Lookup("x", 1, 5).has_value());
}

TEST(ResultCacheTest, PolicyGatesAndBypassCounters) {
  serve::CachePolicy policy = UnitPolicy(8);
  policy.bypass_slots = {"raw"};
  serve::ResultCache cache(policy);
  EXPECT_TRUE(cache.EnabledFor("main"));
  EXPECT_FALSE(cache.EnabledFor("raw"));
  cache.RecordBypass("raw");
  cache.RecordBypass("raw");
  EXPECT_EQ(cache.TotalStats().bypass, 2u);
  EXPECT_EQ(cache.StatsFor("raw").bypass, 2u);

  serve::CachePolicy off;  // enabled = false
  serve::ResultCache disabled(off);
  EXPECT_FALSE(disabled.enabled());
  EXPECT_FALSE(disabled.EnabledFor("main"));
}

// ---------------------------------------------------------------------------
// Router integration: deterministic stand-in model

class RotateReranker : public rerank::Reranker {
 public:
  explicit RotateReranker(int shift) : shift_(shift) {}
  std::string name() const override {
    return "rotate-" + std::to_string(shift_);
  }
  std::vector<int> Rerank(const data::Dataset& /*data*/,
                          const data::ImpressionList& list) const override {
    std::vector<int> out = list.items;
    if (!out.empty()) {
      std::rotate(out.begin(),
                  out.begin() + (shift_ % static_cast<int>(out.size())),
                  out.end());
    }
    return out;
  }

 private:
  const int shift_;
};

std::vector<int> Rotated(const std::vector<int>& items, int shift) {
  std::vector<int> out = items;
  std::rotate(out.begin(), out.begin() + shift, out.end());
  return out;
}

TEST(RouterCacheTest, SwapMakesStaleEntriesUnreachableAndSweepsThem) {
  const data::Dataset data;
  serve::RouterConfig cfg;
  cfg.num_threads = 2;
  cfg.cache.enabled = true;
  cfg.cache.capacity = 64;
  serve::ServingRouter router(data, cfg);
  router.InstallSlot("main", std::make_shared<RotateReranker>(2));

  const data::ImpressionList list = TenItemList();
  const serve::RouterResponse miss =
      router.Submit({"main", serve::Lane::kHigh, list}).get();
  EXPECT_FALSE(miss.cache_hit);
  EXPECT_EQ(miss.items, Rotated(list.items, 2));
  const serve::RouterResponse hit =
      router.Submit({"main", serve::Lane::kHigh, list}).get();
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_EQ(hit.items, miss.items);
  EXPECT_EQ(hit.model_version, 1u);
  EXPECT_EQ(hit.model_name, "rotate-2");

  // Hot swap: the v1 entry becomes unreachable with the publish itself.
  router.InstallSlot("main", std::make_shared<RotateReranker>(4));
  const serve::RouterResponse fresh =
      router.Submit({"main", serve::Lane::kHigh, list}).get();
  EXPECT_FALSE(fresh.cache_hit);  // Never the stale v1 answer.
  EXPECT_EQ(fresh.model_version, 2u);
  EXPECT_EQ(fresh.items, Rotated(list.items, 4));
  const serve::RouterResponse fresh_hit =
      router.Submit({"main", serve::Lane::kHigh, list}).get();
  EXPECT_TRUE(fresh_hit.cache_hit);
  EXPECT_EQ(fresh_hit.model_version, 2u);
  EXPECT_EQ(fresh_hit.items, Rotated(list.items, 4));

  router.DrainCacheMaintenance();
  router.Shutdown();
  const serve::RouterStats stats = router.stats();
  EXPECT_EQ(stats.cache.hits, 2u);
  EXPECT_EQ(stats.cache.misses, 2u);
  EXPECT_EQ(stats.cache.inserts, 2u);
  EXPECT_EQ(stats.cache.swept, 1u);  // The dead v1 entry was reclaimed.
  ASSERT_EQ(stats.slots.size(), 1u);
  EXPECT_EQ(stats.slots[0].cache.hits, 2u);
  EXPECT_NE(stats.ToJson().find("\"cache\""), std::string::npos);
  EXPECT_NE(stats.ToTable().find("cache hits"), std::string::npos);
}

TEST(RouterCacheTest, BypassSlotNeverConsultsTheCache) {
  const data::Dataset data;
  serve::RouterConfig cfg;
  cfg.cache.enabled = true;
  cfg.cache.bypass_slots = {"raw"};
  serve::ServingRouter router(data, cfg);
  router.InstallSlot("raw", std::make_shared<RotateReranker>(1));

  const data::ImpressionList list = TenItemList();
  for (int i = 0; i < 3; ++i) {
    const serve::RouterResponse r =
        router.Submit({"raw", serve::Lane::kHigh, list}).get();
    EXPECT_FALSE(r.cache_hit);
    EXPECT_EQ(r.items, Rotated(list.items, 1));
  }
  router.Shutdown();
  const serve::RouterStats stats = router.stats();
  EXPECT_EQ(stats.cache.bypass, 3u);
  EXPECT_EQ(stats.cache.hits, 0u);
  EXPECT_EQ(stats.cache.inserts, 0u);
  ASSERT_EQ(stats.slots.size(), 1u);
  EXPECT_EQ(stats.slots[0].cache.bypass, 3u);
}

// ---------------------------------------------------------------------------
// Router integration: real model through the snapshot path — the cached
// answer must be bit-exact against a fresh forward pass.

class RouterCacheModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::SimConfig cfg;
    cfg.kind = data::DatasetKind::kTaobao;
    cfg.num_users = 12;
    cfg.num_items = 80;
    cfg.rerank_lists_per_user = 2;
    data_ = data::GenerateDataset(cfg, 91);
    click::GroundTruthClickModel dcm(&data_, click::DcmConfig{});
    std::mt19937_64 rng(5);
    for (const data::Request& req : data_.rerank_train_requests) {
      data::ImpressionList list;
      list.user_id = req.user_id;
      list.items.assign(req.candidates.begin(), req.candidates.begin() + 10);
      for (int i = 0; i < 10; ++i) list.scores.push_back(1.0f - 0.05f * i);
      list.clicks = dcm.SimulateClicks(list.user_id, list.items, rng);
      train_.push_back(std::move(list));
    }

    core::RapidConfig model_cfg;
    model_cfg.train.epochs = 1;
    model_cfg.hidden_dim = 8;
    model_ = std::make_unique<core::RapidReranker>(model_cfg);
    model_->Fit(data_, train_, /*seed=*/11);
    path_ = ::testing::TempDir() + "/result_cache_model.rsnp";
    ASSERT_TRUE(serve::Snapshot::Save(path_, *model_, data_));
  }

  data::Dataset data_;
  std::vector<data::ImpressionList> train_;
  std::unique_ptr<core::RapidReranker> model_;
  std::string path_;
};

TEST_F(RouterCacheModelTest, CachedResponseIsBitExactAgainstScoreList) {
  serve::RouterConfig cfg;
  cfg.num_threads = 2;
  cfg.cache.enabled = true;
  cfg.cache.capacity = 128;
  serve::ServingRouter router(data_, cfg);
  ASSERT_EQ(router.LoadSlot("main", path_), 1u);

  const data::ImpressionList& list = train_.front();
  const serve::RouterResponse first =
      router.Submit({"main", serve::Lane::kHigh, list}).get();
  const serve::RouterResponse second =
      router.Submit({"main", serve::Lane::kHigh, list}).get();
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.items, first.items);
  EXPECT_EQ(second.model_name, first.model_name);
  EXPECT_EQ(second.model_version, 1u);

  // Bit-exact against a fresh forward pass: the cached ordering must be
  // exactly the ranking induced by `ScoreList` on the same list.
  const std::vector<float> scores = model_->ScoreList(data_, list);
  std::vector<int> idx(list.items.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(),
                   [&](int a, int b) { return scores[a] > scores[b]; });
  std::vector<int> expected;
  for (int i : idx) expected.push_back(list.items[i]);
  EXPECT_EQ(second.items, expected);
  EXPECT_EQ(second.items, model_->Rerank(data_, list));
}

TEST_F(RouterCacheModelTest, PermutedCandidateListMisses) {
  serve::RouterConfig cfg;
  cfg.cache.enabled = true;
  serve::ServingRouter router(data_, cfg);
  ASSERT_EQ(router.LoadSlot("main", path_), 1u);

  const data::ImpressionList& list = train_.front();
  const serve::RouterResponse first =
      router.Submit({"main", serve::Lane::kHigh, list}).get();
  EXPECT_FALSE(first.cache_hit);

  // Same candidates, permuted order (scores move with their items): the
  // order-sensitive fingerprint must treat this as a different request.
  data::ImpressionList permuted = list;
  std::rotate(permuted.items.begin(), permuted.items.begin() + 3,
              permuted.items.end());
  std::rotate(permuted.scores.begin(), permuted.scores.begin() + 3,
              permuted.scores.end());
  const serve::RouterResponse r =
      router.Submit({"main", serve::Lane::kHigh, permuted}).get();
  EXPECT_FALSE(r.cache_hit);
  EXPECT_EQ(r.items, model_->Rerank(data_, permuted));

  router.Shutdown();
  const serve::RouterStats stats = router.stats();
  EXPECT_EQ(stats.cache.hits, 0u);
  EXPECT_EQ(stats.cache.misses, 2u);
  EXPECT_EQ(stats.cache.inserts, 2u);
}

// ---------------------------------------------------------------------------
// Negative-result caching: degraded answers for rejected requests are
// remembered under the reserved version 0, with their own (short) TTL.

TEST(ResultCacheTest, NegativeEntriesHaveOwnTtlAndCounters) {
  serve::CachePolicy policy = UnitPolicy(8);
  policy.negative_ttl_us = 20'000;  // 20ms.
  serve::ResultCache cache(policy);
  ASSERT_TRUE(cache.NegativeEnabled());

  EXPECT_FALSE(cache.LookupNegative("m", /*fingerprint=*/1).has_value());
  cache.InsertNegative("m", 1, {9, 8, 7});
  const auto hit = cache.LookupNegative("m", 1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, (std::vector<int>{9, 8, 7}));
  // Negative entries never shadow positive lookups: same fingerprint on a
  // real version is a miss.
  EXPECT_FALSE(cache.Lookup("m", /*version=*/1, 1).has_value());

  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(cache.LookupNegative("m", 1).has_value());  // TTL elapsed.

  const serve::CacheStats stats = cache.TotalStats();
  EXPECT_EQ(stats.negative_inserts, 1u);
  EXPECT_EQ(stats.negative_hits, 1u);
}

TEST(ResultCacheTest, NegativeCachingDisabledWithoutTtl) {
  serve::ResultCache cache(UnitPolicy(8));  // negative_ttl_us defaults to 0.
  EXPECT_FALSE(cache.NegativeEnabled());
}

TEST(RouterCacheTest, NegativeCacheRemembersUnknownSlotUntilPublish) {
  const data::Dataset data;
  serve::RouterConfig cfg;
  cfg.cache.enabled = true;
  cfg.cache.negative_ttl_us = 5'000'000;  // Long enough to never expire here.
  serve::ServingRouter router(data, cfg);

  const data::ImpressionList list = TenItemList();
  // First rejection runs the fallback and remembers the degraded answer.
  const serve::RouterResponse first =
      router.Submit({"ghost", serve::Lane::kHigh, list}).get();
  EXPECT_TRUE(first.degraded);
  EXPECT_FALSE(first.cache_hit);
  // The repeat is answered inline from the negative cache — degraded AND
  // cache_hit, same remembered ordering.
  const serve::RouterResponse second =
      router.Submit({"ghost", serve::Lane::kHigh, list}).get();
  EXPECT_TRUE(second.degraded);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.items, first.items);
  EXPECT_EQ(second.model_version, 0u);

  // Publishing the slot sweeps its negative entries: the request must now
  // reach the model instead of replaying "no such slot".
  router.InstallSlot("ghost", std::make_shared<RotateReranker>(3));
  router.DrainCacheMaintenance();
  const serve::RouterResponse served =
      router.Submit({"ghost", serve::Lane::kHigh, list}).get();
  EXPECT_FALSE(served.degraded);
  EXPECT_EQ(served.items, Rotated(list.items, 3));
  EXPECT_EQ(served.model_version, 1u);

  router.Shutdown();
  const serve::RouterStats stats = router.stats();
  EXPECT_EQ(stats.cache.negative_inserts, 1u);
  EXPECT_EQ(stats.cache.negative_hits, 1u);
  EXPECT_EQ(stats.unknown_slot, 1u);  // The negative hit did not recount it.
  EXPECT_NE(stats.ToTable().find("cache negative"), std::string::npos);
  EXPECT_NE(stats.ToJson().find("\"negative_hits\""), std::string::npos);
}

TEST_F(RouterCacheModelTest, NegativeCacheShortCircuitsInvalidIdProbes) {
  serve::RouterConfig cfg;
  cfg.cache.enabled = true;
  cfg.cache.negative_ttl_us = 5'000'000;
  serve::ServingRouter router(data_, cfg);
  ASSERT_EQ(router.LoadSlot("main", path_), 1u);

  data::ImpressionList hostile;
  hostile.user_id = 0;
  for (int i = 0; i < 10; ++i) {
    hostile.items.push_back(1'000'000 + i);  // Outside the dataset.
    hostile.scores.push_back(1.0f);
  }
  const serve::RouterResponse first =
      router.Submit({"main", serve::Lane::kHigh, hostile}).get();
  EXPECT_TRUE(first.degraded);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_EQ(first.items, hostile.items);  // Submitted order.

  // A repeat probe skips the bounds re-check entirely.
  const serve::RouterResponse second =
      router.Submit({"main", serve::Lane::kHigh, hostile}).get();
  EXPECT_TRUE(second.degraded);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.items, hostile.items);

  // Valid traffic on the same slot is untouched by the negative entries.
  const serve::RouterResponse good =
      router.Submit({"main", serve::Lane::kHigh, train_.front()}).get();
  EXPECT_FALSE(good.degraded);

  router.Shutdown();
  const serve::RouterStats stats = router.stats();
  EXPECT_EQ(stats.invalid_ids, 1u);  // Counted once, not per probe.
  EXPECT_EQ(stats.cache.negative_hits, 1u);
  EXPECT_EQ(stats.cache.negative_inserts, 1u);
}

}  // namespace
}  // namespace rapid
