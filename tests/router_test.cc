#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "click/dcm.h"
#include "core/rapid.h"
#include "datagen/simulator.h"
#include "serve/admission.h"
#include "serve/model_registry.h"
#include "serve/router.h"
#include "serve/snapshot.h"

namespace rapid {
namespace {

/// A deterministic stand-in model: rotates the list left by `shift` and
/// optionally stalls, emulating inference cost. Stateless, so it satisfies
/// the const-inference thread-safety contract by construction.
class RotateReranker : public rerank::Reranker {
 public:
  explicit RotateReranker(int shift, int stall_us = 0)
      : shift_(shift), stall_us_(stall_us) {}

  std::string name() const override {
    return "rotate-" + std::to_string(shift_);
  }

  std::vector<int> Rerank(const data::Dataset& /*data*/,
                          const data::ImpressionList& list) const override {
    if (stall_us_ > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(stall_us_));
    }
    std::vector<int> out = list.items;
    if (!out.empty()) {
      std::rotate(out.begin(),
                  out.begin() + (shift_ % static_cast<int>(out.size())),
                  out.end());
    }
    return out;
  }

 private:
  const int shift_;
  const int stall_us_;
};

data::ImpressionList TenItemList(int user_id = 0) {
  data::ImpressionList list;
  list.user_id = user_id;
  for (int i = 0; i < 10; ++i) {
    list.items.push_back(i);
    list.scores.push_back(1.0f - 0.05f * i);
  }
  return list;
}

std::vector<int> Rotated(const std::vector<int>& items, int shift) {
  std::vector<int> out = items;
  std::rotate(out.begin(), out.begin() + shift, out.end());
  return out;
}

TEST(ModelRegistryTest, PublishAcquireSwapRemove) {
  serve::ModelRegistry registry;
  EXPECT_EQ(registry.Acquire("a"), nullptr);
  EXPECT_EQ(registry.VersionOf("a"), 0u);

  EXPECT_EQ(registry.Publish("a", std::make_shared<RotateReranker>(1)), 1u);
  EXPECT_EQ(registry.Publish("b", std::make_shared<RotateReranker>(2)), 1u);
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.Names(), (std::vector<std::string>{"a", "b"}));

  const auto v1 = registry.Acquire("a");
  ASSERT_NE(v1, nullptr);
  EXPECT_EQ(v1->version, 1u);
  EXPECT_EQ(v1->model_name, "rotate-1");

  // Republish: version bumps, metrics object survives, and the previously
  // acquired handle keeps serving the old model (RCU semantics).
  v1->metrics->RecordRequest(10, false);
  EXPECT_EQ(registry.Publish("a", std::make_shared<RotateReranker>(3)), 2u);
  const auto v2 = registry.Acquire("a");
  ASSERT_NE(v2, nullptr);
  EXPECT_EQ(v2->version, 2u);
  EXPECT_EQ(v2->model_name, "rotate-3");
  EXPECT_EQ(v2->metrics, v1->metrics);
  EXPECT_EQ(v1->model_name, "rotate-1");  // Old handle untouched.

  EXPECT_TRUE(registry.Remove("a"));
  EXPECT_FALSE(registry.Remove("a"));
  EXPECT_EQ(registry.Acquire("a"), nullptr);
  // The removed slot's model outlives the table while referenced.
  EXPECT_EQ(v2->model->Rerank({}, TenItemList()), Rotated(TenItemList().items, 3));
}

TEST(AdmissionControllerTest, WatermarksResolveAndClamp) {
  serve::AdmissionConfig cfg;
  cfg.policy = serve::AdmissionPolicy::kShed;
  cfg.low_lane_watermark = 4;
  cfg.high_lane_watermark = 0;  // 0 = full capacity.
  serve::AdmissionController admission(cfg, /*queue_capacity=*/16);
  EXPECT_EQ(admission.watermark(serve::Lane::kLow), 4u);
  EXPECT_EQ(admission.watermark(serve::Lane::kHigh), 16u);
  EXPECT_TRUE(admission.Admit(serve::Lane::kLow, 3));
  EXPECT_FALSE(admission.Admit(serve::Lane::kLow, 4));
  EXPECT_TRUE(admission.Admit(serve::Lane::kHigh, 4));
  EXPECT_FALSE(admission.Admit(serve::Lane::kHigh, 16));

  // A high watermark below the low one is clamped up (priority inversion).
  cfg.low_lane_watermark = 8;
  cfg.high_lane_watermark = 2;
  serve::AdmissionController clamped(cfg, 16);
  EXPECT_EQ(clamped.watermark(serve::Lane::kHigh), 8u);

  // kBlock never sheds regardless of depth.
  cfg.policy = serve::AdmissionPolicy::kBlock;
  serve::AdmissionController blocking(cfg, 16);
  EXPECT_TRUE(blocking.Admit(serve::Lane::kLow, 16));
}

TEST(ServingRouterTest, RoutesBySlotWithAttribution) {
  const data::Dataset data;
  serve::RouterConfig cfg;
  cfg.num_threads = 2;
  serve::ServingRouter router(data, cfg);
  EXPECT_EQ(router.InstallSlot("arm-a", std::make_shared<RotateReranker>(1)),
            1u);
  EXPECT_EQ(router.InstallSlot("arm-b", std::make_shared<RotateReranker>(2)),
            1u);
  EXPECT_EQ(router.slots(), (std::vector<std::string>{"arm-a", "arm-b"}));

  const data::ImpressionList list = TenItemList();
  auto fa = router.Submit({"arm-a", serve::Lane::kHigh, list});
  auto fb = router.Submit({"arm-b", serve::Lane::kLow, list});
  const serve::RouterResponse ra = fa.get();
  const serve::RouterResponse rb = fb.get();
  EXPECT_EQ(ra.items, Rotated(list.items, 1));
  EXPECT_EQ(ra.model_name, "rotate-1");
  EXPECT_EQ(ra.model_version, 1u);
  EXPECT_FALSE(ra.degraded);
  EXPECT_FALSE(ra.shed);
  EXPECT_EQ(rb.items, Rotated(list.items, 2));
  EXPECT_EQ(rb.model_name, "rotate-2");

  router.Shutdown();
  const serve::RouterStats stats = router.stats();
  EXPECT_EQ(stats.total.requests, 2u);
  EXPECT_EQ(stats.unknown_slot, 0u);
  ASSERT_EQ(stats.slots.size(), 2u);
  EXPECT_EQ(stats.slots[0].slot, "arm-a");
  EXPECT_EQ(stats.slots[0].stats.requests, 1u);
  EXPECT_NE(stats.ToJson().find("\"arm-b\""), std::string::npos);
  EXPECT_NE(stats.ToTable().find("slot arm-a"), std::string::npos);
}

TEST(ServingRouterTest, UnknownSlotDegradesToFallback) {
  const data::Dataset data;
  serve::ServingRouter router(data, {});
  const data::ImpressionList list = TenItemList();
  const serve::RouterResponse r =
      router.Submit({"nope", serve::Lane::kHigh, list}).get();
  EXPECT_TRUE(r.degraded);
  EXPECT_FALSE(r.shed);
  EXPECT_EQ(r.items, list.items);  // kInitialOrder fallback.
  EXPECT_EQ(r.model_version, 0u);
  EXPECT_EQ(r.model_name, "");
  EXPECT_EQ(router.stats().unknown_slot, 1u);
}

TEST(ServingRouterTest, RemoveSlotRetiresModelSafely) {
  const data::Dataset data;
  serve::ServingRouter router(data, {});
  router.InstallSlot("a", std::make_shared<RotateReranker>(1));
  ASSERT_TRUE(router.RemoveSlot("a"));
  EXPECT_FALSE(router.RemoveSlot("a"));
  const serve::RouterResponse r =
      router.Submit({"a", serve::Lane::kHigh, TenItemList()}).get();
  EXPECT_TRUE(r.degraded);
}

// The acceptance test for the hot-swap protocol: sustained concurrent load
// while the slot is republished several times. Zero requests may be
// dropped, and every non-degraded response must be exactly the output of
// the model version stamped on it — a torn read (half old, half new
// model) would produce a permutation matching neither.
TEST(ServingRouterTest, HotSwapUnderLoadZeroDropsCleanAttribution) {
  const data::Dataset data;
  serve::RouterConfig cfg;
  cfg.num_threads = 4;
  cfg.max_batch = 4;
  cfg.max_wait_us = 50;
  cfg.queue_capacity = 64;
  serve::ServingRouter router(data, cfg);
  // Even shifts only, so each version's output is distinguishable and no
  // rotation composes into another (list length 10).
  router.InstallSlot("main", std::make_shared<RotateReranker>(2, 200));

  const data::ImpressionList list = TenItemList();
  constexpr int kSubmitters = 4;
  constexpr int kPerSubmitter = 60;
  std::atomic<int> bad_attribution{0};
  std::atomic<int> degraded{0};
  std::atomic<uint64_t> completed{0};
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&] {
      for (int i = 0; i < kPerSubmitter; ++i) {
        serve::RouterResponse r =
            router.Submit({"main", serve::Lane::kHigh, list}).get();
        ++completed;
        if (r.degraded) {
          ++degraded;
          continue;
        }
        // Version v was installed with shift 2*v.
        const int shift = static_cast<int>(r.model_version) * 2;
        if (r.items != Rotated(list.items, shift) ||
            r.model_name != "rotate-" + std::to_string(shift)) {
          ++bad_attribution;
        }
      }
    });
  }
  // Hot swaps while the submitters hammer the queue.
  std::vector<uint64_t> versions;
  for (int swap = 2; swap <= 4; ++swap) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    versions.push_back(router.InstallSlot(
        "main", std::make_shared<RotateReranker>(2 * swap, 200)));
  }
  for (auto& t : submitters) t.join();
  router.Shutdown();

  EXPECT_EQ(versions, (std::vector<uint64_t>{2, 3, 4}));
  EXPECT_EQ(completed.load(),
            static_cast<uint64_t>(kSubmitters * kPerSubmitter));
  EXPECT_EQ(bad_attribution.load(), 0);
  EXPECT_EQ(degraded.load(), 0);  // No deadline configured: nothing degrades.
  const serve::RouterStats stats = router.stats();
  EXPECT_EQ(stats.total.requests, completed.load());
  EXPECT_EQ(stats.total.fallbacks, 0u);
  ASSERT_EQ(stats.slots.size(), 1u);
  EXPECT_EQ(stats.slots[0].version, 4u);
  EXPECT_EQ(stats.slots[0].stats.requests, completed.load());
}

TEST(ServingRouterTest, ShedModeRejectsAboveWatermarkAndNeverBlocks) {
  const data::Dataset data;
  serve::RouterConfig cfg;
  cfg.num_threads = 1;
  cfg.max_batch = 1;
  cfg.max_wait_us = 0;
  cfg.queue_capacity = 16;
  cfg.admission.policy = serve::AdmissionPolicy::kShed;
  cfg.admission.low_lane_watermark = 2;
  serve::ServingRouter router(data, cfg);
  router.InstallSlot("main", std::make_shared<RotateReranker>(1, 5000));

  const data::ImpressionList list = TenItemList();
  std::vector<std::future<serve::RouterResponse>> futures;
  constexpr int kBurst = 24;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kBurst; ++i) {
    futures.push_back(router.Submit({"main", serve::Lane::kLow, list}));
  }
  const double submit_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();

  int shed = 0;
  for (auto& f : futures) {
    const serve::RouterResponse r = f.get();
    if (r.shed) {
      ++shed;
      EXPECT_TRUE(r.degraded);
      EXPECT_EQ(r.items, list.items);  // Fallback, not the model.
      EXPECT_EQ(r.model_version, 0u);
    }
  }
  router.Shutdown();
  // With a 5ms-per-request model and watermark 2, most of the burst is
  // shed, and shedding answers immediately — the burst of 24 must not take
  // anywhere near 24 model passes (120ms) to *submit*.
  EXPECT_GT(shed, 0);
  EXPECT_LT(submit_ms, 60.0);
  const serve::RouterStats stats = router.stats();
  EXPECT_EQ(stats.total.requests, static_cast<uint64_t>(kBurst));
  EXPECT_EQ(stats.total.shed, static_cast<uint64_t>(shed));
  ASSERT_EQ(stats.slots.size(), 1u);
  EXPECT_EQ(stats.slots[0].stats.shed, static_cast<uint64_t>(shed));
}

TEST(ServingRouterTest, SlotQuotaShedsOnlyTheNoisyTenant) {
  const data::Dataset data;
  serve::RouterConfig cfg;
  cfg.num_threads = 1;
  cfg.max_batch = 1;
  cfg.max_wait_us = 0;
  cfg.queue_capacity = 64;
  cfg.admission.policy = serve::AdmissionPolicy::kShed;
  // Global watermarks far above the burst: only the per-slot quota bites.
  cfg.admission.low_lane_watermark = 64;
  cfg.admission.high_lane_watermark = 64;
  cfg.admission.slot_quotas = {{"noisy", 2}};
  serve::ServingRouter router(data, cfg);
  router.InstallSlot("noisy", std::make_shared<RotateReranker>(1, 5000));
  router.InstallSlot("quiet", std::make_shared<RotateReranker>(2, 0));

  const data::ImpressionList list = TenItemList();
  std::vector<std::future<serve::RouterResponse>> noisy, quiet;
  for (int i = 0; i < 16; ++i) {
    noisy.push_back(router.Submit({"noisy", serve::Lane::kHigh, list}));
  }
  for (int i = 0; i < 8; ++i) {
    quiet.push_back(router.Submit({"quiet", serve::Lane::kHigh, list}));
  }
  int noisy_shed = 0, quiet_shed = 0;
  for (auto& f : noisy) {
    const serve::RouterResponse r = f.get();
    if (r.shed) {
      ++noisy_shed;
      EXPECT_TRUE(r.degraded);
      EXPECT_EQ(r.items, list.items);  // Fallback, not the model.
    }
  }
  for (auto& f : quiet) quiet_shed += f.get().shed ? 1 : 0;

  // The noisy tenant's burst of 16 against a depth quota of 2 mostly
  // sheds; the quiet tenant rides through untouched.
  EXPECT_GT(noisy_shed, 0);
  EXPECT_EQ(quiet_shed, 0);
  serve::RouterStats stats = router.stats();
  EXPECT_EQ(stats.quota_shed, static_cast<uint64_t>(noisy_shed));
  EXPECT_EQ(stats.total.shed, static_cast<uint64_t>(noisy_shed));
  EXPECT_NE(stats.ToTable().find("quota shed"), std::string::npos);
  EXPECT_NE(stats.ToJson().find("\"quota_shed\""), std::string::npos);

  // The quota tracks queue depth, not lifetime count: once the burst has
  // drained, the same slot admits again — nothing leaked a slot charge.
  const serve::RouterResponse later =
      router.Submit({"noisy", serve::Lane::kHigh, list}).get();
  EXPECT_FALSE(later.shed);
  router.Shutdown();
}

TEST(ServingRouterTest, HighLaneSurvivesLowLaneFlood) {
  const data::Dataset data;
  serve::RouterConfig cfg;
  cfg.num_threads = 1;
  cfg.max_batch = 1;
  cfg.max_wait_us = 0;
  cfg.queue_capacity = 32;
  cfg.admission.policy = serve::AdmissionPolicy::kShed;
  cfg.admission.low_lane_watermark = 4;  // Low lane sheds early...
  cfg.admission.high_lane_watermark = 32;  // ...high lane only when full.
  serve::ServingRouter router(data, cfg);
  router.InstallSlot("main", std::make_shared<RotateReranker>(1, 2000));

  const data::ImpressionList list = TenItemList();
  std::vector<std::future<serve::RouterResponse>> low, high;
  for (int i = 0; i < 20; ++i) {
    low.push_back(router.Submit({"main", serve::Lane::kLow, list}));
  }
  for (int i = 0; i < 8; ++i) {
    high.push_back(router.Submit({"main", serve::Lane::kHigh, list}));
  }
  int low_shed = 0, high_shed = 0;
  for (auto& f : low) low_shed += f.get().shed ? 1 : 0;
  for (auto& f : high) high_shed += f.get().shed ? 1 : 0;
  router.Shutdown();
  EXPECT_GT(low_shed, 0);
  EXPECT_EQ(high_shed, 0);
}

TEST(ServingRouterTest, BlockModeDeadlineCapsProducerWait) {
  const data::Dataset data;
  serve::RouterConfig cfg;
  cfg.num_threads = 1;
  cfg.max_batch = 1;
  cfg.max_wait_us = 0;
  cfg.queue_capacity = 1;
  cfg.deadline_us = 10'000;  // 10ms.
  serve::ServingRouter router(data, cfg);
  router.InstallSlot("main", std::make_shared<RotateReranker>(1, 30'000));

  const data::ImpressionList list = TenItemList();
  std::vector<std::future<serve::RouterResponse>> futures;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 6; ++i) {
    futures.push_back(router.Submit({"main", serve::Lane::kHigh, list}));
  }
  const double submit_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  int degraded = 0;
  for (auto& f : futures) degraded += f.get().degraded ? 1 : 0;
  router.Shutdown();

  // Without the deadline cap the producer would block ~30ms per queued
  // request (~150ms total); with it, each Submit waits at most ~10ms.
  EXPECT_LT(submit_ms, 100.0);
  EXPECT_GT(degraded, 0);
}

TEST(ServingRouterTest, SubmitAfterShutdownServesInline) {
  const data::Dataset data;
  serve::ServingRouter router(data, {});
  router.InstallSlot("main", std::make_shared<RotateReranker>(3));
  router.Shutdown();
  auto future = router.Submit({"main", serve::Lane::kHigh, TenItemList()});
  ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  const serve::RouterResponse r = future.get();
  EXPECT_EQ(r.items, Rotated(TenItemList().items, 3));
  EXPECT_EQ(r.model_version, 1u);
}

// End-to-end through the snapshot path with real models: two differently
// configured RAPID fits ship through LoadSlot, and the swap changes both
// the served scores and the attribution.
class RouterSnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::SimConfig cfg;
    cfg.kind = data::DatasetKind::kTaobao;
    cfg.num_users = 15;
    cfg.num_items = 100;
    cfg.rerank_lists_per_user = 2;
    data_ = data::GenerateDataset(cfg, 77);
    click::GroundTruthClickModel dcm(&data_, click::DcmConfig{});
    std::mt19937_64 rng(3);
    for (const data::Request& req : data_.rerank_train_requests) {
      data::ImpressionList list;
      list.user_id = req.user_id;
      list.items.assign(req.candidates.begin(), req.candidates.begin() + 10);
      for (int i = 0; i < 10; ++i) list.scores.push_back(1.0f - 0.05f * i);
      list.clicks = dcm.SimulateClicks(list.user_id, list.items, rng);
      train_.push_back(std::move(list));
    }
  }

  std::string TrainAndSnapshot(int hidden, uint64_t seed,
                               const std::string& file) {
    core::RapidConfig cfg;
    cfg.train.epochs = 1;
    cfg.hidden_dim = hidden;
    core::RapidReranker model(cfg);
    model.Fit(data_, train_, seed);
    const std::string path = ::testing::TempDir() + "/" + file;
    EXPECT_TRUE(serve::Snapshot::Save(path, model, data_));
    return path;
  }

  data::Dataset data_;
  std::vector<data::ImpressionList> train_;
};

TEST_F(RouterSnapshotTest, LoadSlotHotSwapsSnapshots) {
  const std::string path_a = TrainAndSnapshot(8, 1, "router_a.rsnp");
  const std::string path_b = TrainAndSnapshot(12, 2, "router_b.rsnp");
  const auto model_a = serve::Snapshot::Load(path_a, data_);
  const auto model_b = serve::Snapshot::Load(path_b, data_);
  ASSERT_NE(model_a, nullptr);
  ASSERT_NE(model_b, nullptr);

  serve::RouterConfig cfg;
  cfg.num_threads = 2;
  serve::ServingRouter router(data_, cfg);
  EXPECT_EQ(router.LoadSlot("main", path_a), 1u);
  EXPECT_EQ(router.LoadSlot("main", "/nonexistent.rsnp"), 0u);
  EXPECT_EQ(router.SlotVersion("main"), 1u);

  const data::ImpressionList& list = train_.front();
  serve::RouterResponse r1 =
      router.Submit({"main", serve::Lane::kHigh, list}).get();
  EXPECT_EQ(r1.items, model_a->Rerank(data_, list));
  EXPECT_EQ(r1.model_version, 1u);

  EXPECT_EQ(router.LoadSlot("main", path_b), 2u);
  serve::RouterResponse r2 =
      router.Submit({"main", serve::Lane::kHigh, list}).get();
  EXPECT_EQ(r2.items, model_b->Rerank(data_, list));
  EXPECT_EQ(r2.model_version, 2u);
}

// Copies `path` and XOR-flips the last `tail` weight bytes — the bytes
// just *before* the v3 canary trailer, located via the trailer footer's
// payload length. Flipping only the final weight float keeps the copy
// structurally parseable — dimensions, magics, and trailer intact, weights
// wrong (flipping every bit of a float always changes its value, or
// yields NaN). That is exactly the failure mode a canary must catch:
// corrupt-but-loadable.
std::string BitFlippedCopy(const std::string& path, size_t tail) {
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  uint32_t payload_len = 0;
  EXPECT_GT(bytes.size(), 8u);
  std::memcpy(&payload_len, bytes.data() + bytes.size() - 8,
              sizeof(payload_len));
  const size_t trailer = static_cast<size_t>(payload_len) + 8;
  EXPECT_GT(bytes.size(), trailer + tail);
  for (size_t i = bytes.size() - trailer - tail; i < bytes.size() - trailer;
       ++i) {
    bytes[i] = static_cast<char>(bytes[i] ^ 0xFF);
  }
  const std::string out_path = path + ".corrupt";
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return out_path;
}

TEST_F(RouterSnapshotTest, CanaryRejectsCorruptSnapshotBeforePublish) {
  const std::string path = TrainAndSnapshot(8, 5, "router_canary.rsnp");
  const auto model = serve::Snapshot::Load(path, data_);
  ASSERT_NE(model, nullptr);

  serve::CanaryProbe probe;
  probe.list = train_.front();
  probe.expected_scores = model->ScoreList(data_, probe.list);
  serve::ServingRouter router(data_, {});
  router.SetCanary("main", probe);

  // The faithful snapshot reproduces the recorded scores and publishes.
  EXPECT_EQ(router.LoadSlot("main", path), 1u);

  // The bit-flipped snapshot parses but scores differently (or NaN): the
  // canary rejects it before publish and v1 keeps serving.
  const std::string corrupt = BitFlippedCopy(path, /*tail=*/4);
  ASSERT_NE(serve::Snapshot::LoadAny(corrupt, data_), nullptr)
      << "corrupt copy must stay parseable — the probe, not the parser, is "
         "the gate under test";
  EXPECT_EQ(router.LoadSlot("main", corrupt), 0u);
  EXPECT_EQ(router.SlotVersion("main"), 1u);
  const serve::RouterResponse r =
      router.Submit({"main", serve::Lane::kHigh, train_.front()}).get();
  EXPECT_FALSE(r.degraded);
  EXPECT_EQ(r.model_version, 1u);
  EXPECT_EQ(r.items, model->Rerank(data_, train_.front()));
  EXPECT_EQ(router.stats().canary_rejected, 1u);
  EXPECT_NE(router.stats().ToJson().find("\"canary_rejected\": 1"),
            std::string::npos);

  // Clearing the explicit canary falls back to the probe the snapshot
  // itself recorded at save time — the corrupt copy still cannot publish.
  EXPECT_TRUE(router.ClearCanary("main"));
  EXPECT_FALSE(router.ClearCanary("main"));
  EXPECT_EQ(router.LoadSlot("main", corrupt), 0u);
  EXPECT_EQ(router.stats().canary_rejected, 2u);
}

// The embedded probe guards LoadSlot with zero caller wiring: no
// SetCanary anywhere, yet the corrupt snapshot is rejected while the
// faithful one publishes.
TEST_F(RouterSnapshotTest, EmbeddedCanaryGuardsLoadSlotWithoutSetCanary) {
  const std::string path = TrainAndSnapshot(8, 6, "router_autocanary.rsnp");
  serve::ServingRouter router(data_, {});

  const std::string corrupt = BitFlippedCopy(path, /*tail=*/4);
  EXPECT_EQ(router.LoadSlot("main", corrupt), 0u);
  EXPECT_EQ(router.stats().canary_rejected, 1u);
  EXPECT_EQ(router.SlotVersion("main"), 0u);

  EXPECT_EQ(router.LoadSlot("main", path), 1u);
  EXPECT_EQ(router.SlotVersion("main"), 1u);
}

// Cache-on variant of the hot-swap acceptance test, sized for TSan: one
// hot user hammers a slot through the result cache while LoadSlot swaps
// the slot six times between two real snapshots. Every response must be
// internally consistent — the items must be exactly the output of the
// model version stamped on the response. A stale cache entry surviving a
// swap, or a torn (version, items) pair, fails the parity check.
TEST_F(RouterSnapshotTest, CacheStaysSwapConsistentUnderHotUserLoad) {
  const std::string path_a = TrainAndSnapshot(8, 1, "cache_swap_a.rsnp");
  const std::string path_b = TrainAndSnapshot(12, 2, "cache_swap_b.rsnp");
  const auto model_a = serve::Snapshot::Load(path_a, data_);
  const auto model_b = serve::Snapshot::Load(path_b, data_);
  ASSERT_NE(model_a, nullptr);
  ASSERT_NE(model_b, nullptr);

  // Pick a hot list the two models rank differently, so a stale answer is
  // visible as a wrong permutation rather than a harmless coincidence.
  data::ImpressionList hot = train_.front();
  for (const data::ImpressionList& list : train_) {
    if (model_a->Rerank(data_, list) != model_b->Rerank(data_, list)) {
      hot = list;
      break;
    }
  }
  const std::vector<int> ref_a = model_a->Rerank(data_, hot);
  const std::vector<int> ref_b = model_b->Rerank(data_, hot);

  serve::RouterConfig cfg;
  cfg.num_threads = 3;
  cfg.max_batch = 4;
  cfg.max_wait_us = 50;
  cfg.cache.enabled = true;
  cfg.cache.capacity = 256;
  serve::ServingRouter router(data_, cfg);
  ASSERT_EQ(router.LoadSlot("main", path_a), 1u);

  constexpr int kSubmitters = 4;
  constexpr int kPerSubmitter = 50;
  std::atomic<int> inconsistent{0};
  std::atomic<int> degraded{0};
  std::atomic<uint64_t> hit_responses{0};
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&] {
      for (int i = 0; i < kPerSubmitter; ++i) {
        serve::RouterResponse r =
            router.Submit({"main", serve::Lane::kHigh, hot}).get();
        if (r.degraded) {
          ++degraded;
          continue;
        }
        if (r.cache_hit) ++hit_responses;
        // v1 is model A; swaps alternate B, A, B, ... so odd versions are
        // A and even versions are B.
        const std::vector<int>& expected =
            (r.model_version % 2 == 1) ? ref_a : ref_b;
        if (r.items != expected) ++inconsistent;
      }
    });
  }

  std::vector<uint64_t> versions;
  for (int swap = 0; swap < 6; ++swap) {
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
    versions.push_back(
        router.LoadSlot("main", swap % 2 == 0 ? path_b : path_a));
  }
  for (std::thread& t : submitters) t.join();
  router.DrainCacheMaintenance();
  router.Shutdown();

  EXPECT_EQ(versions, (std::vector<uint64_t>{2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(inconsistent.load(), 0);
  EXPECT_EQ(degraded.load(), 0);
  const serve::RouterStats stats = router.stats();
  EXPECT_EQ(stats.total.requests,
            static_cast<uint64_t>(kSubmitters * kPerSubmitter));
  EXPECT_EQ(stats.cache.hits, hit_responses.load());
  EXPECT_GT(stats.cache.hits, 0u);  // The hot user actually hit the cache.
}

}  // namespace
}  // namespace rapid
