// Property-based invariants of the page-level reranker: every output list
// is a permutation of its input, results are deterministic, zero budget
// degenerates to pure relevance order, and the coverage diagnostics stay
// inside their mathematical bounds — swept over random pages, list shapes,
// budgets, and joint/independent configurations.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "datagen/simulator.h"
#include "page/page.h"
#include "proptest.h"

namespace rapid {
namespace {

const data::Dataset& SharedDataset() {
  static const data::Dataset data = [] {
    data::SimConfig cfg;
    cfg.kind = data::DatasetKind::kTaobao;
    cfg.num_users = 10;
    cfg.num_items = 80;
    return data::GenerateDataset(cfg, 404);
  }();
  return data;
}

struct PageCase {
  std::vector<std::vector<int>> lists;
  std::vector<std::vector<float>> relevance;
  float budget = 0.0f;
  page::PageRerankConfig config;
};

PageCase RandomPageCase(std::mt19937_64& rng) {
  const data::Dataset& data = SharedDataset();
  PageCase page;
  const size_t num_lists = 1 + rng() % 4;
  std::uniform_real_distribution<float> unit(0.0f, 1.0f);
  for (size_t l = 0; l < num_lists; ++l) {
    const size_t n = rng() % 12;
    std::vector<int> items(n);
    std::vector<float> relevance(n);
    for (size_t i = 0; i < n; ++i) {
      items[i] = static_cast<int>(rng() % data.items.size());
      relevance[i] = unit(rng);
    }
    page.lists.push_back(std::move(items));
    page.relevance.push_back(std::move(relevance));
  }
  page.budget = unit(rng) * 4.0f;
  page.config.joint = (rng() & 1) != 0;
  page.config.lambda = unit(rng);
  page.config.top_k = static_cast<int>(rng() % 8);
  return page;
}

std::vector<PageCase> ShrinkPageCase(const PageCase& page) {
  std::vector<PageCase> out;
  if (page.lists.size() > 1) {
    PageCase fewer = page;
    fewer.lists.pop_back();
    fewer.relevance.pop_back();
    out.push_back(std::move(fewer));
  }
  if (!page.lists.empty() && !page.lists.back().empty()) {
    PageCase smaller = page;
    smaller.lists.back().resize(page.lists.back().size() / 2);
    smaller.relevance.back().resize(page.lists.back().size() / 2);
    out.push_back(std::move(smaller));
  }
  if (page.budget > 0.0f) {
    PageCase broke = page;
    broke.budget = 0.0f;
    out.push_back(std::move(broke));
  }
  return out;
}

std::string DescribePageCase(const PageCase& page) {
  std::ostringstream os;
  os << "lists=" << page.lists.size() << " budget=" << page.budget
     << (page.config.joint ? " joint" : " indep")
     << " lambda=" << page.config.lambda << " top_k=" << page.config.top_k;
  for (const std::vector<int>& list : page.lists) os << " n=" << list.size();
  return os.str();
}

bool IsPermutationOf(const std::vector<int>& a, const std::vector<int>& b) {
  std::vector<int> sa = a, sb = b;
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  return sa == sb;
}

TEST(PagePropertyTest, EveryOutputListIsAPermutationOfItsInput) {
  EXPECT_TRUE(proptest::ForAll(
      20260817, 200, RandomPageCase, ShrinkPageCase,
      [](const PageCase& page) {
        const page::PageReranker reranker(SharedDataset(), page.config);
        const page::PageResult result =
            reranker.Rerank(page.lists, page.relevance, page.budget);
        if (result.lists.size() != page.lists.size()) return false;
        for (size_t l = 0; l < page.lists.size(); ++l) {
          if (!IsPermutationOf(result.lists[l], page.lists[l])) return false;
        }
        return true;
      },
      DescribePageCase));
}

TEST(PagePropertyTest, RerankIsDeterministic) {
  EXPECT_TRUE(proptest::ForAll(
      20260818, 100, RandomPageCase, ShrinkPageCase,
      [](const PageCase& page) {
        const page::PageReranker reranker(SharedDataset(), page.config);
        const page::PageResult a =
            reranker.Rerank(page.lists, page.relevance, page.budget);
        const page::PageResult b =
            reranker.Rerank(page.lists, page.relevance, page.budget);
        return a.lists == b.lists && a.page_coverage == b.page_coverage &&
               a.diversity_spent == b.diversity_spent;
      },
      DescribePageCase));
}

TEST(PagePropertyTest, ZeroBudgetSortsEachListByRelevance) {
  EXPECT_TRUE(proptest::ForAll(
      20260819, 150, RandomPageCase, ShrinkPageCase,
      [](const PageCase& page) {
        const page::PageReranker reranker(SharedDataset(), page.config);
        const page::PageResult result =
            reranker.Rerank(page.lists, page.relevance, 0.0f);
        if (result.diversity_spent != 0.0f) return false;
        for (size_t l = 0; l < page.lists.size(); ++l) {
          // The emitted order must be non-increasing in relevance.
          float prev = 2.0f;
          for (const int item : result.lists[l]) {
            const auto at = std::find(page.lists[l].begin(),
                                      page.lists[l].end(), item);
            float rel = page.relevance[l][static_cast<size_t>(
                at - page.lists[l].begin())];
            // Duplicated ids share the first occurrence's relevance; skip
            // the monotonicity check for them (the permutation property
            // still pins correctness).
            bool duplicated =
                std::count(page.lists[l].begin(), page.lists[l].end(), item) >
                1;
            if (!duplicated && rel > prev + 1e-6f) return false;
            if (!duplicated) prev = rel;
          }
        }
        return true;
      },
      DescribePageCase));
}

TEST(PagePropertyTest, CoverageDiagnosticsStayInBounds) {
  EXPECT_TRUE(proptest::ForAll(
      20260820, 200, RandomPageCase, ShrinkPageCase,
      [](const PageCase& page) {
        const page::PageReranker reranker(SharedDataset(), page.config);
        const page::PageResult result =
            reranker.Rerank(page.lists, page.relevance, page.budget);
        if (result.page_coverage < 0.0f || result.page_coverage > 1.0f) {
          return false;
        }
        if (result.cross_list_redundancy < 0.0f) return false;
        if (result.diversity_spent < 0.0f) return false;
        // The budget gate admits one final overshoot of at most one
        // item's gain, and a single gain is bounded by 1.
        return result.diversity_spent <= page.budget + 1.0f;
      },
      DescribePageCase));
}

TEST(PagePropertyTest, CoverageIsPermutationInvariantOverWholeLists) {
  // With top_k=0 the coverage of a page is a function of the item *sets*,
  // not their order — shuffling every list must not change it.
  EXPECT_TRUE(proptest::ForAll(
      20260821, 150, RandomPageCase, ShrinkPageCase,
      [](const PageCase& page) {
        const data::Dataset& data = SharedDataset();
        const float before = page::PageCoverage(data, page.lists);
        std::mt19937_64 shuffle_rng(99);
        std::vector<std::vector<int>> shuffled = page.lists;
        for (std::vector<int>& list : shuffled) {
          std::shuffle(list.begin(), list.end(), shuffle_rng);
        }
        const float after = page::PageCoverage(data, shuffled);
        return std::abs(before - after) < 1e-5f;
      },
      DescribePageCase));
}

}  // namespace
}  // namespace rapid
