#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "nn/layers.h"
#include "nn/optimizer.h"

namespace rapid::nn {
namespace {

TEST(AdamExtraTest, WeightDecayShrinksUnusedParameters) {
  // A parameter with zero gradient decays toward zero under decoupled
  // weight decay, and stays put without it.
  Variable with_decay = Variable::Parameter(Matrix(1, 1, {1.0f}));
  Variable without_decay = Variable::Parameter(Matrix(1, 1, {1.0f}));
  Adam decayed({with_decay}, 0.01f, 0.9f, 0.999f, 1e-8f,
               /*weight_decay=*/0.1f);
  Adam plain({without_decay}, 0.01f);
  for (int i = 0; i < 100; ++i) {
    decayed.ZeroGrad();
    plain.ZeroGrad();
    decayed.Step();
    plain.Step();
  }
  EXPECT_LT(with_decay.value().at(0, 0), 0.95f);
  EXPECT_FLOAT_EQ(without_decay.value().at(0, 0), 1.0f);
}

TEST(SgdExtraTest, MomentumAcceleratesOnConstantGradient) {
  // With a constant gradient of 1, momentum accumulates: after enough
  // steps the per-step update approaches lr / (1 - momentum).
  Variable p_mom = Variable::Parameter(Matrix(1, 1, {0.0f}));
  Variable p_plain = Variable::Parameter(Matrix(1, 1, {0.0f}));
  Sgd mom({p_mom}, 0.01f, 0.9f);
  Sgd plain({p_plain}, 0.01f);
  for (int i = 0; i < 50; ++i) {
    p_mom.ZeroGrad();
    p_mom.mutable_grad().at(0, 0) = 1.0f;
    mom.Step();
    p_plain.ZeroGrad();
    p_plain.mutable_grad().at(0, 0) = 1.0f;
    plain.Step();
  }
  // Both move in the negative direction; momentum must have travelled
  // much further (approaching lr/(1-momentum) = 10x per-step updates).
  EXPECT_LT(p_mom.value().at(0, 0), 0.0f);
  EXPECT_GT(std::fabs(p_mom.value().at(0, 0)),
            3.0f * std::fabs(p_plain.value().at(0, 0)));
}

TEST(AdamExtraTest, StepSizeBoundedByLearningRate) {
  // Adam's first update magnitude is ~lr regardless of gradient scale.
  for (float gscale : {1e-3f, 1.0f, 1e3f}) {
    Variable p = Variable::Parameter(Matrix(1, 1, {0.0f}));
    Adam opt({p}, 0.01f);
    p.mutable_grad().at(0, 0) = gscale;
    opt.Step();
    EXPECT_NEAR(std::fabs(p.value().at(0, 0)), 0.01f, 0.002f)
        << "gradient scale " << gscale;
  }
}

TEST(LstmExtraTest, AllStatesShapesAndProgression) {
  std::mt19937_64 rng(3);
  Lstm lstm(4, 6, rng);
  std::vector<Variable> inputs;
  for (int t = 0; t < 5; ++t) {
    inputs.push_back(Variable::Constant(Matrix::Randn(2, 4, 1.0f, rng)));
  }
  const auto states = lstm.Forward(inputs);
  ASSERT_EQ(states.size(), 5u);
  for (const Variable& s : states) {
    EXPECT_EQ(s.rows(), 2);
    EXPECT_EQ(s.cols(), 6);
  }
  // States evolve: consecutive states differ.
  EXPECT_FALSE(
      states[0].value().AllClose(states[4].value(), 1e-6f));
}

TEST(ActivationTest, HelperMatchesOps) {
  std::mt19937_64 rng(4);
  Variable x = Variable::Constant(Matrix::Randn(2, 3, 1.0f, rng));
  EXPECT_TRUE(Activate(x, Activation::kIdentity).value().Equals(x.value()));
  EXPECT_TRUE(
      Activate(x, Activation::kRelu).value().Equals(Relu(x).value()));
  EXPECT_TRUE(
      Activate(x, Activation::kTanh).value().Equals(Tanh(x).value()));
  EXPECT_TRUE(Activate(x, Activation::kSigmoid)
                  .value()
                  .Equals(Sigmoid(x).value()));
}

TEST(ModuleTest, NumParamsCountsEverything) {
  std::mt19937_64 rng(5);
  Linear l(3, 4, rng);
  EXPECT_EQ(l.NumParams(), 3 * 4 + 4);
  LstmCell cell(3, 4, rng);
  EXPECT_EQ(cell.NumParams(), 3 * 16 + 4 * 16 + 16);
}

}  // namespace
}  // namespace rapid::nn
