#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "click/dcm.h"
#include "datagen/simulator.h"
#include "rerank/dpp.h"
#include "rerank/mmr.h"
#include "rerank/neural_models.h"
#include "rerank/pdgan.h"
#include "rerank/reranker.h"
#include "rerank/ssd.h"

namespace rapid::rerank {
namespace {

class RerankTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::SimConfig cfg;
    cfg.kind = data::DatasetKind::kTaobao;
    cfg.num_users = 30;
    cfg.num_items = 200;
    data_ = data::GenerateDataset(cfg, 61);
    list_.user_id = 0;
    for (int i = 0; i < 12; ++i) {
      list_.items.push_back(i * 7 % 200);
      list_.scores.push_back(2.0f - 0.1f * i);
    }
  }
  data::Dataset data_;
  data::ImpressionList list_;
};

bool IsPermutation(const std::vector<int>& a, const std::vector<int>& b) {
  std::multiset<int> sa(a.begin(), a.end()), sb(b.begin(), b.end());
  return sa == sb;
}

TEST_F(RerankTest, InitIsIdentity) {
  InitReranker init;
  EXPECT_EQ(init.Rerank(data_, list_), list_.items);
}

TEST_F(RerankTest, NormalizedScoresInUnitRange) {
  auto s = NormalizedScores(list_);
  EXPECT_FLOAT_EQ(s.front(), 1.0f);
  EXPECT_FLOAT_EQ(s.back(), 0.0f);
  for (float x : s) {
    EXPECT_GE(x, 0.0f);
    EXPECT_LE(x, 1.0f);
  }
}

TEST_F(RerankTest, NormalizedScoresConstantList) {
  data::ImpressionList flat = list_;
  std::fill(flat.scores.begin(), flat.scores.end(), 3.0f);
  for (float x : NormalizedScores(flat)) EXPECT_FLOAT_EQ(x, 0.5f);
}

TEST_F(RerankTest, CoverageCosineBasics) {
  data::Item a, b, c;
  a.topic_coverage = {1, 0, 0};
  b.topic_coverage = {1, 0, 0};
  c.topic_coverage = {0, 1, 0};
  EXPECT_FLOAT_EQ(CoverageCosine(a, b), 1.0f);
  EXPECT_FLOAT_EQ(CoverageCosine(a, c), 0.0f);
  data::Item zero;
  zero.topic_coverage = {0, 0, 0};
  EXPECT_FLOAT_EQ(CoverageCosine(a, zero), 0.0f);
}

class HeuristicPermutationTest
    : public RerankTest,
      public ::testing::WithParamInterface<int> {};

TEST_P(HeuristicPermutationTest, OutputsArePermutations) {
  std::vector<std::unique_ptr<Reranker>> methods;
  methods.push_back(std::make_unique<MmrReranker>());
  methods.push_back(std::make_unique<AdpMmrReranker>());
  methods.push_back(std::make_unique<DppReranker>());
  methods.push_back(std::make_unique<SsdReranker>());
  methods.push_back(std::make_unique<PdGanReranker>());
  data::ImpressionList list = list_;
  list.user_id = GetParam();
  for (auto& m : methods) {
    auto out = m->Rerank(data_, list);
    EXPECT_TRUE(IsPermutation(out, list.items)) << m->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Users, HeuristicPermutationTest,
                         ::testing::Values(0, 1, 5, 12));

TEST_F(RerankTest, MmrPureRelevanceKeepsScoreOrder) {
  MmrReranker mmr(/*trade=*/1.0f);
  EXPECT_EQ(mmr.Rerank(data_, list_), list_.items);
}

TEST_F(RerankTest, MmrPureDiversityAvoidsAdjacentDuplicates) {
  // With trade=0, the second pick must be the least similar to the first.
  MmrReranker mmr(/*trade=*/0.0f);
  auto out = mmr.Rerank(data_, list_);
  const data::Item& first = data_.item(out[0]);
  const float chosen_sim = CoverageCosine(first, data_.item(out[1]));
  for (size_t i = 2; i < out.size(); ++i) {
    EXPECT_LE(chosen_sim,
              CoverageCosine(first, data_.item(out[i])) + 1e-5f);
  }
}

TEST_F(RerankTest, DppGreedyMapOnDiagonalKernelPicksLargestFirst) {
  // Diagonal kernel: pure quality, no repulsion -> sorted by diagonal.
  std::vector<std::vector<float>> kernel = {
      {1.0f, 0, 0}, {0, 4.0f, 0}, {0, 0, 2.0f}};
  auto order = DppReranker::GreedyMapInference(kernel, 3);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 0}));
}

TEST_F(RerankTest, DppGreedyMapRepulsionSkipsDuplicates) {
  // Items 0 and 1 identical (similarity 1): after picking one, the twin's
  // marginal volume collapses, so the dissimilar item 2 comes second.
  const float q = 2.0f;
  std::vector<std::vector<float>> kernel = {
      {q * q * 1.001f, q * q, 0},
      {q * q, q * q * 1.001f, 0},
      {0, 0, 1.001f}};
  auto order = DppReranker::GreedyMapInference(kernel, 3);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 2);
}

TEST_F(RerankTest, DppImprovesTopicCoverage) {
  DppReranker dpp;
  InitReranker init;
  double dpp_cov = 0.0, init_cov = 0.0;
  for (int u = 0; u < 10; ++u) {
    data::ImpressionList list = list_;
    list.user_id = u;
    auto d = dpp.Rerank(data_, list);
    auto i = init.Rerank(data_, list);
    for (int j = 0; j < data_.num_topics; ++j) {
      dpp_cov += data::TopicCoverage(data_, d, j, 5);
      init_cov += data::TopicCoverage(data_, i, j, 5);
    }
  }
  EXPECT_GT(dpp_cov, init_cov);
}

TEST_F(RerankTest, SsdPrefersOrthogonalItems) {
  SsdReranker ssd(/*gamma=*/10.0f, /*window=*/5);  // Diversity-dominated.
  auto out = ssd.Rerank(data_, list_);
  // The top-5 should cover more topics than the initial order's top-5.
  float ssd_cov = 0.0f, init_cov = 0.0f;
  for (int j = 0; j < data_.num_topics; ++j) {
    ssd_cov += data::TopicCoverage(data_, out, j, 5);
    init_cov += data::TopicCoverage(data_, list_.items, j, 5);
  }
  EXPECT_GE(ssd_cov, init_cov);
}

TEST_F(RerankTest, AdpMmrDiversifiesMoreForDiverseUsers) {
  // Find a clearly focused and a clearly diverse user.
  int focused = -1, diverse = -1;
  for (const data::User& u : data_.users) {
    if (u.diversity_appetite < 0.3f && focused < 0) focused = u.id;
    if (u.diversity_appetite > 0.85f && diverse < 0) diverse = u.id;
  }
  ASSERT_GE(focused, 0);
  ASSERT_GE(diverse, 0);
  AdpMmrReranker adp;
  data::ImpressionList lf = list_, ld = list_;
  lf.user_id = focused;
  ld.user_id = diverse;
  auto of = adp.Rerank(data_, lf);
  auto od = adp.Rerank(data_, ld);
  float cov_f = 0.0f, cov_d = 0.0f;
  for (int j = 0; j < data_.num_topics; ++j) {
    cov_f += data::TopicCoverage(data_, of, j, 5);
    cov_d += data::TopicCoverage(data_, od, j, 5);
  }
  // Note: appetite correlates with history entropy only statistically, so
  // compare against the focused user's coverage with slack.
  EXPECT_GE(cov_d, cov_f - 0.2f);
}

// --------------------------- neural models -----------------------------

class NeuralRerankTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::SimConfig cfg;
    cfg.kind = data::DatasetKind::kTaobao;
    cfg.num_users = 25;
    cfg.num_items = 150;
    cfg.rerank_lists_per_user = 3;
    data_ = data::GenerateDataset(cfg, 62);
    click::GroundTruthClickModel dcm(&data_, click::DcmConfig{});
    std::mt19937_64 rng(5);
    for (const data::Request& req : data_.rerank_train_requests) {
      data::ImpressionList list;
      list.user_id = req.user_id;
      list.items.assign(req.candidates.begin(), req.candidates.begin() + 12);
      for (int i = 0; i < 12; ++i) {
        list.scores.push_back(1.0f - 0.05f * i);
      }
      list.clicks = dcm.SimulateClicks(list.user_id, list.items, rng);
      train_.push_back(std::move(list));
    }
  }
  data::Dataset data_;
  std::vector<data::ImpressionList> train_;
};

template <typename T>
void ExpectTrainsAndReranks(const data::Dataset& data,
                            const std::vector<data::ImpressionList>& train) {
  NeuralRerankConfig cfg;
  cfg.epochs = 2;
  T model(cfg);
  model.Fit(data, train, 7);
  EXPECT_GT(model.final_loss(), 0.0f);
  EXPECT_LT(model.final_loss(), 0.7f);  // Should be below chance quickly.
  auto out = model.Rerank(data, train[0]);
  std::multiset<int> sa(out.begin(), out.end()),
      sb(train[0].items.begin(), train[0].items.end());
  EXPECT_EQ(sa, sb);
  // Scores align with the rerank order.
  auto scores = model.ScoreList(data, train[0]);
  EXPECT_EQ(scores.size(), train[0].items.size());
}

TEST_F(NeuralRerankTest, DlcmTrains) {
  ExpectTrainsAndReranks<DlcmReranker>(data_, train_);
}
TEST_F(NeuralRerankTest, PrmTrains) {
  ExpectTrainsAndReranks<PrmReranker>(data_, train_);
}
TEST_F(NeuralRerankTest, SetRankTrains) {
  ExpectTrainsAndReranks<SetRankReranker>(data_, train_);
}
TEST_F(NeuralRerankTest, SrgaTrains) {
  ExpectTrainsAndReranks<SrgaReranker>(data_, train_);
}
TEST_F(NeuralRerankTest, DesaTrains) {
  ExpectTrainsAndReranks<DesaReranker>(data_, train_);
}

TEST_F(NeuralRerankTest, SetRankIsPermutationInvariant) {
  NeuralRerankConfig cfg;
  cfg.epochs = 1;
  SetRankReranker model(cfg);
  model.Fit(data_, train_, 8);
  data::ImpressionList list = train_[0];
  auto scores = model.ScoreList(data_, list);
  // Reverse the list; scores must follow the items exactly.
  data::ImpressionList reversed = list;
  std::reverse(reversed.items.begin(), reversed.items.end());
  std::reverse(reversed.scores.begin(), reversed.scores.end());
  auto rev_scores = model.ScoreList(data_, reversed);
  for (size_t i = 0; i < scores.size(); ++i) {
    EXPECT_NEAR(scores[i], rev_scores[scores.size() - 1 - i], 1e-4f);
  }
}

TEST_F(NeuralRerankTest, PrmIsPositionSensitive) {
  NeuralRerankConfig cfg;
  cfg.epochs = 1;
  PrmReranker model(cfg);
  model.Fit(data_, train_, 9);
  data::ImpressionList list = train_[0];
  auto scores = model.ScoreList(data_, list);
  data::ImpressionList reversed = list;
  std::reverse(reversed.items.begin(), reversed.items.end());
  std::reverse(reversed.scores.begin(), reversed.scores.end());
  auto rev_scores = model.ScoreList(data_, reversed);
  // With positional encodings, at least one item scores differently.
  bool differs = false;
  for (size_t i = 0; i < scores.size(); ++i) {
    if (std::fabs(scores[i] - rev_scores[scores.size() - 1 - i]) > 1e-3f) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

TEST_F(NeuralRerankTest, PdGanFitsParameters) {
  PdGanReranker pdgan;
  pdgan.Fit(data_, train_, 10);
  // Grid-search must pick values from the grid.
  const float a = pdgan.quality_sharpness();
  EXPECT_TRUE(a == 0.5f || a == 1.0f || a == 2.0f);
  auto out = pdgan.Rerank(data_, train_[0]);
  EXPECT_EQ(out.size(), train_[0].items.size());
}

TEST_F(NeuralRerankTest, DeterministicTrainingGivenSeed) {
  NeuralRerankConfig cfg;
  cfg.epochs = 1;
  PrmReranker a(cfg), b(cfg);
  a.Fit(data_, train_, 42);
  b.Fit(data_, train_, 42);
  EXPECT_EQ(a.Rerank(data_, train_[1]), b.Rerank(data_, train_[1]));
}

}  // namespace
}  // namespace rapid::rerank
