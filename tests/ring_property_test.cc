// Property suite for the consistent-hash ring (shard/ring.h): under an
// arbitrary sequence of AddShard/RemoveShard membership changes,
//
//   - removing a shard remaps only the keys that shard owned;
//   - adding a shard moves keys only *onto* the new shard;
//   - either change moves a bounded fraction of the keyspace (~1/N with
//     slack for virtual-node variance), never "almost everything";
//   - placement is a pure function of (seed, membership) — rebuilding the
//     ring with the surviving members in a different insertion order
//     reproduces every assignment.
//
// Counterexamples shrink to a minimal op schedule and print a replayable
// seed (see tests/proptest.h).

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "proptest.h"
#include "shard/ring.h"

namespace rapid {
namespace {

struct RingOp {
  bool add = true;
  int shard = 0;
};

std::string DescribeOps(const std::vector<RingOp>& ops) {
  std::ostringstream os;
  os << ops.size() << " ops [";
  for (size_t i = 0; i < ops.size(); ++i) {
    if (i > 0) os << ' ';
    os << (ops[i].add ? "+" : "-") << ops[i].shard;
  }
  os << "]";
  return os.str();
}

std::vector<RingOp> RandomOps(std::mt19937_64& rng) {
  std::uniform_int_distribution<int> len(1, 14);
  std::uniform_int_distribution<int> shard(0, 7);
  std::uniform_int_distribution<int> kind(0, 2);
  std::vector<RingOp> ops(static_cast<size_t>(len(rng)));
  for (RingOp& op : ops) {
    // Bias toward adds so schedules usually build up a few-shard fleet,
    // but keep removes (including removes of absent shards) common.
    op.add = kind(rng) != 0;
    op.shard = shard(rng);
  }
  return ops;
}

constexpr int kNumKeys = 1500;

std::vector<int> Owners(const shard::HashRing& ring) {
  std::vector<int> owners(kNumKeys);
  for (int key = 0; key < kNumKeys; ++key) {
    owners[static_cast<size_t>(key)] = ring.ShardFor(key);
  }
  return owners;
}

/// Applies `ops` while checking the remap invariants after every step.
/// Returns false on the first violation.
bool CheckChurn(const std::vector<RingOp>& ops) {
  shard::HashRing ring;
  std::set<int> members;
  std::vector<int> before = Owners(ring);
  for (const RingOp& op : ops) {
    const bool was_member = members.count(op.shard) > 0;
    if (op.add) {
      ring.AddShard(op.shard);
      members.insert(op.shard);
    } else {
      const bool removed = ring.RemoveShard(op.shard);
      if (removed != was_member) return false;  // Absent removes report false.
      members.erase(op.shard);
    }
    const std::vector<int> after = Owners(ring);

    // Empty ring: every lookup answers -1 and nothing else to check.
    if (members.empty()) {
      for (int owner : after) {
        if (owner != -1) return false;
      }
      before = after;
      continue;
    }
    // Assigned owners are always live members.
    for (int owner : after) {
      if (members.count(owner) == 0) return false;
    }

    int moved = 0;
    for (int key = 0; key < kNumKeys; ++key) {
      const int old_owner = before[static_cast<size_t>(key)];
      const int new_owner = after[static_cast<size_t>(key)];
      if (old_owner == new_owner) continue;
      ++moved;
      if (op.add && was_member) return false;  // Re-add must be a no-op.
      if (!op.add && !was_member) return false;  // Absent remove likewise.
      // Directional churn: an add only pulls keys onto the new shard; a
      // remove only moves keys that the departed shard owned.
      if (op.add && new_owner != op.shard) return false;
      if (!op.add && old_owner != op.shard) return false;
    }

    // Bounded churn: a membership change touches about one shard's arc,
    // an expected 1/N of the keyspace. Virtual-node variance (128 points
    // per shard) keeps real arcs within ~2x of even, plus absolute slack
    // for tiny fleets and the first-shard case (where 1/N = everything).
    const size_t fleet = members.size();
    const int expected = kNumKeys / static_cast<int>(fleet);
    const int bound = 2 * expected + 60;
    if (moved > bound) return false;

    before = after;
  }

  // Determinism: the final assignment depends only on (seed, membership),
  // not on the path that built it — rebuild with reversed insertion order.
  shard::HashRing rebuilt;
  std::vector<int> final_members(members.begin(), members.end());
  std::reverse(final_members.begin(), final_members.end());
  for (int shard_id : final_members) rebuilt.AddShard(shard_id);
  return Owners(rebuilt) == before;
}

TEST(RingPropertyTest, ChurnBoundHoldsUnderArbitraryMembershipSequences) {
  EXPECT_TRUE(proptest::ForAll(
      /*seed=*/20260820, /*trials=*/60, RandomOps, proptest::ShrinkOps<RingOp>,
      CheckChurn, DescribeOps));
}

TEST(RingPropertyTest, SeededRingsAgreeAcrossIndependentBuilds) {
  // Two processes that never talk must place every user identically from
  // (seed, membership) alone — the shard router's planning assumption.
  EXPECT_TRUE(proptest::ForAll(
      /*seed=*/20260821, /*trials=*/40, RandomOps, proptest::ShrinkOps<RingOp>,
      [](const std::vector<RingOp>& ops) {
        shard::HashRing a;
        shard::HashRing b;
        for (const RingOp& op : ops) {
          if (op.add) {
            a.AddShard(op.shard);
            b.AddShard(op.shard);
          } else {
            a.RemoveShard(op.shard);
            b.RemoveShard(op.shard);
          }
          if (a.Shards() != b.Shards()) return false;
        }
        return Owners(a) == Owners(b) && a.num_points() == b.num_points();
      },
      DescribeOps));
}

TEST(RingPropertyTest, EmptyRingAnswersNoOwner) {
  shard::HashRing ring;
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.ShardFor(42), -1);
  EXPECT_FALSE(ring.RemoveShard(0));
  ring.AddShard(3);
  ring.AddShard(3);  // Idempotent.
  EXPECT_EQ(ring.Shards(), std::vector<int>{3});
  EXPECT_TRUE(ring.RemoveShard(3));
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.ShardFor(42), -1);
}

}  // namespace
}  // namespace rapid
