#include "click/dcm.h"

#include <gtest/gtest.h>

#include <cmath>

#include "datagen/simulator.h"

namespace rapid::click {
namespace {

using data::Dataset;
using data::DatasetKind;
using data::GenerateDataset;
using data::SimConfig;

class DcmTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SimConfig cfg;
    cfg.kind = DatasetKind::kTaobao;
    cfg.num_users = 40;
    cfg.num_items = 300;
    data_ = GenerateDataset(cfg, 21);
  }
  Dataset data_;
};

TEST_F(DcmTest, TerminationIsDecreasing) {
  GroundTruthClickModel dcm(&data_, DcmConfig{});
  for (int k = 1; k < 10; ++k) {
    EXPECT_GE(dcm.Termination(k), dcm.Termination(k + 1));
    EXPECT_GT(dcm.Termination(k), 0.0f);
    EXPECT_LT(dcm.Termination(k), 1.0f);
  }
}

TEST_F(DcmTest, AttractionInUnitInterval) {
  GroundTruthClickModel dcm(&data_, DcmConfig{.lambda = 0.5f});
  std::vector<int> items = {0, 5, 9, 33, 71};
  for (int pos = 0; pos < 5; ++pos) {
    const float phi = dcm.Attraction(0, items, pos);
    EXPECT_GE(phi, 0.0f);
    EXPECT_LE(phi, 1.0f);
  }
}

TEST_F(DcmTest, LambdaOneIsPureRelevance) {
  GroundTruthClickModel dcm(&data_, DcmConfig{.lambda = 1.0f});
  std::vector<int> items = {0, 5, 9};
  for (int pos = 0; pos < 3; ++pos) {
    EXPECT_NEAR(dcm.Attraction(0, items, pos),
                data::TrueRelevance(data_.users[0], data_.items[items[pos]]),
                1e-6f);
  }
}

TEST_F(DcmTest, DiversityTermRewardsNovelTopics) {
  // At lambda=0, attraction is purely the personalized coverage gain; a
  // duplicate-topic item at position 2 must attract no more than at
  // position 1 (its gain can only shrink once the topic is covered).
  GroundTruthClickModel dcm(&data_, DcmConfig{.lambda = 0.0f});
  // Find two items with very similar coverage.
  int a = 0, b = -1;
  for (int v = 1; v < 300 && b < 0; ++v) {
    float diff = 0.0f;
    for (int j = 0; j < data_.num_topics; ++j) {
      diff += std::fabs(data_.items[a].topic_coverage[j] -
                        data_.items[v].topic_coverage[j]);
    }
    if (diff < 0.1f) b = v;
  }
  ASSERT_GE(b, 0) << "dataset should contain near-duplicate coverage items";
  std::vector<int> dup_first = {a, b};
  std::vector<int> alone = {b};
  const float gain_after_dup = dcm.Attraction(0, dup_first, 1);
  const float gain_alone = dcm.Attraction(0, alone, 0);
  EXPECT_LE(gain_after_dup, gain_alone + 1e-6f);
}

TEST_F(DcmTest, RhoScalesWithAppetiteAndPref) {
  DcmConfig cfg;
  GroundTruthClickModel dcm(&data_, cfg);
  for (int u = 0; u < 5; ++u) {
    auto rho = dcm.Rho(u);
    for (int j = 0; j < data_.num_topics; ++j) {
      EXPECT_NEAR(rho[j],
                  cfg.rho_scale * data_.users[u].diversity_appetite *
                      data_.users[u].topic_pref[j],
                  1e-6f);
    }
  }
}

TEST_F(DcmTest, SimulatedClickRateMatchesExpectedClicks) {
  GroundTruthClickModel dcm(&data_, DcmConfig{.lambda = 0.9f});
  std::vector<int> items = {1, 7, 19, 44, 80, 101, 150, 200, 250, 299};
  std::mt19937_64 rng(3);
  double total = 0.0;
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    auto clicks = dcm.SimulateClicks(0, items, rng);
    for (int c : clicks) total += c;
  }
  const float expected = dcm.ExpectedClicks(0, items, 10);
  EXPECT_NEAR(total / trials, expected, 0.05 * expected + 0.03);
}

TEST_F(DcmTest, ClicksStopAfterTermination) {
  // With termination probability ~1 after a click, at most one click.
  DcmConfig cfg;
  cfg.termination_base = 1.0f;
  cfg.termination_decay = 1.0f;
  GroundTruthClickModel dcm(&data_, cfg);
  std::vector<int> items = {1, 7, 19, 44, 80};
  std::mt19937_64 rng(4);
  for (int t = 0; t < 200; ++t) {
    auto clicks = dcm.SimulateClicks(0, items, rng);
    int total = 0;
    for (int c : clicks) total += c;
    EXPECT_LE(total, 1);
  }
}

TEST_F(DcmTest, TrueSatisfactionIncreasesWithBetterItems) {
  GroundTruthClickModel dcm(&data_, DcmConfig{.lambda = 1.0f});
  // Rank all items by relevance for user 0; top-5 should satisfy more
  // than bottom-5.
  std::vector<std::pair<float, int>> rel;
  for (int v = 0; v < 300; ++v) {
    rel.push_back({data::TrueRelevance(data_.users[0], data_.items[v]), v});
  }
  std::sort(rel.rbegin(), rel.rend());
  std::vector<int> best, worst;
  for (int i = 0; i < 5; ++i) {
    best.push_back(rel[i].second);
    worst.push_back(rel[295 + i].second);
  }
  EXPECT_GT(dcm.TrueSatisfaction(0, best, 5),
            dcm.TrueSatisfaction(0, worst, 5));
}

TEST_F(DcmTest, EstimatedDcmRecoversAttractionOrdering) {
  GroundTruthClickModel dcm(&data_, DcmConfig{.lambda = 1.0f});
  // Build logs: many impressions of random lists, simulate clicks.
  std::mt19937_64 rng(5);
  std::uniform_int_distribution<int> item_dist(0, 299);
  std::uniform_int_distribution<int> user_dist(0, 39);
  std::vector<data::ImpressionList> logs;
  for (int t = 0; t < 3000; ++t) {
    data::ImpressionList imp;
    imp.user_id = user_dist(rng);
    for (int i = 0; i < 10; ++i) imp.items.push_back(item_dist(rng));
    imp.clicks = dcm.SimulateClicks(imp.user_id, imp.items, rng);
    logs.push_back(std::move(imp));
  }
  EstimatedDcm est;
  est.Fit(data_, logs);

  // Average estimated attraction of globally attractive items should beat
  // that of unattractive ones.
  std::vector<std::pair<float, int>> pop;
  for (int v = 0; v < 300; ++v) {
    double mean_rel = 0.0;
    for (int u = 0; u < 40; ++u) {
      mean_rel += data::TrueRelevance(data_.users[u], data_.items[v]);
    }
    pop.push_back({static_cast<float>(mean_rel / 40), v});
  }
  std::sort(pop.rbegin(), pop.rend());
  double top = 0.0, bottom = 0.0;
  for (int i = 0; i < 30; ++i) {
    top += est.Attraction(pop[i].second);
    bottom += est.Attraction(pop[269 + i].second);
  }
  EXPECT_GT(top, bottom);
}

TEST_F(DcmTest, EstimatedSatisfactionInUnitInterval) {
  EstimatedDcm est;
  std::vector<data::ImpressionList> logs;
  data::ImpressionList imp;
  imp.user_id = 0;
  imp.items = {1, 2, 3};
  imp.clicks = {0, 1, 0};
  logs.push_back(imp);
  est.Fit(data_, logs);
  const float s = est.Satisfaction({1, 2, 3}, 3);
  EXPECT_GT(s, 0.0f);
  EXPECT_LT(s, 1.0f);
}

TEST_F(DcmTest, SimulatePrefixOnly) {
  GroundTruthClickModel dcm(&data_, DcmConfig{});
  std::mt19937_64 rng(6);
  auto clicks = dcm.SimulateClicks(0, {1, 2, 3, 4, 5, 6, 7, 8}, rng, 5);
  EXPECT_EQ(clicks.size(), 5u);
}

}  // namespace
}  // namespace rapid::click
